package youtiao

import "testing"

func TestAnalyzeFDMSignals(t *testing.T) {
	d := designSquare(t, 4, 4)
	sigs, err := d.AnalyzeFDMSignals()
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != len(d.FDMLines) {
		t.Fatalf("got %d signals for %d lines", len(sigs), len(d.FDMLines))
	}
	for _, s := range sigs {
		if s.Clipped {
			t.Errorf("line %d clips the DAC", s.Line)
		}
		if s.NumTones != len(d.FDMLines[s.Line].Qubits) {
			t.Errorf("line %d: %d tones for %d qubits", s.Line, s.NumTones, len(d.FDMLines[s.Line].Qubits))
		}
		if s.WorstToneRecoveryError > 0.1 {
			t.Errorf("line %d: tone recovery error %v", s.Line, s.WorstToneRecoveryError)
		}
		if s.NumTones > 1 && s.MinSpacingGHz < 0.01 {
			t.Errorf("line %d: tones only %v GHz apart", s.Line, s.MinSpacingGHz)
		}
	}
}

func TestDemuxControlPlan(t *testing.T) {
	d := designSquare(t, 4, 4)
	plan, err := d.DemuxControlPlan("DJ", 5)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Slots == 0 {
		t.Error("no slots in the control plan")
	}
	if plan.SwitchEnergyNanojoule < 0 {
		t.Error("negative switch energy")
	}
	if _, err := d.DemuxControlPlan("bogus", 5); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestThermalBudget(t *testing.T) {
	d := designSquare(t, 6, 6)
	th, err := d.ThermalBudget()
	if err != nil {
		t.Fatal(err)
	}
	if th.YoutiaoFraction >= th.BaselineFraction {
		t.Errorf("YOUTIAO thermal fraction %.3g not below baseline %.3g",
			th.YoutiaoFraction, th.BaselineFraction)
	}
	if th.YoutiaoQubitCapacity <= th.BaselineQubitCapacity {
		t.Errorf("YOUTIAO capacity %d not above baseline %d",
			th.YoutiaoQubitCapacity, th.BaselineQubitCapacity)
	}
	if th.YoutiaoFraction > 1 {
		t.Error("a 36-qubit design should not overheat the fridge")
	}
	if th.WorstStage == "" {
		t.Error("missing worst stage")
	}
}

func TestReadoutDesign(t *testing.T) {
	d := designSquare(t, 6, 6)
	ro, err := d.ReadoutDesign()
	if err != nil {
		t.Fatal(err)
	}
	if ro.QubitsPerLine != 8 {
		t.Errorf("qubits per line %d, want 8", ro.QubitsPerLine)
	}
	if ro.WorstFidelity < ro.TargetFidelity {
		t.Errorf("readout fidelity %.4f below target %.2f", ro.WorstFidelity, ro.TargetFidelity)
	}
	if ro.Feedlines != d.Youtiao.ReadoutLines {
		t.Error("feedline count mismatch")
	}
}
