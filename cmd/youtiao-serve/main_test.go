package main

import (
	"testing"
	"time"
)

// TestParseFlags: the flag surface maps onto the server config,
// including the unbounded-cache sentinel.
func TestParseFlags(t *testing.T) {
	st, err := parseFlags([]string{
		"-addr", "127.0.0.1:9999",
		"-max-inflight", "4",
		"-max-queue", "16",
		"-queue-wait", "2s",
		"-request-timeout", "30s",
		"-max-qubits", "100",
		"-cache-mb", "64",
		"-cache-shards", "2",
		"-drain-timeout", "5s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.addr != "127.0.0.1:9999" || st.drainTimeout != 5*time.Second {
		t.Fatalf("settings = %+v", st)
	}
	c := st.cfg
	if c.MaxInFlight != 4 || c.MaxQueue != 16 || c.QueueWait != 2*time.Second ||
		c.RequestTimeout != 30*time.Second || c.MaxQubits != 100 ||
		c.CacheBytes != 64<<20 || c.CacheShards != 2 {
		t.Fatalf("config = %+v", c)
	}

	st, err = parseFlags([]string{"-cache-mb", "-1"})
	if err != nil {
		t.Fatal(err)
	}
	if st.cfg.CacheBytes != -1 {
		t.Fatalf("unbounded cache sentinel = %d, want -1", st.cfg.CacheBytes)
	}

	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
