// Command youtiao-serve exposes the YOUTIAO designer as a long-running
// HTTP service with bounded memory and graceful overload behavior.
//
// Usage:
//
//	youtiao-serve [-addr :8080] [-max-inflight 2] [-max-queue 4] \
//	    [-queue-wait 10s] [-request-timeout 120s] [-max-qubits 512] \
//	    [-cache-mb 256] [-cache-shards 8] [-cache-dir /var/cache/youtiao] \
//	    [-cache-disk-mb 2048]
//
// Endpoints:
//
//	POST /v1/design   design a chip (JSON in, JSON out)
//	GET  /healthz     liveness (200 while the process runs)
//	GET  /readyz      readiness (503 while draining)
//	GET  /metrics     observability snapshot (counters, gauges, latencies)
//
// On SIGINT/SIGTERM the server stops admitting work, finishes in-flight
// designs and exits 0 — or exits 1 if the drain exceeds -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

// settings is the parsed flag set of one invocation.
type settings struct {
	addr         string
	drainTimeout time.Duration
	cfg          serve.Config
}

// parseFlags maps the command line onto server settings; kept separate
// from main so tests can exercise it without starting a listener.
func parseFlags(args []string) (*settings, error) {
	fs := flag.NewFlagSet("youtiao-serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	maxInFlight := fs.Int("max-inflight", 2, "concurrently executing designs")
	maxQueue := fs.Int("max-queue", 0, "designs waiting for a slot before shedding (0 = 2x max-inflight)")
	queueWait := fs.Duration("queue-wait", 10*time.Second, "longest a queued request waits before a 429")
	requestTimeout := fs.Duration("request-timeout", 120*time.Second, "hard deadline per design request")
	maxQubits := fs.Int("max-qubits", 512, "largest chip accepted")
	cacheMB := fs.Int64("cache-mb", 256, "artifact cache budget in MiB (-1 = unbounded)")
	cacheShards := fs.Int("cache-shards", 0, "cache lock shards (0 = default)")
	cacheDir := fs.String("cache-dir", "", "persistent artifact cache directory (empty = memory only); replicas may share one")
	cacheDiskMB := fs.Int64("cache-disk-mb", 0, "disk cache budget in MiB (0 = unbounded); needs -cache-dir")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "longest to wait for in-flight designs on shutdown")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	cacheBytes := *cacheMB << 20
	if *cacheMB < 0 {
		cacheBytes = -1
	}
	return &settings{
		addr:         *addr,
		drainTimeout: *drainTimeout,
		cfg: serve.Config{
			MaxInFlight:    *maxInFlight,
			MaxQueue:       *maxQueue,
			QueueWait:      *queueWait,
			RequestTimeout: *requestTimeout,
			MaxQubits:      *maxQubits,
			CacheBytes:     cacheBytes,
			CacheShards:    *cacheShards,
			CacheDir:       *cacheDir,
			CacheDiskBytes: *cacheDiskMB << 20,
		},
	}, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("youtiao-serve: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	st, err := parseFlags(args)
	if err != nil {
		return err
	}
	srv, err := serve.New(st.cfg)
	if err != nil {
		return err
	}
	httpServer := &http.Server{
		Addr:              st.addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", st.addr)
		errc <- httpServer.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return fmt.Errorf("listen: %w", err)
	case <-sigCtx.Done():
	}

	log.Printf("signal received; draining (timeout %s)", st.drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), st.drainTimeout)
	defer cancel()
	// Drain order: the app layer first (stop admitting designs, wait for
	// in-flight ones), then the HTTP layer (close idle connections and
	// wait for handlers to return).
	drainErr := srv.Shutdown(ctx)
	if err := httpServer.Shutdown(ctx); err != nil && drainErr == nil {
		drainErr = err
	}
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && drainErr == nil {
		drainErr = serveErr
	}
	if drainErr != nil {
		return fmt.Errorf("shutdown: %w", drainErr)
	}
	log.Printf("drained cleanly")
	return nil
}
