// Command figures regenerates the data series behind Figures 12-17 of
// the paper as aligned text.
//
// Usage:
//
//	figures [-fig 12|13|14|15|16|17|all] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	fig := flag.String("fig", "all", "which figure to regenerate: 12..17 or all")
	seed := flag.Int64("seed", 1, "experiment seed")
	flag.Parse()

	opts := experiments.Options{Seed: *seed}
	printers := map[string]func(experiments.Options){
		"12": printFig12,
		"13": printFig13,
		"14": printFig14and15,
		"15": printFig14and15,
		"16": printFig16,
		"17": printFig17,
	}
	if *fig == "all" {
		for _, k := range []string{"12", "13", "14", "16", "17"} {
			printers[k](opts)
			fmt.Println()
		}
		return
	}
	p, ok := printers[*fig]
	if !ok {
		log.Fatalf("unknown -fig %q (want 12..17 or all)", *fig)
	}
	p(opts)
}

func newTab() *tabwriter.Writer { return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0) }

func printFig12(opts experiments.Options) {
	res, err := experiments.Fig12(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 12: Crosstalk model generality on similar chips")
	fmt.Printf("(a) JS divergence between 6x6- and 8x8-trained noise distributions: %.3f\n", res.JSDivergence)
	fmt.Println("(b) FDM fidelity on the 8x8 chip (10 layers of random 1q gates):")
	w := newTab()
	fmt.Fprintln(w, "#qubits\ttransferred model\tnative model")
	for _, s := range res.Scales {
		fmt.Fprintf(w, "%d\t%.4f%%\t%.4f%%\n", s.Qubits, 100*s.TransferredFidelity, 100*s.NativeFidelity)
	}
	w.Flush()
}

func printFig13(opts experiments.Options) {
	res, err := experiments.Fig13(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 13: Evaluation of FDM grouping with random gates (36-qubit chip)")
	fmt.Println("(a) per-gate fidelity on 4-qubit FDM lines:")
	w := newTab()
	fmt.Fprintln(w, "strategy\tper-gate fidelity\tper-gate error")
	for _, r := range res.A {
		fmt.Fprintf(w, "%s\t%.4f%%\t%.2e\n", r.Strategy, 100*r.PerGateFidelity, r.PerGateError)
	}
	w.Flush()
	fmt.Println("(b) whole-chip fidelity vs gate layers (9 FDM lines):")
	w = newTab()
	fmt.Fprintln(w, "layers\tYOUTIAO\tGeorge\tbaseline")
	for _, p := range res.B {
		fmt.Fprintf(w, "%d\t%.1f%%\t%.1f%%\t%.1f%%\n", p.Layers, 100*p.Youtiao, 100*p.George, 100*p.Baseline)
	}
	w.Flush()
}

func printFig14and15(opts experiments.Options) {
	rows, err := experiments.Figs14And15(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 14: Two-qubit gate depth with TDM grouping (36-qubit chip)")
	w := newTab()
	fmt.Fprintln(w, "benchmark\tGoogle\tYOUTIAO\tAcharya\tYOUTIAO/Google\tAcharya/YOUTIAO")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.2fx\t%.2fx\n",
			r.Benchmark, r.GoogleDepth, r.YoutiaoDepth, r.AcharyaDepth,
			ratio(r.YoutiaoDepth, r.GoogleDepth), ratio(r.AcharyaDepth, r.YoutiaoDepth))
	}
	w.Flush()
	fmt.Println()
	fmt.Println("Figure 15: Circuit fidelity with TDM-based routing")
	w = newTab()
	fmt.Fprintln(w, "benchmark\tGoogle\tYOUTIAO\tAcharya\tlatency G/Y/A (us)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f / %.1f / %.1f\n",
			r.Benchmark, 100*r.GoogleFidelity, 100*r.YoutiaoFidelity, 100*r.AcharyaFidelity,
			r.GoogleLatencyNs/1000, r.YoutiaoLatencyNs/1000, r.AcharyaLatencyNs/1000)
	}
	w.Flush()
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func printFig16(opts experiments.Options) {
	rows, err := experiments.Fig16(opts, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 16: Cryo-DEMUX proportion for various topologies")
	w := newTab()
	fmt.Fprintln(w, "topology\ttheta\tdirect\t1:2\t1:4\tfrac 1:2\tfrac 1:4")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.0f\t%d\t%d\t%d\t%.0f%%\t%.0f%%\n",
			r.Topology, r.Theta, r.Direct, r.OneToTwo, r.OneToFour, 100*r.Frac12, 100*r.Frac14)
	}
	w.Flush()
}

func printFig17(opts experiments.Options) {
	res, err := experiments.Fig17(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 17: Wiring estimation for the large-scale quantum system")
	fmt.Printf("calibrated Z fan-out: square %.2f, heavy-hex %.2f\n", res.ZFanoutSquare, res.ZFanoutHeavyHex)
	fmt.Println("(a) 10-1k qubits (square topology):")
	w := newTab()
	fmt.Fprintln(w, "#qubits\tGoogle coax\tYOUTIAO coax\treduction")
	for _, p := range res.SmallSweep {
		fmt.Fprintf(w, "%d\t%d\t%d\t%.1fx\n", p.Qubits, p.GoogleCoax, p.YoutiaoCoax, p.Reduction())
	}
	w.Flush()
	fmt.Printf("(b) 150-qubit system: coax %d -> %d, all-qubit XY fidelity %.1f%%\n",
		res.System150.GoogleCoax, res.System150.YoutiaoCoax, 100*res.System150.XYFidelity)
	fmt.Println("(c) IBM chiplet scale-out comparison:")
	w = newTab()
	fmt.Fprintln(w, "chips\t#qubits\tIBM cables\tYOUTIAO cables\treduction")
	for _, p := range res.Chiplets {
		if p.Chips == 1 || p.Chips%5 == 0 {
			fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.1fx\n", p.Chips, p.Qubits, p.IBMCables, p.YoutiaoCables, p.Reduction())
		}
	}
	w.Flush()
	fmt.Println("(d) 1k-100k qubits:")
	w = newTab()
	fmt.Fprintln(w, "#qubits\tGoogle coax\tYOUTIAO coax\treduction")
	for _, p := range res.LargeSweep {
		fmt.Fprintf(w, "%d\t%d\t%d\t%.1fx\n", p.Qubits, p.GoogleCoax, p.YoutiaoCoax, p.Reduction())
	}
	w.Flush()
	fmt.Printf("coax savings at 100k qubits: $%.2fM\n", res.SavingsUSD100k/1e6)
}
