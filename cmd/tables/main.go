// Command tables regenerates Table 1 and Table 2 of the paper as
// formatted text.
//
// Usage:
//
//	tables [-table 1|2|all] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tables: ")
	table := flag.String("table", "all", "which table to regenerate: 1, 2 or all")
	seed := flag.Int64("seed", 1, "experiment seed")
	flag.Parse()

	opts := experiments.Options{Seed: *seed}
	switch *table {
	case "1":
		printTable1(opts)
	case "2":
		printTable2(opts)
	case "all":
		printTable1(opts)
		fmt.Println()
		printTable2(opts)
	default:
		log.Fatalf("unknown -table %q (want 1, 2 or all)", *table)
	}
}

func printTable1(opts experiments.Options) {
	rows, err := experiments.Table1(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table 1: Wiring results of fault-tolerant quantum chip (25 EC cycles)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "arch\tdistance\t#XY line\t#Z line\twiring cost\t2q gate depth")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t$%.0fK\t%d\n",
			r.Architecture, r.Distance, r.XYLines, r.ZLines, r.WiringCostUSD/1000, r.TwoQGateDepth)
	}
	w.Flush()
}

func printTable2(opts experiments.Options) {
	rows, err := experiments.Table2(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table 2: Evaluation of quantum wiring system")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "topology\tarch\t#qubit\t#XY\t#Z\tDEMUX ctl\t#DAC\twiring cost\t#interface\trouting area (mm^2)\tcrossovers\tDRC")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t$%.0fK\t%d\t%.2f\t%d\t%d\n",
			r.Topology, r.Architecture, r.NumQubits, r.XYLines, r.ZLines, r.DemuxControl,
			r.DACs, r.WiringCostUSD/1000, r.Interfaces, r.RoutingAreaMM2, r.RouteCrossings, r.DRCViolations)
	}
	w.Flush()
}
