// Command hypo runs the repository's hypothesis experiments: declared
// claims about the wiring pipeline (warm-redesign speedup, worker-count
// invariance, trim recovery, cache hit rates, manifest reproducibility)
// executed under the verdict rules of internal/hypo and recorded as
// FINDINGS.json / FINDINGS.md artifacts.
//
// Usage:
//
//	hypo -list
//	hypo -run deterministic
//	hypo -run all -out hypotheses
//	hypo -run H3-trim-recovery?seeds=7:8:9 -json
//	hypo -run statistical -seeds 1,2,3,4,5
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro/internal/hypo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hypo: ")
	list := flag.Bool("list", false, "list the registered experiments and exit")
	run := flag.String("run", "", "run spec: experiment id(s) or tier (all, deterministic, statistical); comma-separated, per-item overrides as id?seeds=1:2:3&min_effect=0.25")
	seeds := flag.String("seeds", "", "comma-separated seed override applied to every selected experiment (per-item ?seeds= wins)")
	out := flag.String("out", "hypotheses", "directory for FINDINGS.json/FINDINGS.md artifacts (empty = don't write)")
	asJSON := flag.Bool("json", false, "print each findings record as JSON instead of the summary table")
	timeout := flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
	flag.Parse()

	reg := hypo.Builtin()
	if *list {
		printList(reg)
		return
	}
	if *run == "" {
		flag.Usage()
		os.Exit(2)
	}

	specs, err := hypo.ParseSpecs(*run)
	if err != nil {
		log.Fatal(err)
	}
	var globalSeeds []int64
	if *seeds != "" {
		if globalSeeds, err = hypo.ParseSeeds(*seeds); err != nil {
			log.Fatalf("-seeds: %v", err)
		}
	}
	selections, err := reg.Select(specs)
	if err != nil {
		log.Fatal(err)
	}
	if len(selections) == 0 {
		log.Fatal("run spec selected no experiments")
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	git := gitDescribe()
	failed := 0
	for _, sel := range selections {
		if sel.Seeds == nil && globalSeeds != nil {
			sel.Seeds = globalSeeds
		}
		f, err := sel.Execute(ctx)
		if err != nil {
			log.Fatalf("%s: %v", sel.Experiment.ID, err)
		}
		f.Manifest.CreatedAt = time.Now().UTC().Format(time.RFC3339Nano)
		f.Manifest.Git = git
		if *out != "" {
			dir, err := f.Write(*out)
			if err != nil {
				log.Fatalf("%s: %v", f.ID, err)
			}
			fmt.Fprintf(os.Stderr, "hypo: wrote %s\n", dir)
		}
		if *asJSON {
			data, err := f.JSON()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(string(data))
		} else {
			fmt.Printf("%-22s %-13s %-12s %s\n", f.ID, f.Class, strings.ToUpper(string(f.Verdict)), f.Reason)
		}
		if f.Verdict != hypo.Confirmed {
			failed++
		}
	}
	if failed > 0 {
		log.Fatalf("%d of %d experiments did not confirm", failed, len(selections))
	}
}

// printList renders the registry as an id / class / claim table.
func printList(reg *hypo.Registry) {
	for _, e := range reg.List() {
		seeds := e.Seeds
		if seeds == nil {
			seeds = hypo.DefaultSeeds(e.Class)
		}
		parts := make([]string, len(seeds))
		for i, s := range seeds {
			parts[i] = fmt.Sprintf("%d", s)
		}
		fmt.Printf("%-22s %-13s seeds=%-8s %s\n", e.ID, e.Class, strings.Join(parts, ","), e.Claim)
	}
}

// gitDescribe best-effort identifies the producing tree; an empty
// string (no git, not a repository) just omits the manifest field.
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
