// Command youtiao designs a hybrid-multiplexed control wiring system
// for a chosen chip topology and prints the resulting plan.
//
// Usage:
//
//	youtiao [-topology square] [-qubits 36] [-seed 1] [-theta 4] [-fdm 5] [-workers 0] [-verbose]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("youtiao: ")
	topology := flag.String("topology", "square", "chip topology: square, hexagon, heavy-square, heavy-hexagon, low-density")
	qubits := flag.Int("qubits", 36, "approximate qubit count")
	seed := flag.Int64("seed", 1, "device fabrication / design seed")
	theta := flag.Float64("theta", 4, "TDM parallelism threshold")
	fdmCap := flag.Int("fdm", 5, "FDM line capacity (qubits per XY line)")
	workers := flag.Int("workers", 0, "worker goroutines for the parallel pipeline stages (0 = all CPUs, 1 = sequential; the design is identical either way)")
	verbose := flag.Bool("verbose", false, "print the full line-by-line plan")
	asJSON := flag.Bool("json", false, "emit the design as JSON")
	flag.Parse()

	ch, err := youtiao.NewChip(*topology, *qubits)
	if err != nil {
		log.Fatal(err)
	}
	design, err := youtiao.Design(ch, youtiao.Options{
		Seed:        *seed,
		Theta:       *theta,
		FDMCapacity: *fdmCap,
		Workers:     *workers,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *asJSON {
		data, err := design.ExportJSON()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	if *verbose {
		fmt.Print(design.Report())
		return
	}
	fmt.Printf("chip: %s (%d qubits, %d couplers)\n", ch.Name, ch.NumQubits(), ch.NumCouplers())
	fmt.Printf("crosstalk model: w_phy=%.2f w_top=%.2f\n",
		design.CrosstalkWeights.WPhy, design.CrosstalkWeights.WTop)
	fmt.Printf("XY lines: %d -> %d   Z lines: %d -> %d\n",
		design.Baseline.XYLines, design.Youtiao.XYLines,
		design.Baseline.ZLines, design.Youtiao.ZLines)
	d2, d4 := design.DemuxMix()
	fmt.Printf("DEMUX mix: %d x 1:2, %d x 1:4 (+%d twisted-pair controls)\n",
		d2, d4, design.Youtiao.ControlLines)
	fmt.Printf("coax: %d -> %d (%.1fx)\n",
		design.Baseline.CoaxLines, design.Youtiao.CoaxLines, design.CoaxReduction())
	fmt.Printf("wiring cost: $%.0fK -> $%.0fK (%.1fx)\n",
		design.Baseline.CostUSD/1000, design.Youtiao.CostUSD/1000, design.CostReduction())
}
