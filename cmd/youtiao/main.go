// Command youtiao designs a hybrid-multiplexed control wiring system
// for a chosen chip topology and prints the resulting plan.
//
// Usage:
//
//	youtiao [-topology square] [-qubits 36] [-seed 1] [-theta 4] [-fdm 5] [-workers 0] [-verbose]
//	youtiao -defect-rate 0.02 -retry-budget 3 -timeout 30s
//	youtiao -sweep-defects 0,0.01,0.02,0.05
//	youtiao -cache-dir .youtiao-cache   # warm restarts: re-runs recall stages from disk
//	youtiao -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/stage"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("youtiao: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the whole CLI behind a testable seam: flag parsing, the design
// (or sweep) and rendering, with every failure returned instead of
// exiting — main turns a non-nil error into a non-zero exit, and the
// regression tests assert on the error chain (a -timeout expiry, for
// example, must surface a wrapped context.DeadlineExceeded).
func run(args []string, stdout io.Writer) (retErr error) {
	fs := flag.NewFlagSet("youtiao", flag.ContinueOnError)
	topology := fs.String("topology", "square", "chip topology: square, hexagon, heavy-square, heavy-hexagon, low-density")
	qubits := fs.Int("qubits", 36, "approximate qubit count")
	seed := fs.Int64("seed", 1, "device fabrication / design seed")
	theta := fs.Float64("theta", 4, "TDM parallelism threshold")
	fdmCap := fs.Int("fdm", 5, "FDM line capacity (qubits per XY line)")
	workers := fs.Int("workers", 0, "worker goroutines for the parallel pipeline stages (0 = all CPUs, 1 = sequential; the design is identical either way)")
	verbose := fs.Bool("verbose", false, "print the full line-by-line plan")
	asJSON := fs.Bool("json", false, "emit the design as JSON")
	defectRate := fs.Float64("defect-rate", 0, "uniform fault-injection rate over every defect class (0 disables; try 0.02)")
	retryBudget := fs.Int("retry-budget", 0, "calibration re-measurement attempts after a dropout (0 = default 3, negative = none)")
	timeout := fs.Duration("timeout", 0, "abort the design after this long (0 = no limit)")
	sweep := fs.String("sweep-defects", "", "comma-separated defect rates: run the degradation sweep instead of a single design")
	stageTimings := fs.Bool("stage-timings", false, "print the per-stage instrumentation report (runs, cache hits/misses, wall time); with -json, embedded as \"stageReport\"")
	manifestPath := fs.String("manifest", "", "write a run manifest (options digest, seed, git revision, env, stage report, metrics snapshot) as JSON to this file")
	cacheDir := fs.String("cache-dir", "", "persistent artifact cache directory: stages warm from prior runs are recalled from disk instead of re-executed (empty = memory only)")
	cacheDiskMB := fs.Int64("cache-disk-mb", 0, "disk cache budget in MiB (0 = unbounded); needs -cache-dir")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
	memProfile := fs.String("memprofile", "", "write a heap profile at exit to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		// Named return: the profile is written after the run body, and a
		// write failure must still fail the command.
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				if retErr == nil {
					retErr = fmt.Errorf("-memprofile: %w", err)
				}
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil && retErr == nil {
				retErr = fmt.Errorf("-memprofile: %w", err)
			}
		}()
	}

	ch, err := youtiao.NewChip(*topology, *qubits)
	if err != nil {
		return err
	}
	opts := youtiao.Options{
		Seed:        *seed,
		Theta:       *theta,
		FDMCapacity: *fdmCap,
		Workers:     *workers,
		Faults:      youtiao.UniformFaults(*defectRate),
		RetryBudget: *retryBudget,
	}
	// Distinguish an explicit `-theta 0` from the default.
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "theta" {
			opts.HasTheta = true
		}
	})

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *sweep != "" {
		if *manifestPath != "" {
			return fmt.Errorf("-manifest records a single design; it cannot be combined with -sweep-defects")
		}
		if err := runSweep(ctx, stdout, ch, *sweep, opts, *cacheDir, *cacheDiskMB<<20); err != nil {
			return err
		}
		return retErr
	}

	// The manifest needs the full observability capture: a per-build
	// registry on Options.Obs plus the process-global subsystem
	// counters routed into it.
	var reg *youtiao.ObsRegistry
	if *manifestPath != "" {
		reg = youtiao.NewObservability()
		youtiao.Observe(reg)
		opts.Obs = reg
	}

	// A Designer (rather than one-shot DesignCtx) carries the per-stage
	// instrumentation the -stage-timings report renders; a single design
	// through it is bit-identical to DesignCtx. With -cache-dir it runs
	// over a persistent cache, so a repeated invocation recalls every
	// stage from the warm disk tier instead of re-executing it.
	var designer *youtiao.Designer
	var mcache *youtiao.ManifestCache
	if *cacheDir != "" {
		sc, err := youtiao.OpenSharedCache(youtiao.CacheConfig{Dir: *cacheDir, DiskBytes: *cacheDiskMB << 20})
		if err != nil {
			return fmt.Errorf("-cache-dir: %w", err)
		}
		designer = sc.Designer(ch)
		mcache = &youtiao.ManifestCache{Dir: *cacheDir, DiskBytes: *cacheDiskMB << 20}
	} else {
		designer = youtiao.NewDesigner(ch)
	}
	design, err := designer.RedesignCtx(ctx, opts)
	if err != nil {
		return err
	}

	if *manifestPath != "" {
		if err := writeManifest(*manifestPath, design, opts, reg, designer.StageReport(), mcache); err != nil {
			return fmt.Errorf("-manifest: %w", err)
		}
	}

	if *asJSON {
		data, err := design.ExportJSON()
		if err != nil {
			return err
		}
		if *stageTimings {
			report, err := designer.StageReport().JSON()
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "{\n  \"design\": %s,\n  \"stageReport\": %s\n}\n",
				indentBlock(string(data)), indentBlock(string(report)))
			return retErr
		}
		fmt.Fprintln(stdout, string(data))
		return retErr
	}
	if *verbose {
		fmt.Fprint(stdout, design.Report())
		if *stageTimings {
			fmt.Fprint(stdout, designer.StageReport().Text())
		}
		return retErr
	}
	fmt.Fprintf(stdout, "chip: %s (%d qubits, %d couplers)\n", ch.Name, ch.NumQubits(), ch.NumCouplers())
	if f := design.Faults; f != nil {
		fmt.Fprintf(stdout, "faults: %d dead qubits, %d broken couplers, %d stuck-lossy (calibration: %d retried, %d lost)\n",
			len(f.DeadQubits), len(f.BrokenCouplers), f.StuckLossy, f.CalibRetried, f.CalibLostPairs)
	}
	fmt.Fprintf(stdout, "crosstalk model: w_phy=%.2f w_top=%.2f\n",
		design.CrosstalkWeights.WPhy, design.CrosstalkWeights.WTop)
	fmt.Fprintf(stdout, "XY lines: %d -> %d   Z lines: %d -> %d\n",
		design.Baseline.XYLines, design.Youtiao.XYLines,
		design.Baseline.ZLines, design.Youtiao.ZLines)
	d2, d4 := design.DemuxMix()
	fmt.Fprintf(stdout, "DEMUX mix: %d x 1:2, %d x 1:4 (+%d twisted-pair controls)\n",
		d2, d4, design.Youtiao.ControlLines)
	fmt.Fprintf(stdout, "coax: %d -> %d (%.1fx)\n",
		design.Baseline.CoaxLines, design.Youtiao.CoaxLines, design.CoaxReduction())
	fmt.Fprintf(stdout, "wiring cost: $%.0fK -> $%.0fK (%.1fx)\n",
		design.Baseline.CostUSD/1000, design.Youtiao.CostUSD/1000, design.CostReduction())
	if *stageTimings {
		fmt.Fprint(stdout, designer.StageReport().Text())
	}
	return retErr
}

// indentBlock re-indents an already-rendered JSON block by two spaces
// so it nests under the combined -json -stage-timings envelope.
func indentBlock(s string) string {
	return strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}

// writeManifest assembles and writes the run manifest, creating the
// target directory if needed.
func writeManifest(path string, design *youtiao.DesignResult, opts youtiao.Options, reg *youtiao.ObsRegistry, report youtiao.StageReport, cache *youtiao.ManifestCache) error {
	m := youtiao.NewManifest(design, opts)
	m.CreatedAt = time.Now().UTC().Format(time.RFC3339Nano)
	m.Git = gitDescribe()
	m.Cache = cache
	m.Stages = &report
	snap := reg.Snapshot()
	m.Obs = &snap
	data, err := m.JSON()
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// gitDescribe best-effort identifies the producing tree; an empty
// string (no git, not a repository) just omits the field.
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// runSweep parses the rate list and prints the degradation table. A
// non-empty cacheDir runs the sweep through a persistent design cache,
// so a repeated sweep recalls every point from the warm disk tier.
func runSweep(ctx context.Context, stdout io.Writer, ch *youtiao.Chip, list string, opts youtiao.Options, cacheDir string, cacheDiskBytes int64) error {
	var rates []float64
	for _, part := range strings.Split(list, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return fmt.Errorf("bad -sweep-defects entry %q: %w", part, err)
		}
		rates = append(rates, r)
	}
	start := time.Now()
	var points []experiments.DefectPoint
	var err error
	if cacheDir != "" {
		dc, openErr := experiments.OpenDesignCache(cacheDir, stage.Config{}, cacheDiskBytes)
		if openErr != nil {
			return fmt.Errorf("-cache-dir: %w", openErr)
		}
		points, err = experiments.DefectSweepWith(ctx, dc.Designer(ch), rates, opts)
	} else {
		points, err = experiments.DefectSweep(ctx, ch, rates, opts)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "defect sweep on %s (%d qubits), %d rates, %s\n",
		ch.Name, ch.NumQubits(), len(points), time.Since(start).Round(time.Millisecond))
	fmt.Fprintln(stdout, "rate    alive  dead  brokenC  stuck  lost  XY  Z   coax  cost($K)  fidelity  cache(h/m)")
	for _, pt := range points {
		fmt.Fprintf(stdout, "%-7.3f %-6d %-5d %-8d %-6d %-5d %-3d %-3d %-5d %-9.1f %-9.6f %d/%d\n",
			pt.Rate, pt.AliveQubits, pt.DeadQubits, pt.BrokenCouplers, pt.StuckLossy,
			pt.Calib.LostPairs, pt.XYLines, pt.ZLines, pt.CoaxLines, pt.WiringCost/1000, pt.GateFidelity,
			pt.CacheHits, pt.CacheMisses)
	}
	return nil
}
