package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"
)

// TestRunTimeoutExpiryMidSweep: a -timeout that fires mid-sweep must
// surface as a non-nil error (main exits non-zero) wrapping
// context.DeadlineExceeded, with the failing rate named — a sweep that
// "succeeds" with a truncated table would silently fake its results.
func TestRunTimeoutExpiryMidSweep(t *testing.T) {
	err := run([]string{"-qubits", "16", "-sweep-defects", "0,0.01,0.02", "-timeout", "1ns"}, io.Discard)
	if err == nil {
		t.Fatal("expired -timeout returned nil — main would exit zero on a truncated sweep")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error chain does not wrap context.DeadlineExceeded: %v", err)
	}
	if !strings.Contains(err.Error(), "rate") {
		t.Fatalf("error does not name the failing sweep point: %v", err)
	}
}

// TestRunTimeoutExpirySingleDesign: the single-design path has the same
// contract.
func TestRunTimeoutExpirySingleDesign(t *testing.T) {
	err := run([]string{"-qubits", "16", "-timeout", "1ns"}, io.Discard)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error chain does not wrap context.DeadlineExceeded: %v", err)
	}
}

// TestRunDesignsSmallChip: the happy path still renders a summary.
func TestRunDesignsSmallChip(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-qubits", "4", "-topology", "square"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"chip:", "coax:", "wiring cost:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunRejectsBadFlags: flag and validation failures return errors
// instead of exiting, so main's exit code reflects them.
func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-topology", "klein-bottle", "-qubits", "4"}, io.Discard); err == nil {
		t.Fatal("bad topology accepted")
	}
	if err := run([]string{"-sweep-defects", "0.01", "-manifest", t.TempDir() + "/m.json"}, io.Discard); err == nil {
		t.Fatal("-sweep-defects with -manifest accepted")
	}
}
