package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes run with captured output.
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestRecordReplayCheckRoundTrip: record a small trace, replay it with
// a written summary fixture, then re-replay under -check and a
// different worker count — the full CI gate in one test.
func TestRecordReplayCheckRoundTrip(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	fixture := filepath.Join(dir, "summary.json")

	code, out, errOut := runCLI(t, "-workload", "steady-state", "-seed", "5",
		"-duration", "10s", "-record", trace)
	if code != 0 {
		t.Fatalf("record exited %d: %s", code, errOut)
	}
	if !strings.Contains(out, "recorded") {
		t.Fatalf("record output: %q", out)
	}

	code, _, errOut = runCLI(t, "-replay", trace, "-workers", "1",
		"-out", filepath.Join(dir, "report.txt"), "-write-summary", fixture, "-allow", "ok")
	if code != 0 {
		t.Fatalf("replay exited %d: %s", code, errOut)
	}

	code, _, errOut = runCLI(t, "-replay", trace, "-workers", "4",
		"-out", os.DevNull, "-check", fixture, "-allow", "ok")
	if code != 0 {
		t.Fatalf("checked replay exited %d: %s", code, errOut)
	}

	// A JSON report parses and repeats the fixture's deterministic core.
	code, out, errOut = runCLI(t, "-replay", trace, "-report", "json")
	if code != 0 {
		t.Fatalf("json replay exited %d: %s", code, errOut)
	}
	var sum struct {
		Workload string         `json:"workload"`
		Outcomes map[string]int `json:"outcomes"`
		Timing   map[string]any `json:"timing"`
	}
	if err := json.Unmarshal([]byte(out), &sum); err != nil {
		t.Fatalf("json report does not parse: %v\n%s", err, out)
	}
	if sum.Workload != "steady-state" || sum.Outcomes["ok"] == 0 || sum.Timing == nil {
		t.Fatalf("json report = %+v", sum)
	}
}

// TestExitCodes: the distinct failure modes are distinguishable for
// scripts: 1 usage, 2 disallowed outcome, 3 fixture drift.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	if code, _, errOut := runCLI(t, "-workload", "steady-state", "-duration", "10s", "-record", trace); code != 0 {
		t.Fatalf("record failed: %s", errOut)
	}

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"unknown workload", []string{"-workload", "nope"}, 1},
		{"record and replay", []string{"-record", "a", "-replay", "b"}, 1},
		{"bad report format", []string{"-report", "xml"}, 1},
		{"bad target", []string{"-replay", trace, "-target", "gopher://x"}, 1},
		{"missing trace", []string{"-replay", filepath.Join(dir, "nope.jsonl")}, 1},
		{"disallowed outcome", []string{"-replay", trace, "-out", os.DevNull, "-allow", "shed"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, errOut := runCLI(t, tc.args...)
			if code != tc.want {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, tc.want, errOut)
			}
			if errOut == "" {
				t.Fatal("failure produced no stderr")
			}
		})
	}

	// Fixture drift: check a defect-storm replay against a fixture from
	// steady-state.
	fixture := filepath.Join(dir, "summary.json")
	if code, _, errOut := runCLI(t, "-replay", trace, "-out", os.DevNull, "-write-summary", fixture); code != 0 {
		t.Fatalf("fixture write failed: %s", errOut)
	}
	other := filepath.Join(dir, "other.jsonl")
	if code, _, errOut := runCLI(t, "-workload", "defect-storm", "-duration", "10s", "-record", other); code != 0 {
		t.Fatalf("second record failed: %s", errOut)
	}
	code, _, errOut := runCLI(t, "-replay", other, "-out", os.DevNull, "-check", fixture)
	if code != 3 {
		t.Fatalf("fixture drift exited %d, want 3 (stderr: %s)", code, errOut)
	}
	if !strings.Contains(errOut, "drifted") {
		t.Fatalf("drift stderr: %q", errOut)
	}
}

// TestWorkloadSpecFile: a JSON spec file drives generation, and unknown
// fields in it are rejected rather than silently dropped.
func TestWorkloadSpecFile(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	body := `{
  "name": "custom",
  "durationSec": 10,
  "chips": [{"name": "c1", "topology": "square", "qubits": 4, "seed": 1}],
  "clients": [{"id": "solo", "arrival": {"process": "poisson", "ratePerSec": 0.5},
               "mix": [{"weight": 1, "chip": "c1"}]}]
}`
	if err := os.WriteFile(spec, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCLI(t, "-workload-spec", spec, "-seed", "2", "-workers", "2")
	if code != 0 {
		t.Fatalf("custom spec run exited %d: %s", code, errOut)
	}
	if !strings.Contains(out, "custom") || !strings.Contains(out, "solo") {
		t.Fatalf("report does not reflect the custom spec:\n%s", out)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name": "x", "durationSec": 1, "bogus": true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCLI(t, "-workload-spec", bad); code != 1 {
		t.Fatalf("unknown spec field exited %d, want 1", code)
	}
}
