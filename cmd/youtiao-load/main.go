// Command youtiao-load is the replayable workload harness: it expands a
// deterministic workload spec into a trace of virtually-timestamped
// design requests, replays traces against the in-process library or a
// live youtiao-serve endpoint, and reports throughput, latency
// quantiles, cache traffic and per-tenant fairness.
//
// Usage:
//
//	youtiao-load [-workload steady-state | -workload-spec spec.json] \
//	    [-seed 1] [-duration 0] [-scale 1] \
//	    [-record trace.jsonl | -replay trace.jsonl] \
//	    [-target library|http://host:port] [-workers 4] \
//	    [-design-workers 1] [-pace 0] [-cache-dir DIR] \
//	    [-timeout 60s] [-report text|json] [-out PATH] \
//	    [-write-summary PATH] [-check PATH] [-allow ok,shed]
//
// Modes:
//
//	-record writes the generated trace as versioned JSONL and exits —
//	the committed golden traces under traces/ are made this way.
//	-replay runs a previously recorded trace instead of generating one.
//	With neither flag the harness generates and runs in one step.
//
// The summary splits into a deterministic section (event/outcome
// counts, per-tenant completions, fairness, cache hits) that is
// bit-identical at any -workers value, and a timing section that is
// wall-clock truth about this run. -check compares the deterministic
// section against a committed fixture (exit 3 on drift); -allow fails
// the run if any outcome class outside the list occurred (exit 2).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	youtiao "repro"
	"repro/internal/sim"
)

// settings is the parsed flag set of one invocation.
type settings struct {
	workload     string
	workloadSpec string
	seed         int64
	duration     time.Duration
	scale        float64

	record string
	replay string

	target        string
	workers       int
	designWorkers int
	pace          float64
	cacheDir      string
	timeout       time.Duration

	report       string
	out          string
	writeSummary string
	check        string
	allow        string
}

func parseFlags(args []string, stderr io.Writer) (*settings, error) {
	fs := flag.NewFlagSet("youtiao-load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	s := &settings{}
	fs.StringVar(&s.workload, "workload", "steady-state",
		fmt.Sprintf("builtin workload spec (%s)", strings.Join(sim.BuiltinNames(), ", ")))
	fs.StringVar(&s.workloadSpec, "workload-spec", "", "JSON workload spec file (overrides -workload)")
	fs.Int64Var(&s.seed, "seed", 1, "master seed for trace generation")
	fs.DurationVar(&s.duration, "duration", 0, "override the spec's virtual duration (0 = spec value)")
	fs.Float64Var(&s.scale, "scale", 1, "multiply every arrival and drift rate")
	fs.StringVar(&s.record, "record", "", "write the generated trace to this JSONL file and exit")
	fs.StringVar(&s.replay, "replay", "", "replay this JSONL trace instead of generating one")
	fs.StringVar(&s.target, "target", "library", `"library" or a youtiao-serve base URL`)
	fs.IntVar(&s.workers, "workers", 4, "dispatch concurrency")
	fs.IntVar(&s.designWorkers, "design-workers", 1, "per-design worker pool (library target; 0 = default)")
	fs.Float64Var(&s.pace, "pace", 0, "virtual-to-wall time speedup; 0 dispatches as fast as the target accepts")
	fs.StringVar(&s.cacheDir, "cache-dir", "", "persistent warm cache tier (library target)")
	fs.DurationVar(&s.timeout, "timeout", 60*time.Second, "per-request deadline (server target)")
	fs.StringVar(&s.report, "report", "text", `report format: "text" or "json"`)
	fs.StringVar(&s.out, "out", "", "write the report here instead of stdout")
	fs.StringVar(&s.writeSummary, "write-summary", "", "write the deterministic summary (fixture format) to this file")
	fs.StringVar(&s.check, "check", "", "compare the deterministic summary against this fixture; exit 3 on drift")
	fs.StringVar(&s.allow, "allow", "", "comma-separated outcome classes allowed; any other class occurring exits 2")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if s.record != "" && s.replay != "" {
		return nil, fmt.Errorf("-record and -replay are mutually exclusive")
	}
	if s.report != "text" && s.report != "json" {
		return nil, fmt.Errorf("-report %q must be text or json", s.report)
	}
	return s, nil
}

// loadSpec resolves the workload spec from flags: a JSON file, or a
// builtin by name, with -duration and -scale applied on top.
func loadSpec(s *settings) (sim.Spec, error) {
	var spec sim.Spec
	if s.workloadSpec != "" {
		data, err := os.ReadFile(s.workloadSpec)
		if err != nil {
			return spec, err
		}
		dec := json.NewDecoder(strings.NewReader(string(data)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return spec, fmt.Errorf("parse %s: %w", s.workloadSpec, err)
		}
	} else {
		var err error
		spec, err = sim.BuiltinSpec(s.workload)
		if err != nil {
			return spec, err
		}
	}
	if s.duration > 0 {
		spec.DurationSec = s.duration.Seconds()
	}
	if s.scale != 1 {
		if !(s.scale > 0) {
			return spec, fmt.Errorf("-scale %g must be > 0", s.scale)
		}
		spec = spec.Scale(s.scale)
	}
	return spec, spec.Validate()
}

// loadTrace resolves the trace to run: replayed from a file, or
// generated from the spec.
func loadTrace(s *settings) (*sim.Trace, error) {
	if s.replay != "" {
		return sim.ReplayFile(s.replay)
	}
	spec, err := loadSpec(s)
	if err != nil {
		return nil, err
	}
	return sim.Generate(spec, s.seed)
}

// driver builds the dispatch target.
func driver(s *settings) (sim.Driver, error) {
	if s.target == "library" {
		cache, err := youtiao.OpenSharedCache(youtiao.CacheConfig{Dir: s.cacheDir})
		if err != nil {
			return nil, err
		}
		return sim.NewLibraryDriver(cache, s.designWorkers), nil
	}
	if !strings.HasPrefix(s.target, "http://") && !strings.HasPrefix(s.target, "https://") {
		return nil, fmt.Errorf("-target %q must be \"library\" or an http(s) URL", s.target)
	}
	return sim.NewServerDriver(strings.TrimRight(s.target, "/"), s.timeout), nil
}

// checkAllowed verifies every occurring outcome class is on the allow
// list.
func checkAllowed(sum *sim.Summary, allow string) error {
	if allow == "" {
		return nil
	}
	ok := make(map[string]bool)
	for _, c := range strings.Split(allow, ",") {
		ok[strings.TrimSpace(c)] = true
	}
	var bad []string
	for class, n := range sum.Outcomes {
		if !ok[class] && n > 0 {
			bad = append(bad, fmt.Sprintf("%s=%d", class, n))
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		return fmt.Errorf("disallowed outcome classes: %s (allowed: %s)", strings.Join(bad, " "), allow)
	}
	return nil
}

// checkFixture compares the deterministic summary against a committed
// fixture file, byte for byte.
func checkFixture(sum *sim.Summary, path string) error {
	want, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	got, err := sum.StripTimings().JSON()
	if err != nil {
		return err
	}
	if string(got) != string(want) {
		return fmt.Errorf("deterministic summary drifted from fixture %s\n--- fixture\n%s--- got\n%s", path, want, got)
	}
	return nil
}

func writeOut(path string, data []byte, stdout io.Writer) error {
	if path == "" {
		_, err := stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// run is main minus os.Exit, for tests. Exit codes: 0 success, 1
// usage/IO/run error, 2 disallowed outcome class, 3 fixture drift.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	s, err := parseFlags(args, stderr)
	if err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		fmt.Fprintf(stderr, "youtiao-load: %v\n", err)
		return 1
	}

	trace, err := loadTrace(s)
	if err != nil {
		fmt.Fprintf(stderr, "youtiao-load: %v\n", err)
		return 1
	}

	if s.record != "" {
		if err := trace.RecordFile(s.record); err != nil {
			fmt.Fprintf(stderr, "youtiao-load: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "recorded %s: %d events (%d requests, %d defects) over %s virtual\n",
			s.record, len(trace.Events), trace.Requests(), trace.Defects(),
			time.Duration(trace.Header.DurationNs))
		return 0
	}

	d, err := driver(s)
	if err != nil {
		fmt.Fprintf(stderr, "youtiao-load: %v\n", err)
		return 1
	}
	sum, err := sim.Run(ctx, trace, d, sim.RunConfig{Workers: s.workers, Pace: s.pace})
	if err != nil {
		fmt.Fprintf(stderr, "youtiao-load: %v\n", err)
		return 1
	}

	var report []byte
	if s.report == "json" {
		report, err = sum.JSON()
		if err != nil {
			fmt.Fprintf(stderr, "youtiao-load: %v\n", err)
			return 1
		}
	} else {
		report = []byte(sum.Text())
	}
	if err := writeOut(s.out, report, stdout); err != nil {
		fmt.Fprintf(stderr, "youtiao-load: %v\n", err)
		return 1
	}
	if s.writeSummary != "" {
		fixture, err := sum.StripTimings().JSON()
		if err == nil {
			err = os.WriteFile(s.writeSummary, fixture, 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "youtiao-load: %v\n", err)
			return 1
		}
	}
	if err := checkAllowed(sum, s.allow); err != nil {
		fmt.Fprintf(stderr, "youtiao-load: %v\n", err)
		return 2
	}
	if s.check != "" {
		if err := checkFixture(sum, s.check); err != nil {
			fmt.Fprintf(stderr, "youtiao-load: %v\n", err)
			return 3
		}
	}
	return 0
}

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}
