// Package youtiao is the public API of the YOUTIAO reproduction: a
// hybrid-multiplexing control-wiring designer for superconducting
// quantum processors (Tian et al., MICRO 2025).
//
// YOUTIAO reduces the coaxial-cable and on-chip routing burden of a
// quantum chip by sharing control lines: XY drive and readout lines are
// frequency-division multiplexed (FDM), while Z flux lines are
// time-division multiplexed (TDM) through cryogenic DEMUXes. The
// design pipeline is noise-aware end to end:
//
//  1. fit a crosstalk characterization model from calibration data
//     (equivalent distance -> random-forest regression);
//  2. partition large chips into multiplexing regions (generative
//     chip partition);
//  3. group qubits onto FDM lines and allocate their frequencies in
//     two levels (zones and 10 MHz cells);
//  4. group qubits and couplers onto TDM DEMUXes by exploiting natural
//     (topological and noisy) non-parallelism;
//  5. assemble the cryostat-level wiring bill of materials, price it,
//     and optionally route the chip level.
//
// The one-call entry point is Design:
//
//	ch := youtiao.NewSquareChip(6, 6)
//	design, err := youtiao.Design(ch, youtiao.Options{Seed: 1})
//	if err != nil { ... }
//	fmt.Println(design.Report())
//
// Design works on synthetic devices fabricated by the built-in Xmon
// device model; DesignDevice accepts an externally characterized
// device. The underlying subsystems live in internal/ packages and are
// re-exported here only through stable result types.
package youtiao

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/chip"
	"repro/internal/cost"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/stage"
	"repro/internal/tdm"
	"repro/internal/wiring"
	"repro/internal/xmon"
)

// Chip is a quantum-chip description (re-exported).
type Chip = chip.Chip

// Options tune the design pipeline (re-exported from the experiment
// harness so library users and experiments share one configuration).
type Options = experiments.Options

// FaultSpec configures deterministic device-defect and calibration
// fault injection (set it as Options.Faults; the zero value disables
// injection). See internal/faults for the fault model.
type FaultSpec = faults.Spec

// UniformFaults returns a FaultSpec applying rate r to every fault
// class — the CLI's -defect-rate semantics.
func UniformFaults(r float64) FaultSpec { return faults.UniformSpec(r) }

// DesignError reports which pipeline stage a failed design gave up in;
// use errors.As to recover it from Design/DesignCtx errors.
type DesignError = experiments.DesignError

// NewSquareChip returns a w×h square-lattice chip.
func NewSquareChip(w, h int) *Chip { return chip.Square(w, h) }

// NewHexagonChip returns a rows×cols hexagon (brick-wall) chip.
func NewHexagonChip(rows, cols int) *Chip { return chip.Hexagon(rows, cols) }

// NewHeavySquareChip returns a heavy-square chip over a w×h node grid.
func NewHeavySquareChip(w, h int) *Chip { return chip.HeavySquare(w, h) }

// NewHeavyHexagonChip returns a heavy-hexagon chip over a rows×cols
// node grid.
func NewHeavyHexagonChip(rows, cols int) *Chip { return chip.HeavyHexagon(rows, cols) }

// NewLowDensityChip returns a w×h low-density (degree-2 serpentine)
// chip.
func NewLowDensityChip(w, h int) *Chip { return chip.LowDensity(w, h) }

// NewChip builds a chip of the named topology ("square", "hexagon",
// "heavy-square", "heavy-hexagon", "low-density") with approximately n
// qubits.
func NewChip(topology string, n int) (*Chip, error) { return chip.ByTopology(topology, n) }

// FDMLine is one frequency-multiplexed XY line of a design.
type FDMLine struct {
	Qubits []int `json:"qubits"`
	// FreqGHz holds the allocated drive frequency of each qubit, in
	// the order of Qubits.
	FreqGHz []float64 `json:"freqGHz"`
}

// TDMGroup is one Z line of a design: the devices behind one DEMUX.
type TDMGroup struct {
	// Devices names the members: "q<N>" for qubits, "c<N>" for
	// couplers.
	Devices []string `json:"devices"`
	// Demux is the hardware level: "direct", "1:2" or "1:4".
	Demux string `json:"demux"`
	// ControlBits is the number of twisted-pair digital controls.
	ControlBits int `json:"controlBits"`
}

// Wiring is the cryostat-level bill of materials of one architecture.
type Wiring struct {
	Architecture string  `json:"architecture"`
	XYLines      int     `json:"xyLines"`
	ZLines       int     `json:"zLines"`
	ReadoutLines int     `json:"readoutLines"`
	ControlLines int     `json:"controlLines"`
	CoaxLines    int     `json:"coaxLines"`
	DACs         int     `json:"dacs"`
	Interfaces   int     `json:"interfaces"`
	CostUSD      float64 `json:"costUSD"`
}

// DesignResult is a complete multiplexed wiring design for a chip.
type DesignResult struct {
	Chip *Chip

	// CrosstalkWeights are the fitted equivalent-distance weights
	// (w_phy, w_top) of the XY characterization model.
	CrosstalkWeights struct{ WPhy, WTop float64 }
	// CrosstalkCVError is the cross-validated MSE of the XY model.
	CrosstalkCVError float64

	// Regions lists the generative-partition regions (nil when the
	// chip was grouped whole).
	Regions [][]int

	FDMLines  []FDMLine
	TDMGroups []TDMGroup

	// Youtiao and Baseline are the hybrid and Google-style wiring
	// bills for the same chip.
	Youtiao  Wiring
	Baseline Wiring

	// Faults summarizes the injected fault plan and the calibration
	// campaign's degradation accounting; nil for a fault-free design.
	Faults *FaultReport

	pipeline *experiments.Pipeline
}

// FaultReport is the degradation summary of a design built under fault
// injection.
type FaultReport struct {
	DeadQubits     []int `json:"deadQubits"`
	BrokenCouplers []int `json:"brokenCouplers"`
	StuckLossy     int   `json:"stuckLossy"`
	// CalibDropouts..CalibOutliers account for the calibration
	// campaign: measurements lost to dropouts, pairs rescued by
	// retries, pairs lost for good and heavy-tailed outlier samples.
	CalibDropouts  int `json:"calibDropouts"`
	CalibRetried   int `json:"calibRetried"`
	CalibLostPairs int `json:"calibLostPairs"`
	CalibOutliers  int `json:"calibOutliers"`
}

// Design runs the full YOUTIAO pipeline on a chip: it fabricates a
// synthetic Xmon device (deterministic in Options.Seed), characterizes
// crosstalk, partitions, groups, allocates frequencies and assembles
// the wiring plans.
func Design(c *Chip, opts Options) (*DesignResult, error) {
	return DesignCtx(context.Background(), c, opts)
}

// DesignCtx is Design with cooperative cancellation: pass a context
// with a deadline to bound the design time; the pipeline returns the
// context's error promptly once it fires.
func DesignCtx(ctx context.Context, c *Chip, opts Options) (*DesignResult, error) {
	p, err := experiments.BuildPipelineCtx(ctx, c, opts)
	if err != nil {
		return nil, fmt.Errorf("youtiao: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("youtiao: %w", err)
	}
	return fromPipeline(p)
}

// DesignDevice runs the pipeline on an externally fabricated device
// (see package internal/xmon for the synthetic model it replaces).
func DesignDevice(dev *xmon.Device, opts Options) (*DesignResult, error) {
	return DesignDeviceCtx(context.Background(), dev, opts)
}

// DesignDeviceCtx is DesignDevice with cooperative cancellation,
// mirroring DesignCtx: pass a context with a deadline to bound the
// design time.
func DesignDeviceCtx(ctx context.Context, dev *xmon.Device, opts Options) (*DesignResult, error) {
	p, err := experiments.BuildPipelineOnDeviceCtx(ctx, dev, opts)
	if err != nil {
		return nil, fmt.Errorf("youtiao: %w", err)
	}
	return fromPipeline(p)
}

// ObsRegistry collects metrics, latency histograms and design spans.
// Create one with NewObservability, set it as Options.Obs to capture a
// build's stage instrumentation, and pass it to Observe to also route
// the process-global subsystem counters (worker pool, calibration
// faults, model fit, simulators) into it. Registry.Snapshot() returns
// a stable-schema ObsSnapshot; Registry.Handler() serves it over HTTP
// (mount it at /debug/youtiao). A nil registry disables everything at
// zero cost.
type ObsRegistry = obs.Registry

// ObsSnapshot is a point-in-time export of an ObsRegistry: counters,
// gauges, histogram quantiles and the design span tree, in a stable
// JSON schema. StripTimings() reduces it to the deterministic subset —
// two snapshots of identical designs at identical seeds strip to equal
// values regardless of Workers or machine speed.
type ObsSnapshot = obs.Snapshot

// NewObservability returns an empty metrics registry.
func NewObservability() *ObsRegistry { return obs.New() }

// Observe installs r as the process-global observer of the pipeline's
// subsystems (worker pool, calibration fault accounting, crosstalk
// fit, quantum simulators). Pass nil to uninstall. Per-build stage
// metrics flow through Options.Obs instead, so concurrent builds can
// keep separate registries while sharing the process-global one.
func Observe(r *ObsRegistry) { experiments.Observe(r) }

// StageReport is the per-stage instrumentation snapshot of a Designer:
// runs, cache hits/misses, worker budget and cumulative wall time per
// pipeline stage, plus cache totals. Render it with Text() or JSON().
type StageReport = stage.Report

// StageStats is one stage's row of a StageReport.
type StageStats = stage.Stats

// Designer characterizes a chip once and redesigns it many times: it
// keeps an artifact store of every pipeline stage (fabrication, fault
// plan, fitted crosstalk models, partition, groupings), keyed by the
// inputs the stage consumes, and Redesign re-executes only the stages
// whose keyed inputs changed. Sweeping Options.Theta, for example,
// re-runs the TDM grouping alone — zero re-measurements, zero re-fits —
// and each result is bit-identical to a cold Design at those options.
//
// Unlike the one-shot Design, a Designer never mutates the chip you
// hand it (fabrication happens on internal per-seed clones), so
// DesignResult.Chip points at the fabricated clone rather than the
// prototype.
type Designer struct {
	d *experiments.Designer
}

// NewDesigner returns an incremental designer over a chip prototype.
func NewDesigner(c *Chip) *Designer {
	return &Designer{d: experiments.NewDesigner(c)}
}

// NewDesignerForDevice returns an incremental designer over an
// externally fabricated device, the cached counterpart of DesignDevice.
func NewDesignerForDevice(dev *xmon.Device) *Designer {
	return &Designer{d: experiments.NewDesignerOnDevice(dev)}
}

// Redesign designs the system for opts, reusing every cached stage
// whose inputs are unchanged since earlier calls.
func (d *Designer) Redesign(opts Options) (*DesignResult, error) {
	return d.RedesignCtx(context.Background(), opts)
}

// RedesignCtx is Redesign with cooperative cancellation.
func (d *Designer) RedesignCtx(ctx context.Context, opts Options) (*DesignResult, error) {
	p, err := d.d.RedesignCtx(ctx, opts)
	if err != nil {
		return nil, fmt.Errorf("youtiao: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("youtiao: %w", err)
	}
	return fromPipeline(p)
}

// StageReport snapshots the designer's per-stage instrumentation since
// construction. Diff two snapshots with Sub to isolate one Redesign.
func (d *Designer) StageReport() StageReport {
	return d.d.Report()
}

// StageExecWrapper intercepts stage executions of a SharedCache (see
// stage.ExecWrapper). It exists for chaos testing: the serve harness
// wraps executions to inject slowness, failures and panics
// deterministically.
type StageExecWrapper = stage.ExecWrapper

// CacheConfig bounds a SharedCache.
type CacheConfig struct {
	// MaxBytes caps the estimated memory of cached stage artifacts;
	// least-recently-used artifacts are evicted past it. 0 disables
	// the bound (the historical grow-without-bound behavior).
	MaxBytes int64
	// Shards spreads the cache over independently locked shards (0
	// selects a default). Purely a concurrency knob — artifact values
	// are identical at any shard count.
	Shards int
	// Dir, when non-empty, adds a persistent warm tier under this
	// directory: every stage artifact is written through to disk, and
	// memory misses (including those of a freshly started process, or
	// of a replica sharing the directory) are served by decoding the
	// stored artifact instead of re-executing the stage. Artifacts are
	// keyed by the same deterministic stage keys as the memory tier,
	// so warm recalls are bit-identical to cold executions. Empty
	// keeps the cache memory-only.
	Dir string
	// DiskBytes caps the on-disk footprint of Dir;
	// least-recently-used artifact files are garbage collected past
	// it. 0 disables the bound. Ignored without Dir.
	DiskBytes int64
}

// CacheStats is a point-in-time occupancy summary of a SharedCache.
// The Disk* fields stay zero for a memory-only cache.
type CacheStats struct {
	// Entries counts cached artifacts (completed or in flight).
	Entries int `json:"entries"`
	// Bytes is the estimated footprint of cached artifacts.
	Bytes int64 `json:"bytes"`
	// MaxBytes is the configured budget (0 = unbounded).
	MaxBytes int64 `json:"maxBytes"`
	// Evictions counts artifacts forgotten under memory pressure.
	Evictions int64 `json:"evictions"`
	// DiskEntries counts artifacts stored in the warm disk tier.
	DiskEntries int `json:"diskEntries"`
	// DiskBytes is the on-disk footprint of the warm tier.
	DiskBytes int64 `json:"diskBytes"`
	// DiskHits counts stage invocations served by decoding a disk
	// artifact instead of executing the stage.
	DiskHits int64 `json:"diskHits"`
	// GCEvictions counts artifact files the disk budget collected.
	GCEvictions int64 `json:"gcEvictions"`
	// DecodeErrors counts disk artifacts that failed to decode; each
	// was dropped and treated as a miss.
	DecodeErrors int64 `json:"decodeErrors"`
}

// SharedCache shares one bounded artifact store across the Designers of
// many chips: the backbone of youtiao-serve, where concurrent requests
// for structurally identical chips coalesce onto single-flight stage
// executions and the artifact set stays within a fixed memory budget
// instead of growing without bound. Safe for concurrent use.
type SharedCache struct {
	dc *experiments.DesignCache
}

// NewSharedCache returns an empty cache under cfg's bounds. With
// CacheConfig.Dir set it panics if the directory cannot be opened —
// use OpenSharedCache to handle that error.
func NewSharedCache(cfg CacheConfig) *SharedCache {
	c, err := OpenSharedCache(cfg)
	if err != nil {
		panic(fmt.Sprintf("youtiao: NewSharedCache: %v", err))
	}
	return c
}

// OpenSharedCache returns an empty cache under cfg's bounds, with a
// persistent warm tier under CacheConfig.Dir when set: a restarted
// process (or a replica pointed at the same directory) recalls warm
// stage artifacts from disk instead of re-executing them, and the
// recalled designs are byte-identical to freshly computed ones. The
// only error source is opening the directory; a memory-only
// configuration never fails.
func OpenSharedCache(cfg CacheConfig) (*SharedCache, error) {
	memCfg := stage.Config{MaxBytes: cfg.MaxBytes, Shards: cfg.Shards}
	if cfg.Dir == "" {
		return &SharedCache{dc: experiments.NewDesignCacheWithStore(stage.NewStoreWith(memCfg))}, nil
	}
	dc, err := experiments.OpenDesignCache(cfg.Dir, memCfg, cfg.DiskBytes)
	if err != nil {
		return nil, fmt.Errorf("youtiao: open cache dir: %w", err)
	}
	return &SharedCache{dc: dc}, nil
}

// Designer returns the cache's Designer for a chip, creating it on
// first use. Chips are keyed structurally, so two calls with distinct
// but identical Chip values return the same Designer and share every
// artifact.
func (c *SharedCache) Designer(ch *Chip) *Designer {
	return &Designer{d: c.dc.Designer(ch)}
}

// StageReport snapshots the per-stage instrumentation of the shared
// store across every designer and request.
func (c *SharedCache) StageReport() StageReport { return c.dc.Report() }

// Observe routes the shared store's cache instrumentation (hit, miss,
// eviction and panic counters, occupancy gauges, per-stage latency
// histograms) into r. Pass the same registry as Options.Obs on requests
// so per-build and store-wide instrumentation land in one place.
func (c *SharedCache) Observe(r *ObsRegistry) { c.dc.Store().Observe(r) }

// Stats reports the shared store's occupancy, both tiers.
func (c *SharedCache) Stats() CacheStats {
	s := c.dc.Store()
	bs := s.BackendStats()
	return CacheStats{
		Entries:      s.Len(),
		Bytes:        s.Bytes(),
		MaxBytes:     s.MaxBytes(),
		Evictions:    s.Evictions(),
		DiskEntries:  bs.Entries,
		DiskBytes:    bs.Bytes,
		DiskHits:     s.DiskHits(),
		GCEvictions:  bs.GCEvictions,
		DecodeErrors: s.DecodeErrors(),
	}
}

// WrapExec installs (nil removes) an execution interceptor on the
// shared store — the chaos-injection seam of the serve tests.
func (c *SharedCache) WrapExec(w StageExecWrapper) { c.dc.Store().Wrap(w) }

func fromPipeline(p *experiments.Pipeline) (*DesignResult, error) {
	res := &DesignResult{Chip: p.Chip, pipeline: p}
	res.CrosstalkWeights.WPhy = p.ModelXY.Weights.WPhy
	res.CrosstalkWeights.WTop = p.ModelXY.Weights.WTop
	res.CrosstalkCVError = p.ModelXY.CVError
	if p.Partition != nil {
		res.Regions = p.Partition.Regions
	}

	for _, group := range p.FDM.Groups {
		line := FDMLine{Qubits: append([]int(nil), group...)}
		for _, q := range group {
			line.FreqGHz = append(line.FreqGHz, p.FreqPlan.Freq[q])
		}
		res.FDMLines = append(res.FDMLines, line)
	}
	for _, g := range p.TDM.Groups {
		tg := TDMGroup{Demux: g.Level.String(), ControlBits: g.Level.ControlBits()}
		for _, d := range g.Devices {
			tg.Devices = append(tg.Devices, p.Gates.Dev.Name(d))
		}
		res.TDMGroups = append(res.TDMGroups, tg)
	}

	if p.Faults != nil {
		res.Faults = &FaultReport{
			DeadQubits:     p.Faults.DeadQubits(),
			BrokenCouplers: p.Faults.BrokenCouplers(),
			StuckLossy:     p.Faults.StuckLossyCount(),
			CalibDropouts:  p.Calib.Dropouts,
			CalibRetried:   p.Calib.Retried,
			CalibLostPairs: p.Calib.LostPairs,
			CalibOutliers:  p.Calib.Outliers,
		}
	}

	model := cost.DefaultModel()
	yPlan, err := wiring.Youtiao(p.Chip, p.FDM, p.TDM)
	if err != nil {
		return nil, fmt.Errorf("youtiao: %w", err)
	}
	res.Youtiao = toWiring(yPlan, model)
	res.Baseline = toWiring(wiring.Google(p.Chip), model)
	return res, nil
}

func toWiring(p *wiring.Plan, m cost.Model) Wiring {
	return Wiring{
		Architecture: p.Architecture,
		XYLines:      p.XYLines,
		ZLines:       p.ZLines,
		ReadoutLines: p.ReadoutLines,
		ControlLines: p.ControlLines,
		CoaxLines:    p.CoaxLines(),
		DACs:         p.DACs,
		Interfaces:   p.Interfaces,
		CostUSD:      m.WiringCost(p),
	}
}

// CoaxReduction returns the coax-cable reduction factor over the
// Google-style baseline.
func (r *DesignResult) CoaxReduction() float64 {
	if r.Youtiao.CoaxLines == 0 {
		return 0
	}
	return float64(r.Baseline.CoaxLines) / float64(r.Youtiao.CoaxLines)
}

// CostReduction returns the wiring-cost reduction factor over the
// baseline.
func (r *DesignResult) CostReduction() float64 {
	if r.Youtiao.CostUSD == 0 {
		return 0
	}
	return r.Baseline.CostUSD / r.Youtiao.CostUSD
}

// QubitFrequency returns the allocated operating frequency (GHz) of a
// qubit.
func (r *DesignResult) QubitFrequency(q int) (float64, bool) {
	f, ok := r.pipeline.FreqPlan.Freq[q]
	return f, ok
}

// PredictCrosstalk returns the fitted XY crosstalk prediction between
// two qubits.
func (r *DesignResult) PredictCrosstalk(i, j int) float64 {
	return r.pipeline.PredXY.Predict(i, j)
}

// Report renders a human-readable design summary.
func (r *DesignResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "YOUTIAO design for %s (%d qubits, %d couplers)\n",
		r.Chip.Name, r.Chip.NumQubits(), r.Chip.NumCouplers())
	fmt.Fprintf(&b, "crosstalk model: w_phy=%.2f w_top=%.2f (CV MSE %.3g)\n",
		r.CrosstalkWeights.WPhy, r.CrosstalkWeights.WTop, r.CrosstalkCVError)
	if r.Regions != nil {
		fmt.Fprintf(&b, "partition: %d regions\n", len(r.Regions))
	}
	if r.Faults != nil {
		fmt.Fprintf(&b, "faults: %d dead qubits, %d broken couplers, %d stuck-lossy Z lines\n",
			len(r.Faults.DeadQubits), len(r.Faults.BrokenCouplers), r.Faults.StuckLossy)
		fmt.Fprintf(&b, "calibration: %d dropouts, %d pairs retried, %d lost, %d outliers\n",
			r.Faults.CalibDropouts, r.Faults.CalibRetried, r.Faults.CalibLostPairs, r.Faults.CalibOutliers)
	}
	fmt.Fprintf(&b, "FDM: %d XY lines\n", len(r.FDMLines))
	for i, l := range r.FDMLines {
		fmt.Fprintf(&b, "  line %d:", i)
		for j, q := range l.Qubits {
			fmt.Fprintf(&b, " q%d@%.2fGHz", q, l.FreqGHz[j])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "TDM: %d Z lines\n", len(r.TDMGroups))
	for i, g := range r.TDMGroups {
		fmt.Fprintf(&b, "  group %d (%s): %s\n", i, g.Demux, strings.Join(g.Devices, " "))
	}
	fmt.Fprintf(&b, "wiring: coax %d -> %d (%.1fx), cost $%.0fK -> $%.0fK (%.1fx)\n",
		r.Baseline.CoaxLines, r.Youtiao.CoaxLines, r.CoaxReduction(),
		r.Baseline.CostUSD/1000, r.Youtiao.CostUSD/1000, r.CostReduction())
	return b.String()
}

// ScheduleBenchmark compiles and schedules one of the paper's five
// benchmark circuits ("VQC", "ISING", "DJ", "QFT", "QKNN") with the
// given logical width under this design's TDM grouping, returning the
// two-qubit gate depth and latency (ns).
func (r *DesignResult) ScheduleBenchmark(name string, qubits int) (depth int, latencyNs float64, err error) {
	sched, err := r.pipeline.ScheduleBenchmark(name, qubits)
	if err != nil {
		return 0, 0, fmt.Errorf("youtiao: %w", err)
	}
	return sched.TwoQubitDepth, sched.LatencyNs, nil
}

// DemuxMix returns the number of 1:2 and 1:4 DEMUX units of the design.
func (r *DesignResult) DemuxMix() (oneToTwo, oneToFour int) {
	counts := r.pipeline.TDM.LevelCounts()
	return counts[tdm.Demux1to2], counts[tdm.Demux1to4]
}

// DefaultGateDurations exposes the scheduler's pulse lengths.
func DefaultGateDurations() schedule.Durations { return schedule.DefaultDurations() }
