#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the real youtiao-serve
# binary (race-enabled build): health probes, a design request, an
# overload burst that must shed with 429 + Retry-After, a /metrics
# scrape, and a SIGTERM drain that must exit 0 after logging
# "drained cleanly". See DESIGN.md, "The serving contract".
set -euo pipefail

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
PID=""
cleanup() {
    if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
        kill -KILL "$PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$TMP/serve.log" >&2 || true
    exit 1
}

echo "serve-smoke: building race-enabled binary"
go build -race -o "$TMP/youtiao-serve" ./cmd/youtiao-serve

PORT=$(python3 -c 'import socket; s=socket.socket(); s.bind(("127.0.0.1",0)); print(s.getsockname()[1]); s.close()')
BASE="http://127.0.0.1:$PORT"

# Tight admission limits so a small burst reliably overflows:
# 1 executing + 1 queued, everything else shed. The persistent cache
# dir is shared with the restarted server below, which must warm-start
# from it.
CACHE_DIR="$TMP/cache"
"$TMP/youtiao-serve" \
    -addr "127.0.0.1:$PORT" \
    -max-inflight 1 -max-queue 1 -queue-wait 30s \
    -request-timeout 60s -cache-mb 64 -cache-dir "$CACHE_DIR" \
    -drain-timeout 60s \
    > "$TMP/serve.log" 2>&1 &
PID=$!

echo "serve-smoke: waiting for readiness on $BASE"
for i in $(seq 1 100); do
    if curl -sf "$BASE/readyz" > /dev/null 2>&1; then break; fi
    kill -0 "$PID" 2>/dev/null || fail "server exited during startup"
    [ "$i" -eq 100 ] && fail "server never became ready"
    sleep 0.1
done

code=$(curl -s -o "$TMP/health.json" -w '%{http_code}' "$BASE/healthz")
[ "$code" = 200 ] || fail "/healthz returned $code"

echo "serve-smoke: single design request"
code=$(curl -s -o "$TMP/design.json" -w '%{http_code}' \
    -d '{"topology":"square","qubits":16,"seed":1,"timeoutMs":50000}' \
    "$BASE/v1/design")
[ "$code" = 200 ] || fail "/v1/design returned $code: $(cat "$TMP/design.json")"
grep -q '"design"' "$TMP/design.json" || fail "design response missing design"
grep -q '"manifest"' "$TMP/design.json" || fail "design response missing manifest"

code=$(curl -s -o /dev/null -w '%{http_code}' -d 'not json' "$BASE/v1/design")
[ "$code" = 400 ] || fail "malformed request returned $code, want 400"

echo "serve-smoke: overload burst (8 concurrent, capacity 2)"
# Distinct seeds defeat coalescing, so every request competes for a
# slot; with 1 executing + 1 queued, most of the burst must shed.
burst_pids=()
for i in $(seq 1 8); do
    curl -s -D "$TMP/burst.$i.hdr" -o "$TMP/burst.$i.body" \
        -w '%{http_code}' --max-time 70 \
        -d "{\"topology\":\"square\",\"qubits\":36,\"seed\":$i}" \
        "$BASE/v1/design" > "$TMP/burst.$i.code" &
    burst_pids+=($!)
done
for p in "${burst_pids[@]}"; do wait "$p" || true; done

ok=0 shed=0 other=0
for i in $(seq 1 8); do
    c=$(cat "$TMP/burst.$i.code")
    case "$c" in
    200) ok=$((ok + 1)) ;;
    429)
        shed=$((shed + 1))
        grep -qi '^retry-after:' "$TMP/burst.$i.hdr" || fail "429 without Retry-After"
        ;;
    *) other=$((other + 1)) ;;
    esac
done
echo "serve-smoke: burst outcome: $ok ok, $shed shed, $other other"
[ "$other" -eq 0 ] || fail "burst produced unexpected status codes"
[ "$ok" -ge 1 ] || fail "burst produced no successes"
[ "$shed" -ge 1 ] || fail "burst produced no 429s"

echo "serve-smoke: scraping /metrics"
curl -s "$BASE/metrics" > "$TMP/metrics.json"
for counter in serve/requests serve/ok serve/shed serve/bad_request stage/misses stage/evictions; do
    grep -q "\"$counter\"" "$TMP/metrics.json" || fail "/metrics missing $counter"
done
python3 - "$TMP/metrics.json" "$ok" "$shed" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
counters = m["counters"]
ok, shed = int(sys.argv[2]), int(sys.argv[3])
assert counters["serve/ok"] >= ok + 1, counters
assert counters["serve/shed"] == shed, counters
assert counters["serve/bad_request"] == 1, counters
assert counters["stage/misses"] > 0, counters
EOF

echo "serve-smoke: SIGTERM drain"
kill -TERM "$PID"
status=0
wait "$PID" || status=$?
PID=""
[ "$status" -eq 0 ] || fail "server exited $status after SIGTERM"
grep -q 'drained cleanly' "$TMP/serve.log" || fail "server log missing 'drained cleanly'"

echo "serve-smoke: warm restart against the persisted cache dir"
# A freshly started server pointed at the same cache dir must serve
# the repeated design from the disk tier: /readyz's diskHits climbs
# above zero and the design request re-executes no stages.
"$TMP/youtiao-serve" \
    -addr "127.0.0.1:$PORT" \
    -max-inflight 1 -max-queue 1 -queue-wait 30s \
    -request-timeout 60s -cache-mb 64 -cache-dir "$CACHE_DIR" \
    -drain-timeout 60s \
    > "$TMP/serve2.log" 2>&1 &
PID=$!
for i in $(seq 1 100); do
    if curl -sf "$BASE/readyz" > /dev/null 2>&1; then break; fi
    kill -0 "$PID" 2>/dev/null || fail "restarted server exited during startup"
    [ "$i" -eq 100 ] && fail "restarted server never became ready"
    sleep 0.1
done
code=$(curl -s -o "$TMP/design2.json" -w '%{http_code}' \
    -d '{"topology":"square","qubits":16,"seed":1,"timeoutMs":50000}' \
    "$BASE/v1/design")
[ "$code" = 200 ] || fail "warm-restart design returned $code: $(cat "$TMP/design2.json")"
curl -s "$BASE/readyz" > "$TMP/ready2.json"
python3 - "$TMP/ready2.json" <<'EOF'
import json, sys
cache = json.load(open(sys.argv[1]))["cache"]
assert cache["diskHits"] > 0, f"warm restart took no disk hits: {cache}"
assert cache["diskEntries"] > 0, f"warm restart sees no disk entries: {cache}"
assert cache["decodeErrors"] == 0, f"warm restart hit decode errors: {cache}"
EOF
kill -TERM "$PID"
status=0
wait "$PID" || status=$?
PID=""
[ "$status" -eq 0 ] || fail "restarted server exited $status after SIGTERM"

echo "serve-smoke: PASS"
