#!/usr/bin/env bash
# workload_smoke.sh — the CI replay-regression gate. Replays the
# committed golden traces three ways:
#
#   A. library driver, memory-only cache, workers 1 and 4: the
#      deterministic summary must match the committed
#      traces/<name>.summary.json fixture byte for byte;
#   B. library driver against a persistent cache dir (CI restores it
#      via actions/cache keyed on the trace hashes): the second pass
#      must take disk hits — no fixture compare here, a warm tier
#      legitimately converts misses into diskHits;
#   C. a live race-enabled youtiao-serve: every request must land in
#      an expected outcome class, the server's per-tenant accounting
#      must see the trace's clients, and a SIGTERM drain must exit 0.
#
# JSON reports land under $WORKLOAD_OUT (default out/workload) for CI
# artifact upload. See DESIGN.md, "The workload contract".
set -euo pipefail

cd "$(dirname "$0")/.."

OUT_DIR="${WORKLOAD_OUT:-out/workload}"
CACHE_DIR="${WORKLOAD_CACHE_DIR:-out/workload-cache}"
mkdir -p "$OUT_DIR"

TMP=$(mktemp -d)
PID=""
cleanup() {
    if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
        kill -KILL "$PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "workload-smoke: FAIL: $*" >&2
    if [ -f "$TMP/serve.log" ]; then
        echo "--- server log ---" >&2
        cat "$TMP/serve.log" >&2 || true
    fi
    exit 1
}

echo "workload-smoke: building harness and race-enabled server"
go build -o "$TMP/youtiao-load" ./cmd/youtiao-load
go build -race -o "$TMP/youtiao-serve" ./cmd/youtiao-serve

echo "workload-smoke: A. deterministic fixture gate (library, memory-only)"
for name in steady-state defect-storm; do
    for workers in 1 4; do
        "$TMP/youtiao-load" \
            -replay "traces/$name.jsonl" -workers "$workers" \
            -check "traces/$name.summary.json" -allow ok \
            -report json -out "$OUT_DIR/$name.w$workers.json" \
            || fail "library replay of $name (workers=$workers) failed the fixture gate"
    done
done

echo "workload-smoke: B. warm-tier replay against $CACHE_DIR"
# Two passes over the same persistent dir: the first may be cold (or
# pre-warmed by a restored CI cache), the second must take disk hits.
"$TMP/youtiao-load" -replay traces/steady-state.jsonl -workers 4 \
    -cache-dir "$CACHE_DIR" -allow ok -out /dev/null \
    || fail "warm-tier pass 1 failed"
"$TMP/youtiao-load" -replay traces/steady-state.jsonl -workers 4 \
    -cache-dir "$CACHE_DIR" -allow ok \
    -report json -out "$OUT_DIR/steady-state.warm.json" \
    || fail "warm-tier pass 2 failed"
python3 - "$OUT_DIR/steady-state.warm.json" <<'EOF'
import json, sys
cache = json.load(open(sys.argv[1]))["cache"]
assert cache["diskHits"] > 0, f"second warm-tier pass took no disk hits: {cache}"
EOF

echo "workload-smoke: C. live-server replay (race-enabled)"
PORT=$(python3 -c 'import socket; s=socket.socket(); s.bind(("127.0.0.1",0)); print(s.getsockname()[1]); s.close()')
BASE="http://127.0.0.1:$PORT"
"$TMP/youtiao-serve" \
    -addr "127.0.0.1:$PORT" \
    -max-inflight 4 -max-queue 8 -queue-wait 30s \
    -request-timeout 60s -cache-mb 64 \
    -drain-timeout 60s \
    > "$TMP/serve.log" 2>&1 &
PID=$!
for i in $(seq 1 100); do
    if curl -sf "$BASE/readyz" > /dev/null 2>&1; then break; fi
    kill -0 "$PID" 2>/dev/null || fail "server exited during startup"
    [ "$i" -eq 100 ] && fail "server never became ready"
    sleep 0.1
done

# Sheds are legal under the race detector's slowdown; anything else
# (bad_request = schema drift, failed/transport = broken server) fails.
"$TMP/youtiao-load" -replay traces/steady-state.jsonl -workers 4 \
    -target "$BASE" -timeout 60s -allow ok,shed \
    -report json -out "$OUT_DIR/steady-state.server.json" \
    || fail "live-server replay produced unexpected outcome classes"

curl -s "$BASE/readyz" > "$TMP/ready.json" || fail "readyz scrape failed"
python3 - "$OUT_DIR/steady-state.server.json" "$TMP/ready.json" <<'EOF'
import json, sys
sum_, ready = json.load(open(sys.argv[1])), json.load(open(sys.argv[2]))
assert sum_["outcomes"].get("ok", 0) > 0, sum_["outcomes"]
tenants = {"tenant-alpha", "tenant-beta", "tenant-gamma"}
assert set(sum_["clients"]) == tenants, sum_["clients"]
seen = ready.get("clients") or {}
assert tenants <= set(seen), f"server fairness rows missing tenants: {sorted(seen)}"
for t in tenants:
    assert seen[t]["requests"] == sum_["clients"][t]["requests"], (t, seen[t], sum_["clients"][t])
EOF

echo "workload-smoke: SIGTERM drain"
kill -TERM "$PID"
status=0
wait "$PID" || status=$?
PID=""
[ "$status" -eq 0 ] || fail "server exited $status after SIGTERM"

echo "workload-smoke: PASS"
