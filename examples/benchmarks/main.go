// Benchmarks: run the paper's five algorithm workloads (VQC, ISING,
// DJ, QFT, QKNN) through the multiplexing-aware scheduler on the
// 36-qubit chip and compare circuit depth, latency and estimated
// fidelity across control architectures (Figures 14-15).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	rows, err := experiments.Figs14And15(experiments.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Benchmark workloads on the 36-qubit chip under three control architectures")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tmetric\tGoogle (dedicated)\tYOUTIAO (hybrid)\tAcharya (TDM local)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t2q depth\t%d\t%d\t%d\n", r.Benchmark, r.GoogleDepth, r.YoutiaoDepth, r.AcharyaDepth)
		fmt.Fprintf(w, "\tlatency (µs)\t%.1f\t%.1f\t%.1f\n",
			r.GoogleLatencyNs/1000, r.YoutiaoLatencyNs/1000, r.AcharyaLatencyNs/1000)
		fmt.Fprintf(w, "\tfidelity\t%.1f%%\t%.1f%%\t%.1f%%\n",
			100*r.GoogleFidelity, 100*r.YoutiaoFidelity, 100*r.AcharyaFidelity)
	}
	w.Flush()

	var yg, ay float64
	for _, r := range rows {
		yg += float64(r.YoutiaoDepth) / float64(r.GoogleDepth)
		ay += float64(r.AcharyaDepth) / float64(r.YoutiaoDepth)
	}
	n := float64(len(rows))
	fmt.Printf("\nmean depth overhead vs Google: %.2fx; mean depth saved vs Acharya: %.2fx\n", yg/n, ay/n)
	fmt.Println("YOUTIAO trades a small depth increase for a ~3x wiring reduction;")
	fmt.Println("the Acharya-style local clustering pays more depth for the same reduction.")
}
