// Fault-tolerant chip design (the paper's §5.2 case study): build
// rotated surface-code chips at growing code distance, wire them with
// YOUTIAO in the surface-code operation mode, and compare wiring cost
// and error-correction-cycle depth against the Google-style baseline.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/circuit"
	"repro/internal/cost"
	"repro/internal/experiments"
	"repro/internal/schedule"
	"repro/internal/surface"
	"repro/internal/wiring"
)

func main() {
	log.SetFlags(0)
	model := cost.DefaultModel()

	fmt.Println("Fault-tolerant quantum chip design with YOUTIAO")
	fmt.Println("(25 error-correction cycles per schedule)")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "distance\tqubits\tcouplers\tGoogle coax\tYOUTIAO coax\tGoogle cost\tYOUTIAO cost\tdepth G\tdepth Y")

	for _, d := range []int{3, 5, 7} {
		code, err := surface.New(d)
		if err != nil {
			log.Fatal(err)
		}
		circ := circuit.Decompose(code.CycleCircuit(25))

		// Google baseline: dedicated lines, no serialization.
		gPlan := wiring.Google(code.Chip)
		gSched, err := schedule.New(code.Chip, nil, schedule.DefaultDurations()).Run(circ)
		if err != nil {
			log.Fatal(err)
		}

		// YOUTIAO in surface-code operation mode: parity XY drives are
		// FDM'd, qubit Z activity is sparse, CZ pulses ride couplers.
		p, err := experiments.BuildPipeline(code.Chip, experiments.Options{
			Seed:                1,
			SparseQubitZ:        true,
			TDMMinLossyFraction: 0.8,
		})
		if err != nil {
			log.Fatal(err)
		}
		yPlan, err := wiring.Youtiao(code.Chip, p.FDM, p.TDM)
		if err != nil {
			log.Fatal(err)
		}
		ySch := schedule.New(code.Chip, p.TDM, schedule.DefaultDurations())
		ySch.CZMode = schedule.CZCouplerOnly
		ySched, err := ySch.Run(circ)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t$%.0fK\t$%.0fK\t%d\t%d\n",
			d, code.Chip.NumQubits(), code.Chip.NumCouplers(),
			gPlan.CoaxLines(), yPlan.CoaxLines(),
			model.WiringCost(gPlan)/1000, model.WiringCost(yPlan)/1000,
			gSched.TwoQubitDepth, ySched.TwoQubitDepth)
	}
	w.Flush()

	fmt.Println()
	fmt.Println("The wiring bill scales with the full d² lattice while the depth")
	fmt.Println("stays bounded: grouped devices are chosen for natural non-parallelism,")
	fmt.Println("so EC cycles keep (nearly) their 4-layer CZ cadence.")
}
