// Incremental: characterize a chip once and redesign it across a sweep
// of TDM parallelism thresholds (Theta) with youtiao.Designer. The
// first design measures crosstalk and fits the characterization models;
// every later point reuses those artifacts and re-runs only the TDM
// grouping, as the stage report shows.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)

	chip := youtiao.NewSquareChip(6, 6)
	designer := youtiao.NewDesigner(chip)

	fmt.Println("theta  Z-lines  1:2  1:4  coax  hits  misses")
	for _, theta := range []float64{2, 4, 6, 8} {
		before := designer.StageReport()
		design, err := designer.Redesign(youtiao.Options{
			Seed:     1,
			Theta:    theta,
			HasTheta: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		delta := designer.StageReport().Sub(before)
		d2, d4 := design.DemuxMix()
		fmt.Printf("%-6.0f %-8d %-4d %-4d %-5d %-5d %d\n",
			theta, design.Youtiao.ZLines, d2, d4, design.Youtiao.CoaxLines,
			delta.Hits, delta.Misses)
	}

	// The cumulative report: characterization ran exactly once even
	// though four systems were designed.
	fmt.Println()
	fmt.Print(designer.StageReport().Text())
}
