// Modeltransfer: the Figure 12 study as a runnable walkthrough. A
// crosstalk model is trained on a 6×6 chip, transferred to an 8×8 chip
// of the same family, and used to design FDM lines there; the fidelity
// cost of the transfer is measured against a natively trained model.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)

	res, err := experiments.Fig12(experiments.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Crosstalk model generality across similar chips")
	fmt.Println()
	fmt.Printf("Jensen–Shannon divergence between the 6x6- and 8x8-trained\n")
	fmt.Printf("predicted noise distributions: %.3f (0 = identical, 1 = disjoint)\n\n", res.JSDivergence)

	fmt.Println("Per-gate fidelity of 10 random single-qubit gate layers on the 8x8")
	fmt.Println("chip, FDM-grouped with the transferred vs the native model:")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "#qubits\ttransferred\tnative\ttransfer cost (err x1e-4)")
	for _, s := range res.Scales {
		fmt.Fprintf(w, "%d\t%.4f%%\t%.4f%%\t%+.2f\n",
			s.Qubits, 100*s.TransferredFidelity, 100*s.NativeFidelity,
			1e4*(s.NativeFidelity-s.TransferredFidelity))
	}
	w.Flush()

	fmt.Println()
	fmt.Println("The transferred model keeps fidelity within a fraction of 1e-4 per")
	fmt.Println("gate of the native one, so one calibration campaign can guide the")
	fmt.Println("wiring design of every chip that shares the substrate and process.")
}
