// Quickstart: design a hybrid-multiplexed wiring system for a 6×6
// (36-qubit) chip — the paper's evaluation device — and inspect the
// result through the public API.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)

	// Build the evaluation chip: a 6×6 square lattice of Xmon qubits.
	chip := youtiao.NewSquareChip(6, 6)

	// Run the full pipeline: synthetic device fabrication, crosstalk
	// characterization, FDM + TDM grouping, frequency allocation and
	// wiring assembly. The seed makes everything reproducible.
	design, err := youtiao.Design(chip, youtiao.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("chip %s: %d qubits, %d couplers\n\n",
		chip.Name, chip.NumQubits(), chip.NumCouplers())

	// The crosstalk model: how strongly physical vs topological
	// distance predicts crosstalk on this device.
	fmt.Printf("fitted equivalent-distance weights: w_phy=%.2f, w_top=%.2f\n",
		design.CrosstalkWeights.WPhy, design.CrosstalkWeights.WTop)
	fmt.Printf("predicted crosstalk q0<->q1 (adjacent): %.2e\n", design.PredictCrosstalk(0, 1))
	fmt.Printf("predicted crosstalk q0<->q35 (corners): %.2e\n\n", design.PredictCrosstalk(0, 35))

	// FDM: which qubits share XY lines and at what frequencies.
	fmt.Printf("FDM XY lines (%d):\n", len(design.FDMLines))
	for i, line := range design.FDMLines {
		fmt.Printf("  line %d:", i)
		for j, q := range line.Qubits {
			fmt.Printf(" q%d@%.2fGHz", q, line.FreqGHz[j])
		}
		fmt.Println()
	}

	// TDM: which devices share Z lines through cryo-DEMUXes.
	d2, d4 := design.DemuxMix()
	fmt.Printf("\nTDM Z lines: %d (%d x 1:2 DEMUX, %d x 1:4 DEMUX)\n",
		len(design.TDMGroups), d2, d4)

	// The bottom line: wiring reduction over the Google-style baseline.
	fmt.Printf("\ncoax cables: %d -> %d (%.1fx reduction)\n",
		design.Baseline.CoaxLines, design.Youtiao.CoaxLines, design.CoaxReduction())
	fmt.Printf("wiring cost: $%.0fK -> $%.0fK (%.1fx reduction)\n",
		design.Baseline.CostUSD/1000, design.Youtiao.CostUSD/1000, design.CostReduction())

	// Run a benchmark circuit through the multiplexed scheduler.
	depth, latency, err := design.ScheduleBenchmark("QFT", 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n8-qubit QFT under TDM control: 2q-gate depth %d, latency %.1f µs\n",
		depth, latency/1000)
}
