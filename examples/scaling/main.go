// Scaling: estimate the cryostat wiring of large quantum systems
// (Figure 17). The YOUTIAO Z-line fan-out is calibrated by running the
// real design pipeline on a 10×10 chip, then extrapolated from 10 to
// 100,000 qubits, including the IBM-chiplet scale-out comparison.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	res, err := experiments.Fig17(experiments.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("calibrated Z DEMUX fan-out: square %.2f, heavy-hex %.2f\n\n",
		res.ZFanoutSquare, res.ZFanoutHeavyHex)

	fmt.Println("Square-topology systems, 10 to 100k qubits:")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "#qubits\tGoogle coax\tYOUTIAO coax\treduction")
	for _, p := range append(res.SmallSweep, res.LargeSweep[1:]...) {
		fmt.Fprintf(w, "%d\t%d\t%d\t%.1fx\n", p.Qubits, p.GoogleCoax, p.YoutiaoCoax, p.Reduction())
	}
	w.Flush()

	fmt.Printf("\n150-qubit system: %d -> %d coax; all-qubit parallel-XY fidelity %.1f%%\n",
		res.System150.GoogleCoax, res.System150.YoutiaoCoax, 100*res.System150.XYFidelity)

	fmt.Println("\nIBM chiplet scale-out (133-qubit heavy-hex chiplets):")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "chips\t#qubits\tIBM cables\tYOUTIAO cables\treduction")
	for _, p := range res.Chiplets {
		if p.Chips == 1 || p.Chips%5 == 0 {
			fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.1fx\n",
				p.Chips, p.Qubits, p.IBMCables, p.YoutiaoCables, p.Reduction())
		}
	}
	w.Flush()

	fmt.Printf("\ncoax savings at 100k qubits: $%.1fB... of coax alone\n", res.SavingsUSD100k/1e9)
	fmt.Println("The cryostat cable limit (~4,000 coax in a Bluefors KIDE) moves from")
	last := res.LargeSweep[0]
	fmt.Printf("~%d qubits to ~%d qubits per cryostat at this fan-out.\n",
		970, int(float64(970)*float64(last.GoogleCoax)/float64(last.YoutiaoCoax)))
}
