// Signalchain: follow one design down to the hardware — the composite
// FDM waveforms each XY line carries, the cryo-DEMUX digital control
// activity of a scheduled circuit, the multiplexed readout feedline
// fidelity, and the dilution-refrigerator thermal budget the wiring
// reduction buys back.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	log.SetFlags(0)

	design, err := youtiao.Design(youtiao.NewSquareChip(6, 6), youtiao.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== FDM line signals (composite drive waveforms) ===")
	sigs, err := design.AnalyzeFDMSignals()
	if err != nil {
		log.Fatal(err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "line\ttones\tcrest factor\tmin spacing (MHz)\ttone recovery err\tclipped")
	for _, s := range sigs {
		fmt.Fprintf(w, "%d\t%d\t%.2f\t%.0f\t%.2e\t%v\n",
			s.Line, s.NumTones, s.CrestFactor, 1000*s.MinSpacingGHz, s.WorstToneRecoveryError, s.Clipped)
	}
	w.Flush()

	fmt.Println("\n=== Cryo-DEMUX digital control (8-qubit QFT) ===")
	plan, err := design.DemuxControlPlan("QFT", 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule slots: %d\n", plan.Slots)
	fmt.Printf("DEMUX port switches: %d (%.2f nJ cold-stage actuation at 1 pJ/switch)\n",
		plan.TotalSwitches, plan.SwitchEnergyNanojoule)

	fmt.Println("\n=== Multiplexed readout ===")
	ro, err := design.ReadoutDesign()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d feedlines x %d qubits; worst single-shot fidelity %.3f%% (target %.0f%%)\n",
		ro.Feedlines, ro.QubitsPerLine, 100*ro.WorstFidelity, 100*ro.TargetFidelity)

	fmt.Println("\n=== Thermal budget (standard large dilution refrigerator) ===")
	th, err := design.ThermalBudget()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("binding stage: %s\n", th.WorstStage)
	fmt.Printf("budget used: baseline %.2f%% -> YOUTIAO %.2f%%\n",
		100*th.BaselineFraction, 100*th.YoutiaoFraction)
	fmt.Printf("qubits per cryostat at this cable density: %d -> %d\n",
		th.BaselineQubitCapacity, th.YoutiaoQubitCapacity)
}
