package youtiao

import (
	"bytes"
	"encoding/json"
	"testing"
)

// buildManifest runs one fully-observed design and assembles its
// manifest the way cmd/youtiao does, with a caller-chosen timestamp
// and worker count.
func buildManifest(t *testing.T, createdAt string, workers int) *Manifest {
	t.Helper()
	reg := NewObservability()
	Observe(reg)
	defer Observe(nil)
	opts := Options{Seed: 5, Workers: workers, Obs: reg}
	d := NewDesigner(NewSquareChip(4, 4))
	res, err := d.Redesign(opts)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManifest(res, opts)
	m.CreatedAt = createdAt
	report := d.StageReport()
	m.Stages = &report
	snap := reg.Snapshot()
	m.Obs = &snap
	return m
}

// Two runs at identical options and seed must produce manifests that
// differ only in timing fields: their StripTimings forms render to
// byte-identical JSON even across worker counts and timestamps.
func TestManifestStripTimingsReproducible(t *testing.T) {
	a := buildManifest(t, "2026-01-01T00:00:01Z", 1)
	b := buildManifest(t, "2026-01-01T00:00:02Z", 1)
	aj, err := a.StripTimings().JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.StripTimings().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Errorf("stripped manifests differ across identical runs:\n%s\n----\n%s", aj, bj)
	}

	// Workers is an env field, so stripping does not erase it — but
	// everything the design produced must still match.
	c := buildManifest(t, "2026-01-01T00:00:03Z", 4)
	if c.OptionsDigest != a.OptionsDigest {
		t.Errorf("worker count moved the options digest: %s vs %s", a.OptionsDigest, c.OptionsDigest)
	}
	cs := c.StripTimings()
	as := a.StripTimings()
	csObs, _ := json.Marshal(cs.Obs)
	asObs, _ := json.Marshal(as.Obs)
	if !bytes.Equal(csObs, asObs) {
		t.Errorf("stripped obs snapshot differs across worker counts:\n%s\n----\n%s", asObs, csObs)
	}
}

// StripTimings must return a cleaned copy and leave the original
// manifest (the one written to disk) fully timed.
func TestManifestStripTimingsCopies(t *testing.T) {
	m := buildManifest(t, "2026-01-01T00:00:01Z", 1)
	if m.Stages.Wall == 0 {
		t.Fatal("full manifest lost its stage wall time")
	}
	s := m.StripTimings()
	if s.CreatedAt != "" || s.Stages.Wall != 0 {
		t.Error("StripTimings kept timing fields")
	}
	for _, st := range s.Stages.Stages {
		if st.Wall != 0 {
			t.Errorf("stage %s kept wall time after strip", st.Name)
		}
	}
	if m.CreatedAt == "" || m.Stages.Wall == 0 {
		t.Error("StripTimings mutated the original manifest")
	}
	if m.Obs.Gauges == nil && len(m.Obs.Counters) == 0 {
		t.Error("original obs snapshot lost its content")
	}
}
