package youtiao

import (
	"encoding/json"
	"testing"
)

func TestExportRoundTrip(t *testing.T) {
	d := designSquare(t, 3, 3)
	data, err := d.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	s, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.Chip.Qubits != 9 || s.Chip.Topology != "square" {
		t.Errorf("chip metadata wrong: %+v", s.Chip)
	}
	if len(s.FDMLines) != len(d.FDMLines) {
		t.Errorf("FDM lines lost: %d vs %d", len(s.FDMLines), len(d.FDMLines))
	}
	if len(s.TDMGroups) != len(d.TDMGroups) {
		t.Errorf("TDM groups lost")
	}
	if s.Youtiao != d.Youtiao || s.Baseline != d.Baseline {
		t.Error("wiring bills lost")
	}
	if s.CrosstalkModel.WPhy != d.CrosstalkWeights.WPhy {
		t.Error("model weights lost")
	}
}

func TestDecodeSnapshotValidation(t *testing.T) {
	if _, err := DecodeSnapshot([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := DecodeSnapshot([]byte("{}")); err == nil {
		t.Error("empty snapshot accepted")
	}
	// Coverage mismatch.
	bad := DesignSnapshot{}
	bad.Chip.Qubits = 4
	bad.FDMLines = []FDMLine{{Qubits: []int{0, 1}}}
	data, err := json.Marshal(&bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(data); err == nil {
		t.Error("under-covering snapshot accepted")
	}
}

func TestSnapshotIsDetached(t *testing.T) {
	d := designSquare(t, 3, 3)
	s := d.Snapshot()
	if len(s.FDMLines) == 0 {
		t.Fatal("no lines")
	}
	// Mutating the snapshot must not corrupt... the slices are shared
	// by design (read-only snapshot); just assert the values agree.
	for i := range s.FDMLines {
		if len(s.FDMLines[i].Qubits) != len(d.FDMLines[i].Qubits) {
			t.Error("line shape mismatch")
		}
	}
}
