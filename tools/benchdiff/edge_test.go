package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBenches writes a snapshot JSON file for runCompare tests.
func writeBenches(t *testing.T, dir, name string, benches ...Bench) string {
	t.Helper()
	data, err := json.Marshal(Snapshot{Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMergeRunsMismatchedSets: -count=N output where some benchmarks
// appear more often than others (one was added mid-matrix, another is
// gated behind -short). Every name must survive, first-seen order must
// hold, and each row must carry its own per-field minimum.
func TestMergeRunsMismatchedSets(t *testing.T) {
	got := mergeRuns([]Bench{
		{Name: "A", Iterations: 10, NsPerOp: 100, BytesPerOp: 64, AllocsPerOp: 4},
		{Name: "B", Iterations: 10, NsPerOp: 50, BytesPerOp: 32, AllocsPerOp: 2},
		{Name: "A", Iterations: 20, NsPerOp: 90, BytesPerOp: 80, AllocsPerOp: 3},
		{Name: "C", Iterations: 5, NsPerOp: 7},
		{Name: "A", Iterations: 30, NsPerOp: 110, BytesPerOp: 48, AllocsPerOp: 5},
	})
	if len(got) != 3 {
		t.Fatalf("%d merged rows, want 3: %+v", len(got), got)
	}
	if got[0].Name != "A" || got[1].Name != "B" || got[2].Name != "C" {
		t.Fatalf("order %s,%s,%s, want first-seen A,B,C", got[0].Name, got[1].Name, got[2].Name)
	}
	a := got[0]
	// Minima are taken per field, not per run: ns/op from the second
	// run, B/op from the third, allocs/op from the second.
	if a.NsPerOp != 90 || a.BytesPerOp != 48 || a.AllocsPerOp != 3 {
		t.Errorf("A merged to ns=%g B=%g allocs=%g, want per-field minima 90/48/3", a.NsPerOp, a.BytesPerOp, a.AllocsPerOp)
	}
	if a.Iterations != 20 {
		t.Errorf("A iterations %d, want 20 (from the fastest run)", a.Iterations)
	}
	if got[1].NsPerOp != 50 || got[2].NsPerOp != 7 {
		t.Errorf("single-run rows changed: B=%g C=%g", got[1].NsPerOp, got[2].NsPerOp)
	}
}

// TestMergeRunsSingleCount: with -count=1 every benchmark appears once;
// merging must be the identity.
func TestMergeRunsSingleCount(t *testing.T) {
	in := []Bench{
		{Name: "X", Iterations: 1, NsPerOp: 11, Metrics: map[string]float64{"m": 1}},
		{Name: "Y", Iterations: 2, NsPerOp: 22},
	}
	got := mergeRuns(in)
	if len(got) != 2 || got[0].Name != "X" || got[1].Name != "Y" {
		t.Fatalf("single-count merge changed the rows: %+v", got)
	}
	if got[0].NsPerOp != 11 || got[0].Metrics["m"] != 1 || got[1].NsPerOp != 22 {
		t.Errorf("single-count merge lost fields: %+v", got)
	}
}

// TestMergeRunsZeroValuedFields: a benchmark without -benchmem fields
// parses with zero B/op and allocs/op; merging with a later richer run
// must keep the zero (min) rather than resurrect the larger value, and
// a faster zero-alloc run must win the allocs minimum.
func TestMergeRunsZeroValuedFields(t *testing.T) {
	got := mergeRuns([]Bench{
		{Name: "Z", Iterations: 10, NsPerOp: 100}, // no -benchmem fields
		{Name: "Z", Iterations: 10, NsPerOp: 95, BytesPerOp: 16, AllocsPerOp: 1},
	})
	if len(got) != 1 {
		t.Fatalf("%d rows, want 1", len(got))
	}
	if got[0].NsPerOp != 95 || got[0].BytesPerOp != 0 || got[0].AllocsPerOp != 0 {
		t.Errorf("zero-field merge: %+v, want ns=95 with B/op and allocs/op held at 0", got[0])
	}
}

// TestCompareZeroAllocBaselines: alloc ratios with a zero on either
// side must never fail the gate or print an infinity.
func TestCompareZeroAllocBaselines(t *testing.T) {
	dir := t.TempDir()
	base := writeBenches(t, dir, "base.json",
		Bench{Name: "GainedAllocs", NsPerOp: 100, AllocsPerOp: 0},
		Bench{Name: "LostAllocs", NsPerOp: 100, AllocsPerOp: 8},
		Bench{Name: "Steady", NsPerOp: 100, AllocsPerOp: 3},
	)
	cur := writeBenches(t, dir, "cur.json",
		// Baseline had no allocations, current has many: base==0 is "no
		// data", never a regression.
		Bench{Name: "GainedAllocs", NsPerOp: 100, AllocsPerOp: 50},
		// Allocations eliminated: ratio 0 must render a capped speedup,
		// not +Infx.
		Bench{Name: "LostAllocs", NsPerOp: 100, AllocsPerOp: 0},
		Bench{Name: "Steady", NsPerOp: 100, AllocsPerOp: 3},
	)
	ok, report, err := runCompare(base, cur, gates{ns: 0.20, bytes: 0.20, allocs: 0.20})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("zero-alloc edge cases failed the gate:\n%s", report)
	}
	if strings.Contains(report, "Inf") || strings.Contains(report, "NaN") {
		t.Errorf("report renders a non-finite ratio:\n%s", report)
	}
	if !strings.Contains(report, ">99x") {
		t.Errorf("eliminated allocations not rendered as a capped speedup:\n%s", report)
	}
}

// TestCompareMismatchedSets: a new benchmark is reported and passes; a
// baseline benchmark missing from the current run fails loudly, naming
// the retired benchmark.
func TestCompareMismatchedSets(t *testing.T) {
	dir := t.TempDir()
	base := writeBenches(t, dir, "base.json",
		Bench{Name: "Shared", NsPerOp: 100, AllocsPerOp: 1},
		Bench{Name: "Retired", NsPerOp: 42, AllocsPerOp: 1},
	)
	cur := writeBenches(t, dir, "cur.json",
		Bench{Name: "Shared", NsPerOp: 105, AllocsPerOp: 1},
		Bench{Name: "Added", NsPerOp: 9999999, AllocsPerOp: 9999},
	)
	ok, report, err := runCompare(base, cur, gates{ns: 0.20, bytes: 0.20, allocs: 0.20})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("missing baseline benchmark Retired did not fail the gate:\n%s", report)
	}
	for _, want := range []string{"new", "MISSING", "Retired", "Added"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// TestVerdictEdges pins the grading boundaries, including the
// divide-by-zero display cap.
func TestVerdictEdges(t *testing.T) {
	cases := []struct {
		r    float64
		want string
	}{
		{1.0, "ok"},
		{1.2, "ok"}, // exactly at threshold: not a regression
		{1.21, "REGRESS"},
		{0.8, "ok"}, // boundary: not yet an improvement label
		{0.5, "2.0x"},
		{0.01, ">99x"},
		{0.0, ">99x"}, // current dropped to zero
	}
	for _, tc := range cases {
		if got := verdict(tc.r, 0.20); got != tc.want {
			t.Errorf("verdict(%g) = %q, want %q", tc.r, got, tc.want)
		}
	}
}
