package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkStateVector16Q-8   	      50	  22000000 ns/op	 1048600 B/op	       3 allocs/op
BenchmarkMultiPathDistances-8	     100	   1200000 ns/op	  500000 B/op	     300 allocs/op
BenchmarkTable1-8           	       2	 600000000 ns/op	     3.10 cost-reduction-d11	12000 B/op	      40 allocs/op
PASS
ok  	repro	12.3s
`

func TestParse(t *testing.T) {
	snap, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(snap.Benchmarks))
	}
	byName := map[string]Bench{}
	for _, b := range snap.Benchmarks {
		byName[b.Name] = b
	}
	sv, ok := byName["StateVector16Q"]
	if !ok {
		t.Fatalf("StateVector16Q missing (GOMAXPROCS suffix not stripped?): %+v", snap.Benchmarks)
	}
	if sv.NsPerOp != 22000000 || sv.AllocsPerOp != 3 || sv.BytesPerOp != 1048600 {
		t.Errorf("bad StateVector16Q parse: %+v", sv)
	}
	t1 := byName["Table1"]
	if got := t1.Metrics["cost-reduction-d11"]; got != 3.10 {
		t.Errorf("custom metric = %v, want 3.10", got)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Error("empty bench output accepted")
	}
}

func writeSnap(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompareRegressionAndImprovement(t *testing.T) {
	dir := t.TempDir()
	base := writeSnap(t, dir, "base.json", `{"benchmarks":[
		{"name":"A","iterations":10,"ns_per_op":1000,"allocs_per_op":100},
		{"name":"B","iterations":10,"ns_per_op":1000,"allocs_per_op":100},
		{"name":"C","iterations":10,"ns_per_op":1000,"allocs_per_op":100}]}`)

	// A regresses 50% in time, B improves 2x, C regresses in allocs only.
	cur := writeSnap(t, dir, "cur.json", `{"benchmarks":[
		{"name":"A","iterations":10,"ns_per_op":1500,"allocs_per_op":100},
		{"name":"B","iterations":10,"ns_per_op":500,"allocs_per_op":100},
		{"name":"C","iterations":10,"ns_per_op":1000,"allocs_per_op":200},
		{"name":"D","iterations":10,"ns_per_op":9999,"allocs_per_op":1}]}`)

	ok, report, err := runCompare(base, cur, uniformGates(0.20))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("regressions not flagged; report:\n%s", report)
	}
	for _, want := range []string{"REGRESS", "2.0x", "new"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	// Within threshold: passes.
	ok2, _, err := runCompare(base, base, uniformGates(0.20))
	if err != nil {
		t.Fatal(err)
	}
	if !ok2 {
		t.Error("identical snapshots flagged as regression")
	}
}

// A benchmark only in the current run is reported as new and passes; a
// baseline benchmark missing from the current run fails the gate —
// silently losing a benchmark would retire its regression gate with it.
func TestCompareNewPassesMissingFails(t *testing.T) {
	dir := t.TempDir()
	base := writeSnap(t, dir, "base.json", `{"benchmarks":[{"name":"Old","iterations":1,"ns_per_op":10}]}`)
	cur := writeSnap(t, dir, "cur.json", `{"benchmarks":[{"name":"New","iterations":1,"ns_per_op":10}]}`)
	ok, report, err := runCompare(base, cur, uniformGates(0.20))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("missing baseline benchmark must fail the gate:\n%s", report)
	}
	if !strings.Contains(report, "MISSING") || !strings.Contains(report, "new") {
		t.Errorf("report should mark the missing and new benchmarks:\n%s", report)
	}

	// A current run that still covers the whole baseline passes even
	// with extra new benchmarks.
	cur2 := writeSnap(t, dir, "cur2.json", `{"benchmarks":[
		{"name":"Old","iterations":1,"ns_per_op":10},
		{"name":"New","iterations":1,"ns_per_op":10}]}`)
	ok2, report2, err := runCompare(base, cur2, uniformGates(0.20))
	if err != nil {
		t.Fatal(err)
	}
	if !ok2 {
		t.Errorf("superset current run should pass:\n%s", report2)
	}
}

// The bytes and allocs gates run on their own tolerances: a B/op or
// allocs/op regression fails even when ns/op is flat, and each
// dimension honours its own threshold.
func TestCompareBytesAndAllocsGating(t *testing.T) {
	dir := t.TempDir()
	base := writeSnap(t, dir, "base.json", `{"benchmarks":[
		{"name":"Mem","iterations":10,"ns_per_op":1000,"bytes_per_op":1000,"allocs_per_op":100},
		{"name":"Alloc","iterations":10,"ns_per_op":1000,"bytes_per_op":1000,"allocs_per_op":100}]}`)
	// Mem regresses 50% in bytes only; Alloc regresses 50% in allocs only.
	cur := writeSnap(t, dir, "cur.json", `{"benchmarks":[
		{"name":"Mem","iterations":10,"ns_per_op":1000,"bytes_per_op":1500,"allocs_per_op":100},
		{"name":"Alloc","iterations":10,"ns_per_op":1000,"bytes_per_op":1000,"allocs_per_op":150}]}`)

	ok, report, err := runCompare(base, cur, uniformGates(0.20))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("bytes/allocs regressions not flagged:\n%s", report)
	}

	// Loose memory gates, tight time gate: the same run passes.
	ok2, report2, err := runCompare(base, cur, gates{ns: 0.20, bytes: 0.60, allocs: 0.60})
	if err != nil {
		t.Fatal(err)
	}
	if !ok2 {
		t.Errorf("per-dimension tolerances not honoured:\n%s", report2)
	}

	// Tight bytes gate alone flags only the bytes regression.
	ok3, report3, err := runCompare(base, cur, gates{ns: 0.20, bytes: 0.20, allocs: 0.60})
	if err != nil {
		t.Fatal(err)
	}
	if ok3 {
		t.Errorf("tight bytes gate did not flag the bytes regression:\n%s", report3)
	}
}

// uniformGates sets every dimension to the same tolerance, mirroring
// what main() does when only -max-regress is given.
func uniformGates(r float64) gates { return gates{ns: r, bytes: r, allocs: r} }

// -count=N output repeats each benchmark; the snapshot must keep the
// per-field minimum so one noisy sample cannot trip the gate.
func TestParseMergesRepeatedRuns(t *testing.T) {
	const repeated = `goos: linux
BenchmarkNoisy-8	10	300 ns/op	128 B/op	4 allocs/op
BenchmarkNoisy-8	12	 90 ns/op	160 B/op	2 allocs/op
BenchmarkNoisy-8	11	210 ns/op	 96 B/op	3 allocs/op
BenchmarkSteady-8	 5	 50 ns/op	  8 B/op	1 allocs/op
PASS
`
	snap, err := Parse(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("merged to %d rows, want 2: %+v", len(snap.Benchmarks), snap.Benchmarks)
	}
	byName := map[string]Bench{}
	for _, b := range snap.Benchmarks {
		byName[b.Name] = b
	}
	n := byName["Noisy"]
	if n.NsPerOp != 90 || n.BytesPerOp != 96 || n.AllocsPerOp != 2 {
		t.Errorf("merged Noisy = %+v, want per-field minima (90 ns, 96 B, 2 allocs)", n)
	}
	if n.Iterations != 12 {
		t.Errorf("merged Noisy iterations = %d, want the fastest run's 12", n.Iterations)
	}
	if s := byName["Steady"]; s.NsPerOp != 50 {
		t.Errorf("singleton Steady altered: %+v", s)
	}
}
