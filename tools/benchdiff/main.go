// Command benchdiff maintains the repository's benchmark-regression
// trajectory. It has two modes:
//
//	benchdiff -parse -in bench.out -out BENCH_20250101-120000.json
//	    Parse the text output of `go test -bench . -benchmem` into the
//	    canonical JSON snapshot format.
//
//	benchdiff -baseline BENCH_baseline.json -current BENCH_xxx.json
//	    Compare a snapshot against the committed baseline and exit
//	    non-zero when any benchmark regressed by more than its
//	    threshold in ns/op (-max-regress), B/op (-max-bytes-regress)
//	    or allocs/op (-max-allocs-regress). A benchmark present only in
//	    the current run is reported as new and never fails the gate; a
//	    baseline benchmark MISSING from the current run fails it —
//	    retiring a benchmark is a deliberate act that must come with a
//	    refreshed baseline, never a silent skip.
//
// The JSON snapshot is deliberately tiny and diff-friendly: one entry
// per benchmark with ns/op, B/op, allocs/op and any custom
// b.ReportMetric values.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark result line.
type Bench struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the canonical JSON layout of one bench run.
type Snapshot struct {
	Benchmarks []Bench `json:"benchmarks"`
}

func main() {
	parse := flag.Bool("parse", false, "parse `go test -bench` text into a JSON snapshot")
	in := flag.String("in", "", "input file (default stdin for -parse)")
	out := flag.String("out", "", "output file (default stdout for -parse)")
	baseline := flag.String("baseline", "", "baseline snapshot JSON for comparison")
	current := flag.String("current", "", "current snapshot JSON for comparison")
	maxRegress := flag.Float64("max-regress", 0.20, "fractional ns/op regression that fails the gate")
	maxBytes := flag.Float64("max-bytes-regress", -1, "fractional B/op regression that fails the gate (default: -max-regress)")
	maxAllocs := flag.Float64("max-allocs-regress", -1, "fractional allocs/op regression that fails the gate (default: -max-regress)")
	flag.Parse()

	g := gates{ns: *maxRegress, bytes: *maxBytes, allocs: *maxAllocs}
	if g.bytes < 0 {
		g.bytes = g.ns
	}
	if g.allocs < 0 {
		g.allocs = g.ns
	}

	switch {
	case *parse:
		if err := runParse(*in, *out); err != nil {
			fatal(err)
		}
	case *baseline != "" && *current != "":
		ok, report, err := runCompare(*baseline, *current, g)
		if err != nil {
			fatal(err)
		}
		fmt.Print(report)
		if !ok {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: benchdiff -parse [-in f] [-out f] | benchdiff -baseline a.json -current b.json [-max-regress 0.2] [-max-bytes-regress 0.2] [-max-allocs-regress 0.2]")
		os.Exit(2)
	}
}

// gates holds the per-dimension regression tolerances.
type gates struct {
	ns, bytes, allocs float64
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}

func runParse(in, out string) error {
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	snap, err := Parse(r)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// Parse reads `go test -bench` text output and extracts every benchmark
// result line.
func Parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseLine(line)
		if ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	snap.Benchmarks = mergeRuns(snap.Benchmarks)
	sort.Slice(snap.Benchmarks, func(i, j int) bool {
		return snap.Benchmarks[i].Name < snap.Benchmarks[j].Name
	})
	return snap, nil
}

// mergeRuns collapses repeated results of one benchmark (`go test
// -count=N`) into a single row carrying the per-field minimum of
// ns/op, B/op and allocs/op. Under scheduling noise every disturbance
// inflates a sample, so the minimum is the most stable estimate of the
// true cost — it is what the regression gate should compare. Custom
// metrics are taken from the fastest run.
func mergeRuns(in []Bench) []Bench {
	byName := make(map[string]*Bench, len(in))
	var order []string
	for _, b := range in {
		best, ok := byName[b.Name]
		if !ok {
			cp := b
			byName[b.Name] = &cp
			order = append(order, b.Name)
			continue
		}
		if b.NsPerOp < best.NsPerOp {
			best.NsPerOp = b.NsPerOp
			best.Iterations = b.Iterations
			best.Metrics = b.Metrics
		}
		if b.BytesPerOp < best.BytesPerOp {
			best.BytesPerOp = b.BytesPerOp
		}
		if b.AllocsPerOp < best.AllocsPerOp {
			best.AllocsPerOp = b.AllocsPerOp
		}
	}
	out := make([]Bench, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out
}

// parseLine handles one result line of the form
//
//	BenchmarkName-8  100  12345 ns/op  67 B/op  8 allocs/op  1.5 custom-metric
func parseLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Bench{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so snapshots from different machines
	// compare by benchmark identity.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	name = strings.TrimPrefix(name, "Benchmark")
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: name, Iterations: iters}
	// The remainder is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	if b.NsPerOp == 0 {
		return Bench{}, false
	}
	return b, true
}

func readSnapshot(path string) (map[string]Bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]Bench, len(snap.Benchmarks))
	for _, b := range snap.Benchmarks {
		m[b.Name] = b
	}
	return m, nil
}

// runCompare diffs current against baseline. It returns ok=false when
// any shared benchmark regressed beyond its gate in time, bytes or
// allocs, or when a baseline benchmark is missing from the current run
// (a silent disappearance would otherwise retire its regression gate).
func runCompare(baselinePath, currentPath string, g gates) (bool, string, error) {
	base, err := readSnapshot(baselinePath)
	if err != nil {
		return false, "", err
	}
	cur, err := readSnapshot(currentPath)
	if err != nil {
		return false, "", err
	}
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)

	var sb strings.Builder
	ok := true
	fmt.Fprintf(&sb, "%-40s %14s %14s %9s %9s %9s\n", "benchmark", "base ns/op", "cur ns/op", "time", "bytes", "allocs")
	for _, name := range names {
		c := cur[name]
		b, shared := base[name]
		if !shared {
			fmt.Fprintf(&sb, "%-40s %14s %14.0f %9s %9s %9s\n", name, "-", c.NsPerOp, "new", "new", "new")
			continue
		}
		tFlag := verdict(ratio(c.NsPerOp, b.NsPerOp), g.ns)
		bFlag := verdict(ratio(c.BytesPerOp, b.BytesPerOp), g.bytes)
		aFlag := verdict(ratio(c.AllocsPerOp, b.AllocsPerOp), g.allocs)
		if tFlag == "REGRESS" || bFlag == "REGRESS" || aFlag == "REGRESS" {
			ok = false
		}
		fmt.Fprintf(&sb, "%-40s %14.0f %14.0f %9s %9s %9s\n", name, b.NsPerOp, c.NsPerOp, tFlag, bFlag, aFlag)
	}
	missing := make([]string, 0)
	for name := range base {
		if _, shared := cur[name]; !shared {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		ok = false
		fmt.Fprintf(&sb, "%-40s %14.0f %14s %9s %9s %9s\n", name, base[name].NsPerOp, "-", "MISSING", "MISSING", "MISSING")
	}
	if len(missing) > 0 {
		fmt.Fprintf(&sb, "benchdiff: %d baseline benchmark(s) missing from the current run — retire them by refreshing the baseline, not by skipping\n", len(missing))
	}
	if ok {
		sb.WriteString("benchdiff: OK, no regression beyond threshold\n")
	} else {
		fmt.Fprintf(&sb, "benchdiff: FAIL (gates: time %.0f%%, bytes %.0f%%, allocs %.0f%%)\n", g.ns*100, g.bytes*100, g.allocs*100)
	}
	return ok, sb.String(), nil
}

// ratio returns cur/base, treating a zero base as "no data" (1.0) so
// new allocation-free benchmarks never divide by zero.
func ratio(cur, base float64) float64 {
	if base == 0 {
		return 1
	}
	return cur / base
}

// verdict grades a current/baseline ratio.
func verdict(r, maxRegress float64) string {
	switch {
	case r > 1+maxRegress:
		return "REGRESS"
	case r < 0.8:
		// A current value of 0 (e.g. allocations eliminated entirely)
		// would print as +Infx; cap the label instead.
		if s := 1 / r; s <= 99 {
			return fmt.Sprintf("%.1fx", s)
		}
		return ">99x"
	default:
		return "ok"
	}
}
