package youtiao

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/chip"
	"repro/internal/xmon"
)

func designSquare(t *testing.T, w, h int) *DesignResult {
	t.Helper()
	d, err := Design(NewSquareChip(w, h), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDesignEndToEnd(t *testing.T) {
	d := designSquare(t, 4, 4)
	if d.Chip.NumQubits() != 16 {
		t.Fatalf("chip size %d", d.Chip.NumQubits())
	}
	// FDM lines cover every qubit exactly once.
	seen := map[int]bool{}
	for _, line := range d.FDMLines {
		if len(line.Qubits) != len(line.FreqGHz) {
			t.Fatal("line qubits/frequencies mismatch")
		}
		for i, q := range line.Qubits {
			if seen[q] {
				t.Errorf("qubit %d on two lines", q)
			}
			seen[q] = true
			if line.FreqGHz[i] < 4 || line.FreqGHz[i] > 7 {
				t.Errorf("q%d frequency %.3f outside band", q, line.FreqGHz[i])
			}
		}
	}
	if len(seen) != 16 {
		t.Errorf("FDM lines cover %d qubits", len(seen))
	}
	// TDM groups cover qubits + couplers exactly once.
	devices := map[string]bool{}
	for _, g := range d.TDMGroups {
		for _, name := range g.Devices {
			if devices[name] {
				t.Errorf("device %s in two groups", name)
			}
			devices[name] = true
		}
	}
	if want := 16 + d.Chip.NumCouplers(); len(devices) != want {
		t.Errorf("TDM covers %d devices, want %d", len(devices), want)
	}
}

func TestDesignWiringReduction(t *testing.T) {
	d := designSquare(t, 6, 6)
	if r := d.CoaxReduction(); r < 2.0 {
		t.Errorf("coax reduction %.2fx below 2", r)
	}
	if r := d.CostReduction(); r < 1.8 {
		t.Errorf("cost reduction %.2fx below 1.8", r)
	}
	if d.Youtiao.Architecture != "youtiao" || d.Baseline.Architecture != "google" {
		t.Error("architecture labels wrong")
	}
	if d.Youtiao.Interfaces >= d.Baseline.Interfaces {
		t.Error("no interface reduction")
	}
}

func TestDesignAccessors(t *testing.T) {
	d := designSquare(t, 4, 4)
	if _, ok := d.QubitFrequency(0); !ok {
		t.Error("q0 has no frequency")
	}
	if _, ok := d.QubitFrequency(99); ok {
		t.Error("unknown qubit has a frequency")
	}
	if d.PredictCrosstalk(0, 1) <= d.PredictCrosstalk(0, 15) {
		t.Error("predicted crosstalk should decay from neighbour to far corner")
	}
	d2, d4 := d.DemuxMix()
	if d2+d4 == 0 {
		t.Error("no DEMUXes in the design")
	}
	if d.CrosstalkWeights.WPhy == 0 && d.CrosstalkWeights.WTop == 0 {
		t.Error("degenerate crosstalk weights")
	}
}

func TestDesignReport(t *testing.T) {
	d := designSquare(t, 3, 3)
	rep := d.Report()
	for _, want := range []string{"YOUTIAO design", "FDM", "TDM", "wiring", "crosstalk model"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestScheduleBenchmarkViaFacade(t *testing.T) {
	d := designSquare(t, 4, 4)
	depth, latency, err := d.ScheduleBenchmark("QFT", 6)
	if err != nil {
		t.Fatal(err)
	}
	if depth <= 0 || latency <= 0 {
		t.Errorf("degenerate schedule: %d, %v", depth, latency)
	}
	if _, _, err := d.ScheduleBenchmark("bogus", 6); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestNewChipConstructors(t *testing.T) {
	if c := NewHexagonChip(3, 4); c.NumQubits() != 12 {
		t.Error("hexagon constructor wrong")
	}
	if c := NewHeavySquareChip(2, 2); c.NumQubits() != 8 {
		t.Error("heavy-square constructor wrong")
	}
	if c := NewHeavyHexagonChip(2, 2); c.NumQubits() <= 4 {
		t.Error("heavy-hexagon constructor wrong")
	}
	if c := NewLowDensityChip(4, 2); c.NumQubits() != 8 {
		t.Error("low-density constructor wrong")
	}
	if _, err := NewChip("square", 20); err != nil {
		t.Error(err)
	}
	if _, err := NewChip("bogus", 20); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestDesignDevice(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dev := xmon.NewDevice(chip.Square(4, 4), xmon.DefaultParams(), rng)
	d, err := DesignDevice(dev, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.Chip != dev.Chip {
		t.Error("design not bound to the provided device")
	}
}

func TestDesignDeterministic(t *testing.T) {
	a := designSquare(t, 4, 4)
	b := designSquare(t, 4, 4)
	if a.Youtiao != b.Youtiao {
		t.Errorf("wiring differs across identical seeds: %+v vs %+v", a.Youtiao, b.Youtiao)
	}
}

func TestDefaultGateDurations(t *testing.T) {
	d := DefaultGateDurations()
	if d.TwoQubit <= d.OneQubit {
		t.Error("CZ should outlast 1q pulses")
	}
	if d.DemuxSwitch <= 0 {
		t.Error("missing DEMUX switch time")
	}
}

func TestDesignPartitionedChip(t *testing.T) {
	d, err := Design(NewSquareChip(8, 8), Options{Seed: 1, PartitionTargetSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if d.Regions == nil {
		t.Fatal("64-qubit chip at target 16 should be partitioned")
	}
	covered := 0
	for _, r := range d.Regions {
		covered += len(r)
	}
	if covered != 64 {
		t.Errorf("regions cover %d of 64 qubits", covered)
	}
	rep := d.Report()
	if !strings.Contains(rep, "partition") {
		t.Error("report omits the partition")
	}
}
