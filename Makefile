GO ?= go

.PHONY: build test race fuzz bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The determinism contract is only meaningful if the parallel stages are
# also race-free; -race is part of the standard verify gate.
race:
	$(GO) test -race ./...

fuzz:
	$(GO) test ./internal/fdm -run NONE -fuzz FuzzGroupAllocate -fuzztime 30s

bench:
	$(GO) test -run NONE -bench . -benchmem .

verify: build test race
