GO ?= go
BENCHTIME ?= 0.3s
BENCHCOUNT ?= 3
MAXREGRESS ?= 0.20
# Memory gates: B/op and allocs/op regressions fail independently of
# the time gate. Allocation counts are deterministic, so these can stay
# tight even on noisy shared runners.
MAXBYTESREGRESS ?= $(MAXREGRESS)
MAXALLOCSREGRESS ?= $(MAXREGRESS)
FUZZTIME ?= 30s
OUT ?= out
BENCH_STAMP := $(shell date +%Y%m%d-%H%M%S)

# Per-package coverage floors enforced by `make cover`, as
# package:percent pairs. The stage engine decides what work an
# incremental redesign may skip; obs and faults feed the manifests and
# degradation accounting; hypo decides experiment verdicts; serve is
# the overload/degradation surface exposed to clients; route owns the
# arena-pooled A* hot path whose scratch reuse must stay invisible;
# stage/cas is the persistence layer whose corruption handling must
# never regress to an error path.
COVER_FLOORS ?= internal/stage:90 internal/stage/cas:85 internal/obs:85 internal/faults:85 internal/hypo:85 internal/serve:85 internal/route:80 internal/sim:85

# sim-full knobs: the nightly long-form run replays the defect-storm
# workload scaled into overload for SIMDURATION of virtual time.
SIMSCALE ?= 4
SIMDURATION ?= 300s

.PHONY: build vet fmt-check lint test race race-faults fuzz bench bench-smoke bench-profile faults cover verify serve-smoke workload-smoke sim-full experiments experiments-smoke experiments-full clean

# Generated run products (bench logs, coverage profiles, manifests) all
# land under $(OUT), which is ignored wholesale; the committed
# BENCH_baseline.json stays at the repository root.
$(OUT):
	mkdir -p $(OUT)

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails (listing the files) when any file needs gofmt.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Full static pass: vet + formatting + staticcheck. CI installs a
# pinned staticcheck; locally it is skipped with a note when absent.
lint: vet fmt-check
	@if command -v staticcheck > /dev/null; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it pinned)"; fi

test:
	$(GO) test ./...

# The determinism contract is only meaningful if the parallel stages are
# also race-free; -race runs as its own CI matrix task so it never
# serializes behind the plain test pass.
race:
	$(GO) test -race ./...

# Focused race pass over the fault-injection, cancellation and context
# plumbing — the code most likely to regress under concurrency.
race-faults:
	$(GO) test -race -count=1 -run 'Fault|Defect|Ctx|Cancel|Deadline' ./internal/parallel ./internal/faults ./internal/crosstalk ./internal/experiments

fuzz:
	$(GO) test ./internal/fdm -run NONE -fuzz FuzzGroupAllocate -fuzztime $(FUZZTIME)
	$(GO) test ./internal/faults -run NONE -fuzz FuzzPlanExclusion -fuzztime $(FUZZTIME)
	$(GO) test ./internal/stage -run NONE -fuzz FuzzArtifactKey -fuzztime $(FUZZTIME)
	$(GO) test ./internal/stage/cas -run NONE -fuzz FuzzCASHeader -fuzztime $(FUZZTIME)
	$(GO) test ./internal/hypo -run NONE -fuzz FuzzExperimentSpec -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sim -run NONE -fuzz FuzzTraceDecode -fuzztime $(FUZZTIME)

# The benchmark-regression trajectory: run the full suite with
# allocation reporting, snapshot it as $(OUT)/BENCH_<stamp>.json, and
# gate on the committed baseline — time (ns/op), memory (B/op) and
# allocation count (allocs/op) each against their own tolerance, and a
# baseline benchmark missing from the run fails outright. Each
# benchmark runs $(BENCHCOUNT) times and the snapshot keeps the
# per-benchmark minimum — every scheduling disturbance inflates a
# sample, so the minimum is the noise-robust estimate the gate
# compares. Refresh the baseline deliberately with
#   cp $(OUT)/BENCH_<stamp>.json BENCH_baseline.json
# after a reviewed perf change, never automatically.
bench: | $(OUT)
	$(GO) test -run NONE -bench . -benchmem -benchtime $(BENCHTIME) -count $(BENCHCOUNT) . | tee $(OUT)/bench.out
	$(GO) run ./tools/benchdiff -parse -in $(OUT)/bench.out -out $(OUT)/BENCH_$(BENCH_STAMP).json
	$(GO) run ./tools/benchdiff -baseline BENCH_baseline.json -current $(OUT)/BENCH_$(BENCH_STAMP).json \
		-max-regress $(MAXREGRESS) -max-bytes-regress $(MAXBYTESREGRESS) -max-allocs-regress $(MAXALLOCSREGRESS)

# One-iteration sanity pass over every benchmark — wired into verify so
# a broken bench never reaches the trajectory.
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x -benchmem . > /dev/null

# CPU + heap profiles of the routing/anneal/1M-sweep hot paths, written
# under $(OUT) (CI uploads them as artifacts). Samples attribute to
# pipeline stages via the runtime/pprof labels the stage store applies.
bench-profile: | $(OUT)
	$(GO) test -run NONE -bench 'AStarRouting|AnnealedAllocation|ScaleSweep1M|DesignPipeline36Q' -benchtime 1x -benchmem \
		-cpuprofile $(OUT)/bench.cpu.pprof -memprofile $(OUT)/bench.mem.pprof . > /dev/null

# Coverage over the whole module, plus enforced per-package floors (see
# COVER_FLOORS above): any listed package dropping below its floor
# fails the target.
cover: | $(OUT)
	$(GO) test -coverprofile=$(OUT)/cover.out ./...
	@$(GO) tool cover -func=$(OUT)/cover.out | tail -n 1
	@fail=0; for entry in $(COVER_FLOORS); do \
		pkg=$${entry%:*}; floor=$${entry#*:}; \
		prof=$(OUT)/cover.$$(echo $$pkg | tr / .).out; \
		$(GO) test -coverprofile=$$prof ./$$pkg > /dev/null || { fail=1; continue; }; \
		pct=$$($(GO) tool cover -func=$$prof | awk '$$1=="total:"{sub(/%/,"",$$3); print $$3}'); \
		echo "$$pkg coverage: $$pct% (floor: $$floor%)"; \
		awk -v p="$$pct" -v f="$$floor" 'BEGIN{exit !(p+0 >= f+0)}' || \
			{ echo "FAIL: $$pkg coverage $$pct% is below the $$floor% floor"; fail=1; }; \
	done; exit $$fail

# Smoke-test graceful degradation: design a small chip across a defect
# ladder and print the wiring/fidelity table.
faults:
	$(GO) run ./cmd/youtiao -qubits 25 -sweep-defects 0,0.01,0.02,0.05 -retry-budget 3

# End-to-end smoke of the real youtiao-serve binary (race-enabled
# build): probes, a design request, an overload burst that must shed
# with 429 + Retry-After, a /metrics scrape, and a SIGTERM drain that
# must exit cleanly. See DESIGN.md, "The serving contract".
serve-smoke:
	./scripts/serve_smoke.sh

# The CI replay-regression gate: replay the committed golden traces
# against the library driver (deterministic summary must match the
# committed fixtures at workers 1 and 4), against a persistent warm
# cache tier, and against a live race-enabled youtiao-serve. See
# DESIGN.md, "The workload contract".
workload-smoke:
	./scripts/workload_smoke.sh

# Nightly long-form load run: the defect-storm workload scaled into
# overload over $(SIMDURATION) of virtual time, replayed through the
# library driver. Not a gate — the JSON report under $(OUT) is the
# artifact, for trend-watching throughput, fairness and hit rates.
sim-full: | $(OUT)
	$(GO) run ./cmd/youtiao-load -workload defect-storm \
		-scale $(SIMSCALE) -duration $(SIMDURATION) -workers 8 \
		-report json -out $(OUT)/sim-full.json
	@cat $(OUT)/sim-full.json

# The hypothesis-experiment harness (cmd/hypo): each registered
# experiment states a claim, runs it under the verdict rules of
# internal/hypo, and records FINDINGS.json / FINDINGS.md under
# hypotheses/<id>/. `experiments` runs the full registry at default
# seeds; `experiments-smoke` runs only the deterministic tier (the CI
# gate — fast and byte-reproducible); `experiments-full` re-runs the
# statistical tier on an extended seed set.
experiments:
	$(GO) run ./cmd/hypo -run all -out hypotheses

experiments-smoke:
	$(GO) run ./cmd/hypo -run deterministic -out hypotheses

experiments-full:
	$(GO) run ./cmd/hypo -run deterministic -out hypotheses
	$(GO) run ./cmd/hypo -run statistical -seeds 1,2,3,4,5 -out hypotheses

verify: build vet test bench-smoke

# Remove every generated local product: run output, profiles, built
# binaries and local persistent cache directories (the default
# .youtiao-cache plus any smoke-test leftovers). Committed artifacts
# (BENCH_baseline.json, hypotheses/README.md) are untouched.
clean:
	rm -rf $(OUT) .youtiao-cache
	rm -f youtiao youtiao-serve *.pprof
