GO ?= go
BENCHTIME ?= 0.3s
MAXREGRESS ?= 0.20
BENCH_STAMP := $(shell date +%Y%m%d-%H%M%S)

STAGE_COVER_FLOOR ?= 90

.PHONY: build vet test race race-faults fuzz bench bench-smoke faults cover verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The determinism contract is only meaningful if the parallel stages are
# also race-free; -race is part of the standard verify gate.
race:
	$(GO) test -race ./...

# Focused race pass over the fault-injection, cancellation and context
# plumbing — the code most likely to regress under concurrency.
race-faults:
	$(GO) test -race -count=1 -run 'Fault|Defect|Ctx|Cancel|Deadline' ./internal/parallel ./internal/faults ./internal/crosstalk ./internal/experiments

fuzz:
	$(GO) test ./internal/fdm -run NONE -fuzz FuzzGroupAllocate -fuzztime 30s
	$(GO) test ./internal/faults -run NONE -fuzz FuzzPlanExclusion -fuzztime 30s

# The benchmark-regression trajectory: run the full suite with
# allocation reporting, snapshot it as BENCH_<stamp>.json, and gate on
# the committed baseline (>20% time or allocs/op regression fails).
# Refresh the baseline deliberately with
#   cp BENCH_<stamp>.json BENCH_baseline.json
# after a reviewed perf change, never automatically.
bench:
	$(GO) test -run NONE -bench . -benchmem -benchtime $(BENCHTIME) . | tee bench.out
	$(GO) run ./tools/benchdiff -parse -in bench.out -out BENCH_$(BENCH_STAMP).json
	$(GO) run ./tools/benchdiff -baseline BENCH_baseline.json -current BENCH_$(BENCH_STAMP).json -max-regress $(MAXREGRESS)

# One-iteration sanity pass over every benchmark — wired into verify so
# a broken bench never reaches the trajectory.
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x -benchmem . > /dev/null

# Coverage over the whole module, plus an enforced floor on the stage
# engine: the artifact-key and memoization logic decides what work an
# incremental redesign may skip, so it stays exhaustively tested.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -n 1
	$(GO) test -coverprofile=cover.stage.out ./internal/stage
	@pct=$$($(GO) tool cover -func=cover.stage.out | awk '$$1=="total:"{sub(/%/,"",$$3); print $$3}'); \
	echo "internal/stage coverage: $$pct% (floor: $(STAGE_COVER_FLOOR)%)"; \
	awk -v p="$$pct" -v f="$(STAGE_COVER_FLOOR)" 'BEGIN{exit !(p+0 >= f+0)}' || \
		{ echo "FAIL: internal/stage coverage $$pct% is below the $(STAGE_COVER_FLOOR)% floor"; exit 1; }

# Smoke-test graceful degradation: design a small chip across a defect
# ladder and print the wiring/fidelity table.
faults:
	$(GO) run ./cmd/youtiao -qubits 25 -sweep-defects 0,0.01,0.02,0.05 -retry-budget 3

verify: build vet test race bench-smoke
