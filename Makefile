GO ?= go

.PHONY: build vet test race race-faults fuzz bench faults verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The determinism contract is only meaningful if the parallel stages are
# also race-free; -race is part of the standard verify gate.
race:
	$(GO) test -race ./...

# Focused race pass over the fault-injection, cancellation and context
# plumbing — the code most likely to regress under concurrency.
race-faults:
	$(GO) test -race -count=1 -run 'Fault|Defect|Ctx|Cancel|Deadline' ./internal/parallel ./internal/faults ./internal/crosstalk ./internal/experiments

fuzz:
	$(GO) test ./internal/fdm -run NONE -fuzz FuzzGroupAllocate -fuzztime 30s
	$(GO) test ./internal/faults -run NONE -fuzz FuzzPlanExclusion -fuzztime 30s

bench:
	$(GO) test -run NONE -bench . -benchmem .

# Smoke-test graceful degradation: design a small chip across a defect
# ladder and print the wiring/fidelity table.
faults:
	$(GO) run ./cmd/youtiao -qubits 25 -sweep-defects 0,0.01,0.02,0.05 -retry-budget 3

verify: build vet test race
