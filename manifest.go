package youtiao

import (
	"encoding/json"
	"runtime"
)

// ManifestSchema versions the manifest JSON layout; bump it on any
// field change so downstream tooling can reject shapes it does not
// understand.
const ManifestSchema = 1

// ManifestEnv records the bench-relevant execution environment of a
// run: identical designs measured under different toolchains or CPU
// budgets are not comparable as benchmarks, and the manifest is where
// that difference is visible.
type ManifestEnv struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Workers is the pipeline worker budget the run requested (0 =
	// NumCPU). Recorded for bench comparability only — the designed
	// system is invariant in it.
	Workers int `json:"workers"`
}

// ManifestChip identifies the designed chip.
type ManifestChip struct {
	Name     string `json:"name"`
	Topology string `json:"topology"`
	Qubits   int    `json:"qubits"`
	Couplers int    `json:"couplers"`
}

// ManifestCache records how a run's artifact cache was persisted.
type ManifestCache struct {
	// Dir is the warm-tier cache directory.
	Dir string `json:"dir"`
	// MemBytes is the memory-tier budget (0 = unbounded).
	MemBytes int64 `json:"mem_bytes"`
	// DiskBytes is the disk-tier budget (0 = unbounded).
	DiskBytes int64 `json:"disk_bytes"`
}

// Manifest is the reproducibility record of one design run: what was
// designed (options digest, seed, chip), where (environment, git
// revision), and how it went (stage report, observability snapshot).
// Two runs at identical options and seed produce manifests whose
// StripTimings() forms are byte-identical on the same machine; the
// full forms differ only in CreatedAt, wall times and histogram
// quantiles.
type Manifest struct {
	Schema int `json:"schema"`
	// CreatedAt is an RFC 3339 timestamp, set by the caller (timing —
	// stripped by StripTimings).
	CreatedAt string `json:"created_at,omitempty"`
	// Git is the producing tree's `git describe --always --dirty`
	// output when available.
	Git string `json:"git,omitempty"`
	// OptionsDigest is Options.Digest(): a stable hash of every
	// design-relevant option after normalization, excluding Workers
	// and Obs.
	OptionsDigest string       `json:"options_digest"`
	Seed          int64        `json:"seed"`
	Chip          ManifestChip `json:"chip"`
	Env           ManifestEnv  `json:"env"`
	// Cache records the artifact-cache persistence configuration of
	// the run (nil for a memory-only designer). It is environmental —
	// a warm cache changes where artifacts come from, never what they
	// are — so StripTimings removes it along with the other
	// machine-local fields, keeping disk-warm and in-memory runs
	// byte-comparable.
	Cache *ManifestCache `json:"cache,omitempty"`
	// Stages is the designer's per-stage cache report (runs, hits,
	// misses and wall time per stage).
	Stages *StageReport `json:"stages,omitempty"`
	// Obs is the run's observability snapshot when a registry was
	// attached.
	Obs *ObsSnapshot `json:"obs,omitempty"`
}

// NewManifest assembles the manifest of a finished design. CreatedAt,
// Git, Stages and Obs start empty; fill them from the caller's clock,
// VCS and registry.
func NewManifest(res *DesignResult, opts Options) *Manifest {
	return &Manifest{
		Schema:        ManifestSchema,
		OptionsDigest: opts.Digest(),
		Seed:          opts.Seed,
		Chip: ManifestChip{
			Name:     res.Chip.Name,
			Topology: res.Chip.Topology,
			Qubits:   res.Chip.NumQubits(),
			Couplers: res.Chip.NumCouplers(),
		},
		Env: ManifestEnv{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Workers:    opts.Workers,
		},
	}
}

// JSON renders the manifest as stable, indented JSON.
func (m *Manifest) JSON() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// StripTimings returns a copy with every timing and cache-provenance
// field removed: CreatedAt and Cache cleared, stage wall times,
// worker budgets and per-tier miss/disk-hit counters zeroed, and the
// observability snapshot reduced to its deterministic subset. What
// remains is a pure function of (chip, options, seed) on a fixed
// toolchain: a cold in-memory run and a cold process over a warm disk
// cache strip to byte-identical JSON — the reproducibility check
// `cmd/youtiao -manifest` enables. Runs and Hits survive stripping
// (they count invocations and memory-tier recalls, identical however
// the artifacts were obtained); Misses and DiskHits only say which
// tier supplied an artifact, so they are environmental.
func (m *Manifest) StripTimings() *Manifest {
	out := *m
	out.CreatedAt = ""
	out.Cache = nil
	if m.Stages != nil {
		st := *m.Stages
		st.Wall = 0
		st.Misses = 0
		st.DiskHits = 0
		st.Stages = append([]StageStats(nil), m.Stages.Stages...)
		for i := range st.Stages {
			st.Stages[i].Wall = 0
			st.Stages[i].Misses = 0
			st.Stages[i].DiskHits = 0
			st.Stages[i].Workers = 0
		}
		out.Stages = &st
	}
	if m.Obs != nil {
		stripped := m.Obs.StripTimings()
		out.Obs = &stripped
	}
	return &out
}
