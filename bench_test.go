package youtiao

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (run with `go test -bench=. -benchmem`). Each
// Benchmark* runs the corresponding experiment and reports its headline
// numbers as custom metrics, so the bench output doubles as the
// reproduction record:
//
//	BenchmarkTable1  —  fault-tolerant chip wiring (cost reduction, depth overhead)
//	BenchmarkTable2  —  5-topology wiring evaluation (coax/cost/area reductions)
//	BenchmarkFig12   —  crosstalk-model generality (JS divergence, transfer loss)
//	BenchmarkFig13   —  FDM grouping fidelity (per-gate error ratios)
//	BenchmarkFig14   —  2q-gate depth under TDM (overhead factors)
//	BenchmarkFig15   —  circuit fidelity under TDM routing
//	BenchmarkFig16   —  cryo-DEMUX mix vs θ
//	BenchmarkFig17   —  large-scale wiring estimation
//
// Ablation benches quantify the design choices DESIGN.md calls out, and
// the micro-benches cover the hot primitives.

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/chip"
	"repro/internal/circuit"
	"repro/internal/crosstalk"
	"repro/internal/experiments"
	"repro/internal/fdm"
	"repro/internal/geom"
	"repro/internal/mlfit"
	"repro/internal/quantum"
	"repro/internal/route"
	"repro/internal/scalesim"
	"repro/internal/schedule"
	"repro/internal/stage"
	"repro/internal/stage/cas"
	"repro/internal/surface"
	"repro/internal/tdm"
	"repro/internal/xmon"
	"repro/internal/yield"
)

func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(experiments.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		// Headline metrics at distance 11.
		var g, y experiments.Table1Row
		for _, r := range rows {
			if r.Distance == 11 {
				if r.Architecture == "google" {
					g = r
				} else {
					y = r
				}
			}
		}
		b.ReportMetric(g.WiringCostUSD/y.WiringCostUSD, "cost-reduction-d11")
		b.ReportMetric(float64(y.TwoQGateDepth)/float64(g.TwoQGateDepth), "depth-overhead-d11")
		b.ReportMetric(float64(y.ZLines), "youtiao-Z-d11")
	}
}

func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(experiments.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		var coax, cost, area, n float64
		for j := 0; j < len(rows); j += 2 {
			g, y := rows[j], rows[j+1]
			gc := float64(g.XYLines + g.ZLines)
			yc := float64(y.XYLines + y.ZLines)
			coax += gc / yc
			cost += g.WiringCostUSD / y.WiringCostUSD
			area += g.RoutingAreaMM2 / y.RoutingAreaMM2
			n++
		}
		b.ReportMetric(coax/n, "mean-line-reduction")
		b.ReportMetric(cost/n, "mean-cost-reduction")
		b.ReportMetric(area/n, "mean-area-reduction")
	}
}

func BenchmarkFig12(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(experiments.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.JSDivergence, "js-divergence")
		last := res.Scales[len(res.Scales)-1]
		b.ReportMetric(1e4*(1-last.TransferredFidelity), "transfer-err-1e-4")
		b.ReportMetric(1e4*(1-last.NativeFidelity), "native-err-1e-4")
	}
}

func BenchmarkFig13(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(experiments.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		errOf := map[string]float64{}
		for _, r := range res.A {
			errOf[r.Strategy] = r.PerGateError
		}
		b.ReportMetric(errOf[experiments.StrategyBaseline]/errOf[experiments.StrategyYoutiao], "err-ratio-vs-baseline")
		b.ReportMetric(errOf[experiments.StrategyGeorge]/errOf[experiments.StrategyYoutiao], "err-ratio-vs-george")
		b.ReportMetric(100*res.B[len(res.B)-1].Youtiao, "youtiao-fid-100layers-%")
	}
}

func benchFig1415(b *testing.B, metric func(r experiments.BenchRow) (string, float64)) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figs14And15(experiments.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			name, v := metric(r)
			b.ReportMetric(v, string(r.Benchmark)+"-"+name)
		}
	}
}

func BenchmarkFig14(b *testing.B) {
	benchFig1415(b, func(r experiments.BenchRow) (string, float64) {
		return "depth-overhead", float64(r.YoutiaoDepth) / float64(r.GoogleDepth)
	})
}

func BenchmarkFig15(b *testing.B) {
	benchFig1415(b, func(r experiments.BenchRow) (string, float64) {
		if r.YoutiaoFidelity == 0 {
			return "fid-ratio-vs-acharya", 0
		}
		return "fid-ratio-vs-acharya", r.YoutiaoFidelity / r.AcharyaFidelity
	})
}

func BenchmarkFig16(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig16(experiments.Options{Seed: 1}, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Theta == 4 && (r.Topology == "square" || r.Topology == "low-density") {
				b.ReportMetric(100*r.Frac12, r.Topology+"-frac12-%")
			}
		}
	}
}

func BenchmarkFig17(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig17(experiments.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ZFanoutSquare, "z-fanout-square")
		b.ReportMetric(float64(res.System150.GoogleCoax), "coax-150q-google")
		b.ReportMetric(float64(res.System150.YoutiaoCoax), "coax-150q-youtiao")
		last := res.LargeSweep[len(res.LargeSweep)-1]
		b.ReportMetric(last.Reduction(), "reduction-100k")
		b.ReportMetric(res.SavingsUSD100k/1e9, "savings-100k-B$")
	}
}

// --- Ablation benches -------------------------------------------------

// BenchmarkAblationMultiPathMetric compares the cross-validated fit
// error of the paper's multi-path topological distance (d_top = n·l)
// against plain shortest-path distance. The multi-path metric should
// fit the synthetic crosstalk at least as well.
func BenchmarkAblationMultiPathMetric(b *testing.B) {
	c := chip.Square(6, 6)
	rng := rand.New(rand.NewSource(1))
	dev := xmon.NewDevice(c, xmon.DefaultParams(), rng)
	samples := dev.Measure(xmon.XY, 0.05, rng)
	multi := c.Graph().AllMultiPathDistances()

	buildXY := func(topDist func(i, j int) float64) ([][]float64, []float64) {
		X := make([][]float64, len(samples))
		y := make([]float64, len(samples))
		for i, s := range samples {
			X[i] = []float64{0.5*c.PhysicalDistance(s.I, s.J) + 0.5*topDist(s.I, s.J)}
			y[i] = s.Value
		}
		return X, y
	}
	cfg := mlfit.ForestConfig{NumTrees: 12, Tree: mlfit.TreeConfig{MaxDepth: 10, MinLeafSize: 4}, Seed: 1}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Xm, y := buildXY(func(i, j int) float64 { return multi[i][j] })
		mseMulti, err := mlfit.KFoldMSE(Xm, y, 5, cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		Xs, _ := buildXY(func(i, j int) float64 {
			return float64(c.Graph().BFSDistances(i)[j])
		})
		mseSingle, err := mlfit.KFoldMSE(Xs, y, 5, cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mseSingle/mseMulti, "single/multi-mse-ratio")
	}
}

// BenchmarkAblationPartitioning compares whole-chip TDM grouping
// against partitioned (per-region) grouping on a 100-qubit chip — the
// divide-and-conquer claim of Observation 3.
func BenchmarkAblationPartitioning(b *testing.B) {
	c := chip.Square(10, 10)
	gi := tdm.AnalyzeGates(c)
	xt := func(i, j int) float64 {
		if i == j {
			return 0
		}
		return 0.6 * math.Exp(-c.PhysicalDistance(i, j))
	}

	b.Run("whole-chip", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tdm.GroupChip(gi, tdm.DefaultConfig(xt)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("partitioned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, err := experiments.BuildPipeline(chip.Square(10, 10), experiments.Options{Seed: 1, PartitionTargetSize: 25})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(p.TDM.NumZLines()), "z-lines")
		}
	})
}

// BenchmarkAblationLossyLimit sweeps the TDM lossy budget: more lossy
// members merge more lines but serialize more gates.
func BenchmarkAblationLossyLimit(b *testing.B) {
	c := chip.Square(6, 6)
	gi := tdm.AnalyzeGates(c)
	xt := func(i, j int) float64 {
		if i == j {
			return 0
		}
		return 0.6 * math.Exp(-c.PhysicalDistance(i, j))
	}
	logical, err := circuit.Benchmark(circuit.BenchVQC, 16, 1)
	if err != nil {
		b.Fatal(err)
	}
	compiled, err := circuit.Compile(logical, c)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, limit := range []int{1, 2, 4} {
			cfg := tdm.DefaultConfig(xt)
			cfg.LossyLimit = limit
			g, err := tdm.GroupChip(gi, cfg)
			if err != nil {
				b.Fatal(err)
			}
			sched, err := schedule.New(c, g, schedule.DefaultDurations()).Run(compiled.Circuit)
			if err != nil {
				b.Fatal(err)
			}
			suffix := []string{"", "lossy1", "lossy2", "", "lossy4"}[limit]
			b.ReportMetric(float64(g.NumZLines()), suffix+"-zlines")
			b.ReportMetric(float64(sched.TwoQubitDepth), suffix+"-2qdepth")
		}
	}
}

// BenchmarkAblationAnnealedAllocation compares the greedy two-level
// frequency allocation against the same plan refined by simulated
// annealing, scored by the leakage-weighted crosstalk objective.
func BenchmarkAblationAnnealedAllocation(b *testing.B) {
	c := chip.Square(6, 6)
	rng := rand.New(rand.NewSource(1))
	dev := xmon.NewDevice(c, xmon.DefaultParams(), rng)
	xt := func(i, j int) float64 { return dev.Coupling(xmon.XY, i, j) }
	members := make([]int, c.NumQubits())
	for i := range members {
		members[i] = i
	}
	dist := func(i, j int) float64 { return c.PhysicalDistance(i, j) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := fdmGroup(members, 4, dist)
		if err != nil {
			b.Fatal(err)
		}
		plan, err := fdmAllocate(g, xt)
		if err != nil {
			b.Fatal(err)
		}
		greedyCost := plan.TotalCrosstalkCost(xt)
		refined, _, annealedCost, err := fdmAnneal(plan, g, xt)
		if err != nil {
			b.Fatal(err)
		}
		_ = refined
		b.ReportMetric(greedyCost/math.Max(annealedCost, 1e-30), "greedy/annealed-cost")
	}
}

// Thin aliases keep the bench body readable without dot-imports.
var (
	fdmGroup    = fdm.Group
	fdmAllocate = func(g *fdm.Grouping, xt fdm.CrosstalkFunc) (*fdm.FrequencyPlan, error) {
		return fdm.Allocate(g, xt, fdm.DefaultAllocOptions())
	}
	fdmAnneal = func(p *fdm.FrequencyPlan, g *fdm.Grouping, xt fdm.CrosstalkFunc) (*fdm.FrequencyPlan, float64, float64, error) {
		return fdm.Anneal(p, g, xt, fdm.DefaultAnnealOptions())
	}
)

// --- Micro-benches of the hot primitives ------------------------------

func BenchmarkForestFit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 600
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := rng.Float64() * 10
		X[i] = []float64{x}
		y[i] = math.Exp(-x) + rng.NormFloat64()*0.01
	}
	cfg := mlfit.DefaultForestConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mlfit.FitForest(X, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiPathDistances(b *testing.B) {
	g := chip.Square(10, 10).Graph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AllMultiPathDistances()
	}
}

func BenchmarkTDMGrouping(b *testing.B) {
	c := chip.Square(8, 8)
	gi := tdm.AnalyzeGates(c)
	xt := func(i, j int) float64 {
		if i == j {
			return 0
		}
		return 0.6 * math.Exp(-c.PhysicalDistance(i, j))
	}
	cfg := tdm.DefaultConfig(xt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tdm.GroupChip(gi, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAStarRouting(b *testing.B) {
	c := chip.Square(4, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := route.NewRouter(c)
		var nets []route.Net
		for _, q := range c.Qubits {
			nets = append(nets, route.Net{Kind: route.NetZ, Label: "z", Targets: []geom.Point{q.Pos}})
		}
		if _, err := r.RouteAll(nets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleSweep1M extends the Figure 17 extrapolation axis to
// one million qubits: a full geometric ladder from 100 to 1e6 qubits,
// both architectures evaluated at every rung. The fan-out constant is
// a representative calibrated value (Fig17 measures ≈9 on the square
// topology); the sweep's cost profile — what this bench gates — is
// invariant in it.
func BenchmarkScaleSweep1M(b *testing.B) {
	counts := scalesim.Ladder(100, 1_000_000, 8)
	const zFanout = 9.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := scalesim.SweepWorkers(counts, zFanout, 4)
		last := pts[len(pts)-1]
		if last.Qubits != 1_000_000 {
			b.Fatalf("sweep ended at %d qubits, want 1M", last.Qubits)
		}
		b.ReportMetric(last.Reduction(), "reduction-1M")
	}
}

func BenchmarkStateVector16Q(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	circ := circuit.Decompose(circuit.VQC(16, 2, rng))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := quantum.Simulate(circ); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDesignPipeline36Q(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Design(NewSquareChip(6, 6), Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineSequential / BenchmarkPipelineParallel time the full
// 8×8 design with the worker pool off (Workers: 1) and on (Workers: 4).
// The designs are bit-identical either way — compare ns/op to see the
// speedup, which tracks the number of physical cores available.
func benchPipeline64Q(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Design(NewSquareChip(8, 8), Options{Seed: 1, Workers: workers, PartitionTargetSize: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineSequential(b *testing.B) { benchPipeline64Q(b, 1) }

func BenchmarkPipelineParallel(b *testing.B) { benchPipeline64Q(b, 4) }

// BenchmarkThetaSweepCold / BenchmarkThetaSweepWarm quantify the
// artifact cache: both design the same 8×8 chip at three TDM thresholds
// (Theta), but Cold rebuilds everything per point while Warm reuses one
// Designer whose characterization, partition, and frequency-plan
// artifacts carry across the sweep — only the TDM stage re-runs. The
// designs are bit-identical (asserted in the test suite); compare ns/op
// for the headline speedup.
var thetaSweepPoints = []float64{2, 4, 8}

func thetaSweepOpts(theta float64) Options {
	return Options{Seed: 1, PartitionTargetSize: 16, Theta: theta, HasTheta: true}
}

func BenchmarkThetaSweepCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, theta := range thetaSweepPoints {
			if _, err := Design(NewSquareChip(8, 8), thetaSweepOpts(theta)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkThetaSweepWarm(b *testing.B) {
	designer := NewDesigner(NewSquareChip(8, 8))
	// Characterize once outside the timer; the timed loop is the sweep a
	// user runs after the first design of a session.
	if _, err := designer.Redesign(thetaSweepOpts(thetaSweepPoints[0])); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, theta := range thetaSweepPoints {
			if _, err := designer.Redesign(thetaSweepOpts(theta)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkScheduleSurfaceCycle(b *testing.B) {
	code, err := surface.New(5)
	if err != nil {
		b.Fatal(err)
	}
	circ := circuit.Decompose(code.CycleCircuit(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := schedule.New(code.Chip, nil, schedule.DefaultDurations()).Run(circ); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrosstalkFit(b *testing.B) {
	c := chip.Square(6, 6)
	rng := rand.New(rand.NewSource(1))
	dev := xmon.NewDevice(c, xmon.DefaultParams(), rng)
	samples := dev.Measure(xmon.XY, 0.05, rng)
	cfg := crosstalk.FitConfig{
		WeightGrid: []float64{0, 0.5, 1},
		Folds:      5,
		Forest:     mlfit.ForestConfig{NumTrees: 8, Tree: mlfit.TreeConfig{MaxDepth: 8, MinLeafSize: 4}, Seed: 1},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := crosstalk.Fit(c, samples, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureAll times the terminal-measurement path on a
// 12-qubit register (4096 amplitudes). After the first iteration the
// state is collapsed to a basis state, but the pass structure — and so
// the measured cost — is amplitude-independent.
func BenchmarkMeasureAll(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	circ := circuit.Decompose(circuit.VQC(12, 2, rng))
	s, err := quantum.Simulate(circ)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.MeasureAll(rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarloTrajectories is the allocation trajectory of the
// Monte Carlo fidelity path: 64 sequential trajectories on a 9-qubit
// register. allocs/op is the headline number — it must stay O(workers),
// not O(trajectories).
func BenchmarkMonteCarloTrajectories(b *testing.B) {
	ch := chip.Square(3, 3)
	rng := rand.New(rand.NewSource(1))
	compiled, err := circuit.Compile(circuit.VQC(9, 2, rng), ch)
	if err != nil {
		b.Fatal(err)
	}
	sched, err := schedule.New(ch, nil, schedule.DefaultDurations()).Run(compiled.Circuit)
	if err != nil {
		b.Fatal(err)
	}
	nm := quantum.NewNoiseModel(func(i, j int) float64 {
		if i == j {
			return 0
		}
		return 0.01
	}, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nm.MonteCarloFidelity(sched, 9, quantum.TrajectoryConfig{
			Trajectories: 64, Seed: 1, Workers: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictorMatrix times binding a fitted crosstalk model to a
// chip and predicting the full pairwise matrix — the characterization
// product every grouping stage consumes.
func BenchmarkPredictorMatrix(b *testing.B) {
	c := chip.Square(6, 6)
	rng := rand.New(rand.NewSource(1))
	dev := xmon.NewDevice(c, xmon.DefaultParams(), rng)
	samples := dev.Measure(xmon.XY, 0.05, rng)
	cfg := crosstalk.FitConfig{
		WeightGrid: []float64{0, 0.5, 1},
		Folds:      5,
		Forest:     mlfit.ForestConfig{NumTrees: 8, Tree: mlfit.TreeConfig{MaxDepth: 8, MinLeafSize: 4}, Seed: 1},
	}
	m, err := crosstalk.Fit(c, samples, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := m.On(c)
		mat := p.Matrix()
		b.ReportMetric(mat[0][1], "xt-0-1")
	}
}

// BenchmarkYield runs the fabrication-disorder yield study on the
// 16-qubit chip and reports the passing fraction — the design-margin
// extension of the Figure 13 fidelity target.
func BenchmarkYield(b *testing.B) {
	b.ReportAllocs()
	c := chip.Square(4, 4)
	cfg := yield.DefaultConfig()
	cfg.Dice = 20
	for i := 0; i < b.N; i++ {
		res, err := yield.Run(c, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Yield, "yield")
		b.ReportMetric(res.MedianError*1e4, "median-err-1e-4")
	}
}

// BenchmarkDiskStoreHit times one warm-tier recall: a store whose
// memory budget evicts everything immediately, so every Do falls
// through to the on-disk CAS (header validation, CRC check, decode,
// recency touch). This is the per-stage cost a restarted process pays
// instead of re-executing the stage.
func BenchmarkDiskStoreHit(b *testing.B) {
	back, err := cas.Open(b.TempDir(), cas.Config{})
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x59}, 4096)
	st := stage.NewStoreWith(stage.Config{
		// A 1-byte budget evicts each decoded artifact as soon as its
		// waiters have it, forcing the next Do back to the disk tier.
		MaxBytes: 1,
		Backend:  back,
		Codecs: map[string]stage.Codec{"bench": {
			Encode: func(v any) ([]byte, error) { return v.([]byte), nil },
			Decode: func(data []byte) (any, error) { return data, nil },
		}},
	})
	ctx := context.Background()
	key := stage.NewKey("bench-disk").Int(1).Done()
	exec := func(context.Context) (any, error) { return payload, nil }
	if _, _, err := st.Do(ctx, "bench", key, 1, exec); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, cached, err := st.Do(ctx, "bench", key, 1, exec)
		if err != nil {
			b.Fatal(err)
		}
		if !cached || len(v.([]byte)) != len(payload) {
			b.Fatalf("iteration %d not served from cache", i)
		}
	}
	b.StopTimer()
	if r := st.Report(); r.DiskHits < b.N {
		b.Fatalf("only %d of %d iterations hit the disk tier", r.DiskHits, b.N)
	}
}
