package youtiao

import (
	"encoding/json"
	"fmt"
)

// DesignSnapshot is the serializable form of a DesignResult, stable for
// storage and downstream tooling.
type DesignSnapshot struct {
	Chip struct {
		Name     string `json:"name"`
		Topology string `json:"topology"`
		Qubits   int    `json:"qubits"`
		Couplers int    `json:"couplers"`
	} `json:"chip"`
	CrosstalkModel struct {
		WPhy    float64 `json:"wPhy"`
		WTop    float64 `json:"wTop"`
		CVError float64 `json:"cvError"`
	} `json:"crosstalkModel"`
	Regions   [][]int    `json:"regions,omitempty"`
	FDMLines  []FDMLine  `json:"fdmLines"`
	TDMGroups []TDMGroup `json:"tdmGroups"`
	Youtiao   Wiring     `json:"youtiao"`
	Baseline  Wiring     `json:"baseline"`
}

// Snapshot extracts the serializable view of the design.
func (r *DesignResult) Snapshot() *DesignSnapshot {
	s := &DesignSnapshot{
		Regions:   r.Regions,
		FDMLines:  r.FDMLines,
		TDMGroups: r.TDMGroups,
		Youtiao:   r.Youtiao,
		Baseline:  r.Baseline,
	}
	s.Chip.Name = r.Chip.Name
	s.Chip.Topology = r.Chip.Topology
	s.Chip.Qubits = r.Chip.NumQubits()
	s.Chip.Couplers = r.Chip.NumCouplers()
	s.CrosstalkModel.WPhy = r.CrosstalkWeights.WPhy
	s.CrosstalkModel.WTop = r.CrosstalkWeights.WTop
	s.CrosstalkModel.CVError = r.CrosstalkCVError
	return s
}

// ExportJSON renders the design as indented JSON.
func (r *DesignResult) ExportJSON() ([]byte, error) {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return nil, fmt.Errorf("youtiao: export: %w", err)
	}
	return b, nil
}

// DecodeSnapshot parses a previously exported design snapshot.
func DecodeSnapshot(data []byte) (*DesignSnapshot, error) {
	var s DesignSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("youtiao: decode snapshot: %w", err)
	}
	if s.Chip.Qubits <= 0 {
		return nil, fmt.Errorf("youtiao: snapshot has no qubits")
	}
	total := 0
	for _, line := range s.FDMLines {
		total += len(line.Qubits)
	}
	if total != s.Chip.Qubits {
		return nil, fmt.Errorf("youtiao: snapshot FDM lines cover %d of %d qubits", total, s.Chip.Qubits)
	}
	return &s, nil
}
