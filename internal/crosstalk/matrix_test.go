package crosstalk

import (
	"sync"
	"testing"

	"repro/internal/chip"
)

// TestMatrixSymmetryAndDiagonal pins the mirrored-pair construction of
// Matrix: exact (not just approximate) symmetry, a zero diagonal, and
// entry-wise agreement with pointwise Predict.
func TestMatrixSymmetryAndDiagonal(t *testing.T) {
	c := chip.Square(3, 4)
	m, _ := fitOn(t, c, 5)
	p := m.On(c)
	mat := p.Matrix()
	n := c.NumQubits()
	if len(mat) != n {
		t.Fatalf("matrix has %d rows, want %d", len(mat), n)
	}
	for i := 0; i < n; i++ {
		if len(mat[i]) != n {
			t.Fatalf("row %d has %d entries, want %d", i, len(mat[i]), n)
		}
		if mat[i][i] != 0 {
			t.Errorf("diagonal [%d][%d] = %v, want 0", i, i, mat[i][i])
		}
		for j := i + 1; j < n; j++ {
			if mat[i][j] != mat[j][i] {
				t.Errorf("asymmetry at (%d,%d): %v vs %v", i, j, mat[i][j], mat[j][i])
			}
			if mat[i][j] != p.Predict(i, j) {
				t.Errorf("matrix[%d][%d] = %v, Predict = %v", i, j, mat[i][j], p.Predict(i, j))
			}
		}
	}
}

// TestPredictConcurrent hammers the memoized prediction path from many
// goroutines — the FDM region grouping predicts concurrently, so the
// cache must be race-free (run under -race) and every goroutine must
// observe identical values.
func TestPredictConcurrent(t *testing.T) {
	c := chip.Square(3, 3)
	m, _ := fitOn(t, c, 6)
	p := m.On(c)
	n := c.NumQubits()
	want := p.Matrix()

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						if got := p.Predict(i, j); got != want[i][j] {
							errs[g] = "concurrent Predict diverged from Matrix"
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, e := range errs {
		if e != "" {
			t.Fatal(e)
		}
	}
}
