package crosstalk

import (
	"repro/internal/binpack"
	"repro/internal/chip"
	"repro/internal/mlfit"
	"repro/internal/xmon"
)

// AppendBinary encodes a fitted model: kind, selected weights, CV
// error and the trained forest. The prediction memo (predCache) is a
// lazy pure-function cache and is deliberately not persisted — a
// decoded model refills it on first use with identical values.
func (m *Model) AppendBinary(e *binpack.Enc) {
	e.Int(int(m.Kind))
	e.F64(m.Weights.WPhy)
	e.F64(m.Weights.WTop)
	e.F64(m.CVError)
	if m.forest == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	m.forest.AppendBinary(e)
}

// DecodeBinary rebuilds a model encoded by AppendBinary.
func DecodeBinary(d *binpack.Dec) (*Model, error) {
	m := &Model{Kind: xmon.CrosstalkKind(d.Int())}
	m.Weights.WPhy = d.F64()
	m.Weights.WTop = d.F64()
	m.CVError = d.F64()
	hasForest := d.Bool()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if hasForest {
		f, err := mlfit.DecodeBinary(d)
		if err != nil {
			return nil, err
		}
		m.forest = f
	}
	return m, nil
}

// Chip returns the chip this predictor is bound to.
func (p *Predictor) Chip() *chip.Chip { return p.chip }
