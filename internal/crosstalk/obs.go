package crosstalk

import (
	"sync/atomic"

	"repro/internal/obs"
)

// fitObs caches the resolved characterization counters.
//
// fits, candidates, trimmed and predictions are deterministic: the grid
// is fixed by FitConfig, trimming is a pure function of the sample set,
// and the pipeline issues the same Predict calls for any worker count.
// forestWalks is deliberately a gauge: it counts prediction-cache
// misses, and concurrent fills of Model.predCache may double-walk the
// forest for the same distance (benignly — the stored value is equal),
// so the miss count depends on scheduling and must not participate in
// the deterministic counter section.
type fitObs struct {
	fits        *obs.Counter
	candidates  *obs.Counter
	trimmed     *obs.Counter
	predictions *obs.Counter
	forestWalks *obs.Gauge
}

var observer atomic.Pointer[fitObs]

// Observe routes characterization instrumentation into r; nil disables
// it. Process-global, like parallel.Observe.
func Observe(r *obs.Registry) {
	if r == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&fitObs{
		fits:        r.Counter("crosstalk/fits"),
		candidates:  r.Counter("crosstalk/fit_candidates"),
		trimmed:     r.Counter("crosstalk/trimmed_samples"),
		predictions: r.Counter("crosstalk/predictions"),
		forestWalks: r.Gauge("crosstalk/forest_walks"),
	})
}
