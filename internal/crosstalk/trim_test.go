package crosstalk

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/chip"
	"repro/internal/xmon"
)

func calibSamples(t *testing.T, c *chip.Chip) []xmon.Sample {
	t.Helper()
	dev := xmon.NewDevice(c, xmon.DefaultParams(), rand.New(rand.NewSource(9)))
	return dev.MeasureSeeded(xmon.XY, 0.02, 11, 1)
}

func TestTrimOutliersDeterministicAndOrdered(t *testing.T) {
	c := chip.Square(4, 4)
	samples := calibSamples(t, c)
	// Corrupt three samples with huge values, as a faulty campaign would.
	corrupted := append([]xmon.Sample(nil), samples...)
	for _, i := range []int{5, 40, 77} {
		corrupted[i].Value *= 1e4
	}
	frac := 3.0 / float64(len(corrupted))
	kept, err := trimOutliers(corrupted, frac)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != len(corrupted)-3 {
		t.Fatalf("kept %d of %d, want %d", len(kept), len(corrupted), len(corrupted)-3)
	}
	for _, s := range kept {
		if s.Value > 1e3 {
			t.Errorf("outlier value %v survived trimming", s.Value)
		}
	}
	again, err := trimOutliers(corrupted, frac)
	if err != nil {
		t.Fatal(err)
	}
	for i := range kept {
		if kept[i] != again[i] {
			t.Fatalf("trim not deterministic at sample %d", i)
		}
	}
}

func TestTrimOutliersValidation(t *testing.T) {
	c := chip.Square(3, 3)
	samples := calibSamples(t, c)
	if _, err := trimOutliers(samples, -0.1); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := trimOutliers(samples, 1.0); err == nil {
		t.Error("fraction 1.0 accepted")
	}
	kept, err := trimOutliers(samples, 0)
	if err != nil || len(kept) != len(samples) {
		t.Errorf("zero fraction changed samples: %v, %d", err, len(kept))
	}
	// Fraction that would drop everything keeps at least one sample.
	kept, err = trimOutliers(samples[:2], 0.99)
	if err != nil || len(kept) != 1 {
		t.Errorf("near-total trim: got %d samples, err %v", len(kept), err)
	}
}

// TestFitTrimRecoversModel: with heavy-tailed outliers injected, the
// trimmed fit must land on a model close to the clean fit, while the
// untrimmed fit sees a much larger CV error.
func TestFitTrimRecoversModel(t *testing.T) {
	c := chip.Square(4, 4)
	samples := calibSamples(t, c)
	corrupted := append([]xmon.Sample(nil), samples...)
	for i := 0; i < len(corrupted); i += 17 {
		corrupted[i].Value *= 500
	}
	cfg := DefaultFitConfig()
	cfg.Workers = 1

	clean, err := Fit(c, samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := Fit(c, corrupted, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TrimOutlierFraction = 0.1
	trimmed, err := Fit(c, corrupted, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dirty.CVError <= clean.CVError*10 {
		t.Fatalf("outliers did not hurt the untrimmed fit: dirty %g vs clean %g", dirty.CVError, clean.CVError)
	}
	if trimmed.CVError >= dirty.CVError {
		t.Errorf("trimming did not help: trimmed %g vs dirty %g", trimmed.CVError, dirty.CVError)
	}
}

func TestFitCtxCancelled(t *testing.T) {
	c := chip.Square(4, 4)
	samples := calibSamples(t, c)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := FitCtx(ctx, c, samples, DefaultFitConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
