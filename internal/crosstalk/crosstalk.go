// Package crosstalk implements the paper's crosstalk characterization
// model (§4.1): it fits the relationship between the equivalent distance
//
//	d_equiv(i,j) = w_phy · d_phy(i,j) + w_top · d_top(i,j)
//
// and measured crosstalk with a random-forest regressor, selecting the
// weight pair (w_phy, w_top) that minimizes 5-fold cross-validated MSE.
// The fitted model then predicts crosstalk for any qubit pair of the
// training chip — or of a different chip with the same qubit type,
// topology family and process (Figure 12's generality study).
package crosstalk

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/chip"
	"repro/internal/mlfit"
	"repro/internal/parallel"
	"repro/internal/xmon"
)

// FitConfig controls the characterization fit.
type FitConfig struct {
	// WeightGrid is the set of candidate values for each of w_phy and
	// w_top; the search evaluates the full cross product (excluding the
	// all-zero pair).
	WeightGrid []float64
	// Folds is the cross-validation fold count (the paper uses 5).
	Folds  int
	Forest mlfit.ForestConfig
	// Workers bounds the goroutines evaluating weight candidates
	// (<= 0: runtime.NumCPU(), 1: sequential). Every candidate's CV is
	// seeded independently, so the selected model is identical for any
	// worker count.
	Workers int
	// TrimOutlierFraction drops the largest-valued fraction of the
	// samples before fitting (0: keep all; must be < 1). Calibration
	// campaigns on faulty hardware produce heavy-tailed outlier
	// readings that would otherwise dominate the regression; trimming
	// is deterministic — samples sort by (value, index) — so the fitted
	// model stays reproducible.
	TrimOutlierFraction float64
}

// DefaultFitConfig mirrors the paper's setup: 5-fold CV and a coarse
// weight grid over [0, 1].
func DefaultFitConfig() FitConfig {
	return FitConfig{
		WeightGrid: []float64{0, 0.1, 0.25, 0.5, 0.75, 1.0},
		Folds:      5,
		Forest:     mlfit.DefaultForestConfig(),
	}
}

// Model is a fitted crosstalk characterization model. A Model is safe
// for concurrent prediction (the FDM region grouping predicts from many
// goroutines) and must not be copied after first use.
type Model struct {
	Kind    xmon.CrosstalkKind
	Weights chip.EquivWeights
	CVError float64 // cross-validated MSE at the selected weights
	forest  *mlfit.Forest

	// predCache memoizes forest.Predict per distinct equivalent
	// distance. The feature space is one-dimensional and chips have few
	// distinct (d_phy, d_top) combinations, so the forest walk — the
	// dominant cost of Matrix/PredictedValues — runs once per distinct
	// distance instead of once per pair. A sync.Map because predictions
	// race in from parallel regions; the forest is pure, so concurrent
	// fills for the same key store the same value.
	predCache sync.Map // float64 d_equiv -> float64 prediction
}

// Fit trains the characterization model from calibration samples taken
// on the given chip. It returns the model with the best (w_phy, w_top)
// under k-fold CV, matching the paper's procedure.
func Fit(c *chip.Chip, samples []xmon.Sample, cfg FitConfig) (*Model, error) {
	return FitCtx(context.Background(), c, samples, cfg)
}

// FitCtx is Fit with cooperative cancellation: the grid search checks
// ctx between weight candidates and returns ctx.Err() once it fires.
func FitCtx(ctx context.Context, c *chip.Chip, samples []xmon.Sample, cfg FitConfig) (*Model, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("crosstalk: no samples")
	}
	if cfg.Folds < 2 {
		return nil, fmt.Errorf("crosstalk: need at least 2 folds, got %d", cfg.Folds)
	}
	samples, err := trimOutliers(samples, cfg.TrimOutlierFraction)
	if err != nil {
		return nil, err
	}
	kind := samples[0].Kind
	for _, s := range samples {
		if s.Kind != kind {
			return nil, fmt.Errorf("crosstalk: mixed sample kinds %v and %v", kind, s.Kind)
		}
	}

	top := c.Graph().AllMultiPathDistances()
	y := make([]float64, len(samples))
	phys := make([]float64, len(samples))
	topo := make([]float64, len(samples))
	for i, s := range samples {
		if s.I < 0 || s.J < 0 || s.I >= c.NumQubits() || s.J >= c.NumQubits() {
			return nil, fmt.Errorf("crosstalk: sample %d pair (%d,%d) out of range", i, s.I, s.J)
		}
		y[i] = s.Value
		phys[i] = c.PhysicalDistance(s.I, s.J)
		t := top[s.I][s.J]
		if math.IsInf(t, 1) {
			t = float64(c.NumQubits())
		}
		topo[i] = t
	}

	// The grid search is the hot loop of characterization: every
	// (w_phy, w_top) candidate runs an independent k-fold CV, so the
	// candidates fan out over the worker pool. Selection scans the
	// results in grid order with a strict '<', reproducing the
	// sequential first-best tie-break for any worker count.
	type candidate struct {
		wp, wt float64
	}
	var cands []candidate
	for _, wp := range cfg.WeightGrid {
		for _, wt := range cfg.WeightGrid {
			if wp == 0 && wt == 0 {
				continue
			}
			cands = append(cands, candidate{wp, wt})
		}
	}
	if o := observer.Load(); o != nil {
		o.fits.Inc()
		o.candidates.Add(int64(len(cands)))
	}
	mses := make([]float64, len(cands))
	err = parallel.ForEachCtx(ctx, cfg.Workers, len(cands), func(ci int) error {
		cand := cands[ci]
		X := featureMatrix(phys, topo, cand.wp, cand.wt)
		mse, err := mlfit.KFoldMSE(X, y, cfg.Folds, cfg.Forest, cfg.Forest.Seed)
		if err != nil {
			return fmt.Errorf("crosstalk: CV at (%.2f,%.2f): %w", cand.wp, cand.wt, err)
		}
		mses[ci] = mse
		return nil
	})
	if err != nil {
		return nil, err
	}
	best := &Model{Kind: kind, CVError: math.Inf(1)}
	for ci, cand := range cands {
		if mses[ci] < best.CVError {
			best.CVError = mses[ci]
			best.Weights = chip.EquivWeights{WPhy: cand.wp, WTop: cand.wt}
		}
	}

	// Refit on the full dataset at the winning weights.
	X := featureMatrix(phys, topo, best.Weights.WPhy, best.Weights.WTop)
	forest, err := mlfit.FitForest(X, y, cfg.Forest)
	if err != nil {
		return nil, fmt.Errorf("crosstalk: final fit: %w", err)
	}
	best.forest = forest
	return best, nil
}

// featureMatrix builds the single-feature design matrix
// X[i] = [wp*phys[i] + wt*topo[i]] over one flat backing array — two
// allocations total instead of one per row, which matters because the
// grid search rebuilds the matrix for every weight candidate.
func featureMatrix(phys, topo []float64, wp, wt float64) [][]float64 {
	flat := make([]float64, len(phys))
	X := make([][]float64, len(phys))
	for i := range X {
		flat[i] = wp*phys[i] + wt*topo[i]
		X[i] = flat[i : i+1 : i+1]
	}
	return X
}

// trimOutliers drops the ceil(fraction*n) largest-valued samples,
// preserving the original order of the survivors. Ordering is by
// (value, original index), so the trimmed set is a deterministic
// function of the input regardless of worker count or map iteration.
func trimOutliers(samples []xmon.Sample, fraction float64) ([]xmon.Sample, error) {
	if fraction == 0 {
		return samples, nil
	}
	if fraction < 0 || fraction >= 1 {
		return nil, fmt.Errorf("crosstalk: TrimOutlierFraction %v outside [0,1)", fraction)
	}
	drop := int(math.Ceil(fraction * float64(len(samples))))
	if drop >= len(samples) {
		drop = len(samples) - 1
	}
	if drop <= 0 {
		return samples, nil
	}
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if samples[ia].Value != samples[ib].Value {
			return samples[ia].Value > samples[ib].Value
		}
		return ia < ib
	})
	cut := make(map[int]bool, drop)
	for _, i := range order[:drop] {
		cut[i] = true
	}
	kept := make([]xmon.Sample, 0, len(samples)-drop)
	for i, s := range samples {
		if !cut[i] {
			kept = append(kept, s)
		}
	}
	if o := observer.Load(); o != nil {
		o.trimmed.Add(int64(drop))
	}
	return kept, nil
}

// PredictDistance returns the model's crosstalk prediction at a raw
// equivalent distance, memoized per distinct distance.
func (m *Model) PredictDistance(dEquiv float64) float64 {
	if v, ok := m.predCache.Load(dEquiv); ok {
		return v.(float64)
	}
	p := m.forest.Predict([]float64{dEquiv})
	m.predCache.Store(dEquiv, p)
	if o := observer.Load(); o != nil {
		o.forestWalks.Add(1)
	}
	return p
}

// Predictor binds a model to a chip, caching the chip's distance
// structure so pairwise predictions are cheap. Binding a model to a
// different chip than it was trained on is exactly the Figure 12
// transfer experiment.
type Predictor struct {
	Model *Model
	chip  *chip.Chip
	top   [][]float64
}

// On binds the model to a chip.
func (m *Model) On(c *chip.Chip) *Predictor {
	return &Predictor{Model: m, chip: c, top: c.Graph().AllMultiPathDistances()}
}

// EquivDistance returns d_equiv(i,j) under the model's fitted weights.
func (p *Predictor) EquivDistance(i, j int) float64 {
	if i == j {
		return 0
	}
	t := p.top[i][j]
	if math.IsInf(t, 1) {
		t = float64(p.chip.NumQubits())
	}
	return p.Model.Weights.WPhy*p.chip.PhysicalDistance(i, j) + p.Model.Weights.WTop*t
}

// Predict returns the predicted crosstalk between qubits i and j.
func (p *Predictor) Predict(i, j int) float64 {
	if i == j {
		return 0
	}
	if o := observer.Load(); o != nil {
		o.predictions.Inc()
	}
	return p.Model.PredictDistance(p.EquivDistance(i, j))
}

// Matrix returns the full predicted pairwise crosstalk matrix. The
// model is symmetric in (i,j) — d_phy and d_top both are — so each
// unordered pair is predicted once and mirrored; the diagonal is zero
// by definition. Rows share one flat n*n backing array.
func (p *Predictor) Matrix() [][]float64 {
	n := p.chip.NumQubits()
	flat := make([]float64, n*n)
	m := make([][]float64, n)
	for i := 0; i < n; i++ {
		m[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := p.Predict(i, j)
			m[i][j] = v
			m[j][i] = v
		}
	}
	return m
}

// PredictedValues returns the model's prediction for every unordered
// qubit pair of the bound chip, the raw material for the Figure 12
// noise-distribution comparison.
func (p *Predictor) PredictedValues() []float64 {
	n := p.chip.NumQubits()
	vals := make([]float64, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			vals = append(vals, p.Predict(i, j))
		}
	}
	return vals
}
