package crosstalk

import (
	"math/rand"
	"testing"

	"repro/internal/chip"
	"repro/internal/mlfit"
	"repro/internal/xmon"
)

func fastFitConfig() FitConfig {
	return FitConfig{
		WeightGrid: []float64{0, 0.5, 1.0},
		Folds:      5,
		Forest: mlfit.ForestConfig{
			NumTrees: 8,
			Tree:     mlfit.TreeConfig{MaxDepth: 8, MinLeafSize: 3},
			Seed:     1,
		},
	}
}

func fitOn(t *testing.T, c *chip.Chip, seed int64) (*Model, *xmon.Device) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dev := xmon.NewDevice(c, xmon.DefaultParams(), rng)
	samples := dev.Measure(xmon.XY, 0.05, rng)
	m, err := Fit(c, samples, fastFitConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m, dev
}

func TestFitValidation(t *testing.T) {
	c := chip.Square(3, 3)
	if _, err := Fit(c, nil, fastFitConfig()); err == nil {
		t.Error("no samples accepted")
	}
	cfg := fastFitConfig()
	cfg.Folds = 1
	if _, err := Fit(c, []xmon.Sample{{I: 0, J: 1, Value: 1}}, cfg); err == nil {
		t.Error("1 fold accepted")
	}
	mixed := []xmon.Sample{
		{I: 0, J: 1, Kind: xmon.XY, Value: 1},
		{I: 0, J: 2, Kind: xmon.ZZ, Value: 1},
	}
	if _, err := Fit(c, mixed, fastFitConfig()); err == nil {
		t.Error("mixed sample kinds accepted")
	}
	bad := []xmon.Sample{{I: 0, J: 99, Value: 1}}
	if _, err := Fit(c, bad, fastFitConfig()); err == nil {
		t.Error("out-of-range pair accepted")
	}
}

func TestFitSelectsNonZeroWeights(t *testing.T) {
	m, _ := fitOn(t, chip.Square(4, 4), 1)
	if m.Weights.WPhy == 0 && m.Weights.WTop == 0 {
		t.Error("fit selected the degenerate all-zero weights")
	}
	if m.CVError <= 0 {
		t.Errorf("CV error should be positive with measurement noise, got %v", m.CVError)
	}
}

func TestPredictorReproducesDecay(t *testing.T) {
	c := chip.Square(4, 4)
	m, dev := fitOn(t, c, 1)
	p := m.On(c)
	// Averaged over rows, the prediction must decay with distance just
	// like the underlying crosstalk.
	var near, far float64
	for r := 0; r < 4; r++ {
		near += p.Predict(4*r, 4*r+1)
		far += p.Predict(4*r, 4*r+3)
	}
	if near <= far {
		t.Errorf("prediction should decay with distance: near %.3g far %.3g", near, far)
	}
	// And correlate with the truth on adjacent pairs.
	var truthSum, predSum float64
	for _, e := range c.Graph().Edges() {
		truthSum += dev.Crosstalk(xmon.XY, e[0], e[1])
		predSum += p.Predict(e[0], e[1])
	}
	ratio := predSum / truthSum
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("aggregate prediction off by %vx", ratio)
	}
}

func TestPredictorDiagonalZero(t *testing.T) {
	c := chip.Square(3, 3)
	m, _ := fitOn(t, c, 2)
	p := m.On(c)
	for q := 0; q < c.NumQubits(); q++ {
		if p.Predict(q, q) != 0 {
			t.Errorf("self-prediction not zero for q%d", q)
		}
		if p.EquivDistance(q, q) != 0 {
			t.Errorf("self equivalent distance not zero for q%d", q)
		}
	}
}

func TestPredictorSymmetric(t *testing.T) {
	c := chip.Square(3, 3)
	m, _ := fitOn(t, c, 3)
	p := m.On(c)
	for i := 0; i < c.NumQubits(); i++ {
		for j := i + 1; j < c.NumQubits(); j++ {
			if p.Predict(i, j) != p.Predict(j, i) {
				t.Fatalf("prediction asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatrixMatchesPredict(t *testing.T) {
	c := chip.Square(3, 3)
	m, _ := fitOn(t, c, 4)
	p := m.On(c)
	mat := p.Matrix()
	for i := range mat {
		for j := range mat[i] {
			if mat[i][j] != p.Predict(i, j) {
				t.Fatalf("matrix mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestPredictedValuesCount(t *testing.T) {
	c := chip.Square(3, 3)
	m, _ := fitOn(t, c, 5)
	vals := m.On(c).PredictedValues()
	n := c.NumQubits()
	if len(vals) != n*(n-1)/2 {
		t.Fatalf("got %d values, want %d", len(vals), n*(n-1)/2)
	}
	for i, v := range vals {
		if v < 0 {
			t.Errorf("negative predicted crosstalk at %d", i)
		}
	}
}

func TestModelTransfer(t *testing.T) {
	// A model trained on a 4×4 chip must bind to and predict on a 5×5
	// chip of the same family, with decay preserved.
	m, _ := fitOn(t, chip.Square(4, 4), 1)
	other := chip.Square(5, 5)
	p := m.On(other)
	var near, far float64
	for r := 0; r < 5; r++ {
		near += p.Predict(5*r, 5*r+1)
		far += p.Predict(5*r, 5*r+4)
	}
	if near <= far {
		t.Errorf("transferred prediction should decay: near %.3g far %.3g", near, far)
	}
}

func TestFitDeterministic(t *testing.T) {
	c := chip.Square(4, 4)
	m1, _ := fitOn(t, c, 7)
	m2, _ := fitOn(t, c, 7)
	if m1.Weights != m2.Weights {
		t.Errorf("weights differ across identical runs: %+v vs %+v", m1.Weights, m2.Weights)
	}
	if m1.CVError != m2.CVError {
		t.Errorf("CV errors differ: %v vs %v", m1.CVError, m2.CVError)
	}
	p1, p2 := m1.On(c), m2.On(c)
	for i := 0; i < 5; i++ {
		if p1.Predict(0, i+1) != p2.Predict(0, i+1) {
			t.Fatal("predictions differ across identical runs")
		}
	}
}

func TestDefaultFitConfig(t *testing.T) {
	cfg := DefaultFitConfig()
	if cfg.Folds != 5 {
		t.Errorf("paper uses 5-fold CV, got %d", cfg.Folds)
	}
	if len(cfg.WeightGrid) == 0 {
		t.Error("empty weight grid")
	}
}
