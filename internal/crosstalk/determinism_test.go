package crosstalk

import (
	"math/rand"
	"testing"

	"repro/internal/chip"
	"repro/internal/xmon"
)

// TestFitWorkerCountInvariant: the parallel weight-grid search must
// select the same model — weights, CV error, and every forest
// prediction — with 4 workers as with 1, across several seeds. Each
// candidate's CV is independently seeded and selection scans in grid
// order, so worker scheduling cannot leak into the result.
func TestFitWorkerCountInvariant(t *testing.T) {
	c := chip.Square(4, 4)
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		dev := xmon.NewDevice(c, xmon.DefaultParams(), rng)
		samples := dev.MeasureSeeded(xmon.XY, 0.05, seed, 1)

		var models [2]*Model
		for wi, workers := range []int{1, 4} {
			cfg := fastFitConfig()
			cfg.Workers = workers
			m, err := Fit(c, samples, cfg)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			models[wi] = m
		}
		seq, par := models[0], models[1]
		if seq.Weights != par.Weights {
			t.Errorf("seed %d: weights %+v (Workers=1) vs %+v (Workers=4)", seed, seq.Weights, par.Weights)
		}
		if seq.CVError != par.CVError {
			t.Errorf("seed %d: CV error %v vs %v", seed, seq.CVError, par.CVError)
		}
		ps, pp := seq.On(c), par.On(c)
		for i := 1; i < c.NumQubits(); i++ {
			if ps.Predict(0, i) != pp.Predict(0, i) {
				t.Fatalf("seed %d: prediction (0,%d) differs across worker counts", seed, i)
			}
		}
	}
}
