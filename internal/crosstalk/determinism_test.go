package crosstalk

import (
	"math/rand"
	"testing"

	"repro/internal/chip"
	"repro/internal/hypo/testkit"
	"repro/internal/xmon"
)

// TestFitWorkerCountInvariant: the parallel weight-grid search must
// select the same model — weights, CV error, and every forest
// prediction — with 4 workers as with 1, across several seeds. Each
// candidate's CV is independently seeded and selection scans in grid
// order, so worker scheduling cannot leak into the result.
func TestFitWorkerCountInvariant(t *testing.T) {
	c := chip.Square(4, 4)
	// The invariance compares everything selection depends on: the
	// chosen weights, the model's CV error, and the full prediction row
	// from qubit 0 (forest behaviour, not just grid choice).
	type fitResult struct {
		Weights chip.EquivWeights
		CVError float64
		Preds   []float64
	}
	testkit.SeedMatrix(t, []int64{1, 2, 3}, func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		dev := xmon.NewDevice(c, xmon.DefaultParams(), rng)
		samples := dev.MeasureSeeded(xmon.XY, 0.05, seed, 1)

		testkit.WorkerInvariant(t, 1, []int{4}, func(workers int) fitResult {
			cfg := fastFitConfig()
			cfg.Workers = workers
			m, err := Fit(c, samples, cfg)
			if err != nil {
				t.Fatalf("workers %d: %v", workers, err)
			}
			p := m.On(c)
			preds := make([]float64, 0, c.NumQubits()-1)
			for i := 1; i < c.NumQubits(); i++ {
				preds = append(preds, p.Predict(0, i))
			}
			return fitResult{Weights: m.Weights, CVError: m.CVError, Preds: preds}
		})
	})
}
