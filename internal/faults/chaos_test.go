package faults

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/stage"
)

func chaosKey(i int) stage.Key { return stage.NewKey("chaos-test").Int(i).Done() }

// TestChaosDeterministic: the same (seed, name, key) always draws the
// same fate; a different seed draws a different fate mix.
func TestChaosDeterministic(t *testing.T) {
	a := &Chaos{Seed: 42, FailRate: 0.5}
	b := &Chaos{Seed: 42, FailRate: 0.5}
	for i := 0; i < 64; i++ {
		if a.draw("tdm", chaosKey(i)) != b.draw("tdm", chaosKey(i)) {
			t.Fatalf("draw %d differs across identical specs", i)
		}
	}
	diff := 0
	c := &Chaos{Seed: 43, FailRate: 0.5}
	for i := 0; i < 64; i++ {
		if a.draw("tdm", chaosKey(i)) != c.draw("tdm", chaosKey(i)) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seed does not perturb the decision stream")
	}
}

// TestChaosRates: over many keys the injected fates land near their
// configured rates, and every fate surfaces correctly through a Store.
func TestChaosRates(t *testing.T) {
	c := &Chaos{Seed: 7, PanicRate: 0.1, FailRate: 0.2, SlowRate: 0.2, Delay: time.Microsecond}
	s := stage.NewStore()
	s.Wrap(c.Wrapper())
	ctx := context.Background()

	const n = 500
	var oks, fails, panics int
	for i := 0; i < n; i++ {
		_, _, err := s.Do(ctx, "stage", chaosKey(i), 1, func(context.Context) (any, error) {
			return i, nil
		})
		var pe *stage.PanicError
		switch {
		case err == nil:
			oks++
		case errors.As(err, &pe):
			panics++
		case errors.Is(err, ErrChaos):
			fails++
		default:
			t.Fatalf("key %d: unexpected error %v", i, err)
		}
	}
	slowN, failN, panicN := c.Counts()
	if int(failN) != fails || int(panicN) != panics {
		t.Fatalf("counts (slow %d fail %d panic %d) disagree with observed (fail %d panic %d)",
			slowN, failN, panicN, fails, panics)
	}
	// Loose 3-sigma-ish envelopes around the configured rates.
	within := func(got int, rate float64) bool {
		want := rate * n
		return float64(got) > want*0.5 && float64(got) < want*1.6
	}
	if !within(panics, 0.1) || !within(fails, 0.2) || !within(int(slowN), 0.2) {
		t.Fatalf("fate mix off: oks=%d fails=%d panics=%d slows=%d of %d", oks, fails, panics, slowN, n)
	}
}

// TestChaosSlowRespectsContext: a slowed stage aborts promptly when the
// request deadline fires instead of sleeping out its delay.
func TestChaosSlowRespectsContext(t *testing.T) {
	c := &Chaos{Seed: 1, SlowRate: 1, Delay: time.Hour}
	s := stage.NewStore()
	s.Wrap(c.Wrapper())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := s.Do(ctx, "slow", chaosKey(0), 1, func(context.Context) (any, error) {
		return nil, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("slowed stage held the request for %v past its deadline", elapsed)
	}
}

// TestChaosNil: a nil Chaos injects nothing.
func TestChaosNil(t *testing.T) {
	var c *Chaos
	if c.Wrapper() != nil {
		t.Fatal("nil Chaos produced a wrapper")
	}
}
