package faults

import (
	"sync/atomic"

	"repro/internal/obs"
)

// campaignObs caches the resolved calibration-campaign counters. All of
// them mirror CampaignStats fields, which are deterministic in (chip,
// Spec, seed) and invariant in the worker count — so they satisfy obs's
// counter contract and survive manifest diffs.
type campaignObs struct {
	pairs       *obs.Counter
	skippedDead *obs.Counter
	dropouts    *obs.Counter
	retried     *obs.Counter
	lostPairs   *obs.Counter
	outliers    *obs.Counter
}

var observer atomic.Pointer[campaignObs]

// Observe routes campaign accounting into r; nil disables it. Process-
// global, like parallel.Observe: Measure is called deep inside keyed
// stages with no registry in scope.
func Observe(r *obs.Registry) {
	if r == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&campaignObs{
		pairs:       r.Counter("faults/pairs"),
		skippedDead: r.Counter("faults/skipped_dead"),
		dropouts:    r.Counter("faults/dropouts"),
		retried:     r.Counter("faults/retried"),
		lostPairs:   r.Counter("faults/lost_pairs"),
		outliers:    r.Counter("faults/outliers"),
	})
}

// record folds one finished campaign's stats into the counters.
func obsRecord(s CampaignStats) {
	o := observer.Load()
	if o == nil {
		return
	}
	o.pairs.Add(int64(s.Pairs))
	o.skippedDead.Add(int64(s.SkippedDead))
	o.dropouts.Add(int64(s.Dropouts))
	o.retried.Add(int64(s.Retried))
	o.lostPairs.Add(int64(s.LostPairs))
	o.outliers.Add(int64(s.Outliers))
}
