package faults

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/chip"
	"repro/internal/obs"
	"repro/internal/xmon"
)

// planWithRates draws a plan that definitely has faults of every class
// at a rate high enough for a 5x5 chip to hit each.
func planWithRates(t *testing.T, spec Spec, seed int64) *Plan {
	t.Helper()
	p, err := New(chip.Square(5, 5), spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBrokenCouplersListsExactlyTheBrokenOnes(t *testing.T) {
	c := chip.Square(5, 5)
	p := planWithRates(t, Spec{BrokenCouplerRate: 0.3}, 7)
	broken := p.BrokenCouplers()
	if len(broken) == 0 {
		t.Fatal("rate 0.3 on 40 couplers drew no broken coupler; pick another seed")
	}
	set := make(map[int]bool, len(broken))
	prev := -1
	for _, ci := range broken {
		if ci <= prev {
			t.Errorf("BrokenCouplers not sorted: %v", broken)
		}
		prev = ci
		set[ci] = true
	}
	for ci := 0; ci < c.NumCouplers(); ci++ {
		if set[ci] != p.CouplerBroken(ci) {
			t.Errorf("coupler %d: listed=%v, CouplerBroken=%v", ci, set[ci], p.CouplerBroken(ci))
		}
	}
	var nilPlan *Plan
	if got := nilPlan.BrokenCouplers(); got != nil {
		t.Errorf("nil plan lists broken couplers: %v", got)
	}
}

func TestStuckLossyCountExcludesDeadAndBroken(t *testing.T) {
	p := planWithRates(t, Spec{DeadQubitRate: 0.3, BrokenCouplerRate: 0.3, StuckLossyRate: 0.5}, 11)
	// Recount by hand from the public predicates.
	want := 0
	for q := 0; q < 25; q++ {
		if p.QubitStuckLossy(q) && !p.QubitDead(q) {
			want++
		}
	}
	for ci := 0; ci < 40; ci++ {
		if p.CouplerStuckLossy(ci) && !p.CouplerBroken(ci) {
			want++
		}
	}
	if got := p.StuckLossyCount(); got != want {
		t.Errorf("StuckLossyCount = %d, recount from predicates = %d", got, want)
	}
	// A dead qubit that is also stuck must not be double-counted: verify
	// at least one such overlap exists at these rates, or the exclusion
	// clause was never exercised.
	overlap := false
	for q := 0; q < 25; q++ {
		if p.QubitStuckLossy(q) && p.QubitDead(q) {
			overlap = true
		}
	}
	if !overlap {
		t.Log("no dead+stuck overlap at this seed; exclusion untested here")
	}
	var nilPlan *Plan
	if nilPlan.StuckLossyCount() != 0 {
		t.Error("nil plan has stuck-lossy devices")
	}
}

func TestSummary(t *testing.T) {
	var nilPlan *Plan
	if got := nilPlan.Summary(); got != "no faults" {
		t.Errorf("nil plan summary %q", got)
	}
	p := planWithRates(t, Spec{DeadQubitRate: 0.2, BrokenCouplerRate: 0.2, StuckLossyRate: 0.2}, 3)
	s := p.Summary()
	for _, want := range []string{"dead qubits", "broken couplers", "stuck-lossy"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestCampaignStatsAdd(t *testing.T) {
	a := CampaignStats{Pairs: 1, SkippedDead: 2, Dropouts: 3, Retried: 4, LostPairs: 5, Outliers: 6}
	b := CampaignStats{Pairs: 10, SkippedDead: 20, Dropouts: 30, Retried: 40, LostPairs: 50, Outliers: 60}
	a.Add(b)
	want := CampaignStats{Pairs: 11, SkippedDead: 22, Dropouts: 33, Retried: 44, LostPairs: 55, Outliers: 66}
	if a != want {
		t.Errorf("Add: %+v, want %+v", a, want)
	}
}

func TestOutlierScaleOverride(t *testing.T) {
	if got := (Spec{}).outlierScale(); got != DefaultOutlierScale {
		t.Errorf("zero OutlierScale resolves to %g, want default %g", got, DefaultOutlierScale)
	}
	if got := (Spec{OutlierScale: 7}).outlierScale(); got != 7 {
		t.Errorf("explicit OutlierScale resolves to %g, want 7", got)
	}
}

// TestObserveRoutesCampaignCounters: a faulty campaign must fold its
// stats into the registered counters; detaching must stop the flow; and
// the counter values must equal the returned CampaignStats exactly.
func TestObserveRoutesCampaignCounters(t *testing.T) {
	reg := obs.New()
	Observe(reg)
	defer Observe(nil)

	c := chip.Square(5, 5)
	dev := xmon.NewDevice(c, xmon.DefaultParams(), rand.New(rand.NewSource(1)))
	spec := Spec{DeadQubitRate: 0.1, DropoutRate: 0.3, OutlierRate: 0.2}
	plan, err := New(c, spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := Measure(context.Background(), dev, xmon.XY, 0.02, 5, 2, 3, plan)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"faults/pairs":        int64(stats.Pairs),
		"faults/skipped_dead": int64(stats.SkippedDead),
		"faults/dropouts":     int64(stats.Dropouts),
		"faults/retried":      int64(stats.Retried),
		"faults/lost_pairs":   int64(stats.LostPairs),
		"faults/outliers":     int64(stats.Outliers),
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d (stats %+v)", name, got, want, stats)
		}
	}
	if stats.Dropouts == 0 || stats.Outliers == 0 || stats.SkippedDead == 0 {
		t.Errorf("campaign too clean to exercise the counters: %+v", stats)
	}

	// The fault-free path records too (pairs only).
	before := reg.Snapshot().Counters["faults/pairs"]
	if _, ffStats, err := Measure(context.Background(), dev, xmon.XY, 0.02, 6, 1, 0, nil); err != nil {
		t.Fatal(err)
	} else if got := reg.Snapshot().Counters["faults/pairs"] - before; got != int64(ffStats.Pairs) {
		t.Errorf("fault-free campaign recorded %d pairs, stats say %d", got, ffStats.Pairs)
	}

	// Detached: no further accounting, and obsRecord must not panic.
	Observe(nil)
	prev := reg.Snapshot().Counters["faults/pairs"]
	if _, _, err := Measure(context.Background(), dev, xmon.XY, 0.02, 7, 1, 0, nil); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["faults/pairs"]; got != prev {
		t.Errorf("detached observer still accumulated: %d -> %d", prev, got)
	}
}

func TestMeasureNilDeviceAndNegativeRetryBudget(t *testing.T) {
	if _, _, err := Measure(context.Background(), nil, xmon.XY, 0, 1, 1, 0, nil); err == nil {
		t.Error("nil device accepted")
	}
	c := chip.Square(3, 3)
	dev := xmon.NewDevice(c, xmon.DefaultParams(), rand.New(rand.NewSource(1)))
	plan, err := New(c, Spec{DropoutRate: 0.2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A negative budget clamps to 0 (no retries): every dropout loses
	// its pair, and Retried stays 0.
	_, stats, err := Measure(context.Background(), dev, xmon.XY, 0.02, 1, 1, -5, plan)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retried != 0 {
		t.Errorf("no-retry campaign recorded %d retried pairs", stats.Retried)
	}
	if stats.LostPairs != stats.Dropouts {
		t.Errorf("with budget 0 every dropout is a lost pair: dropouts %d, lost %d",
			stats.Dropouts, stats.LostPairs)
	}
}
