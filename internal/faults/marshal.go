package faults

import (
	"repro/internal/binpack"
)

// AppendBinary encodes a drawn fault plan: the spec, the seed and the
// four per-device fault vectors. The vectors are stored rather than
// redrawn so a decoded plan is valid even if the drawing procedure
// ever changes.
func (p *Plan) AppendBinary(e *binpack.Enc) {
	e.F64(p.Spec.DeadQubitRate)
	e.F64(p.Spec.BrokenCouplerRate)
	e.F64(p.Spec.StuckLossyRate)
	e.F64(p.Spec.DropoutRate)
	e.F64(p.Spec.OutlierRate)
	e.F64(p.Spec.OutlierScale)
	e.I64(p.Seed)
	e.Bools(p.deadQubit)
	e.Bools(p.brokenCoupler)
	e.Bools(p.stuckQubit)
	e.Bools(p.stuckCoupler)
}

// DecodeBinary rebuilds a plan encoded by AppendBinary.
func DecodeBinary(d *binpack.Dec) (*Plan, error) {
	p := &Plan{}
	p.Spec.DeadQubitRate = d.F64()
	p.Spec.BrokenCouplerRate = d.F64()
	p.Spec.StuckLossyRate = d.F64()
	p.Spec.DropoutRate = d.F64()
	p.Spec.OutlierRate = d.F64()
	p.Spec.OutlierScale = d.F64()
	p.Seed = d.I64()
	p.deadQubit = d.Bools()
	p.brokenCoupler = d.Bools()
	p.stuckQubit = d.Bools()
	p.stuckCoupler = d.Bools()
	if err := d.Err(); err != nil {
		return nil, err
	}
	return p, nil
}
