// Package faults is the fault-injection and graceful-degradation layer
// of the YOUTIAO pipeline. Real superconducting chips arrive with dead
// qubits, broken couplers and flaky control paths (Zhao, arXiv:2403.03717;
// Acharya et al., arXiv:2209.13060), and calibration campaigns drop
// measurements or return heavy-tailed outliers. This package models all
// of that as a seeded, deterministic FaultPlan that the design pipeline
// consumes:
//
//   - dead qubits and broken couplers are excluded from every design
//     stage (partition, FDM grouping, frequency allocation, TDM
//     grouping) instead of crashing it;
//   - stuck-lossy Z lines keep their device usable but force it onto a
//     dedicated direct line (the device must not sit behind a shared
//     DEMUX);
//   - calibration dropouts are retried with a bounded budget, each
//     attempt on its own SplitMix64 stream (parallel.TaskSeed), so the
//     degraded campaign stays bit-identical for any worker count;
//   - heavy-tailed outlier samples are injected for the model fit's
//     outlier trimming (crosstalk.FitConfig.TrimOutlierFraction) to
//     absorb.
//
// Everything is a pure function of (chip, Spec, seed): two runs with
// the same inputs inject byte-identical faults. A nil *Plan everywhere
// means "perfect device" and reproduces the fault-free pipeline
// exactly.
package faults

import (
	"context"
	"fmt"
	"math"

	"repro/internal/chip"
	"repro/internal/parallel"
	"repro/internal/xmon"
)

// Spec gives the rate of each injected fault class. The zero value
// injects nothing.
type Spec struct {
	// DeadQubitRate is the probability that a qubit is dead on arrival
	// (unusable: excluded from every grouping and from calibration).
	DeadQubitRate float64
	// BrokenCouplerRate is the probability that a coupler's control
	// path is broken (its 2q-gate site is unusable).
	BrokenCouplerRate float64
	// StuckLossyRate is the probability that a device's Z line is
	// stuck-lossy: still usable, but too leaky to share a cryo-DEMUX,
	// so it must be wired on a dedicated direct line.
	StuckLossyRate float64
	// DropoutRate is the probability that one calibration measurement
	// attempt fails outright and must be retried.
	DropoutRate float64
	// OutlierRate is the probability that a successful calibration
	// measurement returns a heavy-tailed outlier value.
	OutlierRate float64
	// OutlierScale multiplies outlier samples (on top of a lognormal
	// heavy tail). Zero selects DefaultOutlierScale.
	OutlierScale float64
}

// DefaultOutlierScale is the median multiplier of an injected outlier:
// large enough that an untrimmed fit is visibly dragged, small enough
// that trimming restores it.
const DefaultOutlierScale = 25.0

// UniformSpec is the one-knob spec used by the CLI's -defect-rate flag:
// every device-fault class at rate r, calibration dropouts and outliers
// at the same rate.
func UniformSpec(r float64) Spec {
	return Spec{
		DeadQubitRate:     r,
		BrokenCouplerRate: r,
		StuckLossyRate:    r,
		DropoutRate:       r,
		OutlierRate:       r,
	}
}

// Enabled reports whether the spec injects any fault at all.
func (s Spec) Enabled() bool {
	return s.DeadQubitRate > 0 || s.BrokenCouplerRate > 0 || s.StuckLossyRate > 0 ||
		s.DropoutRate > 0 || s.OutlierRate > 0
}

// ValidRate reports whether r is usable as a uniform defect rate — a
// probability strictly below 1, the constraint UniformSpec's DropoutRate
// inherits (at rate 1 no retry budget could ever rescue a campaign).
// The workload simulator validates its per-chip drift rates against
// this, so a trace can never materialize a request the fault layer
// would reject.
func ValidRate(r float64) bool {
	return !math.IsNaN(r) && r >= 0 && r < 1
}

// Validate checks every rate is a probability. DropoutRate must stay
// strictly below 1 or no retry budget could ever rescue a campaign.
func (s Spec) Validate() error {
	check := func(name string, v float64, maxExcl bool) error {
		if math.IsNaN(v) || v < 0 || v > 1 || (maxExcl && v == 1) {
			hi := "1]"
			if maxExcl {
				hi = "1)"
			}
			return fmt.Errorf("faults: %s %g outside [0,%s", name, v, hi)
		}
		return nil
	}
	for _, c := range []struct {
		name    string
		v       float64
		maxExcl bool
	}{
		{"DeadQubitRate", s.DeadQubitRate, false},
		{"BrokenCouplerRate", s.BrokenCouplerRate, false},
		{"StuckLossyRate", s.StuckLossyRate, false},
		{"DropoutRate", s.DropoutRate, true},
		{"OutlierRate", s.OutlierRate, false},
	} {
		if err := check(c.name, c.v, c.maxExcl); err != nil {
			return err
		}
	}
	if s.OutlierScale < 0 || math.IsNaN(s.OutlierScale) {
		return fmt.Errorf("faults: OutlierScale %g must be >= 0", s.OutlierScale)
	}
	return nil
}

func (s Spec) outlierScale() float64 {
	if s.OutlierScale > 0 {
		return s.OutlierScale
	}
	return DefaultOutlierScale
}

// Per-fault-class stream indices of the plan seed (see
// parallel.TaskSeed). Appending new classes keeps old plans stable.
const (
	streamDeadQubits = iota + 1
	streamBrokenCouplers
	streamStuckQubits
	streamStuckCouplers
)

// Plan is the concrete fault assignment for one chip: which qubits are
// dead, which couplers broken, which Z lines stuck-lossy, plus the
// calibration-failure rates. It is deterministic in (chip, Spec, seed).
type Plan struct {
	Spec Spec
	Seed int64

	deadQubit     []bool
	brokenCoupler []bool
	stuckQubit    []bool
	stuckCoupler  []bool
}

// New draws a fault plan for the chip. Each fault class draws from its
// own SplitMix64 stream of the seed in device-id order, so plans are
// reproducible and adding qubits to a chip never reshuffles coupler
// faults.
func New(c *chip.Chip, spec Spec, seed int64) (*Plan, error) {
	if c == nil {
		return nil, fmt.Errorf("faults: nil chip")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{Spec: spec, Seed: seed}
	nq, nc := c.NumQubits(), c.NumCouplers()
	draw := func(n int, rate float64, stream uint64) []bool {
		out := make([]bool, n)
		if rate <= 0 {
			return out
		}
		rng := parallel.TaskRand(seed, stream)
		for i := range out {
			out[i] = rng.Float64() < rate
		}
		return out
	}
	p.deadQubit = draw(nq, spec.DeadQubitRate, streamDeadQubits)
	p.brokenCoupler = draw(nc, spec.BrokenCouplerRate, streamBrokenCouplers)
	p.stuckQubit = draw(nq, spec.StuckLossyRate, streamStuckQubits)
	p.stuckCoupler = draw(nc, spec.StuckLossyRate, streamStuckCouplers)
	return p, nil
}

// QubitDead reports whether qubit q is dead. A nil plan has no faults.
func (p *Plan) QubitDead(q int) bool {
	return p != nil && q >= 0 && q < len(p.deadQubit) && p.deadQubit[q]
}

// CouplerBroken reports whether coupler ci's control path is broken.
func (p *Plan) CouplerBroken(ci int) bool {
	return p != nil && ci >= 0 && ci < len(p.brokenCoupler) && p.brokenCoupler[ci]
}

// QubitStuckLossy reports whether qubit q's Z line is stuck-lossy.
func (p *Plan) QubitStuckLossy(q int) bool {
	return p != nil && q >= 0 && q < len(p.stuckQubit) && p.stuckQubit[q]
}

// CouplerStuckLossy reports whether coupler ci's Z line is stuck-lossy.
func (p *Plan) CouplerStuckLossy(ci int) bool {
	return p != nil && ci >= 0 && ci < len(p.stuckCoupler) && p.stuckCoupler[ci]
}

// CouplerUsable reports whether coupler ci can carry gates: its control
// path works and both endpoints are alive.
func (p *Plan) CouplerUsable(c *chip.Chip, ci int) bool {
	if p.CouplerBroken(ci) {
		return false
	}
	cp := c.Couplers[ci]
	return !p.QubitDead(cp.A) && !p.QubitDead(cp.B)
}

// GateUsable reports whether a hardware 2q-gate site survives the plan:
// both qubits alive and the coupler usable.
func (p *Plan) GateUsable(c *chip.Chip, g chip.TwoQubitGate) bool {
	return !p.QubitDead(g.Q1) && !p.QubitDead(g.Q2) && !p.CouplerBroken(g.Coupler)
}

// AliveQubits returns the sorted ids of usable qubits among [0, n).
func (p *Plan) AliveQubits(n int) []int {
	out := make([]int, 0, n)
	for q := 0; q < n; q++ {
		if !p.QubitDead(q) {
			out = append(out, q)
		}
	}
	return out
}

// DeadQubits returns the sorted ids of dead qubits.
func (p *Plan) DeadQubits() []int {
	var out []int
	if p == nil {
		return out
	}
	for q, d := range p.deadQubit {
		if d {
			out = append(out, q)
		}
	}
	return out
}

// BrokenCouplers returns the sorted ids of broken couplers.
func (p *Plan) BrokenCouplers() []int {
	var out []int
	if p == nil {
		return out
	}
	for ci, b := range p.brokenCoupler {
		if b {
			out = append(out, ci)
		}
	}
	return out
}

// StuckLossyCount returns how many usable devices carry a stuck-lossy
// Z line (dead/broken devices are not double-counted — they are already
// excluded entirely).
func (p *Plan) StuckLossyCount() int {
	if p == nil {
		return 0
	}
	n := 0
	for q, s := range p.stuckQubit {
		if s && !p.deadQubit[q] {
			n++
		}
	}
	for ci, s := range p.stuckCoupler {
		if s && !p.brokenCoupler[ci] {
			n++
		}
	}
	return n
}

// Summary renders a one-line human-readable account of the plan.
func (p *Plan) Summary() string {
	if p == nil {
		return "no faults"
	}
	return fmt.Sprintf("%d dead qubits, %d broken couplers, %d stuck-lossy Z lines",
		len(p.DeadQubits()), len(p.BrokenCouplers()), p.StuckLossyCount())
}

// CampaignStats accounts for the degradation a calibration campaign
// absorbed.
type CampaignStats struct {
	// Pairs is the number of alive qubit pairs the campaign attempted.
	Pairs int
	// SkippedDead is the number of pairs never attempted because an
	// endpoint is dead.
	SkippedDead int
	// Dropouts is the total number of failed measurement attempts.
	Dropouts int
	// Retried is the number of pairs that needed at least one retry.
	Retried int
	// LostPairs is the number of pairs abandoned after the retry
	// budget was exhausted; the fit proceeds without them.
	LostPairs int
	// Outliers is the number of heavy-tailed outlier samples injected.
	Outliers int
}

// Add accumulates another campaign's stats (the pipeline sums XY and
// ZZ).
func (s *CampaignStats) Add(o CampaignStats) {
	s.Pairs += o.Pairs
	s.SkippedDead += o.SkippedDead
	s.Dropouts += o.Dropouts
	s.Retried += o.Retried
	s.LostPairs += o.LostPairs
	s.Outliers += o.Outliers
}

// Measure runs the fault-injected calibration campaign for one
// crosstalk channel: the pairwise campaign of xmon.Device.MeasureSeeded
// restricted to alive qubits, where each attempt may drop out (retried
// up to retryBudget extra times, each attempt on its own RNG stream
// split from the pair's stream) and each successful sample may be
// corrupted into a heavy-tailed outlier.
//
// Determinism contract: pair p draws attempt a from
// TaskRand(TaskSeed(seed, p), a), so the campaign is bit-identical for
// any worker count. With a nil or fault-free plan it degenerates to
// exactly dev.MeasureSeeded — same streams, same samples.
//
// A pair whose attempts all drop out is lost (recorded in stats, not an
// error); the campaign only fails when no pair at all survives, or the
// context is cancelled.
func Measure(ctx context.Context, dev *xmon.Device, kind xmon.CrosstalkKind, noiseRel float64, seed int64, workers, retryBudget int, plan *Plan) ([]xmon.Sample, CampaignStats, error) {
	var stats CampaignStats
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	if dev == nil {
		return nil, stats, fmt.Errorf("faults: nil device")
	}
	if retryBudget < 0 {
		retryBudget = 0
	}
	n := dev.Chip.NumQubits()
	if plan == nil || !plan.Spec.Enabled() {
		samples := dev.MeasureSeeded(kind, noiseRel, seed, workers)
		stats.Pairs = len(samples)
		obsRecord(stats)
		return samples, stats, ctx.Err()
	}

	// Pair enumeration keeps the i<j order of MeasureSeeded over ALL
	// qubits, so pair p's RNG stream is independent of the fault plan;
	// dead pairs are skipped without consuming a stream.
	type pairTask struct {
		i, j int
		p    uint64 // global pair index = RNG stream
	}
	var tasks []pairTask
	var idx uint64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if plan.QubitDead(i) || plan.QubitDead(j) {
				stats.SkippedDead++
			} else {
				tasks = append(tasks, pairTask{i: i, j: j, p: idx})
			}
			idx++
		}
	}
	stats.Pairs = len(tasks)
	if len(tasks) == 0 {
		return nil, stats, fmt.Errorf("faults: no measurable qubit pairs (%d of %d qubits dead)",
			n-len(plan.AliveQubits(n)), n)
	}

	type outcome struct {
		sample   xmon.Sample
		ok       bool
		dropouts int
		outlier  bool
	}
	results := make([]outcome, len(tasks))
	spec := plan.Spec
	rands := parallel.NewRands(parallel.Resolve(workers, len(tasks)))
	err := parallel.ForEachCtxWorker(ctx, workers, len(tasks), func(worker, ti int) error {
		task := tasks[ti]
		pairSeed := parallel.TaskSeed(seed, task.p)
		res := &results[ti]
		for attempt := 0; attempt <= retryBudget; attempt++ {
			rng := rands.Task(worker, pairSeed, uint64(attempt))
			if spec.DropoutRate > 0 && rng.Float64() < spec.DropoutRate {
				res.dropouts++
				continue
			}
			s := dev.MeasurePair(kind, task.i, task.j, noiseRel, rng)
			if spec.OutlierRate > 0 && rng.Float64() < spec.OutlierRate {
				// Heavy tail: lognormal body scaled to OutlierScale,
				// so outliers are strictly larger than any honest
				// sample and trimming can identify them.
				s.Value *= spec.outlierScale() * math.Exp(math.Abs(rng.NormFloat64()))
				res.outlier = true
			}
			res.sample, res.ok = s, true
			break
		}
		return nil
	})
	if err != nil {
		return nil, stats, err
	}

	samples := make([]xmon.Sample, 0, len(tasks))
	for _, res := range results {
		stats.Dropouts += res.dropouts
		if res.dropouts > 0 && res.ok {
			stats.Retried++
		}
		if !res.ok {
			stats.LostPairs++
			continue
		}
		if res.outlier {
			stats.Outliers++
		}
		samples = append(samples, res.sample)
	}
	if len(samples) == 0 {
		return nil, stats, fmt.Errorf("faults: calibration campaign lost all %d pairs to dropouts (retry budget %d)",
			len(tasks), retryBudget)
	}
	obsRecord(stats)
	return samples, stats, nil
}
