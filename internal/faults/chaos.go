package faults

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync/atomic"
	"time"

	"repro/internal/stage"
)

// ErrChaos marks a chaos-injected stage failure. Tests and the serve
// chaos harness use errors.Is to tell injected failures from organic
// ones.
var ErrChaos = errors.New("faults: chaos-injected failure")

// Chaos is a seeded, deterministic stage-level fault injector: wrapped
// around a stage.Store it makes a reproducible subset of executions
// slow, failing or panicking. The decision for one execution is a pure
// function of (Seed, stage name, artifact key) — the same SplitMix64
// discipline as the device fault plans — so a chaos run is replayable:
// the same request mix against the same seed degrades identically.
//
// Rates are evaluated in order panic, fail, slow over one uniform draw,
// so PanicRate+FailRate+SlowRate must be <= 1 for the rates to mean
// marginal probabilities.
type Chaos struct {
	// Seed drives the per-execution decision stream.
	Seed int64
	// PanicRate is the fraction of executions that panic (exercising
	// the store's panic containment and the server's 500 path).
	PanicRate float64
	// FailRate is the fraction of executions failing with ErrChaos.
	FailRate float64
	// SlowRate is the fraction of executions delayed by Delay before
	// running (exercising deadlines, queueing and load shedding).
	SlowRate float64
	// Delay is the injected latency of a slow execution. The sleep is
	// context-aware: a per-request deadline still bounds a slowed stage.
	Delay time.Duration

	slows  atomic.Int64
	fails  atomic.Int64
	panics atomic.Int64
}

// Counts reports how many executions were slowed, failed and panicked
// so far.
func (c *Chaos) Counts() (slows, fails, panics int64) {
	return c.slows.Load(), c.fails.Load(), c.panics.Load()
}

// draw returns the uniform [0,1) decision variate of one execution.
func (c *Chaos) draw(name string, key stage.Key) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", c.Seed, name, key)
	// SplitMix64 finalizer over the FNV state decorrelates the low bits.
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// Wrapper returns the stage.ExecWrapper implementing the spec. Install
// it with Store.Wrap; a nil *Chaos yields a nil wrapper (no injection).
func (c *Chaos) Wrapper() stage.ExecWrapper {
	if c == nil {
		return nil
	}
	return func(name string, key stage.Key, fn func(context.Context) (any, error)) func(context.Context) (any, error) {
		u := c.draw(name, key)
		switch {
		case u < c.PanicRate:
			return func(context.Context) (any, error) {
				c.panics.Add(1)
				panic(fmt.Sprintf("faults: chaos-injected panic in stage %s", name))
			}
		case u < c.PanicRate+c.FailRate:
			return func(context.Context) (any, error) {
				c.fails.Add(1)
				return nil, fmt.Errorf("stage %s: %w", name, ErrChaos)
			}
		case u < c.PanicRate+c.FailRate+c.SlowRate:
			return func(ctx context.Context) (any, error) {
				c.slows.Add(1)
				timer := time.NewTimer(c.Delay)
				defer timer.Stop()
				select {
				case <-timer.C:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				return fn(ctx)
			}
		default:
			return fn
		}
	}
}
