package faults

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/chip"
	"repro/internal/xmon"
)

func testDevice(t *testing.T, w, h int, seed int64) *xmon.Device {
	t.Helper()
	c := chip.Square(w, h)
	return xmon.NewDevice(c, xmon.DefaultParams(), rand.New(rand.NewSource(seed)))
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"zero", Spec{}, true},
		{"uniform", UniformSpec(0.05), true},
		{"negative", Spec{DeadQubitRate: -0.1}, false},
		{"above one", Spec{OutlierRate: 1.5}, false},
		{"dropout one", Spec{DropoutRate: 1}, false},
		{"dead one", Spec{DeadQubitRate: 1}, true},
		{"negative scale", Spec{OutlierScale: -3}, false},
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestNewPlanDeterministic(t *testing.T) {
	c := chip.Square(6, 6)
	spec := UniformSpec(0.1)
	p1, err := New(c, spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := New(c, spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Error("identical (chip, spec, seed) produced different plans")
	}
	p3, err := New(c, spec, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(p1.DeadQubits(), p3.DeadQubits()) &&
		reflect.DeepEqual(p1.BrokenCouplers(), p3.BrokenCouplers()) {
		t.Error("different seeds produced identical fault sets (suspicious)")
	}
}

func TestNewPlanRejectsBadSpec(t *testing.T) {
	if _, err := New(chip.Square(2, 2), Spec{DropoutRate: 1}, 1); err == nil {
		t.Error("want error for DropoutRate == 1")
	}
	if _, err := New(nil, Spec{}, 1); err == nil {
		t.Error("want error for nil chip")
	}
}

func TestNilPlanIsFaultFree(t *testing.T) {
	var p *Plan
	if p.QubitDead(0) || p.CouplerBroken(0) || p.QubitStuckLossy(0) || p.CouplerStuckLossy(0) {
		t.Error("nil plan reported a fault")
	}
	if got := p.AliveQubits(4); len(got) != 4 {
		t.Errorf("nil plan AliveQubits = %v", got)
	}
	if p.StuckLossyCount() != 0 || p.Summary() != "no faults" {
		t.Error("nil plan has non-empty degradation summary")
	}
}

func TestCouplerUsable(t *testing.T) {
	c := chip.Square(3, 3)
	spec := Spec{DeadQubitRate: 0.5}
	p, err := New(c, spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	for ci, cp := range c.Couplers {
		want := !p.QubitDead(cp.A) && !p.QubitDead(cp.B)
		if got := p.CouplerUsable(c, ci); got != want {
			t.Errorf("coupler %d usable = %v, want %v", ci, got, want)
		}
	}
}

// TestMeasureFaultFreeParity: a nil plan (and a zero spec) must
// reproduce dev.MeasureSeeded bit-identically — same streams, same
// samples — so fault-free pipelines are unchanged by the faults layer.
func TestMeasureFaultFreeParity(t *testing.T) {
	dev := testDevice(t, 4, 4, 3)
	want := dev.MeasureSeeded(xmon.XY, 0.05, 99, 1)
	for name, plan := range map[string]*Plan{"nil": nil} {
		got, stats, err := Measure(context.Background(), dev, xmon.XY, 0.05, 99, 4, 3, plan)
		if err != nil {
			t.Fatalf("%s plan: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s plan: campaign differs from MeasureSeeded", name)
		}
		if stats.Pairs != len(want) || stats.Dropouts != 0 || stats.LostPairs != 0 {
			t.Errorf("%s plan: unexpected stats %+v", name, stats)
		}
	}
	zeroPlan, err := New(dev.Chip, Spec{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Measure(context.Background(), dev, xmon.XY, 0.05, 99, 2, 3, zeroPlan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("zero-spec plan: campaign differs from MeasureSeeded")
	}
}

// TestMeasureWorkerCountInvariant: the fault-injected campaign is
// bit-identical for any worker count, including its stats.
func TestMeasureWorkerCountInvariant(t *testing.T) {
	dev := testDevice(t, 5, 5, 11)
	plan, err := New(dev.Chip, Spec{
		DeadQubitRate: 0.15,
		DropoutRate:   0.2,
		OutlierRate:   0.1,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	ref, refStats, err := Measure(context.Background(), dev, xmon.XY, 0.05, 77, 1, 2, plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		got, stats, err := Measure(context.Background(), dev, xmon.XY, 0.05, 77, workers, 2, plan)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: samples differ from sequential run", workers)
		}
		if stats != refStats {
			t.Fatalf("workers=%d: stats %+v differ from %+v", workers, stats, refStats)
		}
	}
}

func TestMeasureSkipsDeadQubits(t *testing.T) {
	dev := testDevice(t, 4, 4, 2)
	plan, err := New(dev.Chip, Spec{DeadQubitRate: 0.3}, 9)
	if err != nil {
		t.Fatal(err)
	}
	dead := plan.DeadQubits()
	if len(dead) == 0 {
		t.Skip("seed drew no dead qubits; adjust seed")
	}
	samples, stats, err := Measure(context.Background(), dev, xmon.ZZ, 0.05, 1, 1, 0, plan)
	if err != nil {
		t.Fatal(err)
	}
	isDead := make(map[int]bool)
	for _, q := range dead {
		isDead[q] = true
	}
	for _, s := range samples {
		if isDead[s.I] || isDead[s.J] {
			t.Fatalf("sample (%d,%d) touches a dead qubit", s.I, s.J)
		}
	}
	n := dev.Chip.NumQubits()
	if stats.SkippedDead == 0 || stats.Pairs+stats.SkippedDead != n*(n-1)/2 {
		t.Errorf("pair accounting wrong: %+v", stats)
	}
}

// TestMeasureRetryRescuesDropouts: with a generous budget, a lossy
// campaign still measures every alive pair; with no budget it loses
// some, and the dropout/retry accounting is consistent.
func TestMeasureRetryRescuesDropouts(t *testing.T) {
	dev := testDevice(t, 4, 4, 6)
	plan, err := New(dev.Chip, Spec{DropoutRate: 0.4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	full, statsFull, err := Measure(context.Background(), dev, xmon.XY, 0.05, 5, 1, 20, plan)
	if err != nil {
		t.Fatal(err)
	}
	if statsFull.LostPairs != 0 {
		t.Errorf("budget 20 still lost %d pairs", statsFull.LostPairs)
	}
	if len(full) != statsFull.Pairs {
		t.Errorf("got %d samples for %d pairs", len(full), statsFull.Pairs)
	}
	if statsFull.Dropouts == 0 || statsFull.Retried == 0 {
		t.Errorf("40%% dropout campaign recorded no dropouts: %+v", statsFull)
	}

	lossy, statsNone, err := Measure(context.Background(), dev, xmon.XY, 0.05, 5, 1, 0, plan)
	if err != nil {
		t.Fatal(err)
	}
	if statsNone.LostPairs == 0 {
		t.Error("budget 0 under 40% dropout lost no pairs (improbable)")
	}
	if len(lossy)+statsNone.LostPairs != statsNone.Pairs {
		t.Errorf("sample/lost accounting wrong: %d + %d != %d",
			len(lossy), statsNone.LostPairs, statsNone.Pairs)
	}
}

func TestMeasureOutliersAreLarge(t *testing.T) {
	dev := testDevice(t, 4, 4, 8)
	plan, err := New(dev.Chip, Spec{OutlierRate: 0.2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	faulty, stats, err := Measure(context.Background(), dev, xmon.XY, 0.05, 13, 1, 0, plan)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Outliers == 0 {
		t.Fatal("20% outlier rate injected none")
	}
	clean := dev.MeasureSeeded(xmon.XY, 0.05, 13, 1)
	var cleanMax float64
	for _, s := range clean {
		if s.Value > cleanMax {
			cleanMax = s.Value
		}
	}
	var faultyMax float64
	for _, s := range faulty {
		if s.Value > faultyMax {
			faultyMax = s.Value
		}
	}
	if faultyMax < cleanMax*5 {
		t.Errorf("outliers not heavy-tailed: max %g vs clean max %g", faultyMax, cleanMax)
	}
}

func TestMeasureAllDeadFailsDescriptively(t *testing.T) {
	dev := testDevice(t, 2, 2, 1)
	plan, err := New(dev.Chip, Spec{DeadQubitRate: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.AliveQubits(dev.Chip.NumQubits())) != 0 {
		t.Fatal("rate-1 plan left qubits alive")
	}
	_, _, err = Measure(context.Background(), dev, xmon.XY, 0.05, 1, 1, 3, plan)
	if err == nil {
		t.Fatal("want descriptive error for fully-dead chip")
	}
}

func TestMeasureHonorsContext(t *testing.T) {
	dev := testDevice(t, 4, 4, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	plan, err := New(dev.Chip, UniformSpec(0.05), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Measure(ctx, dev, xmon.XY, 0.05, 1, 1, 3, plan); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
