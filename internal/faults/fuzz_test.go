package faults

import (
	"math"
	"testing"

	"repro/internal/chip"
	"repro/internal/fdm"
	"repro/internal/tdm"
)

// FuzzPlanExclusion drives the degraded grouping path with arbitrary
// fault rates and seeds, asserting the core degradation invariant: no
// dead qubit ever appears in an FDM group and no dead/broken device
// ever appears in a TDM group. The seed corpus covers the extremes
// (fault-free, heavy damage) plus a few mixed plans.
func FuzzPlanExclusion(f *testing.F) {
	f.Add(uint64(1), 0.0, 0.0, 0.0)
	f.Add(uint64(2), 0.05, 0.05, 0.05)
	f.Add(uint64(3), 0.5, 0.3, 0.2)
	f.Add(uint64(99), 0.9, 0.9, 0.9)
	f.Fuzz(func(t *testing.T, seed uint64, deadRate, brokenRate, stuckRate float64) {
		clamp := func(r float64) float64 {
			if math.IsNaN(r) || r < 0 {
				return 0
			}
			if r > 1 {
				return 1
			}
			return r
		}
		spec := Spec{
			DeadQubitRate:     clamp(deadRate),
			BrokenCouplerRate: clamp(brokenRate),
			StuckLossyRate:    clamp(stuckRate),
		}
		c := chip.Square(4, 4)
		plan, err := New(c, spec, int64(seed))
		if err != nil {
			t.Fatalf("New(%+v, %d): %v", spec, seed, err)
		}

		alive := plan.AliveQubits(c.NumQubits())
		if len(alive) == 0 {
			return // dead chip: nothing to group, handled upstream
		}

		// FDM over the alive set.
		g, err := fdm.Group(alive, 3, func(i, j int) float64 { return c.PhysicalDistance(i, j) })
		if err != nil {
			t.Fatalf("fdm.Group over %d alive qubits: %v", len(alive), err)
		}
		for gi, grp := range g.Groups {
			for _, q := range grp {
				if plan.QubitDead(q) {
					t.Fatalf("seed %d: FDM group %d contains dead qubit %d", seed, gi, q)
				}
			}
		}
		if err := g.ValidateMembers(alive); err != nil {
			t.Fatalf("seed %d: fdm.ValidateMembers: %v", seed, err)
		}

		// TDM over the usable devices.
		gi := tdm.AnalyzeGatesUsable(c, func(tg chip.TwoQubitGate) bool { return plan.GateUsable(c, tg) })
		var devs []int
		for _, q := range alive {
			devs = append(devs, gi.Dev.QubitDevice(q))
		}
		for ci := range c.Couplers {
			if plan.CouplerUsable(c, ci) {
				devs = append(devs, gi.Dev.CouplerDevice(ci))
			}
		}
		cfg := tdm.DefaultConfig(nil)
		cfg.Isolate = func(dev int) bool {
			if gi.Dev.IsCoupler(dev) {
				return plan.CouplerStuckLossy(gi.Dev.CouplerID(dev))
			}
			return plan.QubitStuckLossy(dev)
		}
		grouping, err := tdm.GroupDevices(gi, devs, cfg)
		if err != nil {
			t.Fatalf("seed %d: tdm.GroupDevices over %d devices: %v", seed, len(devs), err)
		}
		for gid, grp := range grouping.Groups {
			for _, d := range grp.Devices {
				if gi.Dev.IsCoupler(d) {
					if !plan.CouplerUsable(c, gi.Dev.CouplerID(d)) {
						t.Fatalf("seed %d: TDM group %d contains unusable coupler device %s", seed, gid, gi.Dev.Name(d))
					}
				} else if plan.QubitDead(d) {
					t.Fatalf("seed %d: TDM group %d contains dead qubit %d", seed, gid, d)
				}
			}
		}
		if err := grouping.ValidateDevices(gi, devs); err != nil {
			t.Fatalf("seed %d: tdm.ValidateDevices: %v", seed, err)
		}
	})
}
