// Package readout models frequency-multiplexed dispersive readout, the
// third control-line family of the wiring system. Each qubit couples to
// a readout resonator; all resonators on one feedline are probed
// simultaneously with frequency-stacked tones (FDM without filters, as
// in Figure 2). The model predicts per-qubit assignment fidelity from
// the dispersive phase swing, photon shot noise and inter-resonator
// spectral interference, and derives how many qubits one feedline can
// carry at a target fidelity — the paper's "up to 8 qubits at 99.0%
// single-shot fidelity" anchor.
package readout

import (
	"fmt"
	"math"
)

// Resonator is one qubit's readout resonator.
type Resonator struct {
	// FreqGHz is the resonator frequency.
	FreqGHz float64
	// KappaMHz is the resonator linewidth κ/2π.
	KappaMHz float64
	// ChiMHz is the dispersive shift χ/2π (resonance moves by ±χ with
	// the qubit state).
	ChiMHz float64
}

// DefaultResonator returns typical planar-transmon readout parameters.
func DefaultResonator(freqGHz float64) Resonator {
	return Resonator{FreqGHz: freqGHz, KappaMHz: 5, ChiMHz: 1.5}
}

// PhaseSwing returns the transmitted-phase separation (radians)
// between the qubit's two states when probed at the mean resonance:
// 2·atan(2χ/κ).
func (r Resonator) PhaseSwing() float64 {
	return 2 * math.Atan2(2*r.ChiMHz, r.KappaMHz)
}

// Probe describes the measurement settings shared by a feedline.
type Probe struct {
	// Photons is the steady-state intra-resonator photon number n̄.
	Photons float64
	// IntegrationNs is the demodulation window τ.
	IntegrationNs float64
	// Efficiency is the measurement quantum efficiency η in (0, 1].
	Efficiency float64
}

// DefaultProbe uses typical dispersive-readout settings: ~10 photons
// in the resonator, a 300 ns window and a phase-preserving
// amplification chain at 35% quantum efficiency.
func DefaultProbe() Probe {
	return Probe{Photons: 10, IntegrationNs: 300, Efficiency: 0.35}
}

func (p Probe) validate() error {
	if p.Photons <= 0 || p.IntegrationNs <= 0 {
		return fmt.Errorf("readout: non-positive probe power or window")
	}
	if p.Efficiency <= 0 || p.Efficiency > 1 {
		return fmt.Errorf("readout: efficiency %g outside (0,1]", p.Efficiency)
	}
	return nil
}

// Feedline is a set of resonators sharing one readout line.
type Feedline struct {
	Resonators []Resonator
}

// interference returns the spectral overlap of resonator j's response
// at resonator i's probe frequency: a Lorentzian in their detuning with
// half-width κ_j/2.
func interference(ri, rj Resonator) float64 {
	detMHz := math.Abs(ri.FreqGHz-rj.FreqGHz) * 1000
	hw := rj.KappaMHz / 2
	return hw * hw / (hw*hw + detMHz*detMHz)
}

// SNR returns the readout signal-to-noise ratio of resonator i under
// the probe: dispersive phase swing over shot noise, degraded by the
// spectral interference of every other tone on the line.
func (f *Feedline) SNR(i int, p Probe) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if i < 0 || i >= len(f.Resonators) {
		return 0, fmt.Errorf("readout: resonator %d out of range", i)
	}
	ri := f.Resonators[i]
	// Photon shot-noise phase uncertainty after integrating τ:
	// σ ≈ 1/sqrt(η·n̄·κ·τ). κ in MHz and τ in ns gives κτ in 1e-3
	// cycles; convert to angular counts.
	kt := 2 * math.Pi * ri.KappaMHz * 1e-3 * p.IntegrationNs
	sigma2 := 1 / (p.Efficiency * p.Photons * kt)
	// Interfering tones add phase noise proportional to their spectral
	// overlap (they carry comparable photon numbers).
	for j, rj := range f.Resonators {
		if j == i {
			continue
		}
		sigma2 += interference(ri, rj)
	}
	return ri.PhaseSwing() / math.Sqrt(sigma2), nil
}

// AssignmentError converts an SNR into the single-shot misassignment
// probability of two Gaussian pointer states separated by SNR·σ:
// ε = erfc(SNR/(2√2))/2.
func AssignmentError(snr float64) float64 {
	return 0.5 * math.Erfc(snr/(2*math.Sqrt2))
}

// Fidelity returns resonator i's single-shot assignment fidelity.
func (f *Feedline) Fidelity(i int, p Probe) (float64, error) {
	snr, err := f.SNR(i, p)
	if err != nil {
		return 0, err
	}
	return 1 - AssignmentError(snr), nil
}

// WorstFidelity returns the minimum fidelity across the feedline.
func (f *Feedline) WorstFidelity(p Probe) (float64, error) {
	if len(f.Resonators) == 0 {
		return 0, fmt.Errorf("readout: empty feedline")
	}
	worst := 1.0
	for i := range f.Resonators {
		fid, err := f.Fidelity(i, p)
		if err != nil {
			return 0, err
		}
		if fid < worst {
			worst = fid
		}
	}
	return worst, nil
}

// DesignFeedline allocates n resonators evenly across the readout band
// [bandLoGHz, bandHiGHz] with default resonator parameters.
func DesignFeedline(n int, bandLoGHz, bandHiGHz float64) (*Feedline, error) {
	if n < 1 {
		return nil, fmt.Errorf("readout: need at least 1 resonator")
	}
	if bandHiGHz <= bandLoGHz {
		return nil, fmt.Errorf("readout: empty band [%g, %g]", bandLoGHz, bandHiGHz)
	}
	f := &Feedline{}
	step := (bandHiGHz - bandLoGHz) / float64(n+1)
	for i := 1; i <= n; i++ {
		f.Resonators = append(f.Resonators, DefaultResonator(bandLoGHz+float64(i)*step))
	}
	return f, nil
}

// Capacity returns the largest number of default resonators one
// feedline in the band supports at or above the target worst-case
// fidelity, up to maxN.
func Capacity(bandLoGHz, bandHiGHz float64, p Probe, targetFidelity float64, maxN int) (int, error) {
	best := 0
	for n := 1; n <= maxN; n++ {
		f, err := DesignFeedline(n, bandLoGHz, bandHiGHz)
		if err != nil {
			return 0, err
		}
		worst, err := f.WorstFidelity(p)
		if err != nil {
			return 0, err
		}
		if worst >= targetFidelity {
			best = n
		}
	}
	return best, nil
}
