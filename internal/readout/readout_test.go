package readout

import (
	"math"
	"testing"
)

func TestPhaseSwing(t *testing.T) {
	r := Resonator{KappaMHz: 5, ChiMHz: 2.5}
	// 2χ = κ -> swing = 2·atan(1) = π/2.
	if got := r.PhaseSwing(); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("swing %v, want π/2", got)
	}
	// Stronger dispersive shift, bigger swing.
	weak := Resonator{KappaMHz: 5, ChiMHz: 0.5}
	if weak.PhaseSwing() >= r.PhaseSwing() {
		t.Error("swing should grow with χ")
	}
}

func TestProbeValidation(t *testing.T) {
	f, err := DesignFeedline(2, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Probe{
		{Photons: 0, IntegrationNs: 100, Efficiency: 0.5},
		{Photons: 1, IntegrationNs: 0, Efficiency: 0.5},
		{Photons: 1, IntegrationNs: 100, Efficiency: 0},
		{Photons: 1, IntegrationNs: 100, Efficiency: 1.5},
	}
	for _, p := range bad {
		if _, err := f.SNR(0, p); err == nil {
			t.Errorf("invalid probe %+v accepted", p)
		}
	}
	if _, err := f.SNR(5, DefaultProbe()); err == nil {
		t.Error("out-of-range resonator accepted")
	}
}

func TestSingleResonatorFidelityHigh(t *testing.T) {
	f, err := DesignFeedline(1, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	fid, err := f.Fidelity(0, DefaultProbe())
	if err != nil {
		t.Fatal(err)
	}
	if fid < 0.99 {
		t.Errorf("lone resonator fidelity %v below 99%%", fid)
	}
}

func TestInterferenceDegradesWithCrowding(t *testing.T) {
	p := DefaultProbe()
	var prev float64 = 1
	for _, n := range []int{1, 4, 16, 64} {
		f, err := DesignFeedline(n, 7, 8)
		if err != nil {
			t.Fatal(err)
		}
		worst, err := f.WorstFidelity(p)
		if err != nil {
			t.Fatal(err)
		}
		if worst > prev+1e-12 {
			t.Errorf("%d resonators: fidelity improved to %v", n, worst)
		}
		prev = worst
	}
}

func TestPaperCapacityAnchor(t *testing.T) {
	// The paper (after George et al.): an FDM readout line carries up
	// to 8 qubits at 99.0% single-shot fidelity in a 1 GHz band.
	cap8, err := Capacity(7, 8, DefaultProbe(), 0.99, 32)
	if err != nil {
		t.Fatal(err)
	}
	if cap8 < 8 {
		t.Errorf("capacity %d at 99%%, paper supports 8", cap8)
	}
	// But not unboundedly many: a tighter fidelity target must reduce
	// capacity as tone crowding raises interference.
	capTight, err := Capacity(7, 8, DefaultProbe(), 0.999, 32)
	if err != nil {
		t.Fatal(err)
	}
	if capTight >= 32 {
		t.Errorf("99.9%% capacity %d did not bound tone crowding", capTight)
	}
	if capTight > cap8 {
		t.Errorf("tighter target raised capacity: %d vs %d", capTight, cap8)
	}
}

func TestAssignmentErrorProperties(t *testing.T) {
	if e := AssignmentError(0); math.Abs(e-0.5) > 1e-12 {
		t.Errorf("zero SNR should be a coin flip, got %v", e)
	}
	prev := 0.5
	for snr := 0.5; snr < 10; snr += 0.5 {
		e := AssignmentError(snr)
		if e >= prev {
			t.Fatalf("error not decreasing at SNR %v", snr)
		}
		prev = e
	}
	if e := AssignmentError(10); e > 1e-3 {
		t.Errorf("SNR 10 error %v too high", e)
	}
}

func TestMoreIntegrationHelps(t *testing.T) {
	f, err := DesignFeedline(4, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	short := DefaultProbe()
	short.IntegrationNs = 50
	long := DefaultProbe()
	long.IntegrationNs = 1000
	s1, err := f.SNR(0, short)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := f.SNR(0, long)
	if err != nil {
		t.Fatal(err)
	}
	if s2 <= s1 {
		t.Errorf("longer integration should raise SNR: %v vs %v", s2, s1)
	}
}

func TestDesignFeedlineValidation(t *testing.T) {
	if _, err := DesignFeedline(0, 7, 8); err == nil {
		t.Error("0 resonators accepted")
	}
	if _, err := DesignFeedline(4, 8, 7); err == nil {
		t.Error("inverted band accepted")
	}
	f, err := DesignFeedline(3, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range f.Resonators {
		if r.FreqGHz <= 7 || r.FreqGHz >= 8 {
			t.Errorf("resonator %d at %v GHz outside band", i, r.FreqGHz)
		}
	}
	// Evenly spaced.
	d1 := f.Resonators[1].FreqGHz - f.Resonators[0].FreqGHz
	d2 := f.Resonators[2].FreqGHz - f.Resonators[1].FreqGHz
	if math.Abs(d1-d2) > 1e-12 {
		t.Error("resonators not evenly spaced")
	}
}

func TestWorstFidelityEmpty(t *testing.T) {
	f := &Feedline{}
	if _, err := f.WorstFidelity(DefaultProbe()); err == nil {
		t.Error("empty feedline accepted")
	}
}

func TestInterferenceSymmetricDecay(t *testing.T) {
	a := DefaultResonator(7.2)
	b := DefaultResonator(7.3)
	c := DefaultResonator(7.8)
	if interference(a, b) <= interference(a, c) {
		t.Error("interference should decay with detuning")
	}
	if interference(a, b) != interference(b, a) {
		t.Error("interference should be symmetric for equal κ")
	}
}
