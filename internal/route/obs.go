package route

import (
	"sync/atomic"

	"repro/internal/obs"
)

// routeObs caches the resolved arena instrumentation.
//
// All three are gauges, not counters: they describe how the scratch
// arena executed (allocation pressure and reuse rate), which is an
// execution property in the same class as timings — excluded from the
// canonical stripped snapshot so cache hits, retries and partial
// rebuilds can vary the values without breaking the worker-invariance
// contract.
type routeObs struct {
	// searches counts astar invocations; scratchAllocs counts arena
	// (re)allocations; scratchReuse counts segments that ran entirely
	// on the pre-sized arena. reuse/(allocs+reuse) is the arena hit
	// rate — near 1 on any multi-net routing.
	searches      *obs.Gauge
	scratchAllocs *obs.Gauge
	scratchReuse  *obs.Gauge
}

var observer atomic.Pointer[routeObs]

// Observe routes the router's arena instrumentation into r; nil
// disables it again. Process-global, like parallel.Observe.
func Observe(r *obs.Registry) {
	if r == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&routeObs{
		searches:      r.Gauge("route/astar_searches"),
		scratchAllocs: r.Gauge("route/scratch_allocs"),
		scratchReuse:  r.Gauge("route/scratch_reuse"),
	})
}
