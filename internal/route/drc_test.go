package route

import (
	"math"
	"testing"

	"repro/internal/chip"
	"repro/internal/geom"
)

func TestCheckDRCCleanRouting(t *testing.T) {
	c := chip.Square(3, 3)
	r := NewRouter(c)
	var nets []Net
	for _, q := range c.Qubits {
		nets = append(nets, Net{Kind: NetXY, Label: "xy", Targets: []geom.Point{q.Pos}})
	}
	res, err := r.RouteAll(nets)
	if err != nil {
		t.Fatal(err)
	}
	report := CheckDRC(res)
	// The router's halo enforces the pitch; crossover-free nets must
	// have no spacing violations among themselves.
	if report.SpacingViolations > 0 {
		t.Errorf("%d spacing violations in a small clean routing (min %.4f mm)",
			report.SpacingViolations, report.MinSpacing)
	}
	// Any observed clearance must respect the rule (an Inf means no two
	// nets ever came within a bucket of each other, which also passes).
	if !math.IsInf(report.MinSpacing, 1) && report.MinSpacing < minClearance-1e-9 {
		t.Errorf("min spacing %v below clearance %v without violations", report.MinSpacing, minClearance)
	}
}

func TestCheckDRCDetectsManufacturedViolation(t *testing.T) {
	// Hand-build a Result with two parallel nets 5 µm apart — a clear
	// violation of the 10 µm clearance.
	res := &Result{
		Nets: []RoutedNet{
			{Net: Net{Label: "a"}, Path: []geom.Point{geom.Pt(0, 0), geom.Pt(0.1, 0)}},
			{Net: Net{Label: "b"}, Path: []geom.Point{geom.Pt(0, 0.005), geom.Pt(0.1, 0.005)}},
		},
	}
	report := CheckDRC(res)
	if report.SpacingViolations == 0 {
		t.Error("manufactured 5 µm violation not detected")
	}
	if report.MinSpacing > 0.006 {
		t.Errorf("min spacing %v, want ~0.005", report.MinSpacing)
	}
}

func TestCheckDRCIgnoresDeclaredCrossovers(t *testing.T) {
	res := &Result{
		Nets: []RoutedNet{
			{Net: Net{Label: "a"}, Path: []geom.Point{geom.Pt(0, 0), geom.Pt(0.1, 0)}},
			{Net: Net{Label: "b"}, Path: []geom.Point{geom.Pt(0.05, 0)}, Crossings: 1},
		},
		Crossings: 1,
	}
	report := CheckDRC(res)
	if report.SpacingViolations != 0 {
		t.Errorf("airbridge contact counted as violation")
	}
	if report.Crossovers != 1 {
		t.Errorf("crossover count lost")
	}
}

func TestCheckDRCEmpty(t *testing.T) {
	report := CheckDRC(&Result{})
	if report.SpacingViolations != 0 {
		t.Error("empty routing has violations")
	}
}
