// Package route implements the chip-level control-line router used by
// the Table 2 chip-level evaluation: a grid router at 10 µm resolution
// running A* under standard EDA constraints — no crossing of committed
// wires, a minimum spacing between adjacent lines, and keep-out discs
// around the large on-chip components (qubits). Interfaces sit on the
// chip perimeter at a 0.5 mm pitch and each routed net consumes one.
package route

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Physical constants from the paper's chip-level discussion.
const (
	// Resolution is the routing-grid cell size in mm (10 µm).
	Resolution = 0.010
	// WireWidth is the control-line width in mm (20 µm).
	WireWidth = 0.020
	// WirePitch is the line-to-line pitch in mm (30 µm).
	WirePitch = 0.030
	// InterfacePitch is the perimeter interface pitch in mm (0.5 mm).
	InterfacePitch = 0.5
	// QubitKeepOut is the blocked radius around each qubit in mm.
	QubitKeepOut = 0.20
	// Margin is the die margin around the qubit array in mm; interface
	// pads sit near the die edge, so every net runs a trunk from the
	// edge to the array.
	Margin = 2.5
	// ControlPitch is the strip width of narrow digital DEMUX-control
	// lines (5 µm lines at 10 µm pitch).
	ControlPitch = 0.010
)

// cell is an integer grid coordinate.
type cell struct{ X, Y int }

// Grid is the routing canvas: a blocked-cell bitmap plus component
// keep-out discs. All A* working state lives in a per-Grid scratch
// arena (see gridScratch) that is reused across segments, so routing a
// net allocates only its returned polyline.
type Grid struct {
	w, h    int
	origin  geom.Point
	blocked []bool
	discs   []disc
	// discOf[cell] is the index of the keep-out disc covering the cell,
	// or -1. Discs are assumed non-overlapping (device keep-outs are
	// smaller than half the qubit pitch).
	discOf []int16

	scr gridScratch
}

// gridScratch is the per-Grid search arena. The visited/cost arrays
// are generation-stamped: bumping gen invalidates every entry in O(1),
// so consecutive astar calls share the arrays without a clearing pass.
// The open list is a concrete-typed binary heap that replicates
// container/heap's sift order exactly, keeping tie-breaking — and
// therefore the produced paths — bit-identical to the historical
// interface-based heap.
type gridScratch struct {
	prev   []int32
	cost   []float64
	gen    []uint32
	genCur uint32

	// Source-zone membership stamps (see markSrcZone) plus its BFS queue.
	zoneGen []uint32
	zoneCur uint32

	open   []pqItem
	queue  []cell
	cells  []cell
	exempt []int16

	// searches counts astar invocations on this arena; reuses counts
	// invocations that found the arrays already sized (scratch hits).
	searches int64
	reuses   int64
}

type disc struct {
	center geom.Point
	radius float64
}

// NewGrid creates a routing grid covering bounds expanded by Margin.
func NewGrid(bounds geom.Rect) *Grid {
	b := bounds.Expand(Margin)
	w := int(math.Ceil(b.Width()/Resolution)) + 1
	h := int(math.Ceil(b.Height()/Resolution)) + 1
	g := &Grid{w: w, h: h, origin: b.Min, blocked: make([]bool, w*h)}
	g.discOf = make([]int16, w*h)
	for i := range g.discOf {
		g.discOf[i] = -1
	}
	return g
}

// Width and Height return the grid dimensions in cells.
func (g *Grid) Width() int  { return g.w }
func (g *Grid) Height() int { return g.h }

// ClearWires removes every committed wire from the grid, restoring the
// canvas to its post-construction state. Keep-out discs are geometry,
// not wiring, and survive. The scratch arena is kept (that is the
// point of clearing instead of rebuilding).
func (g *Grid) ClearWires() {
	for i := range g.blocked {
		g.blocked[i] = false
	}
}

// ScratchStats reports (searches, reuses): total astar invocations on
// this grid and how many of them ran entirely on the pre-sized arena.
func (g *Grid) ScratchStats() (searches, reuses int64) {
	return g.scr.searches, g.scr.reuses
}

// AddKeepOut registers a circular component keep-out.
func (g *Grid) AddKeepOut(center geom.Point, radius float64) {
	idx := int16(len(g.discs))
	g.discs = append(g.discs, disc{center: center, radius: radius})
	// Rasterize the disc into the index map.
	c0 := g.toCell(geom.Pt(center.X-radius, center.Y-radius))
	c1 := g.toCell(geom.Pt(center.X+radius, center.Y+radius))
	for y := c0.Y; y <= c1.Y; y++ {
		for x := c0.X; x <= c1.X; x++ {
			c := cell{x, y}
			if !g.inBounds(c) {
				continue
			}
			if g.toPoint(c).Dist(center) < radius {
				g.discOf[g.idx(c)] = idx
			}
		}
	}
}

func (g *Grid) toCell(p geom.Point) cell {
	return cell{
		X: int(math.Round((p.X - g.origin.X) / Resolution)),
		Y: int(math.Round((p.Y - g.origin.Y) / Resolution)),
	}
}

func (g *Grid) toPoint(c cell) geom.Point {
	return geom.Pt(g.origin.X+float64(c.X)*Resolution, g.origin.Y+float64(c.Y)*Resolution)
}

func (g *Grid) inBounds(c cell) bool {
	return c.X >= 0 && c.X < g.w && c.Y >= 0 && c.Y < g.h
}

func (g *Grid) idx(c cell) int { return c.Y*g.w + c.X }

// ensureScratch sizes the arena to the grid. Called at most once per
// segment; after the first call every array keeps its capacity.
func (g *Grid) ensureScratch() {
	s := &g.scr
	if len(s.gen) == g.w*g.h {
		s.reuses++
		if o := observer.Load(); o != nil {
			o.scratchReuse.Add(1)
		}
		return
	}
	n := g.w * g.h
	s.prev = make([]int32, n)
	s.cost = make([]float64, n)
	s.gen = make([]uint32, n)
	s.zoneGen = make([]uint32, n)
	s.genCur = 0
	s.zoneCur = 0
	if o := observer.Load(); o != nil {
		o.scratchAllocs.Add(1)
	}
}

// nextGen invalidates the visited/cost arrays in O(1). On the (rare)
// uint32 wraparound the stamps are cleared so stale entries from 2^32
// searches ago cannot alias the fresh generation.
func (s *gridScratch) nextGen() {
	s.genCur++
	if s.genCur == 0 {
		for i := range s.gen {
			s.gen[i] = 0
		}
		s.genCur = 1
	}
}

func (s *gridScratch) nextZoneGen() {
	s.zoneCur++
	if s.zoneCur == 0 {
		for i := range s.zoneGen {
			s.zoneGen[i] = 0
		}
		s.zoneCur = 1
	}
}

// inZone reports whether cell index i was stamped by the latest
// markSrcZone pass.
func (s *gridScratch) inZone(i int) bool { return s.zoneGen[i] == s.zoneCur }

// exemptDiscs collects (into the reused scratch buffer) the indices of
// keep-out discs containing either segment endpoint: a wire may
// traverse the discs it starts or ends in.
func (g *Grid) exemptDiscs(a, b geom.Point) []int16 {
	out := g.scr.exempt[:0]
	for i, d := range g.discs {
		if a.Dist(d.center) < d.radius || b.Dist(d.center) < d.radius {
			out = append(out, int16(i))
		}
	}
	g.scr.exempt = out
	return out
}

// inKeepOut reports whether the cell sits in a keep-out disc other than
// the exempted ones (discs containing the segment's endpoints).
func (g *Grid) inKeepOut(ci int, exempt []int16) bool {
	d := g.discOf[ci]
	if d < 0 {
		return false
	}
	for _, e := range exempt {
		if e == d {
			return false
		}
	}
	return true
}

// blockPath commits a routed path: its cells, plus a one-cell halo that
// enforces the 30 µm pitch (wire width 20 µm on a 10 µm grid), become
// unavailable to later nets.
func (g *Grid) blockPath(cells []cell) {
	for _, c := range cells {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				n := cell{c.X + dx, c.Y + dy}
				if g.inBounds(n) {
					g.blocked[g.idx(n)] = true
				}
			}
		}
	}
}

type pqItem struct {
	c     cell
	f, gc float64
}

// pushOpen appends it and sifts up, replicating container/heap.Push
// (append then up(n-1)) on a concrete element type.
func (s *gridScratch) pushOpen(it pqItem) {
	q := append(s.open, it)
	j := len(q) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(q[j].f < q[i].f) {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
	s.open = q
}

// popOpen removes and returns the minimum, replicating
// container/heap.Pop exactly: Swap(0, n-1), sift down over [0, n-1),
// return the displaced root. Matching the sift order matters — equal-f
// frontier cells pop in the same order as the historical
// container/heap implementation, keeping routed paths bit-identical.
func (s *gridScratch) popOpen() pqItem {
	q := s.open
	n := len(q) - 1
	q[0], q[n] = q[n], q[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && q[j2].f < q[j1].f {
			j = j2
		}
		if !(q[j].f < q[i].f) {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
	it := q[n]
	s.open = q[:n]
	return it
}

// crossPenalty is the A* cost of stepping onto a committed wire cell in
// the crossing-allowed retry pass — each such step models an airbridge
// crossover.
const crossPenalty = 60

// markSrcZone stamps the contiguous region of committed-wire cells
// around src (capped), which a new segment may traverse freely: a
// branch departing from its own hub or chain end necessarily starts
// inside the halo of the wiring already committed there. The stamps
// are queried through gridScratch.inZone until the next call.
func (g *Grid) markSrcZone(src cell) {
	const zoneCap = 600
	s := &g.scr
	s.nextZoneGen()
	si := g.idx(src)
	if !g.blocked[si] {
		return
	}
	s.zoneGen[si] = s.zoneCur
	count := 1
	queue := append(s.queue[:0], src)
	for qi := 0; qi < len(queue) && count < zoneCap; qi++ {
		c := queue[qi]
		for _, d := range [4]cell{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			n := cell{c.X + d.X, c.Y + d.Y}
			if !g.inBounds(n) {
				continue
			}
			ni := g.idx(n)
			if g.blocked[ni] && s.zoneGen[ni] != s.zoneCur {
				s.zoneGen[ni] = s.zoneCur
				count++
				queue = append(queue, n)
			}
		}
	}
	s.queue = queue
}

// astar finds the cheapest 4-connected path from src to dst avoiding
// blocked cells and foreign keep-outs. When allowCross is set, blocked
// cells are passable at crossPenalty (airbridge crossovers); keep-outs
// stay hard. It returns nil when no path exists. The returned cells
// alias the scratch arena and are valid until the next astar call.
// Cells stamped by the latest markSrcZone pass are traversable for
// free (the segment starts inside its own committed wiring).
func (g *Grid) astar(src, dst cell, exempt []int16, allowCross bool) []cell {
	if !g.inBounds(src) || !g.inBounds(dst) {
		return nil
	}
	// Expansion budget: a crossing-free pass that wanders far beyond
	// the direct corridor is abandoned in favour of the (always
	// feasible) crossing pass, bounding worst-case routing time.
	budget := 1 << 62
	if !allowCross {
		manhattan := abs(src.X-dst.X) + abs(src.Y-dst.Y)
		budget = 400*(manhattan+1) + 20000
	}
	expanded := 0
	s := &g.scr
	s.searches++
	if o := observer.Load(); o != nil {
		o.searches.Add(1)
	}
	s.nextGen()
	h := func(c cell) float64 {
		return float64(abs(c.X-dst.X) + abs(c.Y-dst.Y))
	}
	s.open = append(s.open[:0], pqItem{c: src, f: h(src)})
	si := g.idx(src)
	s.gen[si] = s.genCur
	s.cost[si] = 0
	s.prev[si] = int32(si)
	dirs := [4]cell{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	for len(s.open) > 0 {
		it := s.popOpen()
		if it.c == dst {
			return g.reconstruct(src, dst)
		}
		ci := g.idx(it.c)
		if it.gc > s.cost[ci] {
			continue
		}
		if expanded++; expanded > budget {
			return nil
		}
		for _, d := range dirs {
			n := cell{it.c.X + d.X, it.c.Y + d.Y}
			if !g.inBounds(n) {
				continue
			}
			ni := g.idx(n)
			step := 1.0
			if n != dst {
				if g.inKeepOut(ni, exempt) {
					continue
				}
				if g.blocked[ni] && !s.inZone(ni) {
					if !allowCross {
						continue
					}
					step += crossPenalty
				}
			}
			if nc := it.gc + step; s.gen[ni] != s.genCur || nc < s.cost[ni] {
				s.gen[ni] = s.genCur
				s.cost[ni] = nc
				s.prev[ni] = int32(ci)
				s.pushOpen(pqItem{c: n, f: nc + h(n), gc: nc})
			}
		}
	}
	return nil
}

// reconstruct walks the prev stamps from dst back to src into the
// scratch cell buffer and reverses it in place.
func (g *Grid) reconstruct(src, dst cell) []cell {
	s := &g.scr
	path := s.cells[:0]
	cur := g.idx(dst)
	srcIdx := g.idx(src)
	for {
		path = append(path, cell{cur % g.w, cur / g.w})
		if cur == srcIdx {
			break
		}
		cur = int(s.prev[cur])
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	s.cells = path
	return path
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// RouteSegment routes one wire segment from a to b, commits it to the
// grid, and returns its polyline. Keep-out discs containing either
// endpoint are traversable for this segment. When no crossing-free path
// exists, a second pass allows airbridge crossovers at a penalty;
// crossings reports how many committed wires the result hops over.
func (g *Grid) RouteSegment(a, b geom.Point) (path []geom.Point, crossings int, err error) {
	return g.routeSegmentInto(a, b, nil)
}

// routeSegmentInto is RouteSegment appending the polyline to dst
// (which may be nil), so a multi-segment net accumulates its path in
// one amortized allocation instead of one slice per segment.
func (g *Grid) routeSegmentInto(a, b geom.Point, dst []geom.Point) (path []geom.Point, crossings int, err error) {
	src, dc := g.toCell(a), g.toCell(b)
	if !g.inBounds(src) || !g.inBounds(dc) {
		return dst, 0, fmt.Errorf("route: segment %v -> %v outside grid", a, b)
	}
	g.ensureScratch()
	exempt := g.exemptDiscs(a, b)
	g.markSrcZone(src)
	cells := g.astar(src, dc, exempt, false)
	if cells == nil {
		cells = g.astar(src, dc, exempt, true)
		if cells == nil {
			return dst, 0, fmt.Errorf("route: no path %v -> %v even with crossovers", a, b)
		}
		// Count crossover events: each transition into a committed-wire
		// region is one airbridge.
		inWire := false
		for _, c := range cells[1:] {
			ci := g.idx(c)
			b := g.blocked[ci] && !g.scr.inZone(ci)
			if b && !inWire {
				crossings++
			}
			inWire = b
		}
	}
	if dst == nil {
		dst = make([]geom.Point, 0, len(cells))
	}
	for _, c := range cells {
		dst = append(dst, g.toPoint(c))
	}
	g.blockPath(cells)
	return dst, crossings, nil
}
