// Package route implements the chip-level control-line router used by
// the Table 2 chip-level evaluation: a grid router at 10 µm resolution
// running A* under standard EDA constraints — no crossing of committed
// wires, a minimum spacing between adjacent lines, and keep-out discs
// around the large on-chip components (qubits). Interfaces sit on the
// chip perimeter at a 0.5 mm pitch and each routed net consumes one.
package route

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/geom"
)

// Physical constants from the paper's chip-level discussion.
const (
	// Resolution is the routing-grid cell size in mm (10 µm).
	Resolution = 0.010
	// WireWidth is the control-line width in mm (20 µm).
	WireWidth = 0.020
	// WirePitch is the line-to-line pitch in mm (30 µm).
	WirePitch = 0.030
	// InterfacePitch is the perimeter interface pitch in mm (0.5 mm).
	InterfacePitch = 0.5
	// QubitKeepOut is the blocked radius around each qubit in mm.
	QubitKeepOut = 0.20
	// Margin is the die margin around the qubit array in mm; interface
	// pads sit near the die edge, so every net runs a trunk from the
	// edge to the array.
	Margin = 2.5
	// ControlPitch is the strip width of narrow digital DEMUX-control
	// lines (5 µm lines at 10 µm pitch).
	ControlPitch = 0.010
)

// cell is an integer grid coordinate.
type cell struct{ X, Y int }

// Grid is the routing canvas: a blocked-cell bitmap plus component
// keep-out discs.
type Grid struct {
	w, h    int
	origin  geom.Point
	blocked []bool
	discs   []disc
	// discOf[cell] is the index of the keep-out disc covering the cell,
	// or -1. Discs are assumed non-overlapping (device keep-outs are
	// smaller than half the qubit pitch).
	discOf []int16
}

type disc struct {
	center geom.Point
	radius float64
}

// NewGrid creates a routing grid covering bounds expanded by Margin.
func NewGrid(bounds geom.Rect) *Grid {
	b := bounds.Expand(Margin)
	w := int(math.Ceil(b.Width()/Resolution)) + 1
	h := int(math.Ceil(b.Height()/Resolution)) + 1
	g := &Grid{w: w, h: h, origin: b.Min, blocked: make([]bool, w*h)}
	g.discOf = make([]int16, w*h)
	for i := range g.discOf {
		g.discOf[i] = -1
	}
	return g
}

// Width and Height return the grid dimensions in cells.
func (g *Grid) Width() int  { return g.w }
func (g *Grid) Height() int { return g.h }

// AddKeepOut registers a circular component keep-out.
func (g *Grid) AddKeepOut(center geom.Point, radius float64) {
	idx := int16(len(g.discs))
	g.discs = append(g.discs, disc{center: center, radius: radius})
	// Rasterize the disc into the index map.
	c0 := g.toCell(geom.Pt(center.X-radius, center.Y-radius))
	c1 := g.toCell(geom.Pt(center.X+radius, center.Y+radius))
	for y := c0.Y; y <= c1.Y; y++ {
		for x := c0.X; x <= c1.X; x++ {
			c := cell{x, y}
			if !g.inBounds(c) {
				continue
			}
			if g.toPoint(c).Dist(center) < radius {
				g.discOf[g.idx(c)] = idx
			}
		}
	}
}

func (g *Grid) toCell(p geom.Point) cell {
	return cell{
		X: int(math.Round((p.X - g.origin.X) / Resolution)),
		Y: int(math.Round((p.Y - g.origin.Y) / Resolution)),
	}
}

func (g *Grid) toPoint(c cell) geom.Point {
	return geom.Pt(g.origin.X+float64(c.X)*Resolution, g.origin.Y+float64(c.Y)*Resolution)
}

func (g *Grid) inBounds(c cell) bool {
	return c.X >= 0 && c.X < g.w && c.Y >= 0 && c.Y < g.h
}

func (g *Grid) idx(c cell) int { return c.Y*g.w + c.X }

// exemptDiscs returns the indices of keep-out discs containing either
// segment endpoint: a wire may traverse the discs it starts or ends in.
func (g *Grid) exemptDiscs(a, b geom.Point) []int16 {
	var out []int16
	for i, d := range g.discs {
		if a.Dist(d.center) < d.radius || b.Dist(d.center) < d.radius {
			out = append(out, int16(i))
		}
	}
	return out
}

// inKeepOut reports whether the cell sits in a keep-out disc other than
// the exempted ones (discs containing the segment's endpoints).
func (g *Grid) inKeepOut(ci int, exempt []int16) bool {
	d := g.discOf[ci]
	if d < 0 {
		return false
	}
	for _, e := range exempt {
		if e == d {
			return false
		}
	}
	return true
}

// blockPath commits a routed path: its cells, plus a one-cell halo that
// enforces the 30 µm pitch (wire width 20 µm on a 10 µm grid), become
// unavailable to later nets.
func (g *Grid) blockPath(cells []cell) {
	for _, c := range cells {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				n := cell{c.X + dx, c.Y + dy}
				if g.inBounds(n) {
					g.blocked[g.idx(n)] = true
				}
			}
		}
	}
}

type pqItem struct {
	c     cell
	f, gc float64
}

type pathPQ []pqItem

func (q pathPQ) Len() int            { return len(q) }
func (q pathPQ) Less(i, j int) bool  { return q[i].f < q[j].f }
func (q pathPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pathPQ) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pathPQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// crossPenalty is the A* cost of stepping onto a committed wire cell in
// the crossing-allowed retry pass — each such step models an airbridge
// crossover.
const crossPenalty = 60

// astar finds the cheapest 4-connected path from src to dst avoiding
// blocked cells and foreign keep-outs. When allowCross is set, blocked
// cells are passable at crossPenalty (airbridge crossovers); keep-outs
// stay hard. It returns nil when no path exists.
// srcZone returns the contiguous region of committed-wire cells around
// src (capped), which the new segment may traverse freely: a branch
// departing from its own hub or chain end necessarily starts inside the
// halo of the wiring already committed there.
func (g *Grid) srcZone(src cell) map[int]bool {
	const cap = 600
	si := g.idx(src)
	if !g.blocked[si] {
		return nil
	}
	zone := map[int]bool{si: true}
	queue := []cell{src}
	for len(queue) > 0 && len(zone) < cap {
		c := queue[0]
		queue = queue[1:]
		for _, d := range [4]cell{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			n := cell{c.X + d.X, c.Y + d.Y}
			if !g.inBounds(n) {
				continue
			}
			ni := g.idx(n)
			if g.blocked[ni] && !zone[ni] {
				zone[ni] = true
				queue = append(queue, n)
			}
		}
	}
	return zone
}

func (g *Grid) astar(src, dst cell, exempt []int16, srcZone map[int]bool, allowCross bool) []cell {
	if !g.inBounds(src) || !g.inBounds(dst) {
		return nil
	}
	// Expansion budget: a crossing-free pass that wanders far beyond
	// the direct corridor is abandoned in favour of the (always
	// feasible) crossing pass, bounding worst-case routing time.
	budget := 1 << 62
	if !allowCross {
		manhattan := abs(src.X-dst.X) + abs(src.Y-dst.Y)
		budget = 400*(manhattan+1) + 20000
	}
	expanded := 0
	const unvisited = -1
	prev := make([]int32, g.w*g.h)
	cost := make([]float64, g.w*g.h)
	for i := range prev {
		prev[i] = unvisited
		cost[i] = math.Inf(1)
	}
	h := func(c cell) float64 {
		return float64(abs(c.X-dst.X) + abs(c.Y-dst.Y))
	}
	pq := &pathPQ{{c: src, f: h(src)}}
	cost[g.idx(src)] = 0
	prev[g.idx(src)] = int32(g.idx(src))
	dirs := [4]cell{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if it.c == dst {
			return g.reconstruct(prev, src, dst)
		}
		ci := g.idx(it.c)
		if it.gc > cost[ci] {
			continue
		}
		if expanded++; expanded > budget {
			return nil
		}
		for _, d := range dirs {
			n := cell{it.c.X + d.X, it.c.Y + d.Y}
			if !g.inBounds(n) {
				continue
			}
			ni := g.idx(n)
			step := 1.0
			if n != dst {
				if g.inKeepOut(ni, exempt) {
					continue
				}
				if g.blocked[ni] && !srcZone[ni] {
					if !allowCross {
						continue
					}
					step += crossPenalty
				}
			}
			if nc := it.gc + step; nc < cost[ni] {
				cost[ni] = nc
				prev[ni] = int32(ci)
				heap.Push(pq, pqItem{c: n, f: nc + h(n), gc: nc})
			}
		}
	}
	return nil
}

func (g *Grid) reconstruct(prev []int32, src, dst cell) []cell {
	var path []cell
	cur := g.idx(dst)
	srcIdx := g.idx(src)
	for {
		path = append(path, cell{cur % g.w, cur / g.w})
		if cur == srcIdx {
			break
		}
		cur = int(prev[cur])
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// RouteSegment routes one wire segment from a to b, commits it to the
// grid, and returns its polyline. Keep-out discs containing either
// endpoint are traversable for this segment. When no crossing-free path
// exists, a second pass allows airbridge crossovers at a penalty;
// crossings reports how many committed wires the result hops over.
func (g *Grid) RouteSegment(a, b geom.Point) (path []geom.Point, crossings int, err error) {
	src, dst := g.toCell(a), g.toCell(b)
	if !g.inBounds(src) || !g.inBounds(dst) {
		return nil, 0, fmt.Errorf("route: segment %v -> %v outside grid", a, b)
	}
	exempt := g.exemptDiscs(a, b)
	zone := g.srcZone(src)
	cells := g.astar(src, dst, exempt, zone, false)
	if cells == nil {
		cells = g.astar(src, dst, exempt, zone, true)
		if cells == nil {
			return nil, 0, fmt.Errorf("route: no path %v -> %v even with crossovers", a, b)
		}
		// Count crossover events: each transition into a committed-wire
		// region is one airbridge.
		inWire := false
		for _, c := range cells[1:] {
			ci := g.idx(c)
			b := g.blocked[ci] && !zone[ci]
			if b && !inWire {
				crossings++
			}
			inWire = b
		}
	}
	pts := make([]geom.Point, len(cells))
	for i, c := range cells {
		pts[i] = g.toPoint(c)
	}
	g.blockPath(cells)
	return pts, crossings, nil
}
