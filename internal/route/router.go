package route

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/chip"
	"repro/internal/geom"
)

// NetKind classifies a control net.
type NetKind int

const (
	// NetXY is a microwave drive line (single qubit or FDM chain).
	NetXY NetKind = iota
	// NetZ is a flux line (single device or TDM star through a DEMUX).
	NetZ
	// NetReadout is a readout feedline chain.
	NetReadout
	// NetControl is a DEMUX digital control line.
	NetControl
)

// String implements fmt.Stringer.
func (k NetKind) String() string {
	switch k {
	case NetXY:
		return "XY"
	case NetZ:
		return "Z"
	case NetReadout:
		return "readout"
	case NetControl:
		return "control"
	default:
		return fmt.Sprintf("NetKind(%d)", int(k))
	}
}

// Net is an unrouted control net.
type Net struct {
	Kind  NetKind
	Label string
	// Targets are the device positions served by the net, visited in
	// order for chain nets.
	Targets []geom.Point
	// Star marks a TDM net: Targets[0] is the DEMUX hub and the
	// remaining targets are routed as branches from the hub.
	Star bool
}

// RoutedNet is the routing result for one net.
type RoutedNet struct {
	Net
	Interface geom.Point
	Path      []geom.Point
	Length    float64
	// Crossings counts airbridge crossovers this net needed.
	Crossings int
}

// Result aggregates a full chip routing.
type Result struct {
	Nets          []RoutedNet
	NumInterfaces int
	TotalLength   float64 // mm
	Area          float64 // mm², occupied strip area of all wires
	// Crossings is the total number of airbridge crossovers; a fully
	// planar routing has zero.
	Crossings int
}

// Router routes a set of nets on one chip. The underlying grid owns a
// scratch arena reused across segments; Reset returns the Router to
// its pre-routing state (wires and interface claims cleared, pad ring
// and scratch kept) so one Router can route many net sets without
// re-rasterizing keep-outs.
type Router struct {
	grid       *Grid
	bounds     geom.Rect
	interfaces []geom.Point
	used       []bool

	// order/est are RouteAll's net-ordering scratch, reused per call.
	order []int
	est   []float64
}

// NewRouter prepares the routing canvas for a chip: grid, qubit
// keep-outs and perimeter interfaces.
func NewRouter(c *chip.Chip) *Router {
	bounds := c.Bounds()
	g := NewGrid(bounds)
	for _, q := range c.Qubits {
		g.AddKeepOut(q.Pos, QubitKeepOut)
	}
	return &Router{grid: g, bounds: bounds}
}

// perimeterInterfaces places interface pads on the rectangle
// Margin*0.8 outside the qubit array. The pitch is InterfacePitch
// unless the perimeter is too short for the requested pad count (small
// evaluation chips), in which case pads are packed as densely as the
// routing grid allows.
func perimeterInterfaces(bounds geom.Rect, minCount int) []geom.Point {
	r := bounds.Expand(Margin * 0.8)
	pitch := InterfacePitch
	if minCount > 0 {
		perimeter := 2 * (r.Width() + r.Height())
		if needed := perimeter / float64(minCount+4); needed < pitch {
			pitch = needed
		}
	}
	if pitch < 3*Resolution {
		pitch = 3 * Resolution
	}
	var pts []geom.Point
	for x := r.Min.X; x <= r.Max.X; x += pitch {
		pts = append(pts, geom.Pt(x, r.Min.Y), geom.Pt(x, r.Max.Y))
	}
	for y := r.Min.Y + pitch; y < r.Max.Y; y += pitch {
		pts = append(pts, geom.Pt(r.Min.X, y), geom.Pt(r.Max.X, y))
	}
	return pts
}

// NumAvailableInterfaces returns the perimeter capacity (0 before the
// first RouteAll sizes the pad ring).
func (r *Router) NumAvailableInterfaces() int { return len(r.interfaces) }

// Reset clears every committed wire and interface claim, keeping the
// grid geometry (keep-outs), the sized pad ring and the scratch arena.
// After Reset, an identical RouteAll call produces a bit-identical
// Result: routing state is fully captured by the blocked bitmap and
// the claim set, both of which Reset restores.
func (r *Router) Reset() {
	r.grid.ClearWires()
	for i := range r.used {
		r.used[i] = false
	}
}

// ScratchStats exposes the grid arena counters (astar searches and
// arena reuses) for observability.
func (r *Router) ScratchStats() (searches, reuses int64) {
	return r.grid.ScratchStats()
}

// claimInterface picks the nearest free interface to p.
func (r *Router) claimInterface(p geom.Point) (geom.Point, error) {
	if r.used == nil {
		r.used = make([]bool, len(r.interfaces))
	}
	best, bestD := -1, math.Inf(1)
	for i, ifc := range r.interfaces {
		if r.used[i] {
			continue
		}
		if d := ifc.Dist(p); d < bestD {
			best, bestD = i, d
		}
	}
	if best < 0 {
		return geom.Point{}, fmt.Errorf("route: out of perimeter interfaces (%d placed)", len(r.interfaces))
	}
	r.used[best] = true
	return r.interfaces[best], nil
}

// RouteAll routes every net, claiming one interface per net. Nets with
// in-array wiring (chains, stars) route first, then single-target nets
// innermost-first — the escape-routing discipline that keeps the
// result near planar. The input order breaks ties deterministically.
func (r *Router) RouteAll(nets []Net) (*Result, error) {
	if cap(r.order) < len(nets) {
		r.order = make([]int, len(nets))
		r.est = make([]float64, len(nets))
	}
	order, est := r.order[:len(nets)], r.est[:len(nets)]
	for i := range order {
		order[i] = i
	}
	for i, n := range nets {
		if len(n.Targets) == 0 {
			return nil, fmt.Errorf("route: net %d (%s) has no targets", i, n.Label)
		}
		est[i] = float64(len(n.Targets))*1e6 + r.edgeDistance(n.Targets[0])
	}
	sort.SliceStable(order, func(a, b int) bool { return est[order[a]] > est[order[b]] })

	if r.interfaces == nil {
		r.interfaces = perimeterInterfaces(r.bounds, len(nets))
	}
	if len(r.interfaces) < len(nets) {
		return nil, fmt.Errorf("route: %d nets exceed perimeter capacity %d", len(nets), len(r.interfaces))
	}

	res := &Result{Nets: make([]RoutedNet, len(nets))}
	for _, i := range order {
		rn, err := r.routeNet(nets[i])
		if err != nil {
			return nil, fmt.Errorf("route: net %q: %w", nets[i].Label, err)
		}
		res.Nets[i] = rn
		res.TotalLength += rn.Length
		res.Crossings += rn.Crossings
		// Each wire occupies a strip one pitch wide: 30 µm for coax-fed
		// CPW lines, 10 µm for narrow digital control lines.
		pitch := WirePitch
		if rn.Kind == NetControl {
			pitch = ControlPitch
		}
		res.Area += rn.Length * pitch
	}
	res.NumInterfaces = len(nets)
	return res, nil
}

// edgeDistance is the distance from p to the die boundary (deeper nets
// route first).
func (r *Router) edgeDistance(p geom.Point) float64 {
	die := r.bounds.Expand(Margin * 0.8)
	dx := die.Max.X - p.X
	if v := p.X - die.Min.X; v < dx {
		dx = v
	}
	dy := die.Max.Y - p.Y
	if v := p.Y - die.Min.Y; v < dy {
		dy = v
	}
	if dy < dx {
		return dy
	}
	return dx
}

func (r *Router) routeNet(n Net) (RoutedNet, error) {
	ifc, err := r.claimInterface(n.Targets[0])
	if err != nil {
		return RoutedNet{}, err
	}
	rn := RoutedNet{Net: n, Interface: ifc}

	appendSeg := func(a, b geom.Point) error {
		start := len(rn.Path)
		path, crossings, err := r.grid.routeSegmentInto(a, b, rn.Path)
		if err != nil {
			return err
		}
		rn.Path = path
		rn.Length += geom.PathLength(rn.Path[start:])
		rn.Crossings += crossings
		return nil
	}

	if err := appendSeg(ifc, n.Targets[0]); err != nil {
		return RoutedNet{}, err
	}
	if n.Star {
		hub := n.Targets[0]
		for _, t := range n.Targets[1:] {
			if err := appendSeg(hub, t); err != nil {
				return RoutedNet{}, err
			}
		}
		return rn, nil
	}
	for i := 1; i < len(n.Targets); i++ {
		if err := appendSeg(n.Targets[i-1], n.Targets[i]); err != nil {
			return RoutedNet{}, err
		}
	}
	return rn, nil
}

// Centroid returns the mean of the points, used to place DEMUX hubs.
func Centroid(pts []geom.Point) geom.Point {
	var c geom.Point
	if len(pts) == 0 {
		return c
	}
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}
