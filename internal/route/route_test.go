package route

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/chip"
	"repro/internal/geom"
)

func TestGridCoordinateRoundTrip(t *testing.T) {
	g := NewGrid(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(2, 2)})
	for _, p := range []geom.Point{geom.Pt(0, 0), geom.Pt(1.234, 0.567), geom.Pt(2, 2)} {
		c := g.toCell(p)
		back := g.toPoint(c)
		if back.Dist(p) > Resolution {
			t.Errorf("round trip %v -> %v drifts %v", p, back, back.Dist(p))
		}
	}
}

func TestGridDimensionsCoverMargin(t *testing.T) {
	b := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}
	g := NewGrid(b)
	wantCells := int(math.Ceil((1+2*Margin)/Resolution)) + 1
	if g.Width() != wantCells || g.Height() != wantCells {
		t.Errorf("grid %dx%d, want %dx%d", g.Width(), g.Height(), wantCells, wantCells)
	}
}

func TestRouteSegmentStraightLine(t *testing.T) {
	g := NewGrid(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(2, 2)})
	path, crossings, err := g.RouteSegment(geom.Pt(0, 1), geom.Pt(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if crossings != 0 {
		t.Errorf("unexpected crossings: %d", crossings)
	}
	if l := geom.PathLength(path); math.Abs(l-2) > 4*Resolution {
		t.Errorf("path length %v, want ~2", l)
	}
}

func TestRouteSegmentAvoidsCommittedWire(t *testing.T) {
	g := NewGrid(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(2, 2)})
	// Vertical wall through the middle (partial: leaves a gap at top).
	if _, _, err := g.RouteSegment(geom.Pt(1, -Margin+0.2), geom.Pt(1, 1.5)); err != nil {
		t.Fatal(err)
	}
	// Horizontal route must detour around the wall's top end.
	path, crossings, err := g.RouteSegment(geom.Pt(0, 1), geom.Pt(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if crossings != 0 {
		t.Errorf("detour should avoid crossing, got %d crossings", crossings)
	}
	if l := geom.PathLength(path); l < 2.5 {
		t.Errorf("path length %v suggests it did not detour", l)
	}
}

func TestRouteSegmentCrossesWhenWalledIn(t *testing.T) {
	g := NewGrid(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)})
	// Wall spanning the full grid height: unavoidable.
	if _, _, err := g.RouteSegment(geom.Pt(0.5, -Margin), geom.Pt(0.5, 1+Margin)); err != nil {
		t.Fatal(err)
	}
	_, crossings, err := g.RouteSegment(geom.Pt(0, 0.5), geom.Pt(1, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if crossings == 0 {
		t.Error("full wall must force a crossover")
	}
	if crossings > 2 {
		t.Errorf("one wall should cost one or two crossings, got %d", crossings)
	}
}

func TestKeepOutRespected(t *testing.T) {
	g := NewGrid(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(2, 2)})
	center := geom.Pt(1, 1)
	g.AddKeepOut(center, 0.3)
	path, _, err := g.RouteSegment(geom.Pt(0, 1), geom.Pt(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range path {
		if p.Dist(center) < 0.3-Resolution {
			t.Fatalf("path enters foreign keep-out at %v", p)
		}
	}
}

func TestKeepOutExemptForOwnTarget(t *testing.T) {
	g := NewGrid(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(2, 2)})
	center := geom.Pt(1, 1)
	g.AddKeepOut(center, 0.3)
	// Routing INTO the keep-out's centre must work (it is the target's
	// own disc).
	path, crossings, err := g.RouteSegment(geom.Pt(0, 1), center)
	if err != nil {
		t.Fatal(err)
	}
	if crossings != 0 {
		t.Errorf("own-target route crossed %d wires", crossings)
	}
	if end := path[len(path)-1]; end.Dist(center) > Resolution {
		t.Errorf("path ends at %v, not the target", end)
	}
}

func TestRouterGoogleStyleNets(t *testing.T) {
	c := chip.Square(3, 3)
	r := NewRouter(c)
	var nets []Net
	for _, q := range c.Qubits {
		nets = append(nets, Net{Kind: NetXY, Label: "xy", Targets: []geom.Point{q.Pos}})
	}
	res, err := r.RouteAll(nets)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumInterfaces != len(nets) {
		t.Errorf("interfaces %d, want %d", res.NumInterfaces, len(nets))
	}
	if res.TotalLength <= 0 || res.Area <= 0 {
		t.Error("zero routed length/area")
	}
	if math.Abs(res.Area-res.TotalLength*WirePitch) > 1e-9 {
		t.Errorf("area %v != length %v x pitch", res.Area, res.TotalLength)
	}
	for i, rn := range res.Nets {
		if len(rn.Path) == 0 {
			t.Errorf("net %d has empty path", i)
		}
		if rn.Length <= 0 {
			t.Errorf("net %d has zero length", i)
		}
	}
}

func TestRouterControlNetsAreNarrow(t *testing.T) {
	c := chip.Square(2, 2)
	r := NewRouter(c)
	nets := []Net{
		{Kind: NetControl, Label: "ctl", Targets: []geom.Point{c.Qubits[0].Pos}},
	}
	res, err := r.RouteAll(nets)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Area-res.TotalLength*ControlPitch) > 1e-9 {
		t.Errorf("control net should use ControlPitch: area %v length %v", res.Area, res.TotalLength)
	}
}

func TestRouterStarNet(t *testing.T) {
	c := chip.Square(3, 3)
	r := NewRouter(c)
	hub := Centroid([]geom.Point{c.Qubits[0].Pos, c.Qubits[1].Pos, c.Qubits[3].Pos})
	nets := []Net{{
		Kind:    NetZ,
		Label:   "star",
		Star:    true,
		Targets: []geom.Point{hub, c.Qubits[0].Pos, c.Qubits[1].Pos, c.Qubits[3].Pos},
	}}
	res, err := r.RouteAll(nets)
	if err != nil {
		t.Fatal(err)
	}
	// The star must reach every target.
	for _, target := range nets[0].Targets[1:] {
		found := false
		for _, p := range res.Nets[0].Path {
			if p.Dist(target) <= Resolution {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("star branch never reaches %v", target)
		}
	}
}

func TestRouterChainNet(t *testing.T) {
	c := chip.Square(3, 3)
	r := NewRouter(c)
	nets := []Net{{
		Kind:    NetXY,
		Label:   "chain",
		Targets: []geom.Point{c.Qubits[0].Pos, c.Qubits[1].Pos, c.Qubits[2].Pos},
	}}
	res, err := r.RouteAll(nets)
	if err != nil {
		t.Fatal(err)
	}
	// Chain length: trunk (>= ~Margin*0.8) + ~2 hops.
	if res.Nets[0].Length < 2*chip.DefaultPitch {
		t.Errorf("chain too short: %v", res.Nets[0].Length)
	}
}

func TestRouterRejectsEmptyNet(t *testing.T) {
	r := NewRouter(chip.Square(2, 2))
	if _, err := r.RouteAll([]Net{{Kind: NetXY, Label: "empty"}}); err == nil {
		t.Error("empty net accepted")
	}
}

func TestRouterInterfacesDistinct(t *testing.T) {
	c := chip.Square(3, 3)
	r := NewRouter(c)
	var nets []Net
	for _, q := range c.Qubits {
		nets = append(nets, Net{Kind: NetZ, Label: "z", Targets: []geom.Point{q.Pos}})
	}
	res, err := r.RouteAll(nets)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[geom.Point]bool{}
	for _, rn := range res.Nets {
		if seen[rn.Interface] {
			t.Errorf("interface %v claimed twice", rn.Interface)
		}
		seen[rn.Interface] = true
	}
}

func TestCentroid(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(2, 0), geom.Pt(1, 3)}
	if c := Centroid(pts); c != geom.Pt(1, 1) {
		t.Errorf("centroid %v, want (1,1)", c)
	}
	if c := Centroid(nil); c != (geom.Point{}) {
		t.Errorf("empty centroid %v", c)
	}
}

func TestNetKindString(t *testing.T) {
	for k, want := range map[NetKind]string{
		NetXY: "XY", NetZ: "Z", NetReadout: "readout", NetControl: "control",
	} {
		if k.String() != want {
			t.Errorf("%d: got %s want %s", int(k), k.String(), want)
		}
	}
}

// TestClaimInterfaceExhaustion: once every perimeter pad is claimed the
// router must fail loudly, and RouteAll must reject a net list larger
// than the sized pad ring up front rather than midway through routing.
func TestClaimInterfaceExhaustion(t *testing.T) {
	r := NewRouter(chip.Square(2, 2))
	r.interfaces = []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}
	for i := 0; i < 2; i++ {
		if _, err := r.claimInterface(geom.Pt(0.5, 0.5)); err != nil {
			t.Fatalf("claim %d failed with pads free: %v", i, err)
		}
	}
	if _, err := r.claimInterface(geom.Pt(0.5, 0.5)); err == nil {
		t.Fatal("third claim on a 2-pad ring succeeded")
	} else if !strings.Contains(err.Error(), "out of perimeter interfaces") {
		t.Errorf("exhaustion error %q does not name the cause", err)
	}

	// Reset releases every claim: the same ring serves again.
	r.Reset()
	if _, err := r.claimInterface(geom.Pt(0.5, 0.5)); err != nil {
		t.Fatalf("claim after Reset failed: %v", err)
	}

	// RouteAll with more nets than pads: rejected before any routing.
	r2 := NewRouter(chip.Square(2, 2))
	r2.interfaces = []geom.Point{geom.Pt(0, 0)}
	nets := []Net{
		{Kind: NetXY, Label: "a", Targets: []geom.Point{geom.Pt(0, 0)}},
		{Kind: NetXY, Label: "b", Targets: []geom.Point{geom.Pt(1, 1)}},
	}
	if _, err := r2.RouteAll(nets); err == nil {
		t.Fatal("RouteAll accepted more nets than perimeter capacity")
	} else if !strings.Contains(err.Error(), "exceed perimeter capacity") {
		t.Errorf("capacity error %q does not name the cause", err)
	}
}

// TestRouteDegenerateSinglePoint: zero-length segments and single-point
// nets are legal — a chain may revisit a device and a star may consist
// of its hub alone. They must route to a one-point path, not an error
// or a phantom crossing.
func TestRouteDegenerateSinglePoint(t *testing.T) {
	g := NewGrid(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(2, 2)})
	p := geom.Pt(1, 1)
	path, crossings, err := g.RouteSegment(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || crossings != 0 {
		t.Fatalf("degenerate segment: %d points, %d crossings, want 1 and 0", len(path), crossings)
	}
	if geom.PathLength(path) != 0 {
		t.Errorf("degenerate segment has length %v", geom.PathLength(path))
	}
	// Re-routing the same degenerate segment lands on the now-committed
	// cell; the source-zone exemption must keep it passable.
	if _, _, err := g.RouteSegment(p, p); err != nil {
		t.Fatalf("degenerate segment on committed cell: %v", err)
	}

	c := chip.Square(2, 2)
	nets := []Net{
		// A star of just its hub.
		{Kind: NetZ, Label: "hub-only", Star: true, Targets: []geom.Point{c.Qubits[0].Pos}},
		// A chain that revisits the same device.
		{Kind: NetXY, Label: "revisit", Targets: []geom.Point{c.Qubits[1].Pos, c.Qubits[1].Pos}},
	}
	res, err := NewRouter(c).RouteAll(nets)
	if err != nil {
		t.Fatal(err)
	}
	for i, rn := range res.Nets {
		if len(rn.Path) == 0 || rn.Length <= 0 {
			t.Errorf("net %d (%s): path %d points, length %v", i, rn.Label, len(rn.Path), rn.Length)
		}
	}
}

// TestRouteAllDeterministicAfterReset: the scratch arena must be
// invisible — repeated RouteAll calls on one Router (with Reset in
// between) and a fresh Router must produce bit-identical Results.
func TestRouteAllDeterministicAfterReset(t *testing.T) {
	c := chip.Square(3, 3)
	var nets []Net
	for i, q := range c.Qubits {
		nets = append(nets, Net{Kind: NetXY, Label: fmt.Sprintf("xy%d", i), Targets: []geom.Point{q.Pos}})
	}
	hub := Centroid([]geom.Point{c.Qubits[0].Pos, c.Qubits[4].Pos, c.Qubits[8].Pos})
	nets = append(nets,
		Net{Kind: NetZ, Label: "star", Star: true, Targets: []geom.Point{hub, c.Qubits[0].Pos, c.Qubits[4].Pos, c.Qubits[8].Pos}},
		Net{Kind: NetReadout, Label: "chain", Targets: []geom.Point{c.Qubits[2].Pos, c.Qubits[5].Pos, c.Qubits[8].Pos}},
	)

	r := NewRouter(c)
	first, err := r.RouteAll(nets)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		r.Reset()
		again, err := r.RouteAll(nets)
		if err != nil {
			t.Fatalf("run %d after Reset: %v", run, err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d after Reset diverged from the first routing", run)
		}
	}
	fresh, err := NewRouter(c).RouteAll(nets)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, fresh) {
		t.Fatal("reused Router diverged from a fresh Router on identical nets")
	}

	searches, reuses := r.ScratchStats()
	if searches == 0 || reuses == 0 {
		t.Errorf("scratch stats searches=%d reuses=%d: arena not exercised", searches, reuses)
	}
	if reuses >= searches {
		t.Errorf("reuses %d >= searches %d: first segment cannot be a reuse", reuses, searches)
	}
}
