package route

import (
	"math"

	"repro/internal/geom"
)

// DRCReport is the post-routing design-rule check of a Result: it
// re-examines the committed geometry independently of the router's own
// bookkeeping.
type DRCReport struct {
	// SpacingViolations counts point pairs from different nets closer
	// than the minimum spacing (excluding declared crossover hops).
	SpacingViolations int
	// MinSpacing is the smallest observed inter-net clearance (mm).
	MinSpacing float64
	// Crossovers echoes the router's airbridge count for context.
	Crossovers int
}

// minClearance is the DRC spacing limit: one wire pitch minus the wire
// width (the bare gap between adjacent conductors).
const minClearance = WirePitch - WireWidth

// CheckDRC sweeps the routed nets on a hash grid and reports the
// spacing violations between distinct nets. Nets that declared
// crossovers are allowed to touch (their hops are physical airbridges),
// so their contacts are not counted.
func CheckDRC(res *Result) *DRCReport {
	report := &DRCReport{MinSpacing: math.Inf(1)}
	report.Crossovers = res.Crossings

	// Bucket points at pitch resolution; only neighbouring buckets can
	// violate spacing.
	type bucket struct{ x, y int }
	cellSize := WirePitch
	points := make(map[bucket][]struct {
		p   geom.Point
		net int
	})
	for ni := range res.Nets {
		for _, p := range res.Nets[ni].Path {
			b := bucket{int(math.Floor(p.X / cellSize)), int(math.Floor(p.Y / cellSize))}
			points[b] = append(points[b], struct {
				p   geom.Point
				net int
			}{p, ni})
		}
	}

	crossing := make([]bool, len(res.Nets))
	for ni := range res.Nets {
		crossing[ni] = res.Nets[ni].Crossings > 0
	}

	seenPairs := make(map[[2]int]bool)
	for b, pts := range points {
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				nb := bucket{b.x + dx, b.y + dy}
				others, ok := points[nb]
				if !ok {
					continue
				}
				for _, a := range pts {
					for _, o := range others {
						if a.net >= o.net {
							continue
						}
						d := a.p.Dist(o.p)
						if d < report.MinSpacing && d > 0 {
							report.MinSpacing = d
						}
						if d < minClearance-1e-9 {
							if crossing[a.net] || crossing[o.net] {
								continue // airbridge contact
							}
							key := [2]int{a.net, o.net}
							if !seenPairs[key] {
								seenPairs[key] = true
								report.SpacingViolations++
							}
						}
					}
				}
			}
		}
	}
	return report
}
