package fdm

import (
	"strings"
	"testing"
)

func unitDist(i, j int) float64 { return 1 }

func TestGroupInputValidation(t *testing.T) {
	cases := []struct {
		name     string
		members  []int
		capacity int
		dist     DistanceFunc
		wantSub  string
	}{
		{"empty members", nil, 3, unitDist, "empty member list"},
		{"nil predictor", []int{0, 1}, 3, nil, "nil distance predictor"},
		{"negative id", []int{0, -2}, 3, unitDist, "negative qubit id"},
		{"duplicate", []int{1, 1}, 3, unitDist, "duplicate member"},
		{"zero capacity", []int{0}, 0, unitDist, "capacity"},
	}
	for _, tc := range cases {
		g, err := Group(tc.members, tc.capacity, tc.dist)
		if err == nil {
			t.Errorf("%s: want error, got grouping %v", tc.name, g.Groups)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestValidateMembers(t *testing.T) {
	g, err := Group([]int{2, 5, 9, 11}, 2, unitDist)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ValidateMembers([]int{2, 5, 9, 11}); err != nil {
		t.Errorf("exact member set rejected: %v", err)
	}
	if err := g.ValidateMembers([]int{2, 5, 9}); err == nil {
		t.Error("extra grouped qubit 11 not detected")
	}
	if err := g.ValidateMembers([]int{2, 5, 9, 11, 13}); err == nil {
		t.Error("missing member 13 not detected")
	}
	if err := g.ValidateMembers([]int{2, 2, 5, 9, 11}); err == nil {
		t.Error("duplicate validation member not detected")
	}
}
