package fdm

import (
	"reflect"
	"testing"
)

// fuzzMix is a SplitMix64-style finalizer used to derive deterministic
// pseudo-random distances and crosstalk values from fuzz input, so the
// fuzzer explores the grouping search space without any real RNG.
func fuzzMix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func fuzzUnit(seed uint64, i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	h := fuzzMix(seed ^ fuzzMix(uint64(i)<<32|uint64(j)))
	return float64(h%1_000_000) / 1_000_000
}

// FuzzGroupAllocate checks the two structural invariants of the FDM
// layer on arbitrary inputs: Group must produce a partition of [0, n)
// with no line over capacity, and Allocate must place every line's
// members in distinct zones (hence distinct frequency cells) with
// in-zone frequencies. Both passes must also be deterministic.
func FuzzGroupAllocate(f *testing.F) {
	f.Add(uint64(1), 9, 3)
	f.Add(uint64(42), 25, 5)
	f.Add(uint64(7), 1, 1)
	f.Add(uint64(0xDEADBEEF), 33, 7)
	f.Add(uint64(3), 16, 2)
	f.Fuzz(func(t *testing.T, seed uint64, n, capacity int) {
		// Clamp to tractable, valid shapes; invalid capacities are
		// covered by the unit tests.
		n = 1 + abs(n)%48
		capacity = 1 + abs(capacity)%8

		members := make([]int, n)
		for i := range members {
			members[i] = i
		}
		dist := func(i, j int) float64 { return fuzzUnit(seed, i, j) }
		xt := func(i, j int) float64 { return 0.1 * fuzzUnit(seed+1, i, j) }

		g, err := Group(members, capacity, dist)
		if err != nil {
			t.Fatalf("Group(n=%d, cap=%d): %v", n, capacity, err)
		}
		if err := g.Validate(n); err != nil {
			t.Fatalf("grouping invariant violated (n=%d, cap=%d): %v", n, capacity, err)
		}
		g2, err := Group(members, capacity, dist)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(g.Groups, g2.Groups) {
			t.Fatal("Group is not deterministic")
		}

		plan, err := Allocate(g, xt, DefaultAllocOptions())
		if err != nil {
			t.Fatalf("Allocate(n=%d, cap=%d): %v", n, capacity, err)
		}
		if err := plan.Validate(g); err != nil {
			t.Fatalf("plan invariant violated (n=%d, cap=%d): %v", n, capacity, err)
		}
		// Explicitly: no two qubits on the same line may share a
		// frequency cell (they would be indistinguishable on the wire).
		for li, group := range g.Groups {
			cells := make(map[CellRef]int)
			for _, q := range group {
				ref := plan.Cell[q]
				if prev, dup := cells[ref]; dup {
					t.Fatalf("line %d: qubits %d and %d share cell %+v", li, prev, q, ref)
				}
				cells[ref] = q
			}
		}
	})
}

// FuzzLocalClusterGroup checks the baseline grouping obeys the same
// partition invariant.
func FuzzLocalClusterGroup(f *testing.F) {
	f.Add(12, 4)
	f.Add(1, 1)
	f.Add(30, 7)
	f.Fuzz(func(t *testing.T, n, capacity int) {
		n = 1 + abs(n)%64
		capacity = 1 + abs(capacity)%8
		members := make([]int, n)
		for i := range members {
			members[i] = i
		}
		g := LocalClusterGroup(members, capacity)
		if err := g.Validate(n); err != nil {
			t.Fatalf("LocalClusterGroup(n=%d, cap=%d): %v", n, capacity, err)
		}
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
