package fdm

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/chip"
)

// CellWidthGHz is the frequency-cell granularity (10 MHz).
const CellWidthGHz = 0.010

// CellRef identifies one frequency cell: zone index and cell index
// within the zone.
type CellRef struct {
	Zone, Cell int
}

// FrequencyPlan is the result of two-level frequency allocation: a
// frequency (GHz) and cell for every qubit.
type FrequencyPlan struct {
	Zones        int
	CellsPerZone int
	// Freq maps qubit id to assigned frequency (GHz).
	Freq map[int]float64
	// Cell maps qubit id to its cell.
	Cell map[int]CellRef
	// Reused counts qubits placed into already-occupied cells
	// (frequency reuse under crowding).
	Reused int
}

// ZoneBounds returns the [lo, hi) frequency range of zone z for a plan
// with the given zone count over the effective qubit range.
func ZoneBounds(zones, z int) (lo, hi float64) {
	width := (chip.FreqMax - chip.FreqMin) / float64(zones)
	lo = chip.FreqMin + float64(z)*width
	return lo, lo + width
}

// CellFreq returns the centre frequency of a cell.
func CellFreq(zones int, ref CellRef) float64 {
	lo, _ := ZoneBounds(zones, ref.Zone)
	return lo + (float64(ref.Cell)+0.5)*CellWidthGHz
}

// AllocOptions tune the allocation pass.
type AllocOptions struct {
	// SwapPasses bounds the within-group zone-swap local search.
	SwapPasses int
	// CrossLine enables the cross-line crosstalk term in the allocation
	// objective; disabling it reproduces the George et al. in-line-only
	// baseline.
	CrossLine bool
}

// DefaultAllocOptions is YOUTIAO's configuration.
func DefaultAllocOptions() AllocOptions {
	return AllocOptions{SwapPasses: 3, CrossLine: true}
}

// leakage is the residual coupling between two tones spaced df GHz
// apart on nearby hardware: a Lorentzian with the ~40 MHz bandwidth of
// a 25 ns pulse. Equal frequencies leak fully; one zone of spacing
// suppresses leakage well below the -30 dB target.
func leakage(df float64) float64 {
	const width = 0.04 // GHz
	return 1 / (1 + (df/width)*(df/width))
}

// pairCost scores the allocation interaction of two qubits: predicted
// hardware crosstalk scaled by the spectral leakage of their assigned
// tones.
func pairCost(xt CrosstalkFunc, fi, fj float64, i, j int) float64 {
	return xt(i, j) * leakage(fi-fj)
}

// Allocate performs the two-level coarse-grained frequency allocation
// (Figure 7b) for a grouping. Zones equal the line capacity; each group
// spreads its members across distinct zones, cells within a zone are
// kept distinct across groups while free cells remain, and a bounded
// local search swaps zone assignments within each group to reduce the
// crosstalk objective. When a zone's cells are exhausted, the new qubit
// reuses the occupied cell whose occupants have the lowest predicted
// crosstalk to it (frequency reuse, the crowding rule).
func Allocate(g *Grouping, xt CrosstalkFunc, opts AllocOptions) (*FrequencyPlan, error) {
	zones := g.Capacity
	if zones < 1 {
		return nil, fmt.Errorf("fdm: grouping has capacity %d", g.Capacity)
	}
	lo0, hi0 := ZoneBounds(zones, 0)
	cellsPerZone := int((hi0 - lo0) / CellWidthGHz)
	if cellsPerZone < 1 {
		return nil, fmt.Errorf("fdm: zone width %.3f GHz below cell width", hi0-lo0)
	}

	plan := &FrequencyPlan{
		Zones:        zones,
		CellsPerZone: cellsPerZone,
		Freq:         make(map[int]float64),
		Cell:         make(map[int]CellRef),
	}
	// occupants[zone][cell] lists qubits in the cell.
	occupants := make([][][]int, zones)
	for z := range occupants {
		occupants[z] = make([][]int, cellsPerZone)
	}
	var assigned []int

	// cellFor picks the cell for qubit q in zone z: among free cells,
	// the one minimizing the leakage-weighted predicted crosstalk
	// against every qubit already assigned (anywhere — cells near a
	// zone border are spectrally close to the next zone's cells). Under
	// crowding, occupied cells compete too, and the cheapest reuse
	// wins.
	cellFor := func(q, z int) (int, bool) {
		bestFree, bestFreeCost := -1, math.Inf(1)
		bestAny, bestAnyCost := 0, math.Inf(1)
		for cell := 0; cell < cellsPerZone; cell++ {
			f := CellFreq(zones, CellRef{Zone: z, Cell: cell})
			var cost float64
			for _, o := range assigned {
				cost += pairCost(xt, f, plan.Freq[o], q, o)
			}
			free := len(occupants[z][cell]) == 0
			if free && cost < bestFreeCost {
				bestFree, bestFreeCost = cell, cost
			}
			if cost < bestAnyCost {
				bestAny, bestAnyCost = cell, cost
			}
		}
		if bestFree >= 0 {
			return bestFree, false
		}
		return bestAny, true
	}

	// groupCost scores a candidate zone permutation for one group given
	// everything already assigned.
	groupCost := func(group []int, zoneOf []int) float64 {
		var cost float64
		freq := func(idx int) float64 {
			z := zoneOf[idx]
			lo, _ := ZoneBounds(zones, z)
			return lo + (hi0-lo0)/2
		}
		for a := 0; a < len(group); a++ {
			fa := freq(a)
			// In-line: members of the same group share a physical line,
			// so their mutual leakage always counts.
			for b := a + 1; b < len(group); b++ {
				cost += pairCost(xt, fa, freq(b), group[a], group[b])
			}
			if opts.CrossLine {
				for _, o := range assigned {
					cost += pairCost(xt, fa, plan.Freq[o], group[a], o)
				}
			}
		}
		return cost
	}

	for _, group := range g.Groups {
		if len(group) > zones {
			return nil, fmt.Errorf("fdm: group of %d exceeds %d zones", len(group), zones)
		}
		// Initial zone assignment by position in the group.
		zoneOf := make([]int, len(group))
		for i := range group {
			zoneOf[i] = i
		}
		// Local search: swap zone assignments within the group while it
		// improves the objective (constraint 3 / the q4<->q6 swap).
		for pass := 0; pass < opts.SwapPasses; pass++ {
			improved := false
			for a := 0; a < len(group); a++ {
				for b := a + 1; b < len(group); b++ {
					before := groupCost(group, zoneOf)
					zoneOf[a], zoneOf[b] = zoneOf[b], zoneOf[a]
					if groupCost(group, zoneOf) < before {
						improved = true
					} else {
						zoneOf[a], zoneOf[b] = zoneOf[b], zoneOf[a]
					}
				}
			}
			if !improved {
				break
			}
		}
		// Commit: pick cells and final frequencies.
		for i, q := range group {
			z := zoneOf[i]
			cell, reused := cellFor(q, z)
			if reused {
				plan.Reused++
			}
			occupants[z][cell] = append(occupants[z][cell], q)
			ref := CellRef{Zone: z, Cell: cell}
			plan.Cell[q] = ref
			plan.Freq[q] = CellFreq(zones, ref)
			assigned = append(assigned, q)
		}
	}
	return plan, nil
}

// Validate checks plan invariants: every qubit of the grouping has a
// frequency inside its zone, group members occupy distinct zones, and
// cell bookkeeping matches frequencies.
func (p *FrequencyPlan) Validate(g *Grouping) error {
	for li, group := range g.Groups {
		zonesUsed := make(map[int]int)
		for _, q := range group {
			ref, ok := p.Cell[q]
			if !ok {
				return fmt.Errorf("fdm: qubit %d (line %d) has no cell", q, li)
			}
			if prev, dup := zonesUsed[ref.Zone]; dup {
				return fmt.Errorf("fdm: line %d qubits %d and %d share zone %d", li, prev, q, ref.Zone)
			}
			zonesUsed[ref.Zone] = q
			f, ok := p.Freq[q]
			if !ok {
				return fmt.Errorf("fdm: qubit %d has no frequency", q)
			}
			lo, hi := ZoneBounds(p.Zones, ref.Zone)
			if f < lo || f >= hi {
				return fmt.Errorf("fdm: qubit %d frequency %.4f outside zone %d [%.3f,%.3f)", q, f, ref.Zone, lo, hi)
			}
			if want := CellFreq(p.Zones, ref); math.Abs(f-want) > 1e-9 {
				return fmt.Errorf("fdm: qubit %d frequency %.6f does not match cell centre %.6f", q, f, want)
			}
		}
	}
	return nil
}

// InLineAllocate is the George et al. baseline: each line spreads its
// qubits evenly over the band (one per zone) with a per-line comb
// offset of one cell — in-line separation is excellent, but no
// cross-line crosstalk model guides the choice.
func InLineAllocate(g *Grouping) *FrequencyPlan {
	plan := &FrequencyPlan{
		Zones:        g.Capacity,
		CellsPerZone: int((chip.FreqMax - chip.FreqMin) / float64(g.Capacity) / CellWidthGHz),
		Freq:         make(map[int]float64),
		Cell:         make(map[int]CellRef),
	}
	for li, group := range g.Groups {
		for i, q := range group {
			ref := CellRef{Zone: i % g.Capacity, Cell: li % plan.CellsPerZone}
			plan.Cell[q] = ref
			plan.Freq[q] = CellFreq(g.Capacity, ref)
		}
	}
	return plan
}

// TotalCrosstalkCost scores a full plan: the sum of leakage-weighted
// predicted crosstalk over all assigned pairs. Lower is better; the
// experiments use it to compare allocation strategies.
func (p *FrequencyPlan) TotalCrosstalkCost(xt CrosstalkFunc) float64 {
	ids := make([]int, 0, len(p.Freq))
	for q := range p.Freq {
		ids = append(ids, q)
	}
	sort.Ints(ids) // deterministic summation order
	var cost float64
	for a := 0; a < len(ids); a++ {
		for b := a + 1; b < len(ids); b++ {
			i, j := ids[a], ids[b]
			cost += pairCost(xt, p.Freq[i], p.Freq[j], i, j)
		}
	}
	return cost
}
