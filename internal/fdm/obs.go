package fdm

import (
	"sync/atomic"

	"repro/internal/obs"
)

// annealObs caches the resolved sparse-anneal instrumentation.
//
// Gauges, not counters: how sparse the neighbor structure turned out
// to be is an execution/capacity property (it varies with cache hits
// and rebuild granularity), so it stays out of the canonical stripped
// snapshot like every other gauge.
type annealObs struct {
	// qubits accumulates annealed qubits; neighborPairs accumulates
	// the directed nonzero-crosstalk pairs actually scanned. The dense
	// scan would touch qubits·(qubits-1) pairs, so
	// neighborPairs / (qubits·(qubits-1)) is the realized density.
	qubits        *obs.Gauge
	neighborPairs *obs.Gauge
}

var observer atomic.Pointer[annealObs]

// Observe routes the anneal's sparsity instrumentation into r; nil
// disables it again. Process-global, like parallel.Observe.
func Observe(r *obs.Registry) {
	if r == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&annealObs{
		qubits:        r.Gauge("fdm/anneal_qubits"),
		neighborPairs: r.Gauge("fdm/anneal_neighbor_pairs"),
	})
}

// annealNeighborStats records one sparse-anneal neighbor build: n
// qubits with total directed nonzero pairs.
func annealNeighborStats(n, pairs int) {
	o := observer.Load()
	if o == nil {
		return
	}
	o.qubits.Add(int64(n))
	o.neighborPairs.Add(int64(pairs))
}
