package fdm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/chip"
)

// flatXT is a distance-free crosstalk stub.
func flatXT(i, j int) float64 {
	if i == j {
		return 0
	}
	return 1e-3
}

// lineXT decays with id distance, mimicking a 1-D chip.
func lineXT(i, j int) float64 {
	if i == j {
		return 0
	}
	d := math.Abs(float64(i - j))
	return 0.02 * math.Exp(-d)
}

func TestZoneBoundsPartitionBand(t *testing.T) {
	for _, zones := range []int{1, 2, 3, 4, 5} {
		prevHi := chip.FreqMin
		for z := 0; z < zones; z++ {
			lo, hi := ZoneBounds(zones, z)
			if math.Abs(lo-prevHi) > 1e-12 {
				t.Errorf("zones=%d z=%d: lo %v != previous hi %v", zones, z, lo, prevHi)
			}
			if hi <= lo {
				t.Errorf("zones=%d z=%d: empty zone", zones, z)
			}
			prevHi = hi
		}
		if math.Abs(prevHi-chip.FreqMax) > 1e-12 {
			t.Errorf("zones=%d: band ends at %v, want %v", zones, prevHi, chip.FreqMax)
		}
	}
}

func TestCellFreqInsideZone(t *testing.T) {
	for z := 0; z < 3; z++ {
		for cell := 0; cell < 10; cell++ {
			f := CellFreq(3, CellRef{Zone: z, Cell: cell})
			lo, hi := ZoneBounds(3, z)
			if f < lo || f >= hi {
				t.Errorf("cell (%d,%d) frequency %v outside zone [%v,%v)", z, cell, f, lo, hi)
			}
		}
	}
}

func TestAllocateValid(t *testing.T) {
	g, err := Group(members(12), 3, euclid)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Allocate(g, lineXT, DefaultAllocOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(g); err != nil {
		t.Error(err)
	}
	if plan.Reused != 0 {
		t.Errorf("no crowding expected, got %d reuses", plan.Reused)
	}
	if len(plan.Freq) != 12 {
		t.Errorf("got %d frequencies, want 12", len(plan.Freq))
	}
}

func TestAllocateSeparatesGroupMembers(t *testing.T) {
	g, err := Group(members(9), 3, euclid)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Allocate(g, lineXT, DefaultAllocOptions())
	if err != nil {
		t.Fatal(err)
	}
	for li, grp := range g.Groups {
		for a := 0; a < len(grp); a++ {
			for b := a + 1; b < len(grp); b++ {
				qa, qb := grp[a], grp[b]
				if plan.Cell[qa].Zone == plan.Cell[qb].Zone {
					t.Errorf("line %d: members q%d and q%d share zone %d", li, qa, qb, plan.Cell[qa].Zone)
				}
				df := math.Abs(plan.Freq[qa] - plan.Freq[qb])
				if l := leakage(df); l > 0.05 {
					t.Errorf("line %d: in-line pair (%d,%d) spacing %.3f GHz leaks %.1f%%",
						li, qa, qb, df, 100*l)
				}
			}
		}
	}
}

func TestAllocateRejectsOversizedGroup(t *testing.T) {
	g := &Grouping{Capacity: 2, Groups: [][]int{{0, 1, 2}}}
	if _, err := Allocate(g, flatXT, DefaultAllocOptions()); err == nil {
		t.Error("group larger than zones accepted")
	}
	g = &Grouping{Capacity: 0}
	if _, err := Allocate(g, flatXT, DefaultAllocOptions()); err == nil {
		t.Error("capacity 0 accepted")
	}
}

func TestAllocateAvoidsOccupiedCells(t *testing.T) {
	// 30 qubits in groups of 3: 10 qubits per zone, plenty of cells, so
	// no two qubits should share a cell.
	g, err := Group(members(30), 3, euclid)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Allocate(g, lineXT, DefaultAllocOptions())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[CellRef][]int)
	for q, ref := range plan.Cell {
		seen[ref] = append(seen[ref], q)
	}
	for ref, qs := range seen {
		if len(qs) > 1 {
			t.Errorf("cell %+v shared by %v without crowding", ref, qs)
		}
	}
}

func TestAllocateFrequencyReuseUnderCrowding(t *testing.T) {
	// Capacity 1 -> a single zone spanning the whole band. With more
	// qubits than cells, reuse must kick in (and be counted).
	n := int((chip.FreqMax-chip.FreqMin)/CellWidthGHz) + 10
	var ids []int
	for i := 0; i < n; i++ {
		ids = append(ids, i)
	}
	g := &Grouping{Capacity: 1}
	for _, q := range ids {
		g.Groups = append(g.Groups, []int{q})
	}
	plan, err := Allocate(g, flatXT, DefaultAllocOptions())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Reused < 10 {
		t.Errorf("expected >= 10 reuses, got %d", plan.Reused)
	}
	if err := plan.Validate(g); err != nil {
		t.Error(err)
	}
}

func TestAllocateLowersCostVersusInLine(t *testing.T) {
	// On a 1-D chip with decaying crosstalk, the crosstalk-aware
	// allocation must beat the George-style in-line comb.
	g, err := Group(members(20), 4, euclid)
	if err != nil {
		t.Fatal(err)
	}
	smart, err := Allocate(g, lineXT, DefaultAllocOptions())
	if err != nil {
		t.Fatal(err)
	}
	naive := InLineAllocate(g)
	cs, cn := smart.TotalCrosstalkCost(lineXT), naive.TotalCrosstalkCost(lineXT)
	if cs > cn {
		t.Errorf("smart allocation cost %.4g exceeds in-line cost %.4g", cs, cn)
	}
}

func TestInLineAllocateSpacing(t *testing.T) {
	g := LocalClusterGroup(members(12), 4)
	plan := InLineAllocate(g)
	zoneWidth := (chip.FreqMax - chip.FreqMin) / 4
	for li, grp := range g.Groups {
		for a := 0; a < len(grp); a++ {
			for b := a + 1; b < len(grp); b++ {
				df := math.Abs(plan.Freq[grp[a]] - plan.Freq[grp[b]])
				if df < zoneWidth-1e-9 {
					t.Errorf("line %d in-line spacing %.3f below a zone width", li, df)
				}
			}
		}
	}
}

func TestValidatePlanCatchesZoneSharing(t *testing.T) {
	g := &Grouping{Capacity: 2, Groups: [][]int{{0, 1}}}
	plan := &FrequencyPlan{
		Zones:        2,
		CellsPerZone: 10,
		Freq: map[int]float64{
			0: CellFreq(2, CellRef{0, 0}),
			1: CellFreq(2, CellRef{0, 1}),
		},
		Cell: map[int]CellRef{0: {0, 0}, 1: {0, 1}},
	}
	if plan.Validate(g) == nil {
		t.Error("same-zone group members accepted")
	}
}

func TestValidatePlanCatchesMissingAssignments(t *testing.T) {
	g := &Grouping{Capacity: 2, Groups: [][]int{{0}}}
	plan := &FrequencyPlan{Zones: 2, CellsPerZone: 10, Freq: map[int]float64{}, Cell: map[int]CellRef{}}
	if plan.Validate(g) == nil {
		t.Error("missing cell assignment accepted")
	}
}

func TestLeakageMonotone(t *testing.T) {
	prev := leakage(0)
	if prev != 1 {
		t.Errorf("leakage(0) = %v, want 1", prev)
	}
	for df := 0.01; df < 2; df += 0.01 {
		l := leakage(df)
		if l > prev {
			t.Fatalf("leakage not monotone at %v", df)
		}
		prev = l
	}
	if l := leakage(0.75); l > 1e-2 {
		t.Errorf("one-zone spacing leaks %.3g, want < 1%%", l)
	}
	if leakage(0.3) != leakage(-0.3) {
		t.Error("leakage should be even in detuning")
	}
}

func TestDeterministicAllocation(t *testing.T) {
	g, err := Group(members(15), 3, euclid)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := Allocate(g, lineXT, DefaultAllocOptions())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Allocate(g, lineXT, DefaultAllocOptions())
	if err != nil {
		t.Fatal(err)
	}
	for q, f := range p1.Freq {
		if p2.Freq[q] != f {
			t.Fatalf("allocation not deterministic at q%d", q)
		}
	}
}

func TestAllocateRandomizedGroupings(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(25)
		cap := 2 + rng.Intn(4)
		g, err := Group(members(n), cap, func(i, j int) float64 {
			return math.Abs(float64(i-j)) + 0.1*rng.Float64()
		})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := Allocate(g, lineXT, DefaultAllocOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := plan.Validate(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
