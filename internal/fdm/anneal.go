package fdm

import (
	"fmt"
	"math"
	"math/rand"
)

// AnnealOptions tune the simulated-annealing refinement of a frequency
// plan.
type AnnealOptions struct {
	// Steps is the number of proposed moves.
	Steps int
	// StartTemp and EndTemp bound the geometric cooling schedule, in
	// units of the crosstalk objective.
	StartTemp, EndTemp float64
	// Seed drives the proposal sequence.
	Seed int64
	// FullScan forces the historical O(n) full-pair delta scan. The
	// default (false) restricts each qubit's objective scan to its
	// sparse neighbor list — the qubits whose crosstalk coefficient is
	// nonzero — which is bit-identical (a zero-coefficient pair
	// contributes exactly +0.0 to every sum) and O(deg) per delta.
	// FullScan exists as the reference path for equivalence checks
	// (hypothesis H7); production callers leave it false.
	FullScan bool
}

// DefaultAnnealOptions is a short refinement suitable after the greedy
// allocation.
func DefaultAnnealOptions() AnnealOptions {
	return AnnealOptions{Steps: 4000, StartTemp: 1e-3, EndTemp: 1e-7, Seed: 1}
}

// Anneal refines a frequency plan in place by simulated annealing over
// two move kinds, always preserving the two-level invariants (group
// members stay in distinct zones):
//
//   - retune: move one qubit to a different cell of its zone;
//   - swap: exchange the zone assignments of two qubits on the same
//     line (re-picking cells in the new zones).
//
// The objective is the plan's leakage-weighted predicted crosstalk. It
// returns the refined plan (a copy; the input is unmodified) and the
// objective before and after.
func Anneal(plan *FrequencyPlan, g *Grouping, xt CrosstalkFunc, opts AnnealOptions) (*FrequencyPlan, float64, float64, error) {
	if opts.Steps < 0 {
		return nil, 0, 0, fmt.Errorf("fdm: negative step count %d", opts.Steps)
	}
	if opts.StartTemp <= 0 || opts.EndTemp <= 0 || opts.EndTemp > opts.StartTemp {
		return nil, 0, 0, fmt.Errorf("fdm: invalid temperature range [%g, %g]", opts.EndTemp, opts.StartTemp)
	}
	cur := clonePlan(plan)
	if err := cur.Validate(g); err != nil {
		return nil, 0, 0, fmt.Errorf("fdm: anneal input: %w", err)
	}

	ids := make([]int, 0, len(cur.Freq))
	lineOf := make(map[int]int)
	for li, grp := range g.Groups {
		for _, q := range grp {
			ids = append(ids, q)
			lineOf[q] = li
		}
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	before := cur.TotalCrosstalkCost(xt)
	cost := before

	// Sparse neighbor lists: for each qubit, the other qubits (in ids
	// order) whose crosstalk coefficient toward it is nonzero. A pair
	// with xt(q,o) == 0 contributes pairCost = 0·leakage = exactly
	// +0.0 to the objective sum, and x + 0.0 == x for every finite x
	// reachable here, so skipping those terms leaves each delta — and
	// therefore every accept decision and RNG draw — bit-identical to
	// the full scan. The lists share one flat arena.
	var nbrOf map[int][]int
	if !opts.FullScan {
		nbrOf = make(map[int][]int, len(ids))
		total := 0
		for _, q := range ids {
			for _, o := range ids {
				if o != q && xt(q, o) != 0 {
					total++
				}
			}
		}
		arena := make([]int, 0, total)
		for _, q := range ids {
			start := len(arena)
			for _, o := range ids {
				if o != q && xt(q, o) != 0 {
					arena = append(arena, o)
				}
			}
			nbrOf[q] = arena[start:len(arena):len(arena)]
		}
		annealNeighborStats(len(ids), total)
	}

	// qubitCost isolates the objective terms touching one qubit so
	// move deltas are O(deg) — O(n) under FullScan — instead of O(n²).
	qubitCost := func(p *FrequencyPlan, q int) float64 {
		var c float64
		fq := p.Freq[q]
		if opts.FullScan {
			for _, o := range ids {
				if o == q {
					continue
				}
				c += pairCost(xt, fq, p.Freq[o], q, o)
			}
			return c
		}
		for _, o := range nbrOf[q] {
			c += pairCost(xt, fq, p.Freq[o], q, o)
		}
		return c
	}

	cool := math.Pow(opts.EndTemp/opts.StartTemp, 1/math.Max(1, float64(opts.Steps)))
	temp := opts.StartTemp
	for step := 0; step < opts.Steps; step++ {
		q := ids[rng.Intn(len(ids))]
		oldRef := cur.Cell[q]
		oldFreq := cur.Freq[q]

		if rng.Float64() < 0.7 {
			// Retune within the zone.
			newCell := rng.Intn(cur.CellsPerZone)
			if newCell == oldRef.Cell {
				temp *= cool
				continue
			}
			delta := -qubitCost(cur, q)
			cur.Cell[q] = CellRef{Zone: oldRef.Zone, Cell: newCell}
			cur.Freq[q] = CellFreq(cur.Zones, cur.Cell[q])
			delta += qubitCost(cur, q)
			if !accept(delta, temp, rng) {
				cur.Cell[q] = oldRef
				cur.Freq[q] = oldFreq
			} else {
				cost += delta
			}
			temp *= cool
			continue
		}

		// Swap zones with a same-line partner.
		grp := g.Groups[lineOf[q]]
		if len(grp) < 2 {
			temp *= cool
			continue
		}
		p := grp[rng.Intn(len(grp))]
		if p == q {
			temp *= cool
			continue
		}
		oldRefP := cur.Cell[p]
		oldFreqP := cur.Freq[p]
		delta := -qubitCost(cur, q) - qubitCost(cur, p) + pairCost(xt, cur.Freq[q], cur.Freq[p], q, p)
		cur.Cell[q] = CellRef{Zone: oldRefP.Zone, Cell: oldRef.Cell % cur.CellsPerZone}
		cur.Cell[p] = CellRef{Zone: oldRef.Zone, Cell: oldRefP.Cell % cur.CellsPerZone}
		cur.Freq[q] = CellFreq(cur.Zones, cur.Cell[q])
		cur.Freq[p] = CellFreq(cur.Zones, cur.Cell[p])
		delta += qubitCost(cur, q) + qubitCost(cur, p) - pairCost(xt, cur.Freq[q], cur.Freq[p], q, p)
		if !accept(delta, temp, rng) {
			cur.Cell[q], cur.Cell[p] = oldRef, oldRefP
			cur.Freq[q], cur.Freq[p] = oldFreq, oldFreqP
		} else {
			cost += delta
		}
		temp *= cool
	}

	after := cur.TotalCrosstalkCost(xt)
	if err := cur.Validate(g); err != nil {
		return nil, 0, 0, fmt.Errorf("fdm: anneal broke invariants: %w", err)
	}
	return cur, before, after, nil
}

func accept(delta, temp float64, rng *rand.Rand) bool {
	if delta <= 0 {
		return true
	}
	return rng.Float64() < math.Exp(-delta/temp)
}

func clonePlan(p *FrequencyPlan) *FrequencyPlan {
	out := &FrequencyPlan{
		Zones:        p.Zones,
		CellsPerZone: p.CellsPerZone,
		Freq:         make(map[int]float64, len(p.Freq)),
		Cell:         make(map[int]CellRef, len(p.Cell)),
		Reused:       p.Reused,
	}
	for q, f := range p.Freq {
		out.Freq[q] = f
	}
	for q, c := range p.Cell {
		out.Cell[q] = c
	}
	return out
}
