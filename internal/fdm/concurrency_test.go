package fdm

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/chip"
)

// TestGroupingConcurrentUse hammers one shared Grouping from many
// goroutines (run under -race): grouping, allocation and validation are
// pure functions of their inputs, so concurrent readers must neither
// race nor diverge from the sequential result.
func TestGroupingConcurrentUse(t *testing.T) {
	c := chip.Square(6, 6)
	dist := func(i, j int) float64 { return c.PhysicalDistance(i, j) }
	xt := func(i, j int) float64 { return 1.0 / (1.0 + dist(i, j)) }

	g, err := GroupChip(c, 5, dist)
	if err != nil {
		t.Fatal(err)
	}
	wantPlan, err := Allocate(g, xt, DefaultAllocOptions())
	if err != nil {
		t.Fatal(err)
	}
	wantLines := make([]int, c.NumQubits())
	for q := range wantLines {
		wantLines[q] = g.LineOf(q)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Validate(c.NumQubits()); err != nil {
				t.Errorf("concurrent Validate: %v", err)
			}
			for q := 0; q < c.NumQubits(); q++ {
				if got := g.LineOf(q); got != wantLines[q] {
					t.Errorf("concurrent LineOf(%d) = %d, want %d", q, got, wantLines[q])
					return
				}
			}
			plan, err := Allocate(g, xt, DefaultAllocOptions())
			if err != nil {
				t.Errorf("concurrent Allocate: %v", err)
				return
			}
			if !reflect.DeepEqual(plan.Freq, wantPlan.Freq) || !reflect.DeepEqual(plan.Cell, wantPlan.Cell) {
				t.Error("concurrent Allocate diverged from the sequential plan")
			}
			if err := plan.Validate(g); err != nil {
				t.Errorf("concurrent plan validation: %v", err)
			}
		}()
	}
	wg.Wait()
}

// TestGroupConcurrentCalls runs independent Group calls over the same
// members slice concurrently; the greedy search must not share scratch
// state between calls.
func TestGroupConcurrentCalls(t *testing.T) {
	members := make([]int, 30)
	for i := range members {
		members[i] = i
	}
	dist := func(i, j int) float64 {
		d := float64(i - j)
		return d * d
	}
	want, err := Group(members, 4, dist)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := Group(members, 4, dist)
			if err != nil {
				t.Error(err)
				return
			}
			if !reflect.DeepEqual(g.Groups, want.Groups) {
				t.Error("concurrent Group diverged")
			}
		}()
	}
	wg.Wait()
}
