package fdm

import (
	"math"
	"testing"
)

func annealFixture(t *testing.T) (*Grouping, *FrequencyPlan) {
	t.Helper()
	g, err := Group(members(16), 4, euclid)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Allocate(g, lineXT, DefaultAllocOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g, plan
}

func TestAnnealPreservesInvariants(t *testing.T) {
	g, plan := annealFixture(t)
	refined, _, _, err := Anneal(plan, g, lineXT, DefaultAnnealOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := refined.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestAnnealNeverWorsens(t *testing.T) {
	g, plan := annealFixture(t)
	_, before, after, err := Anneal(plan, g, lineXT, DefaultAnnealOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The annealer may accept uphill moves but reports its own final
	// cost; require it not to end worse than a small tolerance.
	if after > before*1.05+1e-12 {
		t.Errorf("anneal worsened the plan: %.4g -> %.4g", before, after)
	}
}

func TestAnnealImprovesBadStart(t *testing.T) {
	// Start from the George-style in-line comb (cross-line collisions
	// everywhere): annealing must improve it substantially.
	g := LocalClusterGroup(members(16), 4)
	plan := InLineAllocate(g)
	_, before, after, err := Anneal(plan, g, lineXT, DefaultAnnealOptions())
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("anneal failed to improve a colliding plan: %.4g -> %.4g", before, after)
	}
	if after > 0.8*before {
		t.Errorf("anneal improvement too small: %.4g -> %.4g", before, after)
	}
}

func TestAnnealInputUnmodified(t *testing.T) {
	g, plan := annealFixture(t)
	orig := clonePlan(plan)
	if _, _, _, err := Anneal(plan, g, lineXT, DefaultAnnealOptions()); err != nil {
		t.Fatal(err)
	}
	for q, f := range orig.Freq {
		if plan.Freq[q] != f {
			t.Fatalf("input plan mutated at q%d", q)
		}
	}
}

func TestAnnealValidation(t *testing.T) {
	g, plan := annealFixture(t)
	bad := DefaultAnnealOptions()
	bad.Steps = -1
	if _, _, _, err := Anneal(plan, g, lineXT, bad); err == nil {
		t.Error("negative steps accepted")
	}
	bad = DefaultAnnealOptions()
	bad.StartTemp = 0
	if _, _, _, err := Anneal(plan, g, lineXT, bad); err == nil {
		t.Error("zero temperature accepted")
	}
	bad = DefaultAnnealOptions()
	bad.EndTemp = bad.StartTemp * 10
	if _, _, _, err := Anneal(plan, g, lineXT, bad); err == nil {
		t.Error("inverted temperatures accepted")
	}
}

func TestAnnealDeterministic(t *testing.T) {
	g, plan := annealFixture(t)
	a, _, afterA, err := Anneal(plan, g, lineXT, DefaultAnnealOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, _, afterB, err := Anneal(plan, g, lineXT, DefaultAnnealOptions())
	if err != nil {
		t.Fatal(err)
	}
	if afterA != afterB {
		t.Fatalf("costs differ: %v vs %v", afterA, afterB)
	}
	for q := range a.Freq {
		if a.Freq[q] != b.Freq[q] {
			t.Fatal("plans differ across identical seeds")
		}
	}
}

func TestAnnealZeroStepsIsIdentity(t *testing.T) {
	g, plan := annealFixture(t)
	opts := DefaultAnnealOptions()
	opts.Steps = 0
	refined, before, after, err := Anneal(plan, g, lineXT, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(before-after) > 1e-15 {
		t.Errorf("zero steps changed cost: %v -> %v", before, after)
	}
	for q := range plan.Freq {
		if refined.Freq[q] != plan.Freq[q] {
			t.Fatal("zero-step anneal moved a qubit")
		}
	}
}
