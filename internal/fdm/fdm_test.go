package fdm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/chip"
)

// euclid is a toy distance over qubit ids laid out on a line.
func euclid(i, j int) float64 { return math.Abs(float64(i - j)) }

func members(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestGroupValidation(t *testing.T) {
	if _, err := Group(members(4), 0, euclid); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := Group([]int{1, 1}, 2, euclid); err == nil {
		t.Error("duplicate members accepted")
	}
}

func TestGroupPartitions(t *testing.T) {
	for _, n := range []int{1, 4, 5, 9, 17} {
		for _, cap := range []int{1, 2, 3, 5} {
			g, err := Group(members(n), cap, euclid)
			if err != nil {
				t.Fatalf("n=%d cap=%d: %v", n, cap, err)
			}
			if err := g.Validate(n); err != nil {
				t.Errorf("n=%d cap=%d: %v", n, cap, err)
			}
		}
	}
}

func TestGroupKeepsNeighboursTogether(t *testing.T) {
	// On a line with capacity 3, the frontier growth packs contiguous
	// runs.
	g, err := Group(members(9), 3, euclid)
	if err != nil {
		t.Fatal(err)
	}
	for li, grp := range g.Groups {
		min, max := grp[0], grp[0]
		for _, q := range grp {
			if q < min {
				min = q
			}
			if q > max {
				max = q
			}
		}
		if max-min != len(grp)-1 {
			t.Errorf("line %d not contiguous: %v", li, grp)
		}
	}
}

func TestGroupChipCoversChip(t *testing.T) {
	c := chip.Square(4, 4)
	dist := func(i, j int) float64 { return c.PhysicalDistance(i, j) }
	g, err := GroupChip(c, 5, dist)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(c.NumQubits()); err != nil {
		t.Error(err)
	}
	if want := (c.NumQubits() + 4) / 5; g.NumLines() != want {
		t.Errorf("got %d lines, want %d", g.NumLines(), want)
	}
}

func TestLineOf(t *testing.T) {
	g, err := Group(members(6), 3, euclid)
	if err != nil {
		t.Fatal(err)
	}
	for li, grp := range g.Groups {
		for _, q := range grp {
			if g.LineOf(q) != li {
				t.Errorf("LineOf(%d) = %d, want %d", q, g.LineOf(q), li)
			}
		}
	}
	if g.LineOf(99) != -1 {
		t.Error("LineOf of unknown qubit should be -1")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	g := &Grouping{Capacity: 2, Groups: [][]int{{0, 1, 2}}}
	if g.Validate(3) == nil {
		t.Error("over-capacity group accepted")
	}
	g = &Grouping{Capacity: 3, Groups: [][]int{{0, 1}, {1, 2}}}
	if g.Validate(3) == nil {
		t.Error("duplicate qubit accepted")
	}
	g = &Grouping{Capacity: 3, Groups: [][]int{{0, 1}}}
	if g.Validate(3) == nil {
		t.Error("missing qubit accepted")
	}
	g = &Grouping{Capacity: 3, Groups: [][]int{{0, 5}}}
	if g.Validate(3) == nil {
		t.Error("out-of-range qubit accepted")
	}
}

func TestLocalClusterGroup(t *testing.T) {
	g := LocalClusterGroup([]int{3, 1, 0, 2, 4}, 2)
	if err := g.Validate(5); err != nil {
		t.Fatal(err)
	}
	// Raster order: {0,1},{2,3},{4}.
	want := [][]int{{0, 1}, {2, 3}, {4}}
	for i, grp := range g.Groups {
		for j := range grp {
			if grp[j] != want[i][j] {
				t.Fatalf("group %d = %v, want %v", i, grp, want[i])
			}
		}
	}
}

func TestGroupQuickPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		cap := 1 + r.Intn(6)
		// Random symmetric distance.
		d := make([][]float64, n)
		for i := range d {
			d[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := r.Float64()
				d[i][j], d[j][i] = v, v
			}
		}
		g, err := Group(members(n), cap, func(i, j int) float64 { return d[i][j] })
		if err != nil {
			return false
		}
		return g.Validate(n) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}
