// Package fdm implements YOUTIAO's FDM control-line design (§4.2):
// noise-aware qubit grouping onto shared XY/readout lines, and the
// two-level coarse-grained frequency allocation that keeps both in-line
// and cross-line crosstalk low.
//
// Grouping treats the equivalent-distance matrix as a weighted
// "equivalent graph" and grows each FDM line greedily from its seed:
// at every step the ungrouped qubit with the minimum equivalent
// distance to any current member joins the line (the paper's 3-step
// flow in Figure 7a). Qubits that are close — physically or
// topologically — land on the same line because chip design naturally
// separates their frequencies.
package fdm

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/chip"
)

// DistanceFunc returns the (symmetric) pairwise metric that grouping
// minimizes — normally the equivalent distance under the fitted
// crosstalk-model weights.
type DistanceFunc func(i, j int) float64

// CrosstalkFunc returns predicted crosstalk between two qubits —
// normally crosstalk.Predictor.Predict.
type CrosstalkFunc func(i, j int) float64

// Grouping assigns qubits to FDM lines.
type Grouping struct {
	// Groups holds the qubit ids on each FDM line.
	Groups [][]int
	// Capacity is the maximum number of qubits per line.
	Capacity int
}

// NumLines returns the number of FDM lines.
func (g *Grouping) NumLines() int { return len(g.Groups) }

// LineOf returns the line index carrying qubit q, or -1.
func (g *Grouping) LineOf(q int) int {
	for li, grp := range g.Groups {
		for _, m := range grp {
			if m == q {
				return li
			}
		}
	}
	return -1
}

// Validate checks that the grouping is a partition of [0, n) with no
// line above capacity.
func (g *Grouping) Validate(n int) error {
	seen := make([]bool, n)
	total := 0
	for li, grp := range g.Groups {
		if len(grp) > g.Capacity {
			return fmt.Errorf("fdm: line %d has %d qubits, capacity %d", li, len(grp), g.Capacity)
		}
		for _, q := range grp {
			if q < 0 || q >= n {
				return fmt.Errorf("fdm: line %d contains out-of-range qubit %d", li, q)
			}
			if seen[q] {
				return fmt.Errorf("fdm: qubit %d appears in more than one line", q)
			}
			seen[q] = true
			total++
		}
	}
	if total != n {
		return fmt.Errorf("fdm: grouping covers %d of %d qubits", total, n)
	}
	return nil
}

// ValidateMembers checks that the grouping is a partition of exactly
// the given member set with no line above capacity — the fault-aware
// variant of Validate for designs where dead qubits are excluded and
// the grouping must cover the alive set, the whole alive set and
// nothing else.
func (g *Grouping) ValidateMembers(members []int) error {
	want := make(map[int]bool, len(members))
	for _, q := range members {
		if want[q] {
			return fmt.Errorf("fdm: duplicate member %d in validation set", q)
		}
		want[q] = true
	}
	seen := make(map[int]bool, len(members))
	for li, grp := range g.Groups {
		if len(grp) > g.Capacity {
			return fmt.Errorf("fdm: line %d has %d qubits, capacity %d", li, len(grp), g.Capacity)
		}
		for _, q := range grp {
			if !want[q] {
				return fmt.Errorf("fdm: line %d contains qubit %d outside the member set", li, q)
			}
			if seen[q] {
				return fmt.Errorf("fdm: qubit %d appears in more than one line", q)
			}
			seen[q] = true
		}
	}
	if len(seen) != len(want) {
		return fmt.Errorf("fdm: grouping covers %d of %d members", len(seen), len(want))
	}
	return nil
}

// Group partitions the qubits in members into FDM lines of at most
// capacity qubits using the greedy frontier search over dist. The first
// seed is the first element of members; each subsequent line is seeded
// with the lowest-id remaining qubit, keeping the algorithm
// deterministic.
//
// Invalid input — an empty member list, a nil distance predictor, a
// negative qubit id or a duplicate — is reported as a descriptive
// error, never a panic or a silently empty grouping: a fault-degraded
// pipeline may legitimately shrink a region to nothing, and the caller
// must be able to tell that apart from a designed-empty line set.
func Group(members []int, capacity int, dist DistanceFunc) (*Grouping, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("fdm: capacity must be >= 1, got %d", capacity)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("fdm: empty member list (no qubits to group)")
	}
	if dist == nil {
		return nil, fmt.Errorf("fdm: nil distance predictor")
	}
	remaining := make(map[int]bool, len(members))
	order := append([]int(nil), members...)
	sort.Ints(order)
	for _, q := range order {
		if q < 0 {
			return nil, fmt.Errorf("fdm: negative qubit id %d", q)
		}
		if remaining[q] {
			return nil, fmt.Errorf("fdm: duplicate member %d", q)
		}
		remaining[q] = true
	}

	g := &Grouping{Capacity: capacity}
	for len(remaining) > 0 {
		// Seed: lowest remaining id.
		seed := -1
		for _, q := range order {
			if remaining[q] {
				seed = q
				break
			}
		}
		group := []int{seed}
		delete(remaining, seed)

		for len(group) < capacity && len(remaining) > 0 {
			// Frontier step: the ungrouped qubit with minimum distance
			// to any current member joins.
			best, bestD := -1, math.Inf(1)
			for _, q := range order {
				if !remaining[q] {
					continue
				}
				for _, m := range group {
					if d := dist(m, q); d < bestD {
						best, bestD = q, d
					}
				}
			}
			group = append(group, best)
			delete(remaining, best)
		}
		g.Groups = append(g.Groups, group)
	}
	return g, nil
}

// GroupChip groups every qubit of the chip.
func GroupChip(c *chip.Chip, capacity int, dist DistanceFunc) (*Grouping, error) {
	members := make([]int, c.NumQubits())
	for i := range members {
		members[i] = i
	}
	return Group(members, capacity, dist)
}

// LocalClusterGroup is the unoptimized baseline grouping: qubits are
// packed into lines in raster (id) order, the "chip-local clustering"
// the paper compares against. Nearby same-row qubits — which the chip
// designer gave similar frequencies — end up sharing lines.
func LocalClusterGroup(members []int, capacity int) *Grouping {
	order := append([]int(nil), members...)
	sort.Ints(order)
	g := &Grouping{Capacity: capacity}
	for start := 0; start < len(order); start += capacity {
		end := start + capacity
		if end > len(order) {
			end = len(order)
		}
		g.Groups = append(g.Groups, append([]int(nil), order[start:end]...))
	}
	return g
}
