package cryo

import (
	"testing"

	"repro/internal/chip"
	"repro/internal/wiring"
)

func TestStandardStagesOrdering(t *testing.T) {
	stages := StandardStages()
	if len(stages) != 5 {
		t.Fatalf("got %d stages", len(stages))
	}
	for i := 1; i < len(stages); i++ {
		if stages[i].TemperatureK >= stages[i-1].TemperatureK {
			t.Errorf("stage %d temperature not decreasing", i)
		}
		if stages[i].CoolingPowerW >= stages[i-1].CoolingPowerW {
			t.Errorf("stage %d cooling power not decreasing", i)
		}
		if stages[i].CoaxLoadW >= stages[i-1].CoaxLoadW {
			t.Errorf("stage %d per-cable load not decreasing", i)
		}
	}
	for _, s := range stages {
		if s.TwistedLoadW >= s.CoaxLoadW {
			t.Errorf("%s: twisted pair should load less than coax", s.Name)
		}
	}
}

func TestKIDEAnchor(t *testing.T) {
	// The calibration anchor: ≈4,000 coax lines saturate the fridge.
	max := MaxCoax(StandardStages(), 0)
	if max < 3500 || max > 4500 {
		t.Errorf("thermal coax limit %d, want ≈4000 (KIDE)", max)
	}
}

func TestHeatLoadsArithmetic(t *testing.T) {
	stages := StandardStages()
	loads, err := HeatLoads(stages, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range loads {
		want := 100*stages[i].CoaxLoadW + 50*stages[i].TwistedLoadW
		if l.LoadW != want {
			t.Errorf("%s: load %v, want %v", l.Stage.Name, l.LoadW, want)
		}
		if l.OverBudget() {
			t.Errorf("%s over budget with only 100 coax", l.Stage.Name)
		}
	}
	if _, err := HeatLoads(stages, -1, 0); err == nil {
		t.Error("negative cable count accepted")
	}
}

func TestWorstStage(t *testing.T) {
	stages := StandardStages()
	loads, err := HeatLoads(stages, 3000, 0)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := WorstStage(loads)
	if err != nil {
		t.Fatal(err)
	}
	// With the KIDE calibration, the mixing chamber binds first.
	if worst.Stage.Name != "mixing-chamber" {
		t.Errorf("worst stage %s, want mixing-chamber", worst.Stage.Name)
	}
	if _, err := WorstStage(nil); err == nil {
		t.Error("empty loads accepted")
	}
}

func TestPlanLoadsYoutiaoHeadroom(t *testing.T) {
	// On the same chip, the YOUTIAO plan must run thermally cooler
	// than the Google plan despite its extra twisted pairs.
	c := chip.Square(6, 6)
	g := wiring.Google(c)
	stages := StandardStages()
	gl, err := PlanLoads(stages, g)
	if err != nil {
		t.Fatal(err)
	}
	// A minimal YOUTIAO-like plan: third of the coax, some twisted.
	y := &wiring.Plan{XYLines: 8, ZLines: 40, ReadoutLines: 5, ControlLines: 60}
	yl, err := PlanLoads(stages, y)
	if err != nil {
		t.Fatal(err)
	}
	gWorst, _ := WorstStage(gl)
	yWorst, _ := WorstStage(yl)
	if yWorst.Fraction >= gWorst.Fraction {
		t.Errorf("YOUTIAO thermal fraction %.3g not below Google %.3g",
			yWorst.Fraction, gWorst.Fraction)
	}
}

func TestQubitCapacity(t *testing.T) {
	stages := StandardStages()
	// Google-style square lattice: ~4 coax/qubit.
	google, err := QubitCapacity(stages, 4.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// YOUTIAO-style: ~1.7 coax/qubit plus ~1.2 twisted.
	youtiao, err := QubitCapacity(stages, 1.7, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if google < 900 || google > 1100 {
		t.Errorf("Google capacity %d, want ≈1000 (KIDE: 4000 coax / ~1300 qubits)", google)
	}
	if youtiao < 2*google {
		t.Errorf("YOUTIAO capacity %d should at least double Google's %d", youtiao, google)
	}
	if _, err := QubitCapacity(stages, 0, 0); err == nil {
		t.Error("zero coax per qubit accepted")
	}
}

func TestMaxCoaxWithTwistedInstalled(t *testing.T) {
	stages := StandardStages()
	base := MaxCoax(stages, 0)
	withTwisted := MaxCoax(stages, 5000)
	if withTwisted >= base {
		t.Errorf("installed twisted pairs should cost headroom: %d vs %d", withTwisted, base)
	}
	if withTwisted < base/2 {
		t.Errorf("twisted pairs too expensive thermally: %d vs %d", withTwisted, base)
	}
}
