// Package cryo models the dilution-refrigerator thermal budget that
// ultimately caps wiring density: every cable conducts heat from stage
// to stage, each stage has a finite cooling power, and the paper's
// "4,000 coax maximum" (Bluefors KIDE) emerges from the mixing-chamber
// budget. The model prices a wiring plan in watts the way package cost
// prices it in dollars, and shows the thermal headroom YOUTIAO's cable
// reduction buys.
package cryo

import (
	"fmt"

	"repro/internal/wiring"
)

// Stage is one temperature stage of the refrigerator.
type Stage struct {
	Name string
	// TemperatureK is the nominal stage temperature.
	TemperatureK float64
	// CoolingPowerW is the available cooling power at temperature.
	CoolingPowerW float64
	// CoaxLoadW is the conducted heat per coaxial line into the stage.
	CoaxLoadW float64
	// TwistedLoadW is the conducted heat per twisted-pair line.
	TwistedLoadW float64
}

// StandardStages returns a typical large dilution refrigerator: stage
// powers from published cryostat specifications, per-cable conduction
// calibrated so the mixing-chamber budget saturates at ≈4,000 coax
// lines — the paper's KIDE anchor.
func StandardStages() []Stage {
	return []Stage{
		{Name: "50K", TemperatureK: 50, CoolingPowerW: 30, CoaxLoadW: 1e-3, TwistedLoadW: 1e-4},
		{Name: "4K", TemperatureK: 4, CoolingPowerW: 1.5, CoaxLoadW: 1e-4, TwistedLoadW: 1e-5},
		{Name: "still", TemperatureK: 0.7, CoolingPowerW: 30e-3, CoaxLoadW: 3e-6, TwistedLoadW: 3e-7},
		{Name: "cold-plate", TemperatureK: 0.1, CoolingPowerW: 300e-6, CoaxLoadW: 5e-8, TwistedLoadW: 5e-9},
		{Name: "mixing-chamber", TemperatureK: 0.02, CoolingPowerW: 20e-6, CoaxLoadW: 5e-9, TwistedLoadW: 5e-10},
	}
}

// Load is the thermal accounting of one stage for a cable count.
type Load struct {
	Stage Stage
	// LoadW is the total conducted heat into the stage.
	LoadW float64
	// Fraction is LoadW / CoolingPowerW; above 1 the stage overheats.
	Fraction float64
}

// OverBudget reports whether the stage exceeds its cooling power.
func (l Load) OverBudget() bool { return l.Fraction > 1 }

// HeatLoads computes every stage's load for a cable census.
func HeatLoads(stages []Stage, coax, twisted int) ([]Load, error) {
	if coax < 0 || twisted < 0 {
		return nil, fmt.Errorf("cryo: negative cable counts %d/%d", coax, twisted)
	}
	out := make([]Load, len(stages))
	for i, s := range stages {
		w := float64(coax)*s.CoaxLoadW + float64(twisted)*s.TwistedLoadW
		out[i] = Load{Stage: s, LoadW: w, Fraction: w / s.CoolingPowerW}
	}
	return out, nil
}

// PlanLoads computes the stage loads of a wiring plan (coax lines plus
// twisted-pair DEMUX controls).
func PlanLoads(stages []Stage, p *wiring.Plan) ([]Load, error) {
	return HeatLoads(stages, p.CoaxLines(), p.ControlLines)
}

// WorstStage returns the stage with the highest budget fraction.
func WorstStage(loads []Load) (Load, error) {
	if len(loads) == 0 {
		return Load{}, fmt.Errorf("cryo: no stages")
	}
	worst := loads[0]
	for _, l := range loads[1:] {
		if l.Fraction > worst.Fraction {
			worst = l
		}
	}
	return worst, nil
}

// MaxCoax returns the largest coax count every stage can absorb
// (with the given twisted-pair count already installed).
func MaxCoax(stages []Stage, twisted int) int {
	max := int(^uint(0) >> 1)
	for _, s := range stages {
		remaining := s.CoolingPowerW - float64(twisted)*s.TwistedLoadW
		if remaining < 0 {
			return 0
		}
		if s.CoaxLoadW <= 0 {
			continue
		}
		if n := int(remaining / s.CoaxLoadW); n < max {
			max = n
		}
	}
	return max
}

// QubitCapacity estimates how many qubits a single refrigerator
// supports under an architecture needing coaxPerQubit coax lines and
// twistedPerQubit control lines per qubit.
func QubitCapacity(stages []Stage, coaxPerQubit, twistedPerQubit float64) (int, error) {
	if coaxPerQubit <= 0 {
		return 0, fmt.Errorf("cryo: coax per qubit must be positive")
	}
	lo, hi := 0, 1<<22
	fits := func(n int) bool {
		loads, err := HeatLoads(stages, int(coaxPerQubit*float64(n)), int(twistedPerQubit*float64(n)))
		if err != nil {
			return false
		}
		for _, l := range loads {
			if l.OverBudget() {
				return false
			}
		}
		return true
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}
