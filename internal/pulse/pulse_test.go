package pulse

import (
	"math"
	"testing"
)

func TestPiPulseFlips(t *testing.T) {
	p := Params{OmegaMHz: PiPulseOmegaMHz, DetuningMHz: 0, DurationNs: PiPulseNs}
	if got := ExcitationProbability(p); math.Abs(got-1) > 1e-9 {
		t.Errorf("resonant π-pulse excitation %v, want 1", got)
	}
}

func TestHalfPiPulse(t *testing.T) {
	p := Params{OmegaMHz: PiPulseOmegaMHz, DetuningMHz: 0, DurationNs: PiPulseNs / 2}
	if got := ExcitationProbability(p); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("π/2 pulse excitation %v, want 0.5", got)
	}
}

func TestZeroDrive(t *testing.T) {
	p := Params{OmegaMHz: 0, DetuningMHz: 0, DurationNs: 100}
	if got := ExcitationProbability(p); got != 0 {
		t.Errorf("no drive should give 0, got %v", got)
	}
}

func TestDetuningSuppressesExcitationEnvelope(t *testing.T) {
	// The envelope Ω²/(Ω²+Δ²) bounds the excitation at any time.
	om := PiPulseOmegaMHz
	for _, det := range []float64{50, 200, 1000} {
		p := Params{OmegaMHz: om, DetuningMHz: det, DurationNs: PiPulseNs}
		bound := om * om / (om*om + det*det)
		if got := ExcitationProbability(p); got > bound+1e-12 {
			t.Errorf("detuning %v MHz: excitation %v exceeds envelope %v", det, got, bound)
		}
	}
}

func TestRK4MatchesClosedForm(t *testing.T) {
	cases := []Params{
		{OmegaMHz: 20, DetuningMHz: 0, DurationNs: 25},
		{OmegaMHz: 20, DetuningMHz: 40, DurationNs: 25},
		{OmegaMHz: 5, DetuningMHz: 100, DurationNs: 50},
		{OmegaMHz: 1, DetuningMHz: 750, DurationNs: 25},
	}
	for _, p := range cases {
		want := ExcitationProbability(p)
		got, err := SimulateExcitation(p, 4000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-4 {
			t.Errorf("params %+v: RK4 %v vs closed form %v", p, got, want)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := SimulateExcitation(Params{OmegaMHz: 1, DurationNs: 1}, 0); err == nil {
		t.Error("0 steps accepted")
	}
}

func TestSimulatePreservesNorm(t *testing.T) {
	p := Params{OmegaMHz: 20, DetuningMHz: 40, DurationNs: 100}
	got, err := SimulateExcitation(p, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0 || got > 1+1e-6 {
		t.Errorf("excitation probability %v outside [0,1]", got)
	}
}

func TestSpectatorExcitationDecaysWithDetuning(t *testing.T) {
	prevEnvelope := 1.0
	for _, df := range []float64{0.05, 0.1, 0.5, 1.0, 2.0} {
		// Average over the oscillation by using the envelope bound.
		p := SpectatorExcitation(0.05, df)
		om := 0.05 * PiPulseOmegaMHz
		envelope := om * om / (om*om + df*1000*df*1000)
		if p > envelope+1e-12 {
			t.Errorf("detuning %v GHz: spectator %v above envelope %v", df, p, envelope)
		}
		if envelope > prevEnvelope {
			t.Errorf("envelope should decay with detuning")
		}
		prevEnvelope = envelope
	}
}

func TestLeakageFactorProperties(t *testing.T) {
	if l := LeakageFactor(0); math.Abs(l-1) > 1e-12 {
		t.Errorf("LeakageFactor(0) = %v, want 1", l)
	}
	if LeakageFactor(0.3) != LeakageFactor(-0.3) {
		t.Error("LeakageFactor should be even")
	}
	prev := 1.0
	for df := 0.01; df <= 2; df += 0.01 {
		l := LeakageFactor(df)
		if l > prev {
			t.Fatalf("LeakageFactor not monotone at %v", df)
		}
		prev = l
	}
	// A zone of spacing (0.75 GHz) must be strongly suppressed.
	if l := LeakageFactor(0.75); l > 5e-3 {
		t.Errorf("one-zone leakage %v too high", l)
	}
}

func TestPiPulseCalibration(t *testing.T) {
	// Ω·t = 2π·(Ω/2π)·t must equal π for the standard π-pulse.
	product := 2 * math.Pi * PiPulseOmegaMHz * 1e-3 * PiPulseNs
	if math.Abs(product-math.Pi) > 1e-9 {
		t.Errorf("π-pulse calibration off: Ω·t = %v", product)
	}
}
