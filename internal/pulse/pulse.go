// Package pulse is the pulse-level gate simulator standing in for the
// paper's QuTiP runs: a driven two-level system in the rotating-wave
// approximation. Its purpose in the pipeline is to quantify spectator
// leakage — the excitation an uncontrolled qubit picks up from a drive
// tone detuned by Δ — which is exactly what FDM frequency spacing
// suppresses and what the Figure 12/13 fidelity numbers rest on.
//
// The Hamiltonian in the frame rotating with the drive is
//
//	H = (Δ/2) σz + (Ω/2) σx
//
// with detuning Δ and Rabi rate Ω (both angular, rad/ns). The package
// provides the closed-form Rabi excitation probability and an RK4
// integrator of the Schrödinger equation; tests cross-validate them.
package pulse

import (
	"fmt"
	"math"
)

// Params describe one rectangular drive pulse seen by a qubit.
type Params struct {
	// OmegaMHz is the Rabi rate in MHz (Ω/2π).
	OmegaMHz float64
	// DetuningMHz is the drive-qubit detuning in MHz (Δ/2π).
	DetuningMHz float64
	// DurationNs is the pulse length in ns.
	DurationNs float64
}

// angular converts MHz to rad/ns.
func angular(mhz float64) float64 { return 2 * math.Pi * mhz * 1e-3 }

// ExcitationProbability returns the closed-form probability that the
// qubit, starting in |0>, is excited after the pulse:
//
//	P = Ω²/(Ω²+Δ²) · sin²(√(Ω²+Δ²)·t/2)
func ExcitationProbability(p Params) float64 {
	om := angular(p.OmegaMHz)
	dl := angular(p.DetuningMHz)
	g2 := om*om + dl*dl
	if g2 == 0 {
		return 0
	}
	g := math.Sqrt(g2)
	s := math.Sin(g * p.DurationNs / 2)
	return om * om / g2 * s * s
}

// SimulateExcitation integrates the Schrödinger equation with RK4 at
// the given step count and returns the final excitation probability.
func SimulateExcitation(p Params, steps int) (float64, error) {
	if steps < 1 {
		return 0, fmt.Errorf("pulse: steps must be positive, got %d", steps)
	}
	om := angular(p.OmegaMHz)
	dl := angular(p.DetuningMHz)
	// iψ' = Hψ with H = (Δ/2)σz + (Ω/2)σx; ψ = (a, b).
	deriv := func(a, b complex128) (complex128, complex128) {
		// da/dt = -i[(Δ/2)a + (Ω/2)b]; db/dt = -i[(Ω/2)a - (Δ/2)b]
		da := complex(0, -1) * (complex(dl/2, 0)*a + complex(om/2, 0)*b)
		db := complex(0, -1) * (complex(om/2, 0)*a - complex(dl/2, 0)*b)
		return da, db
	}
	a, b := complex128(1), complex128(0)
	h := complex(p.DurationNs/float64(steps), 0)
	for s := 0; s < steps; s++ {
		k1a, k1b := deriv(a, b)
		k2a, k2b := deriv(a+h/2*k1a, b+h/2*k1b)
		k3a, k3b := deriv(a+h/2*k2a, b+h/2*k2b)
		k4a, k4b := deriv(a+h*k3a, b+h*k3b)
		a += h / 6 * (k1a + 2*k2a + 2*k3a + k4a)
		b += h / 6 * (k1b + 2*k2b + 2*k3b + k4b)
	}
	return real(b)*real(b) + imag(b)*imag(b), nil
}

// Default drive calibration: a 25 ns π-pulse needs Ω·t = π, i.e.
// Ω/2π = 20 MHz.
const (
	// PiPulseNs is the standard single-qubit gate duration.
	PiPulseNs = 25.0
	// PiPulseOmegaMHz is the Rabi rate of the standard π-pulse.
	PiPulseOmegaMHz = 1000.0 / (2 * PiPulseNs) // 20 MHz
)

// SpectatorExcitation returns the excitation probability of a spectator
// qubit that couples with fractional strength coupling (its effective
// Rabi rate is coupling·Ω_π) to a standard π-pulse detuned by
// detuningGHz. This is the physical mechanism behind XY crosstalk on
// shared FDM lines.
func SpectatorExcitation(coupling, detuningGHz float64) float64 {
	return ExcitationProbability(Params{
		OmegaMHz:    coupling * PiPulseOmegaMHz,
		DetuningMHz: detuningGHz * 1000,
		DurationNs:  PiPulseNs,
	})
}

// LeakageFactor is a pulse-grounded replacement for the analytic
// Lorentzian leakage: the spectator excitation at detuning df
// normalized by the on-resonance excitation, time-averaged over the
// fast sin² oscillation so the factor decays monotonically. The
// envelope width is the pulse bandwidth (twice the π-pulse Rabi rate,
// ~40 MHz), matching the spectral footprint of a 25 ns rectangular
// pulse rather than the much narrower spectator Rabi rate.
func LeakageFactor(df float64) float64 {
	om := angular(2 * PiPulseOmegaMHz)
	dl := angular(df * 1000)
	// Time-averaged sin² contributes 1/2 on and off resonance, leaving
	// the envelope Ω²/(Ω²+Δ²).
	return om * om / (om*om + dl*dl)
}
