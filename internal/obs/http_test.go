package obs

import (
	"net/http/httptest"
	"testing"
	"time"
)

// Golden test of the /debug/youtiao payload: a registry with known,
// deterministic contents must serve byte-identical JSON. Histogram
// quantiles are deterministic here because the observed durations are
// fixed values, not measured time.
func TestHandlerGolden(t *testing.T) {
	r := New()
	r.Counter("stage/hits").Add(3)
	r.Counter("stage/misses").Add(9)
	r.Gauge("parallel/max_workers").Set(4)
	h := r.Histogram("stage/tdm")
	h.Observe(1024 * time.Nanosecond) // bucket [1024,2047], sole entry
	h.Observe(1024 * time.Nanosecond)

	req := httptest.NewRequest("GET", "/debug/youtiao", nil)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)

	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content-type = %q", ct)
	}
	const golden = `{
  "counters": {
    "stage/hits": 3,
    "stage/misses": 9
  },
  "gauges": {
    "parallel/max_workers": 4
  },
  "histograms": {
    "stage/tdm": {
      "count": 2,
      "sum_ns": 2048,
      "p50_ns": 1535,
      "p95_ns": 1535,
      "p99_ns": 1535
    }
  }
}
`
	if got := rec.Body.String(); got != golden {
		t.Fatalf("handler body mismatch:\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

// TestHandlerHardening: the handler marks responses uncacheable and
// rejects mutating methods — it is a read-only scrape endpoint, and a
// proxy-cached snapshot would silently freeze live counters.
func TestHandlerHardening(t *testing.T) {
	r := New()
	r.Counter("stage/hits").Add(1)
	h := r.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/youtiao", nil))
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control = %q, want no-store", cc)
	}

	// HEAD is allowed (net/http strips the body on real connections).
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("HEAD", "/debug/youtiao", nil))
	if rec.Code != 200 {
		t.Fatalf("HEAD status = %d", rec.Code)
	}

	for _, method := range []string{"POST", "PUT", "DELETE", "PATCH"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(method, "/debug/youtiao", nil))
		if rec.Code != 405 {
			t.Fatalf("%s status = %d, want 405", method, rec.Code)
		}
		if allow := rec.Header().Get("Allow"); allow != "GET, HEAD" {
			t.Fatalf("%s Allow = %q, want \"GET, HEAD\"", method, allow)
		}
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	var r *Registry
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/youtiao", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	const want = `{
  "counters": {}
}
`
	if got := rec.Body.String(); got != want {
		t.Fatalf("nil-registry body = %q, want %q", got, want)
	}
}
