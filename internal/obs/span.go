package obs

import (
	"time"
)

// spanStat is the accumulated record of one span path: how many times
// the span ran and its cumulative wall time. Spans aggregate by path
// rather than listing individual executions, so the snapshot's span
// section has a deterministic shape — the set of paths and their counts
// are pure functions of the work performed, only the wall fields carry
// timing (see Snapshot.StripTimings).
type spanStat struct {
	count int64
	wall  time.Duration
}

// Span is one in-flight timed region. Spans form a tree: Child derives
// a span whose path is "parent/name", so the recorded paths encode the
// parent/child structure ("design/characterize-xy") without any
// per-span allocation surviving past End. The nil Span is a valid
// no-op parent — StartSpan on a nil registry returns nil, and nil.Child
// returns nil — so span-annotated code needs no enabled-check.
//
// A Span is owned by one goroutine; concurrent children of one parent
// are fine (Child only reads the parent), and End aggregates under the
// registry lock.
type Span struct {
	r     *Registry
	path  string
	start time.Time
}

// StartSpan opens a root span. Returns nil (a no-op span) on a nil
// registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, path: name, start: time.Now()}
}

// Child opens a sub-span whose path nests under the receiver's. Returns
// nil on a nil receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{r: s.r, path: s.path + "/" + name, start: time.Now()}
}

// End closes the span, accumulating its wall time under its path. A
// span may be ended exactly once; End on a nil receiver is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.r.recordSpan(s.path, time.Since(s.start))
}

// recordSpan folds one finished span into the per-path aggregate.
func (r *Registry) recordSpan(path string, d time.Duration) {
	r.mu.Lock()
	st, ok := r.spans[path]
	if !ok {
		st = &spanStat{}
		r.spans[path] = st
	}
	st.count++
	st.wall += d
	r.mu.Unlock()
}
