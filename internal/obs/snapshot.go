package obs

import (
	"encoding/json"
	"sort"
)

// HistogramSnapshot is the point-in-time summary of one latency
// histogram. Count is deterministic (it counts events, not time); the
// *_ns fields are timing and are zeroed by StripTimings.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	SumNs int64 `json:"sum_ns"`
	P50Ns int64 `json:"p50_ns"`
	P95Ns int64 `json:"p95_ns"`
	P99Ns int64 `json:"p99_ns"`
}

// SpanSnapshot is the aggregate of one span path. Paths encode the
// parent/child tree ("design/characterize-xy" nests under "design") and
// sort lexically, which places every parent immediately before its
// children — the deterministic ordering the span section relies on.
type SpanSnapshot struct {
	Path   string `json:"path"`
	Count  int64  `json:"count"`
	WallNs int64  `json:"wall_ns"`
}

// Snapshot is a stable-JSON view of a registry at one instant. Map keys
// marshal sorted (encoding/json) and spans are emitted in path order,
// so two snapshots of identical registries render byte-identical JSON.
//
// The determinism contract splits the fields in two: Counters,
// histogram Counts and span Counts are pure functions of the work
// performed; Gauges and every *_ns field measure the execution itself.
// StripTimings keeps exactly the first group.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []SpanSnapshot               `json:"spans,omitempty"`
}

// Snapshot captures the registry's current state. A nil registry
// snapshots to the zero Snapshot (with a non-nil, empty counter map so
// the JSON schema is stable either way).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]int64{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Load()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	for path, st := range r.spans {
		s.Spans = append(s.Spans, SpanSnapshot{Path: path, Count: st.count, WallNs: int64(st.wall)})
	}
	sort.Slice(s.Spans, func(a, b int) bool { return s.Spans[a].Path < s.Spans[b].Path })
	return s
}

// StripTimings returns a copy of the snapshot with every
// non-deterministic field removed: gauges are dropped, histogram and
// span *_ns fields are zeroed, counters and counts are kept. Two runs
// at identical options and seed produce equal stripped snapshots for
// any worker count — the property the manifest diff and the
// determinism tests assert.
func (s Snapshot) StripTimings() Snapshot {
	out := Snapshot{Counters: make(map[string]int64, len(s.Counters))}
	for name, v := range s.Counters {
		out.Counters[name] = v
	}
	if len(s.Histograms) > 0 {
		out.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		for name, h := range s.Histograms {
			out.Histograms[name] = HistogramSnapshot{Count: h.Count}
		}
	}
	for _, sp := range s.Spans {
		out.Spans = append(out.Spans, SpanSnapshot{Path: sp.Path, Count: sp.Count})
	}
	return out
}

// Histogram returns the named histogram's summary from the snapshot,
// reporting whether it was present — the lookup helper for reports that
// want one latency row without iterating the map.
func (s Snapshot) Histogram(name string) (HistogramSnapshot, bool) {
	h, ok := s.Histograms[name]
	return h, ok
}

// JSON renders the snapshot as indented, key-sorted JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
