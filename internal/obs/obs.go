// Package obs is the dependency-free observability core of the YOUTIAO
// pipeline: atomic counters and gauges, fixed-bucket latency histograms
// with quantile estimation, and a lightweight span tracer with
// parent/child structure, all collected behind a Registry that renders
// stable-JSON Snapshots (see snapshot.go) and an expvar-style HTTP
// handler (see http.go).
//
// Two contracts shape the design:
//
//   - Disabled is free. Every metric type and the Registry itself are
//     nil-safe: methods on a nil receiver are no-ops that neither
//     allocate nor synchronize, so hot paths (state-vector kernels,
//     worker-pool dispatch) instrument unconditionally and pay only a
//     nil check when observability is off.
//
//   - Counters are deterministic, timing is not. Counter values are
//     pure functions of the work performed — invariant in the worker
//     count, the scheduler and the wall clock — so two runs at the same
//     options and seed produce byte-identical counter sections.
//     Gauges, histogram quantiles and span wall times measure the
//     execution itself and differ run to run; Snapshot.StripTimings
//     removes exactly those fields, which is what lets CI diff two run
//     manifests. Observability never feeds back into the design:
//     nothing in this package participates in artifact keys or RNG
//     streams.
package obs

import (
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The nil Counter
// is a valid no-op, so hot paths can hold a *Counter that is nil while
// observability is disabled.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on a nil receiver).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value: capacity, occupancy,
// accumulated busy time. Unlike counters, gauges carry no determinism
// contract — they may depend on the machine, the worker count and the
// scheduler — so StripTimings drops them from canonical snapshots.
type Gauge struct{ v atomic.Int64 }

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add accumulates v. No-op on a nil receiver.
func (g *Gauge) Add(v int64) {
	if g == nil {
		return
	}
	g.v.Add(v)
}

// Max raises the gauge to v if v exceeds the current value.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value (0 on a nil receiver).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named collection of metrics. The nil *Registry is the
// disabled registry: every lookup returns a nil metric whose methods
// no-op, so a single `Options.Obs *obs.Registry` field (nil by default)
// switches the whole instrumentation layer.
//
// Metric lookups take a mutex and are meant for setup-time resolution:
// resolve `r.Counter("pkg/op")` once and hold the *Counter in the hot
// path (see internal/parallel's package observer for the pattern).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    map[string]*spanStat
}

// New returns an empty, enabled registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		spans:    make(map[string]*spanStat),
	}
}

// Counter returns (creating if needed) the named counter, or nil on a
// nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge, or nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named latency histogram,
// or nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}
