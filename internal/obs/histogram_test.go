package obs

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// refQuantile is the reference rank statistic the histogram
// approximates: the value at 1-based rank floor(q*(n-1))+1 of the
// sorted sample.
func refQuantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)-1)) + 1
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// The histogram's power-of-two buckets guarantee any quantile estimate
// lands in the same bucket as the true rank statistic, so the estimate
// is within a factor of 2 (and never below half) of the reference.
func TestQuantileAgainstReference(t *testing.T) {
	distributions := map[string]func(rng *rand.Rand) int64{
		"uniform":   func(rng *rand.Rand) int64 { return rng.Int63n(1_000_000) },
		"lognormal": func(rng *rand.Rand) int64 { return int64(1000 * (1 + rng.ExpFloat64()*500)) },
		"bimodal": func(rng *rand.Rand) int64 {
			if rng.Intn(2) == 0 {
				return 100 + rng.Int63n(50)
			}
			return 1_000_000 + rng.Int63n(500_000)
		},
	}
	for name, draw := range distributions {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			h := &Histogram{}
			vals := make([]int64, 5000)
			for i := range vals {
				vals[i] = draw(rng)
				h.Observe(time.Duration(vals[i]))
			}
			sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
			for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
				got := int64(h.Quantile(q))
				want := refQuantile(vals, q)
				lo, hi := bucketBounds(bucketOf(want))
				if got < lo || got > hi {
					t.Errorf("q=%.2f: estimate %d outside true-rank bucket [%d,%d] (ref %d)",
						q, got, lo, hi, want)
				}
			}
		})
	}
}

func TestQuantileExactAtSmallCounts(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	h.Observe(0)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("single zero observation: p50 = %v, want 0", got)
	}
	h2 := &Histogram{}
	h2.Observe(time.Duration(1)) // bucket 1 is exactly [1,1]
	if got := h2.Quantile(1); got != 1 {
		t.Fatalf("p100 of {1ns} = %v, want 1ns", got)
	}
}

func TestObserveNegativeClampsToZero(t *testing.T) {
	h := &Histogram{}
	h.Observe(-time.Second)
	if h.Count() != 1 || h.Sum() != 0 {
		t.Fatalf("negative observe: count=%d sum=%v", h.Count(), h.Sum())
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("negative observation not clamped to bucket 0")
	}
}

func TestBucketBoundsCoverInt64(t *testing.T) {
	for i := 0; i < histBuckets; i++ {
		lo, hi := bucketBounds(i)
		if lo > hi {
			t.Fatalf("bucket %d: lo %d > hi %d", i, lo, hi)
		}
		if bucketOf(lo) != i || (hi > 0 && bucketOf(hi) != i) {
			t.Fatalf("bucket %d bounds [%d,%d] do not map back", i, lo, hi)
		}
	}
	if bucketOf(int64(^uint64(0)>>1)) != 63 {
		t.Fatal("max int64 does not land in the last bucket")
	}
}
