package obs

import (
	"net/http"
)

// Handler returns an expvar-style HTTP handler serving the registry's
// current Snapshot as indented JSON. Mount it wherever the process
// exposes debug endpoints, conventionally:
//
//	http.Handle("/debug/youtiao", reg.Handler())
//
// The handler is read-only and safe for concurrent use with live
// instrumentation; each request renders a fresh snapshot. A nil
// registry serves the stable empty snapshot, so wiring the endpoint
// unconditionally is safe.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		data, err := r.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(append(data, '\n'))
	})
}
