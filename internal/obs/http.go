package obs

import (
	"net/http"
)

// Handler returns an expvar-style HTTP handler serving the registry's
// current Snapshot as indented JSON. Mount it wherever the process
// exposes debug endpoints, conventionally:
//
//	http.Handle("/debug/youtiao", reg.Handler())
//
// The handler is read-only and safe for concurrent use with live
// instrumentation; each request renders a fresh snapshot, and responses
// are marked uncacheable so scrapers always see live counters. Only GET
// and HEAD are accepted. A nil registry serves the stable empty
// snapshot, so wiring the endpoint unconditionally is safe.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		data, err := r.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		if _, err := w.Write(append(data, '\n')); err != nil {
			// The snapshot was rendered; a failed write means the client
			// went away mid-response. The connection is unusable either
			// way, so there is nothing left to salvage — but the error is
			// checked so a broken scrape is a deliberate no-op, not an
			// ignored return value.
			return
		}
	})
}
