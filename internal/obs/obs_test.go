package obs

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Fatal("Counter lookup is not idempotent")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(3)
	if got := g.Load(); got != 10 {
		t.Fatalf("gauge = %d, want 10", got)
	}
	g.Max(4)
	if got := g.Load(); got != 10 {
		t.Fatalf("Max lowered the gauge to %d", got)
	}
	g.Max(25)
	if got := g.Load(); got != 25 {
		t.Fatalf("Max(25) = %d, want 25", got)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(3)
	c.Inc()
	if c.Load() != 0 {
		t.Fatal("nil counter loaded non-zero")
	}
	g := r.Gauge("x")
	g.Set(1)
	g.Max(2)
	if g.Load() != 0 {
		t.Fatal("nil gauge loaded non-zero")
	}
	h := r.Histogram("x")
	h.Observe(time.Second)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram recorded")
	}
	sp := r.StartSpan("a")
	sp.Child("b").End()
	sp.End()
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || snap.Spans != nil {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestSpanTreeAndOrdering(t *testing.T) {
	r := New()
	root := r.StartSpan("design")
	for i := 0; i < 3; i++ {
		c := root.Child("tdm")
		c.End()
	}
	root.Child("fabricate").End()
	root.End()

	snap := r.Snapshot()
	var paths []string
	counts := map[string]int64{}
	for _, sp := range snap.Spans {
		paths = append(paths, sp.Path)
		counts[sp.Path] = sp.Count
	}
	want := []string{"design", "design/fabricate", "design/tdm"}
	if !reflect.DeepEqual(paths, want) {
		t.Fatalf("span order = %v, want %v", paths, want)
	}
	if counts["design/tdm"] != 3 || counts["design"] != 1 {
		t.Fatalf("span counts wrong: %v", counts)
	}
}

// Span End is called from worker goroutines (the characterize stages
// fan out), so concurrent ends of sibling spans must aggregate cleanly.
func TestSpanConcurrentEnds(t *testing.T) {
	r := New()
	root := r.StartSpan("p")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			root.Child("c").End()
		}()
	}
	wg.Wait()
	root.End()
	snap := r.Snapshot()
	for _, sp := range snap.Spans {
		if sp.Path == "p/c" && sp.Count != 16 {
			t.Fatalf("p/c count = %d, want 16", sp.Count)
		}
	}
}

func TestSnapshotStripTimings(t *testing.T) {
	r := New()
	r.Counter("jobs").Add(2)
	r.Gauge("busy_ns").Add(12345)
	r.Histogram("lat").Observe(3 * time.Millisecond)
	sp := r.StartSpan("work")
	time.Sleep(time.Millisecond)
	sp.End()

	s := r.Snapshot().StripTimings()
	if s.Counters["jobs"] != 2 {
		t.Fatalf("counter lost: %+v", s)
	}
	if s.Gauges != nil {
		t.Fatalf("gauges survived StripTimings: %v", s.Gauges)
	}
	h := s.Histograms["lat"]
	if h.Count != 1 || h.SumNs != 0 || h.P50Ns != 0 || h.P95Ns != 0 || h.P99Ns != 0 {
		t.Fatalf("histogram timing survived: %+v", h)
	}
	if len(s.Spans) != 1 || s.Spans[0].WallNs != 0 || s.Spans[0].Count != 1 {
		t.Fatalf("span timing survived: %+v", s.Spans)
	}
}

// Stripped snapshots of two registries that observed the same work must
// be deeply equal even though the raw snapshots differ in timing.
func TestStrippedSnapshotsEqualAcrossRuns(t *testing.T) {
	run := func(sleep time.Duration) Snapshot {
		r := New()
		r.Counter("ops").Add(42)
		h := r.Histogram("lat")
		h.Observe(sleep)
		h.Observe(2 * sleep)
		sp := r.StartSpan("root")
		sp.Child("leaf").End()
		sp.End()
		return r.Snapshot()
	}
	a, b := run(time.Microsecond), run(50*time.Microsecond)
	if reflect.DeepEqual(a, b) {
		t.Fatal("raw snapshots unexpectedly equal (timing should differ)")
	}
	if !reflect.DeepEqual(a.StripTimings(), b.StripTimings()) {
		t.Fatalf("stripped snapshots differ:\n%+v\n%+v", a.StripTimings(), b.StripTimings())
	}
}

// The disabled (nil) registry must be free on the hot path: no
// allocations for counter adds, histogram observes, or span open/end.
func TestDisabledRegistryZeroAlloc(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	h := r.Histogram("x")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.Observe(time.Millisecond)
		sp := r.StartSpan("a")
		sp.Child("b").End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled-registry hot path allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestSnapshotJSONStable(t *testing.T) {
	build := func() *Registry {
		r := New()
		r.Counter("b").Add(2)
		r.Counter("a").Add(1)
		return r
	}
	j1, err := build().Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := build().Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("snapshot JSON not stable:\n%s\n%s", j1, j2)
	}
}
