package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count of every latency histogram:
// bucket 0 holds zero-duration observations and bucket i (i >= 1) holds
// durations d with bits.Len64(d) == i, i.e. d in [2^(i-1), 2^i). 63
// value buckets cover every positive int64 nanosecond count, so the
// histogram never saturates and needs no configuration — the property
// that lets hot paths share one histogram type with zero setup.
const histBuckets = 64

// Histogram is a fixed-bucket latency histogram with power-of-two
// bucket boundaries. Observations and quantile reads are lock-free and
// safe for concurrent use; the nil Histogram is a valid no-op.
//
// The bucket layout trades resolution for speed: a quantile estimate is
// exact at bucket boundaries and linearly interpolated inside a bucket,
// so the estimate is always within a factor of 2 of the true rank
// statistic (histogram_test.go pins this against a sorted reference).
type Histogram struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	n      atomic.Int64
}

// bucketOf maps a non-negative nanosecond count to its bucket index.
func bucketOf(v int64) int { return bits.Len64(uint64(v)) }

// Observe records one duration. Negative durations clamp to zero.
// No-op on a nil receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the cumulative observed duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile estimates the q-th quantile (q in [0,1]) of the observed
// durations: it locates the bucket holding the target rank and
// interpolates linearly inside it. Returns 0 with no observations or on
// a nil receiver.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.n.Load()
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based; q=0 is the minimum and
	// q=1 the maximum of the recorded sample.
	rank := int64(q*float64(total-1)) + 1
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cnt := h.counts[i].Load()
		if cnt == 0 {
			continue
		}
		cum += cnt
		if cum < rank {
			continue
		}
		lo, hi := bucketBounds(i)
		// Position of the target rank inside this bucket, in (0,1].
		frac := float64(rank-(cum-cnt)) / float64(cnt)
		return time.Duration(float64(lo) + frac*float64(hi-lo))
	}
	return 0
}

// Snapshot summarizes the histogram's current state: observation count,
// cumulative duration and interpolated p50/p95/p99. It is the export
// helper load harnesses and reports use to render latency columns off a
// live histogram without walking buckets themselves; Registry.Snapshot
// builds its histogram section from the same call. A nil receiver
// snapshots to the zero HistogramSnapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Count: h.Count(),
		SumNs: int64(h.Sum()),
		P50Ns: int64(h.Quantile(0.50)),
		P95Ns: int64(h.Quantile(0.95)),
		P99Ns: int64(h.Quantile(0.99)),
	}
}

// bucketBounds returns the inclusive value range of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	lo = int64(1) << (i - 1)
	if i >= 63 {
		return lo, int64(^uint64(0) >> 1)
	}
	hi = (int64(1) << i) - 1
	return lo, hi
}
