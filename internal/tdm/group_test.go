package tdm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/chip"
)

// decayXT is a deterministic crosstalk stub decaying with qubit-id
// distance (stand-in for the fitted ZZ model, in MHz).
func decayXT(i, j int) float64 {
	if i == j {
		return 0
	}
	return 0.6 * math.Exp(-math.Abs(float64(i-j))/2)
}

func groupSquare(t *testing.T, cfg Config) (*GateInfo, *Grouping) {
	t.Helper()
	gi := AnalyzeGates(chip.Square(3, 3))
	g, err := GroupChip(gi, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return gi, g
}

func TestGroupChipLegal(t *testing.T) {
	gi, g := groupSquare(t, DefaultConfig(decayXT))
	if err := g.Validate(gi); err != nil {
		t.Fatal(err)
	}
}

func TestGroupChipReducesLines(t *testing.T) {
	gi, g := groupSquare(t, DefaultConfig(decayXT))
	if g.NumZLines() >= gi.Dev.Count() {
		t.Errorf("no multiplexing achieved: %d lines for %d devices", g.NumZLines(), gi.Dev.Count())
	}
	// Table 2 anchor: the 9-qubit square chip lands near 7 Z lines.
	if g.NumZLines() > 12 {
		t.Errorf("square 3x3 uses %d Z lines; paper achieves ~7", g.NumZLines())
	}
}

func TestGroupLevelsRespectTheta(t *testing.T) {
	gi := AnalyzeGates(chip.Square(3, 3))
	idx := gi.AllParallelismIndices()
	cfg := DefaultConfig(decayXT)
	g, err := GroupChip(gi, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, grp := range g.Groups {
		if len(grp.Devices) <= 2 {
			continue
		}
		// Groups above size 2 may only contain low-parallelism devices.
		for _, d := range grp.Devices {
			if idx[d] > cfg.Theta {
				t.Errorf("high-parallelism device %s (idx %.1f) in a size-%d group",
					gi.Dev.Name(d), idx[d], len(grp.Devices))
			}
		}
	}
}

func TestThetaSweepMonotonicity(t *testing.T) {
	// Raising θ admits more devices to 1:4 DEMUXes, so the count of
	// 1:4 units must not decrease and Z lines must not increase.
	gi := AnalyzeGates(chip.Square(4, 4))
	prev14 := -1
	prevZ := 1 << 30
	for _, theta := range []float64{0, 2, 4, 8, 100} {
		cfg := DefaultConfig(decayXT)
		cfg.Theta = theta
		g, err := GroupChip(gi, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(gi); err != nil {
			t.Fatalf("θ=%g: %v", theta, err)
		}
		n14 := g.LevelCounts()[Demux1to4]
		if n14 < prev14 {
			t.Errorf("θ=%g: 1:4 count dropped from %d to %d", theta, prev14, n14)
		}
		if g.NumZLines() > prevZ {
			t.Errorf("θ=%g: Z lines rose from %d to %d", theta, prevZ, g.NumZLines())
		}
		prev14 = n14
		prevZ = g.NumZLines()
	}
}

func TestGroupDevicesSubset(t *testing.T) {
	gi := AnalyzeGates(chip.Square(3, 3))
	subset := []int{0, 1, 2, 12, 13}
	g, err := GroupDevices(gi, subset, DefaultConfig(decayXT))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, grp := range g.Groups {
		for _, d := range grp.Devices {
			seen[d] = true
		}
	}
	if len(seen) != len(subset) {
		t.Errorf("grouping covers %d of %d devices", len(seen), len(subset))
	}
	for _, d := range subset {
		if !seen[d] {
			t.Errorf("device %d missing", d)
		}
	}
}

func TestGroupDevicesRejectsBadInput(t *testing.T) {
	gi := AnalyzeGates(chip.Square(2, 2))
	if _, err := GroupDevices(gi, []int{99}, DefaultConfig(nil)); err == nil {
		t.Error("out-of-range device accepted")
	}
}

func TestNilCrosstalkWorks(t *testing.T) {
	gi := AnalyzeGates(chip.Square(3, 3))
	g, err := GroupChip(gi, DefaultConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(gi); err != nil {
		t.Error(err)
	}
}

func TestSparseQubitZMode(t *testing.T) {
	gi := AnalyzeGates(chip.Square(3, 3))
	cfg := DefaultConfig(decayXT)
	dense, err := GroupChip(gi, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SparseQubitZ = true
	sparse, err := GroupChip(gi, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sparse.Validate(gi); err != nil {
		t.Fatal(err)
	}
	if sparse.NumZLines() > dense.NumZLines() {
		t.Errorf("sparse mode should not need more Z lines: %d vs %d",
			sparse.NumZLines(), dense.NumZLines())
	}
}

func TestLocalClusterGroupLegal(t *testing.T) {
	gi := AnalyzeGates(chip.Square(3, 3))
	for _, fanout := range []int{2, 4} {
		g, err := LocalClusterGroup(gi, fanout)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(gi); err != nil {
			t.Errorf("fanout %d: %v", fanout, err)
		}
		for _, grp := range g.Groups {
			if len(grp.Devices) > fanout {
				t.Errorf("fanout %d exceeded: %d devices", fanout, len(grp.Devices))
			}
		}
	}
	if _, err := LocalClusterGroup(gi, 3); err == nil {
		t.Error("fanout 3 accepted")
	}
}

func TestYoutiaoBeatsLocalClusteringOnNonParallelism(t *testing.T) {
	// The YOUTIAO grouping must pack at least as well as local
	// clustering while preferring genuinely non-parallel devices. We
	// check the structural proxy: among same-group device pairs, the
	// fraction of gate pairs that could never coexist.
	gi := AnalyzeGates(chip.Square(4, 4))
	cfg := DefaultConfig(decayXT)
	youtiao, err := GroupChip(gi, cfg)
	if err != nil {
		t.Fatal(err)
	}
	local, err := LocalClusterGroup(gi, 4)
	if err != nil {
		t.Fatal(err)
	}
	f1, f2 := meanGroupNonParallel(gi, youtiao, cfg), meanGroupNonParallel(gi, local, cfg)
	if f1 < f2-0.05 {
		t.Errorf("YOUTIAO non-parallel fraction %.3f well below local clustering %.3f", f1, f2)
	}
	// Local clustering packs to the fan-out limit unconditionally, so
	// it may use fewer lines — but only by paying serialization, which
	// the schedule-level tests quantify. Here we only require that
	// YOUTIAO still multiplexes substantially.
	if youtiao.NumZLines() > gi.Dev.Count()*2/3 {
		t.Errorf("YOUTIAO barely multiplexes: %d lines for %d devices", youtiao.NumZLines(), gi.Dev.Count())
	}
}

// meanGroupNonParallel averages nonParallelFraction over every grouped
// device against its co-members.
func meanGroupNonParallel(gi *GateInfo, g *Grouping, cfg Config) float64 {
	var sum float64
	var n int
	for _, grp := range g.Groups {
		if len(grp.Devices) < 2 {
			continue
		}
		for i, d := range grp.Devices {
			others := append(append([]int(nil), grp.Devices[:i]...), grp.Devices[i+1:]...)
			sum += nonParallelFraction(gi, others, d, cfg)
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

func TestGroupingDeterministic(t *testing.T) {
	gi := AnalyzeGates(chip.Square(4, 4))
	g1, err := GroupChip(gi, DefaultConfig(decayXT))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := GroupChip(gi, DefaultConfig(decayXT))
	if err != nil {
		t.Fatal(err)
	}
	if len(g1.Groups) != len(g2.Groups) {
		t.Fatalf("group counts differ: %d vs %d", len(g1.Groups), len(g2.Groups))
	}
	for i := range g1.Groups {
		if len(g1.Groups[i].Devices) != len(g2.Groups[i].Devices) {
			t.Fatalf("group %d sizes differ", i)
		}
		for j := range g1.Groups[i].Devices {
			if g1.Groups[i].Devices[j] != g2.Groups[i].Devices[j] {
				t.Fatalf("group %d member %d differs", i, j)
			}
		}
	}
}

func TestAllTopologiesGroupLegally(t *testing.T) {
	for _, c := range chip.Table2Chips() {
		gi := AnalyzeGates(c)
		g, err := GroupChip(gi, DefaultConfig(decayXT))
		if err != nil {
			t.Fatalf("%s: %v", c.Topology, err)
		}
		if err := g.Validate(gi); err != nil {
			t.Errorf("%s: %v", c.Topology, err)
		}
	}
}

func TestRandomChipsGroupLegally(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(12)
		qs := make([]chip.Qubit, n)
		for i := range qs {
			qs[i] = chip.Qubit{ID: i}
		}
		var pairs [][2]int
		seen := map[[2]int]bool{}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 && !seen[[2]int{i, j}] {
					pairs = append(pairs, [2]int{i, j})
					seen[[2]int{i, j}] = true
				}
			}
		}
		c, err := chip.New("rand", "custom", qs, pairs)
		if err != nil {
			t.Fatal(err)
		}
		gi := AnalyzeGates(c)
		g, err := GroupChip(gi, DefaultConfig(decayXT))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := g.Validate(gi); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
