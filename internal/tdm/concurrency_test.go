package tdm

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/chip"
)

// TestGroupDevicesConcurrentUse runs GroupDevices from several
// goroutines over one shared GateInfo (run under -race): analysis
// results are read-only inputs to grouping, so concurrent calls must
// agree with the sequential reference.
func TestGroupDevicesConcurrentUse(t *testing.T) {
	c := chip.Square(6, 6)
	gi := AnalyzeGates(c)
	xt := func(i, j int) float64 {
		d := float64(i - j)
		if d < 0 {
			d = -d
		}
		return 1.0 / (1.0 + d)
	}
	want, err := GroupChip(gi, DefaultConfig(xt))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := GroupChip(gi, DefaultConfig(xt))
			if err != nil {
				t.Error(err)
				return
			}
			if !reflect.DeepEqual(g.Groups, want.Groups) {
				t.Error("concurrent GroupChip diverged from the sequential grouping")
			}
			if err := g.Validate(gi); err != nil {
				t.Errorf("concurrent grouping failed validation: %v", err)
			}
		}()
	}
	wg.Wait()
}

// TestGroupOfConcurrent exercises the lazily-built reverse index of a
// shared Grouping from many goroutines at once (run under -race): the
// sync.Once assembly must give every caller the same complete map.
func TestGroupOfConcurrent(t *testing.T) {
	c := chip.Square(5, 5)
	gi := AnalyzeGates(c)
	g, err := GroupChip(gi, DefaultConfig(func(i, j int) float64 { return 0.1 }))
	if err != nil {
		t.Fatal(err)
	}
	// Expected mapping straight from the group lists.
	want := make(map[int]int)
	for idx, grp := range g.Groups {
		for _, dev := range grp.Devices {
			want[dev] = idx
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for dev, idx := range want {
				if got := g.GroupOf(dev); got != idx {
					t.Errorf("concurrent GroupOf(%d) = %d, want %d", dev, got, idx)
					return
				}
			}
			if g.GroupOf(-1) != -1 {
				t.Error("GroupOf(-1) should be -1")
			}
		}()
	}
	wg.Wait()
}
