package tdm

import (
	"math"
	"testing"

	"repro/internal/chip"
)

func TestDeviceIndexing(t *testing.T) {
	c := chip.Square(3, 3)
	dev := NewDevices(c)
	if dev.Count() != 9+12 {
		t.Fatalf("device count %d, want 21", dev.Count())
	}
	if dev.QubitDevice(5) != 5 {
		t.Error("qubit device index wrong")
	}
	cd := dev.CouplerDevice(3)
	if cd != 12 {
		t.Errorf("coupler device index %d, want 12", cd)
	}
	if !dev.IsCoupler(cd) || dev.IsCoupler(8) {
		t.Error("IsCoupler wrong")
	}
	if dev.CouplerID(cd) != 3 {
		t.Error("CouplerID wrong")
	}
	if dev.Name(5) != "q5" || dev.Name(cd) != "c3" {
		t.Errorf("names wrong: %s %s", dev.Name(5), dev.Name(cd))
	}
}

func TestDemuxLevels(t *testing.T) {
	if DemuxNone.ControlBits() != 0 || Demux1to2.ControlBits() != 1 || Demux1to4.ControlBits() != 2 {
		t.Error("control bits wrong")
	}
	if DemuxNone.String() != "direct" || Demux1to2.String() != "1:2" || Demux1to4.String() != "1:4" {
		t.Error("level names wrong")
	}
}

func TestAnalyzeGates(t *testing.T) {
	c := chip.Square(3, 3)
	gi := AnalyzeGates(c)
	if len(gi.Gates) != 12 {
		t.Fatalf("got %d gates, want 12", len(gi.Gates))
	}
	// Every gate occupies exactly 3 devices, each listing it back.
	for g := range gi.Gates {
		devs := gi.GateDevices(g)
		for _, d := range devs {
			found := false
			for _, gg := range gi.GatesOf[d] {
				if gg == g {
					found = true
				}
			}
			if !found {
				t.Fatalf("gate %d missing from GatesOf[%d]", g, d)
			}
		}
	}
	// Couplers carry exactly one gate.
	dev := gi.Dev
	for cID := 0; cID < c.NumCouplers(); cID++ {
		if n := len(gi.GatesOf[dev.CouplerDevice(cID)]); n != 1 {
			t.Errorf("coupler %d has %d gates, want 1", cID, n)
		}
	}
	// Qubits carry degree-many gates.
	for q := 0; q < c.NumQubits(); q++ {
		if len(gi.GatesOf[q]) != c.Degree(q) {
			t.Errorf("qubit %d has %d gates, want %d", q, len(gi.GatesOf[q]), c.Degree(q))
		}
	}
}

func TestNonCoexSymmetric(t *testing.T) {
	gi := AnalyzeGates(chip.Square(3, 3))
	inList := func(list []int, g int) bool {
		for _, x := range list {
			if x == g {
				return true
			}
		}
		return false
	}
	for a := range gi.Gates {
		for _, b := range gi.NonCoex[a] {
			if !inList(gi.NonCoex[b], a) {
				t.Fatalf("non-coexistence not symmetric: %d vs %d", a, b)
			}
			if a == b {
				t.Fatalf("gate %d non-coexistent with itself", a)
			}
		}
	}
}

func TestParallelismIndexHandCounted(t *testing.T) {
	// A star-with-tail graph whose index values are easy to count by
	// hand (ids: 0=q1 1=q2 2=q3 3=q4 4=q7):
	//
	//      q1 -c0- q2 -c1- q3 -c2- q4
	//                      |
	//                      c3
	//                      |
	//                      q7
	//
	// Gates: A=(q1,q2), B=(q2,q3), C=(q3,q4), D=(q3,q7).
	// NonCoex: A~{B}, B~{A,C,D}, C~{B,D}, D~{B,C}.
	qs := make([]chip.Qubit, 5)
	for i := range qs {
		qs[i] = chip.Qubit{ID: i}
	}
	pairs := [][2]int{{0, 1}, {1, 2}, {2, 3}, {2, 4}}
	c, err := chip.New("star", "custom", qs, pairs)
	if err != nil {
		t.Fatal(err)
	}
	gi := AnalyzeGates(c)
	dev := gi.Dev
	// c0 carries only gate A with 1 non-coexistent gate, connectivity 1.
	if got := gi.ParallelismIndex(dev.CouplerDevice(0)); got != 1 {
		t.Errorf("index(c0) = %v, want 1", got)
	}
	// c1 carries gate B (3 non-coexistent gates).
	if got := gi.ParallelismIndex(dev.CouplerDevice(1)); got != 3 {
		t.Errorf("index(c1) = %v, want 3", got)
	}
	// q3 carries gates B, C, D with 3+2+2 = 7 non-coexistent gates over
	// connectivity 3.
	if got := gi.ParallelismIndex(2); math.Abs(got-7.0/3) > 1e-12 {
		t.Errorf("index(q3) = %v, want 7/3", got)
	}
	// q1 carries gate A (1 non-coexistent) over connectivity 1.
	if got := gi.ParallelismIndex(0); got != 1 {
		t.Errorf("index(q1) = %v, want 1", got)
	}
}

func TestParallelismIndexBruteForce(t *testing.T) {
	// Cross-check the index on a lattice against an independent
	// recomputation from first principles.
	c := chip.Square(3, 3)
	gi := AnalyzeGates(c)
	gates := c.TwoQubitGates()
	share := func(a, b chip.TwoQubitGate) bool {
		return a.Q1 == b.Q1 || a.Q1 == b.Q2 || a.Q2 == b.Q1 || a.Q2 == b.Q2
	}
	for q := 0; q < c.NumQubits(); q++ {
		total := 0
		for gIdx, g := range gates {
			if g.Q1 != q && g.Q2 != q {
				continue
			}
			for hIdx, h := range gates {
				if hIdx != gIdx && share(g, h) {
					total++
				}
			}
		}
		want := 0.0
		if c.Degree(q) > 0 {
			want = float64(total) / float64(c.Degree(q))
		}
		if got := gi.ParallelismIndex(q); math.Abs(got-want) > 1e-12 {
			t.Errorf("qubit %d: index %v, want %v", q, got, want)
		}
	}
}

func TestParallelismIndexIsolatedQubit(t *testing.T) {
	qs := []chip.Qubit{{ID: 0}, {ID: 1}, {ID: 2}}
	c, err := chip.New("iso", "custom", qs, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	gi := AnalyzeGates(c)
	if got := gi.ParallelismIndex(2); got != 0 {
		t.Errorf("isolated qubit index %v, want 0", got)
	}
}

func TestAllParallelismIndices(t *testing.T) {
	gi := AnalyzeGates(chip.Square(3, 3))
	all := gi.AllParallelismIndices()
	if len(all) != gi.Dev.Count() {
		t.Fatalf("got %d indices", len(all))
	}
	for d, v := range all {
		if v != gi.ParallelismIndex(d) {
			t.Errorf("index mismatch at device %d", d)
		}
		if v < 0 || math.IsNaN(v) {
			t.Errorf("invalid index %v at device %d", v, d)
		}
	}
	// Square interior devices have higher parallelism than corners.
	corner := gi.ParallelismIndex(0)
	centre := gi.ParallelismIndex(4)
	if centre <= corner {
		t.Errorf("centre index %v should exceed corner %v", centre, corner)
	}
}

func TestGroupingAccessors(t *testing.T) {
	g := &Grouping{Groups: []Group{
		{Devices: []int{0, 1}, Level: Demux1to2},
		{Devices: []int{2}, Level: DemuxNone},
		{Devices: []int{3, 4, 5, 6}, Level: Demux1to4},
	}}
	if g.NumZLines() != 3 {
		t.Errorf("Z lines %d", g.NumZLines())
	}
	if g.ControlLines() != 3 { // 1 + 0 + 2
		t.Errorf("control lines %d, want 3", g.ControlLines())
	}
	if g.GroupOf(4) != 2 || g.GroupOf(0) != 0 {
		t.Error("GroupOf wrong")
	}
	if g.GroupOf(99) != -1 {
		t.Error("GroupOf unknown should be -1")
	}
	counts := g.LevelCounts()
	if counts[Demux1to2] != 1 || counts[DemuxNone] != 1 || counts[Demux1to4] != 1 {
		t.Errorf("level counts %v", counts)
	}
}

func TestValidateCatchesIllegalGroupings(t *testing.T) {
	c := chip.Square(2, 2)
	gi := AnalyzeGates(c)
	dev := gi.Dev

	// A gate's two qubits in the same group -> unrealizable 2q gate.
	bad := &Grouping{Groups: []Group{{Devices: []int{0, 1}, Level: Demux1to2}}}
	for d := 2; d < dev.Count(); d++ {
		bad.Groups = append(bad.Groups, Group{Devices: []int{d}, Level: DemuxNone})
	}
	if bad.Validate(gi) == nil {
		t.Error("gate-sharing group accepted")
	}

	// Missing device.
	incomplete := &Grouping{Groups: []Group{{Devices: []int{0}, Level: DemuxNone}}}
	if incomplete.Validate(gi) == nil {
		t.Error("incomplete grouping accepted")
	}

	// Over capacity.
	over := &Grouping{Groups: []Group{{Devices: []int{0, 3}, Level: DemuxNone}}}
	if over.Validate(gi) == nil {
		t.Error("over-capacity group accepted")
	}

	// Duplicate device.
	dup := &Grouping{Groups: []Group{
		{Devices: []int{0}, Level: DemuxNone},
		{Devices: []int{0}, Level: DemuxNone},
	}}
	if dup.Validate(gi) == nil {
		t.Error("duplicate device accepted")
	}

	// Empty group.
	empty := &Grouping{Groups: []Group{{Devices: nil, Level: DemuxNone}}}
	if empty.Validate(gi) == nil {
		t.Error("empty group accepted")
	}
}
