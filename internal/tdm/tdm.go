// Package tdm implements YOUTIAO's TDM control design for Z lines
// (§4.3): the parallelism index over qubits and couplers, the
// threshold split into 1:2 / 1:4 cryo-DEMUX levels, and the 3-step
// greedy graph-coloring grouping that packs devices exhibiting natural
// non-parallelism — topological (gates that can never coexist because
// they share a qubit) and noisy (gates whose simultaneous execution the
// crosstalk model forbids) — onto shared DEMUXes.
//
// Devices are indexed uniformly: qubit q is device q, coupler c is
// device NumQubits + c.
package tdm

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/chip"
)

// DemuxLevel is the fan-out of a cryo-DEMUX.
type DemuxLevel int

const (
	// DemuxNone marks a dedicated (unmultiplexed) Z line.
	DemuxNone DemuxLevel = 1
	// Demux1to2 is a 1:2 cryo-DEMUX (1 digital control bit).
	Demux1to2 DemuxLevel = 2
	// Demux1to4 is a 1:4 cryo-DEMUX (2 digital control bits).
	Demux1to4 DemuxLevel = 4
)

// ControlBits returns the number of digital control lines the DEMUX
// needs (log2 of the fan-out).
func (l DemuxLevel) ControlBits() int {
	switch l {
	case DemuxNone:
		return 0
	case Demux1to2:
		return 1
	case Demux1to4:
		return 2
	default:
		panic(fmt.Sprintf("tdm: invalid DEMUX level %d", int(l)))
	}
}

// String implements fmt.Stringer.
func (l DemuxLevel) String() string {
	switch l {
	case DemuxNone:
		return "direct"
	case Demux1to2:
		return "1:2"
	case Demux1to4:
		return "1:4"
	default:
		return fmt.Sprintf("DemuxLevel(%d)", int(l))
	}
}

// Devices gives the uniform device indexing over a chip.
type Devices struct {
	chip *chip.Chip
}

// NewDevices wraps a chip with the device index space.
func NewDevices(c *chip.Chip) Devices { return Devices{chip: c} }

// Chip returns the wrapped chip (artifact codecs rebuild the index
// space from it).
func (d Devices) Chip() *chip.Chip { return d.chip }

// Count returns the total number of devices (qubits + couplers).
func (d Devices) Count() int { return d.chip.NumQubits() + d.chip.NumCouplers() }

// QubitDevice returns the device index of qubit q.
func (d Devices) QubitDevice(q int) int { return q }

// CouplerDevice returns the device index of coupler c.
func (d Devices) CouplerDevice(c int) int { return d.chip.NumQubits() + c }

// IsCoupler reports whether device dev is a coupler.
func (d Devices) IsCoupler(dev int) bool { return dev >= d.chip.NumQubits() }

// CouplerID returns the coupler id of a coupler device.
func (d Devices) CouplerID(dev int) int { return dev - d.chip.NumQubits() }

// Name returns a readable device name (q3 or c7).
func (d Devices) Name(dev int) string {
	if d.IsCoupler(dev) {
		return fmt.Sprintf("c%d", d.CouplerID(dev))
	}
	return fmt.Sprintf("q%d", dev)
}

// GateInfo is the static analysis of the chip's hardware 2q-gate sites
// that the parallelism index and grouping passes consume.
type GateInfo struct {
	Dev   Devices
	Gates []chip.TwoQubitGate
	// GatesOf[dev] lists gate indices that occupy the device.
	GatesOf [][]int
	// NonCoex[g] lists gate indices topologically non-coexistent with
	// gate g (they share a qubit, so can never run in the same layer).
	NonCoex [][]int
}

// AnalyzeGates builds the gate tables for a chip.
func AnalyzeGates(c *chip.Chip) *GateInfo {
	return AnalyzeGatesUsable(c, nil)
}

// AnalyzeGatesUsable builds the gate tables for a chip, keeping only
// the hardware gate sites for which usable returns true (nil keeps
// all). A fault-degraded pipeline passes a predicate that drops gates
// with a dead qubit or broken coupler, so the parallelism index and the
// non-parallelism structure reflect the gates the chip can actually
// run.
func AnalyzeGatesUsable(c *chip.Chip, usable func(chip.TwoQubitGate) bool) *GateInfo {
	dev := NewDevices(c)
	gates := c.TwoQubitGates()
	if usable != nil {
		kept := gates[:0:0]
		for _, g := range gates {
			if usable(g) {
				kept = append(kept, g)
			}
		}
		gates = kept
	}
	gi := &GateInfo{
		Dev:     dev,
		Gates:   gates,
		GatesOf: make([][]int, dev.Count()),
		NonCoex: make([][]int, len(gates)),
	}
	for idx, g := range gates {
		gi.GatesOf[g.Q1] = append(gi.GatesOf[g.Q1], idx)
		gi.GatesOf[g.Q2] = append(gi.GatesOf[g.Q2], idx)
		gi.GatesOf[dev.CouplerDevice(g.Coupler)] = append(gi.GatesOf[dev.CouplerDevice(g.Coupler)], idx)
	}
	for a := range gates {
		for b := range gates {
			if a == b {
				continue
			}
			if sharesQubit(gates[a], gates[b]) {
				gi.NonCoex[a] = append(gi.NonCoex[a], b)
			}
		}
	}
	return gi
}

func sharesQubit(a, b chip.TwoQubitGate) bool {
	return a.Q1 == b.Q1 || a.Q1 == b.Q2 || a.Q2 == b.Q1 || a.Q2 == b.Q2
}

// GateDevices returns the three devices a gate occupies.
func (gi *GateInfo) GateDevices(g int) [3]int {
	gate := gi.Gates[g]
	return [3]int{gate.Q1, gate.Q2, gi.Dev.CouplerDevice(gate.Coupler)}
}

// ParallelismIndex returns the paper's parallelism index for device dev:
// the mean, over gates occupying the device, of the number of
// topologically non-coexistent 2q gates, divided by the device's
// connectivity (always 1 for couplers). Devices that participate in no
// gate (isolated qubits) have index 0.
func (gi *GateInfo) ParallelismIndex(dev int) float64 {
	gates := gi.GatesOf[dev]
	if len(gates) == 0 {
		return 0
	}
	var total int
	for _, g := range gates {
		total += len(gi.NonCoex[g])
	}
	conn := 1
	if !gi.Dev.IsCoupler(dev) {
		conn = gi.Dev.chip.Degree(dev)
	}
	if conn == 0 {
		return 0
	}
	return float64(total) / float64(conn)
}

// AllParallelismIndices returns the index for every device.
func (gi *GateInfo) AllParallelismIndices() []float64 {
	out := make([]float64, gi.Dev.Count())
	for d := range out {
		out[d] = gi.ParallelismIndex(d)
	}
	return out
}

// Group is one TDM group: the devices wired to a single Z line, through
// a cryo-DEMUX when the group holds more than one device.
type Group struct {
	Devices []int
	// Level is the DEMUX hardware chosen for the group, derived from
	// its final size (1: direct line, 2: 1:2, 3-4: 1:4).
	Level DemuxLevel
}

// Grouping is a complete TDM plan for a chip (or a partition region).
// Once assembled (Groups no longer appended to), a Grouping is safe for
// concurrent readers: the GroupOf cache is built under a sync.Once.
type Grouping struct {
	Groups []Group
	// Theta is the parallelism threshold used.
	Theta float64
	// groupOf caches device -> group index, built once on first use.
	groupOfOnce sync.Once
	groupOf     map[int]int
}

// NumZLines returns the number of physical Z lines (= groups).
func (g *Grouping) NumZLines() int { return len(g.Groups) }

// ControlLines returns the total number of twisted-pair digital control
// lines needed by all DEMUXes.
func (g *Grouping) ControlLines() int {
	var n int
	for _, grp := range g.Groups {
		n += grp.Level.ControlBits()
	}
	return n
}

// GroupOf returns the group index holding device dev, or -1. It may be
// called from any number of goroutines; the lazy index is built exactly
// once. Do not mutate Groups after the first call.
func (g *Grouping) GroupOf(dev int) int {
	g.groupOfOnce.Do(func() {
		g.groupOf = make(map[int]int)
		for gi, grp := range g.Groups {
			for _, d := range grp.Devices {
				g.groupOf[d] = gi
			}
		}
	})
	if gi, ok := g.groupOf[dev]; ok {
		return gi
	}
	return -1
}

// LevelCounts returns how many groups use each DEMUX level.
func (g *Grouping) LevelCounts() map[DemuxLevel]int {
	m := make(map[DemuxLevel]int)
	for _, grp := range g.Groups {
		m[grp.Level]++
	}
	return m
}

// Validate checks the grouping invariants against the gate tables:
// every device appears exactly once, no group exceeds its level
// capacity, and — the Case 2 legality rule — no gate has two of its
// devices in the same group (which would make the gate unrealizable).
func (g *Grouping) Validate(gi *GateInfo) error {
	devices := make([]int, gi.Dev.Count())
	for i := range devices {
		devices[i] = i
	}
	return g.ValidateDevices(gi, devices)
}

// ValidateDevices checks the grouping invariants over exactly the given
// device set — the fault-aware variant of Validate for plans where dead
// qubits and broken couplers are excluded: coverage is required for
// every listed device and forbidden for every other (so a dead device
// in any group is an error).
func (g *Grouping) ValidateDevices(gi *GateInfo, devices []int) error {
	want := make(map[int]bool, len(devices))
	for _, d := range devices {
		if want[d] {
			return fmt.Errorf("tdm: duplicate device %d in validation set", d)
		}
		want[d] = true
	}
	seen := make(map[int]int)
	for gid, grp := range g.Groups {
		if len(grp.Devices) == 0 {
			return fmt.Errorf("tdm: group %d is empty", gid)
		}
		if len(grp.Devices) > int(grp.Level) {
			return fmt.Errorf("tdm: group %d has %d devices, level %s", gid, len(grp.Devices), grp.Level)
		}
		for _, d := range grp.Devices {
			if d < 0 || d >= gi.Dev.Count() {
				return fmt.Errorf("tdm: group %d has out-of-range device %d", gid, d)
			}
			if !want[d] {
				return fmt.Errorf("tdm: group %d contains device %s outside the device set", gid, gi.Dev.Name(d))
			}
			if prev, dup := seen[d]; dup {
				return fmt.Errorf("tdm: device %s in groups %d and %d", gi.Dev.Name(d), prev, gid)
			}
			seen[d] = gid
		}
	}
	if len(seen) != len(want) {
		return fmt.Errorf("tdm: grouping covers %d of %d devices", len(seen), len(want))
	}
	for gIdx := range gi.Gates {
		devs := gi.GateDevices(gIdx)
		for a := 0; a < 3; a++ {
			for b := a + 1; b < 3; b++ {
				// A gate device outside the validated set (e.g. a dead
				// qubit's coupler in a degraded design) has no group to
				// collide in.
				ga, inA := seen[devs[a]]
				gb, inB := seen[devs[b]]
				if inA && inB && ga == gb {
					return fmt.Errorf("tdm: gate %d devices %s and %s share group %d (unrealizable 2q gate)",
						gIdx, gi.Dev.Name(devs[a]), gi.Dev.Name(devs[b]), ga)
				}
			}
		}
	}
	return nil
}

// levelFor derives the DEMUX hardware from the final group size.
func levelFor(size int) DemuxLevel {
	switch {
	case size <= 1:
		return DemuxNone
	case size == 2:
		return Demux1to2
	default:
		return Demux1to4
	}
}

// sortedByIndex returns device ids sorted by ascending parallelism
// index, ties broken by id for determinism.
func sortedByIndex(devs []int, idx []float64) []int {
	out := append([]int(nil), devs...)
	sort.Slice(out, func(a, b int) bool {
		if idx[out[a]] != idx[out[b]] {
			return idx[out[a]] < idx[out[b]]
		}
		return out[a] < out[b]
	})
	return out
}
