package tdm

import (
	"strings"
	"testing"

	"repro/internal/chip"
)

func TestGroupDevicesInputValidation(t *testing.T) {
	c := chip.Square(3, 3)
	gi := AnalyzeGates(c)
	cfg := DefaultConfig(nil)

	if _, err := GroupDevices(nil, []int{0}, cfg); err == nil || !strings.Contains(err.Error(), "nil gate tables") {
		t.Errorf("nil gate tables: got %v", err)
	}
	if _, err := GroupDevices(gi, nil, cfg); err == nil || !strings.Contains(err.Error(), "empty device list") {
		t.Errorf("empty devices: got %v", err)
	}
	if _, err := GroupDevices(gi, []int{0, gi.Dev.Count()}, cfg); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range device: got %v", err)
	}
	if _, err := GroupDevices(gi, []int{3, 3}, cfg); err == nil || !strings.Contains(err.Error(), "duplicate device") {
		t.Errorf("duplicate device: got %v", err)
	}
}

// TestGroupDevicesIsolate: isolated (stuck-lossy) devices land alone on
// direct lines; everything else still validates.
func TestGroupDevicesIsolate(t *testing.T) {
	c := chip.Square(3, 3)
	gi := AnalyzeGates(c)
	cfg := DefaultConfig(nil)
	stuck := map[int]bool{2: true, 7: true}
	cfg.Isolate = func(dev int) bool { return stuck[dev] }

	devs := make([]int, gi.Dev.Count())
	for i := range devs {
		devs[i] = i
	}
	g, err := GroupDevices(gi, devs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(gi); err != nil {
		t.Fatalf("grouping with isolation invalid: %v", err)
	}
	for dev := range stuck {
		gid := g.GroupOf(dev)
		if gid < 0 {
			t.Fatalf("stuck device %d missing from grouping", dev)
		}
		grp := g.Groups[gid]
		if len(grp.Devices) != 1 || grp.Level != DemuxNone {
			t.Errorf("stuck device %d in group %+v, want dedicated direct line", dev, grp)
		}
	}
}

func TestValidateDevicesSubset(t *testing.T) {
	c := chip.Square(3, 3)
	gi := AnalyzeGates(c)
	cfg := DefaultConfig(nil)
	// Group only the first half of the devices.
	var devs []int
	for d := 0; d < gi.Dev.Count()/2; d++ {
		devs = append(devs, d)
	}
	g, err := GroupDevices(gi, devs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ValidateDevices(gi, devs); err != nil {
		t.Errorf("exact device set rejected: %v", err)
	}
	// Full-chip validation must now fail (coverage gap)…
	if err := g.Validate(gi); err == nil {
		t.Error("half-chip grouping passed full-chip validation")
	}
	// …and so must validation against a set missing a grouped device.
	if err := g.ValidateDevices(gi, devs[:len(devs)-1]); err == nil {
		t.Error("grouped device outside the validation set not detected")
	}
}

func TestAnalyzeGatesUsableFiltersGates(t *testing.T) {
	c := chip.Square(3, 3)
	full := AnalyzeGates(c)
	deadQubit := 4 // centre of the 3x3 lattice: degree 4
	filtered := AnalyzeGatesUsable(c, func(g chip.TwoQubitGate) bool {
		return g.Q1 != deadQubit && g.Q2 != deadQubit
	})
	if len(filtered.Gates) >= len(full.Gates) {
		t.Fatalf("filter removed nothing: %d vs %d gates", len(filtered.Gates), len(full.Gates))
	}
	if got := len(full.Gates) - len(filtered.Gates); got != c.Degree(deadQubit) {
		t.Errorf("removed %d gates, want %d (degree of q%d)", got, c.Degree(deadQubit), deadQubit)
	}
	if n := len(filtered.GatesOf[deadQubit]); n != 0 {
		t.Errorf("dead qubit still occupies %d gates", n)
	}
	for gIdx, g := range filtered.Gates {
		if g.Q1 == deadQubit || g.Q2 == deadQubit {
			t.Errorf("gate %d still references dead qubit", gIdx)
		}
	}
}
