package tdm

import (
	"fmt"
	"math"
	"sort"
)

// CrosstalkFunc returns predicted crosstalk between two qubits.
type CrosstalkFunc func(i, j int) float64

// Config tunes the TDM grouping.
type Config struct {
	// Theta is the parallelism threshold: devices with index <= Theta
	// are low-parallelism and eligible for 1:4 DEMUXes; devices above
	// it are capped at 1:2.
	Theta float64
	// Crosstalk predicts pairwise qubit crosstalk; nil disables the
	// noisy non-parallelism term (step 3 of the grouping).
	Crosstalk CrosstalkFunc
	// NoiseThreshold is the crosstalk level above which two gates are
	// considered noisy non-parallel (must not run simultaneously, so
	// their devices may share a DEMUX for free).
	NoiseThreshold float64
	// LossyLimit bounds, per group, the number of members admitted
	// without full (all-pairs) non-parallelism to any existing member.
	// Each lossy member risks serializing gates at run time, so the
	// limit trades Z-line reduction against circuit depth.
	LossyLimit int
	// MinLossyFraction is the minimum non-parallel gate-pair fraction a
	// lossy candidate must reach to be admitted; below it the group is
	// closed instead.
	MinLossyFraction float64
	// SparseQubitZ marks the surface-code operation mode (§5.2): qubit
	// Z activity is temporally sparse (slow DC parking) while CZ pulses
	// ride the coupler, so device pairs involving a qubit are treated
	// as naturally non-parallel and group freely. Gate legality (no two
	// devices of one gate in a group) still holds.
	SparseQubitZ bool
	// Isolate, when non-nil, marks devices whose Z path is stuck-lossy
	// (internal/faults): the device stays usable but must not sit
	// behind a shared cryo-DEMUX, so it is wired on a dedicated direct
	// line — a singleton group — instead of joining the greedy search.
	Isolate func(dev int) bool
}

// DefaultConfig uses the paper's example threshold θ = 4 and a mild
// lossy budget. The noise threshold is expressed in the predictor's
// units; 0.1 suits ZZ-shift predictions in MHz (an 0.1 MHz shift on a
// spectator spoils a simultaneous CZ).
func DefaultConfig(xt CrosstalkFunc) Config {
	return Config{
		Theta:            4,
		Crosstalk:        xt,
		NoiseThreshold:   0.1,
		LossyLimit:       2,
		MinLossyFraction: 0.3,
	}
}

// Group partitions the given devices into TDM groups using the 3-step
// greedy graph-coloring search:
//
//  1. seed each group with the lowest-parallelism remaining device;
//  2. grow with legal devices that are topologically non-parallel to
//     the group (their gates can never coexist with the group's gates);
//  3. then with noisy non-parallel devices (the crosstalk model says
//     their gates must not run simultaneously);
//
// falling back, for devices that could genuinely execute in parallel,
// to the candidate whose parallelism index is closest to the group's
// mean (the balancing rule). Legality always holds: no two devices of
// one hardware gate ever share a group.
func GroupDevices(gi *GateInfo, devices []int, cfg Config) (*Grouping, error) {
	if gi == nil {
		return nil, fmt.Errorf("tdm: nil gate tables")
	}
	if len(devices) == 0 {
		return nil, fmt.Errorf("tdm: empty device list (no devices to group)")
	}
	seen := make(map[int]bool, len(devices))
	for _, d := range devices {
		if d < 0 || d >= gi.Dev.Count() {
			return nil, fmt.Errorf("tdm: device %d out of range [0,%d)", d, gi.Dev.Count())
		}
		if seen[d] {
			return nil, fmt.Errorf("tdm: duplicate device %d", d)
		}
		seen[d] = true
	}
	idx := gi.AllParallelismIndices()

	var low, high, isolated []int
	for _, d := range devices {
		switch {
		case cfg.Isolate != nil && cfg.Isolate(d):
			isolated = append(isolated, d)
		case idx[d] <= cfg.Theta:
			low = append(low, d)
		default:
			high = append(high, d)
		}
	}

	g := &Grouping{Theta: cfg.Theta}
	g.Groups = append(g.Groups, groupLevel(gi, low, 4, idx, cfg)...)
	g.Groups = append(g.Groups, groupLevel(gi, high, 2, idx, cfg)...)
	// Stuck-lossy devices close the plan as dedicated direct lines, in
	// id order for determinism.
	sort.Ints(isolated)
	for _, d := range isolated {
		g.Groups = append(g.Groups, Group{Devices: []int{d}, Level: DemuxNone})
	}
	return g, nil
}

// GroupChip groups every device of the chip behind the gate tables.
func GroupChip(gi *GateInfo, cfg Config) (*Grouping, error) {
	devs := make([]int, gi.Dev.Count())
	for i := range devs {
		devs[i] = i
	}
	return GroupDevices(gi, devs, cfg)
}

// conflicts reports whether devices a and b are occupied by a common
// hardware gate, which would make that gate unrealizable if they shared
// a DEMUX (challenge Case 2).
func conflicts(gi *GateInfo, a, b int) bool {
	for _, ga := range gi.GatesOf[a] {
		devs := gi.GateDevices(ga)
		for _, d := range devs {
			if d == b {
				return true
			}
		}
	}
	return false
}

// nonParallelFraction returns the fraction of (candidate gate, member
// gate) pairs that can never execute simultaneously — either
// topologically (they share a qubit, step 2 of the grouping) or noisily
// (their predicted mutual crosstalk exceeds the threshold, step 3). A
// fraction of 1 means grouping the candidate costs no parallelism at
// all; devices without gates are trivially non-parallel.
func nonParallelFraction(gi *GateInfo, group []int, cand int, cfg Config) float64 {
	pairs, np := 0, 0
	for _, m := range group {
		if cfg.SparseQubitZ && (!gi.Dev.IsCoupler(cand) || !gi.Dev.IsCoupler(m)) {
			// Surface-code mode: any pair involving a qubit is free.
			continue
		}
		for _, gc := range gi.GatesOf[cand] {
			for _, gm := range gi.GatesOf[m] {
				if gm == gc {
					continue
				}
				pairs++
				if gatesShareQubit(gi, gm, gc) {
					np++
					continue
				}
				if cfg.Crosstalk != nil && gateCrosstalk(gi, gm, gc, cfg.Crosstalk) > cfg.NoiseThreshold {
					np++
				}
			}
		}
	}
	if pairs == 0 {
		return 1
	}
	return float64(np) / float64(pairs)
}

func gatesShareQubit(gi *GateInfo, a, b int) bool {
	return sharesQubit(gi.Gates[a], gi.Gates[b])
}

// gateCrosstalk is the worst pairwise qubit crosstalk across two gates.
func gateCrosstalk(gi *GateInfo, a, b int, xt CrosstalkFunc) float64 {
	ga, gb := gi.Gates[a], gi.Gates[b]
	max := 0.0
	for _, qa := range [2]int{ga.Q1, ga.Q2} {
		for _, qb := range [2]int{gb.Q1, gb.Q2} {
			if v := xt(qa, qb); v > max {
				max = v
			}
		}
	}
	return max
}

func groupLevel(gi *GateInfo, devs []int, capacity int, idx []float64, cfg Config) []Group {
	remaining := sortedByIndex(devs, idx)
	inGroup := make(map[int]bool)
	var groups []Group

	for len(remaining) > 0 {
		// Step 1: seed with the lowest-parallelism device.
		seed := remaining[0]
		group := []int{seed}
		inGroup[seed] = true
		lossy := 0

		for len(group) < capacity {
			best, bestKey := -1, math.Inf(-1)
			bestStrict := false
			var meanIdx float64
			for _, m := range group {
				meanIdx += idx[m]
			}
			meanIdx /= float64(len(group))

			for _, cand := range remaining {
				if inGroup[cand] {
					continue
				}
				legal := true
				for _, m := range group {
					if conflicts(gi, cand, m) {
						legal = false
						break
					}
				}
				if !legal {
					continue
				}
				// Steps 2 and 3: devices fully non-parallel to the
				// group (every gate pair topologically or noisily
				// non-coexistent) join for free. Partially-parallel
				// devices are "lossy": each one risks serializing
				// gates, so admission is bounded by LossyLimit and
				// MinLossyFraction, and the balancing rule (closest
				// parallelism index) breaks ties.
				frac := nonParallelFraction(gi, group, cand, cfg)
				strict := frac >= 0.999
				if !strict {
					if lossy >= cfg.LossyLimit || frac < cfg.MinLossyFraction {
						continue
					}
				}
				key := frac*1e6 - math.Abs(idx[cand]-meanIdx)
				if key > bestKey {
					best, bestKey, bestStrict = cand, key, strict
				}
			}
			if best < 0 {
				break // no admissible device left for this group
			}
			group = append(group, best)
			inGroup[best] = true
			if !bestStrict {
				lossy++
			}
		}

		groups = append(groups, Group{Devices: group, Level: levelFor(len(group))})
		// Compact the remaining list.
		next := remaining[:0]
		for _, d := range remaining {
			if !inGroup[d] {
				next = append(next, d)
			}
		}
		remaining = next
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a].Devices[0] < groups[b].Devices[0] })
	return groups
}

// LocalClusterGroup is the Acharya et al. baseline: devices are packed
// into DEMUX groups by spatial/id locality (raster order) subject only
// to the legality rule, without exploiting non-parallelism. fanout is
// the DEMUX fan-out used throughout (the reference design uses 1:4).
func LocalClusterGroup(gi *GateInfo, fanout int) (*Grouping, error) {
	if fanout != 2 && fanout != 4 {
		return nil, fmt.Errorf("tdm: unsupported fan-out %d", fanout)
	}
	n := gi.Dev.Count()
	g := &Grouping{}
	inGroup := make([]bool, n)
	for d := 0; d < n; d++ {
		if inGroup[d] {
			continue
		}
		group := []int{d}
		inGroup[d] = true
		for cand := d + 1; cand < n && len(group) < fanout; cand++ {
			if inGroup[cand] {
				continue
			}
			legal := true
			for _, m := range group {
				if conflicts(gi, cand, m) {
					legal = false
					break
				}
			}
			if legal {
				group = append(group, cand)
				inGroup[cand] = true
			}
		}
		g.Groups = append(g.Groups, Group{Devices: group, Level: levelFor(len(group))})
	}
	return g, nil
}
