// Package surface builds rotated surface-code chips and their
// error-correction schedules, the substrate of the paper's
// fault-tolerant case study (§5.2, Table 1). A distance-d code has
// 2d²-1 qubits (d² data + d²-1 parity) and 4d(d-1) couplers; each
// error-correction cycle runs Hadamards on the parity qubits, four CZ
// interaction layers and a parity readout.
package surface

import (
	"fmt"

	"repro/internal/chip"
	"repro/internal/circuit"
	"repro/internal/geom"
)

// StabilizerType distinguishes X and Z parity checks.
type StabilizerType int

// Stabilizer types.
const (
	XStabilizer StabilizerType = iota
	ZStabilizer
)

// String implements fmt.Stringer.
func (t StabilizerType) String() string {
	if t == XStabilizer {
		return "X"
	}
	return "Z"
}

// Neighbour direction indices into the Neighbors array.
const (
	NW = iota
	NE
	SW
	SE
)

// Code is a distance-d rotated surface code laid out on a chip.
type Code struct {
	Distance int
	Chip     *chip.Chip
	// Data lists the data-qubit ids (d²).
	Data []int
	// Parity lists the parity-qubit ids (d²-1).
	Parity []int
	// Type[i] is the stabilizer type of Parity[i].
	Type []StabilizerType
	// Neighbors[i] holds the data qubits Parity[i] checks, indexed by
	// NW/NE/SW/SE; -1 marks an absent (boundary) neighbour.
	Neighbors [][4]int
}

// New constructs the distance-d rotated surface code. d must be odd
// and >= 3.
func New(d int) (*Code, error) {
	if d < 3 || d%2 == 0 {
		return nil, fmt.Errorf("surface: distance must be odd and >= 3, got %d", d)
	}
	code := &Code{Distance: d}

	var qubits []chip.Qubit
	dataID := make(map[[2]int]int) // (row, col) -> qubit id
	addQubit := func(x, y float64) int {
		id := len(qubits)
		qubits = append(qubits, chip.Qubit{
			ID:  id,
			Pos: geom.Pt(x*chip.DefaultPitch, y*chip.DefaultPitch),
			T1:  chip.DefaultT1,
		})
		return id
	}
	for r := 0; r < d; r++ {
		for c := 0; c < d; c++ {
			id := addQubit(float64(c), float64(r))
			dataID[[2]int{r, c}] = id
			code.Data = append(code.Data, id)
		}
	}

	// Parity candidates sit at plaquette centres (r+0.5, c+0.5) for
	// r, c in -1..d-1; the keep rule selects all interior plaquettes
	// plus alternating boundary plaquettes, exactly d²-1 in total.
	keep := func(r, c int) bool {
		interiorR := r >= 0 && r <= d-2
		interiorC := c >= 0 && c <= d-2
		switch {
		case interiorR && interiorC:
			return true
		case r == -1 && interiorC:
			return c%2 == 0
		case r == d-1 && interiorC:
			return c%2 == 1
		case c == -1 && interiorR:
			return r%2 == 1
		case c == d-1 && interiorR:
			return r%2 == 0
		default:
			return false
		}
	}

	var couplerPairs [][2]int
	for r := -1; r <= d-1; r++ {
		for c := -1; c <= d-1; c++ {
			if !keep(r, c) {
				continue
			}
			pid := addQubit(float64(c)+0.5, float64(r)+0.5)
			code.Parity = append(code.Parity, pid)
			if mod2(r+c) == 0 {
				code.Type = append(code.Type, XStabilizer)
			} else {
				code.Type = append(code.Type, ZStabilizer)
			}
			// NW, NE, SW, SE data neighbours (row+1 is "north").
			deltas := [4][2]int{NW: {1, 0}, NE: {1, 1}, SW: {0, 0}, SE: {0, 1}}
			nb := [4]int{-1, -1, -1, -1}
			for dir, delta := range deltas {
				dr, dc := r+delta[0], c+delta[1]
				if dr < 0 || dr >= d || dc < 0 || dc >= d {
					continue
				}
				did := dataID[[2]int{dr, dc}]
				nb[dir] = did
				couplerPairs = append(couplerPairs, [2]int{pid, did})
			}
			code.Neighbors = append(code.Neighbors, nb)
		}
	}

	if got, want := len(qubits), 2*d*d-1; got != want {
		return nil, fmt.Errorf("surface: built %d qubits, want %d", got, want)
	}
	if got, want := len(couplerPairs), 4*d*(d-1); got != want {
		return nil, fmt.Errorf("surface: built %d couplers, want %d", got, want)
	}

	ch, err := chip.New(fmt.Sprintf("surface-d%d", d), "surface", qubits, couplerPairs)
	if err != nil {
		return nil, fmt.Errorf("surface: %w", err)
	}
	code.Chip = ch
	return code, nil
}

func mod2(x int) int {
	m := x % 2
	if m < 0 {
		m += 2
	}
	return m
}

// interactionOrder is the standard zigzag schedule: X stabilizers visit
// NW, NE, SW, SE while Z stabilizers visit NW, SW, NE, SE. The
// staggering guarantees no data qubit is touched twice in one step, so
// an unconstrained architecture runs each cycle in exactly 4 CZ layers.
var interactionOrder = map[StabilizerType][4]int{
	XStabilizer: {NW, NE, SW, SE},
	ZStabilizer: {NW, SW, NE, SE},
}

// CycleCircuit builds `cycles` error-correction rounds: per round,
// Hadamards on X-type parity qubits, four CZ interaction layers in the
// zigzag order, closing Hadamards, and parity readout.
func (code *Code) CycleCircuit(cycles int) *circuit.Circuit {
	c := circuit.New(code.Chip.NumQubits())
	app := func(name circuit.GateName, qubits ...int) {
		if err := c.Append(name, 0, qubits...); err != nil {
			panic(err) // construction invariant: operands are valid
		}
	}
	for cyc := 0; cyc < cycles; cyc++ {
		for i, p := range code.Parity {
			if code.Type[i] == XStabilizer {
				app(circuit.H, p)
			}
		}
		app(circuit.Barrier)
		for step := 0; step < 4; step++ {
			for i, p := range code.Parity {
				dir := interactionOrder[code.Type[i]][step]
				if data := code.Neighbors[i][dir]; data >= 0 {
					app(circuit.CZ, p, data)
				}
			}
			app(circuit.Barrier)
		}
		for i, p := range code.Parity {
			if code.Type[i] == XStabilizer {
				app(circuit.H, p)
			}
		}
		app(circuit.Barrier)
		for _, p := range code.Parity {
			app(circuit.Measure, p)
		}
		app(circuit.Barrier)
	}
	return c
}
