package surface

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/schedule"
)

func TestNewValidation(t *testing.T) {
	for _, d := range []int{0, 1, 2, 4, -3} {
		if _, err := New(d); err == nil {
			t.Errorf("distance %d accepted", d)
		}
	}
}

func TestQubitAndCouplerCounts(t *testing.T) {
	for _, d := range []int{3, 5, 7, 9, 11} {
		code, err := New(d)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := code.Chip.NumQubits(), 2*d*d-1; got != want {
			t.Errorf("d=%d: %d qubits, want %d", d, got, want)
		}
		if got, want := code.Chip.NumCouplers(), 4*d*(d-1); got != want {
			t.Errorf("d=%d: %d couplers, want %d", d, got, want)
		}
		if got, want := len(code.Data), d*d; got != want {
			t.Errorf("d=%d: %d data qubits, want %d", d, got, want)
		}
		if got, want := len(code.Parity), d*d-1; got != want {
			t.Errorf("d=%d: %d parity qubits, want %d", d, got, want)
		}
	}
}

func TestStabilizerBalance(t *testing.T) {
	// X and Z stabilizers come in (d²-1)/2 each... the rotated code has
	// equal counts.
	for _, d := range []int{3, 5} {
		code, err := New(d)
		if err != nil {
			t.Fatal(err)
		}
		var x, z int
		for _, st := range code.Type {
			if st == XStabilizer {
				x++
			} else {
				z++
			}
		}
		if x != z {
			t.Errorf("d=%d: %d X vs %d Z stabilizers", d, x, z)
		}
	}
}

func TestParityWeights(t *testing.T) {
	code, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	weight4, weight2 := 0, 0
	for i := range code.Parity {
		w := 0
		for _, nb := range code.Neighbors[i] {
			if nb >= 0 {
				w++
			}
		}
		switch w {
		case 4:
			weight4++
		case 2:
			weight2++
		default:
			t.Errorf("parity %d has weight %d", i, w)
		}
	}
	d := 5
	if weight4 != (d-1)*(d-1) {
		t.Errorf("%d weight-4 stabilizers, want %d", weight4, (d-1)*(d-1))
	}
	if weight2 != 2*(d-1) {
		t.Errorf("%d weight-2 stabilizers, want %d", weight2, 2*(d-1))
	}
}

func TestNeighborsAreCoupled(t *testing.T) {
	code, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range code.Parity {
		for _, nb := range code.Neighbors[i] {
			if nb < 0 {
				continue
			}
			if _, ok := code.Chip.CouplerBetween(p, nb); !ok {
				t.Errorf("parity %d and data %d not coupled", p, nb)
			}
		}
	}
}

func TestChipConnected(t *testing.T) {
	code, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	if comps := code.Chip.Graph().Components(); len(comps) != 1 {
		t.Errorf("surface chip disconnected: %d components", len(comps))
	}
}

func TestCycleCircuitGateCounts(t *testing.T) {
	d := 3
	code, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	cycles := 2
	c := code.CycleCircuit(cycles)
	var h, cz, meas int
	for _, g := range c.Gates {
		switch g.Name {
		case circuit.H:
			h++
		case circuit.CZ:
			cz++
		case circuit.Measure:
			meas++
		}
	}
	if want := cycles * code.Chip.NumCouplers(); cz != want {
		t.Errorf("%d CZs, want %d (every coupler once per cycle)", cz, want)
	}
	if want := cycles * len(code.Parity); meas != want {
		t.Errorf("%d measures, want %d", meas, want)
	}
	// 2 H per X stabilizer per cycle.
	var xCount int
	for _, st := range code.Type {
		if st == XStabilizer {
			xCount++
		}
	}
	if want := cycles * 2 * xCount; h != want {
		t.Errorf("%d Hs, want %d", h, want)
	}
}

func TestZigzagScheduleGivesFourCZLayers(t *testing.T) {
	// The whole point of the zigzag interaction order: on dedicated
	// wiring every EC cycle runs exactly 4 CZ layers.
	for _, d := range []int{3, 5} {
		code, err := New(d)
		if err != nil {
			t.Fatal(err)
		}
		cycles := 3
		circ := circuit.Decompose(code.CycleCircuit(cycles))
		sched, err := schedule.New(code.Chip, nil, schedule.DefaultDurations()).Run(circ)
		if err != nil {
			t.Fatal(err)
		}
		if want := 4 * cycles; sched.TwoQubitDepth != want {
			t.Errorf("d=%d: 2q depth %d, want %d", d, sched.TwoQubitDepth, want)
		}
	}
}

func TestNoDataQubitTouchedTwicePerStep(t *testing.T) {
	code, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 4; step++ {
		used := map[int]bool{}
		for i := range code.Parity {
			dir := interactionOrder[code.Type[i]][step]
			if data := code.Neighbors[i][dir]; data >= 0 {
				if used[data] {
					t.Fatalf("step %d: data qubit %d used twice", step, data)
				}
				used[data] = true
			}
		}
	}
}

func TestStabilizerTypeString(t *testing.T) {
	if XStabilizer.String() != "X" || ZStabilizer.String() != "Z" {
		t.Error("stabilizer names wrong")
	}
}
