package cost

import (
	"math"
	"testing"

	"repro/internal/chip"
	"repro/internal/tdm"
	"repro/internal/wiring"
)

func TestGoogleTable2CostAnchors(t *testing.T) {
	// The calibrated price book must land within 2% of Table 2's
	// Google wiring costs.
	want := map[string]float64{
		"square":        216e3,
		"hexagon":       359e3,
		"heavy-square":  470e3,
		"heavy-hexagon": 457e3,
		"low-density":   385e3,
	}
	m := DefaultModel()
	for _, c := range chip.Table2Chips() {
		got := m.WiringCost(wiring.Google(c))
		target := want[c.Topology]
		if math.Abs(got-target)/target > 0.02 {
			t.Errorf("%s: cost $%.0fK, want $%.0fK ± 2%%", c.Topology, got/1000, target/1000)
		}
	}
}

func Test150QubitSystemAnchor(t *testing.T) {
	// The paper's intro: a 150-qubit system spends ≈$4M on wiring.
	c := chip.Square(15, 10)
	got := DefaultModel().WiringCost(wiring.Google(c))
	if got < 3.3e6 || got > 4.7e6 {
		t.Errorf("150-qubit Google wiring cost $%.2fM, want ≈$4M", got/1e6)
	}
}

func TestWiringCostComponents(t *testing.T) {
	m := DefaultModel()
	p := &wiring.Plan{
		XYLines:      2,
		ZLines:       3,
		ReadoutLines: 1,
		ControlLines: 4,
		DACs:         10,
		DemuxCount: map[tdm.DemuxLevel]int{
			tdm.Demux1to2: 2,
			tdm.Demux1to4: 1,
		},
	}
	want := 6*m.CoaxPerLine + 4*m.TwistedPerLine + 10*m.DACPerChannel +
		2*m.DemuxPrice[tdm.Demux1to2] + m.DemuxPrice[tdm.Demux1to4]
	if got := m.WiringCost(p); math.Abs(got-want) > 1e-9 {
		t.Errorf("cost %v, want %v", got, want)
	}
}

func TestCoaxDominatesCost(t *testing.T) {
	// The paper: wiring (coax) takes ~80% of hardware investment. In
	// our model, coax must dominate the per-plan cost for a Google
	// system.
	m := DefaultModel()
	c := chip.Square(6, 6)
	p := wiring.Google(c)
	coax := m.CoaxCost(p.CoaxLines())
	total := m.WiringCost(p)
	if frac := coax / total; frac < 0.7 {
		t.Errorf("coax fraction %.2f, want > 0.7", frac)
	}
}

func TestCoaxCost(t *testing.T) {
	m := DefaultModel()
	if got := m.CoaxCost(10); got != 10*m.CoaxPerLine {
		t.Errorf("CoaxCost(10) = %v", got)
	}
	if m.CoaxCost(0) != 0 {
		t.Error("zero lines should cost zero")
	}
}

func TestTwistedPairsMuchCheaperThanCoax(t *testing.T) {
	m := DefaultModel()
	if m.TwistedPerLine*10 > m.CoaxPerLine {
		t.Errorf("twisted pair ($%v) should be far cheaper than coax ($%v)",
			m.TwistedPerLine, m.CoaxPerLine)
	}
}
