// Package cost prices a cryostat-level wiring plan in dollars. The
// constants are calibrated to the paper's published anchors: wiring is
// ~80% of superconducting-system hardware cost, a Google-style
// 150-qubit system spends ≈$4M on wiring, and the Table 2 totals (a
// 21-qubit heavy-square Google system ≈ $470K). Only relative costs
// matter for the experiments.
package cost

import (
	"repro/internal/tdm"
	"repro/internal/wiring"
)

// Model holds per-unit prices in USD.
type Model struct {
	// CoaxPerLine prices one high-density cryogenic coaxial line,
	// including attenuators, filters and installation.
	CoaxPerLine float64
	// TwistedPerLine prices one twisted-pair digital control line.
	TwistedPerLine float64
	// DACPerChannel prices one room-temperature DAC/ADC channel.
	DACPerChannel float64
	// DemuxPrice prices one cryo-DEMUX unit by level.
	DemuxPrice map[tdm.DemuxLevel]float64
}

// DefaultModel is the calibrated price book.
func DefaultModel() Model {
	return Model{
		CoaxPerLine:    6300,
		TwistedPerLine: 150,
		DACPerChannel:  400,
		DemuxPrice: map[tdm.DemuxLevel]float64{
			tdm.Demux1to2: 300,
			tdm.Demux1to4: 500,
		},
	}
}

// WiringCost returns the total wiring-system cost of a plan in USD.
func (m Model) WiringCost(p *wiring.Plan) float64 {
	total := float64(p.CoaxLines())*m.CoaxPerLine +
		float64(p.ControlLines)*m.TwistedPerLine +
		float64(p.DACs)*m.DACPerChannel
	for level, n := range p.DemuxCount {
		total += float64(n) * m.DemuxPrice[level]
	}
	return total
}

// CoaxCost returns only the coaxial-cable portion, used by the
// large-scale savings accounting of Figure 17.
func (m Model) CoaxCost(coaxLines int) float64 {
	return float64(coaxLines) * m.CoaxPerLine
}
