// Package wiring assembles cryostat-level wiring plans: how many coax
// lines, twisted-pair control lines, DACs and on-chip interfaces a
// control architecture needs for a given chip. Four architectures are
// modelled: Google's Sycamore-style baseline (dedicated XY and Z lines,
// multiplexed readout only), YOUTIAO's hybrid FDM+TDM design, and the
// two single-technique baselines (George et al. FDM-only, Acharya et
// al. TDM-only with local clustering).
package wiring

import (
	"fmt"

	"repro/internal/chip"
	"repro/internal/fdm"
	"repro/internal/tdm"
)

// Multiplexing capacities. GoogleReadoutCapacity and the ADCShare are
// calibrated so the Google baseline reproduces the interface counts of
// the paper's Table 2 exactly; the YOUTIAO capacities come from the
// paper (FDM line capacity 5 for XY, up to 8 qubits per readout line).
const (
	GoogleReadoutCapacity  = 7
	YoutiaoFDMCapacity     = 5
	YoutiaoReadoutCapacity = 8
	// ADCShare is the number of qubits sharing one readout digitizer
	// channel, which adds DAC/ADC hardware but no chip interface.
	ADCShare = 10
)

// Plan is a cryostat-level wiring bill of materials.
type Plan struct {
	Architecture string
	NumQubits    int
	NumCouplers  int

	XYLines      int // microwave drive coax
	ZLines       int // flux coax
	ReadoutLines int // readout feedline coax
	ControlLines int // DEMUX digital controls (twisted pair)

	// DemuxCount is the number of DEMUX units per level.
	DemuxCount map[tdm.DemuxLevel]int

	DACs       int // room-temperature DAC/ADC channels
	Interfaces int // on-chip signal interfaces
}

// CoaxLines returns the number of coaxial cables through the cryostat
// (control lines run on cheap twisted pair and are excluded).
func (p *Plan) CoaxLines() int { return p.XYLines + p.ZLines + p.ReadoutLines }

// finish derives the interface and DAC counts shared by every
// architecture: one chip interface per line of any kind, plus one
// digitizer channel per ADCShare qubits on the room-temperature side.
func (p *Plan) finish() {
	p.Interfaces = p.XYLines + p.ZLines + p.ReadoutLines + p.ControlLines
	p.DACs = p.Interfaces + ceilDiv(p.NumQubits, ADCShare)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Google returns the baseline Sycamore-style plan: a dedicated XY line
// per qubit, a dedicated Z line per qubit and per coupler, and
// frequency-multiplexed readout.
func Google(c *chip.Chip) *Plan {
	p := &Plan{
		Architecture: "google",
		NumQubits:    c.NumQubits(),
		NumCouplers:  c.NumCouplers(),
		XYLines:      c.NumQubits(),
		ZLines:       c.NumQubits() + c.NumCouplers(),
		ReadoutLines: ceilDiv(c.NumQubits(), GoogleReadoutCapacity),
		DemuxCount:   map[tdm.DemuxLevel]int{},
	}
	p.finish()
	return p
}

// Youtiao returns the hybrid plan for a chip given its FDM grouping
// (XY lines) and TDM grouping (Z lines).
func Youtiao(c *chip.Chip, f *fdm.Grouping, t *tdm.Grouping) (*Plan, error) {
	if f == nil || t == nil {
		return nil, fmt.Errorf("wiring: YOUTIAO plan needs both groupings")
	}
	p := &Plan{
		Architecture: "youtiao",
		NumQubits:    c.NumQubits(),
		NumCouplers:  c.NumCouplers(),
		XYLines:      f.NumLines(),
		ZLines:       t.NumZLines(),
		ReadoutLines: ceilDiv(c.NumQubits(), YoutiaoReadoutCapacity),
		ControlLines: t.ControlLines(),
		DemuxCount:   t.LevelCounts(),
	}
	delete(p.DemuxCount, tdm.DemuxNone)
	p.finish()
	return p, nil
}

// GeorgeFDM returns the FDM-only baseline: XY and readout lines are
// frequency-multiplexed (in-line allocation only), Z lines stay
// dedicated.
func GeorgeFDM(c *chip.Chip) *Plan {
	p := &Plan{
		Architecture: "george-fdm",
		NumQubits:    c.NumQubits(),
		NumCouplers:  c.NumCouplers(),
		XYLines:      ceilDiv(c.NumQubits(), YoutiaoFDMCapacity),
		ZLines:       c.NumQubits() + c.NumCouplers(),
		ReadoutLines: ceilDiv(c.NumQubits(), YoutiaoReadoutCapacity),
		DemuxCount:   map[tdm.DemuxLevel]int{},
	}
	p.finish()
	return p
}

// AcharyaTDM returns the TDM-only baseline: Z lines multiplexed through
// cryo-DEMUXes with local clustering, XY dedicated, Sycamore readout.
func AcharyaTDM(c *chip.Chip, t *tdm.Grouping) (*Plan, error) {
	if t == nil {
		return nil, fmt.Errorf("wiring: Acharya plan needs a TDM grouping")
	}
	p := &Plan{
		Architecture: "acharya-tdm",
		NumQubits:    c.NumQubits(),
		NumCouplers:  c.NumCouplers(),
		XYLines:      c.NumQubits(),
		ZLines:       t.NumZLines(),
		ReadoutLines: ceilDiv(c.NumQubits(), GoogleReadoutCapacity),
		ControlLines: t.ControlLines(),
		DemuxCount:   t.LevelCounts(),
	}
	delete(p.DemuxCount, tdm.DemuxNone)
	p.finish()
	return p, nil
}
