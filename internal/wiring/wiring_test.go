package wiring

import (
	"testing"

	"repro/internal/chip"
	"repro/internal/fdm"
	"repro/internal/tdm"
)

// simpleTDM builds a legal grouping of the chip's devices by local
// clustering, good enough for wiring arithmetic tests.
func simpleTDM(t *testing.T, c *chip.Chip) *tdm.Grouping {
	t.Helper()
	gi := tdm.AnalyzeGates(c)
	g, err := tdm.LocalClusterGroup(gi, 4)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func simpleFDM(t *testing.T, c *chip.Chip) *fdm.Grouping {
	t.Helper()
	var all []int
	for i := 0; i < c.NumQubits(); i++ {
		all = append(all, i)
	}
	return fdm.LocalClusterGroup(all, YoutiaoFDMCapacity)
}

func TestGoogleTable2Anchors(t *testing.T) {
	// The Google baseline must reproduce Table 2's interface counts
	// exactly; they calibrated the readout capacity.
	wantInterfaces := map[string]int{
		"square":        32,
		"hexagon":       53,
		"heavy-square":  69,
		"heavy-hexagon": 67,
		"low-density":   57,
	}
	wantDACs := map[string]int{
		"square":        33,
		"hexagon":       55,
		"heavy-square":  72,
		"heavy-hexagon": 70,
		"low-density":   59,
	}
	for _, c := range chip.Table2Chips() {
		p := Google(c)
		if p.Interfaces != wantInterfaces[c.Topology] {
			t.Errorf("%s: %d interfaces, want %d", c.Topology, p.Interfaces, wantInterfaces[c.Topology])
		}
		if p.DACs != wantDACs[c.Topology] {
			t.Errorf("%s: %d DACs, want %d", c.Topology, p.DACs, wantDACs[c.Topology])
		}
		if p.XYLines != c.NumQubits() {
			t.Errorf("%s: XY %d, want one per qubit", c.Topology, p.XYLines)
		}
		if p.ZLines != c.NumQubits()+c.NumCouplers() {
			t.Errorf("%s: Z %d, want qubits+couplers", c.Topology, p.ZLines)
		}
		if p.ControlLines != 0 {
			t.Errorf("%s: Google plan has control lines", c.Topology)
		}
	}
}

func TestYoutiaoPlan(t *testing.T) {
	c := chip.Square(3, 3)
	f := simpleFDM(t, c)
	g := simpleTDM(t, c)
	p, err := Youtiao(c, f, g)
	if err != nil {
		t.Fatal(err)
	}
	if p.XYLines != f.NumLines() {
		t.Errorf("XY %d, want %d", p.XYLines, f.NumLines())
	}
	if p.ZLines != g.NumZLines() {
		t.Errorf("Z %d, want %d", p.ZLines, g.NumZLines())
	}
	if p.ControlLines != g.ControlLines() {
		t.Errorf("control %d, want %d", p.ControlLines, g.ControlLines())
	}
	if p.CoaxLines() != p.XYLines+p.ZLines+p.ReadoutLines {
		t.Error("coax accounting wrong")
	}
	if p.Interfaces != p.CoaxLines()+p.ControlLines {
		t.Error("interface accounting wrong")
	}
	if _, ok := p.DemuxCount[tdm.DemuxNone]; ok {
		t.Error("direct lines counted as DEMUX hardware")
	}
}

func TestYoutiaoNeedsGroupings(t *testing.T) {
	c := chip.Square(2, 2)
	if _, err := Youtiao(c, nil, nil); err == nil {
		t.Error("nil groupings accepted")
	}
	if _, err := AcharyaTDM(c, nil); err == nil {
		t.Error("nil TDM grouping accepted")
	}
}

func TestYoutiaoReducesCoax(t *testing.T) {
	for _, c := range chip.Table2Chips() {
		f := simpleFDM(t, c)
		g := simpleTDM(t, c)
		y, err := Youtiao(c, f, g)
		if err != nil {
			t.Fatal(err)
		}
		b := Google(c)
		ratio := float64(b.CoaxLines()) / float64(y.CoaxLines())
		if ratio < 2 {
			t.Errorf("%s: coax reduction only %.2fx", c.Topology, ratio)
		}
	}
}

func TestGeorgeFDMPlan(t *testing.T) {
	c := chip.Square(3, 3)
	p := GeorgeFDM(c)
	if p.XYLines != 2 { // ceil(9/5)
		t.Errorf("XY %d, want 2", p.XYLines)
	}
	if p.ZLines != 21 {
		t.Errorf("Z %d, want 21 (dedicated)", p.ZLines)
	}
	if p.ControlLines != 0 {
		t.Error("FDM-only plan has control lines")
	}
	// George sits between Google and full YOUTIAO.
	g := Google(c)
	if p.CoaxLines() >= g.CoaxLines() {
		t.Error("George should reduce coax vs Google")
	}
}

func TestAcharyaTDMPlan(t *testing.T) {
	c := chip.Square(3, 3)
	g := simpleTDM(t, c)
	p, err := AcharyaTDM(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if p.XYLines != c.NumQubits() {
		t.Errorf("XY %d, want dedicated", p.XYLines)
	}
	if p.ZLines != g.NumZLines() {
		t.Errorf("Z %d, want %d", p.ZLines, g.NumZLines())
	}
	if p.CoaxLines() >= Google(c).CoaxLines() {
		t.Error("Acharya should reduce coax vs Google")
	}
}

func TestCoaxExcludesControl(t *testing.T) {
	c := chip.Square(3, 3)
	y, err := Youtiao(c, simpleFDM(t, c), simpleTDM(t, c))
	if err != nil {
		t.Fatal(err)
	}
	if y.CoaxLines() > y.Interfaces {
		t.Error("coax exceeds interfaces")
	}
	if y.ControlLines > 0 && y.CoaxLines() == y.Interfaces {
		t.Error("control lines should ride twisted pairs, not coax")
	}
}
