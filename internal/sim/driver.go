package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	youtiao "repro"
	"repro/internal/serve"
)

// LibraryDriver runs request events in-process through a shared design
// cache — the same experiments.DesignCache machinery youtiao-serve
// fronts, minus HTTP. Options are materialized from the event exactly
// as the server materializes them from a request body, so a trace run
// against the library and against a live server computes identical
// designs.
type LibraryDriver struct {
	cache *youtiao.SharedCache
	// designWorkers bounds each design's internal worker pool (the
	// designed system is bit-identical at any value).
	designWorkers int

	mu    sync.Mutex
	chips map[chipShape]*youtiao.Chip
}

type chipShape struct {
	topology string
	qubits   int
}

// NewLibraryDriver returns a driver over cache. designWorkers bounds
// the per-design parallelism (<= 0 selects the pipeline default).
func NewLibraryDriver(cache *youtiao.SharedCache, designWorkers int) *LibraryDriver {
	return &LibraryDriver{
		cache:         cache,
		designWorkers: designWorkers,
		chips:         make(map[chipShape]*youtiao.Chip),
	}
}

// Design implements Driver.
func (d *LibraryDriver) Design(ctx context.Context, ev Event) Outcome {
	ch, err := d.chip(ev.Topology, ev.Qubits)
	if err != nil {
		return Outcome{Class: OutcomeBadRequest, Detail: err.Error()}
	}
	// Mirror serve.handleDesign's request -> Options mapping so both
	// targets compute identical designs from one trace.
	opts := youtiao.Options{
		Seed:        ev.Seed,
		FDMCapacity: ev.FDMCapacity,
		AnnealSteps: ev.AnnealSteps,
		Workers:     d.designWorkers,
	}
	if ev.Theta != nil {
		opts.Theta, opts.HasTheta = *ev.Theta, true
	}
	if ev.DefectRate > 0 {
		opts.Faults = youtiao.UniformFaults(ev.DefectRate)
	}
	if _, err := d.cache.Designer(ch).RedesignCtx(ctx, opts); err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return Outcome{Class: OutcomeTimeout, Detail: err.Error()}
		}
		return Outcome{Class: OutcomeFailed, Detail: err.Error()}
	}
	return Outcome{Class: OutcomeOK}
}

// chip returns the shared prototype chip for a shape. Prototypes are
// cached so every request for a shape resolves to one *Chip — the
// design cache keys structurally anyway, this just skips rebuilding.
func (d *LibraryDriver) chip(topology string, qubits int) (*youtiao.Chip, error) {
	key := chipShape{topology: topology, qubits: qubits}
	d.mu.Lock()
	defer d.mu.Unlock()
	if ch, ok := d.chips[key]; ok {
		return ch, nil
	}
	ch, err := youtiao.NewChip(topology, qubits)
	if err != nil {
		return nil, err
	}
	d.chips[key] = ch
	return ch, nil
}

// CacheSummary implements CacheSummarizer with the shared store's
// cumulative per-stage counters. Hand Run a fresh cache per run to make
// this the run's own traffic.
func (d *LibraryDriver) CacheSummary() *CacheSummary {
	rep := d.cache.StageReport()
	cs := &CacheSummary{Hits: rep.Hits, Misses: rep.Misses, DiskHits: rep.DiskHits}
	if total := cs.Hits + cs.DiskHits + cs.Misses; total > 0 {
		cs.HitRate = float64(cs.Hits+cs.DiskHits) / float64(total)
	}
	return cs
}

// ServerDriver runs request events against a live youtiao-serve
// endpoint over HTTP, carrying the tenant id on the X-Client-ID header
// so the server's fairness accounting sees the trace's clients.
type ServerDriver struct {
	base   string
	client *http.Client
	// timeoutMs, when positive, rides on every request body as its
	// design deadline (the server clamps to its own RequestTimeout).
	timeoutMs int64
}

// NewServerDriver returns a driver posting to baseURL (e.g.
// "http://127.0.0.1:8080"). requestTimeout bounds each HTTP exchange
// and, when positive, is also sent as the request's design deadline.
func NewServerDriver(baseURL string, requestTimeout time.Duration) *ServerDriver {
	d := &ServerDriver{
		base:   baseURL,
		client: &http.Client{Timeout: requestTimeout},
	}
	if requestTimeout > 0 {
		d.timeoutMs = requestTimeout.Milliseconds()
	}
	return d
}

// Design implements Driver.
func (d *ServerDriver) Design(ctx context.Context, ev Event) Outcome {
	body := serve.DesignRequest{
		Topology:    ev.Topology,
		Qubits:      ev.Qubits,
		Seed:        ev.Seed,
		Theta:       ev.Theta,
		FDMCapacity: ev.FDMCapacity,
		AnnealSteps: ev.AnnealSteps,
		DefectRate:  ev.DefectRate,
		TimeoutMs:   d.timeoutMs,
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return Outcome{Class: OutcomeBadRequest, Detail: err.Error()}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, d.base+"/v1/design", bytes.NewReader(payload))
	if err != nil {
		return Outcome{Class: OutcomeTransport, Detail: err.Error()}
	}
	req.Header.Set("Content-Type", "application/json")
	if ev.Client != "" {
		req.Header.Set(serve.ClientIDHeader, ev.Client)
	}
	resp, err := d.client.Do(req)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return Outcome{Class: OutcomeTimeout, Detail: err.Error()}
		}
		return Outcome{Class: OutcomeTransport, Detail: err.Error()}
	}
	// Drain so the connection is reusable; the design body itself is
	// not the harness's concern.
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	return Outcome{Class: classifyStatus(resp.StatusCode), Detail: statusDetail(resp.StatusCode)}
}

// classifyStatus maps the serving contract's status codes onto outcome
// classes (see DESIGN.md, "The serving contract").
func classifyStatus(code int) string {
	switch {
	case code == http.StatusOK:
		return OutcomeOK
	case code == http.StatusTooManyRequests, code == http.StatusServiceUnavailable:
		return OutcomeShed
	case code == http.StatusBadRequest:
		return OutcomeBadRequest
	case code == http.StatusGatewayTimeout:
		return OutcomeTimeout
	default:
		return OutcomeFailed
	}
}

func statusDetail(code int) string {
	if code == http.StatusOK {
		return ""
	}
	return fmt.Sprintf("http %d", code)
}
