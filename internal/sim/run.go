package sim

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Driver executes one materialized request event against a target and
// classifies the result. Implementations must be safe for concurrent
// calls; Run dispatches from RunConfig.Workers goroutines.
type Driver interface {
	Design(ctx context.Context, ev Event) Outcome
}

// CacheSummarizer is implemented by drivers that can report the
// artifact-cache traffic of the run (the library driver). Run attaches
// the report to Summary.Cache when available.
type CacheSummarizer interface {
	CacheSummary() *CacheSummary
}

// RunConfig tunes a Run.
type RunConfig struct {
	// Workers is the dispatch concurrency (default 1). The summary's
	// deterministic section is identical at any value; only Timing
	// changes.
	Workers int
	// Pace maps virtual time onto wall time when positive: requests are
	// dispatched no earlier than AtNs/Pace after the run started, so
	// Pace=1 replays in real time and Pace=10 replays 10x faster.
	// Zero (the default) dispatches as fast as the target accepts —
	// the virtual clock keeps the trace deterministic either way, so
	// pacing is purely a load-shaping knob for live targets.
	Pace float64
}

// Run dispatches a trace's request events against a driver and folds
// the outcomes into a Summary. Requests are dispatched in trace order
// from a bounded worker pool; each outcome is recorded at its event's
// sequence slot, so the summary's deterministic section is a pure
// function of (trace, driver) — the dispatch interleaving only moves
// wall-clock numbers. Defect events are counted, never dispatched:
// requests already carry their materialized defect rate.
//
// A context cancellation or deadline aborts the run with the context's
// error once in-flight requests finish.
func Run(ctx context.Context, t *Trace, d Driver, cfg RunConfig) (*Summary, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if d == nil {
		return nil, fmt.Errorf("sim: nil driver")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	if cfg.Pace < 0 {
		return nil, fmt.Errorf("sim: pace %g must be >= 0", cfg.Pace)
	}

	outcomes := make([]Outcome, len(t.Events))
	hist := obs.New().Histogram("sim/request_latency")
	start := time.Now()

	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				t0 := time.Now()
				outcomes[i] = d.Design(ctx, t.Events[i])
				hist.Observe(time.Since(t0))
			}
		}()
	}

	var runErr error
dispatch:
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.Kind != KindRequest {
			continue
		}
		if cfg.Pace > 0 {
			due := start.Add(time.Duration(float64(ev.AtNs) / cfg.Pace))
			if wait := time.Until(due); wait > 0 {
				timer := time.NewTimer(wait)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
					runErr = ctx.Err()
					break dispatch
				}
			}
		}
		select {
		case idxCh <- i:
		case <-ctx.Done():
			runErr = ctx.Err()
			break dispatch
		}
	}
	close(idxCh)
	wg.Wait()
	if runErr != nil {
		return nil, fmt.Errorf("sim: run aborted: %w", runErr)
	}

	s := summarize(t, outcomes, time.Since(start), hist)
	if cs, ok := d.(CacheSummarizer); ok {
		s.Cache = cs.CacheSummary()
	}
	return s, nil
}
