package sim

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// Outcome classes. Every dispatched request ends in exactly one class;
// the summary's Outcomes map counts them. The library and server
// drivers map onto the same classes (an HTTP 429 and an admission shed
// are both OutcomeShed), so summaries from the two targets are
// comparable row for row.
const (
	// OutcomeOK is a completed design.
	OutcomeOK = "ok"
	// OutcomeShed is a request dropped by admission control (HTTP 429)
	// or refused by a draining server (503).
	OutcomeShed = "shed"
	// OutcomeBadRequest is a request the target rejected as malformed
	// (HTTP 400): in a generated trace this indicates a schema drift
	// between simulator and server, never expected load behavior.
	OutcomeBadRequest = "bad_request"
	// OutcomeTimeout is a design that exceeded its deadline (HTTP 504).
	OutcomeTimeout = "timeout"
	// OutcomeFailed is a design the pipeline could not complete (HTTP
	// 422/500): e.g. too many defects to group.
	OutcomeFailed = "failed"
	// OutcomeTransport is a request that never got an HTTP response
	// (connection refused, reset). Server driver only.
	OutcomeTransport = "transport"
)

// Outcome is one dispatched request's result.
type Outcome struct {
	// Class is one of the Outcome* constants.
	Class string `json:"class"`
	// Detail carries the error text of a non-OK outcome. Purely
	// diagnostic: it never enters the summary, which must stay
	// identical across targets whose error renderings differ.
	Detail string `json:"detail,omitempty"`
}

// ClientSummary is one tenant's completion accounting in a summary.
type ClientSummary struct {
	// Requests counts the tenant's dispatched requests.
	Requests int `json:"requests"`
	// OK, Shed and Errors partition Requests by outcome (Errors folds
	// every class other than ok and shed).
	OK     int `json:"ok"`
	Shed   int `json:"shed"`
	Errors int `json:"errors"`
}

// CacheSummary is the artifact-cache traffic a run induced, from the
// shared store's per-stage counters. For an unbounded memory-tier
// cache these counts are deterministic at any dispatch worker count:
// per artifact key the first Do executes (one miss) and every other
// caller — concurrent single-flight waiters included — counts a hit.
// Failed executions are never cached, so a workload whose designs fail
// forfeits this invariance (see DESIGN.md, "The workload contract").
type CacheSummary struct {
	Hits     int `json:"hits"`
	Misses   int `json:"misses"`
	DiskHits int `json:"diskHits,omitempty"`
	// HitRate is (Hits+DiskHits) / (Hits+DiskHits+Misses).
	HitRate float64 `json:"hitRate"`
}

// Timing is the wall-clock section of a summary: real throughput and
// latency quantiles off the run's obs histogram. Never deterministic —
// StripTimings removes it, and nothing in CI gates on it.
type Timing struct {
	// WallMs is the run's total wall time.
	WallMs float64 `json:"wallMs"`
	// ThroughputRPS is completed (ok) requests per wall second.
	ThroughputRPS float64 `json:"throughputRps"`
	// Latency quantiles of the per-request dispatch latency.
	LatencyP50Ms float64 `json:"latencyP50Ms"`
	LatencyP95Ms float64 `json:"latencyP95Ms"`
	LatencyP99Ms float64 `json:"latencyP99Ms"`
}

// Summary is a run's report. Everything outside Timing is the
// deterministic section: a pure function of (trace, driver semantics),
// bit-identical at any dispatch worker count, which is what the golden
// summary fixtures and the CI workload-smoke gate compare. Timing is
// wall-clock truth about this particular run.
type Summary struct {
	// Workload, Seed and Schema identify the trace that was run.
	Workload string `json:"workload"`
	Seed     int64  `json:"seed"`
	Schema   int    `json:"schema"`
	// Events/Requests/Defects count the trace's timeline.
	Events   int `json:"events"`
	Requests int `json:"requests"`
	Defects  int `json:"defects"`
	// Outcomes counts dispatched requests by outcome class; only
	// classes that occurred appear (keys marshal sorted).
	Outcomes map[string]int `json:"outcomes"`
	// Clients is the per-tenant completion accounting.
	Clients map[string]ClientSummary `json:"clients"`
	// Fairness is the max/min ratio of per-tenant completed (ok)
	// requests — 1.0 is perfectly fair, 2.0 means the best-served
	// tenant completed twice the worst-served one's requests. 0 when
	// undefined (some tenant completed nothing).
	Fairness float64 `json:"fairness"`
	// Cache is the artifact-cache traffic (library driver only; a
	// remote server's cache is shared state the run cannot attribute).
	Cache *CacheSummary `json:"cache,omitempty"`
	// Timing is the wall-clock section; nil after StripTimings.
	Timing *Timing `json:"timing,omitempty"`
}

// StripTimings returns the summary reduced to its deterministic
// section — the repo-wide convention (obs snapshots, manifests) for
// splitting reproducible facts from wall-clock ones.
func (s Summary) StripTimings() Summary {
	s.Timing = nil
	return s
}

// JSON renders the summary as indented, key-sorted JSON with a
// trailing newline — the committed fixture format.
func (s Summary) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Text renders a human-readable report.
func (s Summary) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload %s (seed %d, schema v%d): %d events = %d requests + %d defects\n",
		s.Workload, s.Seed, s.Schema, s.Events, s.Requests, s.Defects)
	classes := make([]string, 0, len(s.Outcomes))
	for c := range s.Outcomes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	b.WriteString("outcomes:")
	for _, c := range classes {
		fmt.Fprintf(&b, " %s=%d", c, s.Outcomes[c])
	}
	b.WriteByte('\n')
	ids := make([]string, 0, len(s.Clients))
	for id := range s.Clients {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		cs := s.Clients[id]
		fmt.Fprintf(&b, "  client %-16s requests=%-4d ok=%-4d shed=%-4d errors=%d\n",
			id, cs.Requests, cs.OK, cs.Shed, cs.Errors)
	}
	if s.Fairness > 0 {
		fmt.Fprintf(&b, "fairness (max/min completed): %.2fx\n", s.Fairness)
	} else {
		b.WriteString("fairness: undefined (a tenant completed no requests)\n")
	}
	if s.Cache != nil {
		fmt.Fprintf(&b, "cache: %d hits, %d misses", s.Cache.Hits, s.Cache.Misses)
		if s.Cache.DiskHits > 0 {
			fmt.Fprintf(&b, ", %d disk hits", s.Cache.DiskHits)
		}
		fmt.Fprintf(&b, " (hit rate %.2f)\n", s.Cache.HitRate)
	}
	if s.Timing != nil {
		fmt.Fprintf(&b, "timing: wall %.0fms, %.2f req/s, latency p50=%.1fms p95=%.1fms p99=%.1fms\n",
			s.Timing.WallMs, s.Timing.ThroughputRPS,
			s.Timing.LatencyP50Ms, s.Timing.LatencyP95Ms, s.Timing.LatencyP99Ms)
	}
	return b.String()
}

// summarize folds a run's outcome vector into a Summary. outcomes is
// indexed by event Seq (defect events hold the zero Outcome); order of
// aggregation is the trace order, so the result is independent of the
// dispatch interleaving that produced the vector.
func summarize(t *Trace, outcomes []Outcome, wall time.Duration, hist *obs.Histogram) *Summary {
	s := &Summary{
		Workload: t.Header.Workload,
		Seed:     t.Header.Seed,
		Schema:   t.Header.Schema,
		Events:   len(t.Events),
		Outcomes: make(map[string]int),
		Clients:  make(map[string]ClientSummary),
	}
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.Kind == KindDefect {
			s.Defects++
			continue
		}
		s.Requests++
		o := outcomes[i]
		s.Outcomes[o.Class]++
		cs := s.Clients[ev.Client]
		cs.Requests++
		switch o.Class {
		case OutcomeOK:
			cs.OK++
		case OutcomeShed:
			cs.Shed++
		default:
			cs.Errors++
		}
		s.Clients[ev.Client] = cs
	}
	s.Fairness = fairness(s.Clients)

	hs := hist.Snapshot()
	tm := &Timing{WallMs: float64(wall.Microseconds()) / 1000}
	if wall > 0 {
		tm.ThroughputRPS = float64(s.Outcomes[OutcomeOK]) / wall.Seconds()
	}
	tm.LatencyP50Ms = float64(hs.P50Ns) / 1e6
	tm.LatencyP95Ms = float64(hs.P95Ns) / 1e6
	tm.LatencyP99Ms = float64(hs.P99Ns) / 1e6
	s.Timing = tm
	return s
}

// fairness returns the max/min ratio of per-tenant completions, 0 when
// undefined (no tenants, or a tenant with zero completions — an
// infinite ratio has no JSON rendering, and "someone got nothing" is a
// louder signal than any finite number).
func fairness(clients map[string]ClientSummary) float64 {
	minOK, maxOK := -1, 0
	for _, cs := range clients {
		if cs.OK > maxOK {
			maxOK = cs.OK
		}
		if minOK < 0 || cs.OK < minOK {
			minOK = cs.OK
		}
	}
	if minOK <= 0 {
		return 0
	}
	return float64(maxOK) / float64(minOK)
}
