package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mustGenerate expands a builtin spec under the golden seed.
func mustGenerate(t *testing.T, workload string, seed int64) *Trace {
	t.Helper()
	spec, err := BuiltinSpec(workload)
	if err != nil {
		t.Fatalf("BuiltinSpec(%q): %v", workload, err)
	}
	tr, err := Generate(spec, seed)
	if err != nil {
		t.Fatalf("Generate(%q, %d): %v", workload, seed, err)
	}
	return tr
}

// TestRecordReplayByteIdentity: Record∘Replay is a fixed point — the
// schema contract. Replaying a recorded trace and re-recording it must
// reproduce the file byte for byte, for every builtin workload.
func TestRecordReplayByteIdentity(t *testing.T) {
	for _, name := range BuiltinNames() {
		t.Run(name, func(t *testing.T) {
			tr := mustGenerate(t, name, 7)
			first, err := tr.RecordBytes()
			if err != nil {
				t.Fatalf("RecordBytes: %v", err)
			}
			replayed, err := Replay(bytes.NewReader(first))
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			second, err := replayed.RecordBytes()
			if err != nil {
				t.Fatalf("re-RecordBytes: %v", err)
			}
			if !bytes.Equal(first, second) {
				t.Fatalf("Record∘Replay is not a fixed point:\n--- first\n%s--- second\n%s", first, second)
			}
			if replayed.Header != tr.Header {
				t.Fatalf("header drifted: %+v != %+v", replayed.Header, tr.Header)
			}
		})
	}
}

// TestGenerateDeterministic: two Generate calls with the same (spec,
// seed) are byte-identical, and a different seed is not.
func TestGenerateDeterministic(t *testing.T) {
	a, err := mustGenerate(t, "defect-storm", 42).RecordBytes()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mustGenerate(t, "defect-storm", 42).RecordBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same (spec, seed) generated different traces")
	}
	c, err := mustGenerate(t, "defect-storm", 43).RecordBytes()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds generated identical traces")
	}
}

// TestGoldenTracesUpToDate: the committed golden traces are exactly
// what this build generates from the builtin specs at seed 1. If this
// fails, the generator or a builtin spec changed: regenerate with
//
//	go run ./cmd/youtiao-load -workload NAME -seed 1 -record traces/NAME.jsonl
//
// and refresh the matching .summary.json fixture in the same commit.
func TestGoldenTracesUpToDate(t *testing.T) {
	for _, name := range BuiltinNames() {
		t.Run(name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("..", "..", "traces", name+".jsonl"))
			if err != nil {
				t.Fatalf("read golden trace: %v", err)
			}
			got, err := mustGenerate(t, name, 1).RecordBytes()
			if err != nil {
				t.Fatalf("RecordBytes: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("golden trace %s.jsonl is stale: regenerate it (and its summary fixture)", name)
			}
		})
	}
}

// TestReplayRejects: the strict parser refuses schema drift, count
// mismatches, unknown fields and disorder.
func TestReplayRejects(t *testing.T) {
	valid, err := mustGenerate(t, "steady-state", 1).RecordBytes()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(valid), "\n"), "\n")

	cases := []struct {
		name  string
		input string
		want  string
	}{
		{"empty", "", "empty trace"},
		{"bad schema", `{"schema":99,"workload":"x","seed":1,"durationNs":1,"events":0}` + "\n", "schema 99"},
		{"unknown header field", `{"schema":1,"workload":"x","seed":1,"durationNs":1,"events":0,"extra":1}` + "\n", "unknown field"},
		{"count mismatch", lines[0], "declares"},
		{"unknown event field", lines[0] + `{"seq":0,"atNs":1,"kind":"request","client":"c","chip":"a","topology":"square","qubits":4,"bogus":1}` + "\n" + strings.Join(lines[2:], ""), "unknown field"},
		{"out of order", lines[0] + lines[2] + lines[1] + strings.Join(lines[3:], ""), "seq"},
		{"blank line", lines[0] + "\n" + strings.Join(lines[1:], ""), "blank line"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Replay(strings.NewReader(tc.input))
			if err == nil {
				t.Fatal("Replay accepted a malformed trace")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateRejectsBadEvents: structural invariants on the in-memory
// form, independent of the parser.
func TestValidateRejectsBadEvents(t *testing.T) {
	base := func() *Trace {
		return &Trace{
			Header: Header{Schema: SchemaVersion, Workload: "w", Seed: 1, DurationNs: 1e9, Events: 1},
			Events: []Event{{Seq: 0, AtNs: 5, Kind: KindRequest, Client: "c", Chip: "a", Topology: "square", Qubits: 4}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"request without client", func(t *Trace) { t.Events[0].Client = "" }},
		{"defect with client", func(t *Trace) { t.Events[0].Kind = KindDefect }},
		{"unknown kind", func(t *Trace) { t.Events[0].Kind = "explosion" }},
		{"qubits too small", func(t *Trace) { t.Events[0].Qubits = 1 }},
		{"defect rate out of range", func(t *Trace) { t.Events[0].DefectRate = 1 }},
		{"negative anneal", func(t *Trace) { t.Events[0].AnnealSteps = -1 }},
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base trace invalid: %v", err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := base()
			tc.mutate(tr)
			if err := tr.Validate(); err == nil {
				t.Fatal("Validate accepted a bad trace")
			}
		})
	}
}
