package sim

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	youtiao "repro"
	"repro/internal/serve"
)

// TestServerDriverClassification: every status code of the serving
// contract maps onto its outcome class, and a dead endpoint is a
// transport outcome.
func TestServerDriverClassification(t *testing.T) {
	cases := []struct {
		status int
		want   string
	}{
		{http.StatusOK, OutcomeOK},
		{http.StatusTooManyRequests, OutcomeShed},
		{http.StatusServiceUnavailable, OutcomeShed},
		{http.StatusBadRequest, OutcomeBadRequest},
		{http.StatusGatewayTimeout, OutcomeTimeout},
		{http.StatusUnprocessableEntity, OutcomeFailed},
		{http.StatusInternalServerError, OutcomeFailed},
	}
	var status int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(status)
	}))
	defer srv.Close()
	d := NewServerDriver(srv.URL, time.Second)
	ev := Event{Kind: KindRequest, Client: "t", Chip: "a", Topology: "square", Qubits: 4}
	for _, tc := range cases {
		status = tc.status
		if got := d.Design(context.Background(), ev); got.Class != tc.want {
			t.Errorf("status %d -> %q, want %q", tc.status, got.Class, tc.want)
		}
	}

	srv.Close()
	if got := d.Design(context.Background(), ev); got.Class != OutcomeTransport {
		t.Errorf("dead endpoint -> %q, want %q", got.Class, OutcomeTransport)
	}
}

// TestServerDriverRequestShape: the driver posts the event's
// materialized options as a serve.DesignRequest and carries the tenant
// id on the X-Client-ID header.
func TestServerDriverRequestShape(t *testing.T) {
	var (
		mu     sync.Mutex
		gotReq serve.DesignRequest
		gotID  string
	)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		gotID = r.Header.Get(serve.ClientIDHeader)
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&gotReq); err != nil {
			t.Errorf("request body does not decode as DesignRequest: %v", err)
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	theta := 2.5
	ev := Event{
		Kind: KindRequest, Client: "tenant-alpha", Chip: "fab-a",
		Topology: "hexagon", Qubits: 12, Seed: 5,
		Theta: &theta, FDMCapacity: 3, AnnealSteps: 40, DefectRate: 0.01,
	}
	d := NewServerDriver(srv.URL, 2*time.Second)
	if got := d.Design(context.Background(), ev); got.Class != OutcomeOK {
		t.Fatalf("Design = %+v", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if gotID != "tenant-alpha" {
		t.Errorf("%s header = %q", serve.ClientIDHeader, gotID)
	}
	if gotReq.Topology != "hexagon" || gotReq.Qubits != 12 || gotReq.Seed != 5 {
		t.Errorf("chip fields drifted: %+v", gotReq)
	}
	if gotReq.Theta == nil || *gotReq.Theta != theta {
		t.Errorf("theta = %v, want %g", gotReq.Theta, theta)
	}
	if gotReq.FDMCapacity != 3 || gotReq.AnnealSteps != 40 || gotReq.DefectRate != 0.01 {
		t.Errorf("option fields drifted: %+v", gotReq)
	}
	if gotReq.TimeoutMs != 2000 {
		t.Errorf("timeoutMs = %d, want 2000", gotReq.TimeoutMs)
	}
}

// TestLibraryDriverMirrorsServe: one trace run against the library
// driver and against an in-process serve handler lands every request in
// the same outcome class (the cross-target comparability contract).
func TestLibraryDriverMirrorsServe(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-target replay in -short mode")
	}
	tr := mustGenerate(t, "steady-state", 3)

	lib := NewLibraryDriver(youtiao.NewSharedCache(youtiao.CacheConfig{}), 1)
	libSum, err := Run(context.Background(), tr, lib, RunConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	hs, err := serve.New(serve.Config{MaxInFlight: 4, RequestTimeout: time.Minute, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	web := httptest.NewServer(hs.Handler())
	defer web.Close()
	srvSum, err := Run(context.Background(), tr, NewServerDriver(web.URL, time.Minute), RunConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	if libSum.Outcomes[OutcomeOK] != len(tr.Events) || srvSum.Outcomes[OutcomeOK] != len(tr.Events) {
		t.Fatalf("outcome classes diverged: library %v, server %v", libSum.Outcomes, srvSum.Outcomes)
	}

	// The server's per-tenant accounting saw the trace's clients.
	stats := hs.ClientStats()
	for id, cs := range libSum.Clients {
		if stats[id].OK != int64(cs.OK) {
			t.Errorf("server tallied %d ok for %s, trace completed %d", stats[id].OK, id, cs.OK)
		}
	}
}
