package sim

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	youtiao "repro"
)

// scriptDriver classifies each request by a pure function of the event,
// so any dispatch interleaving must fold to the same summary.
type scriptDriver struct{}

func (scriptDriver) Design(_ context.Context, ev Event) Outcome {
	switch {
	case ev.Seq%7 == 3:
		return Outcome{Class: OutcomeShed, Detail: "scripted"}
	case ev.Seq%11 == 5:
		return Outcome{Class: OutcomeFailed, Detail: "scripted"}
	default:
		return Outcome{Class: OutcomeOK}
	}
}

// TestRunWorkerInvariance: the deterministic section of the summary is
// identical at any worker count — the property the golden fixtures and
// the CI gate rely on.
func TestRunWorkerInvariance(t *testing.T) {
	tr := mustGenerate(t, "defect-storm", 9)
	var base Summary
	for i, workers := range []int{1, 2, 4, 8} {
		sum, err := Run(context.Background(), tr, scriptDriver{}, RunConfig{Workers: workers})
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		if sum.Timing == nil {
			t.Fatalf("Run(workers=%d): missing timing section", workers)
		}
		det := sum.StripTimings()
		if i == 0 {
			base = det
			continue
		}
		if !reflect.DeepEqual(det, base) {
			t.Fatalf("workers=%d deterministic summary differs:\n%+v\n%+v", workers, det, base)
		}
	}
	if base.Requests+base.Defects != base.Events {
		t.Fatalf("event accounting broken: %+v", base)
	}
	if base.Outcomes[OutcomeShed] == 0 || base.Outcomes[OutcomeFailed] == 0 {
		t.Fatalf("script outcomes missing: %+v", base.Outcomes)
	}
}

// TestRunLibraryGoldenFixtures is the acceptance gate in miniature:
// replay each committed golden trace through the library driver at
// workers 1 and 4 and require the deterministic summary to match the
// committed fixture byte for byte.
func TestRunLibraryGoldenFixtures(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden replay in -short mode")
	}
	for _, name := range BuiltinNames() {
		t.Run(name, func(t *testing.T) {
			tr, err := ReplayFile(filepath.Join("..", "..", "traces", name+".jsonl"))
			if err != nil {
				t.Fatalf("replay golden trace: %v", err)
			}
			want, err := os.ReadFile(filepath.Join("..", "..", "traces", name+".summary.json"))
			if err != nil {
				t.Fatalf("read summary fixture: %v", err)
			}
			for _, workers := range []int{1, 4} {
				d := NewLibraryDriver(youtiao.NewSharedCache(youtiao.CacheConfig{}), 1)
				sum, err := Run(context.Background(), tr, d, RunConfig{Workers: workers})
				if err != nil {
					t.Fatalf("Run(workers=%d): %v", workers, err)
				}
				got, err := sum.StripTimings().JSON()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("workers=%d summary drifted from fixture:\n--- fixture\n%s--- got\n%s", workers, want, got)
				}
			}
		})
	}
}

// TestRunPaceRespectsVirtualTime: with pacing on, a request timestamped
// deep into virtual time is not dispatched before its wall due time.
func TestRunPaceRespectsVirtualTime(t *testing.T) {
	tr := &Trace{
		Header: Header{Schema: SchemaVersion, Workload: "pace", Seed: 1, DurationNs: 2e9, Events: 2},
		Events: []Event{
			{Seq: 0, AtNs: 0, Kind: KindRequest, Client: "c", Chip: "a", Topology: "square", Qubits: 4},
			{Seq: 1, AtNs: 1e9, Kind: KindRequest, Client: "c", Chip: "a", Topology: "square", Qubits: 4},
		},
	}
	// Pace 100x: the 1s-virtual event is due at 10ms wall.
	sum, err := Run(context.Background(), tr, scriptDriver{}, RunConfig{Workers: 2, Pace: 100})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Timing.WallMs < 10 {
		t.Fatalf("paced run finished in %.1fms, before the last event's 10ms due time", sum.Timing.WallMs)
	}
}

// TestRunCancellation: a canceled context aborts the run with an error
// rather than returning a partial summary.
func TestRunCancellation(t *testing.T) {
	tr := mustGenerate(t, "steady-state", 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, tr, scriptDriver{}, RunConfig{Workers: 2, Pace: 0.001}); err == nil {
		t.Fatal("Run returned a summary under a canceled context")
	}
}

// TestRunRejectsBadInput: nil driver, invalid trace, negative pace.
func TestRunRejectsBadInput(t *testing.T) {
	tr := mustGenerate(t, "steady-state", 1)
	if _, err := Run(context.Background(), tr, nil, RunConfig{}); err == nil {
		t.Fatal("nil driver accepted")
	}
	if _, err := Run(context.Background(), tr, scriptDriver{}, RunConfig{Pace: -1}); err == nil {
		t.Fatal("negative pace accepted")
	}
	bad := &Trace{Header: Header{Schema: 99}}
	if _, err := Run(context.Background(), bad, scriptDriver{}, RunConfig{}); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

// TestFairness: the max/min completion ratio, with 0 for the undefined
// starved case.
func TestFairness(t *testing.T) {
	cases := []struct {
		clients map[string]ClientSummary
		want    float64
	}{
		{map[string]ClientSummary{}, 0},
		{map[string]ClientSummary{"a": {OK: 4}}, 1},
		{map[string]ClientSummary{"a": {OK: 4}, "b": {OK: 2}}, 2},
		{map[string]ClientSummary{"a": {OK: 4}, "b": {OK: 0}}, 0},
	}
	for i, tc := range cases {
		if got := fairness(tc.clients); got != tc.want {
			t.Errorf("case %d: fairness = %g, want %g", i, got, tc.want)
		}
	}
}

// TestSummaryTextRendersAllSections: the human report mentions every
// populated section (smoke, not golden — the text format may evolve).
func TestSummaryTextRendersAllSections(t *testing.T) {
	sum, err := Run(context.Background(), mustGenerate(t, "defect-storm", 9), scriptDriver{}, RunConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sum.Cache = &CacheSummary{Hits: 3, Misses: 1, HitRate: 0.75}
	text := sum.Text()
	for _, want := range []string{"defect-storm", "outcomes:", "client", "fairness", "cache:", "timing:"} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Fatalf("Text() missing %q:\n%s", want, text)
		}
	}
	if testing.Verbose() {
		fmt.Print(text)
	}
}
