package sim

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzTraceDecode holds the strict parser to its fixed-point contract
// on arbitrary input: whatever Replay accepts, Record must re-serialize
// to bytes that Replay parses back to the same trace — and re-recording
// that trace reproduces the bytes exactly. A decoder that silently
// drops, reorders or reinterprets anything breaks the loop and the
// committed golden traces stop being trustworthy fixtures.
func FuzzTraceDecode(f *testing.F) {
	for _, name := range BuiltinNames() {
		spec, err := BuiltinSpec(name)
		if err != nil {
			f.Fatal(err)
		}
		tr, err := Generate(spec, 1)
		if err != nil {
			f.Fatal(err)
		}
		data, err := tr.RecordBytes()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"schema":1,"workload":"w","seed":1,"durationNs":1000,"events":1}` + "\n" +
		`{"seq":0,"atNs":3,"kind":"defect","chip":"a","topology":"square","qubits":4,"defectRate":0.5}` + "\n"))
	f.Add([]byte(`{"schema":1}`))
	f.Add([]byte("{}\n{}\n"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		t1, err := Replay(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; crashing or accepting junk is not
		}
		b1, err := t1.RecordBytes()
		if err != nil {
			t.Fatalf("accepted trace does not record: %v", err)
		}
		t2, err := Replay(bytes.NewReader(b1))
		if err != nil {
			t.Fatalf("recorded trace does not replay: %v\n%s", err, b1)
		}
		if !reflect.DeepEqual(t1, t2) {
			t.Fatalf("Replay∘Record changed the trace:\n%+v\n%+v", t1, t2)
		}
		b2, err := t2.RecordBytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("Record is not a fixed point:\n%s\n%s", b1, b2)
		}
	})
}
