package sim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/faults"
)

// SchemaVersion is the trace format version. Replay rejects any other
// version outright: a trace is a regression fixture, and silently
// reinterpreting an old fixture under new semantics would turn the CI
// gate into noise. Bump it when the Event schema or its ordering
// contract changes, and regenerate the committed golden traces in the
// same commit.
const SchemaVersion = 1

// Event kinds.
const (
	// KindRequest is one tenant's design request, fully materialized:
	// the target chip, the concrete design options and the chip's
	// defect rate as of the event's virtual time.
	KindRequest = "request"
	// KindDefect marks a churn point: the named chip's defect rate was
	// re-drawn by its drift process. Defect events are counted, not
	// dispatched — requests already carry the materialized rate — but
	// they stay in the trace so replay tooling can see *why* the
	// workload went cold at a timestamp.
	KindDefect = "defect"
)

// Event is one entry of a trace's totally ordered timeline. The JSON
// field order is the canonical line layout of the trace format;
// Record emits exactly this order, and Record∘Replay is byte-identity.
type Event struct {
	// Seq is the event's position in the trace (0-based, dense).
	Seq int64 `json:"seq"`
	// AtNs is the event's virtual timestamp in nanoseconds from the
	// start of the workload. Non-decreasing across the trace.
	AtNs int64 `json:"atNs"`
	// Kind is KindRequest or KindDefect.
	Kind string `json:"kind"`
	// Client is the issuing tenant's id (requests only).
	Client string `json:"client,omitempty"`
	// Chip names the target chip of the fleet.
	Chip string `json:"chip"`
	// Topology and Qubits describe the chip (denormalized onto every
	// event so a driver needs no side table).
	Topology string `json:"topology"`
	Qubits   int    `json:"qubits"`
	// Seed is the design seed of a request.
	Seed int64 `json:"seed,omitempty"`
	// Theta, FDMCapacity and AnnealSteps are the request's design
	// options (requests only; nil/zero = pipeline default).
	Theta       *float64 `json:"theta,omitempty"`
	FDMCapacity int      `json:"fdmCapacity,omitempty"`
	AnnealSteps int      `json:"annealSteps,omitempty"`
	// DefectRate is, on a request, the chip's uniform defect rate as of
	// AtNs; on a defect event, the re-drawn rate the chip moved to.
	DefectRate float64 `json:"defectRate,omitempty"`

	// srcIdx orders simultaneous events from distinct sources during
	// generation; it is not part of the trace format.
	srcIdx int
}

// Header is the first line of a trace: schema version, provenance and
// the event count Replay verifies against the body.
type Header struct {
	Schema     int    `json:"schema"`
	Workload   string `json:"workload"`
	Seed       int64  `json:"seed"`
	DurationNs int64  `json:"durationNs"`
	Events     int    `json:"events"`
}

// Trace is one recorded workload: a header and its totally ordered
// event sequence.
type Trace struct {
	Header Header
	Events []Event
}

// Requests counts the trace's request events.
func (t *Trace) Requests() int { return t.countKind(KindRequest) }

// Defects counts the trace's defect events.
func (t *Trace) Defects() int { return t.countKind(KindDefect) }

func (t *Trace) countKind(kind string) int {
	n := 0
	for i := range t.Events {
		if t.Events[i].Kind == kind {
			n++
		}
	}
	return n
}

// Validate checks the trace's structural invariants — the same rules
// Replay enforces on a parsed file, shared so a generated trace and a
// decoded one are held to one contract.
func (t *Trace) Validate() error {
	if t == nil {
		return fmt.Errorf("sim: nil trace")
	}
	h := t.Header
	if h.Schema != SchemaVersion {
		return fmt.Errorf("sim: trace schema %d, this build reads %d", h.Schema, SchemaVersion)
	}
	if h.Workload == "" {
		return fmt.Errorf("sim: trace header has no workload name")
	}
	if h.DurationNs <= 0 {
		return fmt.Errorf("sim: trace duration %d must be positive", h.DurationNs)
	}
	if h.Events != len(t.Events) {
		return fmt.Errorf("sim: header declares %d events, trace has %d", h.Events, len(t.Events))
	}
	prev := int64(0)
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.Seq != int64(i) {
			return fmt.Errorf("sim: event %d has seq %d", i, ev.Seq)
		}
		if ev.AtNs < prev {
			return fmt.Errorf("sim: event %d at %dns precedes event %d at %dns", i, ev.AtNs, i-1, prev)
		}
		prev = ev.AtNs
		if ev.Chip == "" {
			return fmt.Errorf("sim: event %d has no chip", i)
		}
		if ev.Topology == "" {
			return fmt.Errorf("sim: event %d has no topology", i)
		}
		if ev.Qubits < 2 {
			return fmt.Errorf("sim: event %d qubits %d must be >= 2", i, ev.Qubits)
		}
		if !faults.ValidRate(ev.DefectRate) {
			return fmt.Errorf("sim: event %d defect rate %g outside [0,1)", i, ev.DefectRate)
		}
		switch ev.Kind {
		case KindRequest:
			if ev.Client == "" {
				return fmt.Errorf("sim: request event %d has no client", i)
			}
			if ev.Theta != nil && (math.IsNaN(*ev.Theta) || math.IsInf(*ev.Theta, 0)) {
				return fmt.Errorf("sim: request event %d has non-finite theta", i)
			}
			if ev.FDMCapacity < 0 {
				return fmt.Errorf("sim: request event %d fdm capacity %d must be >= 0", i, ev.FDMCapacity)
			}
			if ev.AnnealSteps < 0 {
				return fmt.Errorf("sim: request event %d anneal steps %d must be >= 0", i, ev.AnnealSteps)
			}
		case KindDefect:
			if ev.Client != "" {
				return fmt.Errorf("sim: defect event %d carries client %q", i, ev.Client)
			}
		default:
			return fmt.Errorf("sim: event %d has unknown kind %q", i, ev.Kind)
		}
	}
	return nil
}

// Record serializes the trace as versioned JSONL: the header line
// followed by one compact JSON object per event. The encoding is
// canonical — field order is the Event struct order, zero-valued
// optional fields are omitted — so Record(Replay(Record(t))) is
// byte-identical to Record(t), which is the schema contract the fuzz
// target and the golden-trace tests hold the parser to.
func Record(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(t.Header); err != nil {
		return fmt.Errorf("sim: record header: %w", err)
	}
	for i := range t.Events {
		if err := enc.Encode(&t.Events[i]); err != nil {
			return fmt.Errorf("sim: record event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// RecordBytes renders Record into memory.
func (t *Trace) RecordBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := Record(&buf, t); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RecordFile writes the trace to path (0644, truncating).
func (t *Trace) RecordFile(path string) error {
	data, err := t.RecordBytes()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// maxTraceLine bounds one JSONL line; a trace line is a small flat
// object, so anything near this is hostile input, not a trace.
const maxTraceLine = 1 << 20

// Replay parses a versioned JSONL trace and validates it against the
// schema contract: correct version, dense sequence numbers,
// non-decreasing timestamps, resolvable kinds, sane request options.
// A replayed trace drives Run exactly as the freshly generated one
// did — byte-identical event sequences, forever.
func Replay(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxTraceLine)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("sim: replay: %w", err)
		}
		return nil, fmt.Errorf("sim: replay: empty trace")
	}
	t := &Trace{}
	if err := decodeStrict(sc.Bytes(), &t.Header); err != nil {
		return nil, fmt.Errorf("sim: replay header: %w", err)
	}
	if t.Header.Schema != SchemaVersion {
		return nil, fmt.Errorf("sim: trace schema %d, this build reads %d", t.Header.Schema, SchemaVersion)
	}
	if t.Header.Events < 0 || t.Header.Events > 1<<26 {
		return nil, fmt.Errorf("sim: header declares %d events", t.Header.Events)
	}
	t.Events = make([]Event, 0, t.Header.Events)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			return nil, fmt.Errorf("sim: replay: blank line after event %d", len(t.Events))
		}
		var ev Event
		if err := decodeStrict(line, &ev); err != nil {
			return nil, fmt.Errorf("sim: replay event %d: %w", len(t.Events), err)
		}
		t.Events = append(t.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sim: replay: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ReplayFile parses the trace at path.
func ReplayFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	defer f.Close()
	t, err := Replay(f)
	if err != nil {
		return nil, fmt.Errorf("%w (trace %s)", err, path)
	}
	return t, nil
}

// decodeStrict unmarshals one trace line, rejecting unknown fields and
// trailing data — a typoed field silently dropped on re-record would
// break the Record∘Replay fixed point.
func decodeStrict(line []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON object")
	}
	return nil
}
