package sim

import (
	"testing"

	"repro/internal/faults"
)

// TestDefectRateMaterialization: every request carries exactly the
// defect rate its chip had as of the request's virtual time — i.e. the
// initial spec rate until the chip's first defect event, then the rate
// of the latest preceding defect event. This is what lets replay
// drivers dispatch at any concurrency with no simulation state.
func TestDefectRateMaterialization(t *testing.T) {
	spec, err := BuiltinSpec("defect-storm")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Generate(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	current := make(map[string]float64, len(spec.Chips))
	for _, c := range spec.Chips {
		current[c.Name] = c.DefectRate
	}
	defects := 0
	for i := range tr.Events {
		ev := &tr.Events[i]
		switch ev.Kind {
		case KindDefect:
			if !faults.ValidRate(ev.DefectRate) {
				t.Fatalf("defect event %d re-drew invalid rate %g", i, ev.DefectRate)
			}
			current[ev.Chip] = ev.DefectRate
			defects++
		case KindRequest:
			if ev.DefectRate != current[ev.Chip] {
				t.Fatalf("request %d on %s carries rate %g, chip was at %g", i, ev.Chip, ev.DefectRate, current[ev.Chip])
			}
		}
	}
	if defects == 0 {
		t.Fatal("defect-storm generated no defect events")
	}
}

// TestScaleMovesArrivals: scaling the spec up generates more requests
// from the same seed, and the scaled spec still validates.
func TestScaleMovesArrivals(t *testing.T) {
	spec, err := BuiltinSpec("steady-state")
	if err != nil {
		t.Fatal(err)
	}
	scaled := spec.Scale(4)
	if err := scaled.Validate(); err != nil {
		t.Fatalf("scaled spec invalid: %v", err)
	}
	base, err := Generate(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Generate(scaled, 1)
	if err != nil {
		t.Fatal(err)
	}
	if big.Requests() <= base.Requests() {
		t.Fatalf("scale 4 generated %d requests, base %d", big.Requests(), base.Requests())
	}
	// Scale must not mutate the receiver.
	again, err := Generate(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if again.Requests() != base.Requests() {
		t.Fatal("Scale mutated the original spec")
	}
}

// TestSpecValidateRejects: representative invalid specs.
func TestSpecValidateRejects(t *testing.T) {
	base := func() Spec {
		s, err := BuiltinSpec("steady-state")
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no duration", func(s *Spec) { s.DurationSec = 0 }},
		{"no chips", func(s *Spec) { s.Chips = nil }},
		{"duplicate chip", func(s *Spec) { s.Chips = append(s.Chips, s.Chips[0]) }},
		{"defect rate 1", func(s *Spec) { s.Chips[0].DefectRate = 1 }},
		{"drift min over max", func(s *Spec) {
			s.Chips[0].Drift = DriftSpec{RatePerSec: 1, MinRate: 0.5, MaxRate: 0.1}
		}},
		{"unknown arrival", func(s *Spec) { s.Clients[0].Arrival.Process = "weibull" }},
		{"gamma without shape", func(s *Spec) { s.Clients[0].Arrival = ArrivalSpec{Process: ArrivalGamma, RatePerSec: 1} }},
		{"zero rate", func(s *Spec) { s.Clients[0].Arrival.RatePerSec = 0 }},
		{"dangling chip ref", func(s *Spec) { s.Clients[0].Mix[0].Chip = "ghost" }},
		{"zero weight", func(s *Spec) { s.Clients[0].Mix[0].Weight = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			// Deep-copy the slices the mutators touch.
			s.Chips = append([]ChipSpec(nil), s.Chips...)
			s.Clients = append([]ClientSpec(nil), s.Clients...)
			for i := range s.Clients {
				s.Clients[i].Mix = append([]MixEntry(nil), s.Clients[i].Mix...)
			}
			tc.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Fatal("Validate accepted a bad spec")
			}
		})
	}
}

// TestBuiltinSpecsValid: every embedded workload validates and names
// itself consistently.
func TestBuiltinSpecsValid(t *testing.T) {
	for _, name := range BuiltinNames() {
		spec, err := BuiltinSpec(name)
		if err != nil {
			t.Fatalf("BuiltinSpec(%q): %v", name, err)
		}
		if spec.Name != name {
			t.Errorf("spec %q names itself %q", name, spec.Name)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("builtin %q invalid: %v", name, err)
		}
	}
	if _, err := BuiltinSpec("nope"); err == nil {
		t.Error("BuiltinSpec accepted an unknown name")
	}
}
