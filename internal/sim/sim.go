// Package sim is the deterministic traffic simulator of the YOUTIAO
// system: a discrete-event load generator that models a fleet of chips
// and a population of tenants over simulated time, so the serving and
// caching layers can be driven with realistic, *reproducible* churn
// instead of hand-rolled bursts.
//
// A workload Spec declares the fleet (chips with optional defect-drift
// streams) and the clients (arrival process + weighted request mix).
// Generate expands the spec under a master seed into a Trace: a totally
// ordered sequence of virtually-timestamped events — design requests
// with fully materialized options, and defect events marking the churn
// points where a chip's fault state moved. Everything is a pure
// function of (Spec, seed): arrival times come from per-client
// SplitMix64 streams (parallel.TaskSeed), defect drift from per-chip
// streams, and ties in the merged timeline break on a fixed source
// order — two Generate calls are byte-identical, forever.
//
// Traces are first-class artifacts: Record serializes one to versioned
// JSONL and Replay parses it back, with Record∘Replay byte-identity as
// the schema contract (fuzz_test.go holds the decoder to it). Committed
// "golden" traces under traces/ are the CI regression fixtures: the
// workload-smoke job replays them against both the library driver and a
// live youtiao-serve binary and asserts the deterministic summary.
//
// The virtual clock is what keeps runs both reproducible and fast:
// event timestamps are simulated nanoseconds, and Run dispatches
// requests in timestamp order without sleeping (RunConfig.Pace can
// optionally map virtual time onto wall time when driving a live
// server at a realistic rate). The Summary splits, like the rest of
// the repo's observability, into a Deterministic section — event and
// outcome counts, per-tenant completions, fairness, cache hit counts —
// that is bit-identical for any worker count, and a Timing section
// (throughput, latency percentiles) that is not. See DESIGN.md, "The
// workload contract".
package sim

import (
	"fmt"
	"math"
	"time"

	"repro/internal/faults"
)

// Spec declares one workload: a chip fleet and a client population over
// a virtual duration.
type Spec struct {
	// Name labels the workload (it lands in the trace header).
	Name string `json:"name"`
	// DurationSec is the virtual length of the workload in seconds.
	DurationSec float64 `json:"durationSec"`
	// Chips is the fleet: every request references one by name.
	Chips []ChipSpec `json:"chips"`
	// Clients are the tenants generating requests.
	Clients []ClientSpec `json:"clients"`
}

// ChipSpec is one chip of the fleet, with an optional defect-drift
// stream that models calibration churn: defects arriving as a Poisson
// process, each event re-drawing the chip's uniform defect rate.
type ChipSpec struct {
	// Name is the chip's id inside the workload ("fab-a").
	Name string `json:"name"`
	// Topology names the chip family ("square", "hexagon", ...).
	Topology string `json:"topology"`
	// Qubits is the approximate chip size (>= 2).
	Qubits int `json:"qubits"`
	// Seed is the chip's fabrication/design seed base. Requests against
	// this chip use design seeds derived from it (see MixEntry.Seeds).
	Seed int64 `json:"seed,omitempty"`
	// DefectRate is the chip's initial uniform defect rate.
	DefectRate float64 `json:"defectRate,omitempty"`
	// Drift is the chip's defect-event stream; the zero value means a
	// stable chip (no churn).
	Drift DriftSpec `json:"drift,omitempty"`
}

// DriftSpec is a chip's defect/calibration-drift process: defect events
// arrive Poisson at RatePerSec, and each event re-draws the chip's
// uniform defect rate from [MinRate, MaxRate].
type DriftSpec struct {
	// RatePerSec is the Poisson arrival rate of defect events; 0
	// disables drift.
	RatePerSec float64 `json:"ratePerSec,omitempty"`
	// MinRate and MaxRate bound the re-drawn defect rate.
	MinRate float64 `json:"minRate,omitempty"`
	MaxRate float64 `json:"maxRate,omitempty"`
}

// Enabled reports whether the drift stream emits any events.
func (d DriftSpec) Enabled() bool { return d.RatePerSec > 0 }

// ClientSpec is one tenant: an arrival process and a weighted mix of
// request shapes.
type ClientSpec struct {
	// ID is the tenant id; it rides on every generated request (and,
	// against a live server, on the X-Client-ID header).
	ID string `json:"id"`
	// Arrival is the tenant's request arrival process.
	Arrival ArrivalSpec `json:"arrival"`
	// Mix is the tenant's weighted request mix; each arrival picks one
	// entry with probability Weight / sum(Weights).
	Mix []MixEntry `json:"mix"`
}

// Arrival process names.
const (
	// ArrivalPoisson is a memoryless arrival stream: exponential
	// inter-arrival times at RatePerSec.
	ArrivalPoisson = "poisson"
	// ArrivalGamma draws Gamma(Shape) inter-arrivals scaled to the same
	// mean rate: Shape < 1 is burstier than Poisson (clustered
	// arrivals with long gaps), Shape > 1 is smoother.
	ArrivalGamma = "gamma"
)

// ArrivalSpec configures one client's arrival process.
type ArrivalSpec struct {
	// Process selects the inter-arrival law: ArrivalPoisson or
	// ArrivalGamma.
	Process string `json:"process"`
	// RatePerSec is the mean arrival rate (> 0).
	RatePerSec float64 `json:"ratePerSec"`
	// Shape is the Gamma shape parameter (> 0); ignored for Poisson.
	Shape float64 `json:"shape,omitempty"`
}

// MixEntry is one request shape of a client's mix.
type MixEntry struct {
	// Weight is the entry's relative pick probability (> 0).
	Weight float64 `json:"weight"`
	// Chip names the target ChipSpec.
	Chip string `json:"chip"`
	// Seeds is how many distinct design seeds this entry rotates
	// through (default 1: every pick issues the identical request, the
	// cache-friendliest shape). Seeds are chip.Seed .. chip.Seed+Seeds-1.
	Seeds int `json:"seeds,omitempty"`
	// Theta overrides the TDM parallelism threshold (nil = default;
	// explicit 0 is honored, mirroring the serve API).
	Theta *float64 `json:"theta,omitempty"`
	// FDMCapacity overrides the qubits-per-XY-line limit.
	FDMCapacity int `json:"fdmCapacity,omitempty"`
	// AnnealSteps refines frequency allocation when positive.
	AnnealSteps int `json:"annealSteps,omitempty"`
}

// Validate checks the spec is generatable: positive duration and rates,
// resolvable chip references, sane sizes.
func (s *Spec) Validate() error {
	if s == nil {
		return fmt.Errorf("sim: nil spec")
	}
	if s.Name == "" {
		return fmt.Errorf("sim: spec has no name")
	}
	if !(s.DurationSec > 0) || math.IsInf(s.DurationSec, 0) {
		return fmt.Errorf("sim: spec %q duration %g must be a positive finite second count", s.Name, s.DurationSec)
	}
	if len(s.Chips) == 0 {
		return fmt.Errorf("sim: spec %q has no chips", s.Name)
	}
	if len(s.Clients) == 0 {
		return fmt.Errorf("sim: spec %q has no clients", s.Name)
	}
	chips := make(map[string]bool, len(s.Chips))
	for i, c := range s.Chips {
		if c.Name == "" {
			return fmt.Errorf("sim: chip %d has no name", i)
		}
		if chips[c.Name] {
			return fmt.Errorf("sim: duplicate chip name %q", c.Name)
		}
		chips[c.Name] = true
		if c.Topology == "" {
			return fmt.Errorf("sim: chip %q has no topology", c.Name)
		}
		if c.Qubits < 2 {
			return fmt.Errorf("sim: chip %q qubits %d must be >= 2", c.Name, c.Qubits)
		}
		if !faults.ValidRate(c.DefectRate) {
			return fmt.Errorf("sim: chip %q defect rate %g outside [0,1)", c.Name, c.DefectRate)
		}
		if c.Drift.Enabled() {
			if !faults.ValidRate(c.Drift.MinRate) || !faults.ValidRate(c.Drift.MaxRate) || c.Drift.MinRate > c.Drift.MaxRate {
				return fmt.Errorf("sim: chip %q drift rates [%g,%g] must satisfy 0 <= min <= max < 1",
					c.Name, c.Drift.MinRate, c.Drift.MaxRate)
			}
		}
	}
	ids := make(map[string]bool, len(s.Clients))
	for i, cl := range s.Clients {
		if cl.ID == "" {
			return fmt.Errorf("sim: client %d has no id", i)
		}
		if ids[cl.ID] {
			return fmt.Errorf("sim: duplicate client id %q", cl.ID)
		}
		ids[cl.ID] = true
		switch cl.Arrival.Process {
		case ArrivalPoisson:
		case ArrivalGamma:
			if !(cl.Arrival.Shape > 0) {
				return fmt.Errorf("sim: client %q gamma shape %g must be > 0", cl.ID, cl.Arrival.Shape)
			}
		default:
			return fmt.Errorf("sim: client %q has unknown arrival process %q", cl.ID, cl.Arrival.Process)
		}
		if !(cl.Arrival.RatePerSec > 0) {
			return fmt.Errorf("sim: client %q arrival rate %g must be > 0", cl.ID, cl.Arrival.RatePerSec)
		}
		if len(cl.Mix) == 0 {
			return fmt.Errorf("sim: client %q has an empty mix", cl.ID)
		}
		for j, m := range cl.Mix {
			if !(m.Weight > 0) {
				return fmt.Errorf("sim: client %q mix %d weight %g must be > 0", cl.ID, j, m.Weight)
			}
			if !chips[m.Chip] {
				return fmt.Errorf("sim: client %q mix %d references unknown chip %q", cl.ID, j, m.Chip)
			}
			if m.Seeds < 0 {
				return fmt.Errorf("sim: client %q mix %d seeds %d must be >= 0", cl.ID, j, m.Seeds)
			}
		}
	}
	return nil
}

// Scale returns a copy of the spec with every arrival and drift rate
// multiplied by f — the knob the nightly long-form run turns to push
// the same workload shape into overload.
func (s Spec) Scale(f float64) Spec {
	out := s
	out.Chips = append([]ChipSpec(nil), s.Chips...)
	for i := range out.Chips {
		out.Chips[i].Drift.RatePerSec *= f
	}
	out.Clients = append([]ClientSpec(nil), s.Clients...)
	for i := range out.Clients {
		out.Clients[i].Arrival.RatePerSec *= f
	}
	return out
}

// Duration returns the spec's virtual duration.
func (s Spec) Duration() time.Duration {
	return time.Duration(s.DurationSec * float64(time.Second))
}

// BuiltinNames lists the embedded workload specs, in a fixed order.
func BuiltinNames() []string { return []string{"steady-state", "defect-storm"} }

// BuiltinSpec returns one of the embedded workload specs by name:
//
//   - "steady-state": three Poisson tenants over two stable chips with
//     heavily repeated request shapes — the shared-cache / fairness
//     baseline (golden trace traces/steady-state.jsonl).
//   - "defect-storm": bursty Gamma tenants over drifting chips whose
//     defect rates are re-drawn by Poisson defect events — the churn
//     stress (golden trace traces/defect-storm.jsonl).
func BuiltinSpec(name string) (Spec, error) {
	switch name {
	case "steady-state":
		theta := 3.0
		return Spec{
			Name:        "steady-state",
			DurationSec: 30,
			Chips: []ChipSpec{
				{Name: "fab-a", Topology: "square", Qubits: 16, Seed: 1},
				{Name: "fab-b", Topology: "hexagon", Qubits: 12, Seed: 2},
			},
			Clients: []ClientSpec{
				{
					ID:      "tenant-alpha",
					Arrival: ArrivalSpec{Process: ArrivalPoisson, RatePerSec: 0.5},
					Mix: []MixEntry{
						{Weight: 3, Chip: "fab-a"},
						{Weight: 1, Chip: "fab-a", Theta: &theta},
					},
				},
				{
					ID:      "tenant-beta",
					Arrival: ArrivalSpec{Process: ArrivalPoisson, RatePerSec: 0.4},
					Mix: []MixEntry{
						{Weight: 2, Chip: "fab-b"},
						{Weight: 1, Chip: "fab-a", AnnealSteps: 50},
					},
				},
				{
					ID:      "tenant-gamma",
					Arrival: ArrivalSpec{Process: ArrivalPoisson, RatePerSec: 0.3},
					Mix: []MixEntry{
						{Weight: 1, Chip: "fab-b", Seeds: 2},
					},
				},
			},
		}, nil
	case "defect-storm":
		return Spec{
			Name:        "defect-storm",
			DurationSec: 30,
			Chips: []ChipSpec{
				{
					Name: "storm-a", Topology: "square", Qubits: 16, Seed: 3,
					DefectRate: 0.01,
					Drift:      DriftSpec{RatePerSec: 0.1, MinRate: 0.01, MaxRate: 0.05},
				},
				{
					Name: "storm-b", Topology: "heavy-square", Qubits: 12, Seed: 4,
					DefectRate: 0.02,
					Drift:      DriftSpec{RatePerSec: 0.05, MinRate: 0.0, MaxRate: 0.04},
				},
			},
			Clients: []ClientSpec{
				{
					ID:      "ops-recal",
					Arrival: ArrivalSpec{Process: ArrivalGamma, RatePerSec: 0.8, Shape: 0.5},
					Mix: []MixEntry{
						{Weight: 2, Chip: "storm-a"},
						{Weight: 1, Chip: "storm-b"},
					},
				},
				{
					ID:      "ops-batch",
					Arrival: ArrivalSpec{Process: ArrivalGamma, RatePerSec: 0.4, Shape: 2},
					Mix: []MixEntry{
						{Weight: 1, Chip: "storm-b", Seeds: 2},
					},
				},
			},
		}, nil
	default:
		return Spec{}, fmt.Errorf("sim: unknown builtin workload %q (have %v)", name, BuiltinNames())
	}
}
