package sim

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/parallel"
)

// Seed-stream namespaces. Every stochastic source of a workload owns a
// private SplitMix64 stream split off the master seed, so sources are
// statistically independent and the whole trace is a pure function of
// (Spec, seed) — adding a chip or client never perturbs the streams of
// the others.
const (
	// streamClientBase + 4*i (+streamArrival / +streamMix) are client
	// i's streams.
	streamClientBase = 0x10000
	// streamChipBase + 4*j (+streamDriftTime / +streamDriftRate) are
	// chip j's drift streams.
	streamChipBase = 0x20000

	streamArrival   = 0
	streamMix       = 1
	streamDriftTime = 0
	streamDriftRate = 1
)

// Generate expands a workload spec under a master seed into a trace:
// the totally ordered, virtually timestamped event sequence of the
// whole fleet. The result is bit-deterministic — same (spec, seed),
// same trace, on any machine — because every source draws from its own
// parallel.TaskSeed stream and the merged timeline breaks timestamp
// ties on a fixed (kind, source, sequence) order.
//
// Request events are materialized: each carries the concrete design
// options and the target chip's defect rate *as of its virtual time*,
// so replay needs no simulation state — drivers can dispatch events
// independently (any worker count) and still issue identical requests.
// Defect events remain in the trace as churn markers; they carry the
// chip's re-drawn rate and are counted, not dispatched.
func Generate(spec Spec, seed int64) (*Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	horizon := int64(spec.DurationSec * 1e9)
	var events []Event

	// Chip drift streams first: source index j for chip j. Each chip's
	// defect events are generated in time order, so the per-chip rate
	// timeline below can binary-search them.
	type rateChange struct {
		atNs int64
		rate float64
	}
	timelines := make(map[string][]rateChange, len(spec.Chips))
	baseRate := make(map[string]float64, len(spec.Chips))
	chipByName := make(map[string]ChipSpec, len(spec.Chips))
	for j, c := range spec.Chips {
		chipByName[c.Name] = c
		baseRate[c.Name] = c.DefectRate
		if !c.Drift.Enabled() {
			continue
		}
		times := parallel.TaskRand(seed, uint64(streamChipBase+4*j+streamDriftTime))
		rates := parallel.TaskRand(seed, uint64(streamChipBase+4*j+streamDriftRate))
		t := 0.0
		for {
			t += expInterArrival(times, c.Drift.RatePerSec)
			atNs := int64(t * 1e9)
			if atNs > horizon {
				break
			}
			rate := c.Drift.MinRate + rates.Float64()*(c.Drift.MaxRate-c.Drift.MinRate)
			timelines[c.Name] = append(timelines[c.Name], rateChange{atNs: atNs, rate: rate})
			events = append(events, Event{
				AtNs:       atNs,
				Kind:       KindDefect,
				Chip:       c.Name,
				Topology:   c.Topology,
				Qubits:     c.Qubits,
				DefectRate: rate,

				srcIdx: j,
			})
		}
	}

	// Client request streams: source index len(chips)+i for client i.
	for i, cl := range spec.Clients {
		arrivals := parallel.TaskRand(seed, uint64(streamClientBase+4*i+streamArrival))
		mix := parallel.TaskRand(seed, uint64(streamClientBase+4*i+streamMix))
		weightSum := 0.0
		for _, m := range cl.Mix {
			weightSum += m.Weight
		}
		t := 0.0
		for {
			t += interArrival(arrivals, cl.Arrival)
			atNs := int64(t * 1e9)
			if atNs > horizon {
				break
			}
			m := pickMix(mix, cl.Mix, weightSum)
			chip := chipByName[m.Chip]
			designSeed := chip.Seed
			if m.Seeds > 1 {
				designSeed += int64(mix.Intn(m.Seeds))
			}
			events = append(events, Event{
				AtNs:        atNs,
				Kind:        KindRequest,
				Client:      cl.ID,
				Chip:        chip.Name,
				Topology:    chip.Topology,
				Qubits:      chip.Qubits,
				Seed:        designSeed,
				Theta:       m.Theta,
				FDMCapacity: m.FDMCapacity,
				AnnealSteps: m.AnnealSteps,

				srcIdx: len(spec.Chips) + i,
			})
		}
	}

	// Merge into one timeline. Per-source events are already in time
	// order with strictly increasing generation order, so (AtNs, kind,
	// srcIdx) is a total order: at equal timestamps a defect event
	// precedes a request (the rate change is visible to a simultaneous
	// request) and distinct sources break ties on declaration order.
	sort.SliceStable(events, func(a, b int) bool {
		ea, eb := &events[a], &events[b]
		if ea.AtNs != eb.AtNs {
			return ea.AtNs < eb.AtNs
		}
		if ea.Kind != eb.Kind {
			return ea.Kind == KindDefect
		}
		return ea.srcIdx < eb.srcIdx
	})

	// Materialize each request's defect rate as of its timestamp: the
	// latest rate change at or before it, else the chip's base rate.
	for idx := range events {
		ev := &events[idx]
		ev.Seq = int64(idx)
		if ev.Kind != KindRequest {
			continue
		}
		ev.DefectRate = baseRate[ev.Chip]
		tl := timelines[ev.Chip]
		lo := sort.Search(len(tl), func(k int) bool { return tl[k].atNs > ev.AtNs })
		if lo > 0 {
			ev.DefectRate = tl[lo-1].rate
		}
	}

	return &Trace{
		Header: Header{
			Schema:     SchemaVersion,
			Workload:   spec.Name,
			Seed:       seed,
			DurationNs: horizon,
			Events:     len(events),
		},
		Events: events,
	}, nil
}

// expInterArrival draws one exponential inter-arrival time (seconds)
// at the given rate: the Poisson process increment.
func expInterArrival(rng *rand.Rand, ratePerSec float64) float64 {
	// 1-U is in (0,1], so the log argument never hits zero.
	return -math.Log(1-rng.Float64()) / ratePerSec
}

// interArrival draws one inter-arrival time (seconds) for an arrival
// spec. Gamma inter-arrivals keep the spec's mean rate (scale =
// 1/(shape*rate)); shape < 1 clusters arrivals into bursts separated by
// long gaps, shape > 1 regularizes them.
func interArrival(rng *rand.Rand, a ArrivalSpec) float64 {
	switch a.Process {
	case ArrivalGamma:
		return gammaSample(rng, a.Shape) / (a.Shape * a.RatePerSec)
	default: // ArrivalPoisson (Validate guarantees the process name)
		return expInterArrival(rng, a.RatePerSec)
	}
}

// gammaSample draws Gamma(shape, 1) by Marsaglia–Tsang squeeze
// rejection; shapes below 1 use the boost Gamma(k) =
// Gamma(k+1)·U^(1/k). Draw order per sample is deterministic given the
// RNG stream, which is all trace determinism needs.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// pickMix selects one mix entry by weight using a single uniform draw.
func pickMix(rng *rand.Rand, mix []MixEntry, weightSum float64) MixEntry {
	u := rng.Float64() * weightSum
	for _, m := range mix {
		u -= m.Weight
		if u < 0 {
			return m
		}
	}
	return mix[len(mix)-1]
}
