package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	p := Pt(1, 2)
	q := Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add: got %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub: got %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale: got %v", got)
	}
}

func TestDist(t *testing.T) {
	if d := Pt(0, 0).Dist(Pt(3, 4)); !almostEqual(d, 5) {
		t.Errorf("Dist: got %v, want 5", d)
	}
	if d := Pt(1, 1).Dist(Pt(1, 1)); d != 0 {
		t.Errorf("Dist to self: got %v", d)
	}
}

func TestManhattanDist(t *testing.T) {
	if d := Pt(0, 0).ManhattanDist(Pt(3, -4)); !almostEqual(d, 7) {
		t.Errorf("ManhattanDist: got %v, want 7", d)
	}
}

func TestDistSymmetryAndTriangle(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	symmetric := func(ax, ay, bx, by float64) bool {
		for _, v := range []float64{ax, ay, bx, by} {
			if math.Abs(v) > 1e12 || math.IsNaN(v) {
				return true
			}
		}
		a, b := Pt(ax, ay), Pt(bx, by)
		return almostEqual(a.Dist(b), b.Dist(a))
	}
	if err := quick.Check(symmetric, cfg); err != nil {
		t.Errorf("distance not symmetric: %v", err)
	}
	triangle := func(ax, ay, bx, by, cx, cy float64) bool {
		// Guard against overflow-scale values that lose precision.
		for _, v := range []float64{ax, ay, bx, by, cx, cy} {
			if math.Abs(v) > 1e12 || math.IsNaN(v) {
				return true
			}
		}
		a, b, c := Pt(ax, ay), Pt(bx, by), Pt(cx, cy)
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(triangle, cfg); err != nil {
		t.Errorf("triangle inequality violated: %v", err)
	}
	manhattanDominates := func(ax, ay, bx, by float64) bool {
		for _, v := range []float64{ax, ay, bx, by} {
			if math.Abs(v) > 1e12 || math.IsNaN(v) {
				return true
			}
		}
		a, b := Pt(ax, ay), Pt(bx, by)
		return a.ManhattanDist(b) >= a.Dist(b)-1e-6
	}
	if err := quick.Check(manhattanDominates, cfg); err != nil {
		t.Errorf("L1 should dominate L2: %v", err)
	}
}

func TestRectFromPoints(t *testing.T) {
	r := RectFromPoints([]Point{Pt(1, 5), Pt(-2, 3), Pt(4, -1)})
	if r.Min != Pt(-2, -1) || r.Max != Pt(4, 5) {
		t.Errorf("bounding box wrong: %+v", r)
	}
	if got := RectFromPoints(nil); got != (Rect{}) {
		t.Errorf("empty input should give zero Rect, got %+v", got)
	}
}

func TestRectGeometry(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(4, 3)}
	if !almostEqual(r.Width(), 4) || !almostEqual(r.Height(), 3) {
		t.Errorf("size wrong: %v x %v", r.Width(), r.Height())
	}
	if !almostEqual(r.Area(), 12) {
		t.Errorf("area: got %v", r.Area())
	}
	if !r.Contains(Pt(2, 1)) || !r.Contains(Pt(0, 0)) || !r.Contains(Pt(4, 3)) {
		t.Error("Contains should include interior and border")
	}
	if r.Contains(Pt(4.01, 1)) {
		t.Error("Contains should exclude outside points")
	}
	e := r.Expand(1)
	if e.Min != Pt(-1, -1) || e.Max != Pt(5, 4) {
		t.Errorf("Expand wrong: %+v", e)
	}
	u := r.Union(Rect{Min: Pt(-1, 2), Max: Pt(2, 9)})
	if u.Min != Pt(-1, 0) || u.Max != Pt(4, 9) {
		t.Errorf("Union wrong: %+v", u)
	}
}

func TestSegmentIntersects(t *testing.T) {
	cases := []struct {
		name string
		s, t Segment
		want bool
	}{
		{"crossing", Segment{Pt(0, 0), Pt(2, 2)}, Segment{Pt(0, 2), Pt(2, 0)}, true},
		{"parallel apart", Segment{Pt(0, 0), Pt(2, 0)}, Segment{Pt(0, 1), Pt(2, 1)}, false},
		{"collinear overlap", Segment{Pt(0, 0), Pt(2, 0)}, Segment{Pt(1, 0), Pt(3, 0)}, true},
		{"collinear disjoint", Segment{Pt(0, 0), Pt(1, 0)}, Segment{Pt(2, 0), Pt(3, 0)}, false},
		{"touch endpoint", Segment{Pt(0, 0), Pt(1, 1)}, Segment{Pt(1, 1), Pt(2, 0)}, true},
		{"T junction", Segment{Pt(0, 0), Pt(2, 0)}, Segment{Pt(1, 0), Pt(1, 2)}, true},
		{"near miss", Segment{Pt(0, 0), Pt(1, 0)}, Segment{Pt(1.1, -1), Pt(1.1, 1)}, false},
	}
	for _, c := range cases {
		if got := c.s.Intersects(c.t); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
		// Intersection must be symmetric.
		if got := c.t.Intersects(c.s); got != c.want {
			t.Errorf("%s (swapped): got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSegmentLength(t *testing.T) {
	if l := (Segment{Pt(0, 0), Pt(3, 4)}).Length(); !almostEqual(l, 5) {
		t.Errorf("Length: got %v", l)
	}
}

func TestPathLength(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(3, 0), Pt(3, 4)}
	if l := PathLength(pts); !almostEqual(l, 7) {
		t.Errorf("PathLength: got %v, want 7", l)
	}
	if l := PathLength(nil); l != 0 {
		t.Errorf("empty path: got %v", l)
	}
	if l := PathLength(pts[:1]); l != 0 {
		t.Errorf("single point: got %v", l)
	}
}
