// Package geom provides the small set of 2-D geometry primitives used by
// the chip layout and on-chip routing code: points, axis-aligned
// rectangles, Manhattan/Euclidean metrics and segment intersection tests.
//
// All coordinates are in millimetres unless a caller states otherwise;
// the router works on an integer grid derived from these coordinates.
package geom

import (
	"fmt"
	"math"
)

// Point is a 2-D point.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// ManhattanDist returns the L1 distance between p and q.
func (p Point) ManhattanDist(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Rect is an axis-aligned rectangle. Min is the lower-left corner and Max
// the upper-right; a Rect with Min == Max is empty.
type Rect struct {
	Min, Max Point
}

// RectFromPoints returns the bounding box of pts. It returns the zero
// Rect when pts is empty.
func RectFromPoints(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Contains reports whether p lies inside r (inclusive of the border).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Expand returns r grown by m on every side.
func (r Rect) Expand(m float64) Rect {
	return Rect{
		Min: Point{r.Min.X - m, r.Min.Y - m},
		Max: Point{r.Max.X + m, r.Max.Y + m},
	}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Segment is a line segment between two points.
type Segment struct {
	A, B Point
}

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// orientation returns the turn direction of the triplet (p, q, r):
// 0 collinear, 1 clockwise, 2 counter-clockwise.
func orientation(p, q, r Point) int {
	v := (q.Y-p.Y)*(r.X-q.X) - (q.X-p.X)*(r.Y-q.Y)
	const eps = 1e-12
	switch {
	case math.Abs(v) < eps:
		return 0
	case v > 0:
		return 1
	default:
		return 2
	}
}

// onSegment reports whether q lies on segment pr, assuming collinearity.
func onSegment(p, q, r Point) bool {
	return q.X <= math.Max(p.X, r.X) && q.X >= math.Min(p.X, r.X) &&
		q.Y <= math.Max(p.Y, r.Y) && q.Y >= math.Min(p.Y, r.Y)
}

// Intersects reports whether segments s and t intersect, including
// touching at endpoints and collinear overlap.
func (s Segment) Intersects(t Segment) bool {
	o1 := orientation(s.A, s.B, t.A)
	o2 := orientation(s.A, s.B, t.B)
	o3 := orientation(t.A, t.B, s.A)
	o4 := orientation(t.A, t.B, s.B)

	if o1 != o2 && o3 != o4 {
		return true
	}
	switch {
	case o1 == 0 && onSegment(s.A, t.A, s.B):
		return true
	case o2 == 0 && onSegment(s.A, t.B, s.B):
		return true
	case o3 == 0 && onSegment(t.A, s.A, t.B):
		return true
	case o4 == 0 && onSegment(t.A, s.B, t.B):
		return true
	}
	return false
}

// PathLength returns the total length of the polyline through pts.
func PathLength(pts []Point) float64 {
	var l float64
	for i := 1; i < len(pts); i++ {
		l += pts[i-1].Dist(pts[i])
	}
	return l
}
