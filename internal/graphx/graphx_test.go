package graphx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// path builds a path graph 0-1-2-...-n-1.
func path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			panic(err)
		}
	}
	return g
}

// grid builds a w×h square lattice.
func grid(w, h int) *Graph {
	g := New(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				_ = g.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				_ = g.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := g.AddEdge(0, 1); err == nil {
		t.Error("duplicate edge accepted")
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("reversed duplicate edge accepted")
	}
	if err := g.AddEdge(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Error("negative vertex accepted")
	}
}

func TestHasEdgeAndDegree(t *testing.T) {
	g := path(4)
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Error("HasEdge should be symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("HasEdge reports nonexistent edge")
	}
	if g.HasEdge(0, 99) {
		t.Error("HasEdge out of range should be false")
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Errorf("degrees wrong: %d %d", g.Degree(0), g.Degree(1))
	}
}

func TestEdges(t *testing.T) {
	g := path(4)
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("got %d edges, want 3", len(es))
	}
	for _, e := range es {
		if e[0] >= e[1] {
			t.Errorf("edge %v not ordered", e)
		}
	}
}

func TestBFSDistances(t *testing.T) {
	g := path(5)
	d := g.BFSDistances(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want)
		}
	}
	// Disconnected vertex.
	g2 := New(3)
	_ = g2.AddEdge(0, 1)
	if d := g2.BFSDistances(0); d[2] != -1 {
		t.Errorf("unreachable vertex should be -1, got %d", d[2])
	}
}

func TestShortestPathCounts(t *testing.T) {
	// On a 3x3 grid, corner to corner has distance 4 and C(4,2)=6 paths.
	g := grid(3, 3)
	dist, count := g.ShortestPathCounts(0)
	if dist[8] != 4 {
		t.Errorf("corner distance: got %d, want 4", dist[8])
	}
	if count[8] != 6 {
		t.Errorf("corner path count: got %d, want 6", count[8])
	}
	// Adjacent: 1 path.
	if dist[1] != 1 || count[1] != 1 {
		t.Errorf("adjacent: dist %d count %d", dist[1], count[1])
	}
	// Diagonal neighbour: 2 paths of length 2.
	if dist[4] != 2 || count[4] != 2 {
		t.Errorf("diagonal: dist %d count %d", dist[4], count[4])
	}
}

func TestMultiPathDistance(t *testing.T) {
	g := grid(3, 3)
	if d := g.MultiPathDistance(0, 0); d != 0 {
		t.Errorf("self distance: got %v", d)
	}
	if d := g.MultiPathDistance(0, 1); d != 1 {
		t.Errorf("adjacent: got %v, want 1 (1 path x length 1)", d)
	}
	if d := g.MultiPathDistance(0, 4); d != 4 {
		t.Errorf("diagonal: got %v, want 4 (2 paths x length 2)", d)
	}
	if d := g.MultiPathDistance(0, 8); d != 24 {
		t.Errorf("corner: got %v, want 24 (6 paths x length 4)", d)
	}
	g2 := New(2)
	if d := g2.MultiPathDistance(0, 1); !math.IsInf(d, 1) {
		t.Errorf("disconnected: got %v, want +Inf", d)
	}
}

func TestAllMultiPathDistancesMatchesPointwise(t *testing.T) {
	g := grid(3, 4)
	m := g.AllMultiPathDistances()
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if want := g.MultiPathDistance(u, v); m[u][v] != want {
				t.Fatalf("matrix[%d][%d] = %v, want %v", u, v, m[u][v], want)
			}
		}
	}
}

func TestMultiPathDistanceSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.4 {
					_ = g.AddEdge(i, j)
				}
			}
		}
		m := g.AllMultiPathDistances()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if m[i][j] != m[j][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Errorf("multi-path distance not symmetric: %v", err)
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(4, 5)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	want := [][]int{{0, 1, 2}, {3}, {4, 5}}
	for i, c := range comps {
		if len(c) != len(want[i]) {
			t.Fatalf("component %d = %v, want %v", i, c, want[i])
		}
		for j := range c {
			if c[j] != want[i][j] {
				t.Fatalf("component %d = %v, want %v", i, c, want[i])
			}
		}
	}
}

func TestDijkstra(t *testing.T) {
	g := NewWeighted(4)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(1, 2, 2)
	_ = g.AddEdge(0, 2, 5)
	d := g.Dijkstra(0)
	if d[2] != 3 {
		t.Errorf("shortest 0->2: got %v, want 3", d[2])
	}
	if !math.IsInf(d[3], 1) {
		t.Errorf("unreachable: got %v", d[3])
	}
	if err := g.AddEdge(0, 1, -1); err == nil {
		t.Error("negative weight accepted")
	}
	if err := g.AddEdge(0, 9, 1); err == nil {
		t.Error("out-of-range weighted edge accepted")
	}
}

func TestDijkstraMatchesBFSOnUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(15)
		g := New(n)
		wg := NewWeighted(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					_ = g.AddEdge(i, j)
					_ = wg.AddEdge(i, j, 1)
				}
			}
		}
		bfs := g.BFSDistances(0)
		dij := wg.Dijkstra(0)
		for v := 0; v < n; v++ {
			if bfs[v] < 0 {
				if !math.IsInf(dij[v], 1) {
					t.Fatalf("trial %d: v%d BFS unreachable but Dijkstra %v", trial, v, dij[v])
				}
				continue
			}
			if float64(bfs[v]) != dij[v] {
				t.Fatalf("trial %d: v%d BFS %d vs Dijkstra %v", trial, v, bfs[v], dij[v])
			}
		}
	}
}

func TestGreedyColoringProper(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(20)
		g := New(n)
		maxDeg := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					_ = g.AddEdge(i, j)
				}
			}
		}
		for v := 0; v < n; v++ {
			if g.Degree(v) > maxDeg {
				maxDeg = g.Degree(v)
			}
		}
		order := rng.Perm(n)
		colors := g.GreedyColoring(order)
		for _, e := range g.Edges() {
			if colors[e[0]] == colors[e[1]] {
				t.Fatalf("trial %d: adjacent vertices %v share color %d", trial, e, colors[e[0]])
			}
		}
		for v, c := range colors {
			if c < 0 || c > maxDeg {
				t.Fatalf("trial %d: vertex %d color %d out of range [0,%d]", trial, v, c, maxDeg)
			}
		}
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) should panic")
		}
	}()
	New(-1)
}

// randomGraph draws a connected-ish random graph for property tests.
func randomGraph(n int, rng *rand.Rand) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		// Spanning-tree edge keeps most of the graph connected...
		if rng.Float64() < 0.9 {
			_ = g.AddEdge(rng.Intn(i), i)
		}
	}
	// ...plus random extra edges for path multiplicity.
	for e := 0; e < n; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			_ = g.AddEdge(u, v) // duplicates rejected, fine
		}
	}
	return g
}

func TestBFSScratchMatchesAllocatingVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(3+rng.Intn(40), rng)
		sc := NewBFSScratch(g.N())
		for src := 0; src < g.N(); src++ {
			want := g.BFSDistances(src)
			got := g.BFSDistancesScratch(src, sc)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("trial %d src %d: scratch dist[%d] = %d, want %d", trial, src, v, got[v], want[v])
				}
			}
			wd, wc := g.ShortestPathCounts(src)
			gd, gc := g.ShortestPathCountsScratch(src, sc)
			for v := range wd {
				if gd[v] != wd[v] || gc[v] != wc[v] {
					t.Fatalf("trial %d src %d: scratch counts (%d,%d), want (%d,%d)", trial, src, gd[v], gc[v], wd[v], wc[v])
				}
			}
		}
	}
}

// TestAllMultiPathDistancesWorkerCountInvariance: the parallel fan-out
// over sources must produce a bit-identical matrix at any worker count.
func TestAllMultiPathDistancesWorkerCountInvariance(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(5+rng.Intn(60), rng)
		seq := g.AllMultiPathDistancesWorkers(1)
		par := g.AllMultiPathDistancesWorkers(4)
		for u := range seq {
			for v := range seq[u] {
				sv, pv := seq[u][v], par[u][v]
				if sv != pv && !(math.IsInf(sv, 1) && math.IsInf(pv, 1)) {
					t.Fatalf("seed %d: [%d][%d] = %v workers=1 vs %v workers=4", seed, u, v, sv, pv)
				}
			}
		}
	}
}
