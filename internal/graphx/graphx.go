// Package graphx implements the small-graph algorithms the grouping and
// partitioning passes rely on: unweighted and weighted shortest paths,
// shortest-path multiplicity counting (the multi-path topological
// distance of the paper, d_top = n*l), connected components and greedy
// coloring helpers.
//
// Graphs are represented as adjacency lists over dense integer vertex
// ids [0, n). This keeps the algorithms allocation-light and trivially
// testable.
package graphx

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/parallel"
)

// Graph is an undirected graph over vertices 0..N-1.
type Graph struct {
	n   int
	adj [][]int
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graphx: negative vertex count %d", n))
	}
	return &Graph{n: n, adj: make([][]int, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge adds an undirected edge {u, v}. Self-loops and duplicate edges
// are rejected with an error because the chip model never produces them
// and their presence would silently distort path multiplicity counts.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graphx: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graphx: self-loop at %d", u)
	}
	for _, w := range g.adj[u] {
		if w == v {
			return fmt.Errorf("graphx: duplicate edge (%d,%d)", u, v)
		}
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	return nil
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency list of u. The returned slice is owned
// by the graph and must not be modified.
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// Degree returns the number of edges incident to u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Edges returns every undirected edge once, as ordered pairs (u < v).
func (g *Graph) Edges() [][2]int {
	var es [][2]int
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				es = append(es, [2]int{u, v})
			}
		}
	}
	return es
}

// BFSScratch holds the working buffers of one breadth-first traversal —
// the distance and path-count arrays plus the fixed-capacity vertex
// queue (every vertex is enqueued at most once, so a flat n-slot buffer
// with head/tail cursors replaces the historical slice-append queue and
// its re-slicing churn). One scratch serves any number of sequential
// traversals of graphs with at most the allocated vertex count; it must
// not be shared between concurrent traversals.
type BFSScratch struct {
	dist  []int
	count []int64
	queue []int
}

// NewBFSScratch returns scratch sized for n-vertex graphs.
func NewBFSScratch(n int) *BFSScratch {
	return &BFSScratch{
		dist:  make([]int, n),
		count: make([]int64, n),
		queue: make([]int, n),
	}
}

// bfsDistancesInto runs the distance-only BFS from src into sc.dist.
func (g *Graph) bfsDistancesInto(src int, sc *BFSScratch) {
	dist, queue := sc.dist[:g.n], sc.queue[:g.n]
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue[0] = src
	head, tail := 0, 1
	for head < tail {
		u := queue[head]
		head++
		du := dist[u] + 1
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = du
				queue[tail] = v
				tail++
			}
		}
	}
}

// shortestPathCountsInto runs the counting BFS from src into sc.dist
// and sc.count.
func (g *Graph) shortestPathCountsInto(src int, sc *BFSScratch) {
	dist, count, queue := sc.dist[:g.n], sc.count[:g.n], sc.queue[:g.n]
	for i := range dist {
		dist[i] = -1
		count[i] = 0
	}
	dist[src] = 0
	count[src] = 1
	queue[0] = src
	head, tail := 0, 1
	for head < tail {
		u := queue[head]
		head++
		du := dist[u] + 1
		for _, v := range g.adj[u] {
			switch {
			case dist[v] < 0:
				dist[v] = du
				count[v] = count[u]
				queue[tail] = v
				tail++
			case dist[v] == du:
				count[v] += count[u]
			}
		}
	}
}

// BFSDistances returns the unweighted shortest-path distance from src to
// every vertex. Unreachable vertices get -1. The returned slice is owned
// by the caller; loops running many traversals should use
// BFSDistancesScratch instead.
func (g *Graph) BFSDistances(src int) []int {
	sc := &BFSScratch{dist: make([]int, g.n), queue: make([]int, g.n)}
	g.bfsDistancesInto(src, sc)
	return sc.dist
}

// BFSDistancesScratch is BFSDistances computed in caller-owned scratch.
// The returned slice aliases sc and is valid until the next traversal
// using sc.
func (g *Graph) BFSDistancesScratch(src int, sc *BFSScratch) []int {
	g.bfsDistancesInto(src, sc)
	return sc.dist[:g.n]
}

// ShortestPathCounts returns, for a source vertex, both the shortest-path
// distance dist[v] and the number of distinct shortest paths count[v]
// from src to each v. Unreachable vertices have dist -1 and count 0.
//
// This implements the paper's multi-path topological metric: when n
// shortest paths of length l connect two qubits, d_top = n*l.
func (g *Graph) ShortestPathCounts(src int) (dist []int, count []int64) {
	sc := NewBFSScratch(g.n)
	g.shortestPathCountsInto(src, sc)
	return sc.dist, sc.count
}

// ShortestPathCountsScratch is ShortestPathCounts computed in
// caller-owned scratch. The returned slices alias sc and are valid
// until the next traversal using sc.
func (g *Graph) ShortestPathCountsScratch(src int, sc *BFSScratch) (dist []int, count []int64) {
	g.shortestPathCountsInto(src, sc)
	return sc.dist[:g.n], sc.count[:g.n]
}

// MultiPathDistance returns the paper's multi-path topological distance
// between u and v: n*l where l is the shortest-path length and n the
// number of distinct shortest paths. It returns +Inf when v is
// unreachable from u, and 0 when u == v.
func (g *Graph) MultiPathDistance(u, v int) float64 {
	if u == v {
		return 0
	}
	dist, count := g.ShortestPathCounts(u)
	if dist[v] < 0 {
		return math.Inf(1)
	}
	return float64(count[v]) * float64(dist[v])
}

// AllMultiPathDistances returns the full n×n multi-path distance matrix.
// Entry [i][j] is +Inf for unreachable pairs and 0 on the diagonal.
// Sources fan out over runtime.NumCPU() workers; the matrix is a pure
// function of the graph, so the worker count cannot change a single
// entry (every row is written only by its own source's task).
func (g *Graph) AllMultiPathDistances() [][]float64 {
	return g.AllMultiPathDistancesWorkers(0)
}

// AllMultiPathDistancesWorkers is AllMultiPathDistances with an
// explicit worker budget (<= 0: runtime.NumCPU(), 1: sequential). The
// rows share one flat n*n backing array, and each worker reuses one
// BFSScratch across all its sources.
func (g *Graph) AllMultiPathDistancesWorkers(workers int) [][]float64 {
	m := make([][]float64, g.n)
	flat := make([]float64, g.n*g.n)
	nWorkers := parallel.Resolve(workers, g.n)
	scratch := make([]*BFSScratch, nWorkers)
	for w := range scratch {
		scratch[w] = NewBFSScratch(g.n)
	}
	parallel.ForEachWorker(workers, g.n, func(worker, u int) {
		dist, count := g.ShortestPathCountsScratch(u, scratch[worker])
		row := flat[u*g.n : (u+1)*g.n : (u+1)*g.n]
		for v := 0; v < g.n; v++ {
			switch {
			case u == v:
				row[v] = 0
			case dist[v] < 0:
				row[v] = math.Inf(1)
			default:
				row[v] = float64(count[v]) * float64(dist[v])
			}
		}
		m[u] = row
	})
	return m
}

// Components returns the connected components of g, each as a sorted
// slice of vertex ids, ordered by their smallest vertex.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		// Insertion sort: components are small.
		for i := 1; i < len(comp); i++ {
			for j := i; j > 0 && comp[j] < comp[j-1]; j-- {
				comp[j], comp[j-1] = comp[j-1], comp[j]
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// WeightedEdge is an edge with a non-negative weight.
type WeightedEdge struct {
	To     int
	Weight float64
}

// WeightedGraph is an undirected graph with weighted edges.
type WeightedGraph struct {
	n   int
	adj [][]WeightedEdge
}

// NewWeighted returns an empty weighted graph with n vertices.
func NewWeighted(n int) *WeightedGraph {
	return &WeightedGraph{n: n, adj: make([][]WeightedEdge, n)}
}

// N returns the number of vertices.
func (g *WeightedGraph) N() int { return g.n }

// AddEdge adds an undirected weighted edge.
func (g *WeightedGraph) AddEdge(u, v int, w float64) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graphx: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if w < 0 {
		return fmt.Errorf("graphx: negative weight %g on edge (%d,%d)", w, u, v)
	}
	g.adj[u] = append(g.adj[u], WeightedEdge{To: v, Weight: w})
	g.adj[v] = append(g.adj[v], WeightedEdge{To: u, Weight: w})
	return nil
}

// Dijkstra returns the weighted shortest-path distances from src.
// Unreachable vertices get +Inf.
func (g *WeightedGraph) Dijkstra(src int) []float64 {
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.d > dist[item.v] {
			continue
		}
		for _, e := range g.adj[item.v] {
			if nd := item.d + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				heap.Push(pq, distItem{v: e.To, d: nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v int
	d float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// GreedyColoring colors the graph greedily in the given vertex order,
// returning color[v] for each vertex. Adjacent vertices always receive
// different colors; the number of colors used is at most maxDegree+1.
func (g *Graph) GreedyColoring(order []int) []int {
	color := make([]int, g.n)
	for i := range color {
		color[i] = -1
	}
	used := make([]bool, g.n+1)
	for _, u := range order {
		for _, v := range g.adj[u] {
			if c := color[v]; c >= 0 {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		color[u] = c
		for _, v := range g.adj[u] {
			if cv := color[v]; cv >= 0 {
				used[cv] = false
			}
		}
	}
	return color
}
