// Package graphx implements the small-graph algorithms the grouping and
// partitioning passes rely on: unweighted and weighted shortest paths,
// shortest-path multiplicity counting (the multi-path topological
// distance of the paper, d_top = n*l), connected components and greedy
// coloring helpers.
//
// Graphs are represented as adjacency lists over dense integer vertex
// ids [0, n). This keeps the algorithms allocation-light and trivially
// testable.
package graphx

import (
	"container/heap"
	"fmt"
	"math"
)

// Graph is an undirected graph over vertices 0..N-1.
type Graph struct {
	n   int
	adj [][]int
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graphx: negative vertex count %d", n))
	}
	return &Graph{n: n, adj: make([][]int, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge adds an undirected edge {u, v}. Self-loops and duplicate edges
// are rejected with an error because the chip model never produces them
// and their presence would silently distort path multiplicity counts.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graphx: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graphx: self-loop at %d", u)
	}
	for _, w := range g.adj[u] {
		if w == v {
			return fmt.Errorf("graphx: duplicate edge (%d,%d)", u, v)
		}
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	return nil
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency list of u. The returned slice is owned
// by the graph and must not be modified.
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// Degree returns the number of edges incident to u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Edges returns every undirected edge once, as ordered pairs (u < v).
func (g *Graph) Edges() [][2]int {
	var es [][2]int
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				es = append(es, [2]int{u, v})
			}
		}
	}
	return es
}

// BFSDistances returns the unweighted shortest-path distance from src to
// every vertex. Unreachable vertices get -1.
func (g *Graph) BFSDistances(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ShortestPathCounts returns, for a source vertex, both the shortest-path
// distance dist[v] and the number of distinct shortest paths count[v]
// from src to each v. Unreachable vertices have dist -1 and count 0.
//
// This implements the paper's multi-path topological metric: when n
// shortest paths of length l connect two qubits, d_top = n*l.
func (g *Graph) ShortestPathCounts(src int) (dist []int, count []int64) {
	dist = make([]int, g.n)
	count = make([]int64, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	count[src] = 1
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			switch {
			case dist[v] < 0:
				dist[v] = dist[u] + 1
				count[v] = count[u]
				queue = append(queue, v)
			case dist[v] == dist[u]+1:
				count[v] += count[u]
			}
		}
	}
	return dist, count
}

// MultiPathDistance returns the paper's multi-path topological distance
// between u and v: n*l where l is the shortest-path length and n the
// number of distinct shortest paths. It returns +Inf when v is
// unreachable from u, and 0 when u == v.
func (g *Graph) MultiPathDistance(u, v int) float64 {
	if u == v {
		return 0
	}
	dist, count := g.ShortestPathCounts(u)
	if dist[v] < 0 {
		return math.Inf(1)
	}
	return float64(count[v]) * float64(dist[v])
}

// AllMultiPathDistances returns the full n×n multi-path distance matrix.
// Entry [i][j] is +Inf for unreachable pairs and 0 on the diagonal.
func (g *Graph) AllMultiPathDistances() [][]float64 {
	m := make([][]float64, g.n)
	for u := 0; u < g.n; u++ {
		dist, count := g.ShortestPathCounts(u)
		row := make([]float64, g.n)
		for v := 0; v < g.n; v++ {
			switch {
			case u == v:
				row[v] = 0
			case dist[v] < 0:
				row[v] = math.Inf(1)
			default:
				row[v] = float64(count[v]) * float64(dist[v])
			}
		}
		m[u] = row
	}
	return m
}

// Components returns the connected components of g, each as a sorted
// slice of vertex ids, ordered by their smallest vertex.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		// Insertion sort: components are small.
		for i := 1; i < len(comp); i++ {
			for j := i; j > 0 && comp[j] < comp[j-1]; j-- {
				comp[j], comp[j-1] = comp[j-1], comp[j]
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// WeightedEdge is an edge with a non-negative weight.
type WeightedEdge struct {
	To     int
	Weight float64
}

// WeightedGraph is an undirected graph with weighted edges.
type WeightedGraph struct {
	n   int
	adj [][]WeightedEdge
}

// NewWeighted returns an empty weighted graph with n vertices.
func NewWeighted(n int) *WeightedGraph {
	return &WeightedGraph{n: n, adj: make([][]WeightedEdge, n)}
}

// N returns the number of vertices.
func (g *WeightedGraph) N() int { return g.n }

// AddEdge adds an undirected weighted edge.
func (g *WeightedGraph) AddEdge(u, v int, w float64) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graphx: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if w < 0 {
		return fmt.Errorf("graphx: negative weight %g on edge (%d,%d)", w, u, v)
	}
	g.adj[u] = append(g.adj[u], WeightedEdge{To: v, Weight: w})
	g.adj[v] = append(g.adj[v], WeightedEdge{To: u, Weight: w})
	return nil
}

// Dijkstra returns the weighted shortest-path distances from src.
// Unreachable vertices get +Inf.
func (g *WeightedGraph) Dijkstra(src int) []float64 {
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.d > dist[item.v] {
			continue
		}
		for _, e := range g.adj[item.v] {
			if nd := item.d + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				heap.Push(pq, distItem{v: e.To, d: nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v int
	d float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// GreedyColoring colors the graph greedily in the given vertex order,
// returning color[v] for each vertex. Adjacent vertices always receive
// different colors; the number of colors used is at most maxDegree+1.
func (g *Graph) GreedyColoring(order []int) []int {
	color := make([]int, g.n)
	for i := range color {
		color[i] = -1
	}
	used := make([]bool, g.n+1)
	for _, u := range order {
		for _, v := range g.adj[u] {
			if c := color[v]; c >= 0 {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		color[u] = c
		for _, v := range g.adj[u] {
			if cv := color[v]; cv >= 0 {
				used[cv] = false
			}
		}
	}
	return color
}
