package experiments

import (
	"testing"

	"repro/internal/chip"
)

func TestBuildPipelineSmallChip(t *testing.T) {
	c := chip.Square(4, 4)
	p, err := BuildPipeline(c, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Partition != nil {
		t.Error("16-qubit chip should not be partitioned (target 36)")
	}
	if err := p.FDM.Validate(c.NumQubits()); err != nil {
		t.Errorf("FDM grouping invalid: %v", err)
	}
	if err := p.FreqPlan.Validate(p.FDM); err != nil {
		t.Errorf("frequency plan invalid: %v", err)
	}
	if err := p.TDM.Validate(p.Gates); err != nil {
		t.Errorf("TDM grouping invalid: %v", err)
	}
	if p.ModelXY == nil || p.ModelZZ == nil {
		t.Fatal("missing crosstalk models")
	}
	if p.ModelXY.Weights.WPhy == 0 && p.ModelXY.Weights.WTop == 0 {
		t.Error("degenerate XY model weights")
	}
}

func TestBuildPipelinePartitionsLargeChip(t *testing.T) {
	c := chip.Square(8, 8)
	p, err := BuildPipeline(c, Options{Seed: 1, PartitionTargetSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if p.Partition == nil {
		t.Fatal("64-qubit chip should be partitioned at target 16")
	}
	if err := p.Partition.Validate(c); err != nil {
		t.Errorf("partition invalid: %v", err)
	}
	if len(p.Partition.Regions) < 3 {
		t.Errorf("only %d regions", len(p.Partition.Regions))
	}
	// Groupings must still cover the whole chip.
	if err := p.FDM.Validate(c.NumQubits()); err != nil {
		t.Errorf("FDM grouping invalid: %v", err)
	}
	if err := p.TDM.Validate(p.Gates); err != nil {
		t.Errorf("TDM grouping invalid: %v", err)
	}
	if err := p.FreqPlan.Validate(p.FDM); err != nil {
		t.Errorf("frequency plan invalid: %v", err)
	}
}

func TestBuildPipelineDeterministic(t *testing.T) {
	c := chip.Square(4, 4)
	p1, err := BuildPipeline(c, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := BuildPipeline(chip.Square(4, 4), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if p1.TDM.NumZLines() != p2.TDM.NumZLines() {
		t.Error("TDM results differ across identical seeds")
	}
	for q, f := range p1.FreqPlan.Freq {
		if p2.FreqPlan.Freq[q] != f {
			t.Fatalf("frequency plan differs at q%d", q)
		}
	}
}

func TestPipelineRespectsFDMCapacity(t *testing.T) {
	c := chip.Square(4, 4)
	p, err := BuildPipeline(c, Options{Seed: 1, FDMCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	for li, g := range p.FDM.Groups {
		if len(g) > 4 {
			t.Errorf("line %d has %d qubits, capacity 4", li, len(g))
		}
	}
}

func TestScheduleBenchmarkThroughPipeline(t *testing.T) {
	c := chip.Square(4, 4)
	p, err := BuildPipeline(c, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := p.ScheduleBenchmark("DJ", 5)
	if err != nil {
		t.Fatal(err)
	}
	if sched.TwoQubitDepth == 0 || sched.LatencyNs == 0 {
		t.Errorf("degenerate schedule: depth %d latency %v", sched.TwoQubitDepth, sched.LatencyNs)
	}
	if _, err := p.ScheduleBenchmark("nope", 5); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestOptionsNormalization(t *testing.T) {
	o := Options{}.normalized()
	if o.Seed != 1 || o.FDMCapacity != 5 || o.Theta != 4 {
		t.Errorf("defaults wrong: %+v", o)
	}
	if o.MaxFitSamples != 1500 || o.PartitionTargetSize != 36 {
		t.Errorf("defaults wrong: %+v", o)
	}
	if len(o.Fit.WeightGrid) == 0 || o.Fit.Folds != 5 {
		t.Errorf("fit defaults wrong: %+v", o.Fit)
	}
}
