package experiments

import (
	"context"
	"sync"
	"testing"

	"repro/internal/chip"
	"repro/internal/faults"
	"repro/internal/partition"
	"repro/internal/stage"
)

// captureArtifacts builds a design while recording every executed
// stage's artifact value through the store's exec-wrapper seam.
func captureArtifacts(t *testing.T, opts Options) map[string]any {
	t.Helper()
	dc := NewDesignCacheWithStore(stage.NewStore())
	var mu sync.Mutex
	artifacts := make(map[string]any)
	dc.Store().Wrap(func(name string, _ stage.Key, fn func(context.Context) (any, error)) func(context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			v, err := fn(ctx)
			if err == nil {
				mu.Lock()
				artifacts[name] = v
				mu.Unlock()
			}
			return v, err
		}
	})
	if _, err := dc.Designer(chip.Square(5, 5)).RedesignCtx(context.Background(), opts); err != nil {
		t.Fatalf("build: %v", err)
	}
	return artifacts
}

// TestStageCodecsRoundTrip drives every registered codec with the real
// artifact its stage produces and checks the stage.Codec law:
// re-encoding the decoded value reproduces the original bytes exactly.
// The options force the rich variants — a non-nil fault plan, a real
// partition, annealed allocation — so no codec is tested on a
// degenerate artifact only.
func TestStageCodecsRoundTrip(t *testing.T) {
	artifacts := captureArtifacts(t, Options{
		Seed:                3,
		Faults:              faults.UniformSpec(0.02),
		AnnealSteps:         50,
		PartitionTargetSize: 9,
	})
	codecs := StageCodecs()
	if len(codecs) != len(PipelineStageGraph.Stages()) {
		t.Errorf("%d codecs registered for %d pipeline stages — a stage would silently stay memory-only",
			len(codecs), len(PipelineStageGraph.Stages()))
	}
	for name, codec := range codecs {
		v, ok := artifacts[name]
		if !ok {
			t.Errorf("stage %s produced no artifact under the rich options", name)
			continue
		}
		if _, err := codec.RoundTrip(v); err != nil {
			t.Errorf("stage %s: %v", name, err)
		}
	}
}

// Typed-nil artifacts (the perfect-device fault plan, the whole-chip
// partition) must persist their nil-ness.
func TestStageCodecsRoundTripNilArtifacts(t *testing.T) {
	artifacts := captureArtifacts(t, Options{Seed: 3})
	codecs := StageCodecs()

	if v := artifacts[StageFaults]; v != any((*faults.Plan)(nil)) {
		t.Fatalf("fault-free build produced %#v, not a typed-nil plan", v)
	}
	got, err := codecs[StageFaults].RoundTrip(artifacts[StageFaults])
	if err != nil {
		t.Fatalf("nil fault plan: %v", err)
	}
	if p := got.(*faults.Plan); p != nil {
		t.Fatalf("nil plan decoded as %#v", p)
	}

	if v := artifacts[StagePartition]; v != any((*partition.Partition)(nil)) {
		t.Fatalf("whole-chip build produced %#v, not a typed-nil partition", v)
	}
	got, err = codecs[StagePartition].RoundTrip(artifacts[StagePartition])
	if err != nil {
		t.Fatalf("nil partition: %v", err)
	}
	if p := got.(*partition.Partition); p != nil {
		t.Fatalf("nil partition decoded as %#v", p)
	}
}

// A codec handed another stage's artifact must refuse, not encode
// garbage: the type assertion is the last line of defense against a
// mis-registered codec map.
func TestStageCodecsRejectForeignArtifacts(t *testing.T) {
	codecs := StageCodecs()
	for name, codec := range codecs {
		if _, err := codec.Encode(42); err == nil {
			t.Errorf("stage %s encoded an int artifact", name)
		}
	}
}

// Decoders must fail cleanly on malformed bytes — every decode error
// is a cache miss, never a panic or a half-built artifact.
func TestStageCodecsDecodeMalformed(t *testing.T) {
	inputs := [][]byte{nil, {}, {0x01}, {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}}
	for name, codec := range StageCodecs() {
		for _, data := range inputs {
			if _, err := codec.Decode(data); err == nil {
				t.Errorf("stage %s decoded %d garbage bytes without error", name, len(data))
			}
		}
	}
}
