package experiments

import (
	"errors"
	"fmt"
)

// DesignError reports which pipeline stage failed, so callers (and
// operators reading logs) see where a degraded design gave up instead
// of a bare cause. It wraps the stage's underlying error; errors.Is /
// errors.As see through it, so context cancellation and sentinel
// checks keep working.
type DesignError struct {
	// Stage names the failing pipeline stage: "faults", "characterize",
	// "partition", "fdm", "allocate", "anneal", "tdm" or "validate".
	Stage string
	Err   error
}

// Error implements error.
func (e *DesignError) Error() string {
	return fmt.Sprintf("youtiao design: stage %s: %v", e.Stage, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is / errors.As.
func (e *DesignError) Unwrap() error { return e.Err }

// stageErr wraps err in a DesignError unless it is nil or already one
// (an inner stage keeps its more precise stage name).
func stageErr(stage string, err error) error {
	if err == nil {
		return nil
	}
	var de *DesignError
	if errors.As(err, &de) {
		return err
	}
	return &DesignError{Stage: stage, Err: err}
}
