package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/chip"
	"repro/internal/fdm"
	"repro/internal/xmon"
)

// FDM strategy names used across Figure 13.
const (
	StrategyYoutiao  = "youtiao"
	StrategyGeorge   = "george"
	StrategyBaseline = "baseline"
)

// Fig13aRow reports the per-gate fidelity of random single-qubit gate
// layers on 4-qubit FDM lines of the 36-qubit chip for one grouping /
// allocation strategy.
type Fig13aRow struct {
	Strategy        string
	PerGateFidelity float64
	PerGateError    float64
}

// Fig13bPoint is one depth of the Figure 13(b) fidelity-decay curves
// (whole 36-qubit chip, 9 FDM lines, all driven in parallel).
type Fig13bPoint struct {
	Layers   int
	Youtiao  float64
	George   float64
	Baseline float64
}

// Fig13Result bundles both panels.
type Fig13Result struct {
	A []Fig13aRow
	B []Fig13bPoint
}

// Fig13 reproduces Figure 13 on the 36-qubit (6×6) chip:
//
//	(a) per-gate fidelity of 10 random gate layers on 4-qubit FDM lines
//	    under YOUTIAO (noise-aware grouping + two-level allocation),
//	    George et al. (local clustering + in-line-only allocation) and
//	    the unoptimized baseline (local clustering, fabrication
//	    frequencies);
//	(b) whole-chip fidelity decay over up to 100 layers.
func Fig13(opts Options) (*Fig13Result, error) {
	opts = opts.normalized()
	opts.FDMCapacity = 4 // the paper uses 4-qubit FDM lines here
	rng := rand.New(rand.NewSource(opts.Seed))
	dev := xmon.NewDevice(chip.Square(6, 6), xmon.DefaultParams(), rng)

	plans, err := fig13Plans(dev, opts)
	if err != nil {
		return nil, err
	}

	all := firstN(dev.Chip.NumQubits())
	res := &Fig13Result{}
	for _, s := range []string{StrategyYoutiao, StrategyGeorge, StrategyBaseline} {
		total := planLayerFidelity(dev, plans[s], all, Fig12Layers)
		pg := perGate(total, Fig12Layers*len(all))
		res.A = append(res.A, Fig13aRow{Strategy: s, PerGateFidelity: pg, PerGateError: 1 - pg})
	}
	for layers := 10; layers <= 100; layers += 10 {
		res.B = append(res.B, Fig13bPoint{
			Layers:   layers,
			Youtiao:  planLayerFidelity(dev, plans[StrategyYoutiao], all, layers),
			George:   planLayerFidelity(dev, plans[StrategyGeorge], all, layers),
			Baseline: planLayerFidelity(dev, plans[StrategyBaseline], all, layers),
		})
	}
	return res, nil
}

// fig13Plans builds the frequency plan of each strategy.
func fig13Plans(dev *xmon.Device, opts Options) (map[string]map[int]float64, error) {
	c := dev.Chip
	model, _, err := fitModel(context.Background(), c, dev, xmon.XY, opts, opts.Seed, streamMeasureXY, streamSubsampleXY, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig13 fit: %w", err)
	}
	pred := model.On(c)
	all := firstN(c.NumQubits())

	// YOUTIAO: noise-aware grouping + two-level allocation.
	yg, err := fdm.Group(all, opts.FDMCapacity, pred.EquivDistance)
	if err != nil {
		return nil, err
	}
	yPlan, err := fdm.Allocate(yg, pred.Predict, fdm.DefaultAllocOptions())
	if err != nil {
		return nil, err
	}

	// George et al.: local clustering, in-line-only even spreading.
	lg := fdm.LocalClusterGroup(all, opts.FDMCapacity)
	gPlan := fdm.InLineAllocate(lg)

	// Baseline: local clustering, fabrication frequencies untouched.
	base := make(map[int]float64, c.NumQubits())
	for _, q := range c.Qubits {
		base[q.ID] = q.BaseFreq
	}

	return map[string]map[int]float64{
		StrategyYoutiao:  yPlan.Freq,
		StrategyGeorge:   gPlan.Freq,
		StrategyBaseline: base,
	}, nil
}
