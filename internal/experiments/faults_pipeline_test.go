package experiments

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/chip"
	"repro/internal/faults"
)

func TestOptionsNormalizedExplicitZero(t *testing.T) {
	def := Options{}.normalized()
	if def.Theta != 4 {
		t.Errorf("default Theta = %v, want 4", def.Theta)
	}
	if def.MaxFitSamples != 1500 {
		t.Errorf("default MaxFitSamples = %v, want 1500", def.MaxFitSamples)
	}
	if def.RetryBudget != 3 {
		t.Errorf("default RetryBudget = %v, want 3", def.RetryBudget)
	}

	expl := Options{HasTheta: true, HasMaxFitSamples: true}.normalized()
	if expl.Theta != 0 {
		t.Errorf("explicit Theta 0 overridden to %v", expl.Theta)
	}
	if expl.MaxFitSamples != 0 {
		t.Errorf("explicit MaxFitSamples 0 overridden to %v", expl.MaxFitSamples)
	}

	noRetry := Options{RetryBudget: -1}.normalized()
	if noRetry.RetryBudget != 0 {
		t.Errorf("RetryBudget -1 normalized to %v, want 0", noRetry.RetryBudget)
	}
}

func TestOptionsNormalizedAutoTrim(t *testing.T) {
	o := Options{Faults: faults.Spec{OutlierRate: 0.03}}.normalized()
	if o.Fit.TrimOutlierFraction != 0.06 {
		t.Errorf("auto trim fraction = %v, want 0.06", o.Fit.TrimOutlierFraction)
	}
	o = Options{Faults: faults.Spec{OutlierRate: 0.5}}.normalized()
	if o.Fit.TrimOutlierFraction != 0.2 {
		t.Errorf("auto trim fraction = %v, want cap 0.2", o.Fit.TrimOutlierFraction)
	}
	o = Options{Faults: faults.Spec{OutlierRate: 0.5}, Fit: Options{}.normalized().Fit}
	o.Fit.TrimOutlierFraction = 0.01
	if o.normalized().Fit.TrimOutlierFraction != 0.01 {
		t.Error("explicit trim fraction overridden")
	}
}

// faultOpts is the acceptance-criteria configuration: an 8x8 chip at a
// uniform 2% defect rate.
func faultOpts(workers int) Options {
	return Options{Seed: 5, Workers: workers, Faults: faults.UniformSpec(0.02)}
}

func buildFaulty(t *testing.T, workers int) *Pipeline {
	t.Helper()
	p, err := BuildPipeline(chip.Square(8, 8), faultOpts(workers))
	if err != nil {
		t.Fatalf("BuildPipeline with faults (workers=%d): %v", workers, err)
	}
	return p
}

// TestBuildPipelineWithFaults: the degraded build completes, passes
// Validate, and no dead or broken device appears in any group.
func TestBuildPipelineWithFaults(t *testing.T) {
	p := buildFaulty(t, 0)
	if p.Faults == nil {
		t.Fatal("fault plan missing from pipeline")
	}
	if len(p.Faults.DeadQubits()) == 0 {
		t.Fatal("2% plan on 64 qubits drew no dead qubits (seed too lucky for the test)")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for gi, grp := range p.FDM.Groups {
		for _, q := range grp {
			if p.Faults.QubitDead(q) {
				t.Errorf("FDM group %d contains dead qubit %d", gi, q)
			}
		}
	}
	for gid, grp := range p.TDM.Groups {
		for _, d := range grp.Devices {
			if p.Gates.Dev.IsCoupler(d) {
				if !p.Faults.CouplerUsable(p.Chip, p.Gates.Dev.CouplerID(d)) {
					t.Errorf("TDM group %d contains unusable coupler device %s", gid, p.Gates.Dev.Name(d))
				}
			} else if p.Faults.QubitDead(d) {
				t.Errorf("TDM group %d contains dead qubit %d", gid, d)
			}
		}
	}
	if p.Calib.Pairs == 0 || p.Calib.SkippedDead == 0 {
		t.Errorf("campaign stats not recorded: %+v", p.Calib)
	}
}

// TestBuildPipelineFaultDeterminism: the full degraded design is
// bit-identical for 1 and 4 workers.
func TestBuildPipelineFaultDeterminism(t *testing.T) {
	p1 := buildFaulty(t, 1)
	p4 := buildFaulty(t, 4)

	if !reflect.DeepEqual(p1.Faults.DeadQubits(), p4.Faults.DeadQubits()) {
		t.Fatal("fault plans differ across worker counts")
	}
	if p1.Partition == nil || p4.Partition == nil {
		t.Fatal("64-qubit build skipped partitioning")
	}
	if !reflect.DeepEqual(p1.Partition.Regions, p4.Partition.Regions) {
		t.Error("partition regions differ across worker counts")
	}
	if !reflect.DeepEqual(p1.FDM.Groups, p4.FDM.Groups) {
		t.Error("FDM groups differ across worker counts")
	}
	if !reflect.DeepEqual(p1.FreqPlan.Freq, p4.FreqPlan.Freq) {
		t.Error("frequency plans differ across worker counts")
	}
	if len(p1.TDM.Groups) != len(p4.TDM.Groups) {
		t.Fatalf("TDM group counts differ: %d vs %d", len(p1.TDM.Groups), len(p4.TDM.Groups))
	}
	for gi := range p1.TDM.Groups {
		if !reflect.DeepEqual(p1.TDM.Groups[gi].Devices, p4.TDM.Groups[gi].Devices) ||
			p1.TDM.Groups[gi].Level != p4.TDM.Groups[gi].Level {
			t.Fatalf("TDM group %d differs across worker counts", gi)
		}
	}
	if p1.Calib != p4.Calib {
		t.Errorf("campaign stats differ: %+v vs %+v", p1.Calib, p4.Calib)
	}
	if p1.ModelXY.Weights != p4.ModelXY.Weights || p1.ModelZZ.Weights != p4.ModelZZ.Weights {
		t.Error("fitted model weights differ across worker counts")
	}
}

// TestBuildPipelineDeadline: a deadline that cannot possibly fit the
// build surfaces context.DeadlineExceeded promptly.
func TestBuildPipelineDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := BuildPipelineCtx(ctx, chip.Square(8, 8), faultOpts(0))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation not prompt: took %v", elapsed)
	}
	var de *DesignError
	if !errors.As(err, &de) {
		t.Errorf("deadline error not wrapped in DesignError: %v", err)
	}
}

func TestBuildPipelineAllDead(t *testing.T) {
	opts := Options{Seed: 1, Faults: faults.Spec{DeadQubitRate: 1}}
	_, err := BuildPipeline(chip.Square(3, 3), opts)
	var de *DesignError
	if !errors.As(err, &de) {
		t.Fatalf("want DesignError, got %v", err)
	}
	if de.Stage != "faults" {
		t.Errorf("stage = %q, want faults", de.Stage)
	}
}

func TestDefectSweep(t *testing.T) {
	rates := []float64{0, 0.02, 0.05}
	points, err := DefectSweep(context.Background(), chip.Square(5, 5), rates, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(rates) {
		t.Fatalf("got %d points, want %d", len(points), len(rates))
	}
	clean := points[0]
	if clean.DeadQubits != 0 || clean.AliveQubits != 25 {
		t.Errorf("rate-0 point reports damage: %+v", clean)
	}
	for _, pt := range points {
		if pt.AliveQubits+pt.DeadQubits != 25 {
			t.Errorf("rate %.2f: alive %d + dead %d != 25", pt.Rate, pt.AliveQubits, pt.DeadQubits)
		}
		if pt.XYLines <= 0 || pt.ZLines <= 0 || pt.WiringCost <= 0 {
			t.Errorf("rate %.2f: degenerate wiring %+v", pt.Rate, pt)
		}
		if pt.GateFidelity <= 0 || pt.GateFidelity > 1 {
			t.Errorf("rate %.2f: fidelity %v out of range", pt.Rate, pt.GateFidelity)
		}
	}
}
