package experiments

import (
	"context"
	"fmt"

	"repro/internal/fdm"
	"repro/internal/parallel"
	"repro/internal/stage"
)

// fdmGroupKey keys the per-region FDM grouping: partition and XY-model
// lineage plus the line capacity. The region list is a pure function of
// the partition artifact, so it rides on partK.
func fdmGroupKey(partK, xyK stage.Key, capacity int) stage.Key {
	return stage.NewKey(StageFDMGroup).
		Key(partK).Key(xyK).Int(capacity).
		Done()
}

// runFDMGroupStage groups every region's qubits onto shared XY lines,
// fanning regions out over the worker pool and assembling in region
// order so the artifact is deterministic.
func runFDMGroupStage(ctx context.Context, store *stage.Store, key stage.Key, regions [][]int, capacity int, dist fdm.DistanceFunc, workers int) (*fdm.Grouping, error) {
	g, _, err := stage.Do(ctx, store, StageFDMGroup, key, parallel.Workers(workers), func(ctx context.Context) (*fdm.Grouping, error) {
		out := &fdm.Grouping{Capacity: capacity}
		results := make([]*fdm.Grouping, len(regions))
		err := parallel.ForEachCtx(ctx, workers, len(regions), func(ri int) error {
			var err error
			results[ri], err = fdm.Group(regions[ri], capacity, dist)
			if err != nil {
				return fmt.Errorf("region %d: %w", ri, err)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for ri := range regions {
			out.Groups = append(out.Groups, results[ri].Groups...)
		}
		return out, nil
	})
	return g, err
}

// allocateKey keys the two-level frequency allocation: it reads only
// the FDM grouping and the XY predictor, both already in the lineage.
func allocateKey(fdmK, xyK stage.Key) stage.Key {
	return stage.NewKey(StageAllocate).Key(fdmK).Key(xyK).Done()
}

// runAllocateStage runs the greedy two-level frequency allocation.
func runAllocateStage(ctx context.Context, store *stage.Store, key stage.Key, g *fdm.Grouping, xt fdm.CrosstalkFunc) (*fdm.FrequencyPlan, error) {
	plan, _, err := stage.Do(ctx, store, StageAllocate, key, 1, func(context.Context) (*fdm.FrequencyPlan, error) {
		return fdm.Allocate(g, xt, fdm.DefaultAllocOptions())
	})
	return plan, err
}

// annealKey keys the simulated-annealing refinement: the allocation it
// starts from plus the step budget and the anneal seed.
func annealKey(allocK stage.Key, steps int, seed int64) stage.Key {
	return stage.NewKey(StageAnneal).Key(allocK).Int(steps).Int64(seed).Done()
}

// runAnnealStage refines a frequency plan with simulated annealing.
// fdm.Anneal returns a fresh plan, so the cached input stays immutable.
func runAnnealStage(ctx context.Context, store *stage.Store, key stage.Key, plan *fdm.FrequencyPlan, g *fdm.Grouping, xt fdm.CrosstalkFunc, steps int, seed int64) (*fdm.FrequencyPlan, error) {
	refined, _, err := stage.Do(ctx, store, StageAnneal, key, 1, func(context.Context) (*fdm.FrequencyPlan, error) {
		opts := fdm.DefaultAnnealOptions()
		opts.Steps = steps
		opts.Seed = seed
		out, _, _, err := fdm.Anneal(plan, g, xt, opts)
		return out, err
	})
	return refined, err
}
