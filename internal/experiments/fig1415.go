package experiments

import (
	"fmt"

	"repro/internal/chip"
	"repro/internal/circuit"
	"repro/internal/quantum"
	"repro/internal/schedule"
	"repro/internal/tdm"
	"repro/internal/xmon"
)

// BenchRow reports, for one benchmark circuit on the 36-qubit chip, the
// two-qubit gate depth (Figure 14) and the estimated circuit fidelity
// (Figure 15) under the three architectures.
type BenchRow struct {
	Benchmark circuit.BenchmarkName

	GoogleDepth  int
	YoutiaoDepth int
	AcharyaDepth int

	GoogleLatencyNs  float64
	YoutiaoLatencyNs float64
	AcharyaLatencyNs float64

	GoogleFidelity  float64
	YoutiaoFidelity float64
	AcharyaFidelity float64
}

// benchmarkQubits sizes each workload on the 36-qubit chip: the full
// register for the shallow variational/Ising ansätze, and the moderate
// algorithm sizes of the paper's motivation (e.g. the 8-qubit DJ) for
// the deep circuits, whose 36-qubit variants would be decoherence-dead
// on any architecture.
var benchmarkQubits = map[circuit.BenchmarkName]int{
	circuit.BenchVQC:   16,
	circuit.BenchIsing: 16,
	circuit.BenchDJ:    9,
	circuit.BenchQFT:   8,
	circuit.BenchQKNN:  9,
}

// Figs14And15 reproduces Figures 14 and 15: the five benchmarks are
// compiled to the 6×6 chip and scheduled under Google's dedicated
// wiring, YOUTIAO's TDM grouping, and the Acharya-style local-cluster
// TDM baseline; each schedule is scored for 2q-gate depth, latency and
// fidelity (true device crosstalk + T1 decay).
func Figs14And15(opts Options) ([]BenchRow, error) {
	opts = opts.normalized()
	c := chip.Square(6, 6)
	p, err := BuildPipeline(c, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig14/15 pipeline: %w", err)
	}
	acharya, err := tdm.LocalClusterGroup(p.Gates, 4)
	if err != nil {
		return nil, err
	}

	baseFreq := make(map[int]float64, c.NumQubits())
	for _, q := range c.Qubits {
		baseFreq[q.ID] = q.BaseFreq
	}
	trueXT := func(i, j int) float64 { return p.Device.Coupling(xmon.XY, i, j) }
	trueZZ := func(i, j int) float64 { return p.Device.Coupling(xmon.ZZ, i, j) }

	var rows []BenchRow
	for _, name := range circuit.AllBenchmarks {
		logical, err := circuit.Benchmark(name, benchmarkQubits[name], opts.Seed)
		if err != nil {
			return nil, err
		}
		compiled, err := circuit.CompileSabre(logical, c)
		if err != nil {
			return nil, fmt.Errorf("experiments: compile %s: %w", name, err)
		}

		row := BenchRow{Benchmark: name}
		runs := []struct {
			grouping *tdm.Grouping
			freq     map[int]float64
			depth    *int
			latency  *float64
			fid      *float64
		}{
			{nil, baseFreq, &row.GoogleDepth, &row.GoogleLatencyNs, &row.GoogleFidelity},
			{p.TDM, p.FreqPlan.Freq, &row.YoutiaoDepth, &row.YoutiaoLatencyNs, &row.YoutiaoFidelity},
			{acharya, baseFreq, &row.AcharyaDepth, &row.AcharyaLatencyNs, &row.AcharyaFidelity},
		}
		for _, r := range runs {
			sched, err := schedule.New(c, r.grouping, schedule.DefaultDurations()).Run(compiled.Circuit)
			if err != nil {
				return nil, fmt.Errorf("experiments: schedule %s: %w", name, err)
			}
			*r.depth = sched.TwoQubitDepth
			*r.latency = sched.LatencyNs
			nm := quantum.NewNoiseModel(trueXT, r.freq)
			nm.ZZ = trueZZ
			fid, err := nm.EstimateSchedule(sched, logical.NumQubits)
			if err != nil {
				return nil, fmt.Errorf("experiments: fidelity %s: %w", name, err)
			}
			*r.fid = fid
		}
		rows = append(rows, row)
	}
	return rows, nil
}
