package experiments

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/cost"
	"repro/internal/schedule"
	"repro/internal/surface"
	"repro/internal/wiring"
)

// Table1Row is one (distance, architecture) cell row of Table 1:
// wiring results of fault-tolerant quantum chips over 25 EC cycles.
type Table1Row struct {
	Architecture  string
	Distance      int
	XYLines       int
	ZLines        int
	WiringCostUSD float64
	TwoQGateDepth int
}

// Table1Distances are the code distances evaluated in the paper.
var Table1Distances = []int{3, 5, 7, 9, 11}

// Table1Cycles is the error-correction cycle count of the case study.
const Table1Cycles = 25

// Table1 reproduces Table 1: for each surface-code distance, the
// Google-baseline and YOUTIAO wiring bills and the two-qubit gate depth
// of a 25-cycle error-correction circuit under each architecture.
func Table1(opts Options) ([]Table1Row, error) {
	return Table1Cached(opts, NewDesignCache())
}

// Table1Cached is Table1 with its per-distance pipelines built through
// a shared artifact cache: re-running the table (or sweeping one knob
// over it) recalls every stage whose keyed inputs are unchanged.
func Table1Cached(opts Options, cache *DesignCache) ([]Table1Row, error) {
	model := cost.DefaultModel()
	// The fault-tolerant case study runs in the paper's surface-code
	// operation mode: parity XY drives are FDM'd, qubit Z activity is
	// sparse DC parking, and CZ pulses ride the couplers. Coupler
	// grouping stays near-strict so EC cycles keep their 4-layer CZ
	// cadence.
	opts.SparseQubitZ = true
	if opts.TDMMinLossyFraction == 0 {
		opts.TDMMinLossyFraction = 0.8
	}
	var rows []Table1Row
	for _, d := range Table1Distances {
		code, err := surface.New(d)
		if err != nil {
			return nil, err
		}
		circ := circuit.Decompose(code.CycleCircuit(Table1Cycles))

		// Google: dedicated lines, no TDM serialization.
		gPlan := wiring.Google(code.Chip)
		gSched, err := schedule.New(code.Chip, nil, schedule.DefaultDurations()).Run(circ)
		if err != nil {
			return nil, fmt.Errorf("experiments: table1 d=%d google: %w", d, err)
		}
		rows = append(rows, Table1Row{
			Architecture:  "google",
			Distance:      d,
			XYLines:       gPlan.XYLines,
			ZLines:        gPlan.ZLines,
			WiringCostUSD: model.WiringCost(gPlan),
			TwoQGateDepth: gSched.TwoQubitDepth,
		})

		// YOUTIAO: full pipeline on the surface chip, designed through
		// the cache (surface.New returns a fresh chip per call, but
		// equal fingerprints share artifacts across runs).
		p, err := cache.Designer(code.Chip).Redesign(opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: table1 d=%d pipeline: %w", d, err)
		}
		yPlan, err := wiring.Youtiao(p.Chip, p.FDM, p.TDM)
		if err != nil {
			return nil, err
		}
		ySch := schedule.New(p.Chip, p.TDM, schedule.DefaultDurations())
		ySch.CZMode = schedule.CZCouplerOnly
		ySched, err := ySch.Run(circ)
		if err != nil {
			return nil, fmt.Errorf("experiments: table1 d=%d youtiao: %w", d, err)
		}
		rows = append(rows, Table1Row{
			Architecture:  "youtiao",
			Distance:      d,
			XYLines:       yPlan.XYLines,
			ZLines:        yPlan.ZLines,
			WiringCostUSD: model.WiringCost(yPlan),
			TwoQGateDepth: ySched.TwoQubitDepth,
		})
	}
	return rows, nil
}
