package experiments

import (
	"context"
	"fmt"

	"repro/internal/chip"
	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/wiring"
)

// DefectPoint is one row of the defect sweep: the designed system for a
// chip degraded at a uniform defect rate, with the wiring and fidelity
// the degraded design still achieves.
type DefectPoint struct {
	// Rate is the uniform defect rate applied to every fault class.
	Rate float64
	// AliveQubits, DeadQubits, BrokenCouplers and StuckLossy summarize
	// the drawn fault plan.
	AliveQubits    int
	DeadQubits     int
	BrokenCouplers int
	StuckLossy     int
	// Calib is the calibration campaign accounting (dropouts, retries,
	// lost pairs, outliers) at this rate.
	Calib faults.CampaignStats
	// XYLines, ZLines and CoaxLines are the degraded design's wiring.
	XYLines   int
	ZLines    int
	CoaxLines int
	// WiringCost is the plan's cost under cost.DefaultModel.
	WiringCost float64
	// GateFidelity is the per-gate fidelity of Fig12Layers rounds of
	// simultaneous 1q drives over the alive qubits.
	GateFidelity float64
	// CacheHits and CacheMisses count the artifact-store traffic of this
	// point's build: hits are stages recalled from an earlier point
	// (fabrication is shared across the whole sweep; repeated rates reuse
	// everything), misses are stages that actually executed.
	CacheHits   int
	CacheMisses int
}

// DefectSweep designs the chip at each uniform defect rate and reports
// how gracefully the pipeline degrades: every returned point passed
// Pipeline.Validate, so a sweep that completes certifies the
// degradation contract across the rate range. Rates must be
// non-decreasing in damage tolerance — a rate that kills the whole
// chip aborts the sweep with the failing rate in the error.
//
// All points build through one Designer, so stages whose keyed inputs
// repeat across rates (fabrication always; everything for a repeated
// rate) are recalled from the artifact store instead of re-executed;
// each point logs its hit/miss counts.
func DefectSweep(ctx context.Context, c *chip.Chip, rates []float64, opts Options) ([]DefectPoint, error) {
	return DefectSweepWith(ctx, NewDesigner(c), rates, opts)
}

// DefectSweepWith is DefectSweep over a caller-provided Designer —
// typically one handed out by a persistent DesignCache, so a re-run
// sweep recalls every point's stages from the warm disk tier instead
// of re-executing them.
func DefectSweepWith(ctx context.Context, designer *Designer, rates []float64, opts Options) ([]DefectPoint, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("experiments: defect sweep needs at least one rate")
	}
	model := cost.DefaultModel()
	points := make([]DefectPoint, 0, len(rates))
	for _, rate := range rates {
		o := opts
		o.Faults = faults.UniformSpec(rate)
		before := designer.Report()
		p, err := designer.RedesignCtx(ctx, o)
		if err != nil {
			return points, fmt.Errorf("experiments: defect sweep at rate %.3f: %w", rate, err)
		}
		delta := designer.Report().Sub(before)
		if err := p.Validate(); err != nil {
			return points, fmt.Errorf("experiments: defect sweep at rate %.3f: %w", rate, err)
		}
		plan, err := wiring.Youtiao(p.Chip, p.FDM, p.TDM)
		if err != nil {
			return points, fmt.Errorf("experiments: defect sweep at rate %.3f: wiring: %w", rate, err)
		}
		alive := p.aliveQubits()
		total := planLayerFidelity(p.Device, p.FreqPlan.Freq, alive, Fig12Layers)
		pt := DefectPoint{
			Rate:         rate,
			AliveQubits:  len(alive),
			XYLines:      plan.XYLines,
			ZLines:       plan.ZLines,
			CoaxLines:    plan.CoaxLines(),
			WiringCost:   model.WiringCost(plan),
			GateFidelity: perGate(total, Fig12Layers*len(alive)),
			Calib:        p.Calib,
			CacheHits:    delta.Hits + delta.DiskHits,
			CacheMisses:  delta.Misses,
		}
		if p.Faults != nil {
			pt.DeadQubits = len(p.Faults.DeadQubits())
			pt.BrokenCouplers = len(p.Faults.BrokenCouplers())
			pt.StuckLossy = p.Faults.StuckLossyCount()
		}
		points = append(points, pt)
	}
	return points, nil
}
