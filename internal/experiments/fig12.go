package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/chip"
	"repro/internal/crosstalk"
	"repro/internal/fdm"
	"repro/internal/mlfit"
	"repro/internal/quantum"
	"repro/internal/xmon"
)

// Fig12ScalePoint is one scale of the model-transfer fidelity study:
// per-gate fidelity of FDM-grouped random single-qubit gate layers on
// the first Qubits qubits of the 8×8 chip, with grouping guided either
// by the transferred (6×6-trained) or the native (8×8-trained) model.
type Fig12ScalePoint struct {
	Qubits              int
	TransferredFidelity float64
	NativeFidelity      float64
}

// Fig12Result bundles the crosstalk-model generality study.
type Fig12Result struct {
	// JSDivergence compares the predicted noise distributions of the
	// 6×6- and 8×8-trained models (paper: minimum 0.06).
	JSDivergence float64
	Scales       []Fig12ScalePoint
}

// Fig12Layers is the random-gate depth of the fidelity test.
const Fig12Layers = 10

// Fig12 reproduces Figure 12: train crosstalk models on a 6×6 and an
// 8×8 chip of the same family, compare their predicted noise
// distributions (JS divergence), then apply the 6×6 model to FDM
// grouping on the 8×8 chip and measure the fidelity cost of the
// transfer at growing scales.
func Fig12(opts Options) (*Fig12Result, error) {
	opts = opts.normalized()
	rng := rand.New(rand.NewSource(opts.Seed))
	dev66 := xmon.NewDevice(chip.Square(6, 6), xmon.DefaultParams(), rng)
	dev88 := xmon.NewDevice(chip.Square(8, 8), xmon.DefaultParams(), rng)

	model66, _, err := fitModel(context.Background(), dev66.Chip, dev66, xmon.XY, opts, opts.Seed, streamMeasureXY, streamSubsampleXY, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig12 6x6 fit: %w", err)
	}
	model88, _, err := fitModel(context.Background(), dev88.Chip, dev88, xmon.XY, opts, opts.Seed, streamMeasureAlt, streamSubsampleAlt, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig12 8x8 fit: %w", err)
	}

	res := &Fig12Result{
		JSDivergence: mlfit.JSDivergenceSamples(
			model66.On(dev66.Chip).PredictedValues(),
			model88.On(dev88.Chip).PredictedValues(),
			20,
		),
	}

	transferred := model66.On(dev88.Chip)
	native := model88.On(dev88.Chip)
	for _, scale := range []int{8, 16, 24, 32, 48, 64} {
		if scale > dev88.Chip.NumQubits() {
			break
		}
		tf, err := fdmLayerFidelity(dev88, transferred, firstN(scale), 4)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig12 scale %d transferred: %w", scale, err)
		}
		nf, err := fdmLayerFidelity(dev88, native, firstN(scale), 4)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig12 scale %d native: %w", scale, err)
		}
		res.Scales = append(res.Scales, Fig12ScalePoint{
			Qubits:              scale,
			TransferredFidelity: tf,
			NativeFidelity:      nf,
		})
	}
	return res, nil
}

func firstN(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// fdmLayerFidelity designs FDM lines of the given capacity over the
// qubit set using the predictor, allocates frequencies, then evaluates
// the per-gate fidelity of Fig12Layers rounds of simultaneous random
// single-qubit gates under the device's TRUE crosstalk (the model only
// guides the design).
func fdmLayerFidelity(dev *xmon.Device, pred *crosstalk.Predictor, qubits []int, capacity int) (float64, error) {
	g, err := fdm.Group(qubits, capacity, pred.EquivDistance)
	if err != nil {
		return 0, err
	}
	plan, err := fdm.Allocate(g, pred.Predict, fdm.DefaultAllocOptions())
	if err != nil {
		return 0, err
	}
	total := planLayerFidelity(dev, plan.Freq, qubits, Fig12Layers)
	return perGate(total, Fig12Layers*len(qubits)), nil
}

// planLayerFidelity scores `layers` rounds of simultaneous 1q drives on
// the qubit set under the device's latent XY coupling and the assigned
// operating frequencies (retuning invalidates the fabrication-frequency
// collision factor, so the raw coupling is the right hardware truth).
// Decoherence is excluded: the experiment isolates crosstalk, matching
// the paper's crosstalk-focused fidelity numbers.
func planLayerFidelity(dev *xmon.Device, freq map[int]float64, qubits []int, layers int) float64 {
	nm := quantum.NewNoiseModel(func(i, j int) float64 {
		return dev.Coupling(xmon.XY, i, j)
	}, freq)
	return nm.RepeatedLayerFidelity(qubits, layers, 0)
}

// perGate converts a total fidelity over n gates to a per-gate value.
func perGate(total float64, n int) float64 {
	if total <= 0 || n <= 0 {
		return 0
	}
	return math.Pow(total, 1/float64(n))
}
