package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/chip"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/stage"
	"repro/internal/stage/cas"
	"repro/internal/xmon"
)

// Stage names of the design flow, in pipeline order. They key the
// artifact store's instrumentation and name the nodes of
// PipelineStageGraph.
const (
	StageFabricate      = "fabricate"
	StageFaults         = "faults"
	StageCharacterizeXY = "characterize-xy"
	StageCharacterizeZZ = "characterize-zz"
	StagePartition      = "partition"
	StageFDMGroup       = "fdm-group"
	StageAllocate       = "allocate"
	StageAnneal         = "anneal"
	StageTDM            = "tdm"
)

// PipelineStageGraph is the declared dependency structure of the design
// flow. Every stage's artifact key chains the keys of exactly the
// inputs listed here, so the graph doubles as the invalidation contract:
// changing an option that only the tdm stage reads (Theta, say) leaves
// every artifact outside Downstream-closure-of-nothing — only the tdm
// key moves, and a warm Redesign re-executes the tdm stage alone.
var PipelineStageGraph = stage.MustGraph(
	stage.Stage{Name: StageFabricate},
	stage.Stage{Name: StageFaults, Inputs: []string{StageFabricate}},
	stage.Stage{Name: StageCharacterizeXY, Inputs: []string{StageFabricate, StageFaults}},
	stage.Stage{Name: StageCharacterizeZZ, Inputs: []string{StageFabricate, StageFaults}},
	stage.Stage{Name: StagePartition, Inputs: []string{StageFaults, StageCharacterizeXY}},
	stage.Stage{Name: StageFDMGroup, Inputs: []string{StagePartition, StageCharacterizeXY}},
	stage.Stage{Name: StageAllocate, Inputs: []string{StageFDMGroup, StageCharacterizeXY}},
	stage.Stage{Name: StageAnneal, Inputs: []string{StageAllocate}},
	stage.Stage{Name: StageTDM, Inputs: []string{StageFaults, StagePartition, StageCharacterizeZZ}},
)

// chipFingerprint digests everything the pipeline reads off a chip:
// identity, topology, geometry and per-qubit physics. Two chips with
// equal fingerprints fabricate bit-identical devices from equal seeds,
// which is what lets a shared DesignCache serve structurally identical
// chips from one artifact set.
func chipFingerprint(c *chip.Chip) stage.Key {
	b := stage.NewKey("chip").
		String(c.Name).String(c.Topology).
		Int(c.NumQubits()).Int(c.NumCouplers())
	for _, q := range c.Qubits {
		b.Int(q.ID).Float64(q.Pos.X).Float64(q.Pos.Y).Float64(q.BaseFreq).Float64(q.T1)
	}
	for _, cp := range c.Couplers {
		b.Int(cp.A).Int(cp.B)
	}
	return b.Done()
}

// deviceFingerprint digests a fabricated device: its chip (whose
// BaseFreq fields now carry the fabricated frequency plan) and the
// fabrication parameters. The latent disorder matrices are not
// recoverable, so a device-mode Designer never shares its store with
// another device — within one store the fingerprint only has to
// distinguish rebuild options, which downstream keys do.
func deviceFingerprint(dev *xmon.Device) stage.Key {
	p := dev.Params
	return stage.NewKey("device").
		Key(chipFingerprint(dev.Chip)).
		Float64(p.AmplitudeXY).Float64(p.AmplitudeZZ).
		Float64(p.PhysDecay).Float64(p.TopDecay).
		Float64(p.CollisionWidth).Float64(p.DisorderSigma).
		Float64(p.FreqDisorder).
		Done()
}

// fabricateKey keys device fabrication: the chip fingerprint and the
// raw seed (fabrication keeps its own sequential stream at the raw seed
// so a given (chip, seed) always yields the same device).
func fabricateKey(chipK stage.Key, seed int64) stage.Key {
	return stage.NewKey(StageFabricate).Key(chipK).Int64(seed).Done()
}

// buildTarget tells buildStaged what to design on: a chip to fabricate
// (in place for one-shot builds, into a clone for cached Designers) or
// an already-fabricated device.
type buildTarget struct {
	chip    *chip.Chip
	chipKey stage.Key
	clone   bool

	dev    *xmon.Device
	devKey stage.Key
}

// buildStaged runs the full design flow through the artifact store:
// fabricate → faults → characterize (XY ∥ ZZ) → designStaged. opts must
// already be normalized. designSeed is the master seed of every
// post-fabrication stage; each stage splits its own stream off it, so
// the XY and ZZ campaigns are independent tasks and the result is
// invariant in opts.Workers — which is also why Workers appears in no
// artifact key.
func buildStaged(ctx context.Context, store *stage.Store, tgt buildTarget, opts Options, designSeed int64) (*Pipeline, error) {
	// Per-build instrumentation: route the store's cache counters into
	// the registry and open the design span tree. Every obs call below
	// is nil-safe, so the disabled path costs a handful of nil checks.
	store.Observe(opts.Obs)
	root := opts.Obs.StartSpan("design")
	defer root.End()

	dev, devKey := tgt.dev, tgt.devKey
	if dev == nil {
		devKey = fabricateKey(tgt.chipKey, opts.Seed)
		fabSpan := root.Child(StageFabricate)
		var err error
		dev, _, err = stage.Do(ctx, store, StageFabricate, devKey, 1, func(context.Context) (*xmon.Device, error) {
			target := tgt.chip
			if tgt.clone {
				// Fabrication writes base frequencies into the chip;
				// a cached Designer keeps the caller's prototype
				// pristine and isolates per-seed frequency plans.
				target = target.Clone()
			}
			rng := rand.New(rand.NewSource(opts.Seed))
			return xmon.NewDevice(target, xmon.DefaultParams(), rng), nil
		})
		fabSpan.End()
		if err != nil {
			return nil, stageErr(StageFabricate, err)
		}
	}
	c := dev.Chip
	p := &Pipeline{Opts: opts, Chip: c, Device: dev}

	faultsK := faultsStageKey(devKey, opts.Faults, designSeed)
	faultSpan := root.Child(StageFaults)
	plan, err := runFaultsStage(ctx, store, faultsK, c, opts, designSeed)
	faultSpan.End()
	if err != nil {
		return nil, stageErr(StageFaults, err)
	}
	p.Faults = plan

	// The two channels are measured and fitted concurrently; inside
	// each fit the weight grid fans out again over the same Workers
	// budget.
	xyK := characterizeKey(StageCharacterizeXY, devKey, faultsK, opts, designSeed, streamMeasureXY, streamSubsampleXY)
	zzK := characterizeKey(StageCharacterizeZZ, devKey, faultsK, opts, designSeed, streamMeasureZZ, streamSubsampleZZ)
	specs := []struct {
		name                     string
		key                      stage.Key
		kind                     xmon.CrosstalkKind
		measureStream, subStream uint64
	}{
		{StageCharacterizeXY, xyK, xmon.XY, streamMeasureXY, streamSubsampleXY},
		{StageCharacterizeZZ, zzK, xmon.ZZ, streamMeasureZZ, streamSubsampleZZ},
	}
	chars := make([]*characterization, len(specs))
	err = parallel.ForEachCtx(ctx, min2(opts.Workers), len(specs), func(i int) error {
		sp := specs[i]
		span := root.Child(sp.name)
		defer span.End()
		ch, err := runCharacterize(ctx, store, sp.name, sp.key, dev, sp.kind, opts, designSeed, sp.measureStream, sp.subStream, plan)
		if err != nil {
			return fmt.Errorf("%v model: %w", sp.kind, err)
		}
		chars[i] = ch
		return nil
	})
	if err != nil {
		return nil, stageErr("characterize", err)
	}
	p.ModelXY, p.ModelZZ = chars[0].Model, chars[1].Model
	p.Calib.Add(chars[0].Stats)
	p.Calib.Add(chars[1].Stats)
	p.PredXY, p.PredZZ = chars[0].Pred, chars[1].Pred
	return p, designStaged(ctx, store, p, root, faultsK, xyK, zzK, parallel.TaskSeed(designSeed, streamPartition))
}

// designStaged runs partition → FDM → allocation → TDM through the
// store with the pipeline's current predictors. partSeed drives the
// generative partition only; the grouping stages are deterministic
// searches. Dead qubits and broken couplers of the fault plan are
// excluded from every stage: the design covers exactly the devices the
// chip can still operate.
func designStaged(ctx context.Context, store *stage.Store, p *Pipeline, root *obs.Span, faultsK, xyK, zzK stage.Key, partSeed int64) error {
	c := p.Chip
	opts := p.Opts
	dist := p.PredXY.EquivDistance

	partK := partitionKey(faultsK, xyK, opts.PartitionTargetSize, partSeed)
	span := root.Child(StagePartition)
	part, err := runPartitionStage(ctx, store, partK, c, p.Faults, dist, opts.PartitionTargetSize, partSeed, 1)
	span.End()
	if err != nil {
		return stageErr(StagePartition, err)
	}
	p.Partition = part

	regions := regionsOf(part, p.aliveQubits())
	fdmK := fdmGroupKey(partK, xyK, opts.FDMCapacity)
	span = root.Child(StageFDMGroup)
	grouping, err := runFDMGroupStage(ctx, store, fdmK, regions, opts.FDMCapacity, dist, opts.Workers)
	span.End()
	if err != nil {
		return stageErr("fdm", err)
	}
	p.FDM = grouping

	allocK := allocateKey(fdmK, xyK)
	span = root.Child(StageAllocate)
	plan, err := runAllocateStage(ctx, store, allocK, grouping, p.PredXY.Predict)
	span.End()
	if err != nil {
		return stageErr(StageAllocate, err)
	}
	if opts.AnnealSteps > 0 {
		annealK := annealKey(allocK, opts.AnnealSteps, opts.Seed)
		span = root.Child(StageAnneal)
		plan, err = runAnnealStage(ctx, store, annealK, plan, grouping, p.PredXY.Predict, opts.AnnealSteps, opts.Seed)
		span.End()
		if err != nil {
			return stageErr(StageAnneal, err)
		}
	}
	p.FreqPlan = plan

	tdmK := tdmKey(faultsK, partK, zzK, opts)
	span = root.Child(StageTDM)
	td, err := runTDMStage(ctx, store, tdmK, c, p.Faults, part, p.PredZZ.Predict, opts)
	span.End()
	if err != nil {
		return stageErr(StageTDM, err)
	}
	p.Gates = td.Gates
	p.TDM = td.Grouping
	return nil
}

// Designer owns an artifact store over one chip (or one pre-fabricated
// device) and redesigns incrementally: Redesign re-executes only the
// stages whose keyed inputs changed since the last call, recalling
// every other artifact bit-for-bit from the store. Sweeping Theta, for
// example, re-runs the tdm stage alone — the fitted models, partition
// and frequency plan are reused without a single re-measurement.
//
// A Designer is safe for concurrent Redesign calls (the store is
// single-flight per artifact). Artifacts are held for the Designer's
// lifetime; drop the Designer to release them.
type Designer struct {
	chip   *chip.Chip
	chipFP stage.Key

	dev   *xmon.Device
	devFP stage.Key

	store *stage.Store
}

// NewDesigner returns a Designer over a chip prototype. The chip is
// never mutated: fabrication happens on per-seed clones, unlike the
// one-shot BuildPipeline which (historically, and still) assigns base
// frequencies in place.
func NewDesigner(c *chip.Chip) *Designer {
	return newDesignerWithStore(c, stage.NewStore())
}

func newDesignerWithStore(c *chip.Chip, store *stage.Store) *Designer {
	return &Designer{chip: c, chipFP: chipFingerprint(c), store: store}
}

// NewDesignerOnDevice returns a Designer over an already-fabricated
// device (the model-transfer scenario). The device's latent disorder is
// not part of its fingerprint, so the store is private to this device.
func NewDesignerOnDevice(dev *xmon.Device) *Designer {
	return &Designer{dev: dev, devFP: deviceFingerprint(dev), store: stage.NewStore()}
}

// Redesign designs the system for opts, reusing every cached stage
// whose inputs are unchanged.
func (d *Designer) Redesign(opts Options) (*Pipeline, error) {
	return d.RedesignCtx(context.Background(), opts)
}

// RedesignCtx is Redesign with cooperative cancellation.
func (d *Designer) RedesignCtx(ctx context.Context, opts Options) (*Pipeline, error) {
	opts = opts.normalized()
	if d.dev != nil {
		// Mirror BuildPipelineOnDevice's seed offset so device designs
		// stay bit-identical to the one-shot path.
		return buildStaged(ctx, d.store, buildTarget{dev: d.dev, devKey: d.devFP}, opts, opts.Seed+7)
	}
	return buildStaged(ctx, d.store, buildTarget{chip: d.chip, chipKey: d.chipFP, clone: true}, opts, opts.Seed)
}

// Store exposes the Designer's artifact store (for stats assertions and
// report rendering).
func (d *Designer) Store() *stage.Store { return d.store }

// Report snapshots the Designer's per-stage instrumentation.
func (d *Designer) Report() stage.Report { return d.store.Report() }

// DesignCache shares one artifact store across the Designers of many
// chips — the sweep experiments' backbone and the serving layer's
// request cache: a sweep over defect rates, Theta values or chip sizes
// (or a stream of HTTP design requests) builds every point through one
// cache, so per-point builds stop re-fitting unchanged
// characterization.
type DesignCache struct {
	mu        sync.Mutex
	store     *stage.Store
	designers map[stage.Key]*Designer
}

// NewDesignCache returns an empty cache over an unbounded store.
func NewDesignCache() *DesignCache {
	return NewDesignCacheWithStore(stage.NewStore())
}

// NewDesignCacheWithStore returns a cache over a caller-provided store,
// which is how a long-running server bounds the cache: build the store
// with stage.NewStoreWith and a byte budget, and every designer handed
// out by the cache shares the bounded, evicting artifact set.
func NewDesignCacheWithStore(store *stage.Store) *DesignCache {
	return &DesignCache{
		store:     store,
		designers: make(map[stage.Key]*Designer),
	}
}

// OpenDesignCache returns a cache whose store persists every pipeline
// artifact under dir through the on-disk CAS backend (bounded by
// diskBytes; 0 = unbounded): a restarted process, or a replica pointed
// at the same directory, recalls warm artifacts instead of
// re-characterizing. memCfg bounds the memory tier exactly as in
// NewDesignCacheWithStore; its Backend and Codecs fields are
// overwritten.
func OpenDesignCache(dir string, memCfg stage.Config, diskBytes int64) (*DesignCache, error) {
	backend, err := cas.Open(dir, cas.Config{MaxBytes: diskBytes})
	if err != nil {
		return nil, err
	}
	memCfg.Backend = backend
	memCfg.Codecs = StageCodecs()
	return NewDesignCacheWithStore(stage.NewStoreWith(memCfg)), nil
}

// Designer returns the cached Designer for a chip, creating it on first
// use. Designers are keyed by chip fingerprint, not pointer, so
// structurally identical chips (a server parsing the same request twice
// into distinct *Chip values) share one Designer — and therefore one
// single-flight per artifact — rather than just one store.
func (dc *DesignCache) Designer(c *chip.Chip) *Designer {
	fp := chipFingerprint(c)
	dc.mu.Lock()
	defer dc.mu.Unlock()
	d, ok := dc.designers[fp]
	if !ok {
		d = &Designer{chip: c, chipFP: fp, store: dc.store}
		dc.designers[fp] = d
	}
	return d
}

// Report snapshots the shared store's per-stage instrumentation.
func (dc *DesignCache) Report() stage.Report { return dc.store.Report() }

// Store exposes the shared artifact store.
func (dc *DesignCache) Store() *stage.Store { return dc.store }
