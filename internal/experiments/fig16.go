package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/chip"
	"repro/internal/tdm"
	"repro/internal/xmon"
)

// Fig16Row reports the cryo-DEMUX mix of one topology at one
// parallelism threshold θ.
type Fig16Row struct {
	Topology string
	Theta    float64

	Direct    int // dedicated Z lines (group size 1)
	OneToTwo  int // 1:2 DEMUX units
	OneToFour int // 1:4 DEMUX units

	// Frac12 and Frac14 are the proportions among DEMUX units.
	Frac12, Frac14 float64
}

// DefaultThetas is the threshold sweep of Figure 16.
var DefaultThetas = []float64{1, 2, 4, 6, 8}

// Fig16 reproduces Figure 16: for each evaluation topology and each
// parallelism threshold, run the TDM grouping and report the usage
// proportion of 1:2 versus 1:4 cryo-DEMUXes.
func Fig16(opts Options, thetas []float64) ([]Fig16Row, error) {
	opts = opts.normalized()
	if len(thetas) == 0 {
		thetas = DefaultThetas
	}
	var rows []Fig16Row
	for _, c := range chip.Table2Chips() {
		rng := rand.New(rand.NewSource(opts.Seed))
		dev := xmon.NewDevice(c, xmon.DefaultParams(), rng)
		model, _, err := fitModel(context.Background(), c, dev, xmon.ZZ, opts, opts.Seed, streamMeasureZZ, streamSubsampleZZ, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig16 %s fit: %w", c.Topology, err)
		}
		pred := model.On(c)
		gi := tdm.AnalyzeGates(c)
		for _, theta := range thetas {
			cfg := tdm.DefaultConfig(pred.Predict)
			cfg.Theta = theta
			g, err := tdm.GroupChip(gi, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig16 %s θ=%g: %w", c.Topology, theta, err)
			}
			counts := g.LevelCounts()
			row := Fig16Row{
				Topology:  c.Topology,
				Theta:     theta,
				Direct:    counts[tdm.DemuxNone],
				OneToTwo:  counts[tdm.Demux1to2],
				OneToFour: counts[tdm.Demux1to4],
			}
			if total := row.OneToTwo + row.OneToFour; total > 0 {
				row.Frac12 = float64(row.OneToTwo) / float64(total)
				row.Frac14 = float64(row.OneToFour) / float64(total)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
