package experiments

import (
	"reflect"
	"testing"

	"repro/internal/chip"
	"repro/internal/faults"
	"repro/internal/obs"
)

// designSnapshot runs a full faulted design at the given worker count
// with a fresh registry capturing both the per-build stage metrics and
// the process-global subsystem counters, and returns the stripped
// (deterministic-subset) snapshot.
func designSnapshot(t *testing.T, workers int) obs.Snapshot {
	t.Helper()
	reg := obs.New()
	Observe(reg)
	defer Observe(nil)
	opts := Options{
		Seed:    3,
		Workers: workers,
		Faults:  faults.UniformSpec(0.02),
		Obs:     reg,
	}
	if _, err := BuildPipeline(chip.Square(5, 5), opts); err != nil {
		t.Fatal(err)
	}
	return reg.Snapshot().StripTimings()
}

// The observability determinism contract: every counter, histogram
// count and span count of a design is a pure function of (chip,
// options, seed) — the worker budget moves only timings and gauges,
// which StripTimings removes.
func TestDesignSnapshotWorkerInvariant(t *testing.T) {
	seq := designSnapshot(t, 1)
	par := designSnapshot(t, 4)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("stripped snapshots differ across worker counts:\nworkers=1: %+v\nworkers=4: %+v", seq, par)
	}
	if seq.Counters["stage/misses"] == 0 {
		t.Error("stage/misses stayed 0 across a cold design")
	}
	if seq.Counters["faults/pairs"] == 0 {
		t.Error("faults/pairs stayed 0 across a faulted calibration campaign")
	}
	var sawDesignSpan bool
	for _, sp := range seq.Spans {
		if sp.Path == "design" {
			sawDesignSpan = true
		}
		if sp.WallNs != 0 {
			t.Errorf("span %s kept wall time %d after StripTimings", sp.Path, sp.WallNs)
		}
	}
	if !sawDesignSpan {
		t.Error("no design root span recorded")
	}
}

// A warm Redesign through a Designer must hit the cache and say so.
func TestRedesignHitCounters(t *testing.T) {
	reg := obs.New()
	d := NewDesigner(chip.Square(4, 4))
	opts := Options{Seed: 2, Obs: reg}
	if _, err := d.Redesign(opts); err != nil {
		t.Fatal(err)
	}
	cold := reg.Snapshot()
	if _, err := d.Redesign(opts); err != nil {
		t.Fatal(err)
	}
	warm := reg.Snapshot()
	if warm.Counters["stage/hits"] <= cold.Counters["stage/hits"] {
		t.Errorf("warm redesign added no stage/hits (cold %d, warm %d)",
			cold.Counters["stage/hits"], warm.Counters["stage/hits"])
	}
	if warm.Counters["stage/misses"] != cold.Counters["stage/misses"] {
		t.Errorf("warm redesign re-executed stages: misses %d -> %d",
			cold.Counters["stage/misses"], warm.Counters["stage/misses"])
	}
}

// Digest identifies the designed artifact, so the execution-only knobs
// — Workers, Fit.Workers and Obs — must not move it, while any
// design-relevant option must.
func TestOptionsDigestExcludesExecutionKnobs(t *testing.T) {
	base := Options{Seed: 2}
	same := Options{Seed: 2, Workers: 8, Obs: obs.New()}
	same.Fit.Workers = 4
	if base.Digest() != same.Digest() {
		t.Error("Workers/Obs moved the options digest")
	}
	for name, other := range map[string]Options{
		"seed":  {Seed: 3},
		"theta": {Seed: 2, Theta: 2, HasTheta: true},
		"fdm":   {Seed: 2, FDMCapacity: 3},
		"fault": {Seed: 2, Faults: faults.UniformSpec(0.01)},
	} {
		if other.Digest() == base.Digest() {
			t.Errorf("%s change left the digest unchanged", name)
		}
	}
}
