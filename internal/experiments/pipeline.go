// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a plain function returning typed rows,
// shared by cmd/tables, cmd/figures, the examples and the benchmark
// harness in the repository root.
//
// The package also owns the end-to-end YOUTIAO pipeline used by most
// experiments: fabricate a synthetic Xmon device on a chip, measure
// crosstalk, fit the characterization model, partition the chip, run
// FDM grouping + frequency allocation and TDM grouping.
package experiments

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/chip"
	"repro/internal/circuit"
	"repro/internal/crosstalk"
	"repro/internal/fdm"
	"repro/internal/mlfit"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/tdm"
	"repro/internal/xmon"
)

// Options tune the pipeline. The zero value is completed by defaults.
type Options struct {
	// Seed drives device fabrication, measurement noise and partition
	// seeding. Defaults to 1.
	Seed int64
	// FDMCapacity is the qubits-per-XY-line limit (paper: 5).
	FDMCapacity int
	// Theta is the TDM parallelism threshold (paper example: 4).
	Theta float64
	// PartitionTargetSize is the qubits-per-region target; regions
	// below 2 disable partitioning (small chips are grouped whole).
	PartitionTargetSize int
	// MaxFitSamples subsamples the calibration campaign before model
	// fitting so large chips stay tractable. Defaults to 1500.
	MaxFitSamples int
	// SparseQubitZ enables the surface-code operation mode for TDM
	// grouping (see tdm.Config.SparseQubitZ).
	SparseQubitZ bool
	// TDMMinLossyFraction overrides tdm.Config.MinLossyFraction when
	// non-zero (higher = stricter grouping, less serialization).
	TDMMinLossyFraction float64
	// TDMLossyLimit overrides tdm.Config.LossyLimit when non-zero.
	TDMLossyLimit int
	// AnnealSteps, when positive, refines the greedy frequency
	// allocation with that many simulated-annealing moves.
	AnnealSteps int
	// Fit configures the crosstalk model search. Zero value gets a
	// fast default (coarser grid and smaller forest than
	// crosstalk.DefaultFitConfig, adequate for grouping guidance).
	Fit crosstalk.FitConfig
}

func (o Options) normalized() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.FDMCapacity <= 0 {
		o.FDMCapacity = 5
	}
	if o.Theta == 0 {
		o.Theta = 4
	}
	if o.PartitionTargetSize == 0 {
		o.PartitionTargetSize = 36
	}
	if o.MaxFitSamples == 0 {
		o.MaxFitSamples = 1500
	}
	if len(o.Fit.WeightGrid) == 0 {
		o.Fit = crosstalk.FitConfig{
			WeightGrid: []float64{0, 0.25, 0.5, 1.0},
			Folds:      5,
			Forest: mlfit.ForestConfig{
				NumTrees: 12,
				Tree:     mlfit.TreeConfig{MaxDepth: 10, MinLeafSize: 4},
				Seed:     1,
			},
		}
	}
	return o
}

// Pipeline is the fully-designed YOUTIAO control system for one chip.
type Pipeline struct {
	Opts   Options
	Chip   *chip.Chip
	Device *xmon.Device

	ModelXY *crosstalk.Model
	ModelZZ *crosstalk.Model
	PredXY  *crosstalk.Predictor
	PredZZ  *crosstalk.Predictor

	Partition *partition.Partition
	FDM       *fdm.Grouping
	FreqPlan  *fdm.FrequencyPlan
	Gates     *tdm.GateInfo
	TDM       *tdm.Grouping
}

// BuildPipeline designs the complete YOUTIAO control system for a chip.
func BuildPipeline(c *chip.Chip, opts Options) (*Pipeline, error) {
	opts = opts.normalized()
	rng := rand.New(rand.NewSource(opts.Seed))
	dev := xmon.NewDevice(c, xmon.DefaultParams(), rng)
	return buildOnDevice(dev, opts, rng)
}

// BuildPipelineOnDevice designs the system for an already-fabricated
// device (used by the model-transfer experiments).
func BuildPipelineOnDevice(dev *xmon.Device, opts Options) (*Pipeline, error) {
	opts = opts.normalized()
	rng := rand.New(rand.NewSource(opts.Seed + 7))
	return buildOnDevice(dev, opts, rng)
}

func buildOnDevice(dev *xmon.Device, opts Options, rng *rand.Rand) (*Pipeline, error) {
	c := dev.Chip
	p := &Pipeline{Opts: opts, Chip: c, Device: dev}

	// 1. Calibration campaign and crosstalk characterization.
	var err error
	p.ModelXY, err = fitModel(c, dev, xmon.XY, opts, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: XY model: %w", err)
	}
	p.ModelZZ, err = fitModel(c, dev, xmon.ZZ, opts, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: ZZ model: %w", err)
	}
	p.PredXY = p.ModelXY.On(c)
	p.PredZZ = p.ModelZZ.On(c)
	return p, p.design(rng)
}

// AttachModels installs externally-trained crosstalk models (the
// Figure 12 transfer scenario) and redesigns the groupings with them.
func (p *Pipeline) AttachModels(xy, zz *crosstalk.Model) error {
	p.ModelXY, p.ModelZZ = xy, zz
	p.PredXY = xy.On(p.Chip)
	p.PredZZ = zz.On(p.Chip)
	rng := rand.New(rand.NewSource(p.Opts.Seed + 13))
	return p.design(rng)
}

// design runs partition -> FDM -> allocation -> TDM with the current
// predictors.
func (p *Pipeline) design(rng *rand.Rand) error {
	c := p.Chip
	dist := p.PredXY.EquivDistance

	// 2. Generative partition (skipped for chips at or below one
	// region).
	if c.NumQubits() > p.Opts.PartitionTargetSize {
		part, err := partition.Generate(c, dist, partition.Config{TargetSize: p.Opts.PartitionTargetSize}, rng)
		if err != nil {
			return fmt.Errorf("experiments: partition: %w", err)
		}
		p.Partition = part
	}

	// 3. FDM grouping per region — regions are independent after the
	// partition stabilizes, so they are grouped concurrently (the
	// paper's stage-3 pipelining) and assembled in region order to
	// stay deterministic. The two-level allocation then runs globally.
	regions := p.regions()
	p.FDM = &fdm.Grouping{Capacity: p.Opts.FDMCapacity}
	fdmResults := make([]*fdm.Grouping, len(regions))
	fdmErrs := make([]error, len(regions))
	var wg sync.WaitGroup
	for ri, region := range regions {
		wg.Add(1)
		go func(ri int, region []int) {
			defer wg.Done()
			fdmResults[ri], fdmErrs[ri] = fdm.Group(region, p.Opts.FDMCapacity, dist)
		}(ri, region)
	}
	wg.Wait()
	for ri := range regions {
		if fdmErrs[ri] != nil {
			return fmt.Errorf("experiments: FDM grouping region %d: %w", ri, fdmErrs[ri])
		}
		p.FDM.Groups = append(p.FDM.Groups, fdmResults[ri].Groups...)
	}
	plan, err := fdm.Allocate(p.FDM, p.PredXY.Predict, fdm.DefaultAllocOptions())
	if err != nil {
		return fmt.Errorf("experiments: frequency allocation: %w", err)
	}
	if p.Opts.AnnealSteps > 0 {
		annealOpts := fdm.DefaultAnnealOptions()
		annealOpts.Steps = p.Opts.AnnealSteps
		annealOpts.Seed = p.Opts.Seed
		refined, _, _, err := fdm.Anneal(plan, p.FDM, p.PredXY.Predict, annealOpts)
		if err != nil {
			return fmt.Errorf("experiments: anneal: %w", err)
		}
		plan = refined
	}
	p.FreqPlan = plan

	// 4. TDM grouping per region over qubits and couplers.
	p.Gates = tdm.AnalyzeGates(c)
	cfg := tdm.DefaultConfig(p.PredZZ.Predict)
	cfg.Theta = p.Opts.Theta
	cfg.SparseQubitZ = p.Opts.SparseQubitZ
	if p.Opts.TDMMinLossyFraction > 0 {
		cfg.MinLossyFraction = p.Opts.TDMMinLossyFraction
	}
	if p.Opts.TDMLossyLimit > 0 {
		cfg.LossyLimit = p.Opts.TDMLossyLimit
	}
	p.TDM = &tdm.Grouping{Theta: cfg.Theta}
	couplerRegions := p.couplerRegions()
	tdmResults := make([]*tdm.Grouping, len(regions))
	tdmErrs := make([]error, len(regions))
	for ri, region := range regions {
		devs := append([]int(nil), region...)
		for ci, cr := range couplerRegions {
			if cr == ri {
				devs = append(devs, p.Gates.Dev.CouplerDevice(ci))
			}
		}
		wg.Add(1)
		go func(ri int, devs []int) {
			defer wg.Done()
			tdmResults[ri], tdmErrs[ri] = tdm.GroupDevices(p.Gates, devs, cfg)
		}(ri, devs)
	}
	wg.Wait()
	for ri := range regions {
		if tdmErrs[ri] != nil {
			return fmt.Errorf("experiments: TDM grouping region %d: %w", ri, tdmErrs[ri])
		}
		p.TDM.Groups = append(p.TDM.Groups, tdmResults[ri].Groups...)
	}
	return nil
}

// regions returns the partition regions, or one whole-chip region.
func (p *Pipeline) regions() [][]int {
	if p.Partition != nil {
		return p.Partition.Regions
	}
	all := make([]int, p.Chip.NumQubits())
	for i := range all {
		all[i] = i
	}
	return [][]int{all}
}

// couplerRegions returns the region index per coupler.
func (p *Pipeline) couplerRegions() []int {
	if p.Partition != nil {
		return p.Partition.CouplerRegion(p.Chip)
	}
	out := make([]int, p.Chip.NumCouplers())
	return out
}

// ScheduleBenchmark compiles the named benchmark circuit ("VQC",
// "ISING", "DJ", "QFT", "QKNN") at the given logical width onto the
// pipeline's chip and schedules it under the designed TDM grouping.
func (p *Pipeline) ScheduleBenchmark(name string, qubits int) (*schedule.Schedule, error) {
	logical, err := circuit.Benchmark(circuit.BenchmarkName(name), qubits, p.Opts.Seed)
	if err != nil {
		return nil, err
	}
	compiled, err := circuit.CompileSabre(logical, p.Chip)
	if err != nil {
		return nil, err
	}
	return schedule.New(p.Chip, p.TDM, schedule.DefaultDurations()).Run(compiled.Circuit)
}

// fitModel measures one crosstalk channel and fits the characterization
// model, subsampling large campaigns.
func fitModel(c *chip.Chip, dev *xmon.Device, kind xmon.CrosstalkKind, opts Options, rng *rand.Rand) (*crosstalk.Model, error) {
	samples := dev.Measure(kind, 0.05, rng)
	if len(samples) > opts.MaxFitSamples {
		perm := rng.Perm(len(samples))[:opts.MaxFitSamples]
		sub := make([]xmon.Sample, len(perm))
		for i, pi := range perm {
			sub[i] = samples[pi]
		}
		samples = sub
	}
	return crosstalk.Fit(c, samples, opts.Fit)
}
