// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a plain function returning typed rows,
// shared by cmd/tables, cmd/figures, the examples and the benchmark
// harness in the repository root.
//
// The package also owns the end-to-end YOUTIAO pipeline used by most
// experiments: fabricate a synthetic Xmon device on a chip, measure
// crosstalk, fit the characterization model, partition the chip, run
// FDM grouping + frequency allocation and TDM grouping.
package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/chip"
	"repro/internal/circuit"
	"repro/internal/crosstalk"
	"repro/internal/faults"
	"repro/internal/fdm"
	"repro/internal/mlfit"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/tdm"
	"repro/internal/xmon"
)

// Options tune the pipeline. The zero value is completed by defaults.
type Options struct {
	// Seed drives device fabrication, measurement noise and partition
	// seeding. Defaults to 1.
	Seed int64
	// FDMCapacity is the qubits-per-XY-line limit (paper: 5).
	FDMCapacity int
	// Theta is the TDM parallelism threshold (paper example: 4). An
	// explicit zero is honored only when HasTheta is set; otherwise the
	// default (4) applies.
	Theta float64
	// HasTheta marks Theta as explicitly set, so Theta = 0 (every
	// device above threshold, 1:2 DEMUXes only) is expressible. CLI
	// front-ends set it from flag presence.
	HasTheta bool
	// PartitionTargetSize is the qubits-per-region target; regions
	// below 2 disable partitioning (small chips are grouped whole).
	PartitionTargetSize int
	// MaxFitSamples subsamples the calibration campaign before model
	// fitting so large chips stay tractable. Defaults to 1500; an
	// explicit zero (no cap) is honored only when HasMaxFitSamples is
	// set.
	MaxFitSamples int
	// HasMaxFitSamples marks MaxFitSamples as explicitly set, so a zero
	// value means "fit on the full campaign" instead of the default.
	HasMaxFitSamples bool
	// SparseQubitZ enables the surface-code operation mode for TDM
	// grouping (see tdm.Config.SparseQubitZ).
	SparseQubitZ bool
	// TDMMinLossyFraction overrides tdm.Config.MinLossyFraction when
	// non-zero (higher = stricter grouping, less serialization).
	TDMMinLossyFraction float64
	// TDMLossyLimit overrides tdm.Config.LossyLimit when non-zero.
	TDMLossyLimit int
	// AnnealSteps, when positive, refines the greedy frequency
	// allocation with that many simulated-annealing moves.
	AnnealSteps int
	// Fit configures the crosstalk model search. Zero value gets a
	// fast default (coarser grid and smaller forest than
	// crosstalk.DefaultFitConfig, adequate for grouping guidance).
	Fit crosstalk.FitConfig
	// Workers bounds the worker pool of every parallel pipeline stage
	// (calibration campaign, model grid search, per-region grouping).
	// <= 0 selects runtime.NumCPU(); 1 runs fully sequentially. The
	// designed system is bit-identical for every value — randomness is
	// split per task from Seed, never shared across workers (see
	// internal/parallel).
	Workers int
	// Faults injects a deterministic device-defect and calibration
	// fault plan into the build (see internal/faults). The zero value
	// disables injection and reproduces the fault-free pipeline
	// bit-for-bit.
	Faults faults.Spec
	// RetryBudget is the number of re-measurement attempts per qubit
	// pair after a calibration dropout (each attempt re-seeds its RNG
	// stream deterministically; there is no wall-clock backoff).
	// 0 selects the default (3); negative disables retries.
	RetryBudget int
}

func (o Options) normalized() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.FDMCapacity <= 0 {
		o.FDMCapacity = 5
	}
	if o.Theta == 0 && !o.HasTheta {
		o.Theta = 4
	}
	if o.PartitionTargetSize == 0 {
		o.PartitionTargetSize = 36
	}
	if o.MaxFitSamples == 0 && !o.HasMaxFitSamples {
		o.MaxFitSamples = 1500
	}
	if o.RetryBudget == 0 {
		o.RetryBudget = 3
	} else if o.RetryBudget < 0 {
		o.RetryBudget = 0
	}
	if len(o.Fit.WeightGrid) == 0 {
		o.Fit = crosstalk.FitConfig{
			WeightGrid: []float64{0, 0.25, 0.5, 1.0},
			Folds:      5,
			Forest: mlfit.ForestConfig{
				NumTrees: 12,
				Tree:     mlfit.TreeConfig{MaxDepth: 10, MinLeafSize: 4},
				Seed:     1,
			},
		}
	}
	if o.Fit.Workers == 0 {
		o.Fit.Workers = o.Workers
	}
	// A campaign that injects heavy-tailed outliers defends the fit by
	// default: trim a band twice the injection rate (capped), unless
	// the caller chose a fraction explicitly.
	if o.Faults.OutlierRate > 0 && o.Fit.TrimOutlierFraction == 0 {
		f := 2 * o.Faults.OutlierRate
		if f > 0.2 {
			f = 0.2
		}
		o.Fit.TrimOutlierFraction = f
	}
	return o
}

// Stable per-stage stream indices for parallel.TaskSeed: each pipeline
// stage that needs randomness owns a fixed stream of the design seed,
// so stages never share RNG state and can run in any order or in
// parallel without perturbing each other's draws.
const (
	streamMeasureXY = iota + 1
	streamSubsampleXY
	streamMeasureZZ
	streamSubsampleZZ
	streamPartition
	// streamMeasureAlt/streamSubsampleAlt serve experiments fitting a
	// second same-kind model in one run (Figure 12's transfer pair).
	streamMeasureAlt
	streamSubsampleAlt
	// streamFaults draws the fault plan. Appended last so fault-free
	// builds replay the exact historical streams.
	streamFaults
)

// Pipeline is the fully-designed YOUTIAO control system for one chip.
type Pipeline struct {
	Opts   Options
	Chip   *chip.Chip
	Device *xmon.Device

	ModelXY *crosstalk.Model
	ModelZZ *crosstalk.Model
	PredXY  *crosstalk.Predictor
	PredZZ  *crosstalk.Predictor

	Partition *partition.Partition
	FDM       *fdm.Grouping
	FreqPlan  *fdm.FrequencyPlan
	Gates     *tdm.GateInfo
	TDM       *tdm.Grouping

	// Faults is the injected defect plan, nil for a fault-free build.
	Faults *faults.Plan
	// Calib aggregates the calibration campaign's fault accounting
	// (dropouts, retries, lost pairs, outliers) across both channels.
	Calib faults.CampaignStats
}

// BuildPipeline designs the complete YOUTIAO control system for a chip.
func BuildPipeline(c *chip.Chip, opts Options) (*Pipeline, error) {
	return BuildPipelineCtx(context.Background(), c, opts)
}

// BuildPipelineCtx is BuildPipeline with cooperative cancellation: the
// calibration campaign, model grid search and per-region grouping all
// check ctx and return its error (wrapped in a *DesignError) once it
// fires.
func BuildPipelineCtx(ctx context.Context, c *chip.Chip, opts Options) (*Pipeline, error) {
	opts = opts.normalized()
	// Fabrication keeps its own sequential stream at the raw seed so a
	// given (chip, seed) always yields the same device.
	rng := rand.New(rand.NewSource(opts.Seed))
	dev := xmon.NewDevice(c, xmon.DefaultParams(), rng)
	return buildOnDevice(ctx, dev, opts, opts.Seed)
}

// BuildPipelineOnDevice designs the system for an already-fabricated
// device (used by the model-transfer experiments).
func BuildPipelineOnDevice(dev *xmon.Device, opts Options) (*Pipeline, error) {
	opts = opts.normalized()
	return buildOnDevice(context.Background(), dev, opts, opts.Seed+7)
}

// buildOnDevice runs characterization and design. designSeed is the
// master seed of every post-fabrication stage; each stage splits its
// own stream off it, so the XY and ZZ campaigns are independent tasks
// and the result is invariant in opts.Workers.
func buildOnDevice(ctx context.Context, dev *xmon.Device, opts Options, designSeed int64) (*Pipeline, error) {
	c := dev.Chip
	p := &Pipeline{Opts: opts, Chip: c, Device: dev}

	// 0. Fault plan. Drawn on its own stream so a disabled spec leaves
	// every other stage's randomness untouched.
	if opts.Faults.Enabled() {
		plan, err := faults.New(c, opts.Faults, parallel.TaskSeed(designSeed, streamFaults))
		if err != nil {
			return nil, stageErr("faults", err)
		}
		p.Faults = plan
		if len(plan.AliveQubits(c.NumQubits())) == 0 {
			return nil, stageErr("faults", fmt.Errorf("fault plan killed all %d qubits (defect rate %.3f too high for this chip)",
				c.NumQubits(), opts.Faults.DeadQubitRate))
		}
	}

	// 1. Calibration campaign and crosstalk characterization. The two
	// channels are measured and fitted concurrently; inside each fit
	// the weight grid fans out again over the same Workers budget.
	kinds := []struct {
		kind                     xmon.CrosstalkKind
		measureStream, subStream uint64
		model                    *crosstalk.Model
		stats                    faults.CampaignStats
	}{
		{kind: xmon.XY, measureStream: streamMeasureXY, subStream: streamSubsampleXY},
		{kind: xmon.ZZ, measureStream: streamMeasureZZ, subStream: streamSubsampleZZ},
	}
	err := parallel.ForEachCtx(ctx, min2(opts.Workers), len(kinds), func(ki int) error {
		k := &kinds[ki]
		m, stats, err := fitModel(ctx, c, dev, k.kind, opts, designSeed, k.measureStream, k.subStream, p.Faults)
		if err != nil {
			return fmt.Errorf("%v model: %w", k.kind, err)
		}
		k.model, k.stats = m, stats
		return nil
	})
	if err != nil {
		return nil, stageErr("characterize", err)
	}
	p.ModelXY, p.ModelZZ = kinds[0].model, kinds[1].model
	p.Calib.Add(kinds[0].stats)
	p.Calib.Add(kinds[1].stats)
	p.PredXY = p.ModelXY.On(c)
	p.PredZZ = p.ModelZZ.On(c)
	return p, p.design(ctx, parallel.TaskSeed(designSeed, streamPartition))
}

// min2 caps the two-task characterization fan-out so a sequential
// request (Workers == 1) stays strictly sequential.
func min2(workers int) int {
	if w := parallel.Workers(workers); w < 2 {
		return w
	}
	return 2
}

// AttachModels installs externally-trained crosstalk models (the
// Figure 12 transfer scenario) and redesigns the groupings with them.
func (p *Pipeline) AttachModels(xy, zz *crosstalk.Model) error {
	p.ModelXY, p.ModelZZ = xy, zz
	p.PredXY = xy.On(p.Chip)
	p.PredZZ = zz.On(p.Chip)
	return p.design(context.Background(), parallel.TaskSeed(p.Opts.Seed+13, streamPartition))
}

// design runs partition -> FDM -> allocation -> TDM with the current
// predictors. seed drives the generative partition only; the grouping
// stages are deterministic searches. Dead qubits and broken couplers
// of the fault plan are excluded from every stage: the design covers
// exactly the devices the chip can still operate.
func (p *Pipeline) design(ctx context.Context, seed int64) error {
	c := p.Chip
	dist := p.PredXY.EquivDistance
	alive := p.aliveQubits()

	// 2. Generative partition (skipped for chips at or below one
	// region).
	if len(alive) > p.Opts.PartitionTargetSize {
		rng := rand.New(rand.NewSource(seed))
		cfg := partition.Config{TargetSize: p.Opts.PartitionTargetSize}
		if p.Faults != nil {
			cfg.Exclude = p.Faults.QubitDead
		}
		part, err := partition.Generate(c, dist, cfg, rng)
		if err != nil {
			return stageErr("partition", err)
		}
		p.Partition = part
	}

	// 3. FDM grouping per region — regions are disjoint after the
	// partition stabilizes, so they fan out over the worker pool (the
	// paper's stage-3 pipelining) and are assembled in region order to
	// stay deterministic. The two-level allocation then runs globally.
	regions := p.regions()
	p.FDM = &fdm.Grouping{Capacity: p.Opts.FDMCapacity}
	fdmResults := make([]*fdm.Grouping, len(regions))
	err := parallel.ForEachCtx(ctx, p.Opts.Workers, len(regions), func(ri int) error {
		var err error
		fdmResults[ri], err = fdm.Group(regions[ri], p.Opts.FDMCapacity, dist)
		if err != nil {
			return fmt.Errorf("region %d: %w", ri, err)
		}
		return nil
	})
	if err != nil {
		return stageErr("fdm", err)
	}
	for ri := range regions {
		p.FDM.Groups = append(p.FDM.Groups, fdmResults[ri].Groups...)
	}
	plan, err := fdm.Allocate(p.FDM, p.PredXY.Predict, fdm.DefaultAllocOptions())
	if err != nil {
		return stageErr("allocate", err)
	}
	if p.Opts.AnnealSteps > 0 {
		annealOpts := fdm.DefaultAnnealOptions()
		annealOpts.Steps = p.Opts.AnnealSteps
		annealOpts.Seed = p.Opts.Seed
		refined, _, _, err := fdm.Anneal(plan, p.FDM, p.PredXY.Predict, annealOpts)
		if err != nil {
			return stageErr("anneal", err)
		}
		plan = refined
	}
	p.FreqPlan = plan

	// 4. TDM grouping per region over qubits and couplers. A fault plan
	// drops unusable gate sites from the parallelism analysis, removes
	// broken/dead couplers from the device sets and forces stuck-lossy
	// devices onto dedicated direct lines.
	var usableGate func(chip.TwoQubitGate) bool
	if p.Faults != nil {
		usableGate = func(g chip.TwoQubitGate) bool { return p.Faults.GateUsable(c, g) }
	}
	p.Gates = tdm.AnalyzeGatesUsable(c, usableGate)
	cfg := tdm.DefaultConfig(p.PredZZ.Predict)
	cfg.Theta = p.Opts.Theta
	cfg.SparseQubitZ = p.Opts.SparseQubitZ
	if p.Opts.TDMMinLossyFraction > 0 {
		cfg.MinLossyFraction = p.Opts.TDMMinLossyFraction
	}
	if p.Opts.TDMLossyLimit > 0 {
		cfg.LossyLimit = p.Opts.TDMLossyLimit
	}
	if p.Faults != nil {
		cfg.Isolate = func(dev int) bool {
			if p.Gates.Dev.IsCoupler(dev) {
				return p.Faults.CouplerStuckLossy(p.Gates.Dev.CouplerID(dev))
			}
			return p.Faults.QubitStuckLossy(dev)
		}
	}
	p.TDM = &tdm.Grouping{Theta: cfg.Theta}
	couplerRegions := p.couplerRegions()
	regionDevs := make([][]int, len(regions))
	for ri, region := range regions {
		devs := append([]int(nil), region...)
		for ci, cr := range couplerRegions {
			if cr == ri && p.Faults.CouplerUsable(c, ci) {
				devs = append(devs, p.Gates.Dev.CouplerDevice(ci))
			}
		}
		regionDevs[ri] = devs
	}
	tdmResults := make([]*tdm.Grouping, len(regions))
	err = parallel.ForEachCtx(ctx, p.Opts.Workers, len(regions), func(ri int) error {
		var err error
		tdmResults[ri], err = tdm.GroupDevices(p.Gates, regionDevs[ri], cfg)
		if err != nil {
			return fmt.Errorf("region %d: %w", ri, err)
		}
		return nil
	})
	if err != nil {
		return stageErr("tdm", err)
	}
	for ri := range regions {
		p.TDM.Groups = append(p.TDM.Groups, tdmResults[ri].Groups...)
	}
	return nil
}

// aliveQubits returns the qubits the fault plan left operable (all of
// them for a fault-free build), sorted ascending.
func (p *Pipeline) aliveQubits() []int {
	return p.Faults.AliveQubits(p.Chip.NumQubits())
}

// usableDevices returns the TDM device ids the design must cover:
// alive qubits plus usable couplers.
func (p *Pipeline) usableDevices() []int {
	devs := append([]int(nil), p.aliveQubits()...)
	for ci := range p.Chip.Couplers {
		if p.Faults.CouplerUsable(p.Chip, ci) {
			devs = append(devs, p.Gates.Dev.CouplerDevice(ci))
		}
	}
	return devs
}

// regions returns the partition regions, or one whole-(alive-)chip
// region.
func (p *Pipeline) regions() [][]int {
	if p.Partition != nil {
		return p.Partition.Regions
	}
	return [][]int{p.aliveQubits()}
}

// couplerRegions returns the region index per coupler.
func (p *Pipeline) couplerRegions() []int {
	if p.Partition != nil {
		return p.Partition.CouplerRegion(p.Chip)
	}
	out := make([]int, p.Chip.NumCouplers())
	return out
}

// Validate re-checks every design invariant of a finished pipeline
// against its fault plan and returns a *DesignError naming the first
// failing stage:
//
//   - partition: regions cover exactly the alive qubits, none dead,
//     connectivity within the alive subgraph;
//   - fdm: groups cover exactly the alive qubits within capacity;
//   - allocate: every grouped qubit has a frequency in its line's zone;
//   - tdm: groups cover exactly the usable devices (a dead qubit or
//     broken coupler in any group is an error), no gate's devices
//     share a group, and every stuck-lossy device sits alone on a
//     direct line.
//
// Build* runs these checks implicitly via the stage constructors;
// Validate exists so campaigns and tests can assert the contract on
// the assembled result.
func (p *Pipeline) Validate() error {
	if p.Chip == nil || p.FDM == nil || p.FreqPlan == nil || p.Gates == nil || p.TDM == nil {
		return &DesignError{Stage: "validate", Err: fmt.Errorf("pipeline is incomplete (missing design stages)")}
	}
	var exclude func(q int) bool
	if p.Faults != nil {
		exclude = p.Faults.QubitDead
	}
	if p.Partition != nil {
		if err := p.Partition.ValidateExcluding(p.Chip, exclude); err != nil {
			return &DesignError{Stage: "partition", Err: err}
		}
	}
	alive := p.aliveQubits()
	if err := p.FDM.ValidateMembers(alive); err != nil {
		return &DesignError{Stage: "fdm", Err: err}
	}
	if err := p.FreqPlan.Validate(p.FDM); err != nil {
		return &DesignError{Stage: "allocate", Err: err}
	}
	devices := p.usableDevices()
	if err := p.TDM.ValidateDevices(p.Gates, devices); err != nil {
		return &DesignError{Stage: "tdm", Err: err}
	}
	if p.Faults != nil {
		for _, d := range devices {
			stuck := p.Faults.QubitStuckLossy(d)
			if p.Gates.Dev.IsCoupler(d) {
				stuck = p.Faults.CouplerStuckLossy(p.Gates.Dev.CouplerID(d))
			}
			if !stuck {
				continue
			}
			gid := p.TDM.GroupOf(d)
			if gid < 0 {
				return &DesignError{Stage: "tdm", Err: fmt.Errorf("stuck-lossy device %s missing from grouping", p.Gates.Dev.Name(d))}
			}
			grp := p.TDM.Groups[gid]
			if len(grp.Devices) != 1 || grp.Level != tdm.DemuxNone {
				return &DesignError{Stage: "tdm", Err: fmt.Errorf("stuck-lossy device %s shares a DEMUX (group %d, level %s)",
					p.Gates.Dev.Name(d), gid, grp.Level)}
			}
		}
	}
	return nil
}

// ScheduleBenchmark compiles the named benchmark circuit ("VQC",
// "ISING", "DJ", "QFT", "QKNN") at the given logical width onto the
// pipeline's chip and schedules it under the designed TDM grouping.
func (p *Pipeline) ScheduleBenchmark(name string, qubits int) (*schedule.Schedule, error) {
	logical, err := circuit.Benchmark(circuit.BenchmarkName(name), qubits, p.Opts.Seed)
	if err != nil {
		return nil, err
	}
	compiled, err := circuit.CompileSabre(logical, p.Chip)
	if err != nil {
		return nil, err
	}
	return schedule.New(p.Chip, p.TDM, schedule.DefaultDurations()).Run(compiled.Circuit)
}

// fitModel measures one crosstalk channel and fits the characterization
// model, subsampling large campaigns. The measurement campaign and the
// subsample draw run on their own streams of the design seed. With a
// nil (or disabled) fault plan the campaign is the historical
// MeasureSeeded path, bit for bit; otherwise dropouts are retried
// within opts.RetryBudget and surviving samples may carry injected
// outliers (trimmed by the fit when configured).
func fitModel(ctx context.Context, c *chip.Chip, dev *xmon.Device, kind xmon.CrosstalkKind, opts Options, designSeed int64, measureStream, subStream uint64, plan *faults.Plan) (*crosstalk.Model, faults.CampaignStats, error) {
	samples, stats, err := faults.Measure(ctx, dev, kind, 0.05, parallel.TaskSeed(designSeed, measureStream), opts.Workers, opts.RetryBudget, plan)
	if err != nil {
		return nil, stats, err
	}
	if opts.MaxFitSamples > 0 && len(samples) > opts.MaxFitSamples {
		rng := parallel.TaskRand(designSeed, subStream)
		perm := rng.Perm(len(samples))[:opts.MaxFitSamples]
		sub := make([]xmon.Sample, len(perm))
		for i, pi := range perm {
			sub[i] = samples[pi]
		}
		samples = sub
	}
	m, err := crosstalk.FitCtx(ctx, c, samples, opts.Fit)
	return m, stats, err
}
