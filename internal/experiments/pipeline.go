// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a plain function returning typed rows,
// shared by cmd/tables, cmd/figures, the examples and the benchmark
// harness in the repository root.
//
// The package also owns the end-to-end YOUTIAO pipeline used by most
// experiments: fabricate a synthetic Xmon device on a chip, measure
// crosstalk, fit the characterization model, partition the chip, run
// FDM grouping + frequency allocation and TDM grouping.
package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/chip"
	"repro/internal/circuit"
	"repro/internal/crosstalk"
	"repro/internal/fdm"
	"repro/internal/mlfit"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/tdm"
	"repro/internal/xmon"
)

// Options tune the pipeline. The zero value is completed by defaults.
type Options struct {
	// Seed drives device fabrication, measurement noise and partition
	// seeding. Defaults to 1.
	Seed int64
	// FDMCapacity is the qubits-per-XY-line limit (paper: 5).
	FDMCapacity int
	// Theta is the TDM parallelism threshold (paper example: 4).
	Theta float64
	// PartitionTargetSize is the qubits-per-region target; regions
	// below 2 disable partitioning (small chips are grouped whole).
	PartitionTargetSize int
	// MaxFitSamples subsamples the calibration campaign before model
	// fitting so large chips stay tractable. Defaults to 1500.
	MaxFitSamples int
	// SparseQubitZ enables the surface-code operation mode for TDM
	// grouping (see tdm.Config.SparseQubitZ).
	SparseQubitZ bool
	// TDMMinLossyFraction overrides tdm.Config.MinLossyFraction when
	// non-zero (higher = stricter grouping, less serialization).
	TDMMinLossyFraction float64
	// TDMLossyLimit overrides tdm.Config.LossyLimit when non-zero.
	TDMLossyLimit int
	// AnnealSteps, when positive, refines the greedy frequency
	// allocation with that many simulated-annealing moves.
	AnnealSteps int
	// Fit configures the crosstalk model search. Zero value gets a
	// fast default (coarser grid and smaller forest than
	// crosstalk.DefaultFitConfig, adequate for grouping guidance).
	Fit crosstalk.FitConfig
	// Workers bounds the worker pool of every parallel pipeline stage
	// (calibration campaign, model grid search, per-region grouping).
	// <= 0 selects runtime.NumCPU(); 1 runs fully sequentially. The
	// designed system is bit-identical for every value — randomness is
	// split per task from Seed, never shared across workers (see
	// internal/parallel).
	Workers int
}

func (o Options) normalized() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.FDMCapacity <= 0 {
		o.FDMCapacity = 5
	}
	if o.Theta == 0 {
		o.Theta = 4
	}
	if o.PartitionTargetSize == 0 {
		o.PartitionTargetSize = 36
	}
	if o.MaxFitSamples == 0 {
		o.MaxFitSamples = 1500
	}
	if len(o.Fit.WeightGrid) == 0 {
		o.Fit = crosstalk.FitConfig{
			WeightGrid: []float64{0, 0.25, 0.5, 1.0},
			Folds:      5,
			Forest: mlfit.ForestConfig{
				NumTrees: 12,
				Tree:     mlfit.TreeConfig{MaxDepth: 10, MinLeafSize: 4},
				Seed:     1,
			},
		}
	}
	if o.Fit.Workers == 0 {
		o.Fit.Workers = o.Workers
	}
	return o
}

// Stable per-stage stream indices for parallel.TaskSeed: each pipeline
// stage that needs randomness owns a fixed stream of the design seed,
// so stages never share RNG state and can run in any order or in
// parallel without perturbing each other's draws.
const (
	streamMeasureXY = iota + 1
	streamSubsampleXY
	streamMeasureZZ
	streamSubsampleZZ
	streamPartition
	// streamMeasureAlt/streamSubsampleAlt serve experiments fitting a
	// second same-kind model in one run (Figure 12's transfer pair).
	streamMeasureAlt
	streamSubsampleAlt
)

// Pipeline is the fully-designed YOUTIAO control system for one chip.
type Pipeline struct {
	Opts   Options
	Chip   *chip.Chip
	Device *xmon.Device

	ModelXY *crosstalk.Model
	ModelZZ *crosstalk.Model
	PredXY  *crosstalk.Predictor
	PredZZ  *crosstalk.Predictor

	Partition *partition.Partition
	FDM       *fdm.Grouping
	FreqPlan  *fdm.FrequencyPlan
	Gates     *tdm.GateInfo
	TDM       *tdm.Grouping
}

// BuildPipeline designs the complete YOUTIAO control system for a chip.
func BuildPipeline(c *chip.Chip, opts Options) (*Pipeline, error) {
	opts = opts.normalized()
	// Fabrication keeps its own sequential stream at the raw seed so a
	// given (chip, seed) always yields the same device.
	rng := rand.New(rand.NewSource(opts.Seed))
	dev := xmon.NewDevice(c, xmon.DefaultParams(), rng)
	return buildOnDevice(dev, opts, opts.Seed)
}

// BuildPipelineOnDevice designs the system for an already-fabricated
// device (used by the model-transfer experiments).
func BuildPipelineOnDevice(dev *xmon.Device, opts Options) (*Pipeline, error) {
	opts = opts.normalized()
	return buildOnDevice(dev, opts, opts.Seed+7)
}

// buildOnDevice runs characterization and design. designSeed is the
// master seed of every post-fabrication stage; each stage splits its
// own stream off it, so the XY and ZZ campaigns are independent tasks
// and the result is invariant in opts.Workers.
func buildOnDevice(dev *xmon.Device, opts Options, designSeed int64) (*Pipeline, error) {
	c := dev.Chip
	p := &Pipeline{Opts: opts, Chip: c, Device: dev}

	// 1. Calibration campaign and crosstalk characterization. The two
	// channels are measured and fitted concurrently; inside each fit
	// the weight grid fans out again over the same Workers budget.
	kinds := []struct {
		kind                     xmon.CrosstalkKind
		measureStream, subStream uint64
		model                    *crosstalk.Model
	}{
		{kind: xmon.XY, measureStream: streamMeasureXY, subStream: streamSubsampleXY},
		{kind: xmon.ZZ, measureStream: streamMeasureZZ, subStream: streamSubsampleZZ},
	}
	err := parallel.ForEachErr(min2(opts.Workers), len(kinds), func(ki int) error {
		k := &kinds[ki]
		m, err := fitModel(c, dev, k.kind, opts, designSeed, k.measureStream, k.subStream)
		if err != nil {
			return fmt.Errorf("experiments: %v model: %w", k.kind, err)
		}
		k.model = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	p.ModelXY, p.ModelZZ = kinds[0].model, kinds[1].model
	p.PredXY = p.ModelXY.On(c)
	p.PredZZ = p.ModelZZ.On(c)
	return p, p.design(parallel.TaskSeed(designSeed, streamPartition))
}

// min2 caps the two-task characterization fan-out so a sequential
// request (Workers == 1) stays strictly sequential.
func min2(workers int) int {
	if w := parallel.Workers(workers); w < 2 {
		return w
	}
	return 2
}

// AttachModels installs externally-trained crosstalk models (the
// Figure 12 transfer scenario) and redesigns the groupings with them.
func (p *Pipeline) AttachModels(xy, zz *crosstalk.Model) error {
	p.ModelXY, p.ModelZZ = xy, zz
	p.PredXY = xy.On(p.Chip)
	p.PredZZ = zz.On(p.Chip)
	return p.design(parallel.TaskSeed(p.Opts.Seed+13, streamPartition))
}

// design runs partition -> FDM -> allocation -> TDM with the current
// predictors. seed drives the generative partition only; the grouping
// stages are deterministic searches.
func (p *Pipeline) design(seed int64) error {
	c := p.Chip
	dist := p.PredXY.EquivDistance

	// 2. Generative partition (skipped for chips at or below one
	// region).
	if c.NumQubits() > p.Opts.PartitionTargetSize {
		rng := rand.New(rand.NewSource(seed))
		part, err := partition.Generate(c, dist, partition.Config{TargetSize: p.Opts.PartitionTargetSize}, rng)
		if err != nil {
			return fmt.Errorf("experiments: partition: %w", err)
		}
		p.Partition = part
	}

	// 3. FDM grouping per region — regions are disjoint after the
	// partition stabilizes, so they fan out over the worker pool (the
	// paper's stage-3 pipelining) and are assembled in region order to
	// stay deterministic. The two-level allocation then runs globally.
	regions := p.regions()
	p.FDM = &fdm.Grouping{Capacity: p.Opts.FDMCapacity}
	fdmResults := make([]*fdm.Grouping, len(regions))
	err := parallel.ForEachErr(p.Opts.Workers, len(regions), func(ri int) error {
		var err error
		fdmResults[ri], err = fdm.Group(regions[ri], p.Opts.FDMCapacity, dist)
		if err != nil {
			return fmt.Errorf("experiments: FDM grouping region %d: %w", ri, err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for ri := range regions {
		p.FDM.Groups = append(p.FDM.Groups, fdmResults[ri].Groups...)
	}
	plan, err := fdm.Allocate(p.FDM, p.PredXY.Predict, fdm.DefaultAllocOptions())
	if err != nil {
		return fmt.Errorf("experiments: frequency allocation: %w", err)
	}
	if p.Opts.AnnealSteps > 0 {
		annealOpts := fdm.DefaultAnnealOptions()
		annealOpts.Steps = p.Opts.AnnealSteps
		annealOpts.Seed = p.Opts.Seed
		refined, _, _, err := fdm.Anneal(plan, p.FDM, p.PredXY.Predict, annealOpts)
		if err != nil {
			return fmt.Errorf("experiments: anneal: %w", err)
		}
		plan = refined
	}
	p.FreqPlan = plan

	// 4. TDM grouping per region over qubits and couplers.
	p.Gates = tdm.AnalyzeGates(c)
	cfg := tdm.DefaultConfig(p.PredZZ.Predict)
	cfg.Theta = p.Opts.Theta
	cfg.SparseQubitZ = p.Opts.SparseQubitZ
	if p.Opts.TDMMinLossyFraction > 0 {
		cfg.MinLossyFraction = p.Opts.TDMMinLossyFraction
	}
	if p.Opts.TDMLossyLimit > 0 {
		cfg.LossyLimit = p.Opts.TDMLossyLimit
	}
	p.TDM = &tdm.Grouping{Theta: cfg.Theta}
	couplerRegions := p.couplerRegions()
	regionDevs := make([][]int, len(regions))
	for ri, region := range regions {
		devs := append([]int(nil), region...)
		for ci, cr := range couplerRegions {
			if cr == ri {
				devs = append(devs, p.Gates.Dev.CouplerDevice(ci))
			}
		}
		regionDevs[ri] = devs
	}
	tdmResults := make([]*tdm.Grouping, len(regions))
	err = parallel.ForEachErr(p.Opts.Workers, len(regions), func(ri int) error {
		var err error
		tdmResults[ri], err = tdm.GroupDevices(p.Gates, regionDevs[ri], cfg)
		if err != nil {
			return fmt.Errorf("experiments: TDM grouping region %d: %w", ri, err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for ri := range regions {
		p.TDM.Groups = append(p.TDM.Groups, tdmResults[ri].Groups...)
	}
	return nil
}

// regions returns the partition regions, or one whole-chip region.
func (p *Pipeline) regions() [][]int {
	if p.Partition != nil {
		return p.Partition.Regions
	}
	all := make([]int, p.Chip.NumQubits())
	for i := range all {
		all[i] = i
	}
	return [][]int{all}
}

// couplerRegions returns the region index per coupler.
func (p *Pipeline) couplerRegions() []int {
	if p.Partition != nil {
		return p.Partition.CouplerRegion(p.Chip)
	}
	out := make([]int, p.Chip.NumCouplers())
	return out
}

// ScheduleBenchmark compiles the named benchmark circuit ("VQC",
// "ISING", "DJ", "QFT", "QKNN") at the given logical width onto the
// pipeline's chip and schedules it under the designed TDM grouping.
func (p *Pipeline) ScheduleBenchmark(name string, qubits int) (*schedule.Schedule, error) {
	logical, err := circuit.Benchmark(circuit.BenchmarkName(name), qubits, p.Opts.Seed)
	if err != nil {
		return nil, err
	}
	compiled, err := circuit.CompileSabre(logical, p.Chip)
	if err != nil {
		return nil, err
	}
	return schedule.New(p.Chip, p.TDM, schedule.DefaultDurations()).Run(compiled.Circuit)
}

// fitModel measures one crosstalk channel and fits the characterization
// model, subsampling large campaigns. The measurement campaign and the
// subsample draw run on their own streams of the design seed.
func fitModel(c *chip.Chip, dev *xmon.Device, kind xmon.CrosstalkKind, opts Options, designSeed int64, measureStream, subStream uint64) (*crosstalk.Model, error) {
	samples := dev.MeasureSeeded(kind, 0.05, parallel.TaskSeed(designSeed, measureStream), opts.Workers)
	if len(samples) > opts.MaxFitSamples {
		rng := parallel.TaskRand(designSeed, subStream)
		perm := rng.Perm(len(samples))[:opts.MaxFitSamples]
		sub := make([]xmon.Sample, len(perm))
		for i, pi := range perm {
			sub[i] = samples[pi]
		}
		samples = sub
	}
	return crosstalk.Fit(c, samples, opts.Fit)
}
