// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a plain function returning typed rows,
// shared by cmd/tables, cmd/figures, the examples and the benchmark
// harness in the repository root.
//
// The package also owns the end-to-end YOUTIAO pipeline used by most
// experiments: fabricate a synthetic Xmon device on a chip, measure
// crosstalk, fit the characterization model, partition the chip, run
// FDM grouping + frequency allocation and TDM grouping. The flow is
// decomposed into keyed stages (see designer.go and the stage_*.go
// files) executed through an internal/stage artifact store; BuildPipeline*
// are thin one-shot compositions over it, and Designer reuses the store
// across calls for incremental redesigns.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/chip"
	"repro/internal/circuit"
	"repro/internal/crosstalk"
	"repro/internal/faults"
	"repro/internal/fdm"
	"repro/internal/mlfit"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/stage"
	"repro/internal/tdm"
	"repro/internal/xmon"
)

// Options tune the pipeline. The zero value is completed by defaults.
type Options struct {
	// Seed drives device fabrication, measurement noise and partition
	// seeding. Defaults to 1.
	Seed int64
	// FDMCapacity is the qubits-per-XY-line limit (paper: 5).
	FDMCapacity int
	// Theta is the TDM parallelism threshold (paper example: 4). An
	// explicit zero is honored only when HasTheta is set; otherwise the
	// default (4) applies.
	Theta float64
	// HasTheta marks Theta as explicitly set, so Theta = 0 (every
	// device above threshold, 1:2 DEMUXes only) is expressible. CLI
	// front-ends set it from flag presence.
	HasTheta bool
	// PartitionTargetSize is the qubits-per-region target; regions
	// below 2 disable partitioning (small chips are grouped whole).
	PartitionTargetSize int
	// MaxFitSamples subsamples the calibration campaign before model
	// fitting so large chips stay tractable. Defaults to 1500; an
	// explicit zero (no cap) is honored only when HasMaxFitSamples is
	// set.
	MaxFitSamples int
	// HasMaxFitSamples marks MaxFitSamples as explicitly set, so a zero
	// value means "fit on the full campaign" instead of the default.
	HasMaxFitSamples bool
	// SparseQubitZ enables the surface-code operation mode for TDM
	// grouping (see tdm.Config.SparseQubitZ).
	SparseQubitZ bool
	// TDMMinLossyFraction overrides tdm.Config.MinLossyFraction when
	// non-zero (higher = stricter grouping, less serialization).
	TDMMinLossyFraction float64
	// TDMLossyLimit overrides tdm.Config.LossyLimit when non-zero.
	TDMLossyLimit int
	// AnnealSteps, when positive, refines the greedy frequency
	// allocation with that many simulated-annealing moves.
	AnnealSteps int
	// Fit configures the crosstalk model search. Zero value gets a
	// fast default (coarser grid and smaller forest than
	// crosstalk.DefaultFitConfig, adequate for grouping guidance).
	Fit crosstalk.FitConfig
	// Workers bounds the worker pool of every parallel pipeline stage
	// (calibration campaign, model grid search, per-region grouping).
	// <= 0 selects runtime.NumCPU(); 1 runs fully sequentially. The
	// designed system is bit-identical for every value — randomness is
	// split per task from Seed, never shared across workers (see
	// internal/parallel). Workers is therefore excluded from every
	// artifact key: a cached stage output is valid at any parallelism.
	Workers int
	// Faults injects a deterministic device-defect and calibration
	// fault plan into the build (see internal/faults). The zero value
	// disables injection and reproduces the fault-free pipeline
	// bit-for-bit.
	Faults faults.Spec
	// RetryBudget is the number of re-measurement attempts per qubit
	// pair after a calibration dropout (each attempt re-seeds its RNG
	// stream deterministically; there is no wall-clock backoff).
	// 0 selects the default (3); negative disables retries.
	RetryBudget int
	// Obs, when non-nil, receives this build's instrumentation: stage
	// cache hit/miss counters, per-stage latency histograms and the
	// design span tree. It is pure observation — normalized() leaves it
	// untouched, no artifact key digests it (Digest excludes it
	// alongside Workers), and the designed system is bit-identical with
	// or without it. Package-level counters (worker pool, calibration
	// faults, fit, simulators) are process-global; route them into the
	// same registry with Observe.
	Obs *obs.Registry
}

// normalized completes the zero value with defaults. It is applied
// exactly once, at the public entry points (Build* and
// Designer.RedesignCtx) — it is not idempotent (RetryBudget folds
// negative to 0 and 0 to 3), and artifact keys digest normalized
// fields, so double application would corrupt both semantics and keys.
func (o Options) normalized() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.FDMCapacity <= 0 {
		o.FDMCapacity = 5
	}
	if o.Theta == 0 && !o.HasTheta {
		o.Theta = 4
	}
	if o.PartitionTargetSize == 0 {
		o.PartitionTargetSize = 36
	}
	if o.MaxFitSamples == 0 && !o.HasMaxFitSamples {
		o.MaxFitSamples = 1500
	}
	if o.RetryBudget == 0 {
		o.RetryBudget = 3
	} else if o.RetryBudget < 0 {
		o.RetryBudget = 0
	}
	if len(o.Fit.WeightGrid) == 0 {
		o.Fit = crosstalk.FitConfig{
			WeightGrid: []float64{0, 0.25, 0.5, 1.0},
			Folds:      5,
			Forest: mlfit.ForestConfig{
				NumTrees: 12,
				Tree:     mlfit.TreeConfig{MaxDepth: 10, MinLeafSize: 4},
				Seed:     1,
			},
		}
	}
	if o.Fit.Workers == 0 {
		o.Fit.Workers = o.Workers
	}
	// A campaign that injects heavy-tailed outliers defends the fit by
	// default: trim a band twice the injection rate (capped), unless
	// the caller chose a fraction explicitly.
	if o.Faults.OutlierRate > 0 && o.Fit.TrimOutlierFraction == 0 {
		f := 2 * o.Faults.OutlierRate
		if f > 0.2 {
			f = 0.2
		}
		o.Fit.TrimOutlierFraction = f
	}
	return o
}

// Stable per-stage stream indices for parallel.TaskSeed: each pipeline
// stage that needs randomness owns a fixed stream of the design seed,
// so stages never share RNG state and can run in any order or in
// parallel without perturbing each other's draws.
const (
	streamMeasureXY = iota + 1
	streamSubsampleXY
	streamMeasureZZ
	streamSubsampleZZ
	streamPartition
	// streamMeasureAlt/streamSubsampleAlt serve experiments fitting a
	// second same-kind model in one run (Figure 12's transfer pair).
	streamMeasureAlt
	streamSubsampleAlt
	// streamFaults draws the fault plan. Appended last so fault-free
	// builds replay the exact historical streams.
	streamFaults
)

// Pipeline is the fully-designed YOUTIAO control system for one chip.
type Pipeline struct {
	Opts   Options
	Chip   *chip.Chip
	Device *xmon.Device

	ModelXY *crosstalk.Model
	ModelZZ *crosstalk.Model
	PredXY  *crosstalk.Predictor
	PredZZ  *crosstalk.Predictor

	Partition *partition.Partition
	FDM       *fdm.Grouping
	FreqPlan  *fdm.FrequencyPlan
	Gates     *tdm.GateInfo
	TDM       *tdm.Grouping

	// Faults is the injected defect plan, nil for a fault-free build.
	Faults *faults.Plan
	// Calib aggregates the calibration campaign's fault accounting
	// (dropouts, retries, lost pairs, outliers) across both channels.
	Calib faults.CampaignStats
}

// BuildPipeline designs the complete YOUTIAO control system for a chip.
func BuildPipeline(c *chip.Chip, opts Options) (*Pipeline, error) {
	return BuildPipelineCtx(context.Background(), c, opts)
}

// BuildPipelineCtx is BuildPipeline with cooperative cancellation: the
// calibration campaign, model grid search and per-region grouping all
// check ctx and return its error (wrapped in a *DesignError) once it
// fires.
//
// The one-shot build runs the stage flow through a private, discarded
// artifact store. Fabrication assigns base frequencies into the
// caller's chip (experiments read them back); use a Designer to keep
// the chip pristine and to reuse artifacts across builds.
func BuildPipelineCtx(ctx context.Context, c *chip.Chip, opts Options) (*Pipeline, error) {
	opts = opts.normalized()
	return buildStaged(ctx, stage.NewStore(),
		buildTarget{chip: c, chipKey: chipFingerprint(c)}, opts, opts.Seed)
}

// BuildPipelineOnDevice designs the system for an already-fabricated
// device (used by the model-transfer experiments).
func BuildPipelineOnDevice(dev *xmon.Device, opts Options) (*Pipeline, error) {
	return BuildPipelineOnDeviceCtx(context.Background(), dev, opts)
}

// BuildPipelineOnDeviceCtx is BuildPipelineOnDevice with cooperative
// cancellation, mirroring BuildPipelineCtx.
func BuildPipelineOnDeviceCtx(ctx context.Context, dev *xmon.Device, opts Options) (*Pipeline, error) {
	opts = opts.normalized()
	return buildStaged(ctx, stage.NewStore(),
		buildTarget{dev: dev, devKey: deviceFingerprint(dev)}, opts, opts.Seed+7)
}

// min2 caps the two-task characterization fan-out so a sequential
// request (Workers == 1) stays strictly sequential.
func min2(workers int) int {
	if w := parallel.Workers(workers); w < 2 {
		return w
	}
	return 2
}

// AttachModels installs externally-trained crosstalk models (the
// Figure 12 transfer scenario) and redesigns the groupings with them.
// The redesign runs through a private store whose model keys digest the
// attached models' fitted weights rather than a measurement lineage.
func (p *Pipeline) AttachModels(xy, zz *crosstalk.Model) error {
	p.ModelXY, p.ModelZZ = xy, zz
	p.PredXY = xy.On(p.Chip)
	p.PredZZ = zz.On(p.Chip)
	base := chipFingerprint(p.Chip)
	faultsK := faultsStageKey(base, p.Opts.Faults, p.Opts.Seed)
	xyK := attachedModelKey(base, "xy", xy)
	zzK := attachedModelKey(base, "zz", zz)
	store := stage.NewStore()
	store.Observe(p.Opts.Obs)
	root := p.Opts.Obs.StartSpan("attach-models")
	defer root.End()
	return designStaged(context.Background(), store, p, root, faultsK, xyK, zzK,
		parallel.TaskSeed(p.Opts.Seed+13, streamPartition))
}

// attachedModelKey stands in for a characterize-stage key when the
// model arrives pre-trained: it digests the model's fitted metric
// weights and cross-validation error instead of a measurement lineage.
func attachedModelKey(base stage.Key, channel string, m *crosstalk.Model) stage.Key {
	return stage.NewKey("attached-model").
		Key(base).String(channel).
		Float64(m.Weights.WPhy).Float64(m.Weights.WTop).Float64(m.CVError).
		Done()
}

// aliveQubits returns the qubits the fault plan left operable (all of
// them for a fault-free build), sorted ascending.
func (p *Pipeline) aliveQubits() []int {
	return p.Faults.AliveQubits(p.Chip.NumQubits())
}

// usableDevices returns the TDM device ids the design must cover:
// alive qubits plus usable couplers.
func (p *Pipeline) usableDevices() []int {
	devs := append([]int(nil), p.aliveQubits()...)
	for ci := range p.Chip.Couplers {
		if p.Faults.CouplerUsable(p.Chip, ci) {
			devs = append(devs, p.Gates.Dev.CouplerDevice(ci))
		}
	}
	return devs
}

// Validate re-checks every design invariant of a finished pipeline
// against its fault plan and returns a *DesignError naming the first
// failing stage:
//
//   - partition: regions cover exactly the alive qubits, none dead,
//     connectivity within the alive subgraph;
//   - fdm: groups cover exactly the alive qubits within capacity;
//   - allocate: every grouped qubit has a frequency in its line's zone;
//   - tdm: groups cover exactly the usable devices (a dead qubit or
//     broken coupler in any group is an error), no gate's devices
//     share a group, and every stuck-lossy device sits alone on a
//     direct line.
//
// Build* runs these checks implicitly via the stage constructors;
// Validate exists so campaigns and tests can assert the contract on
// the assembled result.
func (p *Pipeline) Validate() error {
	if p.Chip == nil || p.FDM == nil || p.FreqPlan == nil || p.Gates == nil || p.TDM == nil {
		return &DesignError{Stage: "validate", Err: fmt.Errorf("pipeline is incomplete (missing design stages)")}
	}
	var exclude func(q int) bool
	if p.Faults != nil {
		exclude = p.Faults.QubitDead
	}
	if p.Partition != nil {
		if err := p.Partition.ValidateExcluding(p.Chip, exclude); err != nil {
			return &DesignError{Stage: "partition", Err: err}
		}
	}
	alive := p.aliveQubits()
	if err := p.FDM.ValidateMembers(alive); err != nil {
		return &DesignError{Stage: "fdm", Err: err}
	}
	if err := p.FreqPlan.Validate(p.FDM); err != nil {
		return &DesignError{Stage: "allocate", Err: err}
	}
	devices := p.usableDevices()
	if err := p.TDM.ValidateDevices(p.Gates, devices); err != nil {
		return &DesignError{Stage: "tdm", Err: err}
	}
	if p.Faults != nil {
		for _, d := range devices {
			stuck := p.Faults.QubitStuckLossy(d)
			if p.Gates.Dev.IsCoupler(d) {
				stuck = p.Faults.CouplerStuckLossy(p.Gates.Dev.CouplerID(d))
			}
			if !stuck {
				continue
			}
			gid := p.TDM.GroupOf(d)
			if gid < 0 {
				return &DesignError{Stage: "tdm", Err: fmt.Errorf("stuck-lossy device %s missing from grouping", p.Gates.Dev.Name(d))}
			}
			grp := p.TDM.Groups[gid]
			if len(grp.Devices) != 1 || grp.Level != tdm.DemuxNone {
				return &DesignError{Stage: "tdm", Err: fmt.Errorf("stuck-lossy device %s shares a DEMUX (group %d, level %s)",
					p.Gates.Dev.Name(d), gid, grp.Level)}
			}
		}
	}
	return nil
}

// ScheduleBenchmark compiles the named benchmark circuit ("VQC",
// "ISING", "DJ", "QFT", "QKNN") at the given logical width onto the
// pipeline's chip and schedules it under the designed TDM grouping.
func (p *Pipeline) ScheduleBenchmark(name string, qubits int) (*schedule.Schedule, error) {
	logical, err := circuit.Benchmark(circuit.BenchmarkName(name), qubits, p.Opts.Seed)
	if err != nil {
		return nil, err
	}
	compiled, err := circuit.CompileSabre(logical, p.Chip)
	if err != nil {
		return nil, err
	}
	return schedule.New(p.Chip, p.TDM, schedule.DefaultDurations()).Run(compiled.Circuit)
}
