package experiments

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/chip"
	"repro/internal/faults"
	"repro/internal/stage"
	"repro/internal/xmon"
)

// persistOpts exercises every codec on its rich variant: injected
// faults, a real partition, annealed allocation.
func persistOpts() Options {
	return Options{
		Seed:                2,
		Faults:              faults.UniformSpec(0.02),
		AnnealSteps:         25,
		PartitionTargetSize: 9,
	}
}

// TestDiskWarmColdProcessBitIdentical is the tentpole acceptance test:
// a cold process (fresh DesignCache, empty memory tier) pointed at a
// warm disk cache must produce a design bit-identical to the purely
// in-memory run, with every stage recalled from disk and none
// re-executed.
func TestDiskWarmColdProcessBitIdentical(t *testing.T) {
	ctx := context.Background()
	opts := persistOpts()

	// Reference: memory-only.
	ref, err := NewDesigner(chip.Square(5, 5)).RedesignCtx(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}

	// First persistent process: executes everything, writes through.
	dir := t.TempDir()
	warm, err := OpenDesignCache(dir, stage.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Designer(chip.Square(5, 5)).RedesignCtx(ctx, opts); err != nil {
		t.Fatal(err)
	}
	stages := len(PipelineStageGraph.Stages())
	if rep := warm.Report(); rep.Misses != stages || rep.DiskHits != 0 {
		t.Fatalf("first persistent run: %d misses, %d disk hits; want %d, 0",
			rep.Misses, rep.DiskHits, stages)
	}
	if bs := warm.Store().BackendStats(); bs.Entries != stages {
		t.Fatalf("write-through persisted %d artifacts, want %d", bs.Entries, stages)
	}

	// Cold process, warm disk: zero executions, everything from disk.
	cold, err := OpenDesignCache(dir, stage.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cold.Designer(chip.Square(5, 5)).RedesignCtx(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := cold.Report()
	if rep.Misses != 0 {
		t.Fatalf("disk-warm run re-executed %d stages", rep.Misses)
	}
	if rep.DiskHits != stages {
		t.Fatalf("disk-warm run took %d disk hits, want %d", rep.DiskHits, stages)
	}

	if got, want := designFingerprint(p), designFingerprint(ref); got != want {
		t.Errorf("disk-warm design differs from in-memory design:\n--- warm ---\n%s--- memory ---\n%s", got, want)
	}
	if p.Calib != ref.Calib {
		t.Errorf("calibration stats differ: %+v != %+v", p.Calib, ref.Calib)
	}
	// The decoded device must carry the full fabricated physics, not
	// just the plan: crosstalk matrices are derived from the disorder
	// fields the codec persists.
	if !reflect.DeepEqual(p.Device.CrosstalkMatrix(xmon.XY), ref.Device.CrosstalkMatrix(xmon.XY)) {
		t.Error("decoded device's XY crosstalk differs from the fabricated one")
	}
	if !reflect.DeepEqual(p.Device.CrosstalkMatrix(xmon.ZZ), ref.Device.CrosstalkMatrix(xmon.ZZ)) {
		t.Error("decoded device's ZZ crosstalk differs from the fabricated one")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("disk-warm design fails validation: %v", err)
	}
}

// A replica sharing the cache directory of a live writer sees its
// artifacts: the two stores coordinate through atomic file renames,
// no locks.
func TestReplicasShareOneCacheDir(t *testing.T) {
	ctx := context.Background()
	opts := persistOpts()
	dir := t.TempDir()

	a, err := OpenDesignCache(dir, stage.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenDesignCache(dir, stage.Config{}, 0) // opened before a writes
	if err != nil {
		t.Fatal(err)
	}
	pa, err := a.Designer(chip.Square(4, 4)).RedesignCtx(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Designer(chip.Square(4, 4)).RedesignCtx(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep := b.Report(); rep.Misses != 0 || rep.DiskHits == 0 {
		t.Fatalf("replica re-executed despite shared dir: %+v", rep)
	}
	if designFingerprint(pa) != designFingerprint(pb) {
		t.Error("replica design differs from writer design")
	}
}

// With codecs stripped to a subset, the covered stages persist and the
// rest silently stay memory-only — a partial-codec store degrades to
// partial warmth, never to an error.
func TestPartialCodecsDegradeGracefully(t *testing.T) {
	ctx := context.Background()
	opts := persistOpts()
	dir := t.TempDir()

	open := func() *DesignCache {
		dc, err := OpenDesignCache(dir, stage.Config{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		only := map[string]stage.Codec{StageFabricate: StageCodecs()[StageFabricate]}
		return NewDesignCacheWithStore(stage.NewStoreWith(stage.Config{
			Backend: dc.Store().Backend(),
			Codecs:  only,
		}))
	}
	if _, err := open().Designer(chip.Square(4, 4)).RedesignCtx(ctx, opts); err != nil {
		t.Fatal(err)
	}
	second := open()
	if _, err := second.Designer(chip.Square(4, 4)).RedesignCtx(ctx, opts); err != nil {
		t.Fatal(err)
	}
	rep := second.Report()
	if rep.DiskHits != 1 {
		t.Fatalf("fabricate-only codec map took %d disk hits, want 1", rep.DiskHits)
	}
	if rep.Misses != len(PipelineStageGraph.Stages())-1 {
		t.Fatalf("uncovered stages: %d misses, want %d", rep.Misses, len(PipelineStageGraph.Stages())-1)
	}
}
