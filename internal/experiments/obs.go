package experiments

import (
	"repro/internal/crosstalk"
	"repro/internal/faults"
	"repro/internal/fdm"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/quantum"
	"repro/internal/route"
	"repro/internal/stage"
)

// Observe installs r as the process-global observer of every
// instrumented package the pipeline drives: the worker pool, the
// calibration fault accounting, the crosstalk fit, the quantum
// simulators, the routing arena and the anneal's sparse neighbor
// structure. Pass nil to uninstall. Per-build instrumentation (stage
// cache counters, stage latency histograms and the design span tree)
// is wired separately through Options.Obs, which follows the build
// rather than the process.
func Observe(r *obs.Registry) {
	parallel.Observe(r)
	faults.Observe(r)
	crosstalk.Observe(r)
	quantum.Observe(r)
	route.Observe(r)
	fdm.Observe(r)
}

// Digest returns a stable hex digest of every normalized option that
// participates in the designed artifact — the manifest's identity for
// "same design inputs". Workers, Fit.Workers and Obs are excluded by
// the determinism contract: they change how the pipeline runs, never
// what it designs.
func (o Options) Digest() string {
	n := o.normalized()
	b := stage.NewKey("options").
		Int64(n.Seed).
		Int(n.FDMCapacity).
		Float64(n.Theta).Bool(n.HasTheta).
		Int(n.PartitionTargetSize).
		Int(n.MaxFitSamples).Bool(n.HasMaxFitSamples).
		Bool(n.SparseQubitZ).
		Float64(n.TDMMinLossyFraction).
		Int(n.TDMLossyLimit).
		Int(n.AnnealSteps).
		Floats(n.Fit.WeightGrid).
		Int(n.Fit.Folds).
		Int(n.Fit.Forest.NumTrees).
		Int(n.Fit.Forest.Tree.MaxDepth).
		Int(n.Fit.Forest.Tree.MinLeafSize).
		Int(n.Fit.Forest.Tree.MaxFeatures).
		Int64(n.Fit.Forest.Seed).
		Float64(n.Fit.TrimOutlierFraction).
		Float64(n.Faults.DeadQubitRate).
		Float64(n.Faults.BrokenCouplerRate).
		Float64(n.Faults.StuckLossyRate).
		Float64(n.Faults.DropoutRate).
		Float64(n.Faults.OutlierRate).
		Float64(n.Faults.OutlierScale).
		Int(n.RetryBudget)
	return string(b.Done())
}
