package experiments

import (
	"fmt"
	"sort"

	"repro/internal/binpack"
	"repro/internal/chip"
	"repro/internal/crosstalk"
	"repro/internal/faults"
	"repro/internal/fdm"
	"repro/internal/partition"
	"repro/internal/stage"
	"repro/internal/tdm"
	"repro/internal/xmon"
)

// StageCodecs returns the artifact codecs of every pipeline stage, so
// a Backend-equipped store can persist the complete design flow — a
// cold process against a warm cache re-executes nothing. The codecs
// obey the round-trip law of stage.Codec: every value a downstream
// stage can read off a decoded artifact is bit-identical to the
// original, which is what keeps disk-warm designs byte-identical to
// in-memory ones.
//
// The map is rebuilt per call; callers may edit their copy (tests drop
// entries to exercise partial-codec stores).
func StageCodecs() map[string]stage.Codec {
	deviceCodec := stage.Codec{
		Encode: func(v any) ([]byte, error) {
			dev, err := artifact[*xmon.Device](StageFabricate, v)
			if err != nil {
				return nil, err
			}
			var e binpack.Enc
			dev.AppendBinary(&e)
			return e.Bytes(), nil
		},
		Decode: func(data []byte) (any, error) {
			return xmon.DecodeBinary(binpack.NewDec(data))
		},
	}
	faultsCodec := stage.Codec{
		Encode: func(v any) ([]byte, error) {
			plan, err := artifact[*faults.Plan](StageFaults, v)
			if err != nil {
				return nil, err
			}
			var e binpack.Enc
			if plan == nil {
				// A disabled fault spec yields a typed-nil plan (the
				// perfect-device path); persist the nil-ness itself.
				e.Bool(false)
				return e.Bytes(), nil
			}
			e.Bool(true)
			plan.AppendBinary(&e)
			return e.Bytes(), nil
		},
		Decode: func(data []byte) (any, error) {
			d := binpack.NewDec(data)
			if !d.Bool() {
				if err := d.Err(); err != nil {
					return nil, err
				}
				return (*faults.Plan)(nil), nil
			}
			return faults.DecodeBinary(d)
		},
	}
	characterizeCodec := stage.Codec{
		Encode: func(v any) ([]byte, error) {
			ch, err := artifact[*characterization](StageCharacterizeXY, v)
			if err != nil {
				return nil, err
			}
			var e binpack.Enc
			// The predictor binds the model to the measured chip; store
			// the chip so decode can rebind (Model.On) without reaching
			// outside the artifact.
			ch.Pred.Chip().AppendBinary(&e)
			ch.Model.AppendBinary(&e)
			s := ch.Stats
			e.Int(s.Pairs)
			e.Int(s.SkippedDead)
			e.Int(s.Dropouts)
			e.Int(s.Retried)
			e.Int(s.LostPairs)
			e.Int(s.Outliers)
			return e.Bytes(), nil
		},
		Decode: func(data []byte) (any, error) {
			d := binpack.NewDec(data)
			c, err := chip.DecodeBinary(d)
			if err != nil {
				return nil, err
			}
			m, err := crosstalk.DecodeBinary(d)
			if err != nil {
				return nil, err
			}
			var s faults.CampaignStats
			s.Pairs = d.Int()
			s.SkippedDead = d.Int()
			s.Dropouts = d.Int()
			s.Retried = d.Int()
			s.LostPairs = d.Int()
			s.Outliers = d.Int()
			if err := d.Err(); err != nil {
				return nil, err
			}
			return &characterization{Model: m, Pred: m.On(c), Stats: s}, nil
		},
	}
	partitionCodec := stage.Codec{
		Encode: func(v any) ([]byte, error) {
			part, err := artifact[*partition.Partition](StagePartition, v)
			if err != nil {
				return nil, err
			}
			var e binpack.Enc
			if part == nil {
				// Small chips design whole; the nil partition is itself
				// the artifact.
				e.Bool(false)
				return e.Bytes(), nil
			}
			e.Bool(true)
			e.IntMatrix(part.Regions)
			e.Ints(part.Seeds)
			e.Int(part.SwapCount)
			return e.Bytes(), nil
		},
		Decode: func(data []byte) (any, error) {
			d := binpack.NewDec(data)
			if !d.Bool() {
				if err := d.Err(); err != nil {
					return nil, err
				}
				return (*partition.Partition)(nil), nil
			}
			p := &partition.Partition{Regions: d.IntMatrix(), Seeds: d.Ints(), SwapCount: d.Int()}
			if err := d.Err(); err != nil {
				return nil, err
			}
			return p, nil
		},
	}
	fdmCodec := stage.Codec{
		Encode: func(v any) ([]byte, error) {
			g, err := artifact[*fdm.Grouping](StageFDMGroup, v)
			if err != nil {
				return nil, err
			}
			var e binpack.Enc
			e.IntMatrix(g.Groups)
			e.Int(g.Capacity)
			return e.Bytes(), nil
		},
		Decode: func(data []byte) (any, error) {
			d := binpack.NewDec(data)
			g := &fdm.Grouping{Groups: d.IntMatrix(), Capacity: d.Int()}
			if err := d.Err(); err != nil {
				return nil, err
			}
			return g, nil
		},
	}
	freqPlanCodec := stage.Codec{
		Encode: func(v any) ([]byte, error) {
			p, err := artifact[*fdm.FrequencyPlan](StageAllocate, v)
			if err != nil {
				return nil, err
			}
			var e binpack.Enc
			e.Int(p.Zones)
			e.Int(p.CellsPerZone)
			e.Int(p.Reused)
			// Maps encode in sorted qubit order so the encoding is a
			// pure function of the plan's value.
			qs := make([]int, 0, len(p.Freq))
			for q := range p.Freq {
				qs = append(qs, q)
			}
			sort.Ints(qs)
			e.U32(uint32(len(qs)))
			for _, q := range qs {
				e.Int(q)
				e.F64(p.Freq[q])
			}
			cs := make([]int, 0, len(p.Cell))
			for q := range p.Cell {
				cs = append(cs, q)
			}
			sort.Ints(cs)
			e.U32(uint32(len(cs)))
			for _, q := range cs {
				ref := p.Cell[q]
				e.Int(q)
				e.Int(ref.Zone)
				e.Int(ref.Cell)
			}
			return e.Bytes(), nil
		},
		Decode: func(data []byte) (any, error) {
			d := binpack.NewDec(data)
			p := &fdm.FrequencyPlan{Zones: d.Int(), CellsPerZone: d.Int(), Reused: d.Int()}
			nf := int(d.U32())
			if err := d.Err(); err != nil {
				return nil, err
			}
			p.Freq = make(map[int]float64, nf)
			for i := 0; i < nf && d.Err() == nil; i++ {
				q := d.Int()
				p.Freq[q] = d.F64()
			}
			nc := int(d.U32())
			if err := d.Err(); err != nil {
				return nil, err
			}
			p.Cell = make(map[int]fdm.CellRef, nc)
			for i := 0; i < nc && d.Err() == nil; i++ {
				q := d.Int()
				p.Cell[q] = fdm.CellRef{Zone: d.Int(), Cell: d.Int()}
			}
			if err := d.Err(); err != nil {
				return nil, err
			}
			return p, nil
		},
	}
	tdmCodec := stage.Codec{
		Encode: func(v any) ([]byte, error) {
			td, err := artifact[*tdmDesign](StageTDM, v)
			if err != nil {
				return nil, err
			}
			var e binpack.Enc
			td.Gates.Dev.Chip().AppendBinary(&e)
			e.U32(uint32(len(td.Gates.Gates)))
			for _, g := range td.Gates.Gates {
				e.Int(g.Q1)
				e.Int(g.Q2)
				e.Int(g.Coupler)
			}
			e.IntMatrix(td.Gates.GatesOf)
			e.IntMatrix(td.Gates.NonCoex)
			e.F64(td.Grouping.Theta)
			e.U32(uint32(len(td.Grouping.Groups)))
			for _, g := range td.Grouping.Groups {
				e.Ints(g.Devices)
				e.Int(int(g.Level))
			}
			return e.Bytes(), nil
		},
		Decode: func(data []byte) (any, error) {
			d := binpack.NewDec(data)
			c, err := chip.DecodeBinary(d)
			if err != nil {
				return nil, err
			}
			gates := &tdm.GateInfo{Dev: tdm.NewDevices(c)}
			ng := int(d.U32())
			if err := d.Err(); err != nil {
				return nil, err
			}
			if ng < 0 || ng > d.Remaining() {
				return nil, fmt.Errorf("tdm artifact: implausible gate count %d", ng)
			}
			gates.Gates = make([]chip.TwoQubitGate, ng)
			for i := range gates.Gates {
				gates.Gates[i].Q1 = d.Int()
				gates.Gates[i].Q2 = d.Int()
				gates.Gates[i].Coupler = d.Int()
			}
			gates.GatesOf = d.IntMatrix()
			gates.NonCoex = d.IntMatrix()
			grouping := &tdm.Grouping{Theta: d.F64()}
			nGroups := int(d.U32())
			if err := d.Err(); err != nil {
				return nil, err
			}
			if nGroups < 0 || nGroups > d.Remaining() {
				return nil, fmt.Errorf("tdm artifact: implausible group count %d", nGroups)
			}
			grouping.Groups = make([]tdm.Group, nGroups)
			for i := range grouping.Groups {
				grouping.Groups[i].Devices = d.Ints()
				grouping.Groups[i].Level = tdm.DemuxLevel(d.Int())
			}
			if err := d.Err(); err != nil {
				return nil, err
			}
			return &tdmDesign{Gates: gates, Grouping: grouping}, nil
		},
	}

	return map[string]stage.Codec{
		StageFabricate:      deviceCodec,
		StageFaults:         faultsCodec,
		StageCharacterizeXY: characterizeCodec,
		StageCharacterizeZZ: characterizeCodec,
		StagePartition:      partitionCodec,
		StageFDMGroup:       fdmCodec,
		StageAllocate:       freqPlanCodec,
		StageAnneal:         freqPlanCodec,
		StageTDM:            tdmCodec,
	}
}

// artifact asserts a stage artifact's type for a codec; the typed-nil
// case (nil *faults.Plan, nil *partition.Partition) passes the
// assertion and is handled by the codec itself.
func artifact[T any](name string, v any) (T, error) {
	t, ok := v.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("%s artifact is %T, not %T", name, v, zero)
	}
	return t, nil
}
