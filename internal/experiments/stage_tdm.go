package experiments

import (
	"context"
	"fmt"

	"repro/internal/chip"
	"repro/internal/faults"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/stage"
	"repro/internal/tdm"
)

// tdmDesign is the artifact of the tdm stage: the gate-site parallelism
// analysis and the readout/Z grouping built from it.
type tdmDesign struct {
	Gates    *tdm.GateInfo
	Grouping *tdm.Grouping
}

// tdmKey keys the TDM stage: fault, partition and ZZ-model lineage plus
// exactly the options the stage reads. Theta lives here and nowhere
// upstream, which is what makes a Theta sweep re-run only this stage.
func tdmKey(faultsK, partK, zzK stage.Key, opts Options) stage.Key {
	return stage.NewKey(StageTDM).
		Key(faultsK).Key(partK).Key(zzK).
		Float64(opts.Theta).Bool(opts.SparseQubitZ).
		Float64(opts.TDMMinLossyFraction).Int(opts.TDMLossyLimit).
		Done()
}

// runTDMStage analyzes gate parallelism and groups qubits and couplers
// onto shared readout/Z lines, region by region. A fault plan drops
// unusable gate sites from the parallelism analysis, removes
// broken/dead couplers from the device sets and forces stuck-lossy
// devices onto dedicated direct lines.
func runTDMStage(ctx context.Context, store *stage.Store, key stage.Key, c *chip.Chip, plan *faults.Plan, part *partition.Partition, xt tdm.CrosstalkFunc, opts Options) (*tdmDesign, error) {
	td, _, err := stage.Do(ctx, store, StageTDM, key, parallel.Workers(opts.Workers), func(ctx context.Context) (*tdmDesign, error) {
		var usableGate func(chip.TwoQubitGate) bool
		if plan != nil {
			usableGate = func(g chip.TwoQubitGate) bool { return plan.GateUsable(c, g) }
		}
		gates := tdm.AnalyzeGatesUsable(c, usableGate)
		cfg := tdm.DefaultConfig(xt)
		cfg.Theta = opts.Theta
		cfg.SparseQubitZ = opts.SparseQubitZ
		if opts.TDMMinLossyFraction > 0 {
			cfg.MinLossyFraction = opts.TDMMinLossyFraction
		}
		if opts.TDMLossyLimit > 0 {
			cfg.LossyLimit = opts.TDMLossyLimit
		}
		if plan != nil {
			cfg.Isolate = func(dev int) bool {
				if gates.Dev.IsCoupler(dev) {
					return plan.CouplerStuckLossy(gates.Dev.CouplerID(dev))
				}
				return plan.QubitStuckLossy(dev)
			}
		}
		regions := regionsOf(part, plan.AliveQubits(c.NumQubits()))
		couplerRegions := couplerRegionsOf(part, c)
		regionDevs := make([][]int, len(regions))
		for ri, region := range regions {
			devs := append([]int(nil), region...)
			for ci, cr := range couplerRegions {
				if cr == ri && plan.CouplerUsable(c, ci) {
					devs = append(devs, gates.Dev.CouplerDevice(ci))
				}
			}
			regionDevs[ri] = devs
		}
		grouping := &tdm.Grouping{Theta: cfg.Theta}
		results := make([]*tdm.Grouping, len(regions))
		err := parallel.ForEachCtx(ctx, opts.Workers, len(regions), func(ri int) error {
			var err error
			results[ri], err = tdm.GroupDevices(gates, regionDevs[ri], cfg)
			if err != nil {
				return fmt.Errorf("region %d: %w", ri, err)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for ri := range regions {
			grouping.Groups = append(grouping.Groups, results[ri].Groups...)
		}
		return &tdmDesign{Gates: gates, Grouping: grouping}, nil
	})
	return td, err
}
