package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/chip"
	"repro/internal/xmon"
)

// designFingerprint serializes everything the pipeline designed —
// model weights and CV errors, partition regions, FDM lines, the full
// frequency plan and every TDM group — so two designs can be compared
// byte for byte.
func designFingerprint(p *Pipeline) string {
	s := fmt.Sprintf("XY:%+v cv=%v ZZ:%+v cv=%v\n",
		p.ModelXY.Weights, p.ModelXY.CVError, p.ModelZZ.Weights, p.ModelZZ.CVError)
	if p.Partition != nil {
		s += fmt.Sprintf("partition:%v\n", p.Partition.Regions)
	}
	s += fmt.Sprintf("fdm:%v\n", p.FDM.Groups)
	for q := 0; q < p.Chip.NumQubits(); q++ {
		s += fmt.Sprintf("f[%d]=%v ", q, p.FreqPlan.Freq[q])
	}
	s += "\n"
	for _, g := range p.TDM.Groups {
		s += fmt.Sprintf("tdm:%v@%v\n", g.Devices, g.Level)
	}
	return s
}

// TestPipelineWorkerCountInvariant is the end-to-end determinism
// regression test of the parallel execution layer: the complete design
// with Workers=4 must be bit-identical to Workers=1 for three seeds.
// The 8×8 chip with a small partition target exercises every parallel
// stage — campaign, grid search, per-region FDM and TDM.
func TestPipelineWorkerCountInvariant(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		var prints [2]string
		var pipes [2]*Pipeline
		for wi, workers := range []int{1, 4} {
			p, err := BuildPipeline(chip.Square(8, 8), Options{
				Seed:                seed,
				Workers:             workers,
				PartitionTargetSize: 16,
			})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			prints[wi] = designFingerprint(p)
			pipes[wi] = p
		}
		if prints[0] != prints[1] {
			t.Errorf("seed %d: design differs between Workers=1 and Workers=4:\n--- sequential ---\n%s--- parallel ---\n%s",
				seed, prints[0], prints[1])
		}
		// The fabricated device must be identical too (fabrication is
		// worker-independent by construction).
		seqXT := pipes[0].Device.CrosstalkMatrix(xmon.XY)
		parXT := pipes[1].Device.CrosstalkMatrix(xmon.XY)
		if !reflect.DeepEqual(seqXT, parXT) {
			t.Errorf("seed %d: fabricated devices differ", seed)
		}
	}
}

// TestPipelineWorkerCountInvariantSmallChip covers the unpartitioned
// path (single region) with annealed allocation enabled.
func TestPipelineWorkerCountInvariantSmallChip(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		var prints [2]string
		for wi, workers := range []int{1, 4} {
			p, err := BuildPipeline(chip.Square(4, 4), Options{
				Seed:        seed,
				Workers:     workers,
				AnnealSteps: 300,
			})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			prints[wi] = designFingerprint(p)
		}
		if prints[0] != prints[1] {
			t.Errorf("seed %d: small-chip design differs across worker counts", seed)
		}
	}
}

// TestFig17WorkerCountInvariant checks the scalesim calibration path:
// the calibrated fan-outs and every sweep point must match across
// worker counts.
func TestFig17WorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("fig17 runs three full pipelines")
	}
	var results [2]*Fig17Result
	for wi, workers := range []int{1, 4} {
		res, err := Fig17(Options{Seed: 1, Workers: workers})
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		results[wi] = res
	}
	seq, par := results[0], results[1]
	if seq.ZFanoutSquare != par.ZFanoutSquare || seq.ZFanoutHeavyHex != par.ZFanoutHeavyHex {
		t.Errorf("fan-outs differ: (%v,%v) vs (%v,%v)",
			seq.ZFanoutSquare, seq.ZFanoutHeavyHex, par.ZFanoutSquare, par.ZFanoutHeavyHex)
	}
	if !reflect.DeepEqual(seq.SmallSweep, par.SmallSweep) || !reflect.DeepEqual(seq.LargeSweep, par.LargeSweep) {
		t.Error("sweeps differ across worker counts")
	}
	if seq.System150 != par.System150 {
		t.Errorf("150q panel differs: %+v vs %+v", seq.System150, par.System150)
	}
}
