package experiments

import (
	"fmt"

	"repro/internal/chip"
	"repro/internal/cost"
	"repro/internal/parallel"
	"repro/internal/scalesim"
	"repro/internal/tdm"
	"repro/internal/wiring"
)

// Fig17System150 is the 150-qubit panel (Figure 17b): cable budgets and
// the fidelity of simultaneous XY gates on every qubit under the
// YOUTIAO FDM plan.
type Fig17System150 struct {
	GoogleCoax  int
	YoutiaoCoax int
	XYFidelity  float64
}

// Fig17Result bundles the large-scale estimation panels.
type Fig17Result struct {
	// ZFanoutSquare and ZFanoutHeavyHex are the calibrated average Z
	// DEMUX fan-outs measured by running the real pipeline.
	ZFanoutSquare   float64
	ZFanoutHeavyHex float64

	SmallSweep []scalesim.Point        // (a): 10–1k qubits
	System150  Fig17System150          // (b)
	Chiplets   []scalesim.ChipletPoint // (c): IBM chiplet comparison
	LargeSweep []scalesim.Point        // (d): 1k–100k qubits

	// SavingsUSD100k is the coax saving at 100k qubits.
	SavingsUSD100k float64

	// CacheHits and CacheMisses count the artifact-store traffic of the
	// three calibration builds: a warm cache (repeated Fig17Cached calls
	// with unchanged options) recalls every stage and reports zero
	// misses.
	CacheHits   int
	CacheMisses int
}

// Fig17 reproduces Figure 17. The Z-line fan-outs are calibrated by
// running the full YOUTIAO pipeline on a 10×10 square chip and a
// heavy-hexagon chip, then extrapolated analytically.
func Fig17(opts Options) (*Fig17Result, error) {
	return Fig17Cached(opts, NewDesignCache())
}

// Fig17Cached is Fig17 building its three calibration pipelines through
// a shared artifact cache, so a sweep of Fig17 variants (or a Fig17 run
// after other experiments on the same chips) re-fits nothing whose
// keyed inputs are unchanged.
func Fig17Cached(opts Options, cache *DesignCache) (*Fig17Result, error) {
	opts = opts.normalized()
	res := &Fig17Result{}
	before := cache.Report()

	// The three calibration pipelines (square fan-out, heavy-hex
	// fan-out, and the 150-qubit system) are independent designs, so
	// they fan out over the worker pool; each one is deterministic in
	// (chip, seed) alone.
	calibrations := []struct {
		name     string
		chip     *chip.Chip
		pipeline *Pipeline
	}{
		{name: "square calibration", chip: chip.Square(10, 10)},
		{name: "heavy-hex calibration", chip: chip.HeavyHexagon(5, 5)},
		{name: "150q pipeline", chip: chip.Square(15, 10)},
	}
	err := parallel.ForEachErr(opts.Workers, len(calibrations), func(i int) error {
		cal := &calibrations[i]
		p, err := cache.Designer(cal.chip).Redesign(opts)
		if err != nil {
			return fmt.Errorf("experiments: fig17 %s: %w", cal.name, err)
		}
		cal.pipeline = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	delta := cache.Report().Sub(before)
	res.CacheHits, res.CacheMisses = delta.Hits, delta.Misses
	res.ZFanoutSquare = zFanout(calibrations[0].pipeline)
	res.ZFanoutHeavyHex = zFanout(calibrations[1].pipeline)
	p150 := calibrations[2].pipeline

	res.SmallSweep = scalesim.SweepWorkers([]int{10, 25, 50, 100, 150, 300, 500, 1000}, res.ZFanoutSquare, opts.Workers)
	res.LargeSweep = scalesim.SweepWorkers([]int{1000, 5000, 10000, 50000, 100000}, res.ZFanoutSquare, opts.Workers)

	res.Chiplets, err = scalesim.IBMChipletSweep(25, res.ZFanoutHeavyHex)
	if err != nil {
		return nil, err
	}
	gPlan := wiring.Google(p150.Chip)
	yPlan, err := wiring.Youtiao(p150.Chip, p150.FDM, p150.TDM)
	if err != nil {
		return nil, err
	}
	all := firstN(p150.Chip.NumQubits())
	res.System150 = Fig17System150{
		GoogleCoax:  gPlan.CoaxLines(),
		YoutiaoCoax: yPlan.CoaxLines(),
		XYFidelity:  planLayerFidelity(p150.Device, p150.FreqPlan.Freq, all, 1),
	}

	last := res.LargeSweep[len(res.LargeSweep)-1]
	res.SavingsUSD100k = scalesim.Savings(last, cost.DefaultModel())
	return res, nil
}

// zFanout returns devices-per-Z-line of a designed pipeline.
func zFanout(p *Pipeline) float64 {
	return scalesim.Fanout(tdm.NewDevices(p.Chip).Count(), p.TDM.NumZLines())
}
