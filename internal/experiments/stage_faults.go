package experiments

import (
	"context"
	"fmt"

	"repro/internal/chip"
	"repro/internal/faults"
	"repro/internal/parallel"
	"repro/internal/stage"
)

// faultsStageKey keys the fault-plan draw: the chip lineage, every rate
// of the spec and the design seed that feeds the plan's RNG stream.
func faultsStageKey(base stage.Key, spec faults.Spec, designSeed int64) stage.Key {
	return stage.NewKey(StageFaults).Key(base).Int64(designSeed).
		Float64(spec.DeadQubitRate).Float64(spec.BrokenCouplerRate).
		Float64(spec.StuckLossyRate).Float64(spec.DropoutRate).
		Float64(spec.OutlierRate).Float64(spec.OutlierScale).
		Done()
}

// runFaultsStage draws (or recalls) the fault plan. A disabled spec
// yields a nil plan — the perfect-device path, bit-identical to the
// historical fault-free pipeline. A plan that kills every qubit is an
// error (and, like all stage errors, is never cached).
func runFaultsStage(ctx context.Context, store *stage.Store, key stage.Key, c *chip.Chip, opts Options, designSeed int64) (*faults.Plan, error) {
	plan, _, err := stage.Do(ctx, store, StageFaults, key, 1, func(context.Context) (*faults.Plan, error) {
		if !opts.Faults.Enabled() {
			return (*faults.Plan)(nil), nil
		}
		plan, err := faults.New(c, opts.Faults, parallel.TaskSeed(designSeed, streamFaults))
		if err != nil {
			return nil, err
		}
		if len(plan.AliveQubits(c.NumQubits())) == 0 {
			return nil, fmt.Errorf("fault plan killed all %d qubits (defect rate %.3f too high for this chip)",
				c.NumQubits(), opts.Faults.DeadQubitRate)
		}
		return plan, nil
	})
	return plan, err
}
