package experiments

import (
	"fmt"

	"repro/internal/chip"
	"repro/internal/cost"
	"repro/internal/geom"
	"repro/internal/route"
	"repro/internal/tdm"
	"repro/internal/wiring"
)

// Table2Row is one (topology, architecture) column of Table 2.
type Table2Row struct {
	Topology     string
	Architecture string
	NumQubits    int

	// Cryostat level.
	XYLines       int
	ZLines        int
	DemuxControl  int
	DACs          int
	WiringCostUSD float64

	// Chip level.
	Interfaces     int
	RoutingAreaMM2 float64
	RouteCrossings int
	// DRCViolations is the post-routing spacing-check count (0 for a
	// clean, manufacturable layout; crossovers are airbridges and not
	// counted).
	DRCViolations int
}

// Table2 reproduces Table 2: cryostat-level and chip-level wiring for
// the five evaluation topologies under Google's architecture and
// YOUTIAO.
func Table2(opts Options) ([]Table2Row, error) {
	return Table2Cached(opts, NewDesignCache())
}

// Table2Cached is Table2 with its per-topology pipelines built through
// a shared artifact cache.
func Table2Cached(opts Options, cache *DesignCache) ([]Table2Row, error) {
	model := cost.DefaultModel()
	var rows []Table2Row
	for _, c := range chip.Table2Chips() {
		p, err := cache.Designer(c).Redesign(opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: table2 %s: %w", c.Topology, err)
		}

		gPlan := wiring.Google(c)
		gRoute, err := routeGoogle(c)
		if err != nil {
			return nil, fmt.Errorf("experiments: table2 %s google routing: %w", c.Topology, err)
		}
		rows = append(rows, Table2Row{
			Topology:       c.Topology,
			Architecture:   "google",
			NumQubits:      c.NumQubits(),
			XYLines:        gPlan.XYLines,
			ZLines:         gPlan.ZLines,
			DACs:           gPlan.DACs,
			WiringCostUSD:  model.WiringCost(gPlan),
			Interfaces:     gPlan.Interfaces,
			RoutingAreaMM2: gRoute.Area,
			RouteCrossings: gRoute.Crossings,
			DRCViolations:  route.CheckDRC(gRoute).SpacingViolations,
		})

		yPlan, err := wiring.Youtiao(p.Chip, p.FDM, p.TDM)
		if err != nil {
			return nil, err
		}
		yRoute, err := routeYoutiao(p)
		if err != nil {
			return nil, fmt.Errorf("experiments: table2 %s youtiao routing: %w", c.Topology, err)
		}
		rows = append(rows, Table2Row{
			Topology:       c.Topology,
			Architecture:   "youtiao",
			NumQubits:      c.NumQubits(),
			XYLines:        yPlan.XYLines,
			ZLines:         yPlan.ZLines,
			DemuxControl:   yPlan.ControlLines,
			DACs:           yPlan.DACs,
			WiringCostUSD:  model.WiringCost(yPlan),
			Interfaces:     yPlan.Interfaces,
			RoutingAreaMM2: yRoute.Area,
			RouteCrossings: yRoute.Crossings,
			DRCViolations:  route.CheckDRC(yRoute).SpacingViolations,
		})
	}
	return rows, nil
}

// Port offsets: each control family attaches to its own pad on the
// qubit footprint (XY drive on the west side, Z flux on the east,
// readout on the north), so distinct nets never share an endpoint.
const portOffset = 0.08 // mm

func xyPort(p geom.Point) geom.Point      { return p.Add(geom.Pt(-portOffset, 0)) }
func zPort(p geom.Point) geom.Point       { return p.Add(geom.Pt(portOffset, 0)) }
func readoutPort(p geom.Point) geom.Point { return p.Add(geom.Pt(0, portOffset)) }

// routeGoogle routes the baseline architecture on-chip: one XY net per
// qubit, one Z net per qubit and per coupler, and readout chains of up
// to GoogleReadoutCapacity qubits in id order.
func routeGoogle(c *chip.Chip) (*route.Result, error) {
	var nets []route.Net
	for _, q := range c.Qubits {
		nets = append(nets,
			route.Net{Kind: route.NetXY, Label: fmt.Sprintf("xy-q%d", q.ID), Targets: []geom.Point{xyPort(q.Pos)}},
			route.Net{Kind: route.NetZ, Label: fmt.Sprintf("z-q%d", q.ID), Targets: []geom.Point{zPort(q.Pos)}},
		)
	}
	for _, cp := range c.Couplers {
		nets = append(nets, route.Net{Kind: route.NetZ, Label: fmt.Sprintf("z-c%d", cp.ID), Targets: []geom.Point{cp.Pos}})
	}
	nets = append(nets, readoutNets(c, wiring.GoogleReadoutCapacity)...)
	return route.NewRouter(c).RouteAll(nets)
}

// routeYoutiao routes the hybrid architecture: FDM XY chains, TDM Z
// stars through DEMUX hubs, twisted-pair control nets to the hubs, and
// readout chains of up to YoutiaoReadoutCapacity qubits.
func routeYoutiao(p *Pipeline) (*route.Result, error) {
	c := p.Chip
	var nets []route.Net
	for li, group := range p.FDM.Groups {
		targets := make([]geom.Point, len(group))
		for i, q := range group {
			targets[i] = xyPort(c.Qubits[q].Pos)
		}
		nets = append(nets, route.Net{Kind: route.NetXY, Label: fmt.Sprintf("fdm-xy-%d", li), Targets: targets})
	}
	dev := tdm.NewDevices(c)
	for gi, group := range p.TDM.Groups {
		pts := make([]geom.Point, 0, len(group.Devices))
		for _, d := range group.Devices {
			pos := devicePos(c, dev, d)
			if !dev.IsCoupler(d) {
				pos = zPort(pos)
			}
			pts = append(pts, pos)
		}
		// The cryo-DEMUX sits at the first device of the group; the Z
		// line chains through the members in greedy nearest-neighbour
		// order, which beats a hub-and-spoke star on wire length.
		chain := nearestNeighbourChain(pts)
		nets = append(nets, route.Net{Kind: route.NetZ, Label: fmt.Sprintf("tdm-z-%d", gi), Targets: chain})
		for b := 0; b < group.Level.ControlBits(); b++ {
			nets = append(nets, route.Net{
				Kind:    route.NetControl,
				Label:   fmt.Sprintf("ctl-%d-%d", gi, b),
				Targets: []geom.Point{chain[0]},
			})
		}
	}
	nets = append(nets, readoutNets(c, wiring.YoutiaoReadoutCapacity)...)
	return route.NewRouter(c).RouteAll(nets)
}

// nearestNeighbourChain reorders the points into a greedy short chain
// starting from the first point.
func nearestNeighbourChain(pts []geom.Point) []geom.Point {
	if len(pts) <= 2 {
		return pts
	}
	chain := []geom.Point{pts[0]}
	remaining := append([]geom.Point(nil), pts[1:]...)
	for len(remaining) > 0 {
		last := chain[len(chain)-1]
		best, bestD := 0, last.Dist(remaining[0])
		for i := 1; i < len(remaining); i++ {
			if d := last.Dist(remaining[i]); d < bestD {
				best, bestD = i, d
			}
		}
		chain = append(chain, remaining[best])
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return chain
}

func devicePos(c *chip.Chip, dev tdm.Devices, d int) geom.Point {
	if dev.IsCoupler(d) {
		return c.Couplers[dev.CouplerID(d)].Pos
	}
	return c.Qubits[d].Pos
}

// readoutNets chains qubits in id order onto shared feedlines.
func readoutNets(c *chip.Chip, capacity int) []route.Net {
	var nets []route.Net
	for start := 0; start < c.NumQubits(); start += capacity {
		end := start + capacity
		if end > c.NumQubits() {
			end = c.NumQubits()
		}
		targets := make([]geom.Point, 0, end-start)
		for q := start; q < end; q++ {
			targets = append(targets, readoutPort(c.Qubits[q].Pos))
		}
		nets = append(nets, route.Net{
			Kind:    route.NetReadout,
			Label:   fmt.Sprintf("ro-%d", start/capacity),
			Targets: targets,
		})
	}
	return nets
}
