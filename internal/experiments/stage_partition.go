package experiments

import (
	"context"
	"math/rand"

	"repro/internal/chip"
	"repro/internal/faults"
	"repro/internal/partition"
	"repro/internal/stage"
)

// partitionKey keys the generative partition: fault and XY-model
// lineage (the partition walks the equivalent-distance metric of the
// fitted XY model), the region target and the partition seed stream.
func partitionKey(faultsK, xyK stage.Key, targetSize int, partSeed int64) stage.Key {
	return stage.NewKey(StagePartition).
		Key(faultsK).Key(xyK).
		Int(targetSize).Int64(partSeed).
		Done()
}

// runPartitionStage generates (or recalls) the chip partition. Chips at
// or below one region yield a nil partition — the whole-chip design
// path.
func runPartitionStage(ctx context.Context, store *stage.Store, key stage.Key, c *chip.Chip, plan *faults.Plan, dist func(i, j int) float64, targetSize int, partSeed int64, workers int) (*partition.Partition, error) {
	part, _, err := stage.Do(ctx, store, StagePartition, key, workers, func(context.Context) (*partition.Partition, error) {
		alive := plan.AliveQubits(c.NumQubits())
		if len(alive) <= targetSize {
			return (*partition.Partition)(nil), nil
		}
		rng := rand.New(rand.NewSource(partSeed))
		cfg := partition.Config{TargetSize: targetSize}
		if plan != nil {
			cfg.Exclude = plan.QubitDead
		}
		return partition.Generate(c, dist, cfg, rng)
	})
	return part, err
}

// regionsOf returns the partition's regions, or one whole-(alive-)chip
// region for a nil partition.
func regionsOf(part *partition.Partition, alive []int) [][]int {
	if part != nil {
		return part.Regions
	}
	return [][]int{alive}
}

// couplerRegionsOf returns the region index per coupler (all zero for a
// nil partition).
func couplerRegionsOf(part *partition.Partition, c *chip.Chip) []int {
	if part != nil {
		return part.CouplerRegion(c)
	}
	return make([]int, c.NumCouplers())
}
