package experiments

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/chip"
	"repro/internal/xmon"
)

// TestRedesignColdWarmBitIdentity is the incremental-redesign contract:
// a warm Designer.Redesign at new options must be bit-identical to a
// cold BuildPipeline at those options, across seeds and worker counts.
// The 6×6 chip with a small partition target exercises the partitioned
// path; the Theta change makes the warm build mix cached artifacts
// (models, partition, frequency plan) with a fresh TDM grouping.
func TestRedesignColdWarmBitIdentity(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, workers := range []int{1, 4} {
			opts := Options{
				Seed:                seed,
				Workers:             workers,
				PartitionTargetSize: 16,
				Theta:               4,
				HasTheta:            true,
			}
			d := NewDesigner(chip.Square(6, 6))
			if _, err := d.Redesign(opts); err != nil {
				t.Fatalf("seed %d workers %d: cold designer build: %v", seed, workers, err)
			}
			opts.Theta = 6
			warm, err := d.Redesign(opts)
			if err != nil {
				t.Fatalf("seed %d workers %d: warm redesign: %v", seed, workers, err)
			}
			cold, err := BuildPipeline(chip.Square(6, 6), opts)
			if err != nil {
				t.Fatalf("seed %d workers %d: cold build: %v", seed, workers, err)
			}
			if got, want := designFingerprint(warm), designFingerprint(cold); got != want {
				t.Errorf("seed %d workers %d: warm redesign differs from cold build:\n--- warm ---\n%s--- cold ---\n%s",
					seed, workers, got, want)
			}
		}
	}
}

// TestRedesignThetaInvalidatesOnlyTDM asserts the invalidation scope of
// a Theta change: only the tdm stage re-executes (Theta appears in no
// other stage's key), every upstream artifact is recalled, and in
// particular zero crosstalk measurements or fits happen — the
// acceptance criterion of the incremental engine.
func TestRedesignThetaInvalidatesOnlyTDM(t *testing.T) {
	opts := Options{Seed: 1, PartitionTargetSize: 16, Theta: 4, HasTheta: true}
	d := NewDesigner(chip.Square(6, 6))
	if _, err := d.Redesign(opts); err != nil {
		t.Fatal(err)
	}
	before := d.Report()
	opts.Theta = 6
	if _, err := d.Redesign(opts); err != nil {
		t.Fatal(err)
	}
	delta := d.Report().Sub(before)
	for _, st := range delta.Stages {
		switch st.Name {
		case StageTDM:
			if st.Misses != 1 {
				t.Errorf("tdm stage executed %d times on the warm redesign, want 1", st.Misses)
			}
		default:
			if st.Misses != 0 {
				t.Errorf("stage %s re-executed on a Theta-only change (%d misses)", st.Name, st.Misses)
			}
			if st.Runs > 0 && st.Hits != st.Runs {
				t.Errorf("stage %s: %d of %d runs missed the cache", st.Name, st.Runs-st.Hits, st.Runs)
			}
		}
	}

	// The declared stage graph agrees: tdm consumes the ZZ model, and
	// nothing downstream of tdm exists to invalidate.
	if ds := PipelineStageGraph.Downstream(StageCharacterizeZZ); len(ds) == 0 || ds[len(ds)-1] != StageTDM {
		t.Errorf("graph: Downstream(characterize-zz) = %v, want it to end at tdm", ds)
	}
	if ds := PipelineStageGraph.Downstream(StageTDM); len(ds) != 0 {
		t.Errorf("graph: tdm has downstream stages %v; a Theta change must invalidate them too", ds)
	}
}

// TestRedesignSameOptionsFullyCached: repeating identical options
// recalls every stage.
func TestRedesignSameOptionsFullyCached(t *testing.T) {
	opts := Options{Seed: 2}
	d := NewDesigner(chip.Square(4, 4))
	p1, err := d.Redesign(opts)
	if err != nil {
		t.Fatal(err)
	}
	before := d.Report()
	p2, err := d.Redesign(opts)
	if err != nil {
		t.Fatal(err)
	}
	delta := d.Report().Sub(before)
	if delta.Misses != 0 {
		t.Errorf("identical redesign executed %d stages, want 0", delta.Misses)
	}
	if designFingerprint(p1) != designFingerprint(p2) {
		t.Error("identical redesigns differ")
	}
}

// TestDesignerDoesNotMutateChip: the prototype handed to NewDesigner
// keeps zero base frequencies; fabrication happens on a clone.
func TestDesignerDoesNotMutateChip(t *testing.T) {
	c := chip.Square(4, 4)
	d := NewDesigner(c)
	p, err := d.Redesign(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range c.Qubits {
		if q.BaseFreq != 0 {
			t.Fatalf("designer mutated the prototype chip (q%d BaseFreq=%v)", q.ID, q.BaseFreq)
		}
	}
	if p.Chip == c {
		t.Fatal("pipeline chip is the prototype, want a fabricated clone")
	}
	if p.Chip.Qubits[0].BaseFreq == 0 {
		t.Fatal("fabricated clone has no base frequencies")
	}
}

// TestDesignCacheSharesIdenticalChips: two distinct chip values with
// equal fingerprints share every artifact through one DesignCache.
func TestDesignCacheSharesIdenticalChips(t *testing.T) {
	cache := NewDesignCache()
	opts := Options{Seed: 3}
	p1, err := cache.Designer(chip.Square(4, 4)).Redesign(opts)
	if err != nil {
		t.Fatal(err)
	}
	before := cache.Report()
	p2, err := cache.Designer(chip.Square(4, 4)).Redesign(opts)
	if err != nil {
		t.Fatal(err)
	}
	delta := cache.Report().Sub(before)
	if delta.Misses != 0 {
		t.Errorf("second identical chip executed %d stages, want 0", delta.Misses)
	}
	if designFingerprint(p1) != designFingerprint(p2) {
		t.Error("designs differ across identical chips")
	}
}

// TestDesignerOnDeviceBitIdentity: the device-mode Designer reproduces
// BuildPipelineOnDevice bit for bit and caches across redesigns.
func TestDesignerOnDeviceBitIdentity(t *testing.T) {
	c := chip.Square(4, 4)
	dev := xmon.NewDevice(c, xmon.DefaultParams(), rand.New(rand.NewSource(9)))
	opts := Options{Seed: 5}
	cold, err := BuildPipelineOnDevice(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDesignerOnDevice(dev)
	warm, err := d.Redesign(opts)
	if err != nil {
		t.Fatal(err)
	}
	if designFingerprint(cold) != designFingerprint(warm) {
		t.Error("device designer differs from BuildPipelineOnDevice")
	}
	before := d.Report()
	if _, err := d.Redesign(opts); err != nil {
		t.Fatal(err)
	}
	if delta := d.Report().Sub(before); delta.Misses != 0 {
		t.Errorf("repeated device redesign executed %d stages", delta.Misses)
	}
}

// TestBuildPipelineOnDeviceCtxCancel: device builds honor their context
// (the satellite fix — they used to hardwire context.Background()).
func TestBuildPipelineOnDeviceCtxCancel(t *testing.T) {
	c := chip.Square(4, 4)
	dev := xmon.NewDevice(c, xmon.DefaultParams(), rand.New(rand.NewSource(1)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildPipelineOnDeviceCtx(ctx, dev, Options{Seed: 1}); err == nil {
		t.Fatal("canceled context did not abort the device build")
	}
}

// TestDefectSweepCacheCounts: a repeated rate is served entirely from
// the artifact store, and the point logs it.
func TestDefectSweepCacheCounts(t *testing.T) {
	points, err := DefectSweep(context.Background(), chip.Square(4, 4), []float64{0.02, 0.02}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].CacheMisses == 0 {
		t.Error("first point reports zero executed stages")
	}
	if points[1].CacheMisses != 0 {
		t.Errorf("repeated rate executed %d stages, want 0", points[1].CacheMisses)
	}
	if points[1].CacheHits == 0 {
		t.Error("repeated rate reports zero cache hits")
	}
	if points[0].XYLines != points[1].XYLines || points[0].GateFidelity != points[1].GateFidelity {
		t.Error("repeated rate produced a different design")
	}
}
