package experiments

import (
	"context"

	"repro/internal/chip"
	"repro/internal/crosstalk"
	"repro/internal/faults"
	"repro/internal/parallel"
	"repro/internal/stage"
	"repro/internal/xmon"
)

// characterization is the artifact of one characterize stage: a fitted
// crosstalk model, its predictor bound to the measured device's chip
// and the campaign's fault accounting. The predictor is cached with the
// model because its lazy prediction memo (crosstalk.Model.predCache)
// makes warm redesigns cheaper the more it is shared.
type characterization struct {
	Model *crosstalk.Model
	Pred  *crosstalk.Predictor
	Stats faults.CampaignStats
}

// characterizeKey keys one channel's measure-and-fit: device and fault
// lineage, the seed streams, and exactly the normalized-options subset
// the stage reads (sample cap, retry budget and the full fit search
// space). Workers is deliberately absent — results are bit-identical
// for every worker count, so a cached fit is valid at any parallelism.
func characterizeKey(name string, devKey, faultsKey stage.Key, opts Options, designSeed int64, measureStream, subStream uint64) stage.Key {
	return stage.NewKey(name).
		Key(devKey).Key(faultsKey).
		Int64(designSeed).Uint64(measureStream).Uint64(subStream).
		Int(opts.MaxFitSamples).Int(opts.RetryBudget).
		Floats(opts.Fit.WeightGrid).Int(opts.Fit.Folds).
		Int(opts.Fit.Forest.NumTrees).Int64(opts.Fit.Forest.Seed).
		Int(opts.Fit.Forest.Tree.MaxDepth).
		Int(opts.Fit.Forest.Tree.MinLeafSize).
		Int(opts.Fit.Forest.Tree.MaxFeatures).
		Float64(opts.Fit.TrimOutlierFraction).
		Done()
}

// runCharacterize measures one crosstalk channel and fits its model, or
// recalls the artifact when the key is cached.
func runCharacterize(ctx context.Context, store *stage.Store, name string, key stage.Key, dev *xmon.Device, kind xmon.CrosstalkKind, opts Options, designSeed int64, measureStream, subStream uint64, plan *faults.Plan) (*characterization, error) {
	ch, _, err := stage.Do(ctx, store, name, key, parallel.Workers(opts.Workers), func(ctx context.Context) (*characterization, error) {
		m, stats, err := fitModel(ctx, dev.Chip, dev, kind, opts, designSeed, measureStream, subStream, plan)
		if err != nil {
			return nil, err
		}
		return &characterization{Model: m, Pred: m.On(dev.Chip), Stats: stats}, nil
	})
	return ch, err
}

// fitModel measures one crosstalk channel and fits the characterization
// model, subsampling large campaigns. The measurement campaign and the
// subsample draw run on their own streams of the design seed. With a
// nil (or disabled) fault plan the campaign is the historical
// MeasureSeeded path, bit for bit; otherwise dropouts are retried
// within opts.RetryBudget and surviving samples may carry injected
// outliers (trimmed by the fit when configured).
func fitModel(ctx context.Context, c *chip.Chip, dev *xmon.Device, kind xmon.CrosstalkKind, opts Options, designSeed int64, measureStream, subStream uint64, plan *faults.Plan) (*crosstalk.Model, faults.CampaignStats, error) {
	samples, stats, err := faults.Measure(ctx, dev, kind, 0.05, parallel.TaskSeed(designSeed, measureStream), opts.Workers, opts.RetryBudget, plan)
	if err != nil {
		return nil, stats, err
	}
	if opts.MaxFitSamples > 0 && len(samples) > opts.MaxFitSamples {
		rng := parallel.TaskRand(designSeed, subStream)
		perm := rng.Perm(len(samples))[:opts.MaxFitSamples]
		sub := make([]xmon.Sample, len(perm))
		for i, pi := range perm {
			sub[i] = samples[pi]
		}
		samples = sub
	}
	m, err := crosstalk.FitCtx(ctx, c, samples, opts.Fit)
	return m, stats, err
}
