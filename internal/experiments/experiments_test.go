package experiments

import (
	"testing"

	"repro/internal/chip"
)

// The experiment regressions assert the *shape* of the paper's results:
// who wins, by roughly what factor, and where the crossovers fall.

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(rows))
	}
	byArch := map[string]map[int]Table1Row{"google": {}, "youtiao": {}}
	for _, r := range rows {
		byArch[r.Architecture][r.Distance] = r
	}
	for _, d := range Table1Distances {
		g, y := byArch["google"][d], byArch["youtiao"][d]
		// Wiring anchors: XY = 2d²-1 for Google; Z = qubits+couplers.
		if g.XYLines != 2*d*d-1 {
			t.Errorf("d=%d: Google XY %d, want %d", d, g.XYLines, 2*d*d-1)
		}
		if g.ZLines != (2*d*d-1)+4*d*(d-1) {
			t.Errorf("d=%d: Google Z %d", d, g.ZLines)
		}
		// YOUTIAO reduces both line families substantially.
		if float64(g.XYLines)/float64(y.XYLines) < 3.5 {
			t.Errorf("d=%d: XY reduction only %.1fx", d, float64(g.XYLines)/float64(y.XYLines))
		}
		if float64(g.ZLines)/float64(y.ZLines) < 1.8 {
			t.Errorf("d=%d: Z reduction only %.1fx", d, float64(g.ZLines)/float64(y.ZLines))
		}
		// Cost reduction approaching the paper's 2.35x at d=11.
		if ratio := g.WiringCostUSD / y.WiringCostUSD; ratio < 1.8 {
			t.Errorf("d=%d: cost reduction %.2fx", d, ratio)
		}
		// Google runs 4 CZ layers per cycle.
		if g.TwoQGateDepth != 4*Table1Cycles {
			t.Errorf("d=%d: Google depth %d, want %d", d, g.TwoQGateDepth, 4*Table1Cycles)
		}
		// YOUTIAO pays a bounded depth overhead.
		if y.TwoQGateDepth < g.TwoQGateDepth {
			t.Errorf("d=%d: YOUTIAO depth below Google", d)
		}
		if y.TwoQGateDepth > 2*g.TwoQGateDepth {
			t.Errorf("d=%d: YOUTIAO depth %d more than doubles Google's %d",
				d, y.TwoQGateDepth, g.TwoQGateDepth)
		}
	}
	// Paper anchor: d=3 lands at ~16 Z lines for YOUTIAO.
	if z := byArch["youtiao"][3].ZLines; z < 12 || z > 22 {
		t.Errorf("d=3 YOUTIAO Z lines %d, paper reports 16", z)
	}
}

func TestTable2CryostatShape(t *testing.T) {
	if testing.Short() {
		t.Skip("chip-level routing is slow")
	}
	rows, err := Table2(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		g, y := rows[i], rows[i+1]
		if g.Topology != y.Topology {
			t.Fatalf("row pairing broken at %d", i)
		}
		// XY reduction ~4.2x, Z ~3.7x, cost ~3.2x, interfaces ~1.6x,
		// area ~1.3x on average; assert generous per-topology bands.
		if r := float64(g.XYLines) / float64(y.XYLines); r < 3.5 || r > 5.0 {
			t.Errorf("%s: XY reduction %.2fx outside [3.5,5]", g.Topology, r)
		}
		if r := float64(g.ZLines) / float64(y.ZLines); r < 2.5 || r > 4.5 {
			t.Errorf("%s: Z reduction %.2fx outside [2.5,4.5]", g.Topology, r)
		}
		if r := g.WiringCostUSD / y.WiringCostUSD; r < 2.3 || r > 3.8 {
			t.Errorf("%s: cost reduction %.2fx outside [2.3,3.8]", g.Topology, r)
		}
		if r := float64(g.Interfaces) / float64(y.Interfaces); r < 1.3 || r > 2.0 {
			t.Errorf("%s: interface reduction %.2fx outside [1.3,2]", g.Topology, r)
		}
		if y.RoutingAreaMM2 >= g.RoutingAreaMM2*1.05 {
			t.Errorf("%s: YOUTIAO routing area %.2f not below Google %.2f",
				g.Topology, y.RoutingAreaMM2, g.RoutingAreaMM2)
		}
	}
}

func TestRoutingAreaDirectSquare(t *testing.T) {
	// A fast single-topology routing check that runs even in -short
	// mode.
	c := chip.Square(3, 3)
	p, err := BuildPipeline(c, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := routeGoogle(c)
	if err != nil {
		t.Fatal(err)
	}
	yr, err := routeYoutiao(p)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Area <= 0 || yr.Area <= 0 {
		t.Fatal("zero routing area")
	}
	if yr.Area > gr.Area*1.1 {
		t.Errorf("YOUTIAO area %.2f well above Google %.2f", yr.Area, gr.Area)
	}
	if len(gr.Nets) <= len(yr.Nets) {
		t.Errorf("YOUTIAO should route fewer nets: %d vs %d", len(yr.Nets), len(gr.Nets))
	}
}

func TestFig12Shape(t *testing.T) {
	res, err := Fig12(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.JSDivergence < 0 || res.JSDivergence > 0.5 {
		t.Errorf("JS divergence %.3f outside the similarity band (paper: 0.06)", res.JSDivergence)
	}
	if len(res.Scales) == 0 {
		t.Fatal("no scale points")
	}
	for _, s := range res.Scales {
		if s.TransferredFidelity < 0.995 || s.TransferredFidelity > 1 {
			t.Errorf("scale %d: transferred per-gate fidelity %.5f implausible", s.Qubits, s.TransferredFidelity)
		}
		if s.NativeFidelity < s.TransferredFidelity-0.002 {
			t.Errorf("scale %d: native fidelity %.5f far below transferred %.5f",
				s.Qubits, s.NativeFidelity, s.TransferredFidelity)
		}
	}
	// Fidelity degrades (weakly) with scale for the transferred model.
	first, last := res.Scales[0], res.Scales[len(res.Scales)-1]
	if last.TransferredFidelity > first.TransferredFidelity+1e-4 {
		t.Errorf("transferred fidelity should not improve with scale: %.5f -> %.5f",
			first.TransferredFidelity, last.TransferredFidelity)
	}
}

func TestFig13Shape(t *testing.T) {
	res, err := Fig13(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.A) != 3 {
		t.Fatalf("panel (a): %d rows", len(res.A))
	}
	fid := map[string]float64{}
	for _, r := range res.A {
		fid[r.Strategy] = r.PerGateFidelity
	}
	// Headline: YOUTIAO reaches ~99.98% and beats both baselines.
	if fid[StrategyYoutiao] < 0.9995 {
		t.Errorf("YOUTIAO per-gate fidelity %.5f below 99.95%%", fid[StrategyYoutiao])
	}
	if fid[StrategyYoutiao] <= fid[StrategyGeorge] {
		t.Errorf("YOUTIAO (%.5f) should beat George (%.5f)", fid[StrategyYoutiao], fid[StrategyGeorge])
	}
	if fid[StrategyGeorge] <= fid[StrategyBaseline] {
		t.Errorf("George (%.5f) should beat the unoptimized baseline (%.5f)",
			fid[StrategyGeorge], fid[StrategyBaseline])
	}
	// Panel (b): monotone decay, YOUTIAO most robust at depth 100.
	if len(res.B) != 10 {
		t.Fatalf("panel (b): %d points", len(res.B))
	}
	for i := 1; i < len(res.B); i++ {
		if res.B[i].Youtiao > res.B[i-1].Youtiao+1e-9 {
			t.Error("YOUTIAO curve not monotone")
		}
	}
	last := res.B[len(res.B)-1]
	if last.Youtiao <= last.Baseline {
		t.Error("YOUTIAO should outlast the baseline at 100 layers")
	}
	if last.Youtiao < 0.2 {
		t.Errorf("YOUTIAO at 100 layers %.3f; paper reports 55%%", last.Youtiao)
	}
	if last.Baseline > 0.3 {
		t.Errorf("baseline at 100 layers %.3f; paper reports 23%% (collapse)", last.Baseline)
	}
}

func TestFigs14And15Shape(t *testing.T) {
	rows, err := Figs14And15(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d benchmarks", len(rows))
	}
	for _, r := range rows {
		// Depth ordering: Google <= YOUTIAO <= Acharya (paper: 1.05x
		// and 1.23x factors).
		if r.YoutiaoDepth < r.GoogleDepth {
			t.Errorf("%s: YOUTIAO depth %d below Google %d", r.Benchmark, r.YoutiaoDepth, r.GoogleDepth)
		}
		if r.AcharyaDepth < r.YoutiaoDepth {
			t.Errorf("%s: Acharya depth %d below YOUTIAO %d", r.Benchmark, r.AcharyaDepth, r.YoutiaoDepth)
		}
		if ratio := float64(r.YoutiaoDepth) / float64(r.GoogleDepth); ratio > 1.6 {
			t.Errorf("%s: YOUTIAO depth overhead %.2fx too high", r.Benchmark, ratio)
		}
		// Fidelity ordering mirrors depth (Figure 15). A small positive
		// margin is allowed: at equal depth YOUTIAO's allocated
		// frequencies can beat Google's fabrication frequencies on
		// crosstalk.
		if r.YoutiaoFidelity > r.GoogleFidelity+0.01 {
			t.Errorf("%s: YOUTIAO fidelity well above Google", r.Benchmark)
		}
		if r.AcharyaFidelity > r.YoutiaoFidelity+1e-9 {
			t.Errorf("%s: Acharya fidelity above YOUTIAO", r.Benchmark)
		}
		if r.GoogleFidelity <= 0 || r.GoogleFidelity > 1 {
			t.Errorf("%s: Google fidelity %v out of range", r.Benchmark, r.GoogleFidelity)
		}
		// Latency ordering.
		if r.YoutiaoLatencyNs < r.GoogleLatencyNs {
			t.Errorf("%s: YOUTIAO latency below Google", r.Benchmark)
		}
	}
}

func TestFig16Shape(t *testing.T) {
	rows, err := Fig16(Options{Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5*len(DefaultThetas) {
		t.Fatalf("got %d rows", len(rows))
	}
	frac14 := map[string]map[float64]float64{}
	for _, r := range rows {
		if r.Frac12 < 0 || r.Frac12 > 1 || r.Frac14 < 0 || r.Frac14 > 1 {
			t.Errorf("%s θ=%g: fractions out of range", r.Topology, r.Theta)
		}
		if r.OneToTwo+r.OneToFour > 0 && absf(r.Frac12+r.Frac14-1) > 1e-9 {
			t.Errorf("%s θ=%g: fractions do not sum to 1", r.Topology, r.Theta)
		}
		if frac14[r.Topology] == nil {
			frac14[r.Topology] = map[float64]float64{}
		}
		frac14[r.Topology][r.Theta] = r.Frac14
	}
	// Raising θ shifts the mix toward 1:4 DEMUXes for every topology.
	for topo, f := range frac14 {
		if f[8] < f[1] {
			t.Errorf("%s: 1:4 fraction decreases with θ (%v -> %v)", topo, f[1], f[8])
		}
	}
	// At the paper's θ=4, the square topology (highest parallelism)
	// must use a larger 1:2 share than the low-density topology.
	if frac14["square"][4] > frac14["low-density"][4] {
		t.Errorf("square 1:4 share %.2f exceeds low-density %.2f at θ=4",
			frac14["square"][4], frac14["low-density"][4])
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestFig17Shape(t *testing.T) {
	res, err := Fig17(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.ZFanoutSquare < 1.5 || res.ZFanoutSquare > 4 {
		t.Errorf("square Z fan-out %.2f implausible", res.ZFanoutSquare)
	}
	if res.ZFanoutHeavyHex <= res.ZFanoutSquare {
		t.Errorf("heavy-hex fan-out %.2f should exceed square %.2f (lower parallelism)",
			res.ZFanoutHeavyHex, res.ZFanoutSquare)
	}
	// Panel (a)/(d): reduction over 2.3x at every scale.
	for _, p := range append(res.SmallSweep, res.LargeSweep...) {
		if p.Reduction() < 2.0 {
			t.Errorf("n=%d: reduction %.2fx below 2", p.Qubits, p.Reduction())
		}
	}
	// Panel (b): the paper reports 613 -> 267 cables and 94.3% fidelity.
	if res.System150.GoogleCoax < 550 || res.System150.GoogleCoax > 680 {
		t.Errorf("150q Google coax %d, want ≈613", res.System150.GoogleCoax)
	}
	if res.System150.YoutiaoCoax > 320 {
		t.Errorf("150q YOUTIAO coax %d, want ≈267", res.System150.YoutiaoCoax)
	}
	if res.System150.XYFidelity < 0.90 || res.System150.XYFidelity > 0.995 {
		t.Errorf("150q XY fidelity %.3f, want ≈0.943", res.System150.XYFidelity)
	}
	// Panel (c): ~3.4x cable reduction vs IBM chiplets.
	last := res.Chiplets[len(res.Chiplets)-1]
	if r := last.Reduction(); r < 2.5 || r > 4.2 {
		t.Errorf("chiplet reduction %.2fx, want ≈3.4", r)
	}
	// Savings in the billions at 100k qubits.
	if res.SavingsUSD100k < 1e9 {
		t.Errorf("100k-qubit savings $%.2fB below $1B", res.SavingsUSD100k/1e9)
	}
}
