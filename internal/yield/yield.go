// Package yield estimates design yield under fabrication disorder: the
// probability that a chip coming out of the fab can actually meet the
// wiring design's fidelity target once its qubits are retuned to the
// allocated frequency plan. The paper's two-level allocation assumes
// qubits can be placed in their cells; real devices scatter around
// their fabrication targets and the tunable range is limited (~50 MHz),
// so some dice land in frequency-crowded configurations that no
// allocation can rescue. Yield analysis Monte-Carlos the whole design
// pipeline over fabrication seeds.
package yield

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/chip"
	"repro/internal/faults"
	"repro/internal/fdm"
	"repro/internal/quantum"
	"repro/internal/xmon"
)

// Config controls the yield study.
type Config struct {
	// Dice is the number of fabricated chips to sample.
	Dice int
	// ErrorTarget is the acceptable mean per-gate error under
	// simultaneous operation (e.g. 2e-4 for 99.98%).
	ErrorTarget float64
	// FDMCapacity is the line capacity of the design (paper: 4 or 5).
	FDMCapacity int
	// Params configures the synthetic fab line; zero value uses
	// xmon.DefaultParams.
	Params xmon.Params
	// Seed makes the study deterministic.
	Seed int64
	// Defects injects per-die device defects (see internal/faults):
	// dead qubits are excluded from the die's grouping and scoring, so
	// the study measures the yield of chips that ship with repairable
	// defect maps instead of assuming perfect fabrication. The zero
	// value reproduces the defect-free study bit-for-bit.
	Defects faults.Spec
}

// DefaultConfig matches the evaluation chip's headline target.
func DefaultConfig() Config {
	return Config{
		Dice:        40,
		ErrorTarget: 3e-4,
		FDMCapacity: 4,
		Params:      xmon.DefaultParams(),
		Seed:        1,
	}
}

// Die is the outcome of one fabricated chip.
type Die struct {
	Seed int64
	// DeadQubits is the number of qubits the die's defect plan killed
	// (0 in a defect-free study).
	DeadQubits int
	// MeanGateError is the average per-gate error with every qubit
	// driven simultaneously under the die's own allocation.
	MeanGateError float64
	// WorstGateError is the worst single qubit's error.
	WorstGateError float64
	// Pass reports whether MeanGateError meets the target.
	Pass bool
}

// Result is the aggregate yield study.
type Result struct {
	Dice []Die
	// Yield is the passing fraction.
	Yield float64
	// MedianError is the median of the dice's mean gate errors.
	MedianError float64
}

// Run fabricates cfg.Dice synthetic chips on the given lattice, designs
// each with the FDM grouping + allocation (using the die's own latent
// coupling as the oracle — the best any characterization could do),
// and scores simultaneous-drive errors against the target.
func Run(c *chip.Chip, cfg Config) (*Result, error) {
	if cfg.Dice < 1 {
		return nil, fmt.Errorf("yield: need at least 1 die, got %d", cfg.Dice)
	}
	if cfg.ErrorTarget <= 0 {
		return nil, fmt.Errorf("yield: error target must be positive")
	}
	if cfg.FDMCapacity < 1 {
		return nil, fmt.Errorf("yield: FDM capacity must be >= 1")
	}
	if cfg.Params.AmplitudeXY == 0 {
		cfg.Params = xmon.DefaultParams()
	}

	res := &Result{}
	qubits := make([]int, c.NumQubits())
	for i := range qubits {
		qubits[i] = i
	}

	for d := 0; d < cfg.Dice; d++ {
		seed := cfg.Seed + int64(d)
		rng := rand.New(rand.NewSource(seed))
		// Fabricate a fresh die on a copy of the lattice (the device
		// mutates base frequencies).
		die := xmon.NewDevice(cloneChip(c), cfg.Params, rng)
		coupling := func(i, j int) float64 { return die.Coupling(xmon.XY, i, j) }
		dist := func(i, j int) float64 { return die.Chip.PhysicalDistance(i, j) }

		// Each die draws its own defect map; a fully dead die fails
		// outright instead of erroring the whole study.
		dieQubits := qubits
		var deadCount int
		if cfg.Defects.Enabled() {
			fp, err := faults.New(die.Chip, cfg.Defects, seed)
			if err != nil {
				return nil, fmt.Errorf("yield: die %d defect plan: %w", d, err)
			}
			dieQubits = fp.AliveQubits(die.Chip.NumQubits())
			deadCount = len(fp.DeadQubits())
			if len(dieQubits) == 0 {
				res.Dice = append(res.Dice, Die{Seed: seed, DeadQubits: deadCount, MeanGateError: math.Inf(1), WorstGateError: math.Inf(1)})
				continue
			}
		}

		g, err := fdm.Group(dieQubits, cfg.FDMCapacity, dist)
		if err != nil {
			return nil, fmt.Errorf("yield: die %d grouping: %w", d, err)
		}
		plan, err := fdm.Allocate(g, coupling, fdm.DefaultAllocOptions())
		if err != nil {
			return nil, fmt.Errorf("yield: die %d allocation: %w", d, err)
		}

		nm := quantum.NewNoiseModel(coupling, plan.Freq)
		var sum, worst float64
		for _, q := range dieQubits {
			e := nm.ParallelDriveError(q, dieQubits)
			sum += e
			if e > worst {
				worst = e
			}
		}
		mean := sum / float64(len(dieQubits))
		res.Dice = append(res.Dice, Die{
			Seed:           seed,
			DeadQubits:     deadCount,
			MeanGateError:  mean,
			WorstGateError: worst,
			Pass:           mean <= cfg.ErrorTarget,
		})
	}

	pass := 0
	errs := make([]float64, len(res.Dice))
	for i, d := range res.Dice {
		errs[i] = d.MeanGateError
		if d.Pass {
			pass++
		}
	}
	sort.Float64s(errs)
	res.Yield = float64(pass) / float64(len(res.Dice))
	res.MedianError = errs[len(errs)/2]
	return res, nil
}

// cloneChip deep-copies a chip so per-die frequency assignment does not
// leak between dice.
func cloneChip(c *chip.Chip) *chip.Chip {
	qs := make([]chip.Qubit, len(c.Qubits))
	copy(qs, c.Qubits)
	pairs := make([][2]int, len(c.Couplers))
	for i, cp := range c.Couplers {
		pairs[i] = [2]int{cp.A, cp.B}
	}
	out, err := chip.New(c.Name, c.Topology, qs, pairs)
	if err != nil {
		panic(err) // structural copy of a valid chip cannot fail
	}
	return out
}

// DisorderSweep runs the study across fabrication-scatter levels and
// returns the yield at each, quantifying how much disorder the
// allocation scheme tolerates before crowding kills yield.
func DisorderSweep(c *chip.Chip, cfg Config, disorders []float64) (map[float64]float64, error) {
	out := make(map[float64]float64, len(disorders))
	for _, dis := range disorders {
		if dis < 0 {
			return nil, fmt.Errorf("yield: negative disorder %g", dis)
		}
		cc := cfg
		if cc.Params.AmplitudeXY == 0 {
			cc.Params = xmon.DefaultParams()
		}
		cc.Params.FreqDisorder = dis
		r, err := Run(c, cc)
		if err != nil {
			return nil, err
		}
		out[dis] = r.Yield
	}
	return out, nil
}

// mean is exported for tests via Mean.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 { return mean(xs) }
