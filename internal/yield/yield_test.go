package yield

import (
	"math"
	"testing"

	"repro/internal/chip"
	"repro/internal/faults"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Dice = 10
	return cfg
}

func TestRunValidation(t *testing.T) {
	c := chip.Square(3, 3)
	bad := smallConfig()
	bad.Dice = 0
	if _, err := Run(c, bad); err == nil {
		t.Error("0 dice accepted")
	}
	bad = smallConfig()
	bad.ErrorTarget = 0
	if _, err := Run(c, bad); err == nil {
		t.Error("zero target accepted")
	}
	bad = smallConfig()
	bad.FDMCapacity = 0
	if _, err := Run(c, bad); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestRunBasicProperties(t *testing.T) {
	c := chip.Square(4, 4)
	res, err := Run(c, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dice) != 10 {
		t.Fatalf("got %d dice", len(res.Dice))
	}
	if res.Yield < 0 || res.Yield > 1 {
		t.Errorf("yield %v out of range", res.Yield)
	}
	for i, d := range res.Dice {
		if d.MeanGateError <= 0 || d.MeanGateError > 1 {
			t.Errorf("die %d mean error %v implausible", i, d.MeanGateError)
		}
		if d.WorstGateError < d.MeanGateError {
			t.Errorf("die %d worst error below mean", i)
		}
		if d.Pass != (d.MeanGateError <= smallConfig().ErrorTarget) {
			t.Errorf("die %d pass flag inconsistent", i)
		}
	}
	if res.MedianError <= 0 {
		t.Error("median error missing")
	}
}

func TestRunDeterministic(t *testing.T) {
	c := chip.Square(3, 3)
	a, err := Run(c, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(chip.Square(3, 3), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Yield != b.Yield || a.MedianError != b.MedianError {
		t.Error("yield study not deterministic")
	}
}

func TestRunDoesNotMutateInputChip(t *testing.T) {
	c := chip.Square(3, 3)
	if _, err := Run(c, smallConfig()); err != nil {
		t.Fatal(err)
	}
	for _, q := range c.Qubits {
		if q.BaseFreq != 0 {
			t.Fatal("input chip's frequencies were mutated")
		}
	}
}

func TestDesignedYieldHealthy(t *testing.T) {
	// At the default fab scatter, the noise-aware allocation should
	// pass the 3e-4 target on most dice of a 16-qubit chip.
	c := chip.Square(4, 4)
	cfg := smallConfig()
	cfg.Dice = 20
	res, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Yield < 0.6 {
		t.Errorf("yield %.2f unexpectedly low (median err %.2e)", res.Yield, res.MedianError)
	}
}

func TestDisorderSweepMonotoneTrend(t *testing.T) {
	// Yield at extreme disorder must not beat yield at low disorder.
	c := chip.Square(3, 3)
	cfg := smallConfig()
	cfg.Dice = 12
	sweep, err := DisorderSweep(c, cfg, []float64{0.01, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if sweep[0.4] > sweep[0.01] {
		t.Errorf("yield rose with disorder: %.2f @0.01 vs %.2f @0.4", sweep[0.01], sweep[0.4])
	}
	if _, err := DisorderSweep(c, cfg, []float64{-1}); err == nil {
		t.Error("negative disorder accepted")
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("mean %v", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty mean should be NaN")
	}
}

func TestRunWithDefects(t *testing.T) {
	c := chip.Square(4, 4)
	cfg := smallConfig()
	base, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Defects = faults.UniformSpec(0.1)
	defective, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(defective.Dice) != len(base.Dice) {
		t.Fatalf("die counts differ: %d vs %d", len(defective.Dice), len(base.Dice))
	}
	var anyDead bool
	for _, d := range defective.Dice {
		if d.DeadQubits > 0 {
			anyDead = true
		}
		if d.DeadQubits == 16 && !math.IsInf(d.MeanGateError, 1) {
			t.Errorf("die %d fully dead but scored %v", d.Seed, d.MeanGateError)
		}
	}
	if !anyDead {
		t.Error("10% defect rate over 10 dice drew no dead qubits")
	}
	for _, d := range base.Dice {
		if d.DeadQubits != 0 {
			t.Errorf("defect-free die %d reports %d dead qubits", d.Seed, d.DeadQubits)
		}
	}

	// Same config twice: deterministic.
	again, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range defective.Dice {
		if defective.Dice[i] != again.Dice[i] {
			t.Fatalf("die %d not deterministic under defects", i)
		}
	}
}
