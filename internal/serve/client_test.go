package serve

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestSanitizeClientID(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"tenant-alpha", "tenant-alpha"},
		{"  spaced id  ", "spacedid"},
		{"evil\nheader\r", "evilheader"},
		{"~other", "other"},
		{"ünïcode", "ncode"},
		{strings.Repeat("x", 100), strings.Repeat("x", 64)},
	}
	for _, tc := range cases {
		if got := sanitizeClientID(tc.in); got != tc.want {
			t.Errorf("sanitizeClientID(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestClientStatsTally: per-tenant rows partition requests into
// ok/shed/errors, anonymous requests are not tracked, and the readyz
// body surfaces the rows.
func TestClientStatsTally(t *testing.T) {
	srv := newTestServer(t, Config{})
	h := srv.Handler()

	send := func(id, body string) int {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/design", strings.NewReader(body))
		if id != "" {
			req.Header.Set(ClientIDHeader, id)
		}
		h.ServeHTTP(rec, req)
		return rec.Code
	}

	good := `{"topology": "square", "qubits": 4, "seed": 1}`
	bad := `{"topology": "dodecahedron", "qubits": 4}`
	if code := send("tenant-a", good); code != 200 {
		t.Fatalf("good design = %d", code)
	}
	if code := send("tenant-a", good); code != 200 {
		t.Fatalf("warm design = %d", code)
	}
	if code := send("tenant-b", bad); code != 400 {
		t.Fatalf("bad design = %d", code)
	}
	if code := send("", good); code != 200 {
		t.Fatalf("anonymous design = %d", code)
	}

	stats := srv.ClientStats()
	if len(stats) != 2 {
		t.Fatalf("stats = %+v, want rows for tenant-a and tenant-b only", stats)
	}
	a := stats["tenant-a"]
	if a.Requests != 2 || a.OK != 2 || a.Shed != 0 || a.Errors != 0 {
		t.Errorf("tenant-a = %+v", a)
	}
	b := stats["tenant-b"]
	if b.Requests != 1 || b.Errors != 1 {
		t.Errorf("tenant-b = %+v", b)
	}

	rec := get(h, "/readyz")
	if rec.Code != 200 {
		t.Fatalf("readyz = %d", rec.Code)
	}
	var ready struct {
		Clients map[string]ClientTally `json:"clients"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
		t.Fatalf("decode readyz: %v", err)
	}
	if ready.Clients["tenant-a"].OK != 2 {
		t.Errorf("readyz clients = %+v", ready.Clients)
	}
}

// TestClientStatsOverflow: past maxTrackedClients distinct ids, new
// tenants fold into the "~other" row instead of growing the map, and a
// '~'-prefixed header can never collide with the overflow row.
func TestClientStatsOverflow(t *testing.T) {
	srv := newTestServer(t, Config{})
	h := srv.Handler()

	bad := `{"topology": "dodecahedron", "qubits": 4}`
	for i := 0; i < maxTrackedClients+10; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/design", strings.NewReader(bad))
		req.Header.Set(ClientIDHeader, fmt.Sprintf("tenant-%03d", i))
		h.ServeHTTP(rec, req)
	}

	stats := srv.ClientStats()
	if len(stats) != maxTrackedClients+1 {
		t.Fatalf("tracking %d rows, want %d + overflow", len(stats), maxTrackedClients)
	}
	over, ok := stats[clientOverflow]
	if !ok || over.Requests != 10 {
		t.Fatalf("overflow row = %+v (present %v), want 10 requests", over, ok)
	}
	total := int64(0)
	for _, tally := range stats {
		total += tally.Requests
	}
	if want := int64(maxTrackedClients + 10); total != want {
		t.Fatalf("total tallied requests = %d, want %d", total, want)
	}
}
