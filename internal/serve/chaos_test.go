package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	youtiao "repro"
	"repro/internal/faults"
	"repro/internal/stage"
)

// execFn abbreviates the stage execution signature in wrappers.
type execFn = func(context.Context) (any, error)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosOverloadBurst is the acceptance scenario: a 4x-capacity
// burst of distinct requests against a server whose stages are
// chaos-injected (slow, failing, panicking) degrades predictably —
// exactly the over-capacity excess is shed with 429, every admitted
// request resolves with a defined status, the cache stays under its
// byte budget, no goroutines leak, and the drained server still serves
// a clean request.
func TestChaosOverloadBurst(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()

	const (
		inflight = 2
		queue    = 2
		capacity = inflight + queue
		total    = 4 * capacity
	)
	cache := youtiao.NewSharedCache(youtiao.CacheConfig{MaxBytes: 1 << 16, Shards: 4})
	srv := newTestServer(t, Config{
		MaxInFlight: inflight,
		MaxQueue:    queue,
		QueueWait:   30 * time.Second,
		Cache:       cache,
	})
	h := srv.Handler()

	// Gate + chaos: every execution first blocks on the gate (so the
	// burst's admission outcome is deterministic), then runs its
	// chaos-drawn fate. The fate of each (stage, key) is a pure function
	// of the chaos seed, so a rerun of this test degrades identically.
	chaos := &faults.Chaos{Seed: 2025, PanicRate: 0.1, FailRate: 0.2, SlowRate: 0.3, Delay: 20 * time.Millisecond}
	chaosW := chaos.Wrapper()
	gate := make(chan struct{})
	var executing atomic.Int64
	cache.WrapExec(func(name string, key stage.Key, fn execFn) execFn {
		inner := chaosW(name, key, fn)
		return func(ctx context.Context) (any, error) {
			executing.Add(1)
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return inner(ctx)
		}
	})

	recs := make([]*httptest.ResponseRecorder, total)
	var wg sync.WaitGroup
	// Fill the execution slots and the queue first so the remaining 12
	// requests deterministically find both full.
	for i := 0; i < capacity; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = post(h, "/v1/design", fmt.Sprintf(`{"topology": "square", "qubits": 4, "seed": %d}`, i+1))
		}(i)
	}
	waitFor(t, "slots held", func() bool { return executing.Load() >= inflight })
	waitFor(t, "queue full", func() bool {
		return srv.Registry().Gauge("serve/queued").Load() >= queue
	})

	for i := capacity; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = post(h, "/v1/design", fmt.Sprintf(`{"topology": "square", "qubits": 4, "seed": %d}`, i+1))
		}(i)
	}
	waitFor(t, "excess shed", func() bool {
		return srv.Registry().Counter("serve/shed").Load() >= total-capacity
	})
	close(gate)
	wg.Wait()

	counts := map[int]int{}
	for i, rec := range recs {
		switch rec.Code {
		case 200, 422, 500, 504:
			counts[rec.Code]++
		case 429:
			counts[429]++
			if rec.Header().Get("Retry-After") == "" {
				t.Fatalf("request %d: 429 without Retry-After", i)
			}
		default:
			t.Fatalf("request %d: undefined degradation status %d (body %s)", i, rec.Code, rec.Body.String())
		}
	}
	if counts[429] != total-capacity {
		t.Fatalf("shed %d of %d, want exactly the over-capacity %d (mix: %v)",
			counts[429], total, total-capacity, counts)
	}
	if resolved := counts[200] + counts[422] + counts[500] + counts[504]; resolved != capacity {
		t.Fatalf("resolved %d admitted requests, want %d (mix: %v)", resolved, capacity, counts)
	}
	if got := srv.Registry().Counter("serve/shed").Load(); got != int64(total-capacity) {
		t.Fatalf("serve/shed = %d, want %d", got, total-capacity)
	}

	// The cache never exceeds its budget, chaos or not.
	if st := cache.Stats(); st.MaxBytes > 0 && st.Bytes > st.MaxBytes {
		t.Fatalf("cache over budget after burst: %d > %d bytes", st.Bytes, st.MaxBytes)
	}

	// The process survived every injected fate and serves clean traffic.
	cache.WrapExec(nil)
	rec := post(h, "/v1/design", `{"topology": "square", "qubits": 4, "seed": 100}`)
	if rec.Code != 200 {
		t.Fatalf("post-chaos request = %d (body %s) — server did not recover", rec.Code, rec.Body.String())
	}
	if st := cache.Stats(); st.MaxBytes > 0 && st.Bytes > st.MaxBytes {
		t.Fatalf("cache over budget after recovery: %d > %d bytes", st.Bytes, st.MaxBytes)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitFor(t, "goroutines to settle", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseGoroutines+3
	})
}

// TestChaosPanicContained: a stage that always panics fails its request
// with a 500 naming the stage — the panic is contained in the artifact
// store, the serving process survives, and the panic is counted.
func TestChaosPanicContained(t *testing.T) {
	srv := newTestServer(t, Config{})
	chaos := &faults.Chaos{Seed: 9, PanicRate: 1}
	srv.Cache().WrapExec(chaos.Wrapper())

	rec := post(srv.Handler(), "/v1/design", `{"topology": "square", "qubits": 4}`)
	if rec.Code != 500 {
		t.Fatalf("status = %d, want 500 (body %s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "panicked") {
		t.Fatalf("body does not name the panic: %s", rec.Body.String())
	}
	if got := srv.Registry().Counter("stage/panics").Load(); got == 0 {
		t.Fatal("stage/panics not counted")
	}
	// The HTTP-layer panic counter stays untouched: containment
	// happened below it.
	if got := srv.Registry().Counter("serve/panics").Load(); got != 0 {
		t.Fatalf("serve/panics = %d, want 0 (stage panics are contained in the store)", got)
	}

	srv.Cache().WrapExec(nil)
	if rec := post(srv.Handler(), "/v1/design", `{"topology": "square", "qubits": 4}`); rec.Code != 200 {
		t.Fatalf("post-panic request = %d", rec.Code)
	}
}

// TestChaosFailureIs422: an injected stage failure maps onto the 422
// design-failure contract, with the chaos error visible to the client.
func TestChaosFailureIs422(t *testing.T) {
	srv := newTestServer(t, Config{})
	srv.Cache().WrapExec((&faults.Chaos{Seed: 9, FailRate: 1}).Wrapper())

	rec := post(srv.Handler(), "/v1/design", `{"topology": "square", "qubits": 4}`)
	if rec.Code != 422 {
		t.Fatalf("status = %d, want 422 (body %s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "chaos-injected") {
		t.Fatalf("body hides the failure cause: %s", rec.Body.String())
	}
	if got := srv.Registry().Counter("serve/failed").Load(); got != 1 {
		t.Fatalf("serve/failed = %d", got)
	}
}

// TestChaosSlowBoundedByDeadline: with every stage slowed far past the
// request deadline, the response is still a prompt 504 — degradation
// under slowness is bounded by the deadline, not by the injected delay.
func TestChaosSlowBoundedByDeadline(t *testing.T) {
	srv := newTestServer(t, Config{})
	srv.Cache().WrapExec((&faults.Chaos{Seed: 3, SlowRate: 1, Delay: time.Hour}).Wrapper())

	start := time.Now()
	rec := post(srv.Handler(), "/v1/design", `{"topology": "square", "qubits": 4, "timeoutMs": 100}`)
	elapsed := time.Since(start)
	if rec.Code != 504 {
		t.Fatalf("status = %d, want 504 (body %s)", rec.Code, rec.Body.String())
	}
	if elapsed > 10*time.Second {
		t.Fatalf("slowed request held for %v past its 100ms deadline", elapsed)
	}
}

// TestChaosCoalescedIdentical: identical concurrent requests under
// slow-stage chaos still coalesce onto one execution per stage and
// return byte-identical designs and stripped manifests.
func TestChaosCoalescedIdentical(t *testing.T) {
	const n = 4
	srv := newTestServer(t, Config{MaxInFlight: 2, MaxQueue: n, QueueWait: time.Minute})
	srv.Cache().WrapExec((&faults.Chaos{Seed: 4, SlowRate: 1, Delay: 30 * time.Millisecond}).Wrapper())
	h := srv.Handler()

	recs := make([]*httptest.ResponseRecorder, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = post(h, "/v1/design", `{"topology": "square", "qubits": 9, "seed": 7}`)
		}(i)
	}
	wg.Wait()

	var design0, manifest0 []byte
	for i, rec := range recs {
		if rec.Code != 200 {
			t.Fatalf("request %d: status %d (body %s)", i, rec.Code, rec.Body.String())
		}
		resp := decodeResponse(t, rec)
		d, err := json.Marshal(resp.Design)
		if err != nil {
			t.Fatal(err)
		}
		m, err := resp.Manifest.StripTimings().JSON()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			design0, manifest0 = d, m
			continue
		}
		if !bytes.Equal(design0, d) || !bytes.Equal(manifest0, m) {
			t.Fatalf("request %d diverged from request 0 under chaos", i)
		}
	}
	for _, st := range srv.Cache().StageReport().Stages {
		if st.Misses != 1 {
			t.Fatalf("stage %s executed %d times for %d identical requests", st.Name, st.Misses, n)
		}
	}
}
