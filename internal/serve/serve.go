// Package serve turns the YOUTIAO designer into a long-running,
// multi-tenant design-as-a-service endpoint: POST a chip description to
// /v1/design and get the multiplexed wiring design, a reproducibility
// manifest and stage timings back as JSON.
//
// The pipeline is CPU-heavy (seconds per cold design), so the server is
// engineered for overload rather than throughput: a bounded shared
// artifact cache (identical requests coalesce onto single-flight stage
// executions and memory stays under a fixed budget), admission control
// (at most MaxInFlight designs run, at most MaxQueue wait; excess load
// is shed with 429 + Retry-After instead of queueing unboundedly),
// per-request deadlines threaded into the pipeline's context, panic
// containment (a panicking stage fails its request with 500, never the
// process) and graceful drain (SIGTERM stops admissions, finishes
// in-flight work, then exits). See DESIGN.md, "The serving contract".
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	youtiao "repro"
	"repro/internal/obs"
	"repro/internal/stage"
)

// Server counter and gauge names, pre-registered so /metrics serves a
// stable schema from the first scrape.
const (
	cRequests   = "serve/requests"
	cOK         = "serve/ok"
	cBadRequest = "serve/bad_request"
	cShed       = "serve/shed"
	cTimeouts   = "serve/timeouts"
	cFailed     = "serve/failed"
	cPanics     = "serve/panics"
	gInFlight   = "serve/inflight"
	gQueued     = "serve/queued"
)

// ClientIDHeader names the request header carrying the caller's tenant
// id. Load harnesses (cmd/youtiao-load) set it so per-tenant fairness —
// who got served, who got shed — is observable server-side.
const ClientIDHeader = "X-Client-ID"

// maxTrackedClients bounds the per-client accounting map; ids past the
// bound are folded into the "~other" row so a client-id cardinality
// attack cannot grow server memory.
const maxTrackedClients = 64

// clientOverflow is the fold-in row of per-client accounting once
// maxTrackedClients distinct ids have been seen. The leading '~' cannot
// appear in a sanitized id, so it never collides with a real client.
const clientOverflow = "~other"

// ClientTally is one tenant's request accounting: how many designs it
// asked for and how each ended. Requests = OK + Shed + Errors once the
// request finished (in-flight requests are counted in Requests only).
type ClientTally struct {
	// Requests counts design requests carrying this client id.
	Requests int64 `json:"requests"`
	// OK counts designs served with 200.
	OK int64 `json:"ok"`
	// Shed counts requests dropped by admission control (429) or
	// refused while draining (503).
	Shed int64 `json:"shed"`
	// Errors counts everything else: bad requests, design failures,
	// timeouts and contained panics.
	Errors int64 `json:"errors"`
}

// Config tunes a Server. The zero value is completed by defaults sized
// for a small interactive deployment.
type Config struct {
	// MaxInFlight bounds concurrently executing designs (default 2).
	MaxInFlight int
	// MaxQueue bounds designs waiting for an execution slot (default
	// 2*MaxInFlight). A request arriving past the queue is shed
	// immediately with 429.
	MaxQueue int
	// QueueWait bounds how long a queued request waits for a slot
	// before being shed with 429 (default 10s).
	QueueWait time.Duration
	// RequestTimeout caps the design deadline of every request
	// (default 120s). A request's own timeoutMs may shorten it but
	// never extend it.
	RequestTimeout time.Duration
	// MaxQubits rejects chips larger than this with 400 (default
	// 512) — admission control against asymptotically expensive work,
	// not a pipeline limit.
	MaxQubits int
	// CacheBytes bounds the shared artifact cache (default 256 MiB;
	// negative = unbounded). Ignored when Cache is set.
	CacheBytes int64
	// CacheShards spreads the cache over independently locked shards
	// (0 = default). Ignored when Cache is set.
	CacheShards int
	// CacheDir, when non-empty, adds a persistent warm tier under this
	// directory: artifacts survive restarts and replicas pointed at the
	// same directory share their work. Ignored when Cache is set.
	CacheDir string
	// CacheDiskBytes bounds the warm tier (0 = unbounded); the
	// least-recently-used artifacts are garbage-collected past the
	// budget. Ignored when CacheDir is empty or Cache is set.
	CacheDiskBytes int64
	// Cache substitutes a caller-built cache — the chaos tests inject
	// one with a fault wrapper installed.
	Cache *youtiao.SharedCache
	// Obs substitutes a caller-built registry; one is created when nil.
	Obs *youtiao.ObsRegistry
	// Logf receives server log lines (panic reports, drain progress).
	// Defaults to log.Printf; tests set a quiet sink.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxInFlight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 10 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 120 * time.Second
	}
	if c.MaxQubits <= 0 {
		c.MaxQubits = 512
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	} else if c.CacheBytes < 0 {
		c.CacheBytes = 0 // unbounded
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// DesignRequest is the /v1/design request body.
type DesignRequest struct {
	// Topology names the chip family: "square", "hexagon",
	// "heavy-square", "heavy-hexagon" or "low-density".
	Topology string `json:"topology"`
	// Qubits is the approximate chip size (required, >= 2).
	Qubits int `json:"qubits"`
	// Seed drives fabrication and measurement noise (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Theta overrides the TDM parallelism threshold; explicit 0 means
	// "every device above threshold" (the pointer distinguishes unset).
	Theta *float64 `json:"theta,omitempty"`
	// FDMCapacity overrides the qubits-per-XY-line limit.
	FDMCapacity int `json:"fdmCapacity,omitempty"`
	// AnnealSteps refines frequency allocation when positive.
	AnnealSteps int `json:"annealSteps,omitempty"`
	// DefectRate injects uniform device defects and calibration faults.
	DefectRate float64 `json:"defectRate,omitempty"`
	// RetryBudget is the calibration re-measurement budget.
	RetryBudget int `json:"retryBudget,omitempty"`
	// TimeoutMs shortens this request's design deadline below the
	// server's RequestTimeout.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
}

// DesignResponse is the /v1/design response body.
type DesignResponse struct {
	// Design is the wiring design snapshot.
	Design *youtiao.DesignSnapshot `json:"design"`
	// Manifest is the reproducibility record of the design. Stages and
	// Obs are omitted — those are cumulative server state, not
	// per-request facts — so Manifest.StripTimings() of two responses
	// for identical requests are byte-identical.
	Manifest *youtiao.Manifest `json:"manifest"`
	// Stages is the server's cumulative per-stage cache report at
	// response time (runs, hits, misses, wall). Diff two to see what a
	// request re-executed versus recalled.
	Stages *youtiao.StageReport `json:"stages,omitempty"`
	// ElapsedMs is the request's wall time inside the design call.
	ElapsedMs float64 `json:"elapsedMs"`
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// Server is an overload-robust HTTP front-end over a shared design
// cache. Create with New, mount Handler, stop with Shutdown.
type Server struct {
	cfg   Config
	reg   *youtiao.ObsRegistry
	cache *youtiao.SharedCache
	mux   *http.ServeMux

	sem    chan struct{}
	queued atomic.Int64

	// mu guards the drain state: active in-flight designs, the
	// draining flag and the idle broadcast channel. A WaitGroup cannot
	// express "stop admitting, then wait" without an Add/Wait race.
	mu       sync.Mutex
	active   int
	draining bool
	idle     chan struct{}

	// clientsMu guards the per-tenant fairness accounting keyed by the
	// X-Client-ID header (anonymous requests are not tracked).
	clientsMu sync.Mutex
	clients   map[string]*ClientTally

	// now is injectable for tests; defaults to time.Now.
	now func() time.Time
}

// New returns a Server over cfg. It errors only when cfg.CacheDir is
// set and the persistent cache directory cannot be opened.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	reg := cfg.Obs
	if reg == nil {
		reg = obs.New()
	}
	cache := cfg.Cache
	if cache == nil {
		var err error
		cache, err = youtiao.OpenSharedCache(youtiao.CacheConfig{
			MaxBytes:  cfg.CacheBytes,
			Shards:    cfg.CacheShards,
			Dir:       cfg.CacheDir,
			DiskBytes: cfg.CacheDiskBytes,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: open cache: %w", err)
		}
	}
	// One registry observes everything: the shared store's cache
	// instrumentation and (via Options.Obs on every request) per-build
	// stage metrics. Per-request registries would race — the store
	// holds a single observer, swapped on each build.
	cache.Observe(reg)
	for _, name := range []string{cRequests, cOK, cBadRequest, cShed, cTimeouts, cFailed, cPanics} {
		reg.Counter(name)
	}
	reg.Gauge(gInFlight).Set(0)
	reg.Gauge(gQueued).Set(0)

	s := &Server{
		cfg:     cfg,
		reg:     reg,
		cache:   cache,
		sem:     make(chan struct{}, cfg.MaxInFlight),
		now:     time.Now,
		clients: make(map[string]*ClientTally),
	}
	s.mux = http.NewServeMux()
	s.mux.Handle("/v1/design", http.HandlerFunc(s.handleDesign))
	s.mux.Handle("/healthz", http.HandlerFunc(s.handleHealthz))
	s.mux.Handle("/readyz", http.HandlerFunc(s.handleReadyz))
	s.mux.Handle("/metrics", reg.Handler())
	return s, nil
}

// Handler returns the server's root handler: the route mux wrapped in
// panic recovery, so no request — however broken — can crash the
// process. Stage panics are already contained by the artifact store;
// this guards the HTTP layer itself.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.reg.Counter(cPanics).Add(1)
				s.cfg.Logf("serve: panic in %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				// The handler may have written already; a duplicate
				// WriteHeader is logged by net/http and otherwise
				// harmless. Losing one response beats losing the server.
				writeJSON(w, http.StatusInternalServerError,
					errorBody{Error: fmt.Sprintf("internal panic: %v", v)})
			}
		}()
		s.mux.ServeHTTP(w, r)
	})
}

// Registry exposes the server's metrics registry (the one behind
// /metrics).
func (s *Server) Registry() *youtiao.ObsRegistry { return s.reg }

// Cache exposes the shared design cache (for stats and tests).
func (s *Server) Cache() *youtiao.SharedCache { return s.cache }

// enter registers one in-flight design; it fails once draining so no
// new work starts after Shutdown begins.
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.active++
	return true
}

// leave unregisters an in-flight design and wakes Shutdown when the
// last one finishes.
func (s *Server) leave() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.active--
	if s.active == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
}

// Shutdown drains the server: readiness flips to 503 (so load
// balancers stop routing), new design requests are refused with 503,
// and the call blocks until in-flight designs finish or ctx fires.
// Idempotent; safe to call concurrently.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.active == 0 {
		s.mu.Unlock()
		return nil
	}
	if s.idle == nil {
		s.idle = make(chan struct{})
	}
	idle := s.idle
	s.mu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain incomplete: %w", ctx.Err())
	}
}

// admit implements admission control: fast-path a free execution slot,
// otherwise queue (bounded by MaxQueue, for at most QueueWait), and
// shed everything else. The returned release must be called exactly
// once when ok.
func (s *Server) admit(ctx context.Context) (release func(), ok bool) {
	release = func() {
		<-s.sem
		s.reg.Gauge(gInFlight).Set(int64(len(s.sem)))
	}
	select {
	case s.sem <- struct{}{}:
		s.reg.Gauge(gInFlight).Set(int64(len(s.sem)))
		return release, true
	default:
	}
	if q := s.queued.Add(1); q > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		return nil, false
	}
	s.reg.Gauge(gQueued).Set(s.queued.Load())
	defer func() {
		s.reg.Gauge(gQueued).Set(s.queued.Add(-1))
	}()
	timer := time.NewTimer(s.cfg.QueueWait)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		s.reg.Gauge(gInFlight).Set(int64(len(s.sem)))
		return release, true
	case <-timer.C:
		return nil, false
	case <-ctx.Done():
		return nil, false
	}
}

// sanitizeClientID normalizes the X-Client-ID header value: printable
// ASCII only (anything else is dropped), at most 64 bytes, and never
// starting with '~' (reserved for the overflow row). Empty in, empty
// out — anonymous requests are not tracked.
func sanitizeClientID(raw string) string {
	var b strings.Builder
	for i := 0; i < len(raw) && b.Len() < 64; i++ {
		c := raw[i]
		if c > 0x20 && c < 0x7f && c != '~' {
			b.WriteByte(c)
		}
	}
	return b.String()
}

// tallyClient applies f to the client's fairness row, folding new ids
// past maxTrackedClients into the overflow row. No-op for an empty id.
func (s *Server) tallyClient(id string, f func(*ClientTally)) {
	if id == "" {
		return
	}
	s.clientsMu.Lock()
	defer s.clientsMu.Unlock()
	t, ok := s.clients[id]
	if !ok {
		if len(s.clients) >= maxTrackedClients {
			id = clientOverflow
			if t = s.clients[id]; t == nil {
				t = &ClientTally{}
				s.clients[id] = t
			}
		} else {
			t = &ClientTally{}
			s.clients[id] = t
		}
	}
	f(t)
}

// ClientStats snapshots the per-tenant fairness accounting: one row per
// client id seen on the X-Client-ID header (plus the "~other" overflow
// row once the tracked-id bound is hit).
func (s *Server) ClientStats() map[string]ClientTally {
	s.clientsMu.Lock()
	defer s.clientsMu.Unlock()
	out := make(map[string]ClientTally, len(s.clients))
	for id, t := range s.clients {
		out[id] = *t
	}
	return out
}

func (s *Server) handleDesign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "use POST"})
		return
	}
	s.reg.Counter(cRequests).Add(1)
	client := sanitizeClientID(r.Header.Get(ClientIDHeader))
	s.tallyClient(client, func(t *ClientTally) { t.Requests++ })

	req, err := decodeDesignRequest(w, r)
	if err != nil {
		s.reg.Counter(cBadRequest).Add(1)
		s.tallyClient(client, func(t *ClientTally) { t.Errors++ })
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if req.Qubits < 2 || req.Qubits > s.cfg.MaxQubits {
		s.reg.Counter(cBadRequest).Add(1)
		s.tallyClient(client, func(t *ClientTally) { t.Errors++ })
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: fmt.Sprintf("qubits must be in [2, %d], got %d", s.cfg.MaxQubits, req.Qubits)})
		return
	}
	ch, err := youtiao.NewChip(req.Topology, req.Qubits)
	if err != nil {
		s.reg.Counter(cBadRequest).Add(1)
		s.tallyClient(client, func(t *ClientTally) { t.Errors++ })
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	// Admission before execution: a shed request costs JSON parsing and
	// chip construction (microseconds), never a design (seconds).
	release, ok := s.admit(r.Context())
	if !ok {
		s.reg.Counter(cShed).Add(1)
		s.tallyClient(client, func(t *ClientTally) { t.Shed++ })
		w.Header().Set("Retry-After", retryAfter(s.cfg.QueueWait))
		writeJSON(w, http.StatusTooManyRequests,
			errorBody{Error: "overloaded: execution slots and queue are full"})
		return
	}
	defer release()
	if !s.enter() {
		s.tallyClient(client, func(t *ClientTally) { t.Shed++ })
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server is draining"})
		return
	}
	defer s.leave()

	opts := youtiao.Options{
		Seed:        req.Seed,
		FDMCapacity: req.FDMCapacity,
		AnnealSteps: req.AnnealSteps,
		RetryBudget: req.RetryBudget,
		Obs:         s.reg,
	}
	if req.Theta != nil {
		opts.Theta, opts.HasTheta = *req.Theta, true
	}
	if req.DefectRate > 0 {
		opts.Faults = youtiao.UniformFaults(req.DefectRate)
	}

	timeout := s.cfg.RequestTimeout
	if req.TimeoutMs > 0 {
		if d := time.Duration(req.TimeoutMs) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	start := time.Now()
	res, err := s.cache.Designer(ch).RedesignCtx(ctx, opts)
	elapsed := time.Since(start)
	if err != nil {
		s.tallyClient(client, func(t *ClientTally) { t.Errors++ })
		s.designError(w, err)
		return
	}
	s.tallyClient(client, func(t *ClientTally) { t.OK++ })

	manifest := youtiao.NewManifest(res, opts)
	manifest.CreatedAt = s.now().UTC().Format(time.RFC3339)
	report := s.cache.StageReport()
	s.reg.Counter(cOK).Add(1)
	writeJSON(w, http.StatusOK, DesignResponse{
		Design:    res.Snapshot(),
		Manifest:  manifest,
		Stages:    &report,
		ElapsedMs: float64(elapsed.Microseconds()) / 1000,
	})
}

// designError maps a pipeline failure onto the HTTP status contract:
// deadlines are 504 (the request asked for more work than its time
// budget), contained stage panics are 500 with the stage named, and
// other design failures are 422 (the pipeline understood the request
// and could not satisfy it — e.g. too many defects to group).
func (s *Server) designError(w http.ResponseWriter, err error) {
	var pe *stage.PanicError
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.reg.Counter(cTimeouts).Add(1)
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: err.Error()})
	case errors.As(err, &pe):
		s.reg.Counter(cFailed).Add(1)
		writeJSON(w, http.StatusInternalServerError,
			errorBody{Error: fmt.Sprintf("stage %s panicked: %v", pe.Stage, pe.Value)})
	default:
		s.reg.Counter(cFailed).Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: err.Error()})
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness: the process serves requests. Stays 200 while draining —
	// a draining server is healthy, just not ready.
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type readiness struct {
		Status   string             `json:"status"`
		InFlight int                `json:"inflight"`
		Queued   int64              `json:"queued"`
		Cache    youtiao.CacheStats `json:"cache"`
		// Clients is the per-tenant fairness accounting (requests, ok,
		// shed, errors per X-Client-ID). Map keys marshal sorted, so
		// the rendering is deterministic.
		Clients map[string]ClientTally `json:"clients,omitempty"`
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	body := readiness{
		Status:   "ready",
		InFlight: len(s.sem),
		Queued:   s.queued.Load(),
		Cache:    s.cache.Stats(),
		Clients:  s.ClientStats(),
	}
	code := http.StatusOK
	if draining {
		body.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// decodeDesignRequest parses and strictly validates the request body:
// unknown fields are rejected (a typoed option silently designing the
// wrong system is worse than a 400) and bodies are capped at 1 MiB.
func decodeDesignRequest(w http.ResponseWriter, r *http.Request) (*DesignRequest, error) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req DesignRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("bad request body: trailing data after JSON object")
	}
	return &req, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	if _, err := w.Write(append(data, '\n')); err != nil {
		return // client went away; nothing to salvage
	}
}

// retryAfter renders a Retry-After header value from the queue wait: a
// shed client backing off for one queue window has a fresh admission
// chance.
func retryAfter(d time.Duration) string {
	secs := int64(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
