package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	youtiao "repro"
	"repro/internal/stage"
)

// quiet silences server logs in tests.
func quiet(string, ...any) {}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = quiet
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 60 * time.Second
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return srv
}

// post fires one request at the handler and returns the recorder.
func post(h http.Handler, path, body string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	h.ServeHTTP(rec, req)
	return rec
}

func get(h http.Handler, path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func decodeResponse(t *testing.T, rec *httptest.ResponseRecorder) *DesignResponse {
	t.Helper()
	var resp DesignResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode response: %v\nbody: %s", err, rec.Body.String())
	}
	return &resp
}

// TestDesignHappyPath: a valid request designs the chip and returns a
// complete snapshot, a manifest and stage timings.
func TestDesignHappyPath(t *testing.T) {
	srv := newTestServer(t, Config{})
	h := srv.Handler()

	rec := post(h, "/v1/design", `{"topology": "square", "qubits": 4, "seed": 3}`)
	if rec.Code != 200 {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	resp := decodeResponse(t, rec)
	if resp.Design == nil || resp.Design.Chip.Qubits != 4 {
		t.Fatalf("design = %+v", resp.Design)
	}
	if len(resp.Design.FDMLines) == 0 || len(resp.Design.TDMGroups) == 0 {
		t.Fatalf("design missing groupings: %+v", resp.Design)
	}
	if resp.Manifest == nil || resp.Manifest.Seed != 3 || resp.Manifest.CreatedAt == "" {
		t.Fatalf("manifest = %+v", resp.Manifest)
	}
	if resp.Manifest.Stages != nil || resp.Manifest.Obs != nil {
		t.Fatal("response manifest must not embed cumulative server state")
	}
	if resp.Stages == nil || len(resp.Stages.Stages) == 0 {
		t.Fatal("response missing stage report")
	}

	// A second identical request is served from cache: zero new misses.
	before := srv.Cache().StageReport()
	rec = post(h, "/v1/design", `{"topology": "square", "qubits": 4, "seed": 3}`)
	if rec.Code != 200 {
		t.Fatalf("warm status = %d", rec.Code)
	}
	delta := srv.Cache().StageReport().Sub(before)
	if delta.Misses != 0 {
		t.Fatalf("warm request missed %d stages", delta.Misses)
	}
}

// TestDesignRejectsBadRequests: malformed bodies, unknown fields, bad
// topologies and out-of-range sizes are 400s and count as bad requests,
// never reaching the pipeline.
func TestDesignRejectsBadRequests(t *testing.T) {
	srv := newTestServer(t, Config{MaxQubits: 100})
	h := srv.Handler()

	cases := []struct {
		name, body string
	}{
		{"malformed", `{"topology": `},
		{"unknown field", `{"topology": "square", "qubits": 4, "qbits": 9}`},
		{"trailing data", `{"topology": "square", "qubits": 4} {"again": true}`},
		{"bad topology", `{"topology": "klein-bottle", "qubits": 4}`},
		{"too small", `{"topology": "square", "qubits": 1}`},
		{"too large", `{"topology": "square", "qubits": 101}`},
	}
	for _, tc := range cases {
		rec := post(h, "/v1/design", tc.body)
		if rec.Code != 400 {
			t.Fatalf("%s: status = %d, want 400 (body %s)", tc.name, rec.Code, rec.Body.String())
		}
	}
	if got := srv.Registry().Counter("serve/bad_request").Load(); got != int64(len(cases)) {
		t.Fatalf("serve/bad_request = %d, want %d", got, len(cases))
	}

	rec := get(h, "/v1/design")
	if rec.Code != 405 {
		t.Fatalf("GET /v1/design = %d, want 405", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); allow != "POST" {
		t.Fatalf("Allow = %q", allow)
	}
}

// TestDesignDeadline: a request whose own timeoutMs expires mid-design
// returns 504 and counts a timeout.
func TestDesignDeadline(t *testing.T) {
	srv := newTestServer(t, Config{})
	rec := post(srv.Handler(), "/v1/design", `{"topology": "square", "qubits": 64, "timeoutMs": 1}`)
	if rec.Code != 504 {
		t.Fatalf("status = %d, want 504 (body %s)", rec.Code, rec.Body.String())
	}
	if got := srv.Registry().Counter("serve/timeouts").Load(); got != 1 {
		t.Fatalf("serve/timeouts = %d", got)
	}
}

// TestCoalescing: N concurrent identical requests share single-flight
// stage executions — each pipeline stage runs exactly once — and return
// byte-identical designs and (stripped) manifests.
func TestCoalescing(t *testing.T) {
	const n = 8
	srv := newTestServer(t, Config{MaxInFlight: 2, MaxQueue: n, QueueWait: time.Minute})
	h := srv.Handler()

	recs := make([]*httptest.ResponseRecorder, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = post(h, "/v1/design", `{"topology": "hexagon", "qubits": 6, "seed": 11}`)
		}(i)
	}
	wg.Wait()

	var designs [][]byte
	var manifests [][]byte
	for i, rec := range recs {
		if rec.Code != 200 {
			t.Fatalf("request %d: status %d, body %s", i, rec.Code, rec.Body.String())
		}
		resp := decodeResponse(t, rec)
		d, err := json.Marshal(resp.Design)
		if err != nil {
			t.Fatal(err)
		}
		m, err := resp.Manifest.StripTimings().JSON()
		if err != nil {
			t.Fatal(err)
		}
		designs = append(designs, d)
		manifests = append(manifests, m)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(designs[0], designs[i]) {
			t.Fatalf("coalesced designs diverge:\n%s\nvs\n%s", designs[0], designs[i])
		}
		if !bytes.Equal(manifests[0], manifests[i]) {
			t.Fatalf("stripped manifests diverge:\n%s\nvs\n%s", manifests[0], manifests[i])
		}
	}

	// Exactly one execution per stage (Misses counts executions; Runs
	// counts invocations): the store coalesced all N requests onto one
	// pipeline build.
	report := srv.Cache().StageReport()
	for _, st := range report.Stages {
		if st.Misses != 1 {
			t.Fatalf("stage %s executed %d times across %d identical requests", st.Name, st.Misses, n)
		}
		if st.Runs != n {
			t.Fatalf("stage %s saw %d invocations, want %d", st.Name, st.Runs, n)
		}
	}
	if len(report.Stages) == 0 {
		t.Fatal("no stages recorded")
	}
}

// TestOverloadSheds: with one execution slot and one queue seat, a
// burst of four requests resolves deterministically — two designs, two
// 429s with Retry-After — because admission is decided before any work
// starts.
func TestOverloadSheds(t *testing.T) {
	srv := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 1, QueueWait: 30 * time.Second})
	h := srv.Handler()

	// Park the first request in the execution slot: its fabricate stage
	// blocks until released.
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	srv.Cache().WrapExec(func(name string, key stage.Key, fn func(context.Context) (any, error)) func(context.Context) (any, error) {
		if name != "fabricate" {
			return fn
		}
		return func(ctx context.Context) (any, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			select {
			case <-block:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return fn(ctx)
		}
	})

	const body = `{"topology": "square", "qubits": 4, "seed": 5}`
	recs := make([]*httptest.ResponseRecorder, 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		recs[0] = post(h, "/v1/design", body)
	}()
	<-started // the slot is held; everything below contends

	var burst sync.WaitGroup
	for i := 1; i < 4; i++ {
		burst.Add(1)
		go func(i int) {
			defer burst.Done()
			recs[i] = post(h, "/v1/design", body)
		}(i)
	}
	// Of the three contenders, one takes the queue seat and two are
	// shed immediately. Wait for the two 429s before unblocking so the
	// outcome is deterministic, then release the slot.
	deadline := time.After(10 * time.Second)
	for srv.Registry().Counter("serve/shed").Load() < 2 {
		select {
		case <-deadline:
			t.Fatalf("shed counter stuck at %d", srv.Registry().Counter("serve/shed").Load())
		case <-time.After(time.Millisecond):
		}
	}
	close(block)
	wg.Wait()
	burst.Wait()

	var oks, sheds int
	for i, rec := range recs {
		switch rec.Code {
		case 200:
			oks++
		case 429:
			sheds++
			if ra := rec.Header().Get("Retry-After"); ra != "30" {
				t.Fatalf("request %d: Retry-After = %q, want \"30\"", i, ra)
			}
		default:
			t.Fatalf("request %d: unexpected status %d (body %s)", i, rec.Code, rec.Body.String())
		}
	}
	if oks != 2 || sheds != 2 {
		t.Fatalf("burst resolved to %d oks + %d sheds, want 2 + 2", oks, sheds)
	}
	if got := srv.Registry().Counter("serve/shed").Load(); got != 2 {
		t.Fatalf("serve/shed = %d, want 2", got)
	}
}

// TestHealthEndpoints: healthz is always 200; readyz reports state and
// flips to 503 on drain; metrics serves the counter schema.
func TestHealthEndpoints(t *testing.T) {
	srv := newTestServer(t, Config{})
	h := srv.Handler()

	if rec := get(h, "/healthz"); rec.Code != 200 {
		t.Fatalf("healthz = %d", rec.Code)
	}
	rec := get(h, "/readyz")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"ready"`) {
		t.Fatalf("readyz = %d %s", rec.Code, rec.Body.String())
	}

	rec = get(h, "/metrics")
	if rec.Code != 200 {
		t.Fatalf("metrics = %d", rec.Code)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("metrics Cache-Control = %q", cc)
	}
	for _, counter := range []string{"serve/requests", "serve/shed", "serve/panics", "stage/evictions"} {
		if !strings.Contains(rec.Body.String(), fmt.Sprintf("%q", counter)) {
			t.Fatalf("metrics missing pre-registered counter %s:\n%s", counter, rec.Body.String())
		}
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if rec := get(h, "/readyz"); rec.Code != 503 {
		t.Fatalf("draining readyz = %d, want 503", rec.Code)
	}
	if rec := get(h, "/healthz"); rec.Code != 200 {
		t.Fatalf("draining healthz = %d, want 200", rec.Code)
	}
	rec = post(h, "/v1/design", `{"topology": "square", "qubits": 4}`)
	if rec.Code != 503 {
		t.Fatalf("design during drain = %d, want 503", rec.Code)
	}
}

// TestPanicMiddleware: a panic escaping a handler is converted to a 500
// and counted; the server keeps serving.
func TestPanicMiddleware(t *testing.T) {
	srv := newTestServer(t, Config{})
	srv.now = func() time.Time { panic("clock exploded") }
	h := srv.Handler()

	rec := post(h, "/v1/design", `{"topology": "square", "qubits": 4}`)
	if rec.Code != 500 {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if got := srv.Registry().Counter("serve/panics").Load(); got != 1 {
		t.Fatalf("serve/panics = %d", got)
	}

	srv.now = time.Now
	rec = post(h, "/v1/design", `{"topology": "square", "qubits": 4}`)
	if rec.Code != 200 {
		t.Fatalf("post-panic status = %d — server did not recover", rec.Code)
	}
}

// TestWarmRestartServesFromDisk: a server restarted against the cache
// directory of a previous one serves the repeated request entirely from
// the disk tier — zero stage executions, byte-identical stripped
// manifest — and /readyz surfaces the disk-tier stats.
func TestWarmRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{CacheDir: dir}
	body := `{"topology": "square", "qubits": 9, "seed": 7}`

	first := newTestServer(t, cfg)
	rec := post(first.Handler(), "/v1/design", body)
	if rec.Code != 200 {
		t.Fatalf("first server status = %d: %s", rec.Code, rec.Body.String())
	}
	firstResp := decodeResponse(t, rec)

	// The "restart": a fresh server over the same directory, with an
	// empty memory tier.
	second := newTestServer(t, cfg)
	rec = post(second.Handler(), "/v1/design", body)
	if rec.Code != 200 {
		t.Fatalf("restarted server status = %d: %s", rec.Code, rec.Body.String())
	}
	secondResp := decodeResponse(t, rec)

	st := second.Cache().StageReport()
	if st.Misses != 0 {
		t.Fatalf("restarted server re-executed %d stages", st.Misses)
	}
	if st.DiskHits == 0 {
		t.Fatal("restarted server took no disk hits")
	}
	stats := second.Cache().Stats()
	if stats.DiskHits == 0 || stats.DiskEntries == 0 || stats.DecodeErrors != 0 {
		t.Fatalf("cache stats after warm restart: %+v", stats)
	}

	// The recalled design is byte-identical to the computed one.
	a, err := firstResp.Manifest.StripTimings().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := secondResp.Manifest.StripTimings().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("stripped manifests differ across restart:\n%s\n----\n%s", a, b)
	}
	aj, _ := json.Marshal(firstResp.Design)
	bj, _ := json.Marshal(secondResp.Design)
	if !bytes.Equal(aj, bj) {
		t.Error("designs differ across restart")
	}

	// /readyz exposes the disk tier.
	rec = get(second.Handler(), "/readyz")
	if rec.Code != 200 {
		t.Fatalf("readyz = %d", rec.Code)
	}
	var ready struct {
		Cache youtiao.CacheStats `json:"cache"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Cache.DiskHits == 0 || ready.Cache.DiskEntries == 0 {
		t.Fatalf("readyz cache stats missing disk tier: %+v", ready.Cache)
	}
}

// A cache directory that cannot be created surfaces as a constructor
// error, not a panic or a silently memory-only server.
func TestBadCacheDirFailsConstruction(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{CacheDir: file, Logf: quiet}); err == nil {
		t.Fatal("New accepted a cache dir path occupied by a file")
	}
}
