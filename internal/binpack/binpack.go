// Package binpack is the deterministic binary encoding layer under the
// persistent artifact store: fixed-width little-endian primitives with
// IEEE-754 bit-exact floats, so encoding a value is a pure function of
// the value (no map iteration order, no pointer identity, no locale)
// and decoding on another machine reproduces it bit for bit. Every
// artifact codec in internal/experiments is built from these two types.
//
// Enc appends; Dec reads with a sticky error, so a codec can chain
// reads and check Err() once. Dec never panics on hostile input: every
// length is validated against the remaining buffer before allocation,
// which is what makes the CAS header/payload decoders safe to fuzz and
// lets the store treat any corrupt artifact as a cache miss.
package binpack

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Enc accumulates a deterministic binary encoding.
type Enc struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (e *Enc) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a bool as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends an int64 (two's complement bits).
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as int64.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 as its IEEE-754 bits.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Raw appends length-prefixed raw bytes.
func (e *Enc) Raw(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Ints appends a length-prefixed []int.
func (e *Enc) Ints(v []int) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.Int(x)
	}
}

// Floats appends a length-prefixed []float64.
func (e *Enc) Floats(v []float64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.F64(x)
	}
}

// Bools appends a length-prefixed []bool.
func (e *Enc) Bools(v []bool) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.Bool(x)
	}
}

// FloatMatrix appends a length-prefixed [][]float64.
func (e *Enc) FloatMatrix(m [][]float64) {
	e.U32(uint32(len(m)))
	for _, row := range m {
		e.Floats(row)
	}
}

// IntMatrix appends a length-prefixed [][]int.
func (e *Enc) IntMatrix(m [][]int) {
	e.U32(uint32(len(m)))
	for _, row := range m {
		e.Ints(row)
	}
}

// Dec reads an Enc-produced buffer back. The first malformed read
// poisons the decoder; subsequent reads return zero values and Err()
// reports the failure.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over data.
func NewDec(data []byte) *Dec { return &Dec{buf: data} }

// Err returns the sticky decode error, nil while all reads succeeded.
func (d *Dec) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

func (d *Dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("binpack: truncated %s at offset %d", what, d.off)
	}
}

func (d *Dec) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Remaining() < n {
		d.fail(what)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool. Any nonzero byte is true.
func (d *Dec) Bool() bool { return d.U8() != 0 }

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4, "u32")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8, "u64")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads an int.
func (d *Dec) Int() int { return int(d.I64()) }

// F64 reads a float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// length reads a collection length and validates it against the
// remaining bytes at the given per-element width, so hostile lengths
// can never trigger a huge allocation.
func (d *Dec) length(elemSize int, what string) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if n < 0 || elemSize > 0 && n > d.Remaining()/elemSize {
		d.fail(what + " length")
		return 0
	}
	return n
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := d.length(1, "string")
	b := d.take(n, "string")
	if b == nil {
		return ""
	}
	return string(b)
}

// Raw reads length-prefixed raw bytes (a copy).
func (d *Dec) Raw() []byte {
	n := d.length(1, "bytes")
	b := d.take(n, "bytes")
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Ints reads a length-prefixed []int. A zero length yields nil.
func (d *Dec) Ints() []int {
	n := d.length(8, "[]int")
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.Int()
	}
	return out
}

// Floats reads a length-prefixed []float64. A zero length yields nil.
func (d *Dec) Floats() []float64 {
	n := d.length(8, "[]float64")
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// Bools reads a length-prefixed []bool. A zero length yields nil.
func (d *Dec) Bools() []bool {
	n := d.length(1, "[]bool")
	if n == 0 {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = d.Bool()
	}
	return out
}

// FloatMatrix reads a length-prefixed [][]float64.
func (d *Dec) FloatMatrix() [][]float64 {
	n := d.length(4, "[][]float64")
	if n == 0 {
		return nil
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = d.Floats()
	}
	return out
}

// IntMatrix reads a length-prefixed [][]int.
func (d *Dec) IntMatrix() [][]int {
	n := d.length(4, "[][]int")
	if n == 0 {
		return nil
	}
	out := make([][]int, n)
	for i := range out {
		out[i] = d.Ints()
	}
	return out
}
