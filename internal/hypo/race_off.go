//go:build !race

package hypo

const raceEnabled = false
