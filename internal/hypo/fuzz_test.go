package hypo

import (
	"reflect"
	"testing"
)

// FuzzExperimentSpec drives ParseSpecs with arbitrary input: it must
// never panic, and any spec it accepts must survive a String() →
// reparse round trip unchanged (the property cmd/hypo relies on when
// echoing resolved specs back to the user).
func FuzzExperimentSpec(f *testing.F) {
	f.Add("all")
	f.Add("deterministic,statistical")
	f.Add("H1-warm-redesign?seeds=1:2:3")
	f.Add("H3-trim-recovery?seeds=7:8:9&min_effect=0.25")
	f.Add("a?min_effect=1e-9")
	f.Add("x?seeds=-1:0:9223372036854775807")
	f.Add(" spaced , list ")
	f.Add("bad id?seeds=1:1")
	f.Add("a?seeds=&min_effect=")
	f.Add("a??b")
	f.Fuzz(func(t *testing.T, in string) {
		specs, err := ParseSpecs(in)
		if err != nil {
			return
		}
		if len(specs) == 0 {
			t.Fatalf("ParseSpecs(%q) accepted input but returned no specs", in)
		}
		for _, sp := range specs {
			if !ValidID(sp.Sel) {
				t.Fatalf("ParseSpecs(%q) accepted invalid selector %q", in, sp.Sel)
			}
			if sp.MinEffect < 0 || sp.MinEffect != sp.MinEffect {
				t.Fatalf("ParseSpecs(%q) accepted min_effect %v", in, sp.MinEffect)
			}
			seen := make(map[int64]bool, len(sp.Seeds))
			for _, s := range sp.Seeds {
				if seen[s] {
					t.Fatalf("ParseSpecs(%q) accepted duplicate seed %d", in, s)
				}
				seen[s] = true
			}
			back, err := ParseSpecs(sp.String())
			if err != nil {
				t.Fatalf("round trip of %q (from %q) failed to parse: %v", sp.String(), in, err)
			}
			if len(back) != 1 || !reflect.DeepEqual(back[0], sp) {
				t.Fatalf("round trip of %q changed the spec: %+v -> %+v", in, sp, back)
			}
		}
	})
}

// FuzzValidID checks the id predicate against the documented grammar —
// first rune a letter, then up to 63 of [A-Za-z0-9._-].
func FuzzValidID(f *testing.F) {
	f.Add("H1-warm-redesign")
	f.Add("a")
	f.Add("")
	f.Add("1abc")
	f.Add("a/b")
	f.Add("café")
	f.Fuzz(func(t *testing.T, in string) {
		got := ValidID(in)
		want := refValidID(in)
		if got != want {
			t.Fatalf("ValidID(%q) = %v, reference grammar says %v", in, got, want)
		}
	})
}

// refValidID is an independent re-statement of the id grammar.
func refValidID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		letter := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if i == 0 {
			if !letter {
				return false
			}
			continue
		}
		if !letter && !(c >= '0' && c <= '9') && c != '.' && c != '_' && c != '-' {
			return false
		}
	}
	return true
}
