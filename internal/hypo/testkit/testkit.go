// Package testkit provides the worker-invariance test matrix shared by
// the determinism tests in xmon, crosstalk and scalesim: evaluate the
// same computation at a baseline worker count and at several variants,
// over a seed matrix, and require deeply-equal results. It is a test
// helper library — it imports nothing from the repository, so any
// package (including the pipeline roots) can use it without cycles.
package testkit

import (
	"fmt"
	"reflect"
	"testing"
)

// SeedMatrix runs body once per seed as a named subtest, giving every
// cell of an invariance matrix its own failure line.
func SeedMatrix(t *testing.T, seeds []int64, body func(t *testing.T, seed int64)) {
	t.Helper()
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			body(t, seed)
		})
	}
}

// WorkerInvariant evaluates produce at the baseline worker count and at
// every variant, failing the test when a variant's result is not deeply
// equal to the baseline's. The baseline result is returned so callers
// can chain further checks (e.g. compare against a reference
// implementation).
func WorkerInvariant[T any](t testing.TB, baseline int, variants []int, produce func(workers int) T) T {
	t.Helper()
	want := produce(baseline)
	for _, w := range variants {
		got := produce(w)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d diverges from workers=%d baseline: %s", w, baseline, Diff(got, want))
		}
	}
	return want
}

// Diff renders a short description of where two values diverge. For
// slices it names the first differing index (or the length mismatch);
// for anything else it prints both values.
func Diff(got, want any) string {
	gv, wv := reflect.ValueOf(got), reflect.ValueOf(want)
	if gv.Kind() == reflect.Slice && wv.Kind() == reflect.Slice && gv.Type() == wv.Type() {
		if gv.Len() != wv.Len() {
			return fmt.Sprintf("length %d vs %d", gv.Len(), wv.Len())
		}
		for i := 0; i < gv.Len(); i++ {
			a, b := gv.Index(i).Interface(), wv.Index(i).Interface()
			if !reflect.DeepEqual(a, b) {
				return fmt.Sprintf("first divergence at index %d: %+v vs %+v", i, a, b)
			}
		}
		return "equal"
	}
	if reflect.DeepEqual(got, want) {
		return "equal"
	}
	return fmt.Sprintf("%+v vs %+v", got, want)
}
