package testkit

import (
	"strings"
	"testing"
)

// recordTB captures Errorf calls so the failure path of the helpers can
// be exercised without failing this test.
type recordTB struct {
	testing.TB
	errs []string
}

func (r *recordTB) Helper() {}
func (r *recordTB) Errorf(format string, args ...any) {
	r.errs = append(r.errs, strings.TrimSpace(format))
}

func TestWorkerInvariantPasses(t *testing.T) {
	calls := 0
	got := WorkerInvariant(t, 1, []int{2, 4}, func(workers int) []int {
		calls++
		return []int{10, 20, 30}
	})
	if calls != 3 {
		t.Errorf("produce called %d times, want 3 (baseline + 2 variants)", calls)
	}
	if len(got) != 3 || got[0] != 10 {
		t.Errorf("baseline result not returned: %v", got)
	}
}

func TestWorkerInvariantFlagsDivergence(t *testing.T) {
	rec := &recordTB{TB: t}
	WorkerInvariant(rec, 1, []int{2, 4}, func(workers int) []int {
		if workers == 4 {
			return []int{10, 99, 30}
		}
		return []int{10, 20, 30}
	})
	if len(rec.errs) != 1 {
		t.Fatalf("%d errors recorded, want exactly 1 (only workers=4 diverges): %v", len(rec.errs), rec.errs)
	}
}

func TestSeedMatrixVisitsEverySeed(t *testing.T) {
	var visited []int64
	SeedMatrix(t, []int64{3, 1, 2}, func(t *testing.T, seed int64) {
		visited = append(visited, seed)
	})
	if len(visited) != 3 || visited[0] != 3 || visited[1] != 1 || visited[2] != 2 {
		t.Errorf("visited %v, want [3 1 2] in order", visited)
	}
}

func TestDiff(t *testing.T) {
	cases := []struct {
		got, want any
		contains  string
	}{
		{[]int{1, 2, 3}, []int{1, 9, 3}, "index 1"},
		{[]int{1}, []int{1, 2}, "length 1 vs 2"},
		{[]int{1, 2}, []int{1, 2}, "equal"},
		{"a", "b", "a vs b"},
		{5, 5, "equal"},
	}
	for _, tc := range cases {
		if got := Diff(tc.got, tc.want); !strings.Contains(got, tc.contains) {
			t.Errorf("Diff(%v, %v) = %q, want it to mention %q", tc.got, tc.want, got, tc.contains)
		}
	}
}
