package hypo

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Tier selectors accepted wherever an experiment id is: they expand to
// every registered experiment of the class (or all of them).
const (
	SelAll           = "all"
	SelDeterministic = "deterministic"
	SelStatistical   = "statistical"
)

// Spec is one parsed run selector: which experiment(s) to run and the
// per-run overrides. The textual form (cmd/hypo's -run flag) is
//
//	sel[?seeds=S1:S2:...][&min_effect=F]
//
// where sel is an experiment id or a tier selector (all,
// deterministic, statistical); comma separates multiple specs. Example:
//
//	deterministic,H3-trim-recovery?seeds=7:8:9&min_effect=0.25
type Spec struct {
	// Sel is the experiment id or tier selector.
	Sel string
	// Seeds overrides the experiment's seed set when non-empty.
	Seeds []int64
	// MinEffect overrides the experiment's consistency floor when
	// positive.
	MinEffect float64
}

// IsTier reports whether the spec selects by tier rather than by id.
func (s Spec) IsTier() bool {
	return s.Sel == SelAll || s.Sel == SelDeterministic || s.Sel == SelStatistical
}

// String renders the spec in the form ParseSpecs accepts; parsing the
// result yields an equal Spec.
func (s Spec) String() string {
	var b strings.Builder
	b.WriteString(s.Sel)
	sep := byte('?')
	if len(s.Seeds) > 0 {
		parts := make([]string, len(s.Seeds))
		for i, v := range s.Seeds {
			parts[i] = strconv.FormatInt(v, 10)
		}
		b.WriteByte(sep)
		sep = '&'
		b.WriteString("seeds=" + strings.Join(parts, ":"))
	}
	if s.MinEffect > 0 {
		b.WriteByte(sep)
		b.WriteString("min_effect=" + strconv.FormatFloat(s.MinEffect, 'g', -1, 64))
	}
	return b.String()
}

// ParseSpecs parses a comma-separated run-spec list. Empty input and
// empty list items are errors; so are unknown parameters, malformed
// numbers, and selectors that are neither a valid id nor a tier.
func ParseSpecs(in string) ([]Spec, error) {
	if strings.TrimSpace(in) == "" {
		return nil, fmt.Errorf("hypo: empty run spec")
	}
	var out []Spec
	for _, item := range strings.Split(in, ",") {
		sp, err := parseSpec(strings.TrimSpace(item))
		if err != nil {
			return nil, err
		}
		out = append(out, sp)
	}
	return out, nil
}

func parseSpec(item string) (Spec, error) {
	var sp Spec
	if item == "" {
		return sp, fmt.Errorf("hypo: empty spec item")
	}
	sel, params, hasParams := strings.Cut(item, "?")
	sp.Sel = sel
	if !ValidID(sel) {
		return sp, fmt.Errorf("hypo: bad selector %q (want an experiment id or all/deterministic/statistical)", sel)
	}
	if !hasParams {
		return sp, nil
	}
	if params == "" {
		return sp, fmt.Errorf("hypo: %q has an empty parameter list", item)
	}
	for _, p := range strings.Split(params, "&") {
		key, val, ok := strings.Cut(p, "=")
		if !ok || val == "" {
			return sp, fmt.Errorf("hypo: malformed parameter %q in %q", p, item)
		}
		switch key {
		case "seeds":
			seeds, err := ParseSeeds(val)
			if err != nil {
				return sp, fmt.Errorf("hypo: %q: %w", item, err)
			}
			sp.Seeds = seeds
		case "min_effect":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 || f != f {
				return sp, fmt.Errorf("hypo: %q: min_effect %q must be a positive number", item, val)
			}
			sp.MinEffect = f
		default:
			return sp, fmt.Errorf("hypo: unknown parameter %q in %q", key, item)
		}
	}
	return sp, nil
}

// ParseSeeds parses a seed list separated by ':' (the in-spec form) or
// ',' (the -seeds flag form). Duplicate seeds are rejected — a
// statistical verdict over repeated seeds would double-count evidence.
func ParseSeeds(s string) ([]int64, error) {
	sep := ":"
	if strings.Contains(s, ",") {
		sep = ","
	}
	parts := strings.Split(s, sep)
	seeds := make([]int64, 0, len(parts))
	seen := make(map[int64]bool, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", p)
		}
		if seen[v] {
			return nil, fmt.Errorf("duplicate seed %d", v)
		}
		seen[v] = true
		seeds = append(seeds, v)
	}
	return seeds, nil
}

// Registry holds named experiments in registration order.
type Registry struct {
	byID map[string]*Experiment
	exps []*Experiment
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*Experiment)}
}

// Register validates and adds an experiment. Tier selectors and
// duplicate ids are rejected.
func (r *Registry) Register(e *Experiment) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if (Spec{Sel: e.ID}).IsTier() {
		return fmt.Errorf("hypo: experiment id %q collides with a tier selector", e.ID)
	}
	if _, dup := r.byID[e.ID]; dup {
		return fmt.Errorf("hypo: duplicate experiment id %q", e.ID)
	}
	r.byID[e.ID] = e
	r.exps = append(r.exps, e)
	return nil
}

// MustRegister is Register that panics on error (registry seeding).
func (r *Registry) MustRegister(e *Experiment) {
	if err := r.Register(e); err != nil {
		panic(err)
	}
}

// Get returns the experiment with the given id.
func (r *Registry) Get(id string) (*Experiment, bool) {
	e, ok := r.byID[id]
	return e, ok
}

// List returns every experiment in registration order.
func (r *Registry) List() []*Experiment {
	return append([]*Experiment(nil), r.exps...)
}

// Tier returns the experiments of one class, in registration order.
func (r *Registry) Tier(c Class) []*Experiment {
	var out []*Experiment
	for _, e := range r.exps {
		if e.Class == c {
			out = append(out, e)
		}
	}
	return out
}

// Select resolves parsed specs against the registry into (experiment,
// override) pairs, deduplicating by id: the first spec mentioning an
// experiment wins, so `H3?seeds=7:8:9,all` runs H3 with the override
// and the rest with their defaults.
func (r *Registry) Select(specs []Spec) ([]Selection, error) {
	var out []Selection
	seen := make(map[string]bool)
	add := func(e *Experiment, sp Spec) {
		if seen[e.ID] {
			return
		}
		seen[e.ID] = true
		out = append(out, Selection{Experiment: e, Seeds: sp.Seeds, MinEffect: sp.MinEffect})
	}
	for _, sp := range specs {
		switch sp.Sel {
		case SelAll:
			for _, e := range r.exps {
				add(e, sp)
			}
		case SelDeterministic, SelStatistical:
			class := Deterministic
			if sp.Sel == SelStatistical {
				class = Statistical
			}
			for _, e := range r.Tier(class) {
				add(e, sp)
			}
		default:
			e, ok := r.Get(sp.Sel)
			if !ok {
				return nil, fmt.Errorf("hypo: unknown experiment %q (have: %s)", sp.Sel, strings.Join(r.ids(), ", "))
			}
			add(e, sp)
		}
	}
	return out, nil
}

// Selection is one resolved (experiment, overrides) pair.
type Selection struct {
	Experiment *Experiment
	Seeds      []int64
	MinEffect  float64
}

// Execute runs the selection: the experiment under its overrides.
func (s Selection) Execute(ctx context.Context) (*Findings, error) {
	e := s.Experiment
	if s.MinEffect > 0 {
		// Copy so a per-run floor never leaks into the registry.
		cp := *e
		cp.MinEffect = s.MinEffect
		e = &cp
	}
	return e.Execute(ctx, s.Seeds)
}

func (r *Registry) ids() []string {
	ids := make([]string, 0, len(r.exps))
	for _, e := range r.exps {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}
