package hypo

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// fixedExp returns a statistical experiment whose per-seed measurements
// are scripted by ms (keyed by seed).
func fixedExp(class Class, ms map[int64]Measurement) *Experiment {
	return &Experiment{
		ID:    "T-fixed",
		Claim: "scripted measurements behave as declared",
		Class: class,
		Run: func(_ context.Context, seed int64) (Measurement, error) {
			m, ok := ms[seed]
			if !ok {
				return Measurement{}, fmt.Errorf("no script for seed %d", seed)
			}
			return m, nil
		},
	}
}

func TestVerdictRulesStatistical(t *testing.T) {
	cases := []struct {
		name    string
		ms      map[int64]Measurement
		verdict Verdict
	}{
		{
			name: "confirmed when direction and effect hold everywhere",
			ms: map[int64]Measurement{
				1: {Holds: true, Effect: 0.5},
				2: {Holds: true, Effect: 0.9},
				3: {Holds: true, Effect: 0.21},
			},
			verdict: Confirmed,
		},
		{
			name: "refuted on any direction failure",
			ms: map[int64]Measurement{
				1: {Holds: true, Effect: 0.5},
				2: {Holds: false, Effect: 0.5},
				3: {Holds: true, Effect: 0.5},
			},
			verdict: Refuted,
		},
		{
			name: "inconclusive when effect falls below the floor",
			ms: map[int64]Measurement{
				1: {Holds: true, Effect: 0.5},
				2: {Holds: true, Effect: 0.05},
				3: {Holds: true, Effect: 0.5},
			},
			verdict: Inconclusive,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := fixedExp(Statistical, tc.ms).Execute(context.Background(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if f.Verdict != tc.verdict {
				t.Errorf("verdict %s (%s), want %s", f.Verdict, f.Reason, tc.verdict)
			}
			if len(f.Measurements) != 3 {
				t.Errorf("%d measurements, want 3", len(f.Measurements))
			}
		})
	}
}

func TestVerdictRulesDeterministic(t *testing.T) {
	ok := fixedExp(Deterministic, map[int64]Measurement{1: {Holds: true, Effect: 1}})
	f, err := ok.Execute(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Verdict != Confirmed {
		t.Errorf("verdict %s, want confirmed", f.Verdict)
	}
	if len(f.Measurements) != 1 {
		t.Errorf("deterministic experiment measured %d seeds, want exactly 1", len(f.Measurements))
	}
	if f.MinEffect != 0 {
		t.Errorf("deterministic findings carry MinEffect %g, want 0", f.MinEffect)
	}

	bad := fixedExp(Deterministic, map[int64]Measurement{1: {Holds: false, Note: "boom"}})
	f, err = bad.Execute(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Verdict != Refuted {
		t.Errorf("violated invariant: verdict %s, want refuted", f.Verdict)
	}
	if !strings.Contains(f.Reason, "boom") {
		t.Errorf("reason %q does not carry the measurement note", f.Reason)
	}
}

func TestRunErrorIsInconclusive(t *testing.T) {
	e := &Experiment{
		ID:    "T-err",
		Claim: "errors mark the execution inconclusive",
		Class: Statistical,
		Run: func(_ context.Context, seed int64) (Measurement, error) {
			if seed == 2 {
				return Measurement{}, errors.New("instrument offline")
			}
			return Measurement{Holds: true, Effect: 1}, nil
		},
	}
	f, err := e.Execute(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Verdict != Inconclusive {
		t.Errorf("verdict %s (%s), want inconclusive", f.Verdict, f.Reason)
	}
	if !strings.Contains(f.Reason, "instrument offline") {
		t.Errorf("reason %q does not name the failure", f.Reason)
	}
}

func TestCancelledContextIsInconclusive(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := fixedExp(Statistical, map[int64]Measurement{1: {Holds: true, Effect: 1}})
	e.Run = func(ctx context.Context, seed int64) (Measurement, error) {
		return Measurement{Holds: true, Effect: 1}, ctx.Err()
	}
	f, err := e.Execute(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Verdict != Inconclusive {
		t.Errorf("verdict %s, want inconclusive under a cancelled context", f.Verdict)
	}
}

func TestSeedPolicy(t *testing.T) {
	stat := fixedExp(Statistical, map[int64]Measurement{
		4: {Holds: true, Effect: 1}, 5: {Holds: true, Effect: 1}, 6: {Holds: true, Effect: 1},
	})
	// Too few seeds for a statistical claim.
	if _, err := stat.Execute(context.Background(), []int64{4, 5}); err == nil {
		t.Error("2-seed statistical execution accepted")
	}
	f, err := stat.Execute(context.Background(), []int64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.Seeds, []int64{4, 5, 6}) {
		t.Errorf("seeds %v, want the override", f.Seeds)
	}

	det := fixedExp(Deterministic, map[int64]Measurement{9: {Holds: true}})
	f, err = det.Execute(context.Background(), []int64{9, 10, 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Seeds) != 1 || f.Seeds[0] != 9 {
		t.Errorf("deterministic override seeds %v, want [9]", f.Seeds)
	}
}

func TestExperimentValidate(t *testing.T) {
	run := func(context.Context, int64) (Measurement, error) { return Measurement{}, nil }
	valid := &Experiment{ID: "X1", Claim: "c", Class: Deterministic, Run: run}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid experiment rejected: %v", err)
	}
	bad := []*Experiment{
		nil,
		{ID: "", Claim: "c", Class: Deterministic, Run: run},
		{ID: "bad id", Claim: "c", Class: Deterministic, Run: run},
		{ID: "X1", Claim: "", Class: Deterministic, Run: run},
		{ID: "X1", Claim: "c", Class: "fuzzy", Run: run},
		{ID: "X1", Claim: "c", Class: Deterministic},
		{ID: "X1", Claim: "c", Class: Deterministic, Run: run, MinEffect: -1},
		{ID: "X1", Claim: "c", Class: Statistical, Run: run, Seeds: []int64{1, 2}},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("invalid experiment %d accepted", i)
		}
	}
}

func TestFindingsWriteAndStrip(t *testing.T) {
	e := fixedExp(Deterministic, map[int64]Measurement{1: {
		Holds:   true,
		Effect:  1,
		Values:  map[string]float64{"checks": 3},
		Timings: map[string]float64{"run_ns": 12345},
		Note:    "all good",
	}})
	f, err := e.Execute(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Manifest.CreatedAt = "2026-08-07T00:00:00Z"
	f.Manifest.Git = "abc123"

	dir := t.TempDir()
	sub, err := f.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sub != filepath.Join(dir, e.ID) {
		t.Errorf("wrote to %s, want %s", sub, filepath.Join(dir, e.ID))
	}
	data, err := os.ReadFile(filepath.Join(sub, "FINDINGS.json"))
	if err != nil {
		t.Fatal(err)
	}
	var back Findings
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("FINDINGS.json does not round-trip: %v", err)
	}
	if back.Verdict != Confirmed || back.ID != e.ID || back.Manifest == nil {
		t.Errorf("round-tripped findings lost fields: %+v", back)
	}
	md, err := os.ReadFile(filepath.Join(sub, "FINDINGS.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CONFIRMED", e.Claim, "| 1 | true |", "abc123"} {
		if !strings.Contains(string(md), want) {
			t.Errorf("FINDINGS.md missing %q:\n%s", want, md)
		}
	}

	stripped := f.StripTimings()
	if stripped.Manifest.CreatedAt != "" || stripped.Manifest.WallNs != 0 {
		t.Error("manifest timings survived StripTimings")
	}
	for _, m := range stripped.Measurements {
		if m.WallNs != 0 || m.Timings != nil {
			t.Errorf("measurement timings survived StripTimings: %+v", m)
		}
		if m.Values["checks"] != 3 {
			t.Error("deterministic values did not survive StripTimings")
		}
	}
	// The original must be untouched (StripTimings copies).
	if f.Measurements[0].Timings == nil || f.Manifest.CreatedAt == "" {
		t.Error("StripTimings mutated the original findings")
	}

	// Invalid ids never touch the filesystem.
	f.ID = "../escape"
	if _, err := f.Write(dir); err == nil {
		t.Error("findings with a path-escaping id written")
	}
}

func TestRegistrySelect(t *testing.T) {
	run := func(context.Context, int64) (Measurement, error) { return Measurement{Holds: true, Effect: 1}, nil }
	r := NewRegistry()
	for _, e := range []*Experiment{
		{ID: "D1", Claim: "c", Class: Deterministic, Run: run},
		{ID: "S1", Claim: "c", Class: Statistical, Run: run},
		{ID: "S2", Claim: "c", Class: Statistical, Run: run},
	} {
		if err := r.Register(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Register(&Experiment{ID: "D1", Claim: "c", Class: Deterministic, Run: run}); err == nil {
		t.Error("duplicate id registered")
	}
	if err := r.Register(&Experiment{ID: "all", Claim: "c", Class: Deterministic, Run: run}); err == nil {
		t.Error("tier-selector id registered")
	}

	sel := func(spec string) []string {
		t.Helper()
		specs, err := ParseSpecs(spec)
		if err != nil {
			t.Fatal(err)
		}
		picked, err := r.Select(specs)
		if err != nil {
			t.Fatal(err)
		}
		var ids []string
		for _, s := range picked {
			ids = append(ids, s.Experiment.ID)
		}
		return ids
	}
	if got := sel("all"); !reflect.DeepEqual(got, []string{"D1", "S1", "S2"}) {
		t.Errorf("all -> %v", got)
	}
	if got := sel("deterministic"); !reflect.DeepEqual(got, []string{"D1"}) {
		t.Errorf("deterministic -> %v", got)
	}
	if got := sel("statistical"); !reflect.DeepEqual(got, []string{"S1", "S2"}) {
		t.Errorf("statistical -> %v", got)
	}
	if got := sel("S2,D1"); !reflect.DeepEqual(got, []string{"S2", "D1"}) {
		t.Errorf("explicit list -> %v", got)
	}
	// First mention wins: the override sticks, `all` fills the rest.
	specs, err := ParseSpecs("S1?seeds=7:8:9,all")
	if err != nil {
		t.Fatal(err)
	}
	picked, err := r.Select(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 3 || picked[0].Experiment.ID != "S1" || len(picked[0].Seeds) != 3 {
		t.Errorf("override+all selection wrong: %+v", picked)
	}
	for _, s := range picked[1:] {
		if s.Seeds != nil {
			t.Errorf("override leaked to %s", s.Experiment.ID)
		}
	}

	if _, err := r.Select([]Spec{{Sel: "NOPE"}}); err == nil {
		t.Error("unknown experiment selected")
	}
}

func TestSelectionMinEffectOverride(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(&Experiment{
		ID: "S1", Claim: "c", Class: Statistical,
		Run: func(context.Context, int64) (Measurement, error) {
			return Measurement{Holds: true, Effect: 0.3}, nil
		},
	})
	e, _ := r.Get("S1")
	// Effect 0.3 confirms at the default 0.2 floor...
	f, err := Selection{Experiment: e}.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if f.Verdict != Confirmed {
		t.Fatalf("default floor: verdict %s", f.Verdict)
	}
	// ...but is inconclusive at a 0.5 floor, without mutating the registry.
	f, err = Selection{Experiment: e, MinEffect: 0.5}.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if f.Verdict != Inconclusive {
		t.Errorf("raised floor: verdict %s, want inconclusive", f.Verdict)
	}
	if e.MinEffect != 0 {
		t.Errorf("selection override mutated the registered experiment (MinEffect %g)", e.MinEffect)
	}
}
