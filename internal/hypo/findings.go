package hypo

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FindingsSchema versions the FINDINGS.json layout.
const FindingsSchema = 1

// Findings is the recorded outcome of one experiment execution: the
// claim, the verdict under the class's rules, every per-seed
// measurement, and the run manifest. It is what lands in
// hypotheses/<id>/FINDINGS.json (and, rendered, FINDINGS.md).
type Findings struct {
	Schema  int     `json:"schema"`
	ID      string  `json:"id"`
	Claim   string  `json:"claim"`
	Class   Class   `json:"class"`
	Verdict Verdict `json:"verdict"`
	// Reason is the one-line justification of the verdict.
	Reason string `json:"reason"`
	// MinEffect is the consistency floor the verdict applied
	// (statistical only; 0 for deterministic experiments).
	MinEffect    float64       `json:"min_effect,omitempty"`
	Seeds        []int64       `json:"seeds"`
	Measurements []Measurement `json:"measurements"`
	Manifest     *Manifest     `json:"manifest"`
}

// JSON renders the findings as stable, indented JSON (map keys sort,
// measurements keep seed order).
func (f *Findings) JSON() ([]byte, error) {
	return json.MarshalIndent(f, "", "  ")
}

// StripTimings returns a copy with every timing field removed: the
// manifest's clock and wall time, per-measurement wall times and
// Timings maps. Values, Holds, Effect and the verdict survive, so for
// a deterministic experiment (whose measurements derive those from
// deterministic data only) two executions strip to byte-identical
// JSON — the reproducibility property `make experiments` re-checks.
func (f *Findings) StripTimings() *Findings {
	out := *f
	out.Manifest = f.Manifest.StripTimings()
	out.Measurements = append([]Measurement(nil), f.Measurements...)
	for i := range out.Measurements {
		out.Measurements[i].WallNs = 0
		out.Measurements[i].Timings = nil
	}
	return &out
}

// Markdown renders the findings as a human-readable report.
func (f *Findings) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n\n", f.ID, strings.ToUpper(string(f.Verdict)))
	fmt.Fprintf(&b, "**Claim.** %s\n\n", f.Claim)
	fmt.Fprintf(&b, "**Class.** %s", f.Class)
	if f.Class == Statistical {
		fmt.Fprintf(&b, " (%d seeds, consistency floor %.0f%%)", len(f.Seeds), f.MinEffect*100)
	}
	b.WriteString("\n\n")
	fmt.Fprintf(&b, "**Verdict.** %s — %s\n\n", f.Verdict, f.Reason)

	b.WriteString("| seed | holds | effect | observations |\n")
	b.WriteString("|---:|:---:|---:|:---|\n")
	for _, m := range f.Measurements {
		fmt.Fprintf(&b, "| %d | %v | %.3f | %s |\n", m.Seed, m.Holds, m.Effect, m.describe())
	}
	b.WriteString("\n")

	if m := f.Manifest; m != nil {
		fmt.Fprintf(&b, "Run manifest: schema %d", m.Schema)
		if m.Git != "" {
			fmt.Fprintf(&b, ", git %s", m.Git)
		}
		fmt.Fprintf(&b, ", %s %s/%s, %d CPUs", m.Env.GoVersion, m.Env.GOOS, m.Env.GOARCH, m.Env.NumCPU)
		if m.CreatedAt != "" {
			fmt.Fprintf(&b, ", %s", m.CreatedAt)
		}
		b.WriteString(".\n")
	}
	return b.String()
}

// describe renders a measurement's values (sorted by key, deterministic
// first) plus its note.
func (m Measurement) describe() string {
	var parts []string
	for _, kv := range sortedKeys(m.Values) {
		parts = append(parts, fmt.Sprintf("%s=%g", kv, m.Values[kv]))
	}
	for _, kv := range sortedKeys(m.Timings) {
		// Only *_ns keys are nanosecond quantities; derived timing
		// values (ratios like speedup_x) print bare.
		if strings.HasSuffix(kv, "_ns") {
			parts = append(parts, fmt.Sprintf("%s=%.0fns", kv, m.Timings[kv]))
		} else {
			parts = append(parts, fmt.Sprintf("%s=%g", kv, m.Timings[kv]))
		}
	}
	if m.Note != "" {
		parts = append(parts, m.Note)
	}
	if len(parts) == 0 {
		return "—"
	}
	return strings.Join(parts, ", ")
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Write stores the findings under dir/<id>/ as FINDINGS.json and
// FINDINGS.md, creating directories as needed, and returns the
// directory it wrote.
func (f *Findings) Write(dir string) (string, error) {
	if !ValidID(f.ID) {
		return "", fmt.Errorf("hypo: refusing to write findings with invalid id %q", f.ID)
	}
	sub := filepath.Join(dir, f.ID)
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return "", err
	}
	data, err := f.JSON()
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(sub, "FINDINGS.json"), append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(sub, "FINDINGS.md"), []byte(f.Markdown()), 0o644); err != nil {
		return "", err
	}
	return sub, nil
}
