//go:build race

package hypo

// raceEnabled reports whether this binary was built with the race
// detector. Its instrumentation slows code unevenly (small hot paths
// pay proportionally more), so timing-based statistical experiments
// are skipped under it.
const raceEnabled = true
