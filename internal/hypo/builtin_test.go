package hypo

import (
	"context"
	"encoding/json"
	"testing"
)

// TestBuiltinRegistryShape: the shipped registry must hold at least
// five experiments, at least two deterministic and three statistical —
// the floor the `make experiments` target documents.
func TestBuiltinRegistryShape(t *testing.T) {
	r := Builtin()
	all := r.List()
	if len(all) < 5 {
		t.Fatalf("builtin registry has %d experiments, want >= 5", len(all))
	}
	if det := r.Tier(Deterministic); len(det) < 2 {
		t.Errorf("deterministic tier has %d experiments, want >= 2", len(det))
	}
	if st := r.Tier(Statistical); len(st) < 3 {
		t.Errorf("statistical tier has %d experiments, want >= 3", len(st))
	}
	for _, e := range all {
		if err := e.Validate(); err != nil {
			t.Errorf("%s: %v", e.ID, err)
		}
	}
}

// TestDeterministicTierConfirms: the deterministic experiments are the
// CI tier — they must confirm, and re-running them must produce
// byte-identical stripped findings (the reproducibility property the
// FINDINGS artifacts advertise).
func TestDeterministicTierConfirms(t *testing.T) {
	r := Builtin()
	for _, e := range r.Tier(Deterministic) {
		first, err := e.Execute(context.Background(), nil)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if first.Verdict != Confirmed {
			t.Fatalf("%s: verdict %s (%s), want confirmed", e.ID, first.Verdict, first.Reason)
		}
		second, err := e.Execute(context.Background(), nil)
		if err != nil {
			t.Fatalf("%s rerun: %v", e.ID, err)
		}
		a, err := first.StripTimings().JSON()
		if err != nil {
			t.Fatal(err)
		}
		b, err := second.StripTimings().JSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s: stripped findings differ across reruns:\n%s\n---\n%s", e.ID, a, b)
		}
	}
}

// TestStatisticalTierConfirms runs the statistical tier at its default
// seeds and requires every claim to confirm — these are the claims the
// repository's documentation already asserts.
func TestStatisticalTierConfirms(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical tier is slow; run without -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews the warm/cold timing ratios the statistical tier measures")
	}
	r := Builtin()
	for _, e := range r.Tier(Statistical) {
		f, err := e.Execute(context.Background(), nil)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		data, _ := json.Marshal(f.Measurements)
		if f.Verdict != Confirmed {
			t.Errorf("%s: verdict %s (%s)\nmeasurements: %s", e.ID, f.Verdict, f.Reason, data)
		}
		if len(f.Measurements) < MinStatisticalSeeds {
			t.Errorf("%s: %d measurements, want >= %d", e.ID, len(f.Measurements), MinStatisticalSeeds)
		}
		t.Logf("%s: %s — %s", e.ID, f.Verdict, f.Reason)
	}
}
