package hypo

import (
	"runtime"

	youtiao "repro"
)

// ManifestSchema versions the experiment run-manifest layout.
const ManifestSchema = 1

// Manifest is the reproducibility record of one experiment execution,
// the hypothesis-level counterpart of the design-run manifest
// (youtiao.Manifest): what ran (experiment id, class, seeds), where
// (toolchain and machine, reusing youtiao.ManifestEnv), when and from
// which tree. Two executions of a deterministic experiment on one
// machine produce manifests whose StripTimings forms are byte-identical.
type Manifest struct {
	Schema int `json:"schema"`
	// CreatedAt is an RFC 3339 timestamp, set by the harness (timing —
	// stripped by StripTimings).
	CreatedAt string `json:"created_at,omitempty"`
	// Git is the producing tree's `git describe --always --dirty`
	// output when the harness could resolve it.
	Git string `json:"git,omitempty"`
	// Experiment and Class identify the hypothesis.
	Experiment string `json:"experiment"`
	Class      Class  `json:"class"`
	// Seeds is the executed seed set, in run order.
	Seeds []int64 `json:"seeds"`
	// Env is the execution environment (shared schema with the design
	// manifest; Workers is not meaningful here and stays 0).
	Env youtiao.ManifestEnv `json:"env"`
	// WallNs is the execution's total wall time (stripped).
	WallNs int64 `json:"wall_ns,omitempty"`
}

// NewManifest assembles the manifest of one execution. CreatedAt, Git
// and WallNs start empty; Execute fills WallNs and the harness fills
// the clock and VCS fields.
func NewManifest(e *Experiment, seeds []int64) *Manifest {
	return &Manifest{
		Schema:     ManifestSchema,
		Experiment: e.ID,
		Class:      e.Class,
		Seeds:      append([]int64(nil), seeds...),
		Env: youtiao.ManifestEnv{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
	}
}

// StripTimings returns a copy with the timing fields cleared.
func (m *Manifest) StripTimings() *Manifest {
	if m == nil {
		return nil
	}
	out := *m
	out.CreatedAt = ""
	out.WallNs = 0
	return &out
}
