package hypo

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"sync"
	"time"

	youtiao "repro"
	"repro/internal/chip"
	"repro/internal/crosstalk"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/fdm"
	"repro/internal/mlfit"
	"repro/internal/obs"
	"repro/internal/scalesim"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/xmon"
)

// Builtin experiment parameters. The chips are deliberately moderate —
// the claims under test are about structure (cache reuse, determinism,
// robust fitting), not absolute scale, and the deterministic tier runs
// on every CI push.
const (
	builtinChipSide = 5 // 25 qubits, 40 couplers
	// h1ChipSide is larger than the shared chip: the warm side re-runs
	// only the tdm stage, whose cost grows far slower than the full
	// pipeline's, so a bigger chip widens the cold/warm ratio and keeps
	// the measurement comfortably clear of its floor under timer noise.
	h1ChipSide = 7 // 49 qubits, 84 couplers
	// h1MinSpeedup is H1's predicted direction: the claim folklore says
	// ~1850x, the hypothesis requires >= 100x so the experiment stays
	// meaningful on slow shared runners.
	h1MinSpeedup = 100.0
	// h3Tolerance: the trimmed fit must land within 20% of the
	// fault-free CV error.
	h3Tolerance = 0.20
	// h4HitRateFloor is the stated stage-cache hit-rate floor under the
	// defect sweep (repeated rates re-use whole builds; distinct rates
	// share fabrication).
	h4HitRateFloor = 0.30
	// h9FairnessCap bounds the max/min per-tenant completion ratio of
	// the steady-state workload: sharing one cache must not starve any
	// tenant past 2x.
	h9FairnessCap = 2.0
)

func builtinChip() *chip.Chip { return chip.Square(builtinChipSide, builtinChipSide) }

// builtinFitConfig mirrors the pipeline's fast default fit (see
// experiments.Options.normalized) so H3 measures the configuration the
// design flow actually uses.
func builtinFitConfig() crosstalk.FitConfig {
	return crosstalk.FitConfig{
		WeightGrid: []float64{0, 0.25, 0.5, 1.0},
		Folds:      5,
		Forest: mlfit.ForestConfig{
			NumTrees: 12,
			Tree:     mlfit.TreeConfig{MaxDepth: 10, MinLeafSize: 4},
			Seed:     1,
		},
		Workers: 1,
	}
}

// Builtin returns the repository's experiment registry: the claims the
// codebase already makes (CHANGES.md PRs 1-5, EXPERIMENTS.md) turned
// into checked hypotheses.
func Builtin() *Registry {
	r := NewRegistry()
	r.MustRegister(&Experiment{
		ID:    "H1-warm-redesign",
		Claim: fmt.Sprintf("A warm Theta-only Redesign is >= %.0fx faster than a cold build at the same options and returns a bit-identical design.", h1MinSpeedup),
		Class: Statistical,
		Run:   runWarmRedesign,
	})
	r.MustRegister(&Experiment{
		ID:    "H2-worker-invariance",
		Claim: "The designed system and its stripped observability snapshot are bit-identical for Workers in {1, 4, 8}, and the scalesim sweep is slice-identical up to 1M qubits for any worker count.",
		Class: Deterministic,
		Run:   runWorkerInvariance,
	})
	r.MustRegister(&Experiment{
		ID:    "H3-trim-recovery",
		Claim: fmt.Sprintf("Under heavy-tailed outlier injection, TrimOutlierFraction recovers the crosstalk fit to within %.0f%% of the fault-free CV error.", h3Tolerance*100),
		Class: Statistical,
		Run:   runTrimRecovery,
	})
	r.MustRegister(&Experiment{
		ID:    "H4-cache-hit-rate",
		Claim: fmt.Sprintf("Across a defect sweep with repeated rates, the stage-cache hit rate measured from obs counters exceeds %.0f%%.", h4HitRateFloor*100),
		Class: Statistical,
		Run:   runCacheHitRate,
	})
	r.MustRegister(&Experiment{
		ID:    "H5-manifest-strip",
		Claim: "Manifest.StripTimings() of two independent, identically-configured runs is byte-identical, including stage report and observability snapshot.",
		Class: Deterministic,
		Run:   runManifestStrip,
	})
	r.MustRegister(&Experiment{
		ID:    "H6-serve-coalescing",
		Claim: fmt.Sprintf("%d concurrent identical design requests against youtiao-serve execute each pipeline stage exactly once and return byte-identical designs and stripped manifests.", h6Requests),
		Class: Deterministic,
		Run:   runServeCoalescing,
	})
	r.MustRegister(&Experiment{
		ID:    "H7-sparse-anneal",
		Claim: fmt.Sprintf("The sparse neighbor-list anneal returns plans and objectives bit-identical to the FullScan reference across %d anneal seeds on a distance-cutoff crosstalk model.", h7AnnealSeeds),
		Class: Deterministic,
		Run:   runSparseAnnealEquiv,
	})
	r.MustRegister(&Experiment{
		ID:    "H8-disk-warm-restart",
		Claim: "A cold process over a warm disk cache reproduces the in-memory design and stripped manifest byte-identically, recalling every stage from disk with zero re-executions.",
		Class: Deterministic,
		Run:   runDiskWarmRestart,
	})
	r.MustRegister(&Experiment{
		ID: "H9-workload-fairness",
		Claim: fmt.Sprintf("Replaying the steady-state multi-tenant workload through one shared cache yields a stage-cache hit rate >= %.0f%% while per-tenant completions stay within %.0fx of each other, identically at any dispatch worker count.",
			h4HitRateFloor*100, h9FairnessCap),
		Class: Deterministic,
		Run:   runWorkloadFairness,
	})
	return r
}

// runWarmRedesign measures H1. Both designers see the same chip
// structure; the warm one is primed at Theta=4 so each swept redesign
// re-executes only the tdm stage, while the cold one builds everything.
// Both sides are timed min-of-N — the bench gate's policy: every
// scheduling disturbance inflates a sample, so the minimum is the
// noise-robust estimate of the true cost. Each warm sample uses a
// fresh Theta so the tdm stage genuinely re-runs instead of hitting
// the artifact cache.
func runWarmRedesign(ctx context.Context, seed int64) (Measurement, error) {
	var m Measurement
	base := youtiao.Options{Seed: seed, Workers: 1, Theta: 4, HasTheta: true}
	swept := base
	swept.Theta = 6

	h1Chip := func() *chip.Chip { return chip.Square(h1ChipSide, h1ChipSide) }
	warmD := youtiao.NewDesigner(h1Chip())
	if _, err := warmD.RedesignCtx(ctx, base); err != nil {
		return m, fmt.Errorf("priming build: %w", err)
	}

	coldNs := int64(0)
	var coldRes *youtiao.DesignResult
	for i := 0; i < 2; i++ {
		coldD := youtiao.NewDesigner(h1Chip())
		start := time.Now()
		res, err := coldD.RedesignCtx(ctx, swept)
		elapsed := time.Since(start).Nanoseconds()
		if err != nil {
			return m, fmt.Errorf("cold build: %w", err)
		}
		if coldRes == nil || elapsed < coldNs {
			coldNs = elapsed
		}
		if coldRes == nil {
			coldRes = res
		}
	}

	// The first warm sample (Theta=6) is the one compared bit-for-bit
	// against the cold build; the extra Thetas only tighten the timing.
	warmNs := int64(0)
	var warmRes *youtiao.DesignResult
	for i, theta := range []float64{6, 7, 8} {
		opts := swept
		opts.Theta = theta
		start := time.Now()
		res, err := warmD.RedesignCtx(ctx, opts)
		elapsed := time.Since(start).Nanoseconds()
		if err != nil {
			return m, fmt.Errorf("warm redesign (theta %g): %w", theta, err)
		}
		if i == 0 {
			warmRes = res
		}
		if i == 0 || elapsed < warmNs {
			warmNs = elapsed
		}
	}

	coldJSON, err := coldRes.ExportJSON()
	if err != nil {
		return m, err
	}
	warmJSON, err := warmRes.ExportJSON()
	if err != nil {
		return m, err
	}
	identical := bytes.Equal(coldJSON, warmJSON)
	speedup := float64(coldNs) / float64(warmNs)

	m.Holds = identical && speedup >= h1MinSpeedup
	// Effect is the fraction of cold work the warm path avoided
	// (timing-derived, as the claim itself is about time).
	m.Effect = 1 - float64(warmNs)/float64(coldNs)
	m.Values = map[string]float64{
		"identical": b2f(identical),
		"qubits":    float64(h1ChipSide * h1ChipSide),
	}
	m.Timings = map[string]float64{
		"cold_ns":   float64(coldNs),
		"warm_ns":   float64(warmNs),
		"speedup_x": speedup,
	}
	if !identical {
		m.Note = "warm redesign diverged from cold build"
	} else {
		m.Note = fmt.Sprintf("%.0fx warm speedup", speedup)
	}
	return m, nil
}

// runWorkerInvariance measures H2: the full design at Workers 1/4/8
// must export identical JSON, identical options digests and identical
// stripped observability snapshots, and the scalesim sweep must be
// slice-identical across worker counts at up-to-1M-qubit scale.
func runWorkerInvariance(ctx context.Context, seed int64) (Measurement, error) {
	var m Measurement
	workerSet := []int{1, 4, 8}
	mismatches := 0
	var refDesign, refObs []byte
	var refDigest string
	for i, w := range workerSet {
		reg := obs.New()
		opts := youtiao.Options{Seed: seed, Workers: w, Obs: reg}
		res, err := youtiao.DesignCtx(ctx, builtinChip(), opts)
		if err != nil {
			return m, fmt.Errorf("workers=%d: %w", w, err)
		}
		design, err := res.ExportJSON()
		if err != nil {
			return m, err
		}
		snap := reg.Snapshot().StripTimings()
		obsJSON, err := snap.JSON()
		if err != nil {
			return m, err
		}
		digest := opts.Digest()
		if i == 0 {
			refDesign, refObs, refDigest = design, obsJSON, digest
			continue
		}
		if !bytes.Equal(design, refDesign) {
			mismatches++
			m.Note = joinNote(m.Note, fmt.Sprintf("design differs at workers=%d", w))
		}
		if !bytes.Equal(obsJSON, refObs) {
			mismatches++
			m.Note = joinNote(m.Note, fmt.Sprintf("stripped obs snapshot differs at workers=%d", w))
		}
		if digest != refDigest {
			mismatches++
			m.Note = joinNote(m.Note, fmt.Sprintf("options digest differs at workers=%d", w))
		}
	}

	counts := []int{100, 5000, 100000, 1000000}
	want := scalesim.SweepWorkers(counts, 3.3, 1)
	sweepChecks := 0
	for _, w := range []int{4, 16} {
		sweepChecks++
		if !reflect.DeepEqual(scalesim.SweepWorkers(counts, 3.3, w), want) {
			mismatches++
			m.Note = joinNote(m.Note, fmt.Sprintf("scalesim sweep differs at workers=%d", w))
		}
	}

	m.Holds = mismatches == 0
	m.Effect = 1
	m.Values = map[string]float64{
		"worker_counts":   float64(len(workerSet)),
		"scalesim_points": float64(len(counts) * sweepChecks),
		"mismatches":      float64(mismatches),
	}
	if m.Note == "" {
		m.Note = fmt.Sprintf("identical across workers %v and %d scalesim worker counts", workerSet, sweepChecks)
	}
	return m, nil
}

// runTrimRecovery measures H3: a fault-injected calibration campaign
// (heavy-tailed outliers via faults.Measure) is fitted clean, dirty and
// trimmed; the trimmed CV error must land within h3Tolerance of the
// fault-free baseline, and the effect size is the fraction of the
// outlier damage the trim removed.
func runTrimRecovery(ctx context.Context, seed int64) (Measurement, error) {
	var m Measurement
	c := chip.Square(4, 4)
	dev := xmon.NewDevice(c, xmon.DefaultParams(), rand.New(rand.NewSource(seed)))
	clean := dev.MeasureSeeded(xmon.XY, 0.02, seed, 1)

	spec := faults.Spec{OutlierRate: 0.05}
	plan, err := faults.New(c, spec, seed)
	if err != nil {
		return m, err
	}
	corrupted, stats, err := faults.Measure(ctx, dev, xmon.XY, 0.02, seed, 1, 0, plan)
	if err != nil {
		return m, err
	}

	cfg := builtinFitConfig()
	cleanModel, err := crosstalk.FitCtx(ctx, c, clean, cfg)
	if err != nil {
		return m, fmt.Errorf("clean fit: %w", err)
	}
	dirtyModel, err := crosstalk.FitCtx(ctx, c, corrupted, cfg)
	if err != nil {
		return m, fmt.Errorf("dirty fit: %w", err)
	}
	trimCfg := cfg
	// The pipeline's own defense: trim twice the injection rate.
	trimCfg.TrimOutlierFraction = 2 * spec.OutlierRate
	trimmedModel, err := crosstalk.FitCtx(ctx, c, corrupted, trimCfg)
	if err != nil {
		return m, fmt.Errorf("trimmed fit: %w", err)
	}

	cvClean, cvDirty, cvTrimmed := cleanModel.CVError, dirtyModel.CVError, trimmedModel.CVError
	m.Holds = cvTrimmed <= cvClean*(1+h3Tolerance)
	if cvDirty > 0 {
		m.Effect = (cvDirty - cvTrimmed) / cvDirty
	}
	m.Values = map[string]float64{
		"cv_clean":          cvClean,
		"cv_dirty":          cvDirty,
		"cv_trimmed":        cvTrimmed,
		"outliers_injected": float64(stats.Outliers),
	}
	m.Note = fmt.Sprintf("trimmed/clean = %.3f (tolerance %.2f)", cvTrimmed/cvClean, 1+h3Tolerance)
	return m, nil
}

// runCacheHitRate measures H4: a defect sweep with repeated rates
// through one Designer must recall enough stages from the artifact
// store that the obs-counted hit rate clears the stated floor.
func runCacheHitRate(ctx context.Context, seed int64) (Measurement, error) {
	var m Measurement
	reg := obs.New()
	opts := youtiao.Options{Seed: seed, Workers: 1, Obs: reg}
	rates := []float64{0, 0.01, 0.01, 0.02, 0.02}
	points, err := experiments.DefectSweep(ctx, builtinChip(), rates, opts)
	if err != nil {
		return m, err
	}
	snap := reg.Snapshot()
	hits := float64(snap.Counters["stage/hits"])
	misses := float64(snap.Counters["stage/misses"])
	if hits+misses == 0 {
		return m, fmt.Errorf("no stage-cache traffic recorded")
	}
	rate := hits / (hits + misses)

	m.Holds = rate >= h4HitRateFloor
	m.Effect = (rate - h4HitRateFloor) / h4HitRateFloor
	m.Values = map[string]float64{
		"hits":     hits,
		"misses":   misses,
		"hit_rate": rate,
		"points":   float64(len(points)),
	}
	m.Note = fmt.Sprintf("hit rate %.2f over %d sweep points (floor %.2f)", rate, len(points), h4HitRateFloor)
	return m, nil
}

// runManifestStrip measures H5: two fully independent runs — fresh
// designer, fresh registry, process-global observation rerouted — at
// identical options must strip to byte-identical manifests even though
// their CreatedAt, wall times and latency quantiles differ.
func runManifestStrip(ctx context.Context, seed int64) (Measurement, error) {
	var m Measurement
	var blobs [][]byte
	for run := 0; run < 2; run++ {
		reg := youtiao.NewObservability()
		youtiao.Observe(reg)
		opts := youtiao.Options{Seed: seed, Workers: 1, Obs: reg, Faults: youtiao.UniformFaults(0.02)}
		designer := youtiao.NewDesigner(builtinChip())
		res, err := designer.RedesignCtx(ctx, opts)
		youtiao.Observe(nil)
		if err != nil {
			return m, fmt.Errorf("run %d: %w", run, err)
		}
		man := youtiao.NewManifest(res, opts)
		// Deliberately divergent timing fields: StripTimings must erase
		// exactly these.
		man.CreatedAt = time.Now().UTC().Format(time.RFC3339Nano)
		report := designer.StageReport()
		man.Stages = &report
		snap := reg.Snapshot()
		man.Obs = &snap
		blob, err := man.StripTimings().JSON()
		if err != nil {
			return m, err
		}
		blobs = append(blobs, blob)
	}
	identical := bytes.Equal(blobs[0], blobs[1])

	m.Holds = identical
	m.Effect = 1
	m.Values = map[string]float64{
		"runs":           2,
		"manifest_bytes": float64(len(blobs[0])),
		"identical":      b2f(identical),
	}
	if identical {
		m.Note = fmt.Sprintf("stripped manifests byte-identical (%d bytes)", len(blobs[0]))
	} else {
		m.Note = "stripped manifests differ between identical runs"
	}
	return m, nil
}

// h6Requests is the burst width of H6: enough concurrency to exceed
// the server's execution slots, so coalescing — not just caching — is
// what keeps executions at one per stage.
const h6Requests = 6

// runServeCoalescing measures H6: a burst of identical requests against
// an in-process serve.Server must coalesce onto single-flight stage
// executions (each stage executes exactly once, counted by the shared
// store's miss column) and every response must carry byte-identical
// designs and stripped manifests.
func runServeCoalescing(ctx context.Context, seed int64) (Measurement, error) {
	var m Measurement
	srv, err := serve.New(serve.Config{
		MaxInFlight: 2,
		MaxQueue:    h6Requests,
		QueueWait:   time.Minute,
		Logf:        func(string, ...any) {},
	})
	if err != nil {
		return m, err
	}
	h := srv.Handler()
	body := fmt.Sprintf(`{"topology": "square", "qubits": %d, "seed": %d}`,
		builtinChipSide*builtinChipSide, seed)

	recs := make([]*httptest.ResponseRecorder, h6Requests)
	var wg sync.WaitGroup
	for i := 0; i < h6Requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := httptest.NewRecorder()
			req := httptest.NewRequest("POST", "/v1/design", strings.NewReader(body))
			h.ServeHTTP(rec, req.WithContext(ctx))
			recs[i] = rec
		}(i)
	}
	wg.Wait()

	mismatches := 0
	var refDesign, refManifest []byte
	for i, rec := range recs {
		if rec.Code != 200 {
			return m, fmt.Errorf("request %d: status %d (%s)", i, rec.Code, rec.Body.String())
		}
		var resp serve.DesignResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			return m, fmt.Errorf("request %d: %w", i, err)
		}
		design, err := json.Marshal(resp.Design)
		if err != nil {
			return m, err
		}
		manifest, err := resp.Manifest.StripTimings().JSON()
		if err != nil {
			return m, err
		}
		if i == 0 {
			refDesign, refManifest = design, manifest
			continue
		}
		if !bytes.Equal(design, refDesign) {
			mismatches++
			m.Note = joinNote(m.Note, fmt.Sprintf("design differs at request %d", i))
		}
		if !bytes.Equal(manifest, refManifest) {
			mismatches++
			m.Note = joinNote(m.Note, fmt.Sprintf("stripped manifest differs at request %d", i))
		}
	}

	duplicateExecs := 0
	report := srv.Cache().StageReport()
	for _, st := range report.Stages {
		if st.Misses != 1 {
			duplicateExecs += st.Misses - 1
			m.Note = joinNote(m.Note, fmt.Sprintf("stage %s executed %d times", st.Name, st.Misses))
		}
	}
	if len(report.Stages) == 0 {
		return m, fmt.Errorf("no stage executions recorded")
	}

	m.Holds = mismatches == 0 && duplicateExecs == 0
	m.Effect = 1
	m.Values = map[string]float64{
		"requests":        h6Requests,
		"stages":          float64(len(report.Stages)),
		"mismatches":      float64(mismatches),
		"duplicate_execs": float64(duplicateExecs),
	}
	if m.Note == "" {
		m.Note = fmt.Sprintf("%d requests coalesced onto %d stage executions, responses byte-identical",
			h6Requests, len(report.Stages))
	}
	return m, nil
}

// h7AnnealSeeds is the number of independent anneal seeds H7 compares.
// Each seed drives a full proposal sequence, so divergence anywhere in
// the delta computation would desynchronize the RNG and cascade.
const h7AnnealSeeds = 3

// runSparseAnnealEquiv measures H7: fdm.Anneal's default sparse
// neighbor-list delta scan against its FullScan reference on a
// distance-cutoff crosstalk model — the regime the sparse path exists
// for, where most coefficients are exactly zero. For every seed the
// refined plan, the before/after objectives and the validated
// invariants must be bit-identical; a single float divergence would
// flip an accept decision and desynchronize every later RNG draw.
func runSparseAnnealEquiv(ctx context.Context, seed int64) (Measurement, error) {
	var m Measurement
	c := chip.Square(6, 6)
	n := c.NumQubits()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	// Crosstalk decays with physical distance and is exactly zero past
	// ~2 lattice pitches — the locality real fitted models exhibit.
	nn := c.PhysicalDistance(0, 1)
	cutoff := 2.1 * nn
	xt := func(i, j int) float64 {
		if i == j {
			return 0
		}
		d := c.PhysicalDistance(i, j)
		if d > cutoff {
			return 0
		}
		return 1e-3 * math.Exp(-d/nn)
	}
	nonzero := 0
	for _, q := range ids {
		for _, o := range ids {
			if o != q && xt(q, o) != 0 {
				nonzero++
			}
		}
	}

	g, err := fdm.Group(ids, 4, c.PhysicalDistance)
	if err != nil {
		return m, err
	}
	plan, err := fdm.Allocate(g, xt, fdm.DefaultAllocOptions())
	if err != nil {
		return m, err
	}

	mismatches := 0
	for i := 0; i < h7AnnealSeeds; i++ {
		if err := ctx.Err(); err != nil {
			return m, err
		}
		opts := fdm.DefaultAnnealOptions()
		opts.Seed = seed + int64(i)
		sparse, sb, sa, err := fdm.Anneal(plan, g, xt, opts)
		if err != nil {
			return m, fmt.Errorf("sparse anneal (seed %d): %w", opts.Seed, err)
		}
		opts.FullScan = true
		full, fb, fa, err := fdm.Anneal(plan, g, xt, opts)
		if err != nil {
			return m, fmt.Errorf("full-scan anneal (seed %d): %w", opts.Seed, err)
		}
		if sb != fb || sa != fa {
			mismatches++
			m.Note = joinNote(m.Note, fmt.Sprintf("objectives differ at seed %d: sparse %.17g->%.17g, full %.17g->%.17g", opts.Seed, sb, sa, fb, fa))
			continue
		}
		if !reflect.DeepEqual(sparse, full) {
			mismatches++
			m.Note = joinNote(m.Note, fmt.Sprintf("refined plans differ at seed %d", opts.Seed))
		}
	}

	m.Holds = mismatches == 0
	// Effect is the fraction of pair terms the sparse scan skips — the
	// work the equivalence makes free.
	total := n * (n - 1)
	m.Effect = 1 - float64(nonzero)/float64(total)
	m.Values = map[string]float64{
		"seeds":             h7AnnealSeeds,
		"qubits":            float64(n),
		"nonzero_pairs":     float64(nonzero),
		"total_pairs":       float64(total),
		"neighbor_fraction": float64(nonzero) / float64(total),
		"mismatches":        float64(mismatches),
	}
	if m.Note == "" {
		m.Note = fmt.Sprintf("bit-identical across %d seeds; sparse scan skips %.0f%% of pair terms",
			h7AnnealSeeds, m.Effect*100)
	}
	return m, nil
}

// h8Opts exercises the rich artifact variants — injected faults, a
// real partition, annealed allocation — so every stage codec is on the
// identity-critical path.
func h8Opts(seed int64) youtiao.Options {
	return youtiao.Options{
		Seed:                seed,
		Workers:             1,
		Faults:              youtiao.UniformFaults(0.02),
		AnnealSteps:         25,
		PartitionTargetSize: 9,
	}
}

// h8Artifacts renders one run's identity evidence: the exported design
// JSON and the stripped manifest (with the designer's stage report
// embedded, whose cache-provenance counters StripTimings erases).
func h8Artifacts(res *youtiao.DesignResult, opts youtiao.Options, report youtiao.StageReport) (design, manifest []byte, err error) {
	design, err = res.ExportJSON()
	if err != nil {
		return nil, nil, err
	}
	man := youtiao.NewManifest(res, opts)
	man.CreatedAt = time.Now().UTC().Format(time.RFC3339Nano)
	man.Stages = &report
	manifest, err = man.StripTimings().JSON()
	return design, manifest, err
}

// runDiskWarmRestart measures H8: designing through a persistent cache
// directory, restarting the process (a fresh SharedCache over the same
// directory, memory tier empty) and designing again must serve every
// stage from the disk tier, execute nothing, and reproduce the purely
// in-memory design and stripped manifest byte for byte.
func runDiskWarmRestart(ctx context.Context, seed int64) (Measurement, error) {
	var m Measurement
	opts := h8Opts(seed)

	// Reference: the purely in-memory run.
	memD := youtiao.NewDesigner(builtinChip())
	memRes, err := memD.RedesignCtx(ctx, opts)
	if err != nil {
		return m, fmt.Errorf("in-memory run: %w", err)
	}
	memDesign, memManifest, err := h8Artifacts(memRes, opts, memD.StageReport())
	if err != nil {
		return m, err
	}

	dir, err := os.MkdirTemp("", "youtiao-h8-")
	if err != nil {
		return m, err
	}
	defer os.RemoveAll(dir)
	cacheCfg := youtiao.CacheConfig{Dir: dir}

	// First process: executes everything, writes the warm tier.
	warm, err := youtiao.OpenSharedCache(cacheCfg)
	if err != nil {
		return m, err
	}
	if _, err := warm.Designer(builtinChip()).RedesignCtx(ctx, opts); err != nil {
		return m, fmt.Errorf("warm-write run: %w", err)
	}

	// "Restart": a fresh cache over the same directory. Its memory
	// tier is empty, so every recall must come from disk.
	cold, err := youtiao.OpenSharedCache(cacheCfg)
	if err != nil {
		return m, err
	}
	coldD := cold.Designer(builtinChip())
	coldRes, err := coldD.RedesignCtx(ctx, opts)
	if err != nil {
		return m, fmt.Errorf("disk-warm run: %w", err)
	}
	coldDesign, coldManifest, err := h8Artifacts(coldRes, opts, coldD.StageReport())
	if err != nil {
		return m, err
	}

	stages := len(experiments.PipelineStageGraph.Stages())
	rep := cold.StageReport()
	stats := cold.Stats()
	designIdentical := bytes.Equal(memDesign, coldDesign)
	manifestIdentical := bytes.Equal(memManifest, coldManifest)

	m.Holds = designIdentical && manifestIdentical &&
		rep.Misses == 0 && rep.DiskHits == stages && stats.DiskHits > 0
	m.Effect = 1
	m.Values = map[string]float64{
		"stages":             float64(stages),
		"disk_hits":          float64(rep.DiskHits),
		"reexecutions":       float64(rep.Misses),
		"disk_entries":       float64(stats.DiskEntries),
		"decode_errors":      float64(stats.DecodeErrors),
		"design_bytes":       float64(len(coldDesign)),
		"manifest_bytes":     float64(len(coldManifest)),
		"design_identical":   b2f(designIdentical),
		"manifest_identical": b2f(manifestIdentical),
	}
	switch {
	case !designIdentical:
		m.Note = "disk-warm design differs from the in-memory design"
	case !manifestIdentical:
		m.Note = "disk-warm stripped manifest differs from the in-memory one"
	case rep.Misses != 0:
		m.Note = fmt.Sprintf("disk-warm run re-executed %d stages", rep.Misses)
	case rep.DiskHits != stages:
		m.Note = fmt.Sprintf("disk-warm run took %d disk hits, want %d", rep.DiskHits, stages)
	default:
		m.Note = fmt.Sprintf("byte-identical design (%d bytes) and manifest; %d/%d stages recalled from disk, 0 re-executed",
			len(coldDesign), rep.DiskHits, stages)
	}
	return m, nil
}

// runWorkloadFairness measures H9: the steady-state traffic-simulator
// workload — three Poisson tenants with heavily repeated request shapes
// over two chips — replayed through the library driver against one
// shared cache. The tenants' repeated specs must make the cache earn
// its keep (hit rate at least the H4 floor) without the shared store
// skewing service: per-tenant completed requests stay within
// h9FairnessCap of each other. Both facts must be dispatch-invariant,
// so the run repeats at workers 1 and 4 and the deterministic summary
// sections must be byte-identical.
func runWorkloadFairness(ctx context.Context, seed int64) (Measurement, error) {
	var m Measurement
	spec, err := sim.BuiltinSpec("steady-state")
	if err != nil {
		return m, err
	}
	trace, err := sim.Generate(spec, seed)
	if err != nil {
		return m, err
	}

	summaries := make([][]byte, 0, 2)
	var sum *sim.Summary
	for _, workers := range []int{1, 4} {
		d := sim.NewLibraryDriver(youtiao.NewSharedCache(youtiao.CacheConfig{}), 1)
		s, err := sim.Run(ctx, trace, d, sim.RunConfig{Workers: workers})
		if err != nil {
			return m, fmt.Errorf("workers=%d: %w", workers, err)
		}
		det, err := s.StripTimings().JSON()
		if err != nil {
			return m, err
		}
		summaries = append(summaries, det)
		sum = s
	}

	invariant := bytes.Equal(summaries[0], summaries[1])
	allOK := sum.Outcomes[sim.OutcomeOK] == sum.Requests
	hitRate := 0.0
	if sum.Cache != nil {
		hitRate = sum.Cache.HitRate
	}
	fairnessHolds := sum.Fairness > 0 && sum.Fairness <= h9FairnessCap

	m.Holds = invariant && allOK && hitRate >= h4HitRateFloor && fairnessHolds
	m.Effect = (hitRate - h4HitRateFloor) / h4HitRateFloor
	m.Values = map[string]float64{
		"requests":         float64(sum.Requests),
		"ok":               float64(sum.Outcomes[sim.OutcomeOK]),
		"tenants":          float64(len(sum.Clients)),
		"hit_rate":         hitRate,
		"fairness":         sum.Fairness,
		"worker_invariant": b2f(invariant),
		"all_completed":    b2f(allOK),
	}
	switch {
	case !invariant:
		m.Note = "deterministic summary differs between workers 1 and 4"
	case !allOK:
		m.Note = fmt.Sprintf("outcomes %v: not every request completed", sum.Outcomes)
	case hitRate < h4HitRateFloor:
		m.Note = fmt.Sprintf("hit rate %.2f below the %.2f floor", hitRate, h4HitRateFloor)
	case !fairnessHolds:
		m.Note = fmt.Sprintf("fairness %.2fx outside (0, %.0fx]", sum.Fairness, h9FairnessCap)
	default:
		m.Note = fmt.Sprintf("%d requests from %d tenants all completed: hit rate %.2f (floor %.2f), fairness %.2fx (cap %.0fx), worker-invariant",
			sum.Requests, len(sum.Clients), hitRate, h4HitRateFloor, sum.Fairness, h9FairnessCap)
	}
	return m, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
