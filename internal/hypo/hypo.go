// Package hypo is the hypothesis-driven experiment engine of the
// repository: it turns the performance and determinism claims the
// codebase makes in benchmarks, comments and CHANGES.md into
// first-class, reproducible experiments with recorded verdicts.
//
// The discipline follows the BLIS experiment standard: every claim is
// classified before it is measured.
//
//   - Deterministic claims are invariants. They run on a single seed
//     and any violation is a bug: the verdict is confirmed or refuted,
//     never "noisy". Re-running a deterministic experiment at the same
//     toolchain yields byte-identical stripped findings.
//
//   - Statistical claims describe a direction and a magnitude. They run
//     on at least three seeds, and the verdict is confirmed only when
//     the predicted direction holds on every seed with a consistent
//     effect size of at least MinEffect (default 20%). A direction
//     failure on any seed refutes the claim; direction holding with a
//     sub-threshold effect is inconclusive, not confirmed.
//
// An Experiment's Run callback measures one seed and reports a
// Measurement; Execute applies the classification rules and assembles
// Findings — verdict, per-seed measurements and a run Manifest — which
// callers serialize under hypotheses/<id>/ as FINDINGS.json plus a
// rendered FINDINGS.md (see findings.go and cmd/hypo).
package hypo

import (
	"context"
	"fmt"
	"regexp"
	"time"
)

// Class classifies a claim before it is measured.
type Class string

const (
	// Deterministic marks an invariant: one seed, one violation = bug.
	Deterministic Class = "deterministic"
	// Statistical marks a directional claim measured across seeds.
	Statistical Class = "statistical"
)

// valid reports whether c is a known class.
func (c Class) valid() bool { return c == Deterministic || c == Statistical }

// Verdict is the recorded outcome of one experiment execution.
type Verdict string

const (
	// Confirmed: the claim held under the class's rules.
	Confirmed Verdict = "confirmed"
	// Refuted: the predicted direction failed on at least one seed (or
	// the invariant was violated).
	Refuted Verdict = "refuted"
	// Inconclusive: the run could not decide — a seed errored, or the
	// direction held everywhere but the effect size fell below the
	// consistency threshold.
	Inconclusive Verdict = "inconclusive"
)

// DefaultMinEffect is the consistency floor of statistical claims: the
// per-seed relative effect size must reach 20% on every seed before a
// directional result counts as confirmed.
const DefaultMinEffect = 0.20

// MinStatisticalSeeds is the smallest seed set a statistical experiment
// may run on.
const MinStatisticalSeeds = 3

// Measurement is one seed's observation of an experiment.
//
// The determinism split mirrors the observability contract
// (internal/obs): Values holds quantities that are pure functions of
// (inputs, seed) — counts, errors, byte lengths — while Timings holds
// wall-clock measurements that differ run to run. Findings.StripTimings
// zeroes Timings and WallNs but keeps Values, Holds and Effect, so a
// deterministic experiment must derive those three exclusively from
// deterministic data.
type Measurement struct {
	Seed int64 `json:"seed"`
	// Holds reports whether the predicted direction held at this seed.
	Holds bool `json:"holds"`
	// Effect is the relative effect size observed at this seed
	// (non-negative; the experiment defines the ratio). Statistical
	// confirmation requires Effect >= MinEffect on every seed.
	Effect float64 `json:"effect"`
	// Values are deterministic observations (kept by StripTimings).
	Values map[string]float64 `json:"values,omitempty"`
	// Timings are wall-clock observations in nanoseconds (stripped).
	Timings map[string]float64 `json:"timings_ns,omitempty"`
	// Note carries a short human-readable account of the observation.
	Note string `json:"note,omitempty"`
	// WallNs is the seed run's wall time (stripped).
	WallNs int64 `json:"wall_ns,omitempty"`
}

// Experiment is one registered hypothesis: a claim, its class, and the
// measurement procedure.
type Experiment struct {
	// ID names the experiment ("H2-worker-invariance"). It must match
	// IDPattern — it becomes the hypotheses/<id>/ directory name.
	ID string
	// Claim is the one-sentence hypothesis under test.
	Claim string
	// Class selects the verdict rules.
	Class Class
	// Seeds are the default seeds. Deterministic experiments use the
	// first seed only; statistical experiments need at least
	// MinStatisticalSeeds. Empty selects DefaultSeeds(Class).
	Seeds []int64
	// MinEffect overrides DefaultMinEffect when positive (statistical
	// only).
	MinEffect float64
	// Run measures one seed. Errors mark the execution inconclusive;
	// they do not abort sibling seeds.
	Run func(ctx context.Context, seed int64) (Measurement, error)
}

// idPattern constrains experiment ids to path- and flag-safe names.
const idPatternSrc = `^[A-Za-z][A-Za-z0-9._-]{0,63}$`

var idPattern = regexp.MustCompile(idPatternSrc)

// ValidID reports whether s is a legal experiment id.
func ValidID(s string) bool { return idPattern.MatchString(s) }

// DefaultSeeds returns the class's default seed set: one seed for an
// invariant, MinStatisticalSeeds for a directional claim.
func DefaultSeeds(c Class) []int64 {
	if c == Deterministic {
		return []int64{1}
	}
	return []int64{1, 2, 3}
}

// Validate checks the experiment is well-formed.
func (e *Experiment) Validate() error {
	if e == nil {
		return fmt.Errorf("hypo: nil experiment")
	}
	if !ValidID(e.ID) {
		return fmt.Errorf("hypo: experiment id %q does not match %s", e.ID, idPatternSrc)
	}
	if e.Claim == "" {
		return fmt.Errorf("hypo: experiment %s has no claim", e.ID)
	}
	if !e.Class.valid() {
		return fmt.Errorf("hypo: experiment %s has unknown class %q", e.ID, e.Class)
	}
	if e.Run == nil {
		return fmt.Errorf("hypo: experiment %s has no Run", e.ID)
	}
	if e.MinEffect < 0 {
		return fmt.Errorf("hypo: experiment %s MinEffect %g must be >= 0", e.ID, e.MinEffect)
	}
	if len(e.Seeds) > 0 && e.Class == Statistical && len(e.Seeds) < MinStatisticalSeeds {
		return fmt.Errorf("hypo: statistical experiment %s declares %d seeds, needs >= %d",
			e.ID, len(e.Seeds), MinStatisticalSeeds)
	}
	return nil
}

// minEffect returns the experiment's effective consistency floor.
func (e *Experiment) minEffect() float64 {
	if e.MinEffect > 0 {
		return e.MinEffect
	}
	return DefaultMinEffect
}

// seedsFor resolves the seed set of one execution: the override when
// given, the experiment's declared seeds otherwise, the class default
// as a last resort. Deterministic experiments always collapse to one
// seed; statistical seed sets below MinStatisticalSeeds are an error.
func (e *Experiment) seedsFor(override []int64) ([]int64, error) {
	seeds := override
	if len(seeds) == 0 {
		seeds = e.Seeds
	}
	if len(seeds) == 0 {
		seeds = DefaultSeeds(e.Class)
	}
	if e.Class == Deterministic {
		return seeds[:1], nil
	}
	if len(seeds) < MinStatisticalSeeds {
		return nil, fmt.Errorf("hypo: statistical experiment %s needs >= %d seeds, got %d",
			e.ID, MinStatisticalSeeds, len(seeds))
	}
	return seeds, nil
}

// Execute runs the experiment on its seeds (or the non-nil override)
// and applies the class's verdict rules. Harness-level problems — an
// invalid experiment or seed set — return an error; a failing or
// erroring measurement is a result, folded into the Findings verdict.
func (e *Experiment) Execute(ctx context.Context, seedOverride []int64) (*Findings, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	seeds, err := e.seedsFor(seedOverride)
	if err != nil {
		return nil, err
	}

	f := &Findings{
		Schema:    FindingsSchema,
		ID:        e.ID,
		Claim:     e.Claim,
		Class:     e.Class,
		Seeds:     seeds,
		MinEffect: 0,
	}
	if e.Class == Statistical {
		f.MinEffect = e.minEffect()
	}

	start := time.Now()
	var runErrs []string
	for _, seed := range seeds {
		if err := ctx.Err(); err != nil {
			runErrs = append(runErrs, fmt.Sprintf("seed %d: %v", seed, err))
			break
		}
		seedStart := time.Now()
		m, err := e.Run(ctx, seed)
		m.Seed = seed
		m.WallNs = time.Since(seedStart).Nanoseconds()
		if err != nil {
			m.Note = joinNote(m.Note, err.Error())
			runErrs = append(runErrs, fmt.Sprintf("seed %d: %v", seed, err))
		}
		f.Measurements = append(f.Measurements, m)
	}
	f.Verdict, f.Reason = e.judge(f.Measurements, seeds, runErrs)
	f.Manifest = NewManifest(e, seeds)
	f.Manifest.WallNs = time.Since(start).Nanoseconds()
	return f, nil
}

// judge applies the classification rules to a finished seed set.
func (e *Experiment) judge(ms []Measurement, seeds []int64, runErrs []string) (Verdict, string) {
	if len(runErrs) > 0 {
		return Inconclusive, fmt.Sprintf("run errors: %s", runErrs[0])
	}
	if len(ms) != len(seeds) {
		return Inconclusive, fmt.Sprintf("measured %d of %d seeds", len(ms), len(seeds))
	}
	if e.Class == Deterministic {
		m := ms[0]
		if !m.Holds {
			return Refuted, fmt.Sprintf("invariant violated at seed %d: %s", m.Seed, m.Note)
		}
		return Confirmed, "invariant held"
	}
	minEff := e.minEffect()
	weak := -1
	for i, m := range ms {
		if !m.Holds {
			return Refuted, fmt.Sprintf("direction failed at seed %d: %s", m.Seed, m.Note)
		}
		if m.Effect < minEff && weak < 0 {
			weak = i
		}
	}
	if weak >= 0 {
		return Inconclusive, fmt.Sprintf("direction held on all %d seeds but effect %.3f at seed %d is below the %.0f%% consistency floor",
			len(ms), ms[weak].Effect, ms[weak].Seed, minEff*100)
	}
	return Confirmed, fmt.Sprintf("direction held on all %d seeds with effect >= %.0f%%", len(ms), minEff*100)
}

// joinNote appends b to a with a separator, tolerating empties.
func joinNote(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "; " + b
	}
}
