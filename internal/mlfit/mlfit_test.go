package mlfit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitTreeValidation(t *testing.T) {
	if _, err := FitTree(nil, nil, TreeConfig{}, nil); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := FitTree([][]float64{{1}}, []float64{1, 2}, TreeConfig{}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitTree([][]float64{{1}, {1, 2}}, []float64{1, 2}, TreeConfig{}, nil); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestTreeFitsStepFunction(t *testing.T) {
	var X [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		x := float64(i) / 100
		X = append(X, []float64{x})
		if x < 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 3)
		}
	}
	tree, err := FitTree(X, y, TreeConfig{MaxDepth: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{0.2}); math.Abs(got-1) > 1e-9 {
		t.Errorf("left side: got %v, want 1", got)
	}
	if got := tree.Predict([]float64{0.8}); math.Abs(got-3) > 1e-9 {
		t.Errorf("right side: got %v, want 3", got)
	}
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		x := rng.Float64()
		X = append(X, []float64{x})
		y = append(y, math.Sin(10*x)+rng.NormFloat64()*0.01)
	}
	for _, depth := range []int{1, 2, 4} {
		tree, err := FitTree(X, y, TreeConfig{MaxDepth: depth}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if d := tree.Depth(); d > depth {
			t.Errorf("depth %d exceeds cap %d", d, depth)
		}
	}
}

func TestTreeConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{7, 7, 7, 7}
	tree, err := FitTree(X, y, TreeConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 {
		t.Errorf("constant target should give a leaf, depth %d", tree.Depth())
	}
	if got := tree.Predict([]float64{99}); got != 7 {
		t.Errorf("got %v, want 7", got)
	}
}

func TestTreeInterpolatesTraining(t *testing.T) {
	// With unlimited depth and MinLeafSize 1, distinct inputs are
	// predicted exactly.
	X := [][]float64{{1}, {2}, {3}, {4}, {5}}
	y := []float64{5, 3, 8, 1, 9}
	tree, err := FitTree(X, y, TreeConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		if got := tree.Predict(x); math.Abs(got-y[i]) > 1e-9 {
			t.Errorf("training point %d: got %v, want %v", i, got, y[i])
		}
	}
}

func TestTreeMultiFeature(t *testing.T) {
	// y depends only on feature 1; the tree should find it.
	rng := rand.New(rand.NewSource(2))
	var X [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		a, b := rng.Float64(), rng.Float64()
		X = append(X, []float64{a, b})
		if b < 0.5 {
			y = append(y, 0)
		} else {
			y = append(y, 10)
		}
	}
	tree, err := FitTree(X, y, TreeConfig{MaxDepth: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{0.9, 0.1}); math.Abs(got) > 0.5 {
		t.Errorf("got %v, want ~0", got)
	}
	if got := tree.Predict([]float64{0.1, 0.9}); math.Abs(got-10) > 0.5 {
		t.Errorf("got %v, want ~10", got)
	}
}

func TestMSEAndR2(t *testing.T) {
	pred := []float64{1, 2, 3}
	actual := []float64{1, 2, 5}
	if got := MSE(pred, actual); math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("MSE: got %v", got)
	}
	if got := MSE(actual, actual); got != 0 {
		t.Errorf("perfect MSE: got %v", got)
	}
	if got := R2(actual, actual); got != 1 {
		t.Errorf("perfect R2: got %v", got)
	}
	if got := R2([]float64{2, 2, 2}, []float64{1, 2, 3}); got >= 1 {
		t.Errorf("mean predictor should have R2 <= ... got %v", got)
	}
	if MSE(nil, nil) != 0 {
		t.Error("empty MSE should be 0")
	}
}

func TestMSEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MSE should panic on length mismatch")
		}
	}()
	MSE([]float64{1}, []float64{1, 2})
}

func TestForestValidation(t *testing.T) {
	if _, err := FitForest(nil, nil, DefaultForestConfig()); err == nil {
		t.Error("empty training set accepted")
	}
	cfg := DefaultForestConfig()
	cfg.NumTrees = 0
	if _, err := FitForest([][]float64{{1}}, []float64{1}, cfg); err == nil {
		t.Error("zero trees accepted")
	}
}

func TestForestLearnsSmoothFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var X [][]float64
	var y []float64
	f := func(x float64) float64 { return 2*x*x - x }
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 2
		X = append(X, []float64{x})
		y = append(y, f(x)+rng.NormFloat64()*0.02)
	}
	forest, err := FitForest(X, y, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for x := 0.1; x < 1.9; x += 0.1 {
		if e := math.Abs(forest.Predict([]float64{x}) - f(x)); e > worst {
			worst = e
		}
	}
	if worst > 0.25 {
		t.Errorf("forest error %.3f too large", worst)
	}
	if forest.NumTrees() != DefaultForestConfig().NumTrees {
		t.Errorf("NumTrees %d", forest.NumTrees())
	}
}

func TestForestDeterministicInSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var X [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		x := rng.Float64()
		X = append(X, []float64{x})
		y = append(y, x*x)
	}
	cfg := DefaultForestConfig()
	f1, _ := FitForest(X, y, cfg)
	f2, _ := FitForest(X, y, cfg)
	for x := 0.0; x < 1; x += 0.05 {
		if f1.Predict([]float64{x}) != f2.Predict([]float64{x}) {
			t.Fatal("identical seeds produced different forests")
		}
	}
}

func TestPredictAll(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{1, 2, 3}
	f, err := FitForest(X, y, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := f.PredictAll(X)
	if len(out) != 3 {
		t.Fatalf("got %d predictions", len(out))
	}
	for i, x := range X {
		if out[i] != f.Predict(x) {
			t.Errorf("PredictAll[%d] differs from Predict", i)
		}
	}
}

func TestKFoldMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var X [][]float64
	var y []float64
	for i := 0; i < 120; i++ {
		x := rng.Float64()
		X = append(X, []float64{x})
		y = append(y, 3*x+rng.NormFloat64()*0.05)
	}
	cfg := DefaultForestConfig()
	cfg.NumTrees = 10
	mse, err := KFoldMSE(X, y, 5, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mse < 0 || mse > 0.1 {
		t.Errorf("CV MSE %.4f implausible for a nearly-linear target", mse)
	}
	if _, err := KFoldMSE(X, y, 1, cfg, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := KFoldMSE(X[:3], y[:3], 5, cfg, 1); err == nil {
		t.Error("k > n accepted")
	}
}

func TestKFoldDiscriminates(t *testing.T) {
	// An informative feature must cross-validate better than a useless
	// one.
	rng := rand.New(rand.NewSource(6))
	var Xgood, Xbad [][]float64
	var y []float64
	for i := 0; i < 150; i++ {
		x := rng.Float64()
		Xgood = append(Xgood, []float64{x})
		Xbad = append(Xbad, []float64{rng.Float64()})
		y = append(y, math.Exp(-3*x))
	}
	cfg := DefaultForestConfig()
	cfg.NumTrees = 10
	good, err := KFoldMSE(Xgood, y, 5, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := KFoldMSE(Xbad, y, 5, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if good >= bad {
		t.Errorf("informative feature (MSE %.4g) should beat noise (MSE %.4g)", good, bad)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0, 0.4, 0.6, 1.0}, 0, 1, 2)
	if math.Abs(h[0]-0.5) > 1e-12 || math.Abs(h[1]-0.5) > 1e-12 {
		t.Errorf("histogram: %v", h)
	}
	// Out-of-range values clamp into boundary bins.
	h = Histogram([]float64{-5, 5}, 0, 1, 2)
	if h[0] != 0.5 || h[1] != 0.5 {
		t.Errorf("clamping: %v", h)
	}
	// Empty input: uniform.
	h = Histogram(nil, 0, 1, 4)
	for _, v := range h {
		if v != 0.25 {
			t.Errorf("empty input should be uniform: %v", h)
		}
	}
	// Degenerate range: all mass in bin 0.
	h = Histogram([]float64{1, 1}, 1, 1, 3)
	if h[0] != 1 {
		t.Errorf("degenerate range: %v", h)
	}
	sum := 0.0
	for _, v := range Histogram([]float64{0.1, 0.2, 0.9}, 0, 1, 7) {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("histogram mass %v != 1", sum)
	}
}

func TestJSDivergenceProperties(t *testing.T) {
	p := []float64{0.5, 0.5, 0}
	q := []float64{0, 0.5, 0.5}
	if d := JSDivergence(p, p); d != 0 {
		t.Errorf("JS(p,p) = %v", d)
	}
	d1, d2 := JSDivergence(p, q), JSDivergence(q, p)
	if d1 != d2 {
		t.Errorf("JS not symmetric: %v vs %v", d1, d2)
	}
	if d1 <= 0 || d1 > 1 {
		t.Errorf("JS out of (0,1]: %v", d1)
	}
	// Disjoint distributions reach the maximum (1 bit).
	a := []float64{1, 0}
	b := []float64{0, 1}
	if d := JSDivergence(a, b); math.Abs(d-1) > 1e-12 {
		t.Errorf("disjoint JS = %v, want 1", d)
	}
}

func TestJSDivergenceQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		p := make([]float64, n)
		q := make([]float64, n)
		var sp, sq float64
		for i := range p {
			p[i], q[i] = r.Float64(), r.Float64()
			sp += p[i]
			sq += q[i]
		}
		for i := range p {
			p[i] /= sp
			q[i] /= sq
		}
		d := JSDivergence(p, q)
		return d >= -1e-12 && d <= 1+1e-12 && math.Abs(d-JSDivergence(q, p)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestJSDivergencePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("JSDivergence should panic on bin mismatch")
		}
	}()
	JSDivergence([]float64{1}, []float64{0.5, 0.5})
}

func TestJSDivergenceSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var a, b, c []float64
	for i := 0; i < 500; i++ {
		a = append(a, rng.NormFloat64())
		b = append(b, rng.NormFloat64())
		c = append(c, rng.NormFloat64()+5)
	}
	near := JSDivergenceSamples(a, b, 20)
	far := JSDivergenceSamples(a, c, 20)
	if near >= far {
		t.Errorf("same-distribution JS (%v) should be below shifted JS (%v)", near, far)
	}
	if d := JSDivergenceSamples(nil, nil, 10); d != 0 {
		t.Errorf("empty samples: %v", d)
	}
}

func TestHistogramPanicsOnBadBins(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Histogram should panic on nBins <= 0")
		}
	}()
	Histogram([]float64{1}, 0, 1, 0)
}
