package mlfit

import (
	"fmt"

	"repro/internal/binpack"
)

// AppendBinary encodes a trained forest: tree count, then each tree's
// feature arity and its nodes in preorder. A node is (feature,
// threshold, value); children exist exactly when feature >= 0, so the
// preorder stream needs no explicit pointers.
func (f *Forest) AppendBinary(e *binpack.Enc) {
	e.U32(uint32(len(f.trees)))
	for _, t := range f.trees {
		e.Int(t.nFeature)
		appendNode(e, t.root)
	}
}

func appendNode(e *binpack.Enc, n *treeNode) {
	if n == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.Int(n.feature)
	e.F64(n.threshold)
	e.F64(n.value)
	if n.feature >= 0 {
		appendNode(e, n.left)
		appendNode(e, n.right)
	}
}

// DecodeBinary rebuilds a forest encoded by AppendBinary. The decoded
// forest predicts bit-identically: node structure, split thresholds
// and leaf values round-trip exactly.
func DecodeBinary(d *binpack.Dec) (*Forest, error) {
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n < 0 || n > d.Remaining() {
		return nil, fmt.Errorf("mlfit: implausible tree count %d", n)
	}
	f := &Forest{trees: make([]*Tree, n)}
	for i := range f.trees {
		t := &Tree{nFeature: d.Int()}
		t.root = decodeNode(d)
		if err := d.Err(); err != nil {
			return nil, err
		}
		f.trees[i] = t
	}
	return f, nil
}

func decodeNode(d *binpack.Dec) *treeNode {
	if d.Err() != nil || !d.Bool() {
		return nil
	}
	n := &treeNode{feature: d.Int(), threshold: d.F64(), value: d.F64()}
	if n.feature >= 0 {
		n.left = decodeNode(d)
		n.right = decodeNode(d)
	}
	return n
}
