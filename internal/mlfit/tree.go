// Package mlfit is the from-scratch machine-learning substrate the
// crosstalk characterization model is built on: CART regression trees,
// bagged random-forest regression, k-fold cross-validation, mean squared
// error, and distribution comparison via Jensen–Shannon divergence.
//
// Only the features the paper's pipeline needs are implemented, but they
// are implemented completely: variance-reduction splits, bootstrap
// sampling, per-tree feature subsampling and deterministic seeding.
package mlfit

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// treeNode is one node of a regression tree. Leaves have feature == -1.
type treeNode struct {
	feature   int     // split feature index, -1 for leaf
	threshold float64 // go left when x[feature] <= threshold
	value     float64 // leaf prediction (mean of targets)
	left      *treeNode
	right     *treeNode
}

// Tree is a CART regression tree.
type Tree struct {
	root     *treeNode
	nFeature int
}

// TreeConfig controls tree growth.
type TreeConfig struct {
	MaxDepth    int // maximum depth; 0 means unlimited
	MinLeafSize int // minimum samples in a leaf; 0 means 1
	// MaxFeatures is the number of features considered per split;
	// 0 means all features.
	MaxFeatures int
}

func (cfg TreeConfig) normalized() TreeConfig {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 1 << 30
	}
	if cfg.MinLeafSize <= 0 {
		cfg.MinLeafSize = 1
	}
	return cfg
}

// FitTree grows a regression tree on rows X (features) and targets y.
// rng is only used when cfg.MaxFeatures restricts the split search; a
// nil rng is allowed in that case the full feature set is used.
func FitTree(X [][]float64, y []float64, cfg TreeConfig, rng *rand.Rand) (*Tree, error) {
	if len(X) == 0 {
		return nil, fmt.Errorf("mlfit: empty training set")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("mlfit: %d rows but %d targets", len(X), len(y))
	}
	nf := len(X[0])
	for i, row := range X {
		if len(row) != nf {
			return nil, fmt.Errorf("mlfit: row %d has %d features, want %d", i, len(row), nf)
		}
	}
	cfg = cfg.normalized()
	n := len(X)
	c := &growCtx{
		X: X, y: y, cfg: cfg, rng: rng,
		features: make([]int, nf),
		order:    make([]int, n),
		part:     make([]int, 0, n),
		// Every leaf holds ≥1 distinct sample (splits require both
		// sides non-empty), so a tree over n samples has ≤ n leaves
		// and ≤ 2n-1 nodes: one arena allocation covers the tree.
		nodes: make([]treeNode, 0, 2*n-1),
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{nFeature: nf}
	t.root = c.grow(idx, 0)
	return t, nil
}

func mean(y []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

// sse returns the sum of squared errors of idx around its mean.
func sse(y []float64, idx []int) float64 {
	m := mean(y, idx)
	var s float64
	for _, i := range idx {
		d := y[i] - m
		s += d * d
	}
	return s
}

// growCtx is the per-tree growth arena: node storage plus the feature,
// sort-order and partition scratch shared by every node of one FitTree
// call. A node uses the scratch only before recursing, so one buffer
// of each kind serves the whole tree; the recursion itself allocates
// nothing. Split search (sort.Slice over the same comparison) and RNG
// consumption (Shuffle per candidate node) are unchanged, so grown
// trees are bit-identical to the historical allocate-per-node code.
type growCtx struct {
	X        [][]float64
	y        []float64
	cfg      TreeConfig
	rng      *rand.Rand
	features []int
	order    []int
	part     []int
	nodes    []treeNode
}

// newNode appends to the arena and returns a pointer to the element.
// The tree is held together only by these returned pointers (the slice
// is never re-indexed), so the structure stays correct even if the
// arena were ever to grow past its sized capacity.
func (c *growCtx) newNode(n treeNode) *treeNode {
	c.nodes = append(c.nodes, n)
	return &c.nodes[len(c.nodes)-1]
}

func (c *growCtx) grow(idx []int, depth int) *treeNode {
	X, y, cfg := c.X, c.y, c.cfg
	val := mean(y, idx)
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeafSize {
		return c.newNode(treeNode{feature: -1, value: val})
	}

	nf := len(X[0])
	features := c.features[:nf]
	for i := range features {
		features[i] = i
	}
	if cfg.MaxFeatures > 0 && cfg.MaxFeatures < nf && c.rng != nil {
		c.rng.Shuffle(nf, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:cfg.MaxFeatures]
	}

	bestGain := 0.0
	bestFeature := -1
	bestThreshold := 0.0
	parentSSE := sse(y, idx)

	order := c.order[:len(idx)]
	for _, f := range features {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })

		// Prefix sums allow O(1) variance evaluation of every split.
		var sumL, sumSqL float64
		var sumR, sumSqR float64
		for _, i := range order {
			sumR += y[i]
			sumSqR += y[i] * y[i]
		}
		for k := 0; k < len(order)-1; k++ {
			v := y[order[k]]
			sumL += v
			sumSqL += v * v
			sumR -= v
			sumSqR -= v * v
			// Only split between distinct feature values.
			if X[order[k]][f] == X[order[k+1]][f] {
				continue
			}
			nl, nr := k+1, len(order)-k-1
			if nl < cfg.MinLeafSize || nr < cfg.MinLeafSize {
				continue
			}
			sseL := sumSqL - sumL*sumL/float64(nl)
			sseR := sumSqR - sumR*sumR/float64(nr)
			gain := parentSSE - sseL - sseR
			if gain > bestGain {
				bestGain = gain
				bestFeature = f
				bestThreshold = (X[order[k]][f] + X[order[k+1]][f]) / 2
			}
		}
	}

	if bestFeature < 0 || bestGain <= 1e-15 {
		return c.newNode(treeNode{feature: -1, value: val})
	}

	// Stable in-place partition of idx: the left block keeps idx order
	// in place, the right block is staged in the scratch and copied
	// behind it — the same left++right ordering the historical
	// append-into-fresh-slices code produced. The parent no longer
	// reads idx after this point, so the children own the two halves.
	part := c.part[:0]
	nl := 0
	for _, i := range idx {
		if X[i][bestFeature] <= bestThreshold {
			idx[nl] = i
			nl++
		} else {
			part = append(part, i)
		}
	}
	copy(idx[nl:], part)
	c.part = part
	if nl == 0 || nl == len(idx) {
		return c.newNode(treeNode{feature: -1, value: val})
	}
	nd := c.newNode(treeNode{feature: bestFeature, threshold: bestThreshold, value: val})
	nd.left = c.grow(idx[:nl], depth+1)
	nd.right = c.grow(idx[nl:], depth+1)
	return nd
}

// Predict returns the tree's prediction for feature vector x.
func (t *Tree) Predict(x []float64) float64 {
	n := t.root
	for n.feature >= 0 {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the maximum depth of the tree (a single leaf has depth 0).
func (t *Tree) Depth() int { return nodeDepth(t.root) }

func nodeDepth(n *treeNode) int {
	if n == nil || n.feature < 0 {
		return 0
	}
	l, r := nodeDepth(n.left), nodeDepth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// MSE returns the mean squared error between predictions and targets,
// E = (1/N) Σ (y_i - ŷ_i)², the paper's fitting loss.
func MSE(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic(fmt.Sprintf("mlfit: MSE length mismatch %d vs %d", len(pred), len(actual)))
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		d := pred[i] - actual[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// R2 returns the coefficient of determination of pred against actual.
func R2(pred, actual []float64) float64 {
	if len(actual) == 0 {
		return 0
	}
	var m float64
	for _, v := range actual {
		m += v
	}
	m /= float64(len(actual))
	var ssRes, ssTot float64
	for i := range actual {
		ssRes += (actual[i] - pred[i]) * (actual[i] - pred[i])
		ssTot += (actual[i] - m) * (actual[i] - m)
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.Inf(-1)
	}
	return 1 - ssRes/ssTot
}
