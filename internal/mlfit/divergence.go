package mlfit

import (
	"fmt"
	"math"
)

// Histogram bins values into nBins equal-width bins over [min, max] and
// returns the normalized probability mass per bin. Values outside the
// range are clamped into the boundary bins; an empty input returns a
// uniform distribution so divergence computations stay defined.
func Histogram(values []float64, min, max float64, nBins int) []float64 {
	if nBins <= 0 {
		panic(fmt.Sprintf("mlfit: nBins must be positive, got %d", nBins))
	}
	h := make([]float64, nBins)
	if len(values) == 0 {
		for i := range h {
			h[i] = 1 / float64(nBins)
		}
		return h
	}
	width := (max - min) / float64(nBins)
	if width <= 0 {
		h[0] = 1
		return h
	}
	for _, v := range values {
		b := int((v - min) / width)
		if b < 0 {
			b = 0
		}
		if b >= nBins {
			b = nBins - 1
		}
		h[b]++
	}
	for i := range h {
		h[i] /= float64(len(values))
	}
	return h
}

// klDivergence returns KL(p || q) in bits for distributions with matched
// support; terms where p is zero contribute nothing, and q is smoothed
// by the caller.
func klDivergence(p, q []float64) float64 {
	var d float64
	for i := range p {
		if p[i] > 0 && q[i] > 0 {
			d += p[i] * math.Log2(p[i]/q[i])
		}
	}
	return d
}

// JSDivergence returns the Jensen–Shannon divergence (bits, in [0,1])
// between two probability distributions over the same bins. This is the
// Figure 12 similarity metric for predicted noise distributions.
func JSDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("mlfit: JS divergence bin mismatch %d vs %d", len(p), len(q)))
	}
	m := make([]float64, len(p))
	for i := range p {
		m[i] = (p[i] + q[i]) / 2
	}
	return klDivergence(p, m)/2 + klDivergence(q, m)/2
}

// JSDivergenceSamples bins two sample sets over their joint range and
// returns the JS divergence of the resulting histograms.
func JSDivergenceSamples(a, b []float64, nBins int) float64 {
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range a {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	for _, v := range b {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	if math.IsInf(min, 1) {
		return 0 // both empty
	}
	return JSDivergence(Histogram(a, min, max, nBins), Histogram(b, min, max, nBins))
}
