package mlfit

import (
	"fmt"
	"math/rand"
)

// PermutationImportance measures each feature's contribution to a
// fitted forest: the increase in MSE when that feature's column is
// randomly permuted (breaking its relationship to the target) while
// the others stay intact. Larger values mean the model leans on the
// feature more. Used to sanity-check that the crosstalk model actually
// exploits the equivalent distance rather than memorizing noise.
func PermutationImportance(f *Forest, X [][]float64, y []float64, rounds int, seed int64) ([]float64, error) {
	if len(X) == 0 {
		return nil, fmt.Errorf("mlfit: empty evaluation set")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("mlfit: %d rows but %d targets", len(X), len(y))
	}
	if rounds < 1 {
		return nil, fmt.Errorf("mlfit: rounds must be positive, got %d", rounds)
	}
	nf := len(X[0])
	base := MSE(f.PredictAll(X), y)
	rng := rand.New(rand.NewSource(seed))

	// Work on a mutable copy of one column at a time.
	col := make([]float64, len(X))
	importance := make([]float64, nf)
	for feat := 0; feat < nf; feat++ {
		for i := range X {
			col[i] = X[i][feat]
		}
		var total float64
		for r := 0; r < rounds; r++ {
			perm := rng.Perm(len(X))
			for i := range X {
				X[i][feat] = col[perm[i]]
			}
			total += MSE(f.PredictAll(X), y) - base
		}
		for i := range X {
			X[i][feat] = col[i]
		}
		importance[feat] = total / float64(rounds)
	}
	return importance, nil
}
