package mlfit

import (
	"fmt"
	"math/rand"
)

// ForestConfig controls random-forest training.
type ForestConfig struct {
	NumTrees int
	Tree     TreeConfig
	// Seed makes training deterministic.
	Seed int64
}

// DefaultForestConfig is a small forest suitable for the few-thousand-
// sample crosstalk calibration datasets used here.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{
		NumTrees: 40,
		Tree:     TreeConfig{MaxDepth: 12, MinLeafSize: 3, MaxFeatures: 0},
		Seed:     1,
	}
}

// Forest is a bagged ensemble of regression trees.
type Forest struct {
	trees []*Tree
}

// FitForest trains a random forest on X, y with bootstrap sampling.
func FitForest(X [][]float64, y []float64, cfg ForestConfig) (*Forest, error) {
	if cfg.NumTrees <= 0 {
		return nil, fmt.Errorf("mlfit: NumTrees must be positive, got %d", cfg.NumTrees)
	}
	if len(X) == 0 {
		return nil, fmt.Errorf("mlfit: empty training set")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{trees: make([]*Tree, 0, cfg.NumTrees)}
	n := len(X)
	// One bootstrap buffer serves every tree: FitTree reads the rows
	// during growth and retains nothing (trees store only split
	// constants), so the next tree may overwrite them.
	bx := make([][]float64, n)
	by := make([]float64, n)
	for t := 0; t < cfg.NumTrees; t++ {
		for i := 0; i < n; i++ {
			k := rng.Intn(n)
			bx[i] = X[k]
			by[i] = y[k]
		}
		tree, err := FitTree(bx, by, cfg.Tree, rng)
		if err != nil {
			return nil, fmt.Errorf("mlfit: tree %d: %w", t, err)
		}
		f.trees = append(f.trees, tree)
	}
	return f, nil
}

// Predict returns the forest's mean prediction for x.
func (f *Forest) Predict(x []float64) float64 {
	var s float64
	for _, t := range f.trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.trees))
}

// PredictAll predicts every row of X.
func (f *Forest) PredictAll(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = f.Predict(x)
	}
	return out
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// KFoldMSE estimates generalization error by k-fold cross-validation:
// it returns the mean held-out MSE over the k folds. The fold split is
// deterministic in seed.
func KFoldMSE(X [][]float64, y []float64, k int, cfg ForestConfig, seed int64) (float64, error) {
	n := len(X)
	if k < 2 || k > n {
		return 0, fmt.Errorf("mlfit: k=%d invalid for %d samples", k, n)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	var total float64
	// Fold buffers are sized once and resliced per fold; FitForest
	// retains nothing from its inputs.
	trX := make([][]float64, 0, n)
	teX := make([][]float64, 0, (n+k-1)/k)
	trY := make([]float64, 0, n)
	teY := make([]float64, 0, cap(teX))
	for fold := 0; fold < k; fold++ {
		trX, teX, trY, teY = trX[:0], teX[:0], trY[:0], teY[:0]
		for i, p := range perm {
			if i%k == fold {
				teX = append(teX, X[p])
				teY = append(teY, y[p])
			} else {
				trX = append(trX, X[p])
				trY = append(trY, y[p])
			}
		}
		f, err := FitForest(trX, trY, cfg)
		if err != nil {
			return 0, fmt.Errorf("mlfit: fold %d: %w", fold, err)
		}
		total += MSE(f.PredictAll(teX), teY)
	}
	return total / float64(k), nil
}
