package mlfit

import (
	"math/rand"
	"testing"
)

func TestPermutationImportanceFindsInformativeFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var X [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		signal := rng.Float64()
		noise := rng.Float64()
		X = append(X, []float64{signal, noise})
		y = append(y, 3*signal+rng.NormFloat64()*0.02)
	}
	f, err := FitForest(X, y, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	imp, err := PermutationImportance(f, X, y, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) != 2 {
		t.Fatalf("got %d importances", len(imp))
	}
	if imp[0] <= imp[1] {
		t.Errorf("signal importance %v should exceed noise importance %v", imp[0], imp[1])
	}
	if imp[0] <= 0 {
		t.Errorf("signal importance %v should be positive", imp[0])
	}
}

func TestPermutationImportanceRestoresData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var X [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		X = append(X, []float64{rng.Float64()})
		y = append(y, X[i][0])
	}
	orig := make([]float64, len(X))
	for i := range X {
		orig[i] = X[i][0]
	}
	f, err := FitForest(X, y, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PermutationImportance(f, X, y, 2, 1); err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if X[i][0] != orig[i] {
			t.Fatal("importance computation mutated the data")
		}
	}
}

func TestPermutationImportanceValidation(t *testing.T) {
	f, err := FitForest([][]float64{{1}, {2}}, []float64{1, 2}, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PermutationImportance(f, nil, nil, 1, 1); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := PermutationImportance(f, [][]float64{{1}}, []float64{1, 2}, 1, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PermutationImportance(f, [][]float64{{1}}, []float64{1}, 0, 1); err == nil {
		t.Error("zero rounds accepted")
	}
}
