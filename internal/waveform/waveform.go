// Package waveform synthesizes the composite microwave signals carried
// by FDM control lines. An FDM XY line superimposes one drive tone per
// qubit; the room-temperature RF-DAC must represent the sum within its
// full-scale range, and each qubit must be able to extract its own tone
// by resonance. This package provides:
//
//   - tone synthesis and coherent summation into a sampled waveform;
//   - crest-factor / DAC-headroom analysis (the practical limit on FDM
//     line capacity alongside crosstalk);
//   - single-bin discrete demodulation to verify tone separability at
//     the allocated frequency spacing.
//
// Frequencies are in GHz, times in ns (so frequency × time is in
// cycles), amplitudes in DAC full-scale units.
package waveform

import (
	"fmt"
	"math"
)

// Tone is one qubit's drive component on a shared line.
type Tone struct {
	// FreqGHz is the tone frequency.
	FreqGHz float64
	// Amplitude in full-scale units.
	Amplitude float64
	// Phase in radians.
	Phase float64
}

// Waveform is a uniformly sampled real signal.
type Waveform struct {
	// SampleRateGSps is the sample rate in gigasamples per second
	// (samples per ns).
	SampleRateGSps float64
	Samples        []float64
}

// Duration returns the waveform length in ns.
func (w *Waveform) Duration() float64 {
	return float64(len(w.Samples)) / w.SampleRateGSps
}

// Synthesize renders the coherent sum of the tones over durationNs at
// the given sample rate. The rate must satisfy Nyquist for every tone.
func Synthesize(tones []Tone, durationNs, sampleRateGSps float64) (*Waveform, error) {
	if durationNs <= 0 || sampleRateGSps <= 0 {
		return nil, fmt.Errorf("waveform: invalid duration %g ns or rate %g GS/s", durationNs, sampleRateGSps)
	}
	for _, t := range tones {
		if t.FreqGHz <= 0 {
			return nil, fmt.Errorf("waveform: non-positive tone frequency %g", t.FreqGHz)
		}
		if 2*t.FreqGHz > sampleRateGSps {
			return nil, fmt.Errorf("waveform: tone at %g GHz violates Nyquist at %g GS/s", t.FreqGHz, sampleRateGSps)
		}
	}
	n := int(math.Round(durationNs * sampleRateGSps))
	if n < 1 {
		return nil, fmt.Errorf("waveform: %g ns at %g GS/s yields no samples", durationNs, sampleRateGSps)
	}
	w := &Waveform{SampleRateGSps: sampleRateGSps, Samples: make([]float64, n)}
	dt := 1 / sampleRateGSps
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		var v float64
		for _, tone := range tones {
			v += tone.Amplitude * math.Cos(2*math.Pi*tone.FreqGHz*t+tone.Phase)
		}
		w.Samples[i] = v
	}
	return w, nil
}

// Peak returns the maximum absolute sample value.
func (w *Waveform) Peak() float64 {
	var p float64
	for _, s := range w.Samples {
		if a := math.Abs(s); a > p {
			p = a
		}
	}
	return p
}

// RMS returns the root-mean-square amplitude.
func (w *Waveform) RMS() float64 {
	if len(w.Samples) == 0 {
		return 0
	}
	var ss float64
	for _, s := range w.Samples {
		ss += s * s
	}
	return math.Sqrt(ss / float64(len(w.Samples)))
}

// CrestFactor returns peak/RMS — the DAC headroom a composite FDM
// signal demands. N equal incoherent tones approach √(2N).
func (w *Waveform) CrestFactor() float64 {
	r := w.RMS()
	if r == 0 {
		return 0
	}
	return w.Peak() / r
}

// Demodulate mixes the waveform with a reference tone at freqGHz and
// integrates (single-bin DFT), returning the recovered complex
// amplitude. Tones spaced by multiples of 1/duration are exactly
// orthogonal; the FDM allocation's 10 MHz cells over a 100 ns window
// are therefore separable.
func (w *Waveform) Demodulate(freqGHz float64) (amplitude, phase float64) {
	var re, im float64
	dt := 1 / w.SampleRateGSps
	for i, s := range w.Samples {
		t := float64(i) * dt
		re += s * math.Cos(2*math.Pi*freqGHz*t)
		im += s * -math.Sin(2*math.Pi*freqGHz*t)
	}
	n := float64(len(w.Samples))
	// A unit-amplitude cosine demodulates to 1/2 in each quadrature
	// pair; scale so the recovered amplitude matches the tone's.
	re, im = 2*re/n, 2*im/n
	return math.Hypot(re, im), math.Atan2(im, re)
}

// LineAnalysis summarizes a composite FDM line signal.
type LineAnalysis struct {
	NumTones    int
	Peak        float64
	RMS         float64
	CrestFactor float64
	// Clipped reports whether the peak exceeds DAC full scale (1.0).
	Clipped bool
	// WorstRecoveryError is the largest relative error between each
	// tone's amplitude and its demodulated recovery.
	WorstRecoveryError float64
}

// AnalyzeLine synthesizes and analyzes one FDM line: every qubit's
// tone at its allocated frequency with equal per-tone amplitude. The
// amplitude is chosen as 1/len(freqs) so the coherent worst case never
// clips; the analysis reports how much headroom the actual waveform
// leaves.
func AnalyzeLine(freqsGHz []float64, durationNs, sampleRateGSps float64) (*LineAnalysis, error) {
	if len(freqsGHz) == 0 {
		return nil, fmt.Errorf("waveform: empty line")
	}
	amp := 1.0 / float64(len(freqsGHz))
	tones := make([]Tone, len(freqsGHz))
	for i, f := range freqsGHz {
		tones[i] = Tone{FreqGHz: f, Amplitude: amp, Phase: 0}
	}
	w, err := Synthesize(tones, durationNs, sampleRateGSps)
	if err != nil {
		return nil, err
	}
	a := &LineAnalysis{
		NumTones:    len(tones),
		Peak:        w.Peak(),
		RMS:         w.RMS(),
		CrestFactor: w.CrestFactor(),
		Clipped:     w.Peak() > 1.0+1e-9,
	}
	for _, tone := range tones {
		rec, _ := w.Demodulate(tone.FreqGHz)
		if e := math.Abs(rec-tone.Amplitude) / tone.Amplitude; e > a.WorstRecoveryError {
			a.WorstRecoveryError = e
		}
	}
	return a, nil
}

// MinToneSpacing returns the smallest pairwise spacing of the
// frequency set (GHz), +Inf for fewer than two tones.
func MinToneSpacing(freqsGHz []float64) float64 {
	min := math.Inf(1)
	for i := 0; i < len(freqsGHz); i++ {
		for j := i + 1; j < len(freqsGHz); j++ {
			if d := math.Abs(freqsGHz[i] - freqsGHz[j]); d < min {
				min = d
			}
		}
	}
	return min
}

// OrthogonalWindowNs returns the shortest integration window (ns) that
// makes the given tone set pairwise orthogonal: 1/min-spacing.
func OrthogonalWindowNs(freqsGHz []float64) float64 {
	s := MinToneSpacing(freqsGHz)
	if math.IsInf(s, 1) || s == 0 {
		return 0
	}
	return 1 / s
}
