package waveform

import (
	"math"
	"testing"
)

func TestSynthesizeValidation(t *testing.T) {
	if _, err := Synthesize([]Tone{{FreqGHz: 5, Amplitude: 1}}, 0, 20); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Synthesize([]Tone{{FreqGHz: 5, Amplitude: 1}}, 10, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Synthesize([]Tone{{FreqGHz: 15, Amplitude: 1}}, 10, 20); err == nil {
		t.Error("Nyquist violation accepted")
	}
	if _, err := Synthesize([]Tone{{FreqGHz: -1, Amplitude: 1}}, 10, 20); err == nil {
		t.Error("negative frequency accepted")
	}
}

func TestSingleToneProperties(t *testing.T) {
	w, err := Synthesize([]Tone{{FreqGHz: 5, Amplitude: 0.8}}, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if d := w.Duration(); math.Abs(d-100) > 0.1 {
		t.Errorf("duration %v, want 100", d)
	}
	if p := w.Peak(); math.Abs(p-0.8) > 0.01 {
		t.Errorf("peak %v, want 0.8", p)
	}
	// A sinusoid's RMS is A/√2 and crest factor √2.
	if r := w.RMS(); math.Abs(r-0.8/math.Sqrt2) > 0.01 {
		t.Errorf("RMS %v, want %v", r, 0.8/math.Sqrt2)
	}
	if cf := w.CrestFactor(); math.Abs(cf-math.Sqrt2) > 0.05 {
		t.Errorf("crest factor %v, want √2", cf)
	}
}

func TestDemodulateRecoversTones(t *testing.T) {
	tones := []Tone{
		{FreqGHz: 4.50, Amplitude: 0.3, Phase: 0.4},
		{FreqGHz: 5.50, Amplitude: 0.2, Phase: -1.1},
		{FreqGHz: 6.50, Amplitude: 0.25, Phase: 2.0},
	}
	// 100 ns window: 10 MHz bins; tones spaced 1 GHz apart are
	// orthogonal many times over.
	w, err := Synthesize(tones, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, tone := range tones {
		amp, phase := w.Demodulate(tone.FreqGHz)
		if math.Abs(amp-tone.Amplitude) > 0.01 {
			t.Errorf("tone %g GHz: recovered amplitude %v, want %v", tone.FreqGHz, amp, tone.Amplitude)
		}
		dp := math.Mod(phase-tone.Phase+3*math.Pi, 2*math.Pi) - math.Pi
		if math.Abs(dp) > 0.05 {
			t.Errorf("tone %g GHz: recovered phase %v, want %v", tone.FreqGHz, phase, tone.Phase)
		}
	}
	// A vacant frequency (well separated) recovers nearly nothing.
	if amp, _ := w.Demodulate(5.0); amp > 0.02 {
		t.Errorf("vacant bin recovered %v", amp)
	}
}

func TestDemodulateOrthogonalSpacing(t *testing.T) {
	// Tones at the FDM cell spacing (10 MHz) over their orthogonal
	// window (100 ns) separate exactly.
	tones := []Tone{
		{FreqGHz: 5.000, Amplitude: 0.4},
		{FreqGHz: 5.010, Amplitude: 0.3},
	}
	w, err := Synthesize(tones, OrthogonalWindowNs([]float64{5.000, 5.010}), 50)
	if err != nil {
		t.Fatal(err)
	}
	a0, _ := w.Demodulate(5.000)
	a1, _ := w.Demodulate(5.010)
	if math.Abs(a0-0.4) > 0.02 || math.Abs(a1-0.3) > 0.02 {
		t.Errorf("orthogonal recovery failed: %v, %v", a0, a1)
	}
}

func TestAnalyzeLineNoClipping(t *testing.T) {
	freqs := []float64{4.5, 5.0, 5.5, 6.0, 6.5}
	a, err := AnalyzeLine(freqs, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumTones != 5 {
		t.Errorf("tones %d", a.NumTones)
	}
	if a.Clipped {
		t.Error("equal-share amplitudes should never clip")
	}
	if a.Peak > 1.0+1e-9 {
		t.Errorf("peak %v exceeds full scale", a.Peak)
	}
	if a.WorstRecoveryError > 0.05 {
		t.Errorf("recovery error %v too large", a.WorstRecoveryError)
	}
	if a.CrestFactor < 1 {
		t.Errorf("crest factor %v below 1", a.CrestFactor)
	}
}

func TestAnalyzeLineCrestGrowsWithTones(t *testing.T) {
	// More tones -> higher crest factor (≈√(2N) for equal tones),
	// i.e. each tone gets less usable DAC range: the headroom argument
	// for bounding FDM line capacity.
	var prev float64
	for _, n := range []int{1, 2, 4, 8} {
		freqs := make([]float64, n)
		for i := range freqs {
			freqs[i] = 4.1 + 0.35*float64(i)
		}
		a, err := AnalyzeLine(freqs, 200, 50)
		if err != nil {
			t.Fatal(err)
		}
		if a.CrestFactor < prev {
			t.Errorf("crest factor decreased at %d tones: %v < %v", n, a.CrestFactor, prev)
		}
		prev = a.CrestFactor
	}
}

func TestAnalyzeLineEmpty(t *testing.T) {
	if _, err := AnalyzeLine(nil, 100, 50); err == nil {
		t.Error("empty line accepted")
	}
}

func TestMinToneSpacing(t *testing.T) {
	if s := MinToneSpacing([]float64{4.5, 5.0, 5.02}); math.Abs(s-0.02) > 1e-12 {
		t.Errorf("spacing %v, want 0.02", s)
	}
	if !math.IsInf(MinToneSpacing([]float64{5}), 1) {
		t.Error("single tone should give +Inf")
	}
}

func TestOrthogonalWindow(t *testing.T) {
	// 10 MHz spacing -> 100 ns window.
	if w := OrthogonalWindowNs([]float64{5.00, 5.01}); math.Abs(w-100) > 1e-9 {
		t.Errorf("window %v, want 100 ns", w)
	}
	if w := OrthogonalWindowNs([]float64{5}); w != 0 {
		t.Errorf("degenerate window %v", w)
	}
}

func TestEmptyWaveformStats(t *testing.T) {
	w := &Waveform{SampleRateGSps: 1}
	if w.RMS() != 0 || w.Peak() != 0 || w.CrestFactor() != 0 {
		t.Error("empty waveform stats should be zero")
	}
}
