package circuit

import (
	"math"
	"testing"
)

// FuzzDecompose feeds arbitrary gate streams through the decomposer and
// checks the structural invariants: output is hardware-basis only,
// operand-valid, and CZ counts match the per-gate expansion table.
func FuzzDecompose(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, 5)
	f.Add([]byte{9, 9, 9}, 3)
	f.Add([]byte{4, 5, 6, 7, 8}, 4)
	names := []GateName{RX, RY, RZ, CZ, H, X, CX, SWAP, CP, CCX, CSWAP, Barrier}
	czCost := map[GateName]int{CZ: 1, CX: 1, SWAP: 3, CP: 2, CCX: 6, CSWAP: 8}

	f.Fuzz(func(t *testing.T, ops []byte, n int) {
		if n < 3 || n > 8 {
			return
		}
		c := New(n)
		wantCZ := 0
		for i, b := range ops {
			if i > 64 {
				break
			}
			name := names[int(b)%len(names)]
			k := name.NumOperands()
			qs := make([]int, k)
			for j := range qs {
				qs[j] = (i + j*(1+int(b)%3)) % n
			}
			// Skip would-be duplicate operands.
			dup := false
			for a := 0; a < k; a++ {
				for bb := a + 1; bb < k; bb++ {
					if qs[a] == qs[bb] {
						dup = true
					}
				}
			}
			if dup {
				continue
			}
			if err := c.Append(name, float64(int(b)%7)-3, qs...); err != nil {
				t.Fatalf("append %s %v: %v", name, qs, err)
			}
			wantCZ += czCost[name]
		}
		d := Decompose(c)
		if err := d.Validate(); err != nil {
			t.Fatalf("decomposed circuit invalid: %v", err)
		}
		gotCZ := 0
		for _, g := range d.Gates {
			switch g.Name {
			case RX, RY, RZ, CZ, Measure, Barrier:
			default:
				t.Fatalf("non-basis gate %s survived decomposition", g.Name)
			}
			if g.Name == CZ {
				gotCZ++
			}
		}
		if gotCZ != wantCZ {
			t.Fatalf("CZ count %d, want %d", gotCZ, wantCZ)
		}
		// Angles must be finite.
		for _, g := range d.Gates {
			if math.IsNaN(g.Param) || math.IsInf(g.Param, 0) {
				t.Fatalf("non-finite angle on %s", g.Name)
			}
		}
	})
}

// FuzzLayers checks that layering never drops or duplicates gates and
// respects per-qubit exclusivity.
func FuzzLayers(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, 4)
	f.Fuzz(func(t *testing.T, ops []byte, n int) {
		if n < 2 || n > 6 {
			return
		}
		c := New(n)
		for i, b := range ops {
			if i > 48 {
				break
			}
			if int(b)%5 == 0 {
				_ = c.Append(Barrier, 0)
				continue
			}
			a := int(b) % n
			bb := (a + 1 + int(b)%(n-1)) % n
			if a == bb {
				continue
			}
			if int(b)%2 == 0 {
				_ = c.Append(RX, 1, a)
			} else {
				_ = c.Append(CZ, 0, a, bb)
			}
		}
		layers := c.Layers()
		total := 0
		for _, layer := range layers {
			seen := map[int]bool{}
			for _, g := range layer {
				total++
				for _, q := range g.Qubits {
					if seen[q] {
						t.Fatalf("qubit %d used twice in one layer", q)
					}
					seen[q] = true
				}
			}
		}
		want := 0
		for _, g := range c.Gates {
			if g.Name != Barrier {
				want++
			}
		}
		if total != want {
			t.Fatalf("layers hold %d gates, circuit has %d", total, want)
		}
	})
}
