package circuit

import "math"

// Decompose lowers the circuit to the hardware basis {RX, RY, RZ, CZ}
// (plus Measure). Identities used, all exact up to global phase:
//
//	H          = RY(π/2) · RZ(π)              (RZ applied first)
//	X          = RX(π)
//	CX(c,t)    = H(t) · CZ(c,t) · H(t)
//	SWAP(a,b)  = CX(a,b) · CX(b,a) · CX(a,b)
//	CP(θ;a,b)  = RZ(θ/2,a) · RZ(θ/2,b) · CX(a,b) · RZ(-θ/2,b) · CX(a,b)
//	CCX        = standard 6-CNOT Toffoli with T = RZ(π/4)
//	CSWAP(c;a,b) = CX(b,a) · CCX(c,a,b) · CX(b,a)
func Decompose(c *Circuit) *Circuit {
	out := New(c.NumQubits)
	for _, g := range c.Gates {
		lowerGate(out, g)
	}
	return out
}

func lowerGate(out *Circuit, g Gate) {
	switch g.Name {
	case RX, RY, RZ, CZ, Measure:
		out.mustAppend(g.Name, g.Param, g.Qubits...)
	case H:
		q := g.Qubits[0]
		out.mustAppend(RZ, math.Pi, q)
		out.mustAppend(RY, math.Pi/2, q)
	case X:
		out.mustAppend(RX, math.Pi, g.Qubits[0])
	case CX:
		ctrl, tgt := g.Qubits[0], g.Qubits[1]
		lowerGate(out, Gate{Name: H, Qubits: []int{tgt}})
		out.mustAppend(CZ, 0, ctrl, tgt)
		lowerGate(out, Gate{Name: H, Qubits: []int{tgt}})
	case SWAP:
		a, b := g.Qubits[0], g.Qubits[1]
		lowerGate(out, Gate{Name: CX, Qubits: []int{a, b}})
		lowerGate(out, Gate{Name: CX, Qubits: []int{b, a}})
		lowerGate(out, Gate{Name: CX, Qubits: []int{a, b}})
	case CP:
		a, b := g.Qubits[0], g.Qubits[1]
		th := g.Param
		out.mustAppend(RZ, th/2, a)
		out.mustAppend(RZ, th/2, b)
		lowerGate(out, Gate{Name: CX, Qubits: []int{a, b}})
		out.mustAppend(RZ, normalizeAngle(-th/2), b)
		lowerGate(out, Gate{Name: CX, Qubits: []int{a, b}})
	case CCX:
		lowerToffoli(out, g.Qubits[0], g.Qubits[1], g.Qubits[2])
	case CSWAP:
		ctrl, a, b := g.Qubits[0], g.Qubits[1], g.Qubits[2]
		lowerGate(out, Gate{Name: CX, Qubits: []int{b, a}})
		lowerToffoli(out, ctrl, a, b)
		lowerGate(out, Gate{Name: CX, Qubits: []int{b, a}})
	default:
		// Unknown names are preserved verbatim; the scheduler rejects
		// them later with a clear error.
		out.mustAppend(g.Name, g.Param, g.Qubits...)
	}
}

// lowerToffoli emits the standard 6-CNOT Toffoli decomposition with
// T = RZ(π/4) and T† = RZ(-π/4).
func lowerToffoli(out *Circuit, c1, c2, t int) {
	tGate := func(q int) { out.mustAppend(RZ, math.Pi/4, q) }
	tDag := func(q int) { out.mustAppend(RZ, -math.Pi/4, q) }
	cx := func(a, b int) { lowerGate(out, Gate{Name: CX, Qubits: []int{a, b}}) }
	h := func(q int) { lowerGate(out, Gate{Name: H, Qubits: []int{q}}) }

	h(t)
	cx(c2, t)
	tDag(t)
	cx(c1, t)
	tGate(t)
	cx(c2, t)
	tDag(t)
	cx(c1, t)
	tGate(c2)
	tGate(t)
	h(t)
	cx(c1, c2)
	tGate(c1)
	tDag(c2)
	cx(c1, c2)
}
