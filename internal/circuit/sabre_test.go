package circuit

import (
	"math/rand"
	"testing"

	"repro/internal/chip"
)

func TestSabreAdjacencyInvariant(t *testing.T) {
	ch := chip.Square(4, 4)
	for _, build := range []*Circuit{QFT(10), DJ(9)} {
		tr, err := TranspileSabre(Decompose(build), ch)
		if err != nil {
			t.Fatal(err)
		}
		for i, g := range tr.Gates {
			if len(g.Qubits) == 2 && g.Name != Measure {
				if !ch.Graph().HasEdge(g.Qubits[0], g.Qubits[1]) {
					t.Fatalf("gate %d (%s %v) spans non-adjacent qubits", i, g.Name, g.Qubits)
				}
			}
		}
	}
}

func TestSabrePreservesGateCount(t *testing.T) {
	ch := chip.Square(4, 4)
	logical := Decompose(QFT(8))
	tr, err := TranspileSabre(logical, ch)
	if err != nil {
		t.Fatal(err)
	}
	// Output = input gates + inserted SWAPs.
	if got, want := len(tr.Gates), len(logical.Gates)+tr.SwapCount; got != want {
		t.Errorf("gate count %d, want %d", got, want)
	}
}

func TestSabreSemanticsMatchGreedy(t *testing.T) {
	// Both routers implement the same circuit; on a simulable size the
	// final states must agree up to qubit relabeling — verified by
	// comparing measurement distributions on the logical qubits.
	ch := chip.Square(3, 3)
	logical := QFT(5)
	greedy, err := Compile(logical, ch)
	if err != nil {
		t.Fatal(err)
	}
	sabre, err := CompileSabre(logical, ch)
	if err != nil {
		t.Fatal(err)
	}
	// The compiled circuits act on physical qubits with (possibly)
	// different final permutations; compare total 2q counts sanity and
	// validate structurally. (Functional equivalence of the router is
	// covered by the adjacency + count invariants plus the greedy
	// router's own simulator-verified tests.)
	if sabre.CountTwoQubit() < greedy.CountTwoQubit()-3*sabre.SwapCount {
		t.Error("implausible gate accounting")
	}
	if err := sabre.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSabreBeatsGreedyOnCongestion(t *testing.T) {
	// On an all-to-all workload (QFT) mapped to a line-ish chip, the
	// lookahead router must not insert more SWAPs than the greedy one.
	ch := chip.Square(4, 4)
	logical := Decompose(QFT(12))
	greedy, err := Transpile(logical.Clone(), ch)
	if err != nil {
		t.Fatal(err)
	}
	sabre, err := TranspileSabre(logical, ch)
	if err != nil {
		t.Fatal(err)
	}
	if sabre.SwapCount > greedy.SwapCount {
		t.Errorf("SABRE used %d SWAPs vs greedy %d", sabre.SwapCount, greedy.SwapCount)
	}
}

func TestSabreRejectsBadInput(t *testing.T) {
	ch := chip.Square(2, 2)
	big := New(9)
	if _, err := TranspileSabre(big, ch); err == nil {
		t.Error("oversized circuit accepted")
	}
	c := New(3)
	mustApp(t, c, CCX, 0, 0, 1, 2)
	if _, err := TranspileSabre(c, chip.Square(3, 3)); err == nil {
		t.Error("3q gate accepted")
	}
}

func TestSabreHandlesRandomCircuits(t *testing.T) {
	ch := chip.Square(3, 3)
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := VQC(9, 3, rng)
		tr, err := CompileSabre(c, ch)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestSabreOnAlreadyAdjacentCircuit(t *testing.T) {
	ch := chip.Square(3, 3)
	c := New(9)
	mustApp(t, c, CZ, 0, 0, 1)
	mustApp(t, c, CZ, 0, 3, 4)
	tr, err := TranspileSabre(c, ch)
	if err != nil {
		t.Fatal(err)
	}
	if tr.SwapCount != 0 {
		t.Errorf("adjacent circuit needed %d SWAPs", tr.SwapCount)
	}
}
