package circuit

import (
	"math/rand"
	"testing"

	"repro/internal/chip"
)

func TestRandomLayeredValidation(t *testing.T) {
	c := chip.Square(2, 2)
	if _, err := RandomLayered(c, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("0 layers accepted")
	}
	if _, err := RandomLayered(c, 3, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestRandomLayeredHardwareAdjacency(t *testing.T) {
	ch := chip.Square(4, 4)
	c, err := RandomLayered(ch, 6, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, g := range c.Gates {
		if g.Name == CZ && !ch.Graph().HasEdge(g.Qubits[0], g.Qubits[1]) {
			t.Errorf("gate %d: CZ on non-adjacent qubits %v", i, g.Qubits)
		}
	}
}

func TestRandomLayeredMatchingIsDisjoint(t *testing.T) {
	ch := chip.Square(4, 4)
	c, err := RandomLayered(ch, 5, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	// Between barriers, no qubit may appear in two CZs.
	used := map[int]bool{}
	for _, g := range c.Gates {
		switch g.Name {
		case Barrier:
			used = map[int]bool{}
		case CZ:
			for _, q := range g.Qubits {
				if used[q] {
					t.Fatalf("qubit %d in two CZs of one layer", q)
				}
				used[q] = true
			}
		}
	}
}

func TestRandomLayeredParallelism(t *testing.T) {
	// The matching is maximal, so large chips should entangle many
	// pairs per layer.
	ch := chip.Square(6, 6)
	c, err := RandomLayered(ch, 1, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	czs := c.CountTwoQubit()
	// A maximal matching on a 6x6 grid has at least 12 edges
	// (matching number is 18; randomized maximal is >= half of it).
	if czs < 9 {
		t.Errorf("only %d CZs in a maximal-matching layer", czs)
	}
}

func TestRandomLayeredDeterministicInSeed(t *testing.T) {
	ch := chip.Square(3, 3)
	a, err := RandomLayered(ch, 4, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomLayered(ch, 4, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Gates) != len(b.Gates) {
		t.Fatal("gate counts differ")
	}
	for i := range a.Gates {
		if a.Gates[i].Name != b.Gates[i].Name || a.Gates[i].Param != b.Gates[i].Param {
			t.Fatal("circuits differ across identical seeds")
		}
	}
}

func TestGHZStructure(t *testing.T) {
	c := GHZ(5)
	if c.NumQubits != 5 {
		t.Fatalf("qubits %d", c.NumQubits)
	}
	var h, cx, m int
	for _, g := range c.Gates {
		switch g.Name {
		case H:
			h++
		case CX:
			cx++
		case Measure:
			m++
		}
	}
	if h != 1 || cx != 4 || m != 5 {
		t.Errorf("GHZ(5) counts: H=%d CX=%d M=%d", h, cx, m)
	}
}
