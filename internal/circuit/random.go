package circuit

import (
	"fmt"
	"math/rand"

	"repro/internal/chip"
)

// RandomLayered builds an XEB-style random circuit directly on a chip's
// connectivity: `layers` rounds, each a layer of random single-qubit
// rotations on every qubit followed by a random maximal set of
// non-overlapping CZs on hardware couplers. Because every 2q gate is
// hardware-adjacent by construction, the circuit needs no SWAP routing
// and stresses the TDM scheduler with maximally parallel entangling
// layers — the adversarial workload for Z-line multiplexing.
func RandomLayered(c *chip.Chip, layers int, rng *rand.Rand) (*Circuit, error) {
	if layers < 1 {
		return nil, fmt.Errorf("circuit: need at least 1 layer, got %d", layers)
	}
	if rng == nil {
		return nil, fmt.Errorf("circuit: RandomLayered needs an rng")
	}
	out := New(c.NumQubits())
	gates := c.TwoQubitGates()
	for l := 0; l < layers; l++ {
		for q := 0; q < c.NumQubits(); q++ {
			switch rng.Intn(3) {
			case 0:
				out.mustAppend(RX, angle(rng), q)
			case 1:
				out.mustAppend(RY, angle(rng), q)
			default:
				out.mustAppend(RZ, angle(rng), q)
			}
		}
		// Random maximal matching over the coupler set.
		order := rng.Perm(len(gates))
		busy := make([]bool, c.NumQubits())
		for _, gi := range order {
			g := gates[gi]
			if busy[g.Q1] || busy[g.Q2] {
				continue
			}
			busy[g.Q1], busy[g.Q2] = true, true
			out.mustAppend(CZ, 0, g.Q1, g.Q2)
		}
		out.mustAppend(Barrier, 0)
	}
	for q := 0; q < c.NumQubits(); q++ {
		out.mustAppend(Measure, 0, q)
	}
	return out, nil
}

// GHZ builds the n-qubit GHZ preparation circuit (H then a CX chain),
// a standard entanglement benchmark.
func GHZ(n int) *Circuit {
	c := New(n)
	c.mustAppend(H, 0, 0)
	for q := 0; q+1 < n; q++ {
		c.mustAppend(CX, 0, q, q+1)
	}
	for q := 0; q < n; q++ {
		c.mustAppend(Measure, 0, q)
	}
	return c
}
