package circuit

import (
	"math"
	"testing"
)

func TestAppendValidation(t *testing.T) {
	c := New(3)
	if err := c.Append(CZ, 0, 0); err == nil {
		t.Error("wrong operand count accepted")
	}
	if err := c.Append(RX, 0, 5); err == nil {
		t.Error("out-of-range qubit accepted")
	}
	if err := c.Append(CZ, 0, 1, 1); err == nil {
		t.Error("duplicate operand accepted")
	}
	if err := c.Append(CZ, 0, 0, 1); err != nil {
		t.Errorf("valid gate rejected: %v", err)
	}
}

func TestNewPanicsOnZeroQubits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}

func TestLayersRespectDependencies(t *testing.T) {
	c := New(3)
	mustApp(t, c, RX, 0.1, 0)
	mustApp(t, c, CZ, 0, 0, 1)
	mustApp(t, c, RX, 0.2, 2)
	layers := c.Layers()
	if len(layers) != 2 {
		t.Fatalf("got %d layers, want 2", len(layers))
	}
	// RX(0) and RX(2) in layer 0, CZ in layer 1.
	if len(layers[0]) != 2 || len(layers[1]) != 1 {
		t.Errorf("layer sizes %d/%d, want 2/1", len(layers[0]), len(layers[1]))
	}
	if layers[1][0].Name != CZ {
		t.Errorf("layer 1 holds %s, want CZ", layers[1][0].Name)
	}
}

func mustApp(t *testing.T, c *Circuit, name GateName, param float64, qs ...int) {
	t.Helper()
	if err := c.Append(name, param, qs...); err != nil {
		t.Fatal(err)
	}
}

func TestLayersPreservePerQubitOrder(t *testing.T) {
	c := New(2)
	mustApp(t, c, RX, 1, 0)
	mustApp(t, c, RY, 2, 0)
	mustApp(t, c, RZ, 3, 0)
	layers := c.Layers()
	if len(layers) != 3 {
		t.Fatalf("got %d layers, want 3", len(layers))
	}
	wantOrder := []GateName{RX, RY, RZ}
	for i, l := range layers {
		if l[0].Name != wantOrder[i] {
			t.Errorf("layer %d: %s, want %s", i, l[0].Name, wantOrder[i])
		}
	}
}

func TestBarrierFencesLayers(t *testing.T) {
	c := New(2)
	mustApp(t, c, RX, 1, 0)
	mustApp(t, c, Barrier, 0)
	mustApp(t, c, RX, 1, 1) // would be layer 0 without the barrier
	layers := c.Layers()
	if len(layers) != 2 {
		t.Fatalf("got %d layers, want 2", len(layers))
	}
	if layers[1][0].Qubits[0] != 1 {
		t.Error("gate after barrier should land in a later layer")
	}
}

func TestDepthAndTwoQubitDepth(t *testing.T) {
	c := New(4)
	mustApp(t, c, RX, 1, 0)
	mustApp(t, c, CZ, 0, 0, 1)
	mustApp(t, c, CZ, 0, 2, 3)
	mustApp(t, c, CZ, 0, 1, 2)
	if d := c.Depth(); d != 3 {
		t.Errorf("depth %d, want 3", d)
	}
	// ASAP pulls CZ(2,3) into layer 0 beside the RX, so all three
	// layers contain a CZ.
	if d := c.TwoQubitDepth(); d != 3 {
		t.Errorf("2q depth %d, want 3", d)
	}
	if n := c.CountTwoQubit(); n != 3 {
		t.Errorf("CountTwoQubit %d, want 3", n)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := New(2)
	mustApp(t, c, RX, 1, 0)
	d := c.Clone()
	d.Gates[0].Qubits[0] = 1
	if c.Gates[0].Qubits[0] != 0 {
		t.Error("clone shares operand storage")
	}
}

func TestValidate(t *testing.T) {
	c := New(2)
	mustApp(t, c, CZ, 0, 0, 1)
	if err := c.Validate(); err != nil {
		t.Errorf("valid circuit rejected: %v", err)
	}
	c.Gates[0].Qubits = []int{0, 7}
	if c.Validate() == nil {
		t.Error("corrupted circuit accepted")
	}
	c.Gates[0].Qubits = []int{0}
	if c.Validate() == nil {
		t.Error("wrong arity accepted")
	}
}

func TestNormalizeAngle(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
	} {
		if got := normalizeAngle(tc.in); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("normalizeAngle(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestGateOperandCounts(t *testing.T) {
	want := map[GateName]int{
		RX: 1, RY: 1, RZ: 1, H: 1, X: 1, Measure: 1,
		CZ: 2, CX: 2, SWAP: 2, CP: 2,
		CCX: 3, CSWAP: 3,
		Barrier: 0,
	}
	for name, n := range want {
		if got := name.NumOperands(); got != n {
			t.Errorf("%s: %d operands, want %d", name, got, n)
		}
	}
}
