// Package circuit provides the quantum-circuit intermediate
// representation the scheduling and fidelity experiments run on: a flat
// gate list over logical qubits, ASAP layering, basis-gate
// decomposition (RX/RY/RZ/CZ — the evaluation chip's basis), greedy
// SWAP routing onto a chip topology, and generators for the paper's
// five benchmark algorithms (VQC, ISING, DJ, QFT, QKNN).
package circuit

import (
	"fmt"
	"math"
)

// GateName enumerates the supported operations.
type GateName string

// Gate names. RX/RY/RZ/CZ are the hardware basis; the rest are
// decomposed before scheduling.
const (
	RX      GateName = "rx"
	RY      GateName = "ry"
	RZ      GateName = "rz"
	CZ      GateName = "cz"
	H       GateName = "h"
	X       GateName = "x"
	CX      GateName = "cx"
	SWAP    GateName = "swap"
	CP      GateName = "cp" // controlled-phase
	CCX     GateName = "ccx"
	CSWAP   GateName = "cswap"
	Measure GateName = "measure"
	// Barrier is a full-width scheduling fence: no gate may move across
	// it. It takes no operands, has zero duration and no hardware
	// resources.
	Barrier GateName = "barrier"
)

// Gate is one operation on one or more qubits.
type Gate struct {
	Name   GateName
	Qubits []int
	// Param is the rotation angle (radians) for parameterized gates.
	Param float64
}

// NumOperands returns the operand count the gate name requires.
func (n GateName) NumOperands() int {
	switch n {
	case RX, RY, RZ, H, X, Measure:
		return 1
	case CZ, CX, SWAP, CP:
		return 2
	case CCX, CSWAP:
		return 3
	default:
		return 0
	}
}

// IsTwoQubit reports whether the gate touches exactly two qubits.
func (g Gate) IsTwoQubit() bool { return len(g.Qubits) == 2 && g.Name != Measure }

// Circuit is an ordered gate list over logical qubits 0..NumQubits-1.
type Circuit struct {
	NumQubits int
	Gates     []Gate
}

// New returns an empty circuit on n qubits.
func New(n int) *Circuit {
	if n < 1 {
		panic(fmt.Sprintf("circuit: invalid qubit count %d", n))
	}
	return &Circuit{NumQubits: n}
}

// Append adds a gate after validating its operands.
func (c *Circuit) Append(name GateName, param float64, qubits ...int) error {
	if want := name.NumOperands(); want != 0 && len(qubits) != want {
		return fmt.Errorf("circuit: %s takes %d operands, got %d", name, want, len(qubits))
	}
	seen := make(map[int]bool, len(qubits))
	for _, q := range qubits {
		if q < 0 || q >= c.NumQubits {
			return fmt.Errorf("circuit: qubit %d out of range [0,%d)", q, c.NumQubits)
		}
		if seen[q] {
			return fmt.Errorf("circuit: duplicate operand %d on %s", q, name)
		}
		seen[q] = true
	}
	c.Gates = append(c.Gates, Gate{Name: name, Qubits: append([]int(nil), qubits...), Param: param})
	return nil
}

// mustAppend is the builder-internal variant: operands come from the
// generators, so failures are programming errors.
func (c *Circuit) mustAppend(name GateName, param float64, qubits ...int) {
	if err := c.Append(name, param, qubits...); err != nil {
		panic(err)
	}
}

// CountTwoQubit returns the number of 2q gates.
func (c *Circuit) CountTwoQubit() int {
	n := 0
	for _, g := range c.Gates {
		if g.IsTwoQubit() {
			n++
		}
	}
	return n
}

// Layers packs the gates into ASAP layers: each qubit is used at most
// once per layer, gate order per qubit is preserved, and Barrier gates
// fence all qubits (nothing crosses a barrier in either direction).
func (c *Circuit) Layers() [][]Gate {
	busyUntil := make([]int, c.NumQubits)
	fence := 0
	var layers [][]Gate
	for _, g := range c.Gates {
		if g.Name == Barrier {
			for _, l := range busyUntil {
				if l > fence {
					fence = l
				}
			}
			continue
		}
		layer := fence
		for _, q := range g.Qubits {
			if busyUntil[q] > layer {
				layer = busyUntil[q]
			}
		}
		for len(layers) <= layer {
			layers = append(layers, nil)
		}
		layers[layer] = append(layers[layer], g)
		for _, q := range g.Qubits {
			busyUntil[q] = layer + 1
		}
	}
	return layers
}

// Depth returns the ASAP layer count.
func (c *Circuit) Depth() int { return len(c.Layers()) }

// TwoQubitDepth returns the number of ASAP layers containing at least
// one 2q gate, the paper's Figure 14 metric under ideal (unmultiplexed)
// control.
func (c *Circuit) TwoQubitDepth() int {
	n := 0
	for _, layer := range c.Layers() {
		for _, g := range layer {
			if g.IsTwoQubit() {
				n++
				break
			}
		}
	}
	return n
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{NumQubits: c.NumQubits, Gates: make([]Gate, len(c.Gates))}
	for i, g := range c.Gates {
		out.Gates[i] = Gate{Name: g.Name, Qubits: append([]int(nil), g.Qubits...), Param: g.Param}
	}
	return out
}

// Validate checks all gates for operand-range errors, useful after
// external construction.
func (c *Circuit) Validate() error {
	for i, g := range c.Gates {
		if want := g.Name.NumOperands(); want != 0 && len(g.Qubits) != want {
			return fmt.Errorf("circuit: gate %d (%s) has %d operands, want %d", i, g.Name, len(g.Qubits), want)
		}
		for _, q := range g.Qubits {
			if q < 0 || q >= c.NumQubits {
				return fmt.Errorf("circuit: gate %d (%s) qubit %d out of range", i, g.Name, q)
			}
		}
	}
	return nil
}

// normalizeAngle maps an angle into (-π, π].
func normalizeAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}
