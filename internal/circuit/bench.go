package circuit

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/chip"
)

// The five benchmark algorithms of the paper's evaluation (§5.1).
// Every generator is deterministic given its arguments; parameterized
// circuits (VQC, ISING, QKNN) draw angles from the provided rng.

// VQC builds a hardware-efficient variational quantum classifier
// ansatz: alternating RY/RZ rotation layers and linear CZ entangling
// ladders. It is the most parallelizable benchmark.
func VQC(n, layers int, rng *rand.Rand) *Circuit {
	c := New(n)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.mustAppend(RY, angle(rng), q)
			c.mustAppend(RZ, angle(rng), q)
		}
		// Even then odd CZ rungs — two fully parallel entangling
		// sublayers per ansatz layer.
		for q := 0; q+1 < n; q += 2 {
			c.mustAppend(CZ, 0, q, q+1)
		}
		for q := 1; q+1 < n; q += 2 {
			c.mustAppend(CZ, 0, q, q+1)
		}
	}
	for q := 0; q < n; q++ {
		c.mustAppend(Measure, 0, q)
	}
	return c
}

// Ising builds a first-order Trotterization of the linear
// transverse-field Ising model: per step, RZZ(2Jdt) on every chain
// bond followed by RX(2hdt) on every site.
func Ising(n, steps int, rng *rand.Rand) *Circuit {
	c := New(n)
	for s := 0; s < steps; s++ {
		zz := angle(rng)
		for q := 0; q+1 < n; q += 2 {
			appendRZZ(c, q, q+1, zz)
		}
		for q := 1; q+1 < n; q += 2 {
			appendRZZ(c, q, q+1, zz)
		}
		hx := angle(rng)
		for q := 0; q < n; q++ {
			c.mustAppend(RX, hx, q)
		}
	}
	for q := 0; q < n; q++ {
		c.mustAppend(Measure, 0, q)
	}
	return c
}

// appendRZZ emits RZZ(θ) = CX(a,b) RZ(θ,b) CX(a,b).
func appendRZZ(c *Circuit, a, b int, theta float64) {
	c.mustAppend(CX, 0, a, b)
	c.mustAppend(RZ, theta, b)
	c.mustAppend(CX, 0, a, b)
}

// DJ builds the Deutsch–Jozsa circuit on n input qubits plus one
// ancilla (n+1 total) with a balanced oracle (CX from every input to
// the ancilla).
func DJ(n int) *Circuit {
	c := New(n + 1)
	anc := n
	c.mustAppend(X, 0, anc)
	for q := 0; q <= n; q++ {
		c.mustAppend(H, 0, q)
	}
	for q := 0; q < n; q++ {
		c.mustAppend(CX, 0, q, anc)
	}
	for q := 0; q < n; q++ {
		c.mustAppend(H, 0, q)
	}
	for q := 0; q < n; q++ {
		c.mustAppend(Measure, 0, q)
	}
	return c
}

// QFT builds the standard quantum Fourier transform with
// controlled-phase gates and the final qubit-reversal SWAP network.
func QFT(n int) *Circuit {
	c := New(n)
	for q := 0; q < n; q++ {
		c.mustAppend(H, 0, q)
		for k := q + 1; k < n; k++ {
			theta := math.Pi / math.Pow(2, float64(k-q))
			c.mustAppend(CP, theta, k, q)
		}
	}
	for q := 0; q < n/2; q++ {
		c.mustAppend(SWAP, 0, q, n-1-q)
	}
	for q := 0; q < n; q++ {
		c.mustAppend(Measure, 0, q)
	}
	return c
}

// QKNN builds a swap-test-based quantum k-nearest-neighbours distance
// kernel: an ancilla Hadamard, state-preparation rotations on the two
// registers, controlled-SWAPs between the registers, and a closing
// ancilla Hadamard. n is the register size, so the circuit uses 2n+1
// qubits.
func QKNN(n int, rng *rand.Rand) *Circuit {
	c := New(2*n + 1)
	anc := 2 * n
	for q := 0; q < n; q++ {
		c.mustAppend(RY, angle(rng), q)
		c.mustAppend(RY, angle(rng), n+q)
	}
	c.mustAppend(H, 0, anc)
	for q := 0; q < n; q++ {
		c.mustAppend(CSWAP, 0, anc, q, n+q)
	}
	c.mustAppend(H, 0, anc)
	c.mustAppend(Measure, 0, anc)
	return c
}

func angle(rng *rand.Rand) float64 {
	if rng == nil {
		return math.Pi / 4
	}
	return (rng.Float64()*2 - 1) * math.Pi
}

// BenchmarkName enumerates the five evaluation workloads.
type BenchmarkName string

// Benchmark identifiers in paper order.
const (
	BenchVQC   BenchmarkName = "VQC"
	BenchIsing BenchmarkName = "ISING"
	BenchDJ    BenchmarkName = "DJ"
	BenchQFT   BenchmarkName = "QFT"
	BenchQKNN  BenchmarkName = "QKNN"
)

// AllBenchmarks lists the five workloads in paper order.
var AllBenchmarks = []BenchmarkName{BenchVQC, BenchIsing, BenchDJ, BenchQFT, BenchQKNN}

// Benchmark builds the named benchmark sized for a chip with nq
// qubits. Sizes follow the evaluation: VQC and ISING use every qubit,
// DJ uses nq-1 inputs plus the ancilla, QFT uses every qubit, and QKNN
// uses two (nq-1)/2 registers plus the ancilla.
func Benchmark(name BenchmarkName, nq int, seed int64) (*Circuit, error) {
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case BenchVQC:
		return VQC(nq, 4, rng), nil
	case BenchIsing:
		return Ising(nq, 3, rng), nil
	case BenchDJ:
		if nq < 2 {
			return nil, fmt.Errorf("circuit: DJ needs >= 2 qubits, got %d", nq)
		}
		return DJ(nq - 1), nil
	case BenchQFT:
		return QFT(nq), nil
	case BenchQKNN:
		if nq < 3 {
			return nil, fmt.Errorf("circuit: QKNN needs >= 3 qubits, got %d", nq)
		}
		return QKNN((nq-1)/2, rng), nil
	default:
		return nil, fmt.Errorf("circuit: unknown benchmark %q", name)
	}
}

// Compile lowers a logical circuit all the way to hardware: basis
// decomposition, SWAP routing onto the chip, and re-decomposition of
// the inserted SWAPs.
func Compile(c *Circuit, ch *chip.Chip) (*Transpiled, error) {
	t, err := Transpile(Decompose(c), ch)
	if err != nil {
		return nil, err
	}
	lowered := Decompose(t.Circuit)
	return &Transpiled{Circuit: lowered, Layout: t.Layout, SwapCount: t.SwapCount}, nil
}
