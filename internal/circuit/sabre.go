package circuit

import (
	"fmt"
	"math"

	"repro/internal/chip"
)

// TranspileSabre maps a circuit onto the chip with a SABRE-style
// lookahead SWAP search: instead of walking each blocked 2q gate along
// a shortest path (the greedy Transpile), it repeatedly picks the
// single SWAP that most reduces the summed distance of the *front
// layer* of blocked gates plus a discounted extended-lookahead window.
// On congested circuits this emits substantially fewer SWAPs.
//
// Like Transpile, the output still contains SWAP gates; run Decompose
// afterwards (or use CompileSabre).
func TranspileSabre(c *Circuit, ch *chip.Chip) (*Transpiled, error) {
	if c.NumQubits > ch.NumQubits() {
		return nil, fmt.Errorf("circuit: %d logical qubits exceed chip's %d", c.NumQubits, ch.NumQubits())
	}
	for _, g := range c.Gates {
		if len(g.Qubits) > 2 {
			return nil, fmt.Errorf("circuit: decompose %s before transpiling", g.Name)
		}
	}

	// All-pairs hop distances on the chip.
	n := ch.NumQubits()
	dist := make([][]int, n)
	for v := 0; v < n; v++ {
		dist[v] = ch.Graph().BFSDistances(v)
	}

	phys := make([]int, c.NumQubits)
	logical := make([]int, n)
	for p := range logical {
		logical[p] = -1
	}
	for l := range phys {
		phys[l] = l
		logical[l] = l
	}
	layout := append([]int(nil), phys...)

	out := New(n)
	t := &Transpiled{Circuit: out, Layout: layout}

	applySwap := func(a, b int) {
		out.mustAppend(SWAP, 0, a, b)
		t.SwapCount++
		la, lb := logical[a], logical[b]
		logical[a], logical[b] = lb, la
		if la >= 0 {
			phys[la] = b
		}
		if lb >= 0 {
			phys[lb] = a
		}
	}

	gateDist := func(g Gate) int {
		return dist[phys[g.Qubits[0]]][phys[g.Qubits[1]]]
	}
	executable := func(g Gate) bool {
		if len(g.Qubits) < 2 || g.Name == Measure {
			return true
		}
		return gateDist(g) == 1
	}

	const lookahead = 12
	const extendedWeight = 0.5

	idx := 0
	emitted := 0
	for idx < len(c.Gates) {
		g := c.Gates[idx]
		if executable(g) {
			qs := make([]int, len(g.Qubits))
			for i, q := range g.Qubits {
				qs[i] = phys[q]
			}
			out.mustAppend(g.Name, g.Param, qs...)
			idx++
			emitted++
			continue
		}

		// Blocked: the front layer is this gate plus the following 2q
		// gates whose operands do not depend on anything blocked (a
		// conservative approximation: gates among the next window whose
		// operands are disjoint from all earlier unemitted gates).
		front := []Gate{g}
		busy := map[int]bool{g.Qubits[0]: true, g.Qubits[1]: true}
		var extended []Gate
		for j := idx + 1; j < len(c.Gates) && len(extended)+len(front) < lookahead; j++ {
			h := c.Gates[j]
			if len(h.Qubits) < 2 || h.Name == Measure {
				for _, q := range h.Qubits {
					busy[q] = true
				}
				continue
			}
			indep := !busy[h.Qubits[0]] && !busy[h.Qubits[1]]
			busy[h.Qubits[0]], busy[h.Qubits[1]] = true, true
			if indep && gateDist(h) > 1 {
				front = append(front, h)
			} else {
				extended = append(extended, h)
			}
		}

		score := func() float64 {
			var s float64
			for _, f := range front {
				s += float64(gateDist(f))
			}
			for _, e := range extended {
				s += extendedWeight * float64(gateDist(e))
			}
			return s
		}

		base := score()
		bestA, bestB := -1, -1
		bestScore := math.Inf(1)
		// Candidate SWAPs: chip edges touching any physical qubit of a
		// front-layer gate.
		seen := map[[2]int]bool{}
		for _, f := range front {
			for _, lq := range f.Qubits {
				pq := phys[lq]
				for _, nb := range ch.Graph().Neighbors(pq) {
					a, b := pq, nb
					if a > b {
						a, b = b, a
					}
					key := [2]int{a, b}
					if seen[key] {
						continue
					}
					seen[key] = true
					// Trial swap.
					applySwapNoEmit(logical, phys, a, b)
					s := score()
					applySwapNoEmit(logical, phys, a, b) // revert
					if s < bestScore {
						bestScore = s
						bestA, bestB = a, b
					}
				}
			}
		}

		if bestA >= 0 && bestScore < base {
			applySwap(bestA, bestB)
			continue
		}
		// No improving swap (rare local minimum): force progress by
		// walking the blocked gate's first operand one hop along a
		// shortest path, as the greedy router does.
		path := shortestPath(ch, phys[g.Qubits[0]], phys[g.Qubits[1]])
		if path == nil {
			return nil, fmt.Errorf("circuit: qubits %d and %d disconnected on chip %s",
				phys[g.Qubits[0]], phys[g.Qubits[1]], ch.Name)
		}
		applySwap(path[0], path[1])
	}
	return t, nil
}

// applySwapNoEmit swaps the mapping without recording a gate (used for
// trial moves).
func applySwapNoEmit(logical, phys []int, a, b int) {
	la, lb := logical[a], logical[b]
	logical[a], logical[b] = lb, la
	if la >= 0 {
		phys[la] = b
	}
	if lb >= 0 {
		phys[lb] = a
	}
}

// CompileSabre lowers a logical circuit to hardware with the SABRE
// router: basis decomposition, lookahead SWAP routing, and
// re-decomposition of the inserted SWAPs.
func CompileSabre(c *Circuit, ch *chip.Chip) (*Transpiled, error) {
	t, err := TranspileSabre(Decompose(c), ch)
	if err != nil {
		return nil, err
	}
	lowered := Decompose(t.Circuit)
	return &Transpiled{Circuit: lowered, Layout: t.Layout, SwapCount: t.SwapCount}, nil
}
