package circuit

import (
	"math/rand"
	"testing"

	"repro/internal/chip"
)

func isBasis(name GateName) bool {
	switch name {
	case RX, RY, RZ, CZ, Measure, Barrier:
		return true
	}
	return false
}

func TestDecomposeProducesBasisOnly(t *testing.T) {
	c := New(4)
	mustApp(t, c, H, 0, 0)
	mustApp(t, c, X, 0, 1)
	mustApp(t, c, CX, 0, 0, 1)
	mustApp(t, c, SWAP, 0, 1, 2)
	mustApp(t, c, CP, 0.7, 2, 3)
	mustApp(t, c, CCX, 0, 0, 1, 2)
	mustApp(t, c, CSWAP, 0, 0, 2, 3)
	mustApp(t, c, Measure, 0, 0)
	d := Decompose(c)
	for i, g := range d.Gates {
		if !isBasis(g.Name) {
			t.Errorf("gate %d (%s) is not in the hardware basis", i, g.Name)
		}
	}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDecomposeGateCounts(t *testing.T) {
	// CX = 2 H-pairs + 1 CZ = 5 basis gates; SWAP = 3 CX = 15; the
	// 6-CNOT Toffoli = 6 CX + 2 H + 7 T-ish RZ.
	count := func(build func(c *Circuit)) (cz, total int) {
		c := New(3)
		build(c)
		d := Decompose(c)
		for _, g := range d.Gates {
			if g.Name == CZ {
				cz++
			}
		}
		return cz, len(d.Gates)
	}
	if cz, _ := count(func(c *Circuit) { mustApp(t, c, CX, 0, 0, 1) }); cz != 1 {
		t.Errorf("CX should lower to 1 CZ, got %d", cz)
	}
	if cz, _ := count(func(c *Circuit) { mustApp(t, c, SWAP, 0, 0, 1) }); cz != 3 {
		t.Errorf("SWAP should lower to 3 CZ, got %d", cz)
	}
	if cz, _ := count(func(c *Circuit) { mustApp(t, c, CP, 1, 0, 1) }); cz != 2 {
		t.Errorf("CP should lower to 2 CZ, got %d", cz)
	}
	if cz, _ := count(func(c *Circuit) { mustApp(t, c, CCX, 0, 0, 1, 2) }); cz != 6 {
		t.Errorf("Toffoli should lower to 6 CZ, got %d", cz)
	}
	if cz, _ := count(func(c *Circuit) { mustApp(t, c, CSWAP, 0, 0, 1, 2) }); cz != 8 {
		t.Errorf("CSWAP should lower to 8 CZ, got %d", cz)
	}
}

func TestDecomposeIdempotentOnBasis(t *testing.T) {
	c := New(2)
	mustApp(t, c, RX, 0.3, 0)
	mustApp(t, c, CZ, 0, 0, 1)
	mustApp(t, c, RZ, -0.5, 1)
	d := Decompose(c)
	if len(d.Gates) != len(c.Gates) {
		t.Fatalf("basis circuit changed size: %d -> %d", len(c.Gates), len(d.Gates))
	}
	for i := range d.Gates {
		if d.Gates[i].Name != c.Gates[i].Name || d.Gates[i].Param != c.Gates[i].Param {
			t.Errorf("gate %d changed", i)
		}
	}
}

func TestTranspileAdjacency(t *testing.T) {
	ch := chip.Square(3, 3)
	c := New(9)
	mustApp(t, c, CZ, 0, 0, 8) // far corners: needs SWAPs
	tr, err := Transpile(Decompose(c), ch)
	if err != nil {
		t.Fatal(err)
	}
	if tr.SwapCount == 0 {
		t.Error("corner-to-corner CZ should need SWAPs")
	}
	// Every 2q gate in the output must touch adjacent physical qubits.
	for i, g := range tr.Gates {
		if len(g.Qubits) == 2 && g.Name != Measure {
			if !ch.Graph().HasEdge(g.Qubits[0], g.Qubits[1]) {
				t.Errorf("gate %d (%s %v) spans non-adjacent qubits", i, g.Name, g.Qubits)
			}
		}
	}
}

func TestTranspileNoSwapsWhenAdjacent(t *testing.T) {
	ch := chip.Square(3, 3)
	c := New(9)
	mustApp(t, c, CZ, 0, 0, 1)
	mustApp(t, c, CZ, 0, 3, 4)
	tr, err := Transpile(c, ch)
	if err != nil {
		t.Fatal(err)
	}
	if tr.SwapCount != 0 {
		t.Errorf("adjacent gates needed %d SWAPs", tr.SwapCount)
	}
}

func TestTranspileRejectsTooManyQubits(t *testing.T) {
	ch := chip.Square(2, 2)
	c := New(9)
	if _, err := Transpile(c, ch); err == nil {
		t.Error("oversized circuit accepted")
	}
}

func TestTranspileRejectsThreeQubitGates(t *testing.T) {
	ch := chip.Square(3, 3)
	c := New(3)
	mustApp(t, c, CCX, 0, 0, 1, 2)
	if _, err := Transpile(c, ch); err == nil {
		t.Error("3q gate accepted without decomposition")
	}
}

func TestCompilePipeline(t *testing.T) {
	ch := chip.Square(4, 4)
	c := QFT(6)
	compiled, err := Compile(c, ch)
	if err != nil {
		t.Fatal(err)
	}
	if err := compiled.Validate(); err != nil {
		t.Error(err)
	}
	for i, g := range compiled.Gates {
		if !isBasis(g.Name) {
			t.Errorf("compiled gate %d (%s) not basis", i, g.Name)
		}
		if len(g.Qubits) == 2 && g.Name == CZ {
			if !ch.Graph().HasEdge(g.Qubits[0], g.Qubits[1]) {
				t.Errorf("compiled CZ %v non-adjacent", g.Qubits)
			}
		}
	}
}

func TestBenchmarkGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name    string
		c       *Circuit
		qubits  int
		hasTwoQ bool
	}{
		{"VQC", VQC(6, 3, rng), 6, true},
		{"Ising", Ising(6, 2, rng), 6, true},
		{"DJ", DJ(5), 6, true},
		{"QFT", QFT(5), 5, true},
		{"QKNN", QKNN(3, rng), 7, true},
	}
	for _, tc := range cases {
		if tc.c.NumQubits != tc.qubits {
			t.Errorf("%s: %d qubits, want %d", tc.name, tc.c.NumQubits, tc.qubits)
		}
		if err := tc.c.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		if tc.hasTwoQ && Decompose(tc.c).CountTwoQubit() == 0 {
			t.Errorf("%s: no 2q gates", tc.name)
		}
	}
}

func TestQFTGateCount(t *testing.T) {
	// QFT(n): n H + n(n-1)/2 CP + floor(n/2) SWAP + n measures.
	n := 6
	c := QFT(n)
	var h, cp, swap, meas int
	for _, g := range c.Gates {
		switch g.Name {
		case H:
			h++
		case CP:
			cp++
		case SWAP:
			swap++
		case Measure:
			meas++
		}
	}
	if h != n || cp != n*(n-1)/2 || swap != n/2 || meas != n {
		t.Errorf("QFT(%d) counts: H=%d CP=%d SWAP=%d M=%d", n, h, cp, swap, meas)
	}
}

func TestBenchmarkDispatcher(t *testing.T) {
	for _, name := range AllBenchmarks {
		c, err := Benchmark(name, 9, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.NumQubits > 9 {
			t.Errorf("%s: %d qubits exceeds request", name, c.NumQubits)
		}
	}
	if _, err := Benchmark("nope", 9, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Benchmark(BenchDJ, 1, 1); err == nil {
		t.Error("DJ with 1 qubit accepted")
	}
	if _, err := Benchmark(BenchQKNN, 2, 1); err == nil {
		t.Error("QKNN with 2 qubits accepted")
	}
}

func TestBenchmarksDeterministicInSeed(t *testing.T) {
	a, err := Benchmark(BenchVQC, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Benchmark(BenchVQC, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Gates) != len(b.Gates) {
		t.Fatal("gate counts differ")
	}
	for i := range a.Gates {
		if a.Gates[i].Param != b.Gates[i].Param {
			t.Fatal("parameters differ across identical seeds")
		}
	}
}

func TestVQCParallelism(t *testing.T) {
	// VQC's entangling rungs split into exactly two sublayers per
	// ansatz layer, so 2q depth = 2 * layers.
	rng := rand.New(rand.NewSource(2))
	c := Decompose(VQC(8, 3, rng))
	// Each CZ rung layer stays parallel: depth bounded well below gate
	// count.
	if d, n := c.TwoQubitDepth(), c.CountTwoQubit(); d*3 > n*2 {
		t.Errorf("VQC 2q depth %d vs %d gates: insufficient parallelism", d, n)
	}
}
