package circuit

import (
	"fmt"

	"repro/internal/chip"
)

// Transpiled is a circuit mapped onto physical chip qubits.
type Transpiled struct {
	*Circuit
	// Layout maps logical qubit -> physical qubit at circuit start.
	Layout []int
	// SwapCount is the number of routing SWAPs inserted.
	SwapCount int
}

// Transpile maps a logical circuit onto the chip with the trivial
// initial layout (logical i -> physical i) and greedy SWAP routing:
// whenever a 2q gate spans non-adjacent physical qubits, SWAPs walk one
// operand along a shortest topological path until the pair is adjacent.
// The output circuit acts on physical qubit indices and still contains
// high-level gates; run Decompose afterwards for the hardware basis.
func Transpile(c *Circuit, ch *chip.Chip) (*Transpiled, error) {
	if c.NumQubits > ch.NumQubits() {
		return nil, fmt.Errorf("circuit: %d logical qubits exceed chip's %d", c.NumQubits, ch.NumQubits())
	}
	// phys[l] is the current physical home of logical qubit l;
	// logical[p] the inverse (or -1).
	phys := make([]int, c.NumQubits)
	logical := make([]int, ch.NumQubits())
	for p := range logical {
		logical[p] = -1
	}
	for l := range phys {
		phys[l] = l
		logical[l] = l
	}
	layout := append([]int(nil), phys...)

	out := New(ch.NumQubits())
	t := &Transpiled{Circuit: out, Layout: layout}
	g := ch.Graph()

	swapPhys := func(a, b int) {
		out.mustAppend(SWAP, 0, a, b)
		t.SwapCount++
		la, lb := logical[a], logical[b]
		logical[a], logical[b] = lb, la
		if la >= 0 {
			phys[la] = b
		}
		if lb >= 0 {
			phys[lb] = a
		}
	}

	for _, gate := range c.Gates {
		switch len(gate.Qubits) {
		case 1:
			out.mustAppend(gate.Name, gate.Param, phys[gate.Qubits[0]])
		case 2:
			a, b := phys[gate.Qubits[0]], phys[gate.Qubits[1]]
			if !g.HasEdge(a, b) {
				path := shortestPath(ch, a, b)
				if path == nil {
					return nil, fmt.Errorf("circuit: qubits %d and %d are disconnected on chip %s", a, b, ch.Name)
				}
				// Walk operand a along the path until adjacent to b.
				for i := 0; i+2 < len(path); i++ {
					swapPhys(path[i], path[i+1])
				}
				a, b = phys[gate.Qubits[0]], phys[gate.Qubits[1]]
			}
			out.mustAppend(gate.Name, gate.Param, a, b)
		case 3:
			// 3q gates must be decomposed before transpilation.
			return nil, fmt.Errorf("circuit: decompose %s before transpiling", gate.Name)
		default:
			out.mustAppend(gate.Name, gate.Param, gate.Qubits...)
		}
	}
	return t, nil
}

// shortestPath returns one BFS shortest path between physical qubits a
// and b, or nil when disconnected.
func shortestPath(ch *chip.Chip, a, b int) []int {
	g := ch.Graph()
	prev := make([]int, g.N())
	for i := range prev {
		prev[i] = -1
	}
	prev[a] = a
	queue := []int{a}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == b {
			break
		}
		for _, v := range g.Neighbors(u) {
			if prev[v] < 0 {
				prev[v] = u
				queue = append(queue, v)
			}
		}
	}
	if prev[b] < 0 {
		return nil
	}
	var rev []int
	for cur := b; ; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == a {
			break
		}
	}
	path := make([]int, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path
}
