package stage

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// Key is the deterministic artifact key of one stage execution: a
// collision-resistant digest of everything that participates in the
// stage's output — the chip fingerprint, the normalized-options subset
// the stage consumes, its seed stream and the keys of its upstream
// artifacts. Two executions with equal keys are guaranteed (by the
// pipeline's determinism contract) to produce bit-identical artifacts,
// which is what lets the Store return a cached artifact instead of
// re-running the stage.
type Key string

// KeyBuilder accumulates key components into a SHA-256 digest. Every
// component is written with a type tag and, for variable-length data, a
// length prefix, so distinct component sequences can never collide by
// concatenation (e.g. "ab"+"c" vs "a"+"bc") — the property FuzzArtifactKey
// exercises.
type KeyBuilder struct {
	h hash.Hash
}

// NewKey starts a key for the named domain (typically the stage name).
// The domain is the first component, so equal payloads under different
// stage names yield different keys.
func NewKey(domain string) *KeyBuilder {
	b := &KeyBuilder{h: sha256.New()}
	return b.String(domain)
}

func (b *KeyBuilder) tag(t byte, payload []byte) *KeyBuilder {
	var hdr [9]byte
	hdr[0] = t
	binary.BigEndian.PutUint64(hdr[1:], uint64(len(payload)))
	b.h.Write(hdr[:])
	b.h.Write(payload)
	return b
}

func (b *KeyBuilder) fixed(t byte, v uint64) *KeyBuilder {
	var buf [9]byte
	buf[0] = t
	binary.BigEndian.PutUint64(buf[1:], v)
	b.h.Write(buf[:])
	return b
}

// String appends a string component.
func (b *KeyBuilder) String(s string) *KeyBuilder { return b.tag('s', []byte(s)) }

// Bytes appends a raw byte-slice component.
func (b *KeyBuilder) Bytes(p []byte) *KeyBuilder { return b.tag('b', p) }

// Key appends another artifact key, chaining this artifact's lineage to
// its inputs'.
func (b *KeyBuilder) Key(k Key) *KeyBuilder { return b.tag('k', []byte(k)) }

// Int64 appends a signed 64-bit component (seeds, budgets).
func (b *KeyBuilder) Int64(v int64) *KeyBuilder { return b.fixed('i', uint64(v)) }

// Uint64 appends an unsigned 64-bit component.
func (b *KeyBuilder) Uint64(v uint64) *KeyBuilder { return b.fixed('u', v) }

// Int appends an int component.
func (b *KeyBuilder) Int(v int) *KeyBuilder { return b.Int64(int64(v)) }

// Float64 appends a float64 component by its IEEE-754 bits, so -0.0 and
// +0.0 (different bits) key differently and NaNs key stably.
func (b *KeyBuilder) Float64(v float64) *KeyBuilder { return b.fixed('f', math.Float64bits(v)) }

// Bool appends a boolean component.
func (b *KeyBuilder) Bool(v bool) *KeyBuilder {
	if v {
		return b.fixed('t', 1)
	}
	return b.fixed('t', 0)
}

// Floats appends a float64 slice with its length, so [1][2] and [1,2]
// differ.
func (b *KeyBuilder) Floats(vs []float64) *KeyBuilder {
	b.fixed('F', uint64(len(vs)))
	for _, v := range vs {
		b.Float64(v)
	}
	return b
}

// Ints appends an int slice with its length.
func (b *KeyBuilder) Ints(vs []int) *KeyBuilder {
	b.fixed('I', uint64(len(vs)))
	for _, v := range vs {
		b.Int(v)
	}
	return b
}

// Done finalizes the key. The builder must not be reused afterwards.
func (b *KeyBuilder) Done() Key {
	return Key(hex.EncodeToString(b.h.Sum(nil)))
}
