package stage

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
)

func TestGraphValidation(t *testing.T) {
	if _, err := NewGraph(Stage{Name: "a"}, Stage{Name: "a"}); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := NewGraph(Stage{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewGraph(Stage{Name: "a", Inputs: []string{"b"}}); err == nil {
		t.Error("forward/unknown input accepted")
	}
	if _, err := NewGraph(
		Stage{Name: "a"},
		Stage{Name: "b", Inputs: []string{"a"}},
	); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}
}

func diamond() *Graph {
	return MustGraph(
		Stage{Name: "src"},
		Stage{Name: "left", Inputs: []string{"src"}},
		Stage{Name: "right", Inputs: []string{"src"}},
		Stage{Name: "sink", Inputs: []string{"left", "right"}},
	)
}

func TestGraphDownstreamUpstream(t *testing.T) {
	g := diamond()
	if got := g.Downstream("src"); !reflect.DeepEqual(got, []string{"left", "right", "sink"}) {
		t.Errorf("Downstream(src) = %v", got)
	}
	if got := g.Downstream("left"); !reflect.DeepEqual(got, []string{"sink"}) {
		t.Errorf("Downstream(left) = %v", got)
	}
	if got := g.Downstream("sink"); len(got) != 0 {
		t.Errorf("Downstream(sink) = %v", got)
	}
	if got := g.Downstream("missing"); got != nil {
		t.Errorf("Downstream(missing) = %v", got)
	}
	if got := g.Upstream("sink"); !reflect.DeepEqual(got, []string{"src", "left", "right"}) {
		t.Errorf("Upstream(sink) = %v", got)
	}
	if !g.Contains("right") || g.Contains("nope") {
		t.Error("Contains is wrong")
	}
	if got := g.Inputs("sink"); !reflect.DeepEqual(got, []string{"left", "right"}) {
		t.Errorf("Inputs(sink) = %v", got)
	}
}

func TestKeyDeterminismAndSeparation(t *testing.T) {
	k1 := NewKey("s").String("ab").Int64(7).Float64(1.5).Bool(true).Done()
	k2 := NewKey("s").String("ab").Int64(7).Float64(1.5).Bool(true).Done()
	if k1 != k2 {
		t.Error("identical component sequences produced different keys")
	}
	distinct := []Key{
		k1,
		NewKey("t").String("ab").Int64(7).Float64(1.5).Bool(true).Done(), // domain
		NewKey("s").String("ab").Int64(8).Float64(1.5).Bool(true).Done(), // int
		NewKey("s").String("ab").Int64(7).Float64(1.5).Bool(false).Done(),
		NewKey("s").String("a").String("b").Int64(7).Float64(1.5).Bool(true).Done(), // split string
		NewKey("s").String("ab").Uint64(7).Float64(1.5).Bool(true).Done(),           // type tag
	}
	seen := map[Key]int{}
	for i, k := range distinct {
		if j, dup := seen[k]; dup {
			t.Errorf("keys %d and %d collide: %s", i, j, k)
		}
		seen[k] = i
	}
	// Slice components must encode their boundaries.
	if NewKey("s").Floats([]float64{1, 2}).Floats(nil).Done() ==
		NewKey("s").Floats([]float64{1}).Floats([]float64{2}).Done() {
		t.Error("float slice boundary collision")
	}
	if NewKey("s").Ints([]int{1, 2}).Done() == NewKey("s").Ints([]int{1}).Int(2).Done() {
		t.Error("int slice vs scalar collision")
	}
}

func TestStoreHitMissAndStats(t *testing.T) {
	s := NewStore()
	ctx := context.Background()
	calls := 0
	run := func() (int, bool) {
		v, hit, err := Do(ctx, s, "fit", NewKey("fit").Int(1).Done(), 4, func(context.Context) (int, error) {
			calls++
			return 42, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v, hit
	}
	if v, hit := run(); v != 42 || hit {
		t.Fatalf("cold run: v=%d hit=%v", v, hit)
	}
	if v, hit := run(); v != 42 || !hit {
		t.Fatalf("warm run: v=%d hit=%v", v, hit)
	}
	if calls != 1 {
		t.Fatalf("stage executed %d times", calls)
	}
	st, ok := s.StatsFor("fit")
	if !ok || st.Runs != 2 || st.Hits != 1 || st.Misses != 1 || st.Workers != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if s.Len() != 1 {
		t.Fatalf("store holds %d artifacts", s.Len())
	}
	if _, ok := s.Get(NewKey("fit").Int(1).Done()); !ok {
		t.Error("Get missed a cached artifact")
	}
	if _, ok := s.Get(NewKey("fit").Int(2).Done()); ok {
		t.Error("Get invented an artifact")
	}
}

func TestStoreErrorsNotCached(t *testing.T) {
	s := NewStore()
	ctx := context.Background()
	key := NewKey("flaky").Done()
	boom := errors.New("boom")
	calls := 0
	_, _, err := Do(ctx, s, "flaky", key, 1, func(context.Context) (int, error) {
		calls++
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, hit, err := Do(ctx, s, "flaky", key, 1, func(context.Context) (int, error) {
		calls++
		return 7, nil
	})
	if err != nil || v != 7 || hit {
		t.Fatalf("retry: v=%d hit=%v err=%v", v, hit, err)
	}
	if calls != 2 {
		t.Fatalf("stage executed %d times", calls)
	}
	st, _ := s.StatsFor("flaky")
	if st.Misses != 1 || st.Hits != 0 || st.Runs != 2 {
		t.Fatalf("stats after failure = %+v", st)
	}
}

// TestStoreSingleFlight checks that concurrent requests for one key
// execute the stage once and all observe its artifact.
func TestStoreSingleFlight(t *testing.T) {
	s := NewStore()
	ctx := context.Background()
	key := NewKey("slow").Done()
	var mu sync.Mutex
	calls := 0
	gate := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := Do(ctx, s, "slow", key, 1, func(context.Context) (int, error) {
				mu.Lock()
				calls++
				mu.Unlock()
				<-gate
				return 99, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("stage executed %d times under contention", calls)
	}
	for i, v := range results {
		if v != 99 {
			t.Fatalf("waiter %d saw %d", i, v)
		}
	}
}

func TestDoTypeMismatch(t *testing.T) {
	s := NewStore()
	ctx := context.Background()
	key := NewKey("shared").Done()
	if _, _, err := Do(ctx, s, "a", key, 1, func(context.Context) (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Do(ctx, s, "b", key, 1, func(context.Context) (string, error) { return "x", nil }); err == nil {
		t.Error("type-mismatched artifact accepted")
	}
}

func TestReportTextJSONAndSub(t *testing.T) {
	s := NewStore()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, _, err := Do(ctx, s, "fit", NewKey("fit").Int(i%2).Done(), 2, func(context.Context) (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Report()
	if before.Hits != 1 || before.Misses != 2 {
		t.Fatalf("report totals = %d hits %d misses", before.Hits, before.Misses)
	}
	if _, _, err := Do(ctx, s, "fit", NewKey("fit").Int(0).Done(), 2, func(context.Context) (int, error) { return 0, nil }); err != nil {
		t.Fatal(err)
	}
	delta := s.Report().Sub(before)
	if delta.Hits != 1 || delta.Misses != 0 {
		t.Fatalf("delta = %d hits %d misses", delta.Hits, delta.Misses)
	}
	if len(delta.Stages) != 1 || delta.Stages[0].Runs != 1 {
		t.Fatalf("delta stages = %+v", delta.Stages)
	}

	text := s.Report().Text()
	for _, want := range []string{"stage", "fit", "hits", "total:"} {
		if !strings.Contains(text, want) {
			t.Errorf("report text missing %q:\n%s", want, text)
		}
	}
	data, err := s.Report().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if len(decoded.Stages) != 1 || decoded.Stages[0].Name != "fit" {
		t.Fatalf("decoded report = %+v", decoded)
	}
}

func TestStoreConcurrentDistinctKeys(t *testing.T) {
	s := NewStore()
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("stage-%d", i%4)
			v, _, err := Do(ctx, s, name, NewKey(name).Int(i).Done(), 1, func(context.Context) (int, error) { return i, nil })
			if err != nil || v != i {
				t.Errorf("task %d: v=%d err=%v", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 16 {
		t.Fatalf("store holds %d artifacts", s.Len())
	}
}

// TestDoAttachesPprofLabels: stage execution must run under pprof
// labels carrying the stage name and an artifact-key prefix so CPU and
// heap profiles attribute samples to pipeline stages. The labels must
// be gone again after Do returns.
func TestDoAttachesPprofLabels(t *testing.T) {
	s := NewStore()
	ctx := context.Background()
	key := NewKey("labelled").Int(7).Done()

	var gotStage, gotArtifact string
	var okStage, okArtifact bool
	_, _, err := s.Do(ctx, "labelled", key, 1, func(ctx context.Context) (any, error) {
		gotStage, okStage = pprof.Label(ctx, "stage")
		gotArtifact, okArtifact = pprof.Label(ctx, "artifact")
		return 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !okStage || gotStage != "labelled" {
		t.Errorf("stage label = %q (present=%v), want \"labelled\"", gotStage, okStage)
	}
	wantPrefix := keyPrefix(key)
	if !okArtifact || gotArtifact != wantPrefix {
		t.Errorf("artifact label = %q (present=%v), want %q", gotArtifact, okArtifact, wantPrefix)
	}
	if len(wantPrefix) != 12 {
		t.Errorf("key prefix %q not shortened to 12 chars", wantPrefix)
	}
	if _, leaked := pprof.Label(ctx, "stage"); leaked {
		t.Error("stage label leaked past Do on the caller's context")
	}

	// A panicking fn still resolves to a *PanicError with labels popped.
	_, _, err = s.Do(ctx, "boom", NewKey("boom").Done(), 1, func(context.Context) (any, error) {
		panic("kaboom")
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Stage != "boom" {
		t.Fatalf("panic under labels not converted: %v", err)
	}
}
