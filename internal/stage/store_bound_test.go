package stage

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// keyN returns a distinct, well-formed artifact key.
func keyN(i int) Key {
	return NewKey("bound-test").Int(i).Done()
}

// payload is a recognizable artifact with a predictable footprint.
func payload(n int) []float64 {
	return make([]float64, n)
}

// TestBoundedStoreEvictsLRU fills a bounded store past its budget and
// checks the byte accounting stays at/under the cap, the oldest
// artifacts are the ones forgotten, and the eviction counter matches.
func TestBoundedStoreEvictsLRU(t *testing.T) {
	// One shard so the LRU order is global and the test deterministic.
	per := EstimateSize(payload(128))
	s := NewStoreWith(Config{MaxBytes: 4*per + per/2, Shards: 1})
	ctx := context.Background()

	for i := 0; i < 10; i++ {
		_, _, err := s.Do(ctx, "produce", keyN(i), 1, func(context.Context) (any, error) {
			return payload(128), nil
		})
		if err != nil {
			t.Fatalf("Do %d: %v", i, err)
		}
	}
	if got, cap := s.Bytes(), s.MaxBytes(); got > cap {
		t.Fatalf("Bytes() = %d exceeds cap %d", got, cap)
	}
	if s.Evictions() == 0 {
		t.Fatal("no evictions recorded despite overflow")
	}
	if int64(s.Len())+s.Evictions() != 10 {
		t.Fatalf("Len() %d + Evictions() %d != 10 inserts", s.Len(), s.Evictions())
	}
	// The most recent artifact must still be cached, the very first gone.
	if _, ok := s.Get(keyN(9)); !ok {
		t.Fatal("most recently inserted artifact was evicted")
	}
	if _, ok := s.Get(keyN(0)); ok {
		t.Fatal("least recently used artifact survived past the budget")
	}
}

// TestBoundedStoreTouchPromotes re-reads an old artifact before
// overflowing the budget: the touched artifact must survive eviction
// while untouched peers of the same age are dropped.
func TestBoundedStoreTouchPromotes(t *testing.T) {
	per := EstimateSize(payload(128))
	s := NewStoreWith(Config{MaxBytes: 3 * per, Shards: 1})
	ctx := context.Background()
	mk := func(i int) {
		t.Helper()
		if _, _, err := s.Do(ctx, "produce", keyN(i), 1, func(context.Context) (any, error) {
			return payload(128), nil
		}); err != nil {
			t.Fatalf("Do %d: %v", i, err)
		}
	}
	mk(0)
	mk(1)
	mk(2)
	if _, ok := s.Get(keyN(0)); !ok { // touch 0: LRU order is now 1, 2, 0
		t.Fatal("artifact 0 missing before overflow")
	}
	mk(3) // evicts 1 (now the LRU tail)
	if _, ok := s.Get(keyN(0)); !ok {
		t.Fatal("recently touched artifact was evicted")
	}
	if _, ok := s.Get(keyN(1)); ok {
		t.Fatal("LRU artifact survived; touch did not reorder")
	}
}

// TestBoundedStoreOversizedArtifact: an artifact bigger than the whole
// budget is still returned to its caller (and its waiters) but is not
// retained.
func TestBoundedStoreOversizedArtifact(t *testing.T) {
	s := NewStoreWith(Config{MaxBytes: 256, Shards: 1})
	ctx := context.Background()
	v, hit, err := s.Do(ctx, "produce", keyN(0), 1, func(context.Context) (any, error) {
		return payload(4096), nil
	})
	if err != nil || hit {
		t.Fatalf("Do = hit %v err %v", hit, err)
	}
	if len(v.([]float64)) != 4096 {
		t.Fatalf("artifact truncated: %d elements", len(v.([]float64)))
	}
	if _, ok := s.Get(keyN(0)); ok {
		t.Fatal("oversized artifact was cached past the budget")
	}
	if s.Bytes() != 0 {
		t.Fatalf("Bytes() = %d after evicting the only artifact", s.Bytes())
	}
}

// TestBoundedStoreObsCounters routes a bounded store into a registry
// and checks the eviction counter and occupancy gauges are published.
func TestBoundedStoreObsCounters(t *testing.T) {
	per := EstimateSize(payload(128))
	s := NewStoreWith(Config{MaxBytes: 2 * per, Shards: 1})
	reg := obs.New()
	s.Observe(reg)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, _, err := s.Do(ctx, "produce", keyN(i), 1, func(context.Context) (any, error) {
			return payload(128), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["stage/evictions"] != s.Evictions() || s.Evictions() == 0 {
		t.Fatalf("stage/evictions = %d, store says %d", snap.Counters["stage/evictions"], s.Evictions())
	}
	if snap.Gauges["stage/cache_bytes"] != s.Bytes() {
		t.Fatalf("stage/cache_bytes gauge %d != Bytes() %d", snap.Gauges["stage/cache_bytes"], s.Bytes())
	}
	if snap.Gauges["stage/cache_entries"] != int64(s.Len()) {
		t.Fatalf("stage/cache_entries gauge %d != Len() %d", snap.Gauges["stage/cache_entries"], s.Len())
	}
}

// TestBoundedStoreConcurrentCap hammers a small bounded store from many
// goroutines over a rotating key set and asserts the cap holds at every
// quiescent point and all values round-trip correctly. Run under -race
// this also exercises the sharded locking.
func TestBoundedStoreConcurrentCap(t *testing.T) {
	per := EstimateSize(payload(64))
	s := NewStoreWith(Config{MaxBytes: 8 * per, Shards: 4})
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keyN(i % 32)
				v, _, err := s.Do(ctx, "produce", k, 1, func(context.Context) (any, error) {
					return payload(64), nil
				})
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if len(v.([]float64)) != 64 {
					t.Errorf("goroutine %d: wrong artifact", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Per-shard budgets mean the global total can transiently exceed
	// nothing: after quiescence every shard is at/under its share.
	if s.Bytes() > s.MaxBytes() {
		t.Fatalf("Bytes() = %d exceeds cap %d after drain", s.Bytes(), s.MaxBytes())
	}
}

// waitForWaiters blocks until the stage/singleflight_waits counter
// reaches want. The counter increments after a waiter has captured the
// in-flight entry (and before it blocks on the ready channel), so once
// it reads `want` every waiter is guaranteed to observe that flight's
// outcome no matter how the scheduler interleaves the cleanup.
func waitForWaiters(t *testing.T, reg *obs.Registry, want int64) {
	t.Helper()
	c := reg.Counter("stage/singleflight_waits")
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c.Load() >= want {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("singleflight_waits stuck at %d, want %d", c.Load(), want)
}

// TestStorePanicReachesAllWaiters: a panicking execution must resolve
// into a *PanicError for the executor and every concurrent waiter —
// nobody blocks forever — and the key must stay uncached so a retry
// can succeed.
func TestStorePanicReachesAllWaiters(t *testing.T) {
	s := NewStore()
	reg := obs.New()
	s.Observe(reg)
	ctx := context.Background()
	k := keyN(0)

	release := make(chan struct{})
	started := make(chan struct{})
	var execs atomic.Int32

	const waiters = 8
	errs := make(chan error, waiters+1)
	go func() {
		_, _, err := s.Do(ctx, "boom", k, 1, func(context.Context) (any, error) {
			execs.Add(1)
			close(started)
			<-release
			panic("chaos")
		})
		errs <- err
	}()
	<-started
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := s.Do(ctx, "boom", k, 1, func(context.Context) (any, error) {
				execs.Add(1)
				return nil, nil
			})
			errs <- err
		}()
	}
	waitForWaiters(t, reg, waiters)
	close(release)
	wg.Wait()

	for i := 0; i < waiters+1; i++ {
		err := <-errs
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("caller %d: err = %v, want PanicError", i, err)
		}
		if pe.Stage != "boom" || pe.Value != "chaos" {
			t.Fatalf("PanicError = %+v", pe)
		}
	}
	if snap := reg.Snapshot(); snap.Counters["stage/panics"] != 1 {
		t.Fatalf("stage/panics = %d, want 1", snap.Counters["stage/panics"])
	}

	// The failure is not cached: a retry executes and succeeds.
	v, hit, err := s.Do(ctx, "boom", k, 1, func(context.Context) (any, error) {
		execs.Add(1)
		return "recovered", nil
	})
	if err != nil || hit || v != "recovered" {
		t.Fatalf("retry after panic: v=%v hit=%v err=%v", v, hit, err)
	}
}

// TestStoreFailurePropagatesToAllWaiters is the single-flight failure
// contract, concurrently: one executor fails while N waiters are
// blocked on the same key. Every waiter must receive exactly the
// executor's error, the stage must have executed exactly once, no
// waiter is charged a hit or a miss, and the key is never cached — the
// immediate retry re-executes.
func TestStoreFailurePropagatesToAllWaiters(t *testing.T) {
	s := NewStore()
	reg := obs.New()
	s.Observe(reg)
	ctx := context.Background()
	k := keyN(1)
	sentinel := errors.New("transient stage failure")

	release := make(chan struct{})
	started := make(chan struct{})
	var execs atomic.Int32

	const waiters = 16
	errs := make(chan error, waiters+1)
	go func() {
		_, _, err := s.Do(ctx, "flaky", k, 1, func(context.Context) (any, error) {
			execs.Add(1)
			close(started)
			<-release // hold the flight open until every waiter joined
			return nil, fmt.Errorf("wrapped: %w", sentinel)
		})
		errs <- err
	}()
	<-started

	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, hit, err := s.Do(ctx, "flaky", k, 1, func(context.Context) (any, error) {
				execs.Add(1)
				return nil, errors.New("waiter executed — single flight broken")
			})
			if hit {
				t.Error("failed flight reported as cache hit")
			}
			errs <- err
		}()
	}
	waitForWaiters(t, reg, waiters)
	close(release)
	wg.Wait()

	gotSentinel := 0
	for i := 0; i < waiters+1; i++ {
		err := <-errs
		if err == nil {
			t.Fatal("a caller saw success from a failed execution")
		}
		if errors.Is(err, sentinel) {
			gotSentinel++
		}
	}
	// Every waiter joined the flight before it resolved (the
	// singleflight_waits barrier above guarantees it), so every caller
	// must report exactly the executor's error.
	if gotSentinel != waiters+1 {
		t.Fatalf("%d of %d callers saw the executor's error", gotSentinel, waiters+1)
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("stage executed %d times during the failed flight, want 1", n)
	}

	// The error was never cached: stats show no hits/misses, and a
	// retry executes afresh.
	if st, _ := s.StatsFor("flaky"); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("failed flight charged hits=%d misses=%d", st.Hits, st.Misses)
	}
	snap := reg.Snapshot()
	if snap.Counters["stage/errors"] != 1 {
		t.Fatalf("stage/errors = %d, want 1", snap.Counters["stage/errors"])
	}
	if snap.Counters["stage/hits"] != 0 || snap.Counters["stage/misses"] != 0 {
		t.Fatalf("failed flight leaked hits/misses counters: %+v", snap.Counters)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("failed artifact present in cache")
	}
	v, hit, err := s.Do(ctx, "flaky", k, 1, func(context.Context) (any, error) {
		execs.Add(1)
		return 42, nil
	})
	if err != nil || hit || v != 42 {
		t.Fatalf("retry after failure: v=%v hit=%v err=%v", v, hit, err)
	}
	if n := execs.Load(); n != 2 {
		t.Fatalf("retry did not re-execute (execs = %d)", n)
	}
}

// TestUnboundedStoreNeverEvicts: the historical default keeps
// everything.
func TestUnboundedStoreNeverEvicts(t *testing.T) {
	s := NewStore()
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		if _, _, err := s.Do(ctx, "produce", keyN(i), 1, func(context.Context) (any, error) {
			return payload(256), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 100 || s.Evictions() != 0 {
		t.Fatalf("unbounded store: Len=%d Evictions=%d", s.Len(), s.Evictions())
	}
	if s.MaxBytes() != 0 {
		t.Fatalf("unbounded store reports cap %d", s.MaxBytes())
	}
}

// TestStoreWrapIntercepts: an installed ExecWrapper sees (name, key)
// and can replace the execution; removing it restores the original.
func TestStoreWrapIntercepts(t *testing.T) {
	s := NewStore()
	ctx := context.Background()
	var sawName string
	var sawKey Key
	s.Wrap(func(name string, key Key, fn func(context.Context) (any, error)) func(context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			sawName, sawKey = name, key
			return nil, errors.New("injected")
		}
	})
	_, _, err := s.Do(ctx, "wrapped", keyN(7), 1, func(context.Context) (any, error) {
		return "real", nil
	})
	if err == nil || err.Error() != "injected" {
		t.Fatalf("wrapper not applied: err=%v", err)
	}
	if sawName != "wrapped" || sawKey != keyN(7) {
		t.Fatalf("wrapper saw (%q, %q)", sawName, sawKey)
	}
	s.Wrap(nil)
	v, _, err := s.Do(ctx, "wrapped", keyN(7), 1, func(context.Context) (any, error) {
		return "real", nil
	})
	if err != nil || v != "real" {
		t.Fatalf("after unwrap: v=%v err=%v", v, err)
	}
}
