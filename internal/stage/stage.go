// Package stage is the stage-graph execution engine of the YOUTIAO
// design pipeline. Each pipeline step (fault-plan draw, crosstalk
// characterization, partition, FDM grouping, frequency allocation,
// annealing, TDM grouping) is a Stage with declared inputs, a
// deterministic artifact Key, and per-execution instrumentation. A
// Store memoizes stage outputs by key, so re-running the pipeline with
// only some options changed re-executes only the stages whose keyed
// inputs changed — the "characterize once, redesign many" access
// pattern of parameter sweeps.
//
// The package is deliberately generic: it knows nothing about chips or
// groupings. The pipeline wiring (which stages exist, what participates
// in each key) lives in internal/experiments; the determinism contract
// it relies on — artifacts are pure functions of their key, invariant
// in the worker count — is the one internal/parallel establishes.
package stage

import (
	"fmt"
	"sort"
)

// Stage declares one node of a stage graph: its name and the names of
// the upstream stages whose artifacts it consumes. Declarations are
// ordered: every input must name a previously-declared stage, which
// makes any declared graph acyclic and topologically sorted by
// construction.
type Stage struct {
	Name   string
	Inputs []string
}

// Graph is a validated, topologically-ordered stage DAG. It is the
// declarative skeleton the pipeline hangs its keyed executions on, and
// what tests use to assert invalidation scope (Downstream).
type Graph struct {
	stages []Stage
	index  map[string]int
}

// NewGraph validates the declarations: names must be unique and
// non-empty, and inputs must reference earlier stages.
func NewGraph(stages ...Stage) (*Graph, error) {
	g := &Graph{index: make(map[string]int, len(stages))}
	for i, st := range stages {
		if st.Name == "" {
			return nil, fmt.Errorf("stage: declaration %d has an empty name", i)
		}
		if _, dup := g.index[st.Name]; dup {
			return nil, fmt.Errorf("stage: duplicate stage %q", st.Name)
		}
		for _, in := range st.Inputs {
			if _, ok := g.index[in]; !ok {
				return nil, fmt.Errorf("stage: %q input %q is not a previously declared stage", st.Name, in)
			}
		}
		g.index[st.Name] = i
		g.stages = append(g.stages, Stage{Name: st.Name, Inputs: append([]string(nil), st.Inputs...)})
	}
	return g, nil
}

// MustGraph is NewGraph for static declarations; it panics on invalid
// graphs.
func MustGraph(stages ...Stage) *Graph {
	g, err := NewGraph(stages...)
	if err != nil {
		panic(err)
	}
	return g
}

// Stages returns the declarations in topological order.
func (g *Graph) Stages() []Stage {
	out := make([]Stage, len(g.stages))
	copy(out, g.stages)
	return out
}

// Contains reports whether the graph declares the named stage.
func (g *Graph) Contains(name string) bool {
	_, ok := g.index[name]
	return ok
}

// Inputs returns the declared inputs of a stage (nil for sources and
// unknown names).
func (g *Graph) Inputs(name string) []string {
	i, ok := g.index[name]
	if !ok {
		return nil
	}
	return append([]string(nil), g.stages[i].Inputs...)
}

// Downstream returns every stage whose artifact (transitively) depends
// on the named stage, in topological order — exactly the set a changed
// input to that stage invalidates. The stage itself is not included.
func (g *Graph) Downstream(name string) []string {
	if _, ok := g.index[name]; !ok {
		return nil
	}
	affected := map[string]bool{name: true}
	var out []string
	for _, st := range g.stages {
		for _, in := range st.Inputs {
			if affected[in] && !affected[st.Name] {
				affected[st.Name] = true
				out = append(out, st.Name)
			}
		}
	}
	return out
}

// Upstream returns every stage the named stage (transitively) consumes,
// in topological order.
func (g *Graph) Upstream(name string) []string {
	i, ok := g.index[name]
	if !ok {
		return nil
	}
	needed := map[string]bool{}
	var mark func(idx int)
	mark = func(idx int) {
		for _, in := range g.stages[idx].Inputs {
			if !needed[in] {
				needed[in] = true
				mark(g.index[in])
			}
		}
	}
	mark(i)
	var out []string
	for _, st := range g.stages[:i] {
		if needed[st.Name] {
			out = append(out, st.Name)
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return g.index[out[a]] < g.index[out[b]] })
	return out
}
