package stage

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Stats is the accumulated instrumentation of one stage across a
// Store's lifetime.
type Stats struct {
	// Name is the stage name.
	Name string `json:"name"`
	// Runs counts Do invocations (hits + misses + waited duplicates).
	Runs int `json:"runs"`
	// Hits counts invocations served from the artifact cache.
	Hits int `json:"hits"`
	// Misses counts invocations that executed the stage.
	Misses int `json:"misses"`
	// Wall is the cumulative wall time of executed (missed) runs.
	Wall time.Duration `json:"wall_ns"`
	// Workers is the worker budget of the most recent executed run.
	Workers int `json:"workers"`
}

// entry is one memoized artifact. ready is closed once val/err are
// final, so concurrent requests for the same key wait for the first
// executor instead of duplicating work (single-flight).
type entry struct {
	ready chan struct{}
	val   any
	err   error
}

// Store memoizes stage artifacts by Key and accumulates per-stage
// Stats. It is safe for concurrent use; concurrent Do calls with the
// same key execute the stage once. Failed executions are not cached —
// a later Do with the same key retries.
//
// Artifacts handed out by the store are shared across every pipeline
// assembled from it, so the pipeline-side contract is that stage
// outputs are immutable once returned (downstream stages build new
// values instead of editing their inputs).
type Store struct {
	mu      sync.Mutex
	entries map[Key]*entry
	stats   map[string]*Stats
	order   []string // stage names in first-seen order, for reporting

	// obsv is the optional observability registry. Swapped atomically
	// so Observe is safe concurrently with in-flight Do calls; a nil
	// registry (the default) disables emission at zero cost.
	obsv atomic.Pointer[obs.Registry]
}

// NewStore returns an empty artifact store.
func NewStore() *Store {
	return &Store{
		entries: make(map[Key]*entry),
		stats:   make(map[string]*Stats),
	}
}

// Observe routes the store's cache instrumentation into r: the
// "stage/hits", "stage/misses", "stage/errors" and
// "stage/singleflight_waits" counters and a per-stage execution-latency
// histogram ("stage/<name>"). Pass nil to disable. Counters except
// singleflight_waits are deterministic for sequential pipelines;
// singleflight_waits counts scheduling-dependent concurrent-duplicate
// suppression and is only non-zero under concurrent same-key Do calls.
func (s *Store) Observe(r *obs.Registry) {
	// Pre-register the counters so every snapshot carries the full
	// set at 0 — the schema does not depend on which events occurred.
	r.Counter("stage/hits")
	r.Counter("stage/misses")
	r.Counter("stage/errors")
	r.Counter("stage/singleflight_waits")
	s.obsv.Store(r)
}

// statLocked returns (creating if needed) the stats row of a stage.
// Callers hold s.mu.
func (s *Store) statLocked(name string) *Stats {
	st, ok := s.stats[name]
	if !ok {
		st = &Stats{Name: name}
		s.stats[name] = st
		s.order = append(s.order, name)
	}
	return st
}

// Do returns the artifact for key, executing fn to produce it on a
// cache miss. The boolean reports whether the artifact came from the
// cache. workers is recorded as the stage's worker budget (purely
// instrumentation — it never affects the artifact). Errors are
// returned to every concurrent waiter but never cached.
func (s *Store) Do(ctx context.Context, name string, key Key, workers int, fn func(context.Context) (any, error)) (any, bool, error) {
	r := s.obsv.Load()
	s.mu.Lock()
	st := s.statLocked(name)
	st.Runs++
	if e, ok := s.entries[key]; ok {
		s.mu.Unlock()
		if r != nil {
			select {
			case <-e.ready:
			default:
				r.Counter("stage/singleflight_waits").Inc()
			}
		}
		<-e.ready
		if e.err != nil {
			// The executing call failed (and removed the entry); report
			// its error without charging this waiter a hit or a miss.
			return nil, false, e.err
		}
		s.mu.Lock()
		st.Hits++
		s.mu.Unlock()
		r.Counter("stage/hits").Inc()
		return e.val, true, nil
	}
	e := &entry{ready: make(chan struct{})}
	s.entries[key] = e
	s.mu.Unlock()

	start := time.Now()
	v, err := fn(ctx)
	dur := time.Since(start)
	e.val, e.err = v, err
	close(e.ready)

	s.mu.Lock()
	if err != nil {
		delete(s.entries, key) // never cache failures
	} else {
		st.Misses++
		st.Wall += dur
		st.Workers = workers
	}
	s.mu.Unlock()
	if err != nil {
		r.Counter("stage/errors").Inc()
		return nil, false, err
	}
	r.Counter("stage/misses").Inc()
	r.Histogram("stage/" + name).Observe(dur)
	return v, false, nil
}

// Get returns a cached artifact without executing anything.
func (s *Store) Get(key Key) (any, bool) {
	s.mu.Lock()
	e, ok := s.entries[key]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	<-e.ready
	if e.err != nil {
		return nil, false
	}
	return e.val, true
}

// Len returns the number of cached artifacts.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns a copy of the per-stage instrumentation, in first-seen
// stage order.
func (s *Store) Stats() []Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Stats, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, *s.stats[name])
	}
	return out
}

// StatsFor returns the instrumentation row of one stage.
func (s *Store) StatsFor(name string) (Stats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.stats[name]
	if !ok {
		return Stats{}, false
	}
	return *st, true
}

// Do is the typed wrapper over Store.Do: it asserts the artifact to T.
// A cached artifact always has the type its producing stage returned,
// so the assertion only guards against two stages sharing a key domain.
func Do[T any](ctx context.Context, s *Store, name string, key Key, workers int, fn func(context.Context) (T, error)) (T, bool, error) {
	v, hit, err := s.Do(ctx, name, key, workers, func(ctx context.Context) (any, error) {
		return fn(ctx)
	})
	if err != nil {
		var zero T
		return zero, hit, err
	}
	t, ok := v.(T)
	if !ok {
		var zero T
		return zero, hit, fmt.Errorf("stage: %s artifact is %T, not %T (key domain collision)", name, v, zero)
	}
	return t, hit, nil
}
